// Using the EnhanceNet plugins directly — the paper's central promise is
// that DFGN and DAMGN are *generic plugins*, not parts of one monolithic
// model. This example builds a deliberately simple custom forecaster (one
// graph-convolutional GRU layer + linear head, not part of the model zoo)
// and wires both plugins into it by hand:
//
//   1. an EntityMemoryBank shared by the model,
//   2. a DFGN-backed EnhanceGruCell (entity-specific filters), and
//   3. a Damgn supplying dynamic supports to the cell at every step.
//
// It then checks the λ-initialization property from Sec. V-B: before
// training, the DAMGN-combined adjacency equals the static one, so the
// enhanced model starts exactly as expressive as its base.
//
//   ./build/examples/plugin_integration

#include <cstdio>

#include "autograd/ops.h"
#include "core/damgn.h"
#include "core/enhance_gru_cell.h"
#include "core/entity_memory.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "nn/linear.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

using namespace enhancenet;
namespace ag = enhancenet::autograd;

/// A minimal custom forecaster with both plugins attached.
class MyEnhancedForecaster : public nn::Module {
 public:
  MyEnhancedForecaster(int64_t n, Tensor adjacency, Rng& rng)
      : memory_(n, /*memory_dim=*/8, rng),
        damgn_(std::move(adjacency), n, /*in_channels=*/1, /*mem_dim=*/4,
               /*embed_dim=*/4, rng),
        cell_(MakeCellConfig(n), &memory_.memory(), rng),
        head_(kHidden, 1, rng) {
    RegisterSubmodule("memory", &memory_);
    RegisterSubmodule("damgn", &damgn_);
    RegisterSubmodule("cell", &cell_);
    RegisterSubmodule("head", &head_);
  }

  /// x: [B,N,H,1] -> one-step-ahead prediction [B,N,1].
  ag::Variable Forward(const Tensor& x) {
    const int64_t batch = x.size(0);
    const int64_t n = x.size(1);
    const int64_t history = x.size(2);
    ag::Variable input = ag::Variable::Leaf(x, false);
    ag::Variable h =
        ag::Variable::Leaf(Tensor::Zeros({batch, n, kHidden}), false);
    for (int64_t t = 0; t < history; ++t) {
      ag::Variable x_t = ag::Reshape(ag::Slice(input, 2, t, 1), {batch, n, 1});
      // The correlation plugin: dynamic supports from this step's signal.
      const auto supports =
          damgn_.CombinedSupports(x_t, /*max_hops=*/1, /*bidirectional=*/true);
      // The temporal plugin lives inside the cell (DFGN-generated filters).
      h = cell_.Forward(x_t, h, supports);
    }
    return head_.Forward(h);
  }

  const core::Damgn& damgn() const { return damgn_; }

 private:
  static constexpr int64_t kHidden = 8;

  static core::GruCellConfig MakeCellConfig(int64_t n) {
    core::GruCellConfig config;
    config.num_entities = n;
    config.in_channels = 1;
    config.hidden = kHidden;
    config.num_supports = 2;  // A' and A'ᵀ
    config.use_dfgn = true;
    config.dfgn_hidden1 = 8;
    config.dfgn_hidden2 = 4;
    return config;
  }

  core::EntityMemoryBank memory_;
  core::Damgn damgn_;
  core::EnhanceGruCell cell_;
  nn::Linear head_;
};

int main() {
  data::CtsData traffic = data::MakeEbLike(/*num_sensors=*/12,
                                           /*num_days=*/2);
  const Tensor adjacency =
      graph::GaussianKernelAdjacency(traffic.distances);
  Rng rng(7);
  MyEnhancedForecaster model(traffic.num_entities(), adjacency, rng);
  std::printf("custom enhanced forecaster: %lld trainable parameters\n",
              (long long)model.NumParameters());

  // Property check (Sec. V-B): at initialization λ=(1,0,0), so the combined
  // adjacency equals the row-normalized static one.
  Rng probe_rng(8);
  Tensor probe = Tensor::Randn({1, traffic.num_entities(), 1}, probe_rng);
  Tensor combined =
      model.damgn().Combined(ag::Variable::Leaf(probe, false)).data();
  const Tensor expected = graph::RowNormalize(adjacency);
  const bool reduces = ops::AllClose(
      combined.Reshape({traffic.num_entities(), traffic.num_entities()}),
      expected, 1e-5f, 1e-5f);
  std::printf("untrained DAMGN reduces to static graph convolution: %s\n",
              reduces ? "yes" : "NO (bug!)");

  // A few steps of one-step-ahead training to show everything is trainable.
  const int64_t n = traffic.num_entities();
  const int64_t t_total = traffic.num_steps();
  optim::Adam adam(model.Parameters(), 0.01f);
  Rng batch_rng(9);
  for (int step = 0; step < 30; ++step) {
    // Sample 4 random windows of 12 steps + 1 target.
    Tensor x({4, n, 12, 1});
    Tensor y({4, n, 1});
    for (int64_t b = 0; b < 4; ++b) {
      const int64_t anchor =
          12 + static_cast<int64_t>(
                   batch_rng.UniformInt(static_cast<uint64_t>(t_total - 13)));
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t h = 0; h < 12; ++h) {
          x.at({b, i, h, 0}) =
              traffic.series.at({i, anchor - 12 + h, 0}) / 70.0f;
        }
        y.at({b, i, 0}) = traffic.series.at({i, anchor, 0}) / 70.0f;
      }
    }
    ag::Variable pred = model.Forward(x);
    ag::Variable loss = ag::MeanAll(
        ag::Square(ag::Sub(pred, ag::Variable::Leaf(y, false))));
    model.ZeroGrad();
    loss.Backward();
    adam.Step();
    if (step % 10 == 0 || step == 29) {
      std::printf("step %2d  mse=%.5f\n", step, loss.data().item());
    }
  }
  std::printf("\nafter training, learned mixing: lambda_A=%.3f "
              "lambda_B=%.3f lambda_C=%.3f\n",
              model.damgn().lambda_a(), model.damgn().lambda_b(),
              model.damgn().lambda_c());
  std::printf("(non-zero lambda_B / lambda_C means the plugins picked up "
              "correlations the static graph missed)\n");
  return 0;
}
