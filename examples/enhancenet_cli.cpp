// Command-line forecaster demonstrating the full production workflow:
// load a dataset (CSV or built-in synthetic), train any model from the zoo,
// checkpoint the weights, reload them into a fresh model, and export
// forecasts as CSV.
//
//   # train on synthetic data and save a checkpoint
//   ./build/examples/enhancenet_cli train --synthetic eb --model D-DA-GRNN \
//       --epochs 3 --checkpoint /tmp/model.encp
//
//   # reload and write forecasts for the last test window
//   ./build/examples/enhancenet_cli predict --synthetic eb --model D-DA-GRNN \
//       --checkpoint /tmp/model.encp --out /tmp/forecast.csv
//
//   # real data: series.csv is [T x N*C] entity-major, dist.csv is [N x N]
//   ./build/examples/enhancenet_cli train --series series.csv \
//       --distances dist.csv --channels 2 --model GTCN --epochs 10 \
//       --checkpoint model.encp
//
//   # observability: dump a metrics snapshot (and kernel profiling counters)
//   ./build/examples/enhancenet_cli train --synthetic eb --epochs 2 \
//       --metrics-out=metrics.json --profile
//
//   # serving control plane: publish, hot-swap, and shadow a checkpoint
//   # through serve::ModelRegistry (see DESIGN.md §11)
//   ./build/examples/enhancenet_cli serve-smoke --synthetic eb \
//       --checkpoint /tmp/model.encp --requests 8 --pool 2

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "io/checkpoint.h"
#include "io/csv.h"
#include "models/model_factory.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/context.h"
#include "serve/inference_session.h"
#include "serve/model_registry.h"
#include "train/trainer.h"

using namespace enhancenet;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

// Accepts `--key value`, `--key=value`, and bare boolean flags (`--profile`,
// stored as "1"). A token following a bare flag that itself starts with
// `--` begins the next flag rather than being swallowed as a value.
Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      args.flags[key.substr(0, eq)] = key.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.flags[key] = argv[++i];
    } else {
      args.flags[key] = "1";
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: enhancenet_cli <train|predict|serve-smoke> [flags]\n"
      "  --synthetic eb|la|us     use a built-in synthetic dataset, or\n"
      "  --series PATH --distances PATH --channels C   load CSV data\n"
      "  --model NAME             any of the model-zoo names (default D-DA-GRNN)\n"
      "  --epochs E               training epochs (default 3)\n"
      "  --checkpoint PATH        weights file to save (train) / load (predict)\n"
      "  --out PATH               forecast CSV (predict; default forecast.csv)\n"
      "  --requests R             serve-smoke request count (default 8)\n"
      "  --pool P                 sessions per published version (default 2)\n"
      "  --slo-ms MS              serve-smoke: route requests through the\n"
      "                           deadline-aware micro-batcher with an MS ms\n"
      "                           per-request budget (or set ENHANCENET_SLO_MS)\n"
      "  --shards S               entity-sharded no-grad graph applies across\n"
      "                           S per-shard runtime contexts (or set\n"
      "                           ENHANCENET_SHARDS); 1 = single context\n"
      "  --metrics-out PATH       write a JSON metrics snapshot on exit\n"
      "  --profile                record tensor-kernel profiling counters\n");
  return 2;
}

// Dumps the process metrics registry to --metrics-out (if given). Called on
// every successful exit so train and predict runs both leave a snapshot.
int FinishWithMetrics(const Args& args, int exit_code) {
  const std::string metrics_out = args.Get("metrics-out");
  if (!metrics_out.empty()) {
    const Status written =
        obs::WriteMetricsJson(obs::Registry::Global(), metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   written.ToString().c_str());
      return exit_code == 0 ? 1 : exit_code;
    }
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }
  return exit_code;
}

data::CtsData LoadData(const Args& args, bool* ok) {
  *ok = true;
  const std::string synthetic = args.Get("synthetic");
  if (synthetic == "eb") return data::MakeEbLike(24, 6);
  if (synthetic == "la") return data::MakeLaLike(24, 6);
  if (synthetic == "us") return data::MakeUsLike(25, 45);
  if (!synthetic.empty()) {
    std::fprintf(stderr, "unknown synthetic dataset '%s'\n",
                 synthetic.c_str());
    *ok = false;
    return {};
  }
  const std::string series = args.Get("series");
  const std::string distances = args.Get("distances");
  const int channels = args.GetInt("channels", 1);
  if (series.empty() || distances.empty()) {
    std::fprintf(stderr, "need --synthetic or --series/--distances\n");
    *ok = false;
    return {};
  }
  auto result = io::LoadCtsFromCsv("csv-data", series, distances,
                                   args.Get("locations"), channels);
  if (!result.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 result.status.ToString().c_str());
    *ok = false;
    return {};
  }
  return std::move(result.value);
}

// The serving identity of this run: everything ModelRegistry::Publish needs
// to stage a version of the trained model.
serve::ModelSpec BuildSpec(const std::string& model_name,
                           const data::CtsData& dataset,
                           const Tensor& adjacency,
                           const models::ModelSizing& sizing,
                           const std::string& checkpoint) {
  serve::ModelSpec spec;
  spec.model_name = model_name;
  spec.num_entities = dataset.num_entities();
  spec.in_channels = dataset.num_channels();
  spec.target_channel = dataset.target_channel;
  spec.adjacency = adjacency;
  spec.sizing = sizing;
  spec.checkpoint_path = checkpoint;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.command != "train" && args.command != "predict" &&
      args.command != "serve-smoke") {
    return Usage();
  }
  if (args.flags.count("profile")) runtime::SetProfilingEnabled(true);
  // --shards S: entity-sharded execution (DESIGN.md §12). Applied to the
  // process default context so train-time eval forwards shard too; sessions
  // published below additionally pin it via SessionOptions so registry pools
  // get private exec configs.
  const int shards = args.GetInt("shards", -1);
  if (shards >= 0) {
    runtime::RuntimeContext::Current().exec().shards.store(
        shards < 1 ? 1 : shards, std::memory_order_relaxed);
  }

  bool ok = false;
  data::CtsData dataset = LoadData(args, &ok);
  if (!ok) return 1;
  std::printf("dataset '%s': N=%lld T=%lld C=%lld\n", dataset.name.c_str(),
              (long long)dataset.num_entities(),
              (long long)dataset.num_steps(),
              (long long)dataset.num_channels());

  const data::Splits splits = data::ChronologicalSplits(dataset.num_steps());
  data::StandardScaler scaler;
  scaler.Fit(dataset.series, 0, splits.train_end);
  const Tensor scaled = scaler.Transform(dataset.series);
  const Tensor adjacency =
      graph::GaussianKernelAdjacency(dataset.distances);

  const std::string model_name = args.Get("model", "D-DA-GRNN");
  models::ModelSizing sizing;
  sizing.rnn_hidden = 24;
  sizing.rnn_hidden_dfgn = 10;
  sizing.tcn_channels = 16;
  sizing.tcn_channels_dfgn = 10;
  const std::string checkpoint = args.Get("checkpoint", "model.encp");

  if (args.command == "train") {
    Rng rng(2024);
    std::unique_ptr<models::ForecastingModel> model;
    const Status made = models::TryMakeModel(
        model_name, dataset.num_entities(), dataset.num_channels(), adjacency,
        sizing, rng, &model);
    if (!made.ok()) {
      std::fprintf(stderr, "model construction failed: %s\n",
                   made.ToString().c_str());
      return 1;
    }
    std::printf("model %s: %lld parameters\n", model_name.c_str(),
                (long long)model->NumParameters());
    data::WindowDataset train(scaled, dataset.series, dataset.target_channel,
                              0, splits.train_end, 12, 12, /*stride=*/4);
    data::WindowDataset val(scaled, dataset.series, dataset.target_channel,
                            splits.train_end, splits.val_end, 12, 12, 4);
    train::TrainerConfig tc;
    tc.epochs = args.GetInt("epochs", 3);
    tc.batch_size = 8;
    tc.verbose = true;
    train::Trainer trainer(model.get(), &scaler, dataset.target_channel, tc);
    const train::TrainResult result = trainer.Train(train, val, rng);
    std::printf("best val MAE %.3f (epoch %d)\n", result.best_val_mae,
                result.best_epoch);
    // The metadata header records what the file was trained as, so a later
    // Publish with a mismatched spec fails naming the file's own identity.
    io::CheckpointMeta meta;
    meta.model_name = model_name;
    meta.num_entities = dataset.num_entities();
    meta.in_channels = dataset.num_channels();
    meta.history = sizing.history;
    meta.horizon = sizing.horizon;
    const Status saved = io::SaveCheckpoint(checkpoint, *model, meta);
    if (!saved.ok()) {
      std::fprintf(stderr, "checkpoint save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("weights saved to %s\n", checkpoint.c_str());

    // Serve smoke through the serving control plane: publish the checkpoint
    // we just wrote as version 1 and serve the most recent test window
    // through the registry. Besides exercising save -> publish -> serve end
    // to end, it means a train-only run's metrics snapshot also carries the
    // serve.model.<name>.* and serve.session.* streams.
    serve::ModelRegistry registry;
    serve::PublishOptions po;
    po.pool_size = 1;  // smoke needs one session, not a serving fleet
    po.session.shards = shards;
    const Status published = registry.Publish(
        model_name, /*version=*/1,
        BuildSpec(model_name, dataset, adjacency, sizing, checkpoint), scaler,
        po);
    if (!published.ok()) {
      std::fprintf(stderr, "serve smoke publish failed: %s\n",
                   published.ToString().c_str());
      return 1;
    }
    data::WindowDataset test(scaled, dataset.series, dataset.target_channel,
                             splits.val_end, splits.total, 12, 12, 1);
    if (test.num_windows() > 0) {
      const data::Batch batch = test.MakeBatch({test.num_windows() - 1});
      serve::PredictRequest request;
      request.history = batch.x;    // [1, N, H, C], already z-scored
      request.scaled_input = true;
      serve::PredictResponse response;
      const Status served = registry.Predict(model_name, request, &response);
      if (!served.ok()) {
        std::fprintf(stderr, "serve smoke predict failed: %s\n",
                     served.ToString().c_str());
        return 1;
      }
      std::printf(
          "serve smoke: latest test window served by '%s' v%lld in %.2f ms\n",
          model_name.c_str(), (long long)response.model_version,
          response.latency_ms);
    }
    return FinishWithMetrics(args, 0);
  }

  // predict and serve-smoke both go through the serving control plane:
  // publish the checkpoint as version 1 of the model under its zoo name,
  // then route every request via ModelRegistry::Predict. All failure modes
  // (unknown model, missing or mismatched checkpoint, malformed windows)
  // surface as Status naming the model and version instead of aborting.
  serve::ModelRegistry registry;
  serve::PublishOptions po;
  po.pool_size = args.GetInt("pool", 2);
  po.session.shards = shards;
  // --slo-ms publishes with deadline-aware micro-batching: serve-smoke
  // requests go through the batcher as single [N,H,C] windows carrying a
  // per-request budget instead of straight to a session.
  const double slo_ms = args.GetDouble("slo-ms", 0.0);
  if (slo_ms > 0.0) {
    po.session.micro_batching = true;
    po.session.deadline_batching = true;
    po.session.slo_ms = slo_ms;
  }
  const serve::ModelSpec spec =
      BuildSpec(model_name, dataset, adjacency, sizing, checkpoint);
  const Status published =
      registry.Publish(model_name, /*version=*/1, spec, scaler, po);
  if (!published.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 published.ToString().c_str());
    return 1;
  }

  data::WindowDataset test(scaled, dataset.series, dataset.target_channel,
                           splits.val_end, splits.total, 12, 12, 1);
  if (test.num_windows() == 0) {
    std::fprintf(stderr, "test split has no full windows\n");
    return 1;
  }

  if (args.command == "predict") {
    const data::Batch batch = test.MakeBatch({test.num_windows() - 1});
    serve::PredictRequest request;
    request.history = batch.x;     // [1, N, H, C], already z-scored
    request.scaled_input = true;   // forecast comes back in real units
    serve::PredictResponse response;
    const Status served = registry.Predict(model_name, request, &response);
    if (!served.ok()) {
      std::fprintf(stderr, "predict failed: %s\n", served.ToString().c_str());
      return 1;
    }
    std::printf("served by '%s' v%lld in %.2f ms\n", model_name.c_str(),
                (long long)response.model_version, response.latency_ms);
    const Tensor pred =
        response.forecast.Reshape({dataset.num_entities(), 12});

    const std::string out = args.Get("out", "forecast.csv");
    const Status written = io::WriteForecastCsv(out, pred);
    if (!written.ok()) {
      std::fprintf(stderr, "forecast write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("12-step forecast for the most recent window written to %s\n",
                out.c_str());
    // Also report the errors against the ground truth of that window.
    train::MetricAccumulator acc(12);
    acc.Add(pred.Reshape({1, dataset.num_entities(), 12}), batch.y_raw);
    std::printf("window MAE %.3f  RMSE %.3f  MAPE %.2f%%\n",
                acc.Overall().mae, acc.Overall().rmse, acc.Overall().mape);
    return FinishWithMetrics(args, 0);
  }

  // serve-smoke: a scripted pass over the registry's control plane —
  // serve a burst of requests on v1, hot-swap to v2 under the same
  // checkpoint, stage v3 as a shadow on mirrored traffic, then promote it.
  const int requests = args.GetInt("requests", 8);
  serve::PredictResponse response;
  for (int i = 0; i < requests; ++i) {
    const data::Batch batch =
        test.MakeBatch({i % test.num_windows()});
    serve::PredictRequest request;
    request.history = batch.x;
    request.scaled_input = true;
    if (slo_ms > 0.0) {
      // Single windows route through the deadline micro-batcher.
      request.history = batch.x.Reshape(
          {batch.x.size(1), batch.x.size(2), batch.x.size(3)});
      request.deadline_ms = slo_ms;
    }
    const Status served = registry.Predict(model_name, request, &response);
    if (!served.ok()) {
      std::fprintf(stderr, "serve-smoke predict failed: %s\n",
                   served.ToString().c_str());
      return 1;
    }
  }
  std::printf("served %d request(s) on v%lld\n", requests,
              (long long)response.model_version);
  if (slo_ms > 0.0) {
    obs::Registry& obs_registry = obs::Registry::Global();
    const obs::Histogram* occupancy = obs_registry.GetHistogram(
        "serve.batcher.batch_occupancy", obs::OccupancyBuckets());
    std::printf(
        "deadline batching at %.1f ms SLO: %lld miss(es), "
        "%lld budget / %lld fill flush(es), mean occupancy %.2f, "
        "reserve %.2f ms\n",
        slo_ms,
        (long long)obs_registry.GetCounter("serve.batcher.deadline.miss")
            ->Get(),
        (long long)obs_registry
            .GetCounter("serve.batcher.deadline.flush_budget")
            ->Get(),
        (long long)obs_registry.GetCounter("serve.batcher.deadline.flush_full")
            ->Get(),
        occupancy->Count() == 0 ? 0.0
                                : occupancy->Sum() /
                                      static_cast<double>(occupancy->Count()),
        obs_registry.GetGauge("serve.batcher.deadline.reserve_ms")->Get());
  }

  const Status swapped =
      registry.Publish(model_name, /*version=*/2, spec, scaler, po);
  if (!swapped.ok()) {
    std::fprintf(stderr, "hot-swap publish failed: %s\n",
                 swapped.ToString().c_str());
    return 1;
  }
  const Status shadowed =
      registry.PublishShadow(model_name, /*version=*/3, spec, scaler, po);
  if (!shadowed.ok()) {
    std::fprintf(stderr, "shadow publish failed: %s\n",
                 shadowed.ToString().c_str());
    return 1;
  }
  for (int i = 0; i < requests; ++i) {
    const data::Batch batch = test.MakeBatch({i % test.num_windows()});
    serve::PredictRequest request;
    request.history = batch.x;
    request.scaled_input = true;
    if (slo_ms > 0.0) {
      request.history = batch.x.Reshape(
          {batch.x.size(1), batch.x.size(2), batch.x.size(3)});
      request.deadline_ms = slo_ms;
    }
    const Status served = registry.Predict(model_name, request, &response);
    if (!served.ok()) {
      std::fprintf(stderr, "serve-smoke predict failed: %s\n",
                   served.ToString().c_str());
      return 1;
    }
  }
  const obs::Histogram* delta = obs::Registry::Global().GetHistogram(
      "serve.model." + model_name + ".shadow.delta", obs::DeltaBuckets());
  std::printf(
      "served %d request(s) on v%lld with v3 shadowing: "
      "mean |delta| max %.3g over %lld mirrored request(s)\n",
      requests, (long long)response.model_version, delta->Max(),
      (long long)delta->Count());

  const Status promoted = registry.Promote(model_name);
  if (!promoted.ok()) {
    std::fprintf(stderr, "promote failed: %s\n", promoted.ToString().c_str());
    return 1;
  }
  serve::ModelInfo info;
  const Status inspected = registry.Info(model_name, &info);
  if (!inspected.ok()) {
    std::fprintf(stderr, "info failed: %s\n", inspected.ToString().c_str());
    return 1;
  }
  std::printf(
      "promoted shadow: '%s' active v%lld, pool %d, %lld swap(s), "
      "%lld version(s) draining\n",
      model_name.c_str(), (long long)info.active_version, info.pool_size,
      (long long)info.swaps, (long long)info.draining);
  return FinishWithMetrics(args, 0);
}
