// Multi-attribute weather forecasting on the US-like dataset (36 stations,
// 6 channels, hourly). Demonstrates:
//  * the C > 1 input path (temperature predicted from all six channels),
//  * the classical ARIMA baseline next to a neural model, and
//  * per-horizon error growth (3h / 6h / 12h ahead, like Table III's US rows).
//
//   ./build/examples/weather_forecasting

#include <cstdio>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "models/arima.h"
#include "models/model_factory.h"
#include "train/trainer.h"

using namespace enhancenet;

int main() {
  data::CtsData weather = data::MakeUsLike(/*num_stations=*/25,
                                           /*num_days=*/45);
  const data::Splits splits = data::ChronologicalSplits(weather.num_steps());
  std::printf("US-like weather: %lld stations, %lld hourly steps, "
              "%lld channels (target: temperature)\n",
              (long long)weather.num_entities(),
              (long long)weather.num_steps(),
              (long long)weather.num_channels());

  data::StandardScaler scaler;
  scaler.Fit(weather.series, 0, splits.train_end);
  const Tensor scaled = scaler.Transform(weather.series);
  const Tensor adjacency = graph::GaussianKernelAdjacency(weather.distances);

  data::WindowDataset train(scaled, weather.series, 0, 0, splits.train_end,
                            12, 12, /*stride=*/2);
  data::WindowDataset val(scaled, weather.series, 0, splits.train_end,
                          splits.val_end, 12, 12, 2);
  data::WindowDataset test(scaled, weather.series, 0, splits.val_end,
                           splits.total, 12, 12, 2);

  // --- ARIMA(3,1,1) per station, Kalman-filter forecasts ------------------
  const int64_t n = weather.num_entities();
  const int64_t t_total = weather.num_steps();
  const int64_t channels = weather.num_channels();
  Tensor arima_train({n, splits.train_end});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t t = 0; t < splits.train_end; ++t) {
      arima_train.at({i, t}) =
          weather.series.data()[(i * t_total + t) * channels];
    }
  }
  models::ArimaModel arima;
  const Status fit = arima.Fit(arima_train);
  std::printf("ARIMA fit: %s\n", fit.ToString().c_str());

  train::MetricAccumulator arima_acc(12);
  for (const auto& indices : test.SequentialBatches(8)) {
    const data::Batch batch = test.MakeBatch(indices);
    const int64_t batch_size = batch.x.size(0);
    Tensor pred({batch_size, n, 12});
    for (int64_t b = 0; b < batch_size; ++b) {
      Tensor history({n, 12});
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t h = 0; h < 12; ++h) {
          history.at({i, h}) =
              batch.x.at({b, i, h, 0}) * scaler.stddev(0) + scaler.mean(0);
        }
      }
      Tensor forecast = arima.Forecast(history, 12);
      std::copy(forecast.data(), forecast.data() + n * 12,
                pred.data() + b * n * 12);
    }
    arima_acc.Add(pred, batch.y_raw);
  }

  // --- D-DA-GTCN (the paper's best TCN-family model) ----------------------
  models::ModelSizing sizing;
  sizing.tcn_channels = 16;
  sizing.tcn_channels_dfgn = 8;
  Rng rng(301);
  auto model = models::MakeModel("D-DA-GTCN", n, channels, adjacency, sizing,
                                 rng);
  train::TrainerConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  tc.learning_rate = 0.001f;
  tc.use_step_decay = false;
  tc.use_scheduled_sampling = false;
  train::Trainer trainer(model.get(), &scaler, 0, tc);
  std::printf("training D-DA-GTCN (%lld params) ...\n",
              (long long)model->NumParameters());
  trainer.Train(train, val, rng);
  train::MetricAccumulator neural_acc(12);
  trainer.Evaluate(test, &neural_acc, rng);

  std::printf("\n%-12s | %-16s | %-16s | %-16s\n", "model", "3h (MAE/RMSE)",
              "6h (MAE/RMSE)", "12h (MAE/RMSE)");
  auto row = [](const char* name, const train::MetricAccumulator& acc) {
    std::printf("%-12s |", name);
    for (int64_t h : {2, 5, 11}) {
      const auto stats = acc.AtHorizon(h);
      std::printf("    %5.2f / %5.2f |", stats.mae, stats.rmse);
    }
    std::printf("\n");
  };
  row("ARIMA", arima_acc);
  row("D-DA-GTCN", neural_acc);
  std::printf("\n(Kelvin units; deep model should win, and the gap should "
              "widen with horizon.)\n");
  return 0;
}
