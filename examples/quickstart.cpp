// Quickstart: train an EnhanceNet-enhanced forecaster (D-DA-GRNN) on a small
// synthetic traffic dataset and report test errors at the paper's horizons.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "models/model_factory.h"
#include "train/trainer.h"

using namespace enhancenet;

int main() {
  // 1. Data: a compact EB-like correlated traffic dataset (see
  //    data/synthetic.h for what phenomena it contains), split 70/10/20.
  data::CtsData dataset = data::MakeEbLike(/*num_sensors=*/24, /*num_days=*/6);
  const data::Splits splits = data::ChronologicalSplits(dataset.num_steps());

  data::StandardScaler scaler;
  scaler.Fit(dataset.series, 0, splits.train_end);
  const Tensor scaled = scaler.Transform(dataset.series);

  const int64_t history = 12;
  const int64_t horizon = 12;
  data::WindowDataset train(scaled, dataset.series, dataset.target_channel, 0,
                            splits.train_end, history, horizon, /*stride=*/4);
  data::WindowDataset val(scaled, dataset.series, dataset.target_channel,
                          splits.train_end, splits.val_end, history, horizon,
                          /*stride=*/4);
  data::WindowDataset test(scaled, dataset.series, dataset.target_channel,
                           splits.val_end, splits.total, history, horizon,
                           /*stride=*/4);
  std::printf("dataset %s: N=%lld T=%lld C=%lld | windows train=%lld val=%lld test=%lld\n",
              dataset.name.c_str(), (long long)dataset.num_entities(),
              (long long)dataset.num_steps(), (long long)dataset.num_channels(),
              (long long)train.num_windows(), (long long)val.num_windows(),
              (long long)test.num_windows());

  // 2. Model: the paper's best RNN-family model — GRNN enhanced with both
  //    plugins (DFGN + DAMGN). Swap the name for any of
  //    models::ListModelNames() to try other variants.
  const Tensor adjacency = graph::GaussianKernelAdjacency(dataset.distances);
  models::ModelSizing sizing;
  sizing.rnn_hidden = 32;       // shrunk for a quick CPU run
  sizing.rnn_hidden_dfgn = 12;
  Rng rng(7);
  auto model = models::MakeModel("D-DA-GRNN", dataset.num_entities(),
                                 dataset.num_channels(), adjacency, sizing,
                                 rng);
  std::printf("model %s: %lld parameters\n", model->name().c_str(),
              (long long)model->NumParameters());

  // 3. Train with the paper's recipe (Adam + step decay + scheduled
  //    sampling), then evaluate masked MAE/RMSE/MAPE on the test split.
  train::TrainerConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  tc.verbose = true;
  train::Trainer trainer(model.get(), &scaler, dataset.target_channel, tc);
  train::TrainResult result = trainer.Train(train, val, rng);
  std::printf("best val MAE %.3f (epoch %d), %.1fs/epoch\n",
              result.best_val_mae, result.best_epoch,
              result.mean_epoch_seconds);

  train::MetricAccumulator acc(horizon);
  trainer.Evaluate(test, &acc, rng);
  for (int64_t h : {2, 5, 11}) {
    const train::ErrorStats e = acc.AtHorizon(h);
    std::printf("horizon %2lld (%3lld min): MAE %.2f  RMSE %.2f  MAPE %.2f%%\n",
                (long long)(h + 1), (long long)(5 * (h + 1)), e.mae, e.rmse,
                e.mape);
  }
  return 0;
}
