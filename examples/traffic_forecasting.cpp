// Traffic-speed forecasting: the paper's motivating scenario (Sec. I).
//
// Trains the graph-convolutional base model GRNN and its fully-enhanced
// variant D-DA-GRNN on the same EB-like highway network, then contrasts
// accuracy, parameter counts and the learned DAMGN mixing coefficients —
// a miniature of Tables II and the Figure 12 introspection.
//
//   ./build/examples/traffic_forecasting

#include <cstdio>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "models/model_factory.h"
#include "models/rnn_model.h"
#include "train/trainer.h"

using namespace enhancenet;

namespace {

struct Prepared {
  data::CtsData raw;
  data::StandardScaler scaler;
  Tensor adjacency;
  std::unique_ptr<data::WindowDataset> train;
  std::unique_ptr<data::WindowDataset> val;
  std::unique_ptr<data::WindowDataset> test;
};

Prepared Prepare() {
  Prepared out;
  out.raw = data::MakeEbLike(/*num_sensors=*/24, /*num_days=*/8);
  const data::Splits splits = data::ChronologicalSplits(out.raw.num_steps());
  out.scaler.Fit(out.raw.series, 0, splits.train_end);
  const Tensor scaled = out.scaler.Transform(out.raw.series);
  out.adjacency = graph::GaussianKernelAdjacency(out.raw.distances);
  out.train = std::make_unique<data::WindowDataset>(
      scaled, out.raw.series, 0, 0, splits.train_end, 12, 12, /*stride=*/6);
  out.val = std::make_unique<data::WindowDataset>(
      scaled, out.raw.series, 0, splits.train_end, splits.val_end, 12, 12, 3);
  out.test = std::make_unique<data::WindowDataset>(
      scaled, out.raw.series, 0, splits.val_end, splits.total, 12, 12, 3);
  return out;
}

void Report(const char* name, train::Trainer& trainer,
            const data::WindowDataset& test, int64_t params, Rng& rng) {
  train::MetricAccumulator acc(12);
  trainer.Evaluate(test, &acc, rng);
  std::printf("%-12s | params %6lld |", name, (long long)params);
  for (int64_t h : {2, 5, 11}) {
    const auto stats = acc.AtHorizon(h);
    std::printf("  %2lld-step MAE %.2f", (long long)(h + 1), stats.mae);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Prepared dataset = Prepare();
  std::printf("EB-like highway network: %lld sensors, %lld timestamps\n",
              (long long)dataset.raw.num_entities(),
              (long long)dataset.raw.num_steps());

  models::ModelSizing sizing;
  sizing.rnn_hidden = 24;
  sizing.rnn_hidden_dfgn = 10;

  train::TrainerConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;

  // Base model: GRNN (≈ DCRNN) — static distance graph, shared filters.
  Rng rng_base(101);
  auto base = models::MakeModel("GRNN", dataset.raw.num_entities(), 1,
                                dataset.adjacency, sizing, rng_base);
  train::Trainer base_trainer(base.get(), &dataset.scaler, 0, tc);
  std::printf("training GRNN ...\n");
  base_trainer.Train(*dataset.train, *dataset.val, rng_base);

  // Enhanced model: both plugins attached.
  Rng rng_enh(102);
  auto enhanced = models::MakeModel("D-DA-GRNN", dataset.raw.num_entities(),
                                    1, dataset.adjacency, sizing, rng_enh);
  train::Trainer enh_trainer(enhanced.get(), &dataset.scaler, 0, tc);
  std::printf("training D-DA-GRNN ...\n");
  enh_trainer.Train(*dataset.train, *dataset.val, rng_enh);

  std::printf("\ntest-set comparison:\n");
  Report("GRNN", base_trainer, *dataset.test, base->NumParameters(),
         rng_base);
  Report("D-DA-GRNN", enh_trainer, *dataset.test, enhanced->NumParameters(),
         rng_enh);

  // Peek at what DAMGN learned: how much weight moved from the static
  // distance graph (λ_A) to the adaptive (λ_B) and dynamic (λ_C) parts.
  const auto* rnn = dynamic_cast<models::RnnModel*>(enhanced.get());
  std::printf("\nlearned DAMGN mixing: lambda_A=%.3f lambda_B=%.3f "
              "lambda_C=%.3f\n",
              rnn->damgn()->lambda_a(), rnn->damgn()->lambda_b(),
              rnn->damgn()->lambda_c());
  return 0;
}
