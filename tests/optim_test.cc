#include "optim/optimizer.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;

// Minimizes f(w) = ||w - target||² and returns the final w.
template <typename MakeOptimizer>
Tensor MinimizeQuadratic(MakeOptimizer make_optimizer, int steps) {
  Rng rng(1);
  ag::Variable w = ag::Variable::Leaf(Tensor::Randn({4}, rng), true);
  const Tensor target = Tensor::FromVector({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  auto optimizer = make_optimizer(std::vector<ag::Variable>{w});
  for (int i = 0; i < steps; ++i) {
    ag::Variable diff =
        ag::Sub(w, ag::Variable::Leaf(target, false));
    ag::Variable loss = ag::SumAll(ag::Square(diff));
    optimizer->ZeroGrad();
    loss.Backward();
    optimizer->Step();
  }
  return w.data().Clone();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params), 0.05f);
      },
      200);
  EXPECT_NEAR(w.data()[0], 1.0f, 1e-3f);
  EXPECT_NEAR(w.data()[1], -2.0f, 1e-3f);
}

TEST(SgdTest, MomentumConvergesFaster) {
  Tensor plain = MinimizeQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params), 0.01f);
      },
      50);
  Tensor momentum = MinimizeQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params), 0.01f, 0.9f);
      },
      50);
  auto error = [](const Tensor& w) {
    const Tensor target = Tensor::FromVector({4}, {1.0f, -2.0f, 0.5f, 3.0f});
    return ops::SumAll(ops::Square(ops::Sub(w, target))).item();
  };
  EXPECT_LT(error(momentum), error(plain));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<optim::Adam>(std::move(params), 0.1f);
      },
      300);
  EXPECT_NEAR(w.data()[0], 1.0f, 1e-2f);
  EXPECT_NEAR(w.data()[3], 3.0f, 1e-2f);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // With bias correction, the very first Adam step has magnitude ≈ lr.
  ag::Variable w = ag::Variable::Leaf(Tensor::Zeros({1}), true);
  optim::Adam adam({w}, 0.1f);
  w.AccumulateGrad(Tensor::FromVector({1}, {123.0f}));
  adam.Step();
  EXPECT_NEAR(w.data().data()[0], -0.1f, 1e-4f);
}

TEST(AdamTest, SkipsParametersWithoutGradient) {
  ag::Variable a = ag::Variable::Leaf(Tensor::Ones({2}), true);
  ag::Variable b = ag::Variable::Leaf(Tensor::Ones({2}), true);
  optim::Adam adam({a, b}, 0.1f);
  a.AccumulateGrad(Tensor::Ones({2}));
  adam.Step();
  EXPECT_NE(a.data().data()[0], 1.0f);
  EXPECT_EQ(b.data().data()[0], 1.0f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  ag::Variable w = ag::Variable::Leaf(Tensor::Full({1}, 10.0f), true);
  optim::Adam adam({w}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 100; ++i) {
    adam.ZeroGrad();
    w.AccumulateGrad(Tensor::Zeros({1}));  // pure decay
    adam.Step();
  }
  EXPECT_LT(std::fabs(w.data().data()[0]), 5.0f);
}

TEST(OptimizerTest, SetLrTakesEffect) {
  ag::Variable w = ag::Variable::Leaf(Tensor::Zeros({1}), true);
  optim::Sgd sgd({w}, 1.0f);
  sgd.set_lr(0.5f);
  w.AccumulateGrad(Tensor::Ones({1}));
  sgd.Step();
  EXPECT_NEAR(w.data().data()[0], -0.5f, 1e-6f);
}

// ---------------------------------------------------------------------------
// Fused (ParallelFor) vs scalar-loop steps: bitwise identity
// ---------------------------------------------------------------------------

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Runs `steps` optimizer steps over two parameters (one left gradient-free
/// on odd steps to exercise the skip path) and returns the final data.
template <typename MakeOptimizer>
std::vector<Tensor> RunSteps(MakeOptimizer make_optimizer, bool fused,
                             int steps) {
  ag::FusedKernels::SetEnabled(fused);
  Rng rng(77);
  ag::Variable a = ag::Variable::Leaf(Tensor::Randn({1000}, rng), true);
  ag::Variable b = ag::Variable::Leaf(Tensor::Randn({37}, rng), true);
  auto optimizer = make_optimizer(std::vector<ag::Variable>{a, b});
  Rng grad_rng(99);
  for (int i = 0; i < steps; ++i) {
    optimizer->ZeroGrad();
    a.AccumulateGrad(Tensor::Randn({1000}, grad_rng));
    if (i % 2 == 0) b.AccumulateGrad(Tensor::Randn({37}, grad_rng));
    optimizer->Step();
  }
  ag::FusedKernels::SetEnabled(true);
  return {a.data().Clone(), b.data().Clone()};
}

TEST(FusedOptimizerTest, SgdPlainBitwiseMatchesScalarLoop) {
  auto make = [](std::vector<ag::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), 0.05f);
  };
  std::vector<Tensor> fused = RunSteps(make, /*fused=*/true, 7);
  std::vector<Tensor> scalar = RunSteps(make, /*fused=*/false, 7);
  EXPECT_TRUE(BitwiseEqual(fused[0], scalar[0]));
  EXPECT_TRUE(BitwiseEqual(fused[1], scalar[1]));
}

TEST(FusedOptimizerTest, SgdMomentumBitwiseMatchesScalarLoop) {
  auto make = [](std::vector<ag::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), 0.05f,
                                        /*momentum=*/0.9f);
  };
  std::vector<Tensor> fused = RunSteps(make, /*fused=*/true, 7);
  std::vector<Tensor> scalar = RunSteps(make, /*fused=*/false, 7);
  EXPECT_TRUE(BitwiseEqual(fused[0], scalar[0]));
  EXPECT_TRUE(BitwiseEqual(fused[1], scalar[1]));
}

TEST(FusedOptimizerTest, AdamBitwiseMatchesScalarLoop) {
  auto make = [](std::vector<ag::Variable> params) {
    return std::make_unique<optim::Adam>(std::move(params), 0.01f);
  };
  std::vector<Tensor> fused = RunSteps(make, /*fused=*/true, 7);
  std::vector<Tensor> scalar = RunSteps(make, /*fused=*/false, 7);
  EXPECT_TRUE(BitwiseEqual(fused[0], scalar[0]));
  EXPECT_TRUE(BitwiseEqual(fused[1], scalar[1]));
}

TEST(FusedOptimizerTest, AdamWeightDecayBitwiseMatchesScalarLoop) {
  auto make = [](std::vector<ag::Variable> params) {
    return std::make_unique<optim::Adam>(std::move(params), 0.01f, 0.9f,
                                         0.999f, 1e-8f,
                                         /*weight_decay=*/0.01f);
  };
  std::vector<Tensor> fused = RunSteps(make, /*fused=*/true, 7);
  std::vector<Tensor> scalar = RunSteps(make, /*fused=*/false, 7);
  EXPECT_TRUE(BitwiseEqual(fused[0], scalar[0]));
  EXPECT_TRUE(BitwiseEqual(fused[1], scalar[1]));
}

TEST(FusedOptimizerTest, SgdMomentumSkipsParametersWithoutGradient) {
  for (const bool fused : {true, false}) {
    ag::FusedKernels::SetEnabled(fused);
    ag::Variable a = ag::Variable::Leaf(Tensor::Ones({2}), true);
    ag::Variable b = ag::Variable::Leaf(Tensor::Ones({2}), true);
    optim::Sgd sgd({a, b}, 0.1f, /*momentum=*/0.9f);
    a.AccumulateGrad(Tensor::Ones({2}));
    sgd.Step();
    EXPECT_NE(a.data().data()[0], 1.0f);
    // No gradient: no velocity decay, no parameter touch.
    EXPECT_EQ(b.data().data()[0], 1.0f);
  }
  ag::FusedKernels::SetEnabled(true);
}

// ---------------------------------------------------------------------------
// Gradient clipping
// ---------------------------------------------------------------------------

TEST(ClipGradNormTest, LeavesSmallGradientsUntouched) {
  ag::Variable w = ag::Variable::Leaf(Tensor::Zeros({3}), true);
  w.AccumulateGrad(Tensor::FromVector({3}, {0.1f, 0.2f, 0.2f}));
  const float norm = optim::ClipGradNorm({w}, 5.0f);
  EXPECT_NEAR(norm, 0.3f, 1e-5f);
  EXPECT_NEAR(w.grad().data()[0], 0.1f, 1e-6f);
}

TEST(ClipGradNormTest, ScalesLargeGradientsToMaxNorm) {
  ag::Variable a = ag::Variable::Leaf(Tensor::Zeros({2}), true);
  ag::Variable b = ag::Variable::Leaf(Tensor::Zeros({2}), true);
  a.AccumulateGrad(Tensor::FromVector({2}, {30.0f, 0.0f}));
  b.AccumulateGrad(Tensor::FromVector({2}, {0.0f, 40.0f}));
  const float norm = optim::ClipGradNorm({a, b}, 5.0f);
  EXPECT_NEAR(norm, 50.0f, 1e-3f);
  // Post-clip global norm is max_norm; direction preserved.
  const float ga = a.grad().data()[0];
  const float gb = b.grad().data()[1];
  EXPECT_NEAR(std::sqrt(ga * ga + gb * gb), 5.0f, 1e-3f);
  EXPECT_NEAR(ga / gb, 30.0f / 40.0f, 1e-4f);
}

TEST(ClipGradNormTest, IgnoresMissingGradients) {
  ag::Variable a = ag::Variable::Leaf(Tensor::Zeros({2}), true);
  EXPECT_EQ(optim::ClipGradNorm({a}, 1.0f), 0.0f);
}

// ---------------------------------------------------------------------------
// LR schedule (the paper's: /10 every 10 epochs starting at epoch 20)
// ---------------------------------------------------------------------------

TEST(StepDecayScheduleTest, MatchesPaperRecipe) {
  optim::StepDecaySchedule schedule(0.01f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(0), 0.01f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(19), 0.01f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(20), 0.001f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(29), 0.001f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(30), 0.0001f);
  EXPECT_NEAR(schedule.LrForEpoch(45), 1e-5f, 1e-9f);
}

TEST(StepDecayScheduleTest, CustomFactorAndPeriod) {
  optim::StepDecaySchedule schedule(1.0f, /*first_decay_epoch=*/2,
                                    /*period=*/3, /*factor=*/0.5f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(1), 1.0f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(2), 0.5f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(4), 0.5f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(5), 0.25f);
}

}  // namespace
}  // namespace enhancenet
