// Property-based tests: the optimized kernels in tensor_ops must agree with
// naive reference implementations on randomized shapes and values, and obey
// algebraic identities. Each property sweeps several seeds via TEST_P.

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

using ::enhancenet::testing::ExpectTensorNear;

class TensorPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};

  int64_t RandomDim(int64_t lo = 1, int64_t hi = 7) {
    return lo + static_cast<int64_t>(
                    rng_.UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }
};

// --- GEMM vs naive triple loop ----------------------------------------------

TEST_P(TensorPropertyTest, GemmMatchesNaive) {
  const int64_t m = RandomDim(1, 12);
  const int64_t k = RandomDim(1, 12);
  const int64_t n = RandomDim(1, 12);
  Tensor a = Tensor::Randn({m, k}, rng_);
  Tensor b = Tensor::Randn({k, n}, rng_);
  Tensor fast = ops::MatMul(a, b);
  Tensor naive({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at({i, kk})) * b.at({kk, j});
      }
      naive.at({i, j}) = static_cast<float>(acc);
    }
  }
  ExpectTensorNear(fast, naive, 1e-4f);
}

TEST_P(TensorPropertyTest, GemmTransposeIdentity) {
  // (A·B)ᵀ == Bᵀ·Aᵀ
  const int64_t m = RandomDim(2, 8);
  const int64_t k = RandomDim(2, 8);
  const int64_t n = RandomDim(2, 8);
  Tensor a = Tensor::Randn({m, k}, rng_);
  Tensor b = Tensor::Randn({k, n}, rng_);
  Tensor left = ops::Transpose2D(ops::MatMul(a, b));
  Tensor right = ops::MatMul(ops::Transpose2D(b), ops::Transpose2D(a));
  ExpectTensorNear(left, right, 1e-4f);
}

TEST_P(TensorPropertyTest, BatchGemmMatchesLoopedGemm) {
  const int64_t batch = RandomDim(1, 4);
  const int64_t m = RandomDim(1, 6);
  const int64_t k = RandomDim(1, 6);
  const int64_t n = RandomDim(1, 6);
  Tensor a = Tensor::Randn({batch, m, k}, rng_);
  Tensor b = Tensor::Randn({batch, k, n}, rng_);
  Tensor fast = ops::BatchMatMul(a, b);
  for (int64_t i = 0; i < batch; ++i) {
    Tensor ai = ops::Slice(a, 0, i, 1).Reshape({m, k});
    Tensor bi = ops::Slice(b, 0, i, 1).Reshape({k, n});
    ExpectTensorNear(ops::Slice(fast, 0, i, 1).Reshape({m, n}),
                     ops::MatMul(ai, bi), 1e-4f);
  }
}

// --- broadcasting vs scalar loop ----------------------------------------------

TEST_P(TensorPropertyTest, BroadcastAddMatchesElementwiseDefinition) {
  // Build two random shapes that broadcast: start from a full shape and
  // randomly squash dims of one operand to 1 (or drop leading dims).
  Shape full;
  const int64_t rank = RandomDim(1, 4);
  for (int64_t d = 0; d < rank; ++d) full.push_back(RandomDim(1, 5));
  Shape shape_b = full;
  for (auto& dim : shape_b) {
    if (rng_.Uniform() < 0.4) dim = 1;
  }
  const int64_t drop = static_cast<int64_t>(
      rng_.UniformInt(static_cast<uint64_t>(shape_b.size())));
  shape_b.erase(shape_b.begin(), shape_b.begin() + drop);
  if (shape_b.empty()) shape_b = {1};

  Tensor a = Tensor::Randn(full, rng_);
  Tensor b = Tensor::Randn(shape_b, rng_);
  Tensor out = ops::Add(a, b);
  ASSERT_EQ(ShapeToString(out.shape()),
            ShapeToString(ops::BroadcastShapes(full, shape_b)));

  // Reference: explicit index arithmetic.
  const Shape& os = out.shape();
  std::vector<int64_t> idx(os.size(), 0);
  for (int64_t flat = 0; flat < out.numel(); ++flat) {
    // Decompose flat into idx.
    int64_t rem = flat;
    for (int64_t d = static_cast<int64_t>(os.size()) - 1; d >= 0; --d) {
      idx[static_cast<size_t>(d)] = rem % os[static_cast<size_t>(d)];
      rem /= os[static_cast<size_t>(d)];
    }
    auto value_at = [&](const Tensor& t) {
      const Shape& shape = t.shape();
      int64_t flat_in = 0;
      const int64_t offset =
          static_cast<int64_t>(os.size()) - static_cast<int64_t>(shape.size());
      for (size_t d = 0; d < shape.size(); ++d) {
        const int64_t full_idx = idx[static_cast<size_t>(offset) + d];
        const int64_t in_idx = shape[d] == 1 ? 0 : full_idx;
        flat_in = flat_in * shape[d] + in_idx;
      }
      return t.data()[flat_in];
    };
    ASSERT_NEAR(out.data()[flat], value_at(a) + value_at(b), 1e-5f)
        << "flat=" << flat;
  }
}

TEST_P(TensorPropertyTest, ReduceToShapeIsAdjointOfBroadcast) {
  // <broadcast(b), g> == <b, reduce(g)> for all g — the defining property
  // the autograd engine relies on.
  Shape full = {RandomDim(1, 4), RandomDim(1, 4), RandomDim(1, 4)};
  Shape small = full;
  for (auto& dim : small) {
    if (rng_.Uniform() < 0.5) dim = 1;
  }
  Tensor b = Tensor::Randn(small, rng_);
  Tensor g = Tensor::Randn(full, rng_);
  Tensor broadcast_b = ops::Add(b, Tensor::Zeros(full));
  const float lhs = ops::SumAll(ops::Mul(broadcast_b, g)).item();
  const float rhs =
      ops::SumAll(ops::Mul(b, ops::ReduceToShape(g, small))).item();
  EXPECT_NEAR(lhs, rhs, 1e-3f + 1e-4f * std::fabs(lhs));
}

// --- movement op identities ------------------------------------------------

TEST_P(TensorPropertyTest, SliceConcatRoundTrip) {
  const int64_t rank = RandomDim(1, 4);
  Shape shape;
  for (int64_t d = 0; d < rank; ++d) shape.push_back(RandomDim(2, 6));
  Tensor t = Tensor::Randn(shape, rng_);
  const int64_t axis = static_cast<int64_t>(
      rng_.UniformInt(static_cast<uint64_t>(rank)));
  const int64_t len = shape[static_cast<size_t>(axis)];
  const int64_t cut = 1 + static_cast<int64_t>(
                              rng_.UniformInt(static_cast<uint64_t>(len - 1)));
  Tensor left = ops::Slice(t, axis, 0, cut);
  Tensor right = ops::Slice(t, axis, cut, len - cut);
  ExpectTensorNear(ops::Concat({left, right}, axis), t, 0.0f);
}

TEST_P(TensorPropertyTest, PadThenSliceIsIdentity) {
  Shape shape = {RandomDim(1, 5), RandomDim(1, 5)};
  Tensor t = Tensor::Randn(shape, rng_);
  const int64_t axis = static_cast<int64_t>(rng_.UniformInt(2));
  const int64_t before = RandomDim(0, 3);
  const int64_t after = RandomDim(0, 3);
  Tensor padded = ops::PadAxis(t, axis, before, after);
  ExpectTensorNear(
      ops::Slice(padded, axis, before, shape[static_cast<size_t>(axis)]), t,
      0.0f);
}

TEST_P(TensorPropertyTest, TransposeIsInvolution) {
  Shape shape = {RandomDim(1, 5), RandomDim(1, 5), RandomDim(1, 5),
                 RandomDim(1, 5)};
  Tensor t = Tensor::Randn(shape, rng_);
  const int64_t d0 = static_cast<int64_t>(rng_.UniformInt(4));
  const int64_t d1 = static_cast<int64_t>(rng_.UniformInt(4));
  ExpectTensorNear(ops::Transpose(ops::Transpose(t, d0, d1), d0, d1), t,
                   0.0f);
}

// --- reductions ---------------------------------------------------------------

TEST_P(TensorPropertyTest, SumAxisTotalsMatchSumAll) {
  Shape shape = {RandomDim(1, 5), RandomDim(1, 5), RandomDim(1, 5)};
  Tensor t = Tensor::Randn(shape, rng_);
  const float total = ops::SumAll(t).item();
  for (int64_t axis = 0; axis < 3; ++axis) {
    Tensor partial = ops::Sum(t, axis, false);
    EXPECT_NEAR(ops::SumAll(partial).item(), total,
                1e-3f + 1e-4f * std::fabs(total));
  }
}

TEST_P(TensorPropertyTest, SoftmaxInvariantToRowShift) {
  Tensor t = Tensor::Randn({RandomDim(1, 5), RandomDim(2, 6)}, rng_);
  Tensor shifted = ops::AddScalar(t, 7.5f);
  ExpectTensorNear(ops::SoftmaxLastDim(shifted), ops::SoftmaxLastDim(t),
                   1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace enhancenet
