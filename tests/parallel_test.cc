#include "runtime/parallel.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace enhancenet {
namespace {

// Every test restores the global thread count so ordering never leaks.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(ParallelTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(GetNumThreads(), 1);
}

TEST_F(ParallelTest, SetNumThreadsClampsToOne) {
  SetNumThreads(0);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(-7);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(4);
  EXPECT_EQ(GetNumThreads(), 4);
}

TEST_F(ParallelTest, EmptyRangeNeverInvokes) {
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ParallelTest, RangeAtMostGrainRunsInlineAsOneChunk) {
  SetNumThreads(4);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(3, 20, 100, [&](int64_t b, int64_t e) {
    chunks.emplace_back(b, e);  // single inline call: no race possible
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 3);
  EXPECT_EQ(chunks[0].second, 20);
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  SetNumThreads(4);
  const int64_t n = 10007;  // prime: no chunking lines up evenly
  std::vector<int> hits(n, 0);
  ParallelFor(0, n, 16, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[i];  // index owned by one chunk
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST_F(ParallelTest, GrainIsMinimumChunkSizeExceptFinalChunk) {
  SetNumThreads(4);
  const int64_t n = 977;
  const int64_t grain = 100;
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(0, n, grain, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  ASSERT_FALSE(chunks.empty());
  int undersized = 0;
  for (const auto& [b, e] : chunks) {
    ASSERT_LT(b, e);
    if (e - b < grain) ++undersized;
  }
  EXPECT_LE(undersized, 1);
}

TEST_F(ParallelTest, PropagatesFirstExceptionAndPoolSurvives) {
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 100000, 1,
                  [&](int64_t b, int64_t) {
                    if (b >= 25000) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must be reusable after an exception.
  std::atomic<int64_t> total{0};
  ParallelFor(0, 1000, 1, [&](int64_t b, int64_t e) { total += e - b; });
  EXPECT_EQ(total.load(), 1000);
}

TEST_F(ParallelTest, NestedCallsRunInlineWithoutDeadlock) {
  SetNumThreads(4);
  const int64_t outer = 64;
  const int64_t inner = 50;
  std::atomic<int64_t> count{0};
  ParallelFor(0, outer, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      EXPECT_TRUE(InParallelRegion());
      int64_t local = 0;  // inner region is inline: no race on `local`
      ParallelFor(0, inner, 1, [&](int64_t ib, int64_t ie) { local += ie - ib; });
      count += local;
    }
  });
  EXPECT_EQ(count.load(), outer * inner);
}

TEST_F(ParallelTest, SingleThreadRunsOnCallingThread) {
  SetNumThreads(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  ParallelFor(0, 100000, 1, [&](int64_t, int64_t) {
    if (std::this_thread::get_id() != caller) all_on_caller = false;
  });
  EXPECT_TRUE(all_on_caller);
}

// Regression test for the late-waking-worker race: a worker woken for job N
// but scheduled only after job N completed must not enter the (already
// reused) job state of job N+1 — pre-fix this invoked a dangling
// std::function from the previous ParallelFor frame. Tiny back-to-back
// regions maximize that window; run under TSAN this reported the race.
TEST_F(ParallelTest, BackToBackTinyRegionsSurviveLateWakingWorkers) {
  SetNumThreads(4);
  for (int iter = 0; iter < 5000; ++iter) {
    std::vector<int> out(64, 0);
    ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) out[static_cast<size_t>(i)] = 1;
    });
    int64_t covered = 0;
    for (int v : out) covered += v;
    ASSERT_EQ(covered, 64);
  }
}

TEST_F(ParallelTest, ParallelSumBitwiseInvariantAcrossThreadCounts) {
  const int64_t n = 300000;
  std::vector<float> values(n);
  for (int64_t i = 0; i < n; ++i) {
    values[i] = 1.0f / static_cast<float>(i + 1) - 0.001f * static_cast<float>(i % 97);
  }
  auto run = [&] {
    return ParallelSum(n, [&](int64_t lo, int64_t hi) {
      double s = 0.0;
      for (int64_t i = lo; i < hi; ++i) s += values[i];
      return s;
    });
  };
  SetNumThreads(1);
  const double serial = run();
  SetNumThreads(4);
  const double threaded = run();
  EXPECT_EQ(serial, threaded);  // bitwise: fixed block combine order
}

}  // namespace
}  // namespace enhancenet
