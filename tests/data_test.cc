#include <algorithm>
#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

using ::enhancenet::testing::ExpectTensorNear;

// ---------------------------------------------------------------------------
// Splits
// ---------------------------------------------------------------------------

TEST(SplitsTest, PaperFractions) {
  data::Splits s = data::ChronologicalSplits(1000);
  EXPECT_EQ(s.train_end, 700);
  EXPECT_EQ(s.val_end, 800);
  EXPECT_EQ(s.total, 1000);
}

TEST(SplitsTest, CustomFractions) {
  data::Splits s = data::ChronologicalSplits(100, 0.5, 0.25);
  EXPECT_EQ(s.train_end, 50);
  EXPECT_EQ(s.val_end, 75);
}

TEST(SplitsTest, TinySeriesStaysOrdered) {
  data::Splits s = data::ChronologicalSplits(5);
  EXPECT_LT(s.train_end, s.val_end);
  EXPECT_LT(s.val_end, s.total);
  EXPECT_GE(s.train_end, 1);
}

TEST(SplitsTest, MinimumThreeStepsSplitsOnePerSection) {
  data::Splits s = data::ChronologicalSplits(3);
  EXPECT_EQ(s.train_end, 1);
  EXPECT_EQ(s.val_end, 2);
  EXPECT_EQ(s.total, 3);
}

TEST(SplitsDeathTest, FewerThanThreeStepsIsChecked) {
  // Below 3 steps the clamp bounds invert (std::clamp would be UB), so the
  // precondition must fail loudly instead.
  EXPECT_DEATH(data::ChronologicalSplits(2), "needs >= 3 steps");
  EXPECT_DEATH(data::ChronologicalSplits(0), "needs >= 3 steps");
}

// ---------------------------------------------------------------------------
// StandardScaler
// ---------------------------------------------------------------------------

TEST(ScalerTest, FitsPerChannelStats) {
  // Channel 0 constant 4 (std->~0), channel 1 is {0,2} (mean 1, std 1).
  Tensor series({1, 2, 2});
  series.at({0, 0, 0}) = 4.0f;
  series.at({0, 1, 0}) = 4.0f;
  series.at({0, 0, 1}) = 0.0f;
  series.at({0, 1, 1}) = 2.0f;
  data::StandardScaler scaler;
  scaler.Fit(series, 0, 2);
  EXPECT_FLOAT_EQ(scaler.mean(0), 4.0f);
  EXPECT_FLOAT_EQ(scaler.mean(1), 1.0f);
  EXPECT_NEAR(scaler.stddev(1), 1.0f, 1e-5f);
}

TEST(ScalerTest, TransformInverseRoundTrip) {
  Rng rng(1);
  Tensor series = Tensor::Randn({3, 50, 2}, rng, 5.0f);
  data::StandardScaler scaler;
  scaler.Fit(series, 0, 40);
  Tensor scaled = scaler.Transform(series);
  // Target channel (0) inverse-transform recovers originals.
  Tensor channel0({3, 50});
  Tensor scaled0({3, 50});
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t t = 0; t < 50; ++t) {
      channel0.at({i, t}) = series.at({i, t, 0});
      scaled0.at({i, t}) = scaled.at({i, t, 0});
    }
  }
  ExpectTensorNear(scaler.InverseTarget(scaled0, 0), channel0, 1e-3f);
}

TEST(ScalerTest, FitRangeExcludesTestData) {
  Tensor series({1, 4, 1});
  series.at({0, 0, 0}) = 0.0f;
  series.at({0, 1, 0}) = 2.0f;
  series.at({0, 2, 0}) = 100.0f;  // "test" outlier
  series.at({0, 3, 0}) = 100.0f;
  data::StandardScaler scaler;
  scaler.Fit(series, 0, 2);
  EXPECT_FLOAT_EQ(scaler.mean(0), 1.0f);  // unaffected by the outliers
}

TEST(ScalerTest, TrainSplitScaledToZeroMeanUnitVar) {
  Rng rng(2);
  Tensor series = Tensor::Randn({4, 100, 1}, rng, 3.0f);
  data::StandardScaler scaler;
  scaler.Fit(series, 0, 100);
  Tensor scaled = scaler.Transform(series);
  double sum = 0.0;
  double sq = 0.0;
  for (int64_t i = 0; i < scaled.numel(); ++i) {
    sum += scaled.data()[i];
    sq += static_cast<double>(scaled.data()[i]) * scaled.data()[i];
  }
  const double n = static_cast<double>(scaled.numel());
  EXPECT_NEAR(sum / n, 0.0, 1e-3);
  EXPECT_NEAR(sq / n, 1.0, 1e-2);
}

// ---------------------------------------------------------------------------
// WindowDataset
// ---------------------------------------------------------------------------

class WindowDatasetTest : public ::testing::Test {
 protected:
  // series[i, t, 0] = 1000*i + t makes window contents fully checkable.
  WindowDatasetTest() : series_({2, 60, 1}) {
    for (int64_t i = 0; i < 2; ++i) {
      for (int64_t t = 0; t < 60; ++t) {
        series_.at({i, t, 0}) = static_cast<float>(1000 * i + t);
      }
    }
  }
  Tensor series_;
};

TEST_F(WindowDatasetTest, WindowCountMatchesFormula) {
  data::WindowDataset ds(series_, series_, 0, 0, 60, 12, 12, 1);
  // Anchors: t in [11, 60-12) -> 48-11 = 37 windows.
  EXPECT_EQ(ds.num_windows(), 37);
}

TEST_F(WindowDatasetTest, StrideSubsamples) {
  data::WindowDataset ds(series_, series_, 0, 0, 60, 12, 12, 5);
  EXPECT_EQ(ds.num_windows(), 8);
}

TEST_F(WindowDatasetTest, InputAndTargetAlignment) {
  data::WindowDataset ds(series_, series_, 0, 0, 60, 12, 12, 1);
  data::Batch batch = ds.MakeBatch({0});
  // First anchor t=11: inputs 0..11, targets 12..23.
  EXPECT_FLOAT_EQ(batch.x.at({0, 0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(batch.x.at({0, 0, 11, 0}), 11.0f);
  EXPECT_FLOAT_EQ(batch.y_raw.at({0, 0, 0}), 12.0f);
  EXPECT_FLOAT_EQ(batch.y_raw.at({0, 0, 11}), 23.0f);
  // Entity 1 offsets by 1000.
  EXPECT_FLOAT_EQ(batch.x.at({0, 1, 0, 0}), 1000.0f);
  EXPECT_FLOAT_EQ(batch.y_raw.at({0, 1, 0}), 1012.0f);
}

TEST_F(WindowDatasetTest, RangeRestrictionKeepsWindowsInside) {
  data::WindowDataset ds(series_, series_, 0, 30, 60, 12, 12, 1);
  data::Batch batch = ds.MakeBatch({0});
  // First anchor is 30+11=41: no input earlier than t=30.
  EXPECT_FLOAT_EQ(batch.x.at({0, 0, 0, 0}), 30.0f);
  // Last window's targets stay below 60.
  data::Batch last = ds.MakeBatch({ds.num_windows() - 1});
  EXPECT_LE(last.y_raw.at({0, 0, 11}), 59.0f);
}

TEST_F(WindowDatasetTest, ScaledAndRawChannelsDiffer) {
  Tensor scaled = series_.Clone();
  for (int64_t i = 0; i < scaled.numel(); ++i) scaled.data()[i] *= 0.001f;
  data::WindowDataset ds(scaled, series_, 0, 0, 60, 4, 2, 1);
  data::Batch batch = ds.MakeBatch({0});
  EXPECT_FLOAT_EQ(batch.y_scaled.at({0, 0, 0}),
                  0.001f * batch.y_raw.at({0, 0, 0}));
}

TEST_F(WindowDatasetTest, ShuffledBatchesCoverAllWindowsOnce) {
  data::WindowDataset ds(series_, series_, 0, 0, 60, 12, 12, 1);
  Rng rng(3);
  auto batches = ds.ShuffledBatches(10, rng);
  std::set<int64_t> seen;
  int64_t total = 0;
  for (const auto& batch : batches) {
    for (int64_t idx : batch) {
      seen.insert(idx);
      ++total;
    }
  }
  EXPECT_EQ(total, ds.num_windows());
  EXPECT_EQ(static_cast<int64_t>(seen.size()), ds.num_windows());
}

TEST_F(WindowDatasetTest, ShuffleIsDeterministicPerSeed) {
  data::WindowDataset ds(series_, series_, 0, 0, 60, 12, 12, 1);
  Rng rng1(4);
  Rng rng2(4);
  EXPECT_EQ(ds.ShuffledBatches(7, rng1), ds.ShuffledBatches(7, rng2));
}

TEST_F(WindowDatasetTest, SequentialBatchesPreserveOrder) {
  data::WindowDataset ds(series_, series_, 0, 0, 60, 12, 12, 1);
  auto batches = ds.SequentialBatches(10);
  EXPECT_EQ(batches[0][0], 0);
  EXPECT_EQ(batches[0][9], 9);
  EXPECT_EQ(batches[1][0], 10);
}

// ---------------------------------------------------------------------------
// Synthetic traffic generator
// ---------------------------------------------------------------------------

class TrafficDataTest : public ::testing::Test {
 protected:
  TrafficDataTest() {
    config_.num_sensors = 16;
    config_.num_days = 3;
    config_.steps_per_day = 96;  // 15-min steps keep the test fast
    config_.num_highways = 2;
    config_.seed = 5;
    data_ = data::MakeTrafficData(config_);
  }
  data::TrafficConfig config_;
  data::CtsData data_;
};

TEST_F(TrafficDataTest, ShapesMatchConfig) {
  EXPECT_EQ(data_.num_entities(), 16);
  EXPECT_EQ(data_.num_steps(), 3 * 96);
  EXPECT_EQ(data_.num_channels(), 1);
  EXPECT_EQ(ShapeToString(data_.distances.shape()), "[16, 16]");
  EXPECT_EQ(ShapeToString(data_.locations.shape()), "[16, 2]");
}

TEST_F(TrafficDataTest, DeterministicPerSeed) {
  data::CtsData again = data::MakeTrafficData(config_);
  ExpectTensorNear(again.series, data_.series, 0.0f);
  ExpectTensorNear(again.distances, data_.distances, 0.0f);
}

TEST_F(TrafficDataTest, DifferentSeedsDiffer) {
  auto config = config_;
  config.seed = 6;
  data::CtsData other = data::MakeTrafficData(config);
  EXPECT_FALSE(ops::AllClose(other.series, data_.series, 1e-3f, 1e-3f));
}

TEST_F(TrafficDataTest, SpeedsInPhysicalRange) {
  for (int64_t i = 0; i < data_.series.numel(); ++i) {
    const float v = data_.series.data()[i];
    EXPECT_GE(v, 3.0f);
    EXPECT_LE(v, 80.0f);
  }
}

TEST_F(TrafficDataTest, DistancesAreDirected) {
  // Upstream travel is penalized, so distances must be asymmetric somewhere.
  float max_asym = 0.0f;
  for (int64_t i = 0; i < 16; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      max_asym = std::max(max_asym, std::fabs(data_.distances.at({i, j}) -
                                              data_.distances.at({j, i})));
    }
  }
  EXPECT_GT(max_asym, 0.1f);
}

TEST_F(TrafficDataTest, DistancesHaveZeroDiagonal) {
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(data_.distances.at({i, i}), 0.0f);
  }
}

TEST_F(TrafficDataTest, PeakHoursSlowerThanNight) {
  // Average over all sensors and weekdays: 8am slower than 3am.
  const int64_t spd = config_.steps_per_day;
  double night = 0.0;
  double peak = 0.0;
  int64_t count = 0;
  for (int64_t day = 0; day < 3; ++day) {
    if (day % 7 >= 5) continue;
    for (int64_t i = 0; i < 16; ++i) {
      night += data_.series.at({i, day * spd + spd * 3 / 24, 0});
      peak += data_.series.at({i, day * spd + spd * 8 / 24, 0});
      ++count;
    }
  }
  EXPECT_LT(peak / count, night / count);
}

TEST_F(TrafficDataTest, EntitiesHaveDistinctProfiles) {
  // Daily profiles averaged across days must differ across sensors —
  // the "distinct temporal dynamics" DFGN targets.
  const int64_t spd = config_.steps_per_day;
  Tensor profile({16, spd});
  for (int64_t i = 0; i < 16; ++i) {
    for (int64_t s = 0; s < spd; ++s) {
      double total = 0.0;
      for (int64_t day = 0; day < 3; ++day) {
        total += data_.series.at({i, day * spd + s, 0});
      }
      profile.at({i, s}) = static_cast<float>(total / 3.0);
    }
  }
  // Compare pairwise L2; require substantial spread.
  double min_dist = 1e30;
  for (int64_t i = 0; i < 16; ++i) {
    for (int64_t j = i + 1; j < 16; ++j) {
      double sq = 0.0;
      for (int64_t s = 0; s < spd; ++s) {
        const double d = profile.at({i, s}) - profile.at({j, s});
        sq += d * d;
      }
      min_dist = std::min(min_dist, std::sqrt(sq / spd));
    }
  }
  EXPECT_GT(min_dist, 0.5);
}

TEST(TrafficPresetsTest, LaHasTimeChannel) {
  data::CtsData la = data::MakeLaLike(12, 2);
  EXPECT_EQ(la.num_channels(), 2);
  EXPECT_EQ(la.name, "LA-like");
  // Time channel cycles within [0, 1).
  for (int64_t t = 0; t < la.num_steps(); ++t) {
    const float v = la.series.at({0, t, 1});
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(TrafficPresetsTest, EbIsSingleChannel) {
  data::CtsData eb = data::MakeEbLike(12, 2);
  EXPECT_EQ(eb.num_channels(), 1);
  EXPECT_EQ(eb.name, "EB-like");
}

// ---------------------------------------------------------------------------
// Synthetic weather generator
// ---------------------------------------------------------------------------

class WeatherDataTest : public ::testing::Test {
 protected:
  WeatherDataTest() {
    config_.num_stations = 16;
    config_.num_days = 30;
    config_.seed = 7;
    data_ = data::MakeWeatherData(config_);
  }
  data::WeatherConfig config_;
  data::CtsData data_;
};

TEST_F(WeatherDataTest, SixChannelsHourly) {
  EXPECT_EQ(data_.num_channels(), 6);
  EXPECT_EQ(data_.num_steps(), 30 * 24);
  EXPECT_EQ(data_.steps_per_day, 24);
  EXPECT_EQ(data_.target_channel, 0);
}

TEST_F(WeatherDataTest, DeterministicPerSeed) {
  data::CtsData again = data::MakeWeatherData(config_);
  ExpectTensorNear(again.series, data_.series, 0.0f);
}

TEST_F(WeatherDataTest, ChannelsInPhysicalRanges) {
  for (int64_t i = 0; i < data_.num_entities(); ++i) {
    for (int64_t t = 0; t < data_.num_steps(); ++t) {
      EXPECT_GT(data_.series.at({i, t, 0}), 230.0f);  // temperature (Kelvin)
      EXPECT_LT(data_.series.at({i, t, 0}), 330.0f);
      EXPECT_GE(data_.series.at({i, t, 1}), 5.0f);  // humidity
      EXPECT_LE(data_.series.at({i, t, 1}), 100.0f);
      EXPECT_GT(data_.series.at({i, t, 2}), 960.0f);  // pressure
      EXPECT_LT(data_.series.at({i, t, 2}), 1060.0f);
      EXPECT_GE(data_.series.at({i, t, 3}), 0.0f);  // wind direction
      EXPECT_LT(data_.series.at({i, t, 3}), 360.0f);
      EXPECT_GE(data_.series.at({i, t, 4}), 0.0f);  // wind speed
      EXPECT_GE(data_.series.at({i, t, 5}), 0.0f);  // code
      EXPECT_LE(data_.series.at({i, t, 5}), 3.0f);
    }
  }
}

TEST_F(WeatherDataTest, SymmetricEuclideanDistances) {
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(data_.distances.at({i, i}), 0.0f);
    for (int64_t j = 0; j < 16; ++j) {
      EXPECT_FLOAT_EQ(data_.distances.at({i, j}), data_.distances.at({j, i}));
    }
  }
}

TEST_F(WeatherDataTest, DiurnalCycleVisible) {
  // Afternoon warmer than pre-dawn on average.
  double dawn = 0.0;
  double afternoon = 0.0;
  int64_t count = 0;
  for (int64_t day = 0; day < 30; ++day) {
    for (int64_t i = 0; i < 16; ++i) {
      dawn += data_.series.at({i, day * 24 + 4, 0});
      afternoon += data_.series.at({i, day * 24 + 14, 0});
      ++count;
    }
  }
  EXPECT_GT(afternoon / count, dawn / count);
}

TEST_F(WeatherDataTest, NearbyStationsCorrelateMoreThanDistant) {
  // Pearson correlation of temperature between closest vs farthest pair.
  auto correlation = [&](int64_t a, int64_t b) {
    const int64_t t_total = data_.num_steps();
    double ma = 0.0;
    double mb = 0.0;
    for (int64_t t = 0; t < t_total; ++t) {
      ma += data_.series.at({a, t, 0});
      mb += data_.series.at({b, t, 0});
    }
    ma /= t_total;
    mb /= t_total;
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (int64_t t = 0; t < t_total; ++t) {
      const double da = data_.series.at({a, t, 0}) - ma;
      const double db = data_.series.at({b, t, 0}) - mb;
      cov += da * db;
      va += da * da;
      vb += db * db;
    }
    return cov / std::sqrt(va * vb + 1e-12);
  };
  // Find nearest and farthest pair from station 0.
  int64_t nearest = 1;
  int64_t farthest = 1;
  for (int64_t j = 1; j < 16; ++j) {
    if (data_.distances.at({0, j}) < data_.distances.at({0, nearest})) {
      nearest = j;
    }
    if (data_.distances.at({0, j}) > data_.distances.at({0, farthest})) {
      farthest = j;
    }
  }
  EXPECT_GT(correlation(0, nearest), correlation(0, farthest) - 0.05);
}

}  // namespace
}  // namespace enhancenet
