// Stress tests for the autograd engine: randomly composed programs over the
// differentiable op set must (a) produce gradients that match finite
// differences, (b) be invariant to how results are shared/reused, and
// (c) never corrupt unrelated state. A hand-rolled reverse-mode engine
// earns its keep here, not in single-op tests.

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;
using ::enhancenet::testing::ExpectGradientsMatch;

/// Builds a random scalar-valued program over `inputs` using a fixed op
/// palette. All intermediate shapes stay [rows, cols]; ops that would be
/// numerically unstable under finite differences (relu/abs near 0) are
/// shifted away from their kinks.
class RandomProgram {
 public:
  RandomProgram(uint64_t seed, int64_t rows, int64_t cols, int depth)
      : seed_(seed), rows_(rows), cols_(cols), depth_(depth) {}

  ag::Variable Run(const std::vector<ag::Variable>& inputs) const {
    Rng rng(seed_);  // same seed -> same program every call
    std::vector<ag::Variable> pool = inputs;
    for (int step = 0; step < depth_; ++step) {
      const auto pick = [&]() -> const ag::Variable& {
        return pool[rng.UniformInt(pool.size())];
      };
      ag::Variable result;
      switch (rng.UniformInt(10)) {
        case 0:
          result = ag::Add(pick(), pick());
          break;
        case 1:
          result = ag::Sub(pick(), pick());
          break;
        case 2:
          result = ag::Mul(pick(), pick());
          break;
        case 3:
          result = ag::Tanh(pick());
          break;
        case 4:
          result = ag::Sigmoid(pick());
          break;
        case 5:
          // Shift keeps |x| comfortably above the finite-difference step.
          result = ag::Relu(ag::AddScalar(pick(), 1.5f));
          break;
        case 6:
          result = ag::MulScalar(pick(), 0.7f);
          break;
        case 7:
          result = ag::SoftmaxLastDim(pick());
          break;
        case 8:
          result = ag::Transpose(
              ag::MatMul(pick(), ag::Transpose(pick(), 0, 1)), 0, 1);
          // Result is [rows, rows]; project back to [rows, cols] via slice
          // or pad so the pool stays shape-uniform.
          if (rows_ >= cols_) {
            result = ag::Slice(result, 1, 0, cols_);
          } else {
            result = ag::PadAxis(result, 1, 0, cols_ - rows_);
          }
          break;
        default:
          result = ag::Mul(ag::Sigmoid(pick()), ag::Tanh(pick()));
          break;
      }
      pool.push_back(result);
    }
    // Weighted sum over the last value so every element matters, plus a
    // small direct term per input so every input is guaranteed to be part
    // of the graph (a random program may otherwise never sample one).
    ag::Variable last = pool.back();
    Tensor weights({rows_, cols_});
    for (int64_t i = 0; i < weights.numel(); ++i) {
      weights.data()[i] = 0.2f + 0.05f * static_cast<float>(i % 11);
    }
    ag::Variable out =
        ag::SumAll(ag::Mul(last, ag::Variable::Leaf(weights, false)));
    for (const ag::Variable& input : inputs) {
      out = ag::Add(out, ag::MulScalar(ag::SumAll(ag::Square(input)), 0.05f));
    }
    return out;
  }

 private:
  uint64_t seed_;
  int64_t rows_;
  int64_t cols_;
  int depth_;
};

class AutogradStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradStressTest, RandomProgramGradientsMatchFiniteDifferences) {
  const uint64_t seed = GetParam();
  const int64_t rows = 3;
  const int64_t cols = 4;
  Rng init(seed * 7919 + 13);
  std::vector<ag::Variable> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(
        ag::Variable::Leaf(Tensor::Randn({rows, cols}, init, 0.6f), true));
  }
  RandomProgram program(seed, rows, cols, /*depth=*/12);
  ExpectGradientsMatch([&] { return program.Run(inputs); }, inputs,
                       /*eps=*/1e-2f, /*tolerance=*/4e-2f);
}

TEST_P(AutogradStressTest, BackwardTwiceOnFreshGraphsAccumulates) {
  const uint64_t seed = GetParam();
  Rng init(seed + 31);
  ag::Variable x =
      ag::Variable::Leaf(Tensor::Randn({3, 4}, init, 0.5f), true);
  RandomProgram program(seed, 3, 4, 8);
  program.Run({x}).Backward();
  const Tensor once = x.grad().Clone();
  program.Run({x}).Backward();  // same program, fresh graph, no ZeroGrad
  const Tensor twice = x.grad().Clone();
  for (int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(twice.data()[i], 2.0f * once.data()[i],
                1e-4f + 1e-3f * std::fabs(once.data()[i]))
        << "element " << i;
  }
}

TEST_P(AutogradStressTest, ValueUnaffectedByRequiresGrad) {
  // The forward value must not depend on whether gradients are recorded.
  const uint64_t seed = GetParam();
  Rng init(seed + 77);
  Tensor data = Tensor::Randn({3, 4}, init, 0.5f);
  RandomProgram program(seed, 3, 4, 10);
  ag::Variable with_grad = ag::Variable::Leaf(data, true);
  ag::Variable without = ag::Variable::Leaf(data, false);
  const float value_grad = program.Run({with_grad}).data().item();
  const float value_plain = program.Run({without}).data().item();
  EXPECT_EQ(value_grad, value_plain);
}

TEST_P(AutogradStressTest, UnusedInputsGetNoGradient) {
  const uint64_t seed = GetParam();
  Rng init(seed + 101);
  ag::Variable used =
      ag::Variable::Leaf(Tensor::Randn({3, 4}, init, 0.5f), true);
  ag::Variable unused =
      ag::Variable::Leaf(Tensor::Randn({3, 4}, init, 0.5f), true);
  RandomProgram program(seed, 3, 4, 6);
  program.Run({used}).Backward();
  EXPECT_TRUE(used.has_grad());
  EXPECT_FALSE(unused.has_grad());
}

INSTANTIATE_TEST_SUITE_P(Programs, AutogradStressTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u, 99u, 110u));

// ---------------------------------------------------------------------------
// Targeted stress: very wide fan-out and long chains.
// ---------------------------------------------------------------------------

TEST(AutogradStressEdgeTest, WideFanOutAccumulatesAllBranches) {
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({4}), true);
  ag::Variable total;
  constexpr int kBranches = 200;
  for (int i = 0; i < kBranches; ++i) {
    ag::Variable branch = ag::MulScalar(x, 1.0f / kBranches);
    total = total.defined() ? ag::Add(total, branch) : branch;
  }
  ag::SumAll(total).Backward();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x.grad().data()[i], 1.0f, 1e-4f);
  }
}

TEST(AutogradStressEdgeTest, SharedSubgraphBackwardIsExact) {
  // y = s*s where s = sum over a 20-deep chain; chain gradient must be
  // propagated exactly once per use.
  ag::Variable x = ag::Variable::Leaf(Tensor::Full({2}, 0.1f), true);
  ag::Variable chain = x;
  for (int i = 0; i < 20; ++i) chain = ag::MulScalar(chain, 1.1f);
  ag::Variable s = ag::SumAll(chain);
  ag::Variable y = ag::Mul(s, s);
  y.Backward();
  const double scale = std::pow(1.1, 20.0);
  const double s_value = 2.0 * 0.1 * scale;
  const double expected = 2.0 * s_value * scale;  // dy/dx_i = 2 s * d s/dx_i
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(x.grad().data()[i], expected, 1e-3 * expected);
  }
}

TEST(AutogradStressEdgeTest, GradCheckThroughRealisticGruUnrolling) {
  // A miniature of the real training graph: 6-step GRU-like recurrence with
  // shared weights, checked against finite differences end to end.
  Rng rng(123);
  ag::Variable w = ag::Variable::Leaf(Tensor::Randn({3, 3}, rng, 0.4f), true);
  ag::Variable u = ag::Variable::Leaf(Tensor::Randn({3, 3}, rng, 0.4f), true);
  std::vector<Tensor> steps;
  for (int t = 0; t < 6; ++t) steps.push_back(Tensor::Randn({2, 3}, rng));
  ExpectGradientsMatch(
      [&] {
        ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({2, 3}), false);
        for (int t = 0; t < 6; ++t) {
          ag::Variable x_t = ag::Variable::Leaf(steps[t], false);
          ag::Variable gate =
              ag::Sigmoid(ag::Add(ag::MatMul(x_t, w), ag::MatMul(h, u)));
          ag::Variable cand =
              ag::Tanh(ag::Add(ag::MatMul(x_t, w), ag::MatMul(h, u)));
          ag::Variable one_minus = ag::AddScalar(ag::Neg(gate), 1.0f);
          h = ag::Add(ag::Mul(gate, h), ag::Mul(one_minus, cand));
        }
        return ag::SumAll(ag::Square(h));
      },
      {w, u}, 1e-2f, 4e-2f);
}

}  // namespace
}  // namespace enhancenet
