#include "models/arima.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace enhancenet {
namespace {

using models::ArimaConfig;
using models::ArimaModel;

/// Simulates an AR(2) process y_t = phi1 y_{t-1} + phi2 y_{t-2} + eps.
Tensor SimulateAr2(double phi1, double phi2, int64_t length, uint64_t seed,
                   double noise = 0.5) {
  Rng rng(seed);
  Tensor out({1, length});
  double y1 = 0.0;
  double y2 = 0.0;
  for (int64_t t = 0; t < length; ++t) {
    const double y = phi1 * y1 + phi2 * y2 + rng.Normal(0.0, noise);
    out.at({0, t}) = static_cast<float>(y);
    y2 = y1;
    y1 = y;
  }
  return out;
}

TEST(ArimaTest, FitRejectsShortSeries) {
  ArimaModel model;
  Tensor tiny({1, 10});
  EXPECT_FALSE(model.Fit(tiny).ok());
  EXPECT_FALSE(model.fitted());
}

TEST(ArimaTest, FitRejectsWrongRank) {
  ArimaModel model;
  Tensor wrong({2, 3, 4});
  EXPECT_EQ(model.Fit(wrong).code(), StatusCode::kInvalidArgument);
}

TEST(ArimaTest, RecoversAr2Coefficients) {
  ArimaConfig config;
  config.p = 2;
  config.d = 0;
  config.q = 0;
  ArimaModel model(config);
  Tensor series = SimulateAr2(0.6, 0.25, 4000, 11);
  ASSERT_TRUE(model.Fit(series).ok());
  const auto& phi = model.ar_coefficients(0);
  ASSERT_EQ(phi.size(), 2u);
  EXPECT_NEAR(phi[0], 0.6, 0.07);
  EXPECT_NEAR(phi[1], 0.25, 0.07);
}

TEST(ArimaTest, ForecastBeatsNaiveOnArProcess) {
  ArimaConfig config;
  config.p = 2;
  config.d = 0;
  config.q = 1;
  // Moderate persistence: the optimal one-step predictor clearly beats
  // last-value persistence here (for near-unit-root processes they tie).
  ArimaModel model(config);
  Tensor train = SimulateAr2(0.4, 0.2, 3000, 13);
  ASSERT_TRUE(model.Fit(train).ok());

  // Evaluate one-step error over fresh segments of the same process.
  Tensor full = SimulateAr2(0.4, 0.2, 600, 14);
  double arima_err = 0.0;
  double naive_err = 0.0;
  int64_t count = 0;
  for (int64_t start = 50; start + 13 < 600; start += 7) {
    Tensor window({1, 12});
    for (int64_t h = 0; h < 12; ++h) {
      window.at({0, h}) = full.at({0, start + h});
    }
    Tensor forecast = model.Forecast(window, 1);
    const double truth = full.at({0, start + 12});
    arima_err += std::fabs(forecast.at({0, 0}) - truth);
    naive_err += std::fabs(window.at({0, 11}) - truth);  // persistence
    ++count;
  }
  EXPECT_LT(arima_err / count, naive_err / count);
}

TEST(ArimaTest, ForecastShapeAndFiniteness) {
  ArimaModel model;
  Rng rng(15);
  Tensor train({3, 400});
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t t = 0; t < 400; ++t) {
      train.at({i, t}) = static_cast<float>(
          50.0 + 10.0 * std::sin(t * 0.1) + rng.Normal(0.0, 1.0));
    }
  }
  ASSERT_TRUE(model.Fit(train).ok());
  Tensor history({3, 12});
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t h = 0; h < 12; ++h) {
      history.at({i, h}) = train.at({i, 388 + h});
    }
  }
  Tensor forecast = model.Forecast(history, 12);
  EXPECT_EQ(ShapeToString(forecast.shape()), "[3, 12]");
  for (int64_t i = 0; i < forecast.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(forecast.data()[i]));
    EXPECT_GT(forecast.data()[i], 0.0f);    // stays near the signal level
    EXPECT_LT(forecast.data()[i], 100.0f);
  }
}

TEST(ArimaTest, DifferencingHandlesLinearTrend) {
  // ARIMA(1,1,0) on a noiseless linear trend must extrapolate the slope.
  ArimaConfig config;
  config.p = 1;
  config.d = 1;
  config.q = 0;
  ArimaModel model(config);
  Tensor train({1, 300});
  Rng rng(16);
  for (int64_t t = 0; t < 300; ++t) {
    train.at({0, t}) =
        static_cast<float>(2.0 * t + rng.Normal(0.0, 0.05));
  }
  ASSERT_TRUE(model.Fit(train).ok());
  Tensor window({1, 12});
  for (int64_t h = 0; h < 12; ++h) {
    window.at({0, h}) = static_cast<float>(2.0 * (300 + h));
  }
  Tensor forecast = model.Forecast(window, 3);
  EXPECT_NEAR(forecast.at({0, 0}), 2.0f * 312, 2.0f);
  EXPECT_NEAR(forecast.at({0, 2}), 2.0f * 314, 4.0f);
}

TEST(ArimaTest, ConstantSeriesForecastsConstant) {
  ArimaConfig config;
  config.p = 1;
  config.d = 0;
  config.q = 1;
  ArimaModel model(config);
  Rng rng(17);
  Tensor train({1, 300});
  for (int64_t t = 0; t < 300; ++t) {
    train.at({0, t}) = static_cast<float>(42.0 + rng.Normal(0.0, 0.01));
  }
  ASSERT_TRUE(model.Fit(train).ok());
  Tensor window = Tensor::Full({1, 12}, 42.0f);
  Tensor forecast = model.Forecast(window, 6);
  for (int64_t h = 0; h < 6; ++h) {
    EXPECT_NEAR(forecast.at({0, h}), 42.0f, 0.5f);
  }
}

TEST(ArimaTest, PerEntityModelsAreIndependent) {
  ArimaConfig config;
  config.p = 2;
  config.d = 0;
  config.q = 0;
  ArimaModel model(config);
  // Entity 0: strongly autocorrelated; entity 1: nearly white noise.
  Tensor e0 = SimulateAr2(0.8, 0.1, 2000, 18);
  Tensor e1 = SimulateAr2(0.05, 0.0, 2000, 19);
  Tensor train({2, 2000});
  std::copy(e0.data(), e0.data() + 2000, train.data());
  std::copy(e1.data(), e1.data() + 2000, train.data() + 2000);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(model.ar_coefficients(0)[0], 0.5);
  EXPECT_LT(model.ar_coefficients(1)[0], 0.3);
}

}  // namespace
}  // namespace enhancenet
