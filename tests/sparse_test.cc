// Sparse top-k dynamic adjacency suite (DESIGN.md §10).
//
// Covers the three layers of the sparse path:
//  * graph::TopKSparsify — neighbour selection vs a reference argsort,
//    tie-breaking, and full-k equivalence with the dense matmul;
//  * ag::TopKAttention / ag::SparseAdjacencyMatMul — bitwise full-k parity
//    with the dense softmax, gradients vs a masked-dense reference and vs
//    central finite differences, and bitwise determinism across thread
//    counts;
//  * Damgn / training — sparse CombinedSupports parity with the dense
//    supports at k=N, the all-masked-row softmax fallback, and the
//    steady-state allocation-free training guarantee with sparse enabled.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "core/damgn.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "graph/graph_conv.h"
#include "graph/sparse_adjacency.h"
#include "models/model_factory.h"
#include "optim/optimizer.h"
#include "runtime/allocator.h"
#include "runtime/context.h"
#include "runtime/parallel.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;
using ::enhancenet::testing::ExpectGradientsMatch;
using ::enhancenet::testing::ExpectTensorNear;

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Reference top-k: argsort by (value desc, column asc), keep k, return the
/// selected columns in ascending column order.
std::vector<int64_t> ReferenceTopK(const float* row, int64_t n, int64_t k) {
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    if (row[a] != row[b]) return row[a] > row[b];
    return a < b;
  });
  order.resize(std::min(k, n));
  std::sort(order.begin(), order.end());
  return order;
}

TEST(SparseTest, TopKSparsifyMatchesReferenceArgsort) {
  Rng rng(17);
  const int64_t batch = 3, n = 9, k = 4;
  const Tensor dense = Tensor::Randn({batch, n, n}, rng);
  const graph::SparseAdjacency sparse = graph::TopKSparsify(dense, k);
  ASSERT_EQ(sparse.index.nnz, batch * n * k);
  const float* pv = sparse.values.data().data();
  const int32_t* pc = sparse.index.cols.data();
  for (int64_t r = 0; r < batch * n; ++r) {
    const float* row = dense.data() + r * n;
    const std::vector<int64_t> want = ReferenceTopK(row, n, k);
    for (int64_t s = 0; s < k; ++s) {
      EXPECT_EQ(static_cast<int64_t>(pc[r * k + s]), want[s])
          << "row " << r << " slot " << s;
      EXPECT_EQ(pv[r * k + s], row[want[s]]);
    }
  }
  // CSR offsets are uniform-degree, CSC is a permutation of all entries.
  const int32_t* po = sparse.index.row_offsets.data();
  for (int64_t r = 0; r <= batch * n; ++r) {
    EXPECT_EQ(static_cast<int64_t>(po[r]), r * k);
  }
  std::vector<bool> seen(sparse.index.nnz, false);
  const int32_t* pt = sparse.index.t_perm.data();
  for (int64_t e = 0; e < sparse.index.nnz; ++e) {
    const int64_t entry = static_cast<int64_t>(pt[e]);
    ASSERT_GE(entry, 0);
    ASSERT_LT(entry, sparse.index.nnz);
    EXPECT_FALSE(seen[entry]) << "t_perm repeats entry " << entry;
    seen[entry] = true;
  }
}

TEST(SparseTest, TopKSparsifyTieBreaksTowardLowestColumn) {
  // Row of identical scores: the k lowest columns win.
  const int64_t n = 6, k = 3;
  Tensor dense = Tensor::Full({n, n}, 0.5f);
  const graph::SparseAdjacency sparse = graph::TopKSparsify(dense, k);
  const int32_t* pc = sparse.index.cols.data();
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t s = 0; s < k; ++s) {
      EXPECT_EQ(static_cast<int64_t>(pc[r * k + s]), s) << "row " << r;
    }
  }
}

TEST(SparseTest, Int32IndexMatchesLegacyFloatEncodingAtSmallN) {
  // PR 10 moved the index arrays from float-encoded columns (exact only
  // below 2^24) to int32 storage. At small N, where the float encoding was
  // exact, the new arrays must reproduce the legacy encoding bit-for-bit
  // once cast back through float — i.e. the storage change alone must not
  // perturb a single selected column, offset, or permutation slot.
  Rng rng(71);
  const int64_t batch = 2, n = 11, k = 4;
  const Tensor dense = Tensor::Randn({batch, n, n}, rng);
  const graph::SparseAdjacency sparse = graph::TopKSparsify(dense, k);

  // Legacy reference: the float-encoded replace-the-minimum scan exactly as
  // the float-index implementation ran it (float column slots throughout,
  // including the ascending insertion sort's float compares).
  const float* pa = dense.data();
  for (int64_t r = 0; r < batch * n; ++r) {
    const float* arow = pa + r * n;
    std::vector<float> vrow(k), crow(k);
    int64_t mn = 0;
    for (int64_t j = 0; j < k; ++j) {
      vrow[j] = arow[j];
      crow[j] = static_cast<float>(j);
      if (arow[j] < vrow[mn]) mn = j;
    }
    for (int64_t j = k; j < n; ++j) {
      if (arow[j] > vrow[mn]) {
        vrow[mn] = arow[j];
        crow[mn] = static_cast<float>(j);
        mn = 0;
        for (int64_t s = 1; s < k; ++s) {
          if (vrow[s] < vrow[mn]) mn = s;
        }
      }
    }
    for (int64_t s = 1; s < k; ++s) {
      const float cv = crow[s];
      const float vv = vrow[s];
      int64_t t = s - 1;
      while (t >= 0 && crow[t] > cv) {
        crow[t + 1] = crow[t];
        vrow[t + 1] = vrow[t];
        --t;
      }
      crow[t + 1] = cv;
      vrow[t + 1] = vv;
    }
    const int32_t* pc = sparse.index.cols.data();
    const float* pv = sparse.values.data().data();
    for (int64_t s = 0; s < k; ++s) {
      EXPECT_EQ(static_cast<float>(pc[r * k + s]), crow[s])
          << "row " << r << " slot " << s;
      EXPECT_EQ(pv[r * k + s], vrow[s]);
    }
  }
  // Offsets and the transpose permutation round-trip float exactly at this
  // size (all values far below 2^24).
  const int32_t* po = sparse.index.row_offsets.data();
  for (int64_t r = 0; r <= batch * n; ++r) {
    EXPECT_EQ(static_cast<int32_t>(static_cast<float>(po[r])), po[r]);
  }
  const int32_t* pt = sparse.index.t_perm.data();
  for (int64_t e = 0; e < sparse.index.nnz; ++e) {
    EXPECT_EQ(static_cast<int32_t>(static_cast<float>(pt[e])), pt[e]);
  }
}

TEST(SparseTest, WindowedTopKFullWindowBitwiseMatchesFullScan) {
  // k_cand = N degenerates the candidate window to the whole row, visiting
  // columns in exactly the full-scan order — the selection, values, and
  // transpose half must be bitwise-identical to the unwindowed overload.
  Rng rng(83);
  const int64_t batch = 2, n = 13, k = 5;
  const Tensor dense = Tensor::Randn({batch, n, n}, rng);
  const graph::SparseAdjacency full = graph::TopKSparsify(dense, k);
  const graph::SparseAdjacency windowed = graph::TopKSparsify(dense, k, n);
  ASSERT_EQ(full.index.nnz, windowed.index.nnz);
  for (int64_t e = 0; e < full.index.nnz; ++e) {
    ASSERT_EQ(full.index.cols.data()[e], windowed.index.cols.data()[e]);
    ASSERT_EQ(full.values.data().data()[e], windowed.values.data().data()[e]);
    ASSERT_EQ(full.index.t_perm.data()[e], windowed.index.t_perm.data()[e]);
  }
}

TEST(SparseTest, WindowedTopKSelectsWithinWindow) {
  // A small window must still pick the k best columns — but only among the
  // window's candidates, centred on the row's own entity and clamped at the
  // matrix edge.
  Rng rng(89);
  const int64_t n = 16, k = 2, k_cand = 6;
  const Tensor dense = Tensor::Randn({n, n}, rng);
  const graph::SparseAdjacency sparse = graph::TopKSparsify(dense, k, k_cand);
  const int32_t* pc = sparse.index.cols.data();
  const float* pv = sparse.values.data().data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = std::clamp<int64_t>(i - k_cand / 2, 0, n - k_cand);
    const std::vector<int64_t> want =
        ReferenceTopK(dense.data() + i * n + lo, k_cand, k);
    for (int64_t s = 0; s < k; ++s) {
      EXPECT_EQ(pc[i * k + s], lo + want[s]) << "row " << i << " slot " << s;
      EXPECT_EQ(pv[i * k + s], dense.data()[i * n + lo + want[s]]);
    }
  }
}

TEST(SparseTest, FullKApplyMatchesDenseMatMul) {
  Rng rng(5);
  const int64_t batch = 2, n = 6, c = 5;
  const Tensor dense = Tensor::Randn({batch, n, n}, rng);
  const Tensor xt = Tensor::Randn({batch, n, c}, rng);
  const graph::SparseAdjacency sparse = graph::TopKSparsify(dense, n);
  const ag::Variable x = ag::Variable::Leaf(xt, /*requires_grad=*/false);
  const ag::Variable a = ag::Variable::Leaf(dense, /*requires_grad=*/false);

  const ag::Variable got = graph::ApplySparseAdjacency(sparse, x);
  const ag::Variable want = ag::BatchMatMul(a, x);
  ExpectTensorNear(got.data(), want.data(), 1e-6f);

  const ag::Variable got_t =
      graph::ApplySparseAdjacency(sparse, x, /*transpose=*/true);
  const ag::Variable want_t = ag::BatchMatMul(ag::Transpose(a, 1, 2), x);
  ExpectTensorNear(got_t.data(), want_t.data(), 1e-6f);
}

TEST(SparseTest, SparseAdjacencyMatMulGradCheck) {
  Rng rng(23);
  const int64_t batch = 1, n = 6, k = 3, c = 4;
  const graph::SparseAdjacency pattern =
      graph::TopKSparsify(Tensor::Randn({batch, n, n}, rng), k);
  for (const bool transpose : {false, true}) {
    ag::Variable values =
        ag::Variable::Leaf(Tensor::Randn({batch, n, k}, rng), true);
    ag::Variable x = ag::Variable::Leaf(Tensor::Randn({batch, n, c}, rng), true);
    ExpectGradientsMatch(
        [&]() {
          return ag::SumAll(ag::Square(
              ag::SparseAdjacencyMatMul(values, pattern.index, x, transpose)));
        },
        {values, x});
  }
}

TEST(SparseTest, TopKAttentionFullKBitwiseMatchesDenseSoftmax) {
  Rng rng(31);
  const int64_t batch = 2, n = 5, e = 3;
  const Tensor src = Tensor::Randn({batch, n, e}, rng);
  const Tensor dst = Tensor::Randn({batch, n, e}, rng);
  const ag::Variable e_src = ag::Variable::Leaf(src.Clone(), true);
  const ag::Variable e_dst = ag::Variable::Leaf(dst.Clone(), true);

  ag::SparseIndex index;
  const ag::Variable sparse = ag::TopKAttention(e_src, e_dst, n, &index);

  const ag::Variable dense = ag::SoftmaxLastDim(
      ag::BatchMatMul(e_src, ag::Transpose(e_dst, 1, 2)));

  // At k = N the selection keeps every column in ascending order and the
  // restricted softmax runs over the very same scores in the same order, so
  // the [B,N,k=N] values ARE the dense probability rows — bitwise.
  ASSERT_EQ(sparse.numel(), dense.numel());
  const float* ps = sparse.data().data();
  const float* pd = dense.data().data();
  for (int64_t i = 0; i < dense.numel(); ++i) {
    EXPECT_EQ(ps[i], pd[i]) << "element " << i;
  }
  const int32_t* pc = index.cols.data();
  for (int64_t r = 0; r < batch * n; ++r) {
    for (int64_t s = 0; s < n; ++s) {
      EXPECT_EQ(static_cast<int64_t>(pc[r * n + s]), s);
    }
  }
}

TEST(SparseTest, TopKAttentionMatchesMaskedDenseReference) {
  // Small k: the reference is the dense chain with unselected scores masked
  // to -inf — mathematically the restricted softmax, and its e_src/e_dst
  // gradients must match the sparse op's.
  Rng rng(41);
  const int64_t batch = 2, n = 7, e = 4, k = 3;
  const Tensor src = Tensor::Randn({batch, n, e}, rng);
  const Tensor dst = Tensor::Randn({batch, n, e}, rng);

  ag::Variable e_src = ag::Variable::Leaf(src.Clone(), true);
  ag::Variable e_dst = ag::Variable::Leaf(dst.Clone(), true);
  ag::SparseIndex index;
  ag::Variable values = ag::TopKAttention(e_src, e_dst, k, &index);
  ag::Variable sparse_loss = ag::SumAll(ag::Square(values));
  sparse_loss.Backward();

  Tensor mask = Tensor::Full({batch, n, n}, -kInf);
  const int32_t* pc = index.cols.data();
  for (int64_t r = 0; r < batch * n; ++r) {
    for (int64_t s = 0; s < k; ++s) {
      mask.data()[r * n + pc[r * k + s]] = 0.0f;
    }
  }
  ag::Variable e_src2 = ag::Variable::Leaf(src.Clone(), true);
  ag::Variable e_dst2 = ag::Variable::Leaf(dst.Clone(), true);
  ag::Variable probs = ag::SoftmaxLastDim(
      ag::Add(ag::BatchMatMul(e_src2, ag::Transpose(e_dst2, 1, 2)),
              ag::Variable::Leaf(mask, false)));
  // Masked entries are exactly 0 after softmax, so squaring and summing
  // gives the same loss as summing over the k kept entries.
  ag::Variable dense_loss = ag::SumAll(ag::Square(probs));
  dense_loss.Backward();

  EXPECT_NEAR(sparse_loss.data().item(), dense_loss.data().item(), 1e-6f);
  ExpectTensorNear(e_src.grad(), e_src2.grad(), 1e-5f);
  ExpectTensorNear(e_dst.grad(), e_dst2.grad(), 1e-5f);
}

TEST(SparseTest, AttentionProbsMatchesUnfusedChain) {
  Rng rng(53);
  const int64_t batch = 2, n = 6, e = 4;
  const Tensor src = Tensor::Randn({batch, n, e}, rng);
  const Tensor dst = Tensor::Randn({batch, n, e}, rng);
  const Tensor weight = Tensor::Randn({batch, n, n}, rng);

  ag::Variable fs = ag::Variable::Leaf(src.Clone(), true);
  ag::Variable fd = ag::Variable::Leaf(dst.Clone(), true);
  ag::Variable fused = ag::AttentionProbs(fs, fd);
  ag::SumAll(ag::Mul(fused, ag::Variable::Leaf(weight, false))).Backward();

  ag::Variable us = ag::Variable::Leaf(src.Clone(), true);
  ag::Variable ud = ag::Variable::Leaf(dst.Clone(), true);
  ag::Variable unfused =
      ag::SoftmaxLastDim(ag::BatchMatMul(us, ag::Transpose(ud, 1, 2)));
  ag::SumAll(ag::Mul(unfused, ag::Variable::Leaf(weight, false))).Backward();

  // Forward is bitwise identical (same Into kernels under the hood).
  const float* pf = fused.data().data();
  const float* pu = unfused.data().data();
  for (int64_t i = 0; i < fused.numel(); ++i) {
    EXPECT_EQ(pf[i], pu[i]) << "element " << i;
  }
  ExpectTensorNear(fs.grad(), us.grad(), 1e-5f);
  ExpectTensorNear(fd.grad(), ud.grad(), 1e-5f);
}

TEST(SparseTest, SoftmaxAllMaskedRowFallsBackToUniform) {
  // Regression: a fully -inf row used to produce exp(-inf-(-inf)) = NaN.
  Tensor t = Tensor::FromVector({2, 3}, {-kInf, -kInf, -kInf,  //
                                         0.0f, 1.0f, 2.0f});
  const Tensor y = ops::SoftmaxLastDim(t);
  const float* p = y.data();
  EXPECT_FLOAT_EQ(p[0], 1.0f / 3.0f);
  EXPECT_FLOAT_EQ(p[1], 1.0f / 3.0f);
  EXPECT_FLOAT_EQ(p[2], 1.0f / 3.0f);
  // Finite rows are untouched by the guard.
  double denom = 0.0;
  for (int i = 0; i < 3; ++i) denom += std::exp(static_cast<float>(i) - 2.0f);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(p[3 + i],
                std::exp(static_cast<float>(i) - 2.0f) / denom, 1e-6f);
    EXPECT_TRUE(std::isfinite(p[3 + i]));
  }
}

TEST(SparseTest, DynamicCAllMaskedRowsStayFinite) {
  // Drive the attention scores to -inf through float overflow: θ ≫ 0 and
  // φ ≪ 0 make every raw score -inf, the historical NaN trigger.
  Rng rng(7);
  const int64_t n = 5, c = 2;
  core::Damgn damgn(Tensor::Ones({n, n}), n, c, /*mem_dim=*/3,
                    /*embed_dim=*/4, rng);
  for (auto& [name, param] : damgn.NamedParameters()) {
    const float fill = name == "theta.weight"  ? 1e25f
                       : name == "phi.weight" ? -1e25f
                                               : 0.0f;
    if (fill == 0.0f) continue;
    float* p = param.mutable_data().data();
    for (int64_t i = 0; i < param.numel(); ++i) p[i] = fill;
  }
  const ag::Variable x = ag::Variable::Leaf(Tensor::Ones({1, n, c}), false);
  const float uniform = 1.0f / static_cast<float>(n);
  {
    ag::NoGradGuard no_grad;  // fused AttentionProbs path
    const Tensor probs = damgn.DynamicC(x).data();
    for (int64_t i = 0; i < probs.numel(); ++i) {
      EXPECT_EQ(probs.data()[i], uniform) << "element " << i;
    }
  }
  {
    const Tensor probs = damgn.DynamicC(x).data();  // recorded unfused path
    for (int64_t i = 0; i < probs.numel(); ++i) {
      EXPECT_EQ(probs.data()[i], uniform) << "element " << i;
    }
  }
  {
    // The top-k restricted softmax has the same guard (uniform over the k
    // selected neighbours).
    ag::NoGradGuard no_grad;
    const graph::SparseAdjacency sparse = damgn.SparseDynamicC(x, 3);
    const Tensor values = sparse.values.data();
    for (int64_t i = 0; i < values.numel(); ++i) {
      EXPECT_EQ(values.data()[i], 1.0f / 3.0f) << "element " << i;
    }
  }
}

TEST(SparseTest, BitwiseDeterministicAcrossThreadCounts) {
  Rng rng(67);
  const int64_t batch = 2, n = 48, e = 8, k = 6, c = 16;
  const Tensor src = Tensor::Randn({batch, n, e}, rng);
  const Tensor dst = Tensor::Randn({batch, n, e}, rng);
  const Tensor xin = Tensor::Randn({batch, n, c}, rng);

  struct Run {
    std::vector<int32_t> cols;
    Tensor values, y, yt, dsrc, ddst, dx;
  };
  const auto run = [&](int threads) {
    SetNumThreads(threads);
    ag::Variable e_src = ag::Variable::Leaf(src.Clone(), true);
    ag::Variable e_dst = ag::Variable::Leaf(dst.Clone(), true);
    ag::Variable x = ag::Variable::Leaf(xin.Clone(), true);
    ag::SparseIndex index;
    ag::Variable values = ag::TopKAttention(e_src, e_dst, k, &index);
    ag::Variable y = ag::SparseAdjacencyMatMul(values, index, x);
    ag::Variable yt =
        ag::SparseAdjacencyMatMul(values, index, x, /*transpose_adj=*/true);
    ag::Add(ag::SumAll(ag::Square(y)), ag::SumAll(ag::Square(yt))).Backward();
    return Run{std::vector<int32_t>(index.cols.data(),
                                    index.cols.data() + index.cols.numel),
               values.data().Clone(),
               y.data().Clone(),   yt.data().Clone(),
               e_src.grad().Clone(), e_dst.grad().Clone(), x.grad().Clone()};
  };

  const int restore = GetNumThreads();
  const Run serial = run(1);
  const Run parallel = run(8);
  SetNumThreads(restore);

  const auto expect_bitwise = [](const Tensor& a, const Tensor& b,
                                 const char* what) {
    ASSERT_EQ(a.numel(), b.numel());
    for (int64_t i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a.data()[i], b.data()[i]) << what << " element " << i;
    }
  };
  ASSERT_EQ(serial.cols, parallel.cols);
  expect_bitwise(serial.values, parallel.values, "values");
  expect_bitwise(serial.y, parallel.y, "y");
  expect_bitwise(serial.yt, parallel.yt, "yt");
  expect_bitwise(serial.dsrc, parallel.dsrc, "d_src");
  expect_bitwise(serial.ddst, parallel.ddst, "d_dst");
  expect_bitwise(serial.dx, parallel.dx, "d_x");
}

TEST(SparseTest, DamgnSparseFullKMatchesDenseSupports) {
  // With k = N the sparse hop-by-hop supports compute the same function as
  // the dense materialized powers; losses and parameter gradients agree to
  // float reassociation tolerance.
  Rng rng(97);
  const int64_t batch = 2, n = 6, c = 3;
  core::Damgn damgn(Tensor::RandUniform({n, n}, rng, 0.0f, 1.0f), n, c,
                    /*mem_dim=*/3, /*embed_dim=*/4, rng);
  // Nonzero mixing coefficients so every term (A, B, C) participates.
  for (auto& [name, param] : damgn.NamedParameters()) {
    if (name == "lambda_a") param.mutable_data().data()[0] = 0.6f;
    if (name == "lambda_b") param.mutable_data().data()[0] = 0.3f;
    if (name == "lambda_c") param.mutable_data().data()[0] = 0.4f;
  }
  const ag::Variable x =
      ag::Variable::Leaf(Tensor::Randn({batch, n, c}, rng), false);

  const auto run = [&](int topk) {
    runtime::RuntimeContext::Options options;
    options.private_exec = true;
    runtime::RuntimeContext context(options);
    context.exec().topk.store(topk, std::memory_order_relaxed);
    runtime::RuntimeContext::Bind bind(context);
    damgn.ZeroGrad();
    const std::vector<graph::Support> supports =
        damgn.CombinedSupports(x, /*max_hops=*/2, /*bidirectional=*/true);
    EXPECT_EQ(supports.size(), 4u);
    ag::Variable loss =
        ag::SumAll(ag::Square(graph::MixSupports(x, supports, true)));
    loss.Backward();
    std::vector<Tensor> grads;
    for (const auto& param : damgn.Parameters()) {
      grads.push_back(param.has_grad() ? param.grad().Clone() : Tensor());
    }
    return std::make_pair(loss.data().item(), std::move(grads));
  };

  const auto [dense_loss, dense_grads] = run(0);
  const auto [sparse_loss, sparse_grads] = run(n);
  EXPECT_NEAR(sparse_loss, dense_loss,
              1e-5f * (1.0f + std::fabs(dense_loss)));
  ASSERT_EQ(dense_grads.size(), sparse_grads.size());
  for (size_t i = 0; i < dense_grads.size(); ++i) {
    ASSERT_EQ(dense_grads[i].numel(), sparse_grads[i].numel()) << "param " << i;
    const float* pd = dense_grads[i].data();
    const float* ps = sparse_grads[i].data();
    for (int64_t j = 0; j < dense_grads[i].numel(); ++j) {
      EXPECT_NEAR(ps[j], pd[j], 1e-4f * (1.0f + std::fabs(pd[j])))
          << "param " << i << " element " << j;
    }
  }
}

TEST(SparseTest, SparseTrainingStepsAreAllocationFree) {
  // The ISSUE acceptance gate: steady-state training with the sparse path
  // enabled draws every tensor from the caching allocator's pool — zero heap
  // allocations per step after warmup.
  runtime::RuntimeContext::Options options;
  options.private_allocator = true;
  options.private_exec = true;
  runtime::RuntimeContext context(options);
  context.exec().topk.store(4, std::memory_order_relaxed);
  runtime::RuntimeContext::Bind bind(context);
  ag::FusedKernels::SetEnabled(true);           // private exec: no restore
  ag::EagerBackwardRelease::SetEnabled(true);

  const int64_t entities = 12, batch_size = 2;
  data::CtsData data = data::MakeEbLike(entities, 2, /*seed=*/7);
  const int64_t train_end = data.num_steps() * 7 / 10;
  data::StandardScaler scaler;
  scaler.Fit(data.series, 0, train_end);
  models::ModelSizing sizing;
  sizing.rnn_hidden = 12;
  sizing.rnn_hidden_dfgn = 8;
  data::WindowDataset train(scaler.Transform(data.series), data.series,
                            /*target_channel=*/0, 0, train_end, sizing.history,
                            sizing.horizon);
  Rng model_rng(11);
  // D-DA-GRNN is the variant that owns a DAMGN (use_damgn=true), so topk>0
  // actually routes every step through TopKAttention + SparseAdjacencyMatMul;
  // plain D-GRNN has only static diffusion supports and would pass vacuously.
  std::unique_ptr<models::ForecastingModel> model = models::MakeModel(
      "D-DA-GRNN", entities, 1, graph::GaussianKernelAdjacency(data.distances),
      sizing, model_rng);
  model->SetTraining(true);
  optim::Adam optimizer(model->Parameters(), 0.01f);
  std::vector<int64_t> indices;
  for (int64_t b = 0; b < batch_size; ++b) {
    indices.push_back((b * 17) % train.num_windows());
  }
  data::Batch batch = train.MakeBatch(indices);

  // Guard against a vacuous pass: with k=4 << N the forward must differ from
  // the dense forward, proving the model really routes through the sparse
  // DAMGN path (a model without a DAMGN ignores topk entirely).
  {
    ag::NoGradGuard no_grad;
    Rng rng_sparse(9), rng_dense(9);
    const Tensor sparse_pred = model->Predict(batch.x, rng_sparse).data();
    context.exec().topk.store(0, std::memory_order_relaxed);
    const Tensor dense_pred = model->Predict(batch.x, rng_dense).data();
    context.exec().topk.store(4, std::memory_order_relaxed);
    bool differs = false;
    for (int64_t i = 0; i < sparse_pred.numel() && !differs; ++i) {
      differs = sparse_pred.data()[i] != dense_pred.data()[i];
    }
    EXPECT_TRUE(differs)
        << "topk=4 left the forward unchanged; the sparse path is not wired "
           "into this model";
  }

  Rng step_rng(3);

  const auto step = [&]() {
    ag::Variable pred = model->Forward(batch.x, &batch.y_scaled,
                                       /*teacher_prob=*/1.0f, step_rng);
    ag::Variable loss = ag::MeanAll(
        ag::Abs(ag::Sub(pred, ag::Variable::Leaf(batch.y_scaled, false))));
    model->ZeroGrad();
    loss.Backward();
    optim::ClipGradNorm(optimizer.params(), 5.0f);
    optimizer.Step();
  };

  for (int i = 0; i < 3; ++i) step();  // warm the pool
  context.allocator().ResetStats();
  for (int i = 0; i < 3; ++i) step();
  const AllocatorStats stats = context.allocator().GetStats();
  EXPECT_EQ(stats.pool_misses + stats.oversize, 0)
      << "steady-state sparse training still heap-allocates: misses="
      << stats.pool_misses << " oversize=" << stats.oversize;
  EXPECT_GT(stats.HitRate(), 0.999);
  EXPECT_GT(stats.requests, 0);
}

}  // namespace
}  // namespace enhancenet
