#include "models/classical.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace enhancenet {
namespace {

/// Periodic series y[t] = base + amp·sin(2π t / period) + noise.
Tensor PeriodicSeries(int64_t n, int64_t t_total, int64_t period,
                      double noise, uint64_t seed) {
  Rng rng(seed);
  Tensor out({n, t_total});
  for (int64_t i = 0; i < n; ++i) {
    const double base = 50.0 + 5.0 * static_cast<double>(i);
    const double amp = 10.0 + static_cast<double>(i);
    for (int64_t t = 0; t < t_total; ++t) {
      out.at({i, t}) = static_cast<float>(
          base +
          amp * std::sin(2.0 * M_PI * static_cast<double>(t % period) /
                         static_cast<double>(period)) +
          rng.Normal(0.0, noise));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Historical average
// ---------------------------------------------------------------------------

TEST(HistoricalAverageTest, RejectsBadInputs) {
  models::HistoricalAverage ha;
  EXPECT_FALSE(ha.Fit(Tensor::Zeros({2, 3, 4}), 5).ok());
  EXPECT_FALSE(ha.Fit(Tensor::Zeros({2, 10}), 0).ok());
  EXPECT_FALSE(ha.Fit(Tensor::Zeros({2, 10}), 20).ok());
  EXPECT_FALSE(ha.fitted());
}

TEST(HistoricalAverageTest, RecoversPeriodicSignal) {
  const int64_t period = 24;
  Tensor train = PeriodicSeries(3, period * 20, period, 0.5, 31);
  models::HistoricalAverage ha;
  ASSERT_TRUE(ha.Fit(train, period).ok());
  // Forecasting any slot reproduces the sinusoid within noise tolerance.
  Tensor forecast = ha.Forecast(/*start=*/period * 20, /*horizon=*/period);
  for (int64_t i = 0; i < 3; ++i) {
    const double base = 50.0 + 5.0 * i;
    const double amp = 10.0 + i;
    for (int64_t f = 0; f < period; ++f) {
      const double expected =
          base + amp * std::sin(2.0 * M_PI * f / period);
      EXPECT_NEAR(forecast.at({i, f}), expected, 0.6) << "i=" << i
                                                      << " f=" << f;
    }
  }
}

TEST(HistoricalAverageTest, PhaseRespected) {
  const int64_t period = 8;
  Tensor train = PeriodicSeries(1, period * 10, period, 0.0, 32);
  models::HistoricalAverage ha;
  ASSERT_TRUE(ha.Fit(train, period).ok());
  // A forecast starting mid-period lines up with the right slots.
  Tensor forecast = ha.Forecast(/*start=*/period * 10 + 3, /*horizon=*/2);
  EXPECT_NEAR(forecast.at({0, 0}), train.at({0, 3}), 1e-3);
  EXPECT_NEAR(forecast.at({0, 1}), train.at({0, 4}), 1e-3);
}

// ---------------------------------------------------------------------------
// Holt-Winters
// ---------------------------------------------------------------------------

TEST(HoltWintersTest, RejectsBadInputs) {
  models::HoltWinters hw;
  EXPECT_FALSE(hw.Fit(Tensor::Zeros({2, 10}), 8).ok());  // < 2 seasons
  EXPECT_FALSE(hw.Fit(Tensor::Zeros({2, 100}), 0).ok());
}

TEST(HoltWintersTest, TracksLevelShift) {
  // Flat training signal; the evaluation window sits 10 units higher. HW
  // must follow the new level; the historical average cannot.
  const int64_t period = 12;
  Tensor train = PeriodicSeries(1, period * 15, period, 0.1, 33);
  models::HoltWinters hw;
  ASSERT_TRUE(hw.Fit(train, period).ok());
  models::HistoricalAverage ha;
  ASSERT_TRUE(ha.Fit(train, period).ok());

  const int64_t start = period * 15;
  Tensor window({1, period});
  for (int64_t t = 0; t < period; ++t) {
    // Same seasonal shape, shifted up by 10.
    window.at({0, t}) = train.at({0, t}) + 10.0f;
  }
  Tensor hw_forecast = hw.Forecast(window, start, 3);
  Tensor ha_forecast = ha.Forecast(start + period, 3);
  const float truth = train.at({0, period}) + 10.0f;  // next slot, shifted
  EXPECT_LT(std::fabs(hw_forecast.at({0, 0}) - truth),
            std::fabs(ha_forecast.at({0, 0}) - truth));
  EXPECT_NEAR(hw_forecast.at({0, 0}), truth, 2.0f);
}

TEST(HoltWintersTest, ExtrapolatesTrend) {
  // Deterministic upward trend with no seasonality.
  Tensor train({1, 64});
  for (int64_t t = 0; t < 64; ++t) {
    train.at({0, t}) = static_cast<float>(2.0 * t);
  }
  models::HoltWinters hw({/*alpha=*/0.8, /*beta=*/0.5});
  ASSERT_TRUE(hw.Fit(train, 8).ok());
  Tensor window({1, 16});
  for (int64_t t = 0; t < 16; ++t) {
    window.at({0, t}) = static_cast<float>(2.0 * (64 + t));
  }
  Tensor forecast = hw.Forecast(window, 64, 4);
  for (int64_t f = 0; f < 4; ++f) {
    EXPECT_NEAR(forecast.at({0, f}), 2.0f * (80 + f), 3.0f) << "f=" << f;
  }
}

TEST(HoltWintersTest, SeasonalProfileIsZeroMean) {
  const int64_t period = 6;
  Tensor train = PeriodicSeries(2, period * 12, period, 0.2, 34);
  // beta=0: a flat window must not induce a spurious trend.
  models::HoltWinters hw({/*alpha=*/0.35, /*beta=*/0.0});
  ASSERT_TRUE(hw.Fit(train, period).ok());
  // A window that follows the seasonal shape around level 100 forecasts a
  // zero-mean seasonal oscillation around 100 over one full season.
  Tensor window({2, period});
  for (int64_t i = 0; i < 2; ++i) {
    double entity_mean = 0.0;
    for (int64_t t = 0; t < period * 12; ++t) entity_mean += train.at({i, t});
    entity_mean /= static_cast<double>(period * 12);
    for (int64_t t = 0; t < period; ++t) {
      window.at({i, t}) = static_cast<float>(
          100.0 + train.at({i, t}) - entity_mean);
    }
  }
  Tensor forecast = hw.Forecast(window, 0, period);
  for (int64_t i = 0; i < 2; ++i) {
    double mean = 0.0;
    for (int64_t f = 0; f < period; ++f) mean += forecast.at({i, f});
    EXPECT_NEAR(mean / period, 100.0, 2.0);
  }
}

}  // namespace
}  // namespace enhancenet
