#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "nn/gru.h"
#include "runtime/allocator.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;

constexpr float kGradTol = 1e-6f;

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::abs(a.data()[i] - b.data()[i]));
  }
  return max_diff;
}

/// RAII toggle so a failing assertion can't leave the process-global fused
/// flag in a surprising state for later tests.
class FusedScope {
 public:
  explicit FusedScope(bool enabled) : previous_(ag::FusedKernels::IsEnabled()) {
    ag::FusedKernels::SetEnabled(enabled);
  }
  ~FusedScope() { ag::FusedKernels::SetEnabled(previous_); }

 private:
  bool previous_;
};

/// Unfused reference for the GRU cell tail, mirroring the legacy op chain.
ag::Variable UnfusedGruTail(const ag::Variable& gx, const ag::Variable& gh,
                            const ag::Variable& h, int64_t hs) {
  ag::Variable r = ag::Sigmoid(
      ag::Add(ag::Slice(gx, -1, 0, hs), ag::Slice(gh, -1, 0, hs)));
  ag::Variable u = ag::Sigmoid(
      ag::Add(ag::Slice(gx, -1, hs, hs), ag::Slice(gh, -1, hs, hs)));
  ag::Variable candidate = ag::Tanh(ag::Add(
      ag::Slice(gx, -1, 2 * hs, hs), ag::Mul(r, ag::Slice(gh, -1, 2 * hs, hs))));
  ag::Variable one_minus_u = ag::AddScalar(ag::Neg(u), 1.0f);
  return ag::Add(ag::Mul(u, h), ag::Mul(one_minus_u, candidate));
}

TEST(FusedGruCellTest, ForwardAndGradMatchUnfusedChain) {
  Rng rng(7);
  const int64_t rows = 6;
  const int64_t hs = 5;
  const Tensor gx0 = Tensor::Randn({rows, 3 * hs}, rng);
  const Tensor gh0 = Tensor::Randn({rows, 3 * hs}, rng);
  const Tensor h0 = Tensor::Randn({rows, hs}, rng);
  const Tensor upstream = Tensor::Randn({rows, hs}, rng);

  auto run = [&](bool fused) {
    ag::Variable gx = ag::Variable::Leaf(gx0.Clone(), /*requires_grad=*/true);
    ag::Variable gh = ag::Variable::Leaf(gh0.Clone(), /*requires_grad=*/true);
    ag::Variable h = ag::Variable::Leaf(h0.Clone(), /*requires_grad=*/true);
    ag::Variable out = fused ? ag::FusedGruCell(gx, gh, h)
                             : UnfusedGruTail(gx, gh, h, hs);
    // Non-uniform upstream gradient so every element's chain rule is probed.
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    return std::vector<Tensor>{out.data().Clone(), gx.grad().Clone(),
                               gh.grad().Clone(), h.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  EXPECT_LE(MaxAbsDiff(fused[0], reference[0]), kGradTol) << "forward";
  EXPECT_LE(MaxAbsDiff(fused[1], reference[1]), kGradTol) << "d gx";
  EXPECT_LE(MaxAbsDiff(fused[2], reference[2]), kGradTol) << "d gh";
  EXPECT_LE(MaxAbsDiff(fused[3], reference[3]), kGradTol) << "d h";
}

TEST(FusedLstmCellTest, ForwardAndGradMatchUnfusedChain) {
  Rng rng(11);
  const int64_t rows = 4;
  const int64_t hs = 6;
  const Tensor gates0 = Tensor::Randn({rows, 4 * hs}, rng);
  const Tensor c0 = Tensor::Randn({rows, hs}, rng);
  const Tensor up_h = Tensor::Randn({rows, hs}, rng);
  const Tensor up_c = Tensor::Randn({rows, hs}, rng);

  auto run = [&](bool fused) {
    ag::Variable gates =
        ag::Variable::Leaf(gates0.Clone(), /*requires_grad=*/true);
    ag::Variable c_prev = ag::Variable::Leaf(c0.Clone(), /*requires_grad=*/true);
    ag::Variable h_new, c_new;
    if (fused) {
      ag::FusedLstmCell(gates, c_prev, &h_new, &c_new);
    } else {
      ag::Variable i = ag::Sigmoid(ag::Slice(gates, -1, 0, hs));
      ag::Variable f = ag::Sigmoid(ag::Slice(gates, -1, hs, hs));
      ag::Variable g = ag::Tanh(ag::Slice(gates, -1, 2 * hs, hs));
      ag::Variable o = ag::Sigmoid(ag::Slice(gates, -1, 3 * hs, hs));
      c_new = ag::Add(ag::Mul(f, c_prev), ag::Mul(i, g));
      h_new = ag::Mul(o, ag::Tanh(c_new));
    }
    // Send distinct gradients into both outputs, as the next step would.
    ag::Variable loss = ag::Add(
        ag::SumAll(ag::Mul(h_new, ag::Variable::Leaf(up_h.Clone(), false))),
        ag::SumAll(ag::Mul(c_new, ag::Variable::Leaf(up_c.Clone(), false))));
    loss.Backward();
    return std::vector<Tensor>{h_new.data().Clone(), c_new.data().Clone(),
                               gates.grad().Clone(), c_prev.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  EXPECT_LE(MaxAbsDiff(fused[0], reference[0]), kGradTol) << "h'";
  EXPECT_LE(MaxAbsDiff(fused[1], reference[1]), kGradTol) << "c'";
  EXPECT_LE(MaxAbsDiff(fused[2], reference[2]), kGradTol) << "d gates";
  EXPECT_LE(MaxAbsDiff(fused[3], reference[3]), kGradTol) << "d c_prev";
}

TEST(GruCombineTest, ForwardAndGradMatchUnfusedChain) {
  Rng rng(13);
  const Tensor u0 = Tensor::Randn({3, 4, 5}, rng);
  const Tensor h0 = Tensor::Randn({3, 4, 5}, rng);
  const Tensor c0 = Tensor::Randn({3, 4, 5}, rng);
  const Tensor upstream = Tensor::Randn({3, 4, 5}, rng);

  auto run = [&](bool fused) {
    ag::Variable u = ag::Variable::Leaf(u0.Clone(), /*requires_grad=*/true);
    ag::Variable h = ag::Variable::Leaf(h0.Clone(), /*requires_grad=*/true);
    ag::Variable c = ag::Variable::Leaf(c0.Clone(), /*requires_grad=*/true);
    ag::Variable out;
    if (fused) {
      out = ag::GruCombine(u, h, c);
    } else {
      ag::Variable one_minus_u = ag::AddScalar(ag::Neg(u), 1.0f);
      out = ag::Add(ag::Mul(u, h), ag::Mul(one_minus_u, c));
    }
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    return std::vector<Tensor>{out.data().Clone(), u.grad().Clone(),
                               h.grad().Clone(), c.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(FusedGruGatesTest, ForwardAndGradMatchUnfusedChain) {
  Rng rng(23);
  const int64_t rows = 7;
  const int64_t hs = 4;
  const Tensor gates0 = Tensor::Randn({rows, 2 * hs}, rng);
  const Tensor h0 = Tensor::Randn({rows, hs}, rng);
  const Tensor up_rh = Tensor::Randn({rows, hs}, rng);
  const Tensor up_u = Tensor::Randn({rows, hs}, rng);

  auto run = [&](bool fused) {
    ag::Variable gates =
        ag::Variable::Leaf(gates0.Clone(), /*requires_grad=*/true);
    ag::Variable h = ag::Variable::Leaf(h0.Clone(), /*requires_grad=*/true);
    ag::Variable rh, u;
    if (fused) {
      ag::FusedGruGates(gates, h, &rh, &u);
    } else {
      ag::Variable r = ag::Sigmoid(ag::Slice(gates, -1, 0, hs));
      u = ag::Sigmoid(ag::Slice(gates, -1, hs, hs));
      rh = ag::Mul(r, h);
    }
    // Distinct upstream gradients into both outputs so each node's chain
    // rule (including the zero half of dgates) is probed independently.
    ag::Variable loss = ag::Add(
        ag::SumAll(ag::Mul(rh, ag::Variable::Leaf(up_rh.Clone(), false))),
        ag::SumAll(ag::Mul(u, ag::Variable::Leaf(up_u.Clone(), false))));
    loss.Backward();
    return std::vector<Tensor>{rh.data().Clone(), u.data().Clone(),
                               gates.grad().Clone(), h.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(AdjacencyMatMulTest, ForwardAndGradMatchTransposeChain) {
  Rng rng(29);
  const int64_t batch = 3;
  const int64_t n = 5;
  const int64_t channels = 4;
  Tensor adj0 = Tensor::Randn({n, n}, rng);
  // Exercise the sparse skip: zero out a few entries.
  adj0.data()[1] = 0.0f;
  adj0.data()[n + 2] = 0.0f;
  adj0.data()[3 * n] = 0.0f;
  const Tensor x0 = Tensor::Randn({batch, n, channels}, rng);
  const Tensor upstream = Tensor::Randn({batch, n, channels}, rng);

  auto run = [&](bool fused) {
    ag::Variable adj = ag::Variable::Leaf(adj0.Clone(), /*requires_grad=*/true);
    ag::Variable x = ag::Variable::Leaf(x0.Clone(), /*requires_grad=*/true);
    ag::Variable out;
    if (fused) {
      out = ag::AdjacencyMatMul(adj, x);
    } else {
      // The legacy ApplyAdjacency chain: through [N, B*C] and back.
      ag::Variable xt =
          ag::Reshape(ag::Transpose(x, 0, 1), {n, batch * channels});
      ag::Variable mixed = ag::MatMul(adj, xt);
      out = ag::Transpose(ag::Reshape(mixed, {n, batch, channels}), 0, 1);
    }
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    return std::vector<Tensor>{out.data().Clone(), adj.grad().Clone(),
                               x.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  EXPECT_LE(MaxAbsDiff(fused[0], reference[0]), kGradTol) << "forward";
  EXPECT_LE(MaxAbsDiff(fused[1], reference[1]), kGradTol) << "d adj";
  EXPECT_LE(MaxAbsDiff(fused[2], reference[2]), kGradTol) << "d x";
}

// End-to-end wiring check: the whole cell (GEMMs included) agrees across the
// fused/unfused paths, including the gradients that reach the parameters.
TEST(FusedCellWiringTest, GruCellAgreesAcrossToggle) {
  Rng rng(17);
  nn::GruCell cell(3, 4, rng);
  const Tensor x0 = Tensor::Randn({5, 3}, rng);
  const Tensor h0 = Tensor::Randn({5, 4}, rng);

  auto run = [&](bool fused) {
    FusedScope scope(fused);
    ag::Variable out = cell.Forward(ag::Variable::Leaf(x0.Clone(), false),
                                    ag::Variable::Leaf(h0.Clone(), false));
    ag::Variable loss = ag::MeanAll(ag::Square(out));
    for (auto& p : cell.Parameters()) p.ZeroGrad();
    loss.Backward();
    std::vector<Tensor> result{out.data().Clone()};
    for (const auto& p : cell.Parameters()) result.push_back(p.grad().Clone());
    return result;
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  ASSERT_EQ(fused.size(), reference.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(FusedCellWiringTest, LstmCellAgreesAcrossToggle) {
  Rng rng(19);
  nn::LstmCell cell(3, 4, rng);
  const Tensor x0 = Tensor::Randn({5, 3}, rng);

  auto run = [&](bool fused) {
    FusedScope scope(fused);
    nn::LstmCell::State state{ag::Variable::Leaf(Tensor::Zeros({5, 4}), false),
                              ag::Variable::Leaf(Tensor::Zeros({5, 4}), false)};
    for (int t = 0; t < 3; ++t) {
      state = cell.Forward(ag::Variable::Leaf(x0.Clone(), false), state);
    }
    ag::Variable loss = ag::MeanAll(ag::Square(state.h));
    for (auto& p : cell.Parameters()) p.ZeroGrad();
    loss.Backward();
    std::vector<Tensor> result{state.h.data().Clone(), state.c.data().Clone()};
    for (const auto& p : cell.Parameters()) result.push_back(p.grad().Clone());
    return result;
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  ASSERT_EQ(fused.size(), reference.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(FusedOpsTest, NoGradModeReturnsDetachedLeaves) {
  Rng rng(23);
  ag::NoGradGuard no_grad;
  ag::Variable gx = ag::Variable::Leaf(Tensor::Randn({2, 9}, rng), true);
  ag::Variable gh = ag::Variable::Leaf(Tensor::Randn({2, 9}, rng), true);
  ag::Variable h = ag::Variable::Leaf(Tensor::Randn({2, 3}, rng), true);
  ag::Variable out = ag::FusedGruCell(gx, gh, h);
  EXPECT_FALSE(out.requires_grad());
  EXPECT_TRUE(out.node()->is_leaf);

  ag::Variable gates = ag::Variable::Leaf(Tensor::Randn({2, 12}, rng), true);
  ag::Variable h_new, c_new;
  ag::FusedLstmCell(gates, h, &h_new, &c_new);
  EXPECT_FALSE(h_new.requires_grad());
  EXPECT_FALSE(c_new.requires_grad());
}

// Eager backward release: for a 12-step rollout, dropping each node's grad
// and closure as soon as it has propagated keeps the peak outstanding bytes
// during Backward() strictly below the keep-everything sweep's peak.
TEST(EagerBackwardReleaseTest, BoundsPeakMemoryOnGruRollout) {
  Rng rng(29);
  nn::GruCell cell(8, 32, rng);
  const Tensor x0 = Tensor::Randn({16, 8}, rng);
  TensorAllocator& allocator = TensorAllocator::Global();

  auto peak_of_backward = [&](bool release) {
    ag::EagerBackwardRelease::SetEnabled(release);
    ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({16, 32}), false);
    for (int t = 0; t < 12; ++t) {
      h = cell.Forward(ag::Variable::Leaf(x0.Clone(), false), h);
    }
    ag::Variable loss = ag::MeanAll(ag::Square(h));
    for (auto& p : cell.Parameters()) p.ZeroGrad();
    allocator.ResetStats();  // high-water restarts at the post-forward level
    loss.Backward();
    const int64_t peak = allocator.GetStats().bytes_high_water;
    ag::EagerBackwardRelease::SetEnabled(true);
    return peak;
  };

  const int64_t peak_keep = peak_of_backward(false);
  const int64_t peak_release = peak_of_backward(true);
  EXPECT_LT(peak_release, peak_keep)
      << "release=" << peak_release << " keep=" << peak_keep;
}

}  // namespace
}  // namespace enhancenet
