#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "core/enhance_tcn_layer.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "models/model_factory.h"
#include "nn/gru.h"
#include "optim/optimizer.h"
#include "runtime/allocator.h"
#include "runtime/parallel.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;

constexpr float kGradTol = 1e-6f;

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::abs(a.data()[i] - b.data()[i]));
  }
  return max_diff;
}

float MaxAbs(const Tensor& t) {
  float max_abs = 0.0f;
  for (int64_t i = 0; i < t.numel(); ++i) {
    max_abs = std::max(max_abs, std::abs(t.data()[i]));
  }
  return max_abs;
}

/// RAII toggle so a failing assertion can't leave the process-global fused
/// flag in a surprising state for later tests.
class FusedScope {
 public:
  explicit FusedScope(bool enabled) : previous_(ag::FusedKernels::IsEnabled()) {
    ag::FusedKernels::SetEnabled(enabled);
  }
  ~FusedScope() { ag::FusedKernels::SetEnabled(previous_); }

 private:
  bool previous_;
};

/// Unfused reference for the GRU cell tail, mirroring the legacy op chain.
ag::Variable UnfusedGruTail(const ag::Variable& gx, const ag::Variable& gh,
                            const ag::Variable& h, int64_t hs) {
  ag::Variable r = ag::Sigmoid(
      ag::Add(ag::Slice(gx, -1, 0, hs), ag::Slice(gh, -1, 0, hs)));
  ag::Variable u = ag::Sigmoid(
      ag::Add(ag::Slice(gx, -1, hs, hs), ag::Slice(gh, -1, hs, hs)));
  ag::Variable candidate = ag::Tanh(ag::Add(
      ag::Slice(gx, -1, 2 * hs, hs), ag::Mul(r, ag::Slice(gh, -1, 2 * hs, hs))));
  ag::Variable one_minus_u = ag::AddScalar(ag::Neg(u), 1.0f);
  return ag::Add(ag::Mul(u, h), ag::Mul(one_minus_u, candidate));
}

TEST(FusedGruCellTest, ForwardAndGradMatchUnfusedChain) {
  Rng rng(7);
  const int64_t rows = 6;
  const int64_t hs = 5;
  const Tensor gx0 = Tensor::Randn({rows, 3 * hs}, rng);
  const Tensor gh0 = Tensor::Randn({rows, 3 * hs}, rng);
  const Tensor h0 = Tensor::Randn({rows, hs}, rng);
  const Tensor upstream = Tensor::Randn({rows, hs}, rng);

  auto run = [&](bool fused) {
    ag::Variable gx = ag::Variable::Leaf(gx0.Clone(), /*requires_grad=*/true);
    ag::Variable gh = ag::Variable::Leaf(gh0.Clone(), /*requires_grad=*/true);
    ag::Variable h = ag::Variable::Leaf(h0.Clone(), /*requires_grad=*/true);
    ag::Variable out = fused ? ag::FusedGruCell(gx, gh, h)
                             : UnfusedGruTail(gx, gh, h, hs);
    // Non-uniform upstream gradient so every element's chain rule is probed.
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    return std::vector<Tensor>{out.data().Clone(), gx.grad().Clone(),
                               gh.grad().Clone(), h.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  EXPECT_LE(MaxAbsDiff(fused[0], reference[0]), kGradTol) << "forward";
  EXPECT_LE(MaxAbsDiff(fused[1], reference[1]), kGradTol) << "d gx";
  EXPECT_LE(MaxAbsDiff(fused[2], reference[2]), kGradTol) << "d gh";
  EXPECT_LE(MaxAbsDiff(fused[3], reference[3]), kGradTol) << "d h";
}

TEST(FusedLstmCellTest, ForwardAndGradMatchUnfusedChain) {
  Rng rng(11);
  const int64_t rows = 4;
  const int64_t hs = 6;
  const Tensor gates0 = Tensor::Randn({rows, 4 * hs}, rng);
  const Tensor c0 = Tensor::Randn({rows, hs}, rng);
  const Tensor up_h = Tensor::Randn({rows, hs}, rng);
  const Tensor up_c = Tensor::Randn({rows, hs}, rng);

  auto run = [&](bool fused) {
    ag::Variable gates =
        ag::Variable::Leaf(gates0.Clone(), /*requires_grad=*/true);
    ag::Variable c_prev = ag::Variable::Leaf(c0.Clone(), /*requires_grad=*/true);
    ag::Variable h_new, c_new;
    if (fused) {
      ag::FusedLstmCell(gates, c_prev, &h_new, &c_new);
    } else {
      ag::Variable i = ag::Sigmoid(ag::Slice(gates, -1, 0, hs));
      ag::Variable f = ag::Sigmoid(ag::Slice(gates, -1, hs, hs));
      ag::Variable g = ag::Tanh(ag::Slice(gates, -1, 2 * hs, hs));
      ag::Variable o = ag::Sigmoid(ag::Slice(gates, -1, 3 * hs, hs));
      c_new = ag::Add(ag::Mul(f, c_prev), ag::Mul(i, g));
      h_new = ag::Mul(o, ag::Tanh(c_new));
    }
    // Send distinct gradients into both outputs, as the next step would.
    ag::Variable loss = ag::Add(
        ag::SumAll(ag::Mul(h_new, ag::Variable::Leaf(up_h.Clone(), false))),
        ag::SumAll(ag::Mul(c_new, ag::Variable::Leaf(up_c.Clone(), false))));
    loss.Backward();
    return std::vector<Tensor>{h_new.data().Clone(), c_new.data().Clone(),
                               gates.grad().Clone(), c_prev.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  EXPECT_LE(MaxAbsDiff(fused[0], reference[0]), kGradTol) << "h'";
  EXPECT_LE(MaxAbsDiff(fused[1], reference[1]), kGradTol) << "c'";
  EXPECT_LE(MaxAbsDiff(fused[2], reference[2]), kGradTol) << "d gates";
  EXPECT_LE(MaxAbsDiff(fused[3], reference[3]), kGradTol) << "d c_prev";
}

TEST(GruCombineTest, ForwardAndGradMatchUnfusedChain) {
  Rng rng(13);
  const Tensor u0 = Tensor::Randn({3, 4, 5}, rng);
  const Tensor h0 = Tensor::Randn({3, 4, 5}, rng);
  const Tensor c0 = Tensor::Randn({3, 4, 5}, rng);
  const Tensor upstream = Tensor::Randn({3, 4, 5}, rng);

  auto run = [&](bool fused) {
    ag::Variable u = ag::Variable::Leaf(u0.Clone(), /*requires_grad=*/true);
    ag::Variable h = ag::Variable::Leaf(h0.Clone(), /*requires_grad=*/true);
    ag::Variable c = ag::Variable::Leaf(c0.Clone(), /*requires_grad=*/true);
    ag::Variable out;
    if (fused) {
      out = ag::GruCombine(u, h, c);
    } else {
      ag::Variable one_minus_u = ag::AddScalar(ag::Neg(u), 1.0f);
      out = ag::Add(ag::Mul(u, h), ag::Mul(one_minus_u, c));
    }
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    return std::vector<Tensor>{out.data().Clone(), u.grad().Clone(),
                               h.grad().Clone(), c.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(FusedGruGatesTest, ForwardAndGradMatchUnfusedChain) {
  Rng rng(23);
  const int64_t rows = 7;
  const int64_t hs = 4;
  const Tensor gates0 = Tensor::Randn({rows, 2 * hs}, rng);
  const Tensor h0 = Tensor::Randn({rows, hs}, rng);
  const Tensor up_rh = Tensor::Randn({rows, hs}, rng);
  const Tensor up_u = Tensor::Randn({rows, hs}, rng);

  auto run = [&](bool fused) {
    ag::Variable gates =
        ag::Variable::Leaf(gates0.Clone(), /*requires_grad=*/true);
    ag::Variable h = ag::Variable::Leaf(h0.Clone(), /*requires_grad=*/true);
    ag::Variable rh, u;
    if (fused) {
      ag::FusedGruGates(gates, h, &rh, &u);
    } else {
      ag::Variable r = ag::Sigmoid(ag::Slice(gates, -1, 0, hs));
      u = ag::Sigmoid(ag::Slice(gates, -1, hs, hs));
      rh = ag::Mul(r, h);
    }
    // Distinct upstream gradients into both outputs so each node's chain
    // rule (including the zero half of dgates) is probed independently.
    ag::Variable loss = ag::Add(
        ag::SumAll(ag::Mul(rh, ag::Variable::Leaf(up_rh.Clone(), false))),
        ag::SumAll(ag::Mul(u, ag::Variable::Leaf(up_u.Clone(), false))));
    loss.Backward();
    return std::vector<Tensor>{rh.data().Clone(), u.data().Clone(),
                               gates.grad().Clone(), h.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(AdjacencyMatMulTest, ForwardAndGradMatchTransposeChain) {
  Rng rng(29);
  const int64_t batch = 3;
  const int64_t n = 5;
  const int64_t channels = 4;
  Tensor adj0 = Tensor::Randn({n, n}, rng);
  // Exercise the sparse skip: zero out a few entries.
  adj0.data()[1] = 0.0f;
  adj0.data()[n + 2] = 0.0f;
  adj0.data()[3 * n] = 0.0f;
  const Tensor x0 = Tensor::Randn({batch, n, channels}, rng);
  const Tensor upstream = Tensor::Randn({batch, n, channels}, rng);

  auto run = [&](bool fused) {
    ag::Variable adj = ag::Variable::Leaf(adj0.Clone(), /*requires_grad=*/true);
    ag::Variable x = ag::Variable::Leaf(x0.Clone(), /*requires_grad=*/true);
    ag::Variable out;
    if (fused) {
      out = ag::AdjacencyMatMul(adj, x);
    } else {
      // The legacy ApplyAdjacency chain: through [N, B*C] and back.
      ag::Variable xt =
          ag::Reshape(ag::Transpose(x, 0, 1), {n, batch * channels});
      ag::Variable mixed = ag::MatMul(adj, xt);
      out = ag::Transpose(ag::Reshape(mixed, {n, batch, channels}), 0, 1);
    }
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    return std::vector<Tensor>{out.data().Clone(), adj.grad().Clone(),
                               x.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  EXPECT_LE(MaxAbsDiff(fused[0], reference[0]), kGradTol) << "forward";
  EXPECT_LE(MaxAbsDiff(fused[1], reference[1]), kGradTol) << "d adj";
  EXPECT_LE(MaxAbsDiff(fused[2], reference[2]), kGradTol) << "d x";
}

// End-to-end wiring check: the whole cell (GEMMs included) agrees across the
// fused/unfused paths, including the gradients that reach the parameters.
TEST(FusedCellWiringTest, GruCellAgreesAcrossToggle) {
  Rng rng(17);
  nn::GruCell cell(3, 4, rng);
  const Tensor x0 = Tensor::Randn({5, 3}, rng);
  const Tensor h0 = Tensor::Randn({5, 4}, rng);

  auto run = [&](bool fused) {
    FusedScope scope(fused);
    ag::Variable out = cell.Forward(ag::Variable::Leaf(x0.Clone(), false),
                                    ag::Variable::Leaf(h0.Clone(), false));
    ag::Variable loss = ag::MeanAll(ag::Square(out));
    for (auto& p : cell.Parameters()) p.ZeroGrad();
    loss.Backward();
    std::vector<Tensor> result{out.data().Clone()};
    for (const auto& p : cell.Parameters()) result.push_back(p.grad().Clone());
    return result;
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  ASSERT_EQ(fused.size(), reference.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(FusedCellWiringTest, LstmCellAgreesAcrossToggle) {
  Rng rng(19);
  nn::LstmCell cell(3, 4, rng);
  const Tensor x0 = Tensor::Randn({5, 3}, rng);

  auto run = [&](bool fused) {
    FusedScope scope(fused);
    nn::LstmCell::State state{ag::Variable::Leaf(Tensor::Zeros({5, 4}), false),
                              ag::Variable::Leaf(Tensor::Zeros({5, 4}), false)};
    for (int t = 0; t < 3; ++t) {
      state = cell.Forward(ag::Variable::Leaf(x0.Clone(), false), state);
    }
    ag::Variable loss = ag::MeanAll(ag::Square(state.h));
    for (auto& p : cell.Parameters()) p.ZeroGrad();
    loss.Backward();
    std::vector<Tensor> result{state.h.data().Clone(), state.c.data().Clone()};
    for (const auto& p : cell.Parameters()) result.push_back(p.grad().Clone());
    return result;
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  ASSERT_EQ(fused.size(), reference.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(FusedOpsTest, NoGradModeReturnsDetachedLeaves) {
  Rng rng(23);
  ag::NoGradGuard no_grad;
  ag::Variable gx = ag::Variable::Leaf(Tensor::Randn({2, 9}, rng), true);
  ag::Variable gh = ag::Variable::Leaf(Tensor::Randn({2, 9}, rng), true);
  ag::Variable h = ag::Variable::Leaf(Tensor::Randn({2, 3}, rng), true);
  ag::Variable out = ag::FusedGruCell(gx, gh, h);
  EXPECT_FALSE(out.requires_grad());
  EXPECT_TRUE(out.node()->is_leaf);

  ag::Variable gates = ag::Variable::Leaf(Tensor::Randn({2, 12}, rng), true);
  ag::Variable h_new, c_new;
  ag::FusedLstmCell(gates, h, &h_new, &c_new);
  EXPECT_FALSE(h_new.requires_grad());
  EXPECT_FALSE(c_new.requires_grad());
}

// Eager backward release: for a 12-step rollout, dropping each node's grad
// and closure as soon as it has propagated keeps the peak outstanding bytes
// during Backward() strictly below the keep-everything sweep's peak.
TEST(EagerBackwardReleaseTest, BoundsPeakMemoryOnGruRollout) {
  Rng rng(29);
  nn::GruCell cell(8, 32, rng);
  const Tensor x0 = Tensor::Randn({16, 8}, rng);
  TensorAllocator& allocator = TensorAllocator::Global();

  auto peak_of_backward = [&](bool release) {
    ag::EagerBackwardRelease::SetEnabled(release);
    ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({16, 32}), false);
    for (int t = 0; t < 12; ++t) {
      h = cell.Forward(ag::Variable::Leaf(x0.Clone(), false), h);
    }
    ag::Variable loss = ag::MeanAll(ag::Square(h));
    for (auto& p : cell.Parameters()) p.ZeroGrad();
    allocator.ResetStats();  // high-water restarts at the post-forward level
    loss.Backward();
    const int64_t peak = allocator.GetStats().bytes_high_water;
    ag::EagerBackwardRelease::SetEnabled(true);
    return peak;
  };

  const int64_t peak_keep = peak_of_backward(false);
  const int64_t peak_release = peak_of_backward(true);
  EXPECT_LT(peak_release, peak_keep)
      << "release=" << peak_release << " keep=" << peak_keep;
}

// --- GEMM epilogues (DESIGN.md §8) --------------------------------------

/// MatMul result with the bias row added in the same per-element order the
/// epilogue uses: (accumulated product) + bias[j].
Tensor MatMulPlusBias(const Tensor& a, const Tensor& b, const Tensor& bias) {
  Tensor full = ops::MatMul(a, b);
  const int64_t m = full.size(0);
  const int64_t n = full.size(1);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      full.data()[i * n + j] += bias.data()[j];
    }
  }
  return full;
}

// kBias folds the bias add into the GEMM write-back. The accumulation order
// is unchanged (bias is added after the final K-block partial, exactly where
// the separate Add pass would run), so the claim is bitwise equality — in
// both the SmallGemm regime and the tiled regime.
TEST(GemmEpilogueTest, BiasMatchesMatMulAddBitwise) {
  Rng rng(31);
  const std::array<std::array<int64_t, 3>, 2> shapes = {
      {{5, 4, 7}, {96, 72, 130}}};  // small-dispatch and tiled-dispatch
  for (const auto& s : shapes) {
    const int64_t m = s[0], k = s[1], n = s[2];
    const Tensor a = Tensor::Randn({m, k}, rng);
    const Tensor b = Tensor::Randn({k, n}, rng);
    const Tensor bias = Tensor::Randn({n}, rng);
    const Tensor fused =
        ops::Gemm(a, b, false, false, ops::GemmEpilogue::kBias, &bias);
    const Tensor reference = MatMulPlusBias(a, b, bias);
    EXPECT_EQ(MaxAbsDiff(fused, reference), 0.0f) << "m=" << m << " n=" << n;
  }
}

// kBiasTanh / kBiasSigmoid apply the activation to the bitwise-identical
// pre-activation with the same scalar functions ops::Tanh / ops::Sigmoid
// use, so these too are exact.
TEST(GemmEpilogueTest, TanhAndSigmoidMatchComposedOps) {
  Rng rng(37);
  const std::array<std::array<int64_t, 3>, 2> shapes = {
      {{6, 5, 9}, {80, 64, 96}}};
  for (const auto& s : shapes) {
    const int64_t m = s[0], k = s[1], n = s[2];
    const Tensor a = Tensor::Randn({m, k}, rng);
    const Tensor b = Tensor::Randn({k, n}, rng);
    const Tensor bias = Tensor::Randn({n}, rng);
    const Tensor pre = MatMulPlusBias(a, b, bias);

    const Tensor tanh_fused =
        ops::Gemm(a, b, false, false, ops::GemmEpilogue::kBiasTanh, &bias);
    EXPECT_EQ(MaxAbsDiff(tanh_fused, ops::Tanh(pre)), 0.0f) << "tanh m=" << m;

    const Tensor sig_fused =
        ops::Gemm(a, b, false, false, ops::GemmEpilogue::kBiasSigmoid, &bias);
    EXPECT_EQ(MaxAbsDiff(sig_fused, ops::Sigmoid(pre)), 0.0f)
        << "sigmoid m=" << m;
  }
}

/// Checks one gated epilogue (tanh·σ or GLU) against a composed reference:
/// z is half-width, preact carries the full-width post-bias pre-activations.
void ExpectGatedGemmMatches(int64_t m, int64_t k, int64_t n, bool glu,
                            Rng& rng) {
  const int64_t half = n / 2;
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b = Tensor::Randn({k, n}, rng);
  const Tensor bias = Tensor::Randn({n}, rng);
  Tensor preact = Tensor::Uninitialized({m, n});
  const Tensor z = ops::Gemm(
      a, b, false, false,
      glu ? ops::GemmEpilogue::kBiasGlu
          : ops::GemmEpilogue::kBiasGatedTanhSigmoid,
      &bias, &preact);
  ASSERT_EQ(z.size(0), m);
  ASSERT_EQ(z.size(1), half);

  const Tensor pre_ref = MatMulPlusBias(a, b, bias);
  EXPECT_EQ(MaxAbsDiff(preact, pre_ref), 0.0f) << "saved pre-activations";
  const Tensor sig = ops::Sigmoid(pre_ref);  // same StableSigmoid scalar
  Tensor z_ref = Tensor::Uninitialized({m, half});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < half; ++j) {
      const float sf = pre_ref.data()[i * n + j];
      z_ref.data()[i * half + j] =
          (glu ? sf : std::tanh(sf)) * sig.data()[i * n + half + j];
    }
  }
  EXPECT_EQ(MaxAbsDiff(z, z_ref), 0.0f) << "gated output";
}

TEST(GemmEpilogueTest, GatedTanhSigmoidMatchesComposedOps) {
  Rng rng(41);
  ExpectGatedGemmMatches(6, 4, 10, /*glu=*/false, rng);  // SmallGemm path
  // Tiled path spanning two N panels (n > kNC) and two K blocks (k > kKC),
  // so the "apply once at the final (pc, jc)" bookkeeping is exercised.
  ExpectGatedGemmMatches(96, 300, 520, /*glu=*/false, rng);
}

TEST(GemmEpilogueTest, GluMatchesComposedOps) {
  Rng rng(43);
  ExpectGatedGemmMatches(7, 5, 8, /*glu=*/true, rng);
  ExpectGatedGemmMatches(64, 80, 192, /*glu=*/true, rng);
}

TEST(GemmEpilogueTest, BatchGemmGatedMatchesPerSliceChain) {
  Rng rng(47);
  // Small slices take the all-slices-in-one-For1D path; the bigger case
  // takes the per-slice tiled path.
  const std::array<std::array<int64_t, 4>, 2> shapes = {
      {{5, 6, 4, 8}, {2, 64, 64, 96}}};  // {batch, m, k, n}
  for (const auto& s : shapes) {
    const int64_t batch = s[0], m = s[1], k = s[2], n = s[3];
    const int64_t half = n / 2;
    const Tensor a = Tensor::Randn({batch, m, k}, rng);
    const Tensor b = Tensor::Randn({batch, k, n}, rng);
    const Tensor bias = Tensor::Randn({n}, rng);
    Tensor preact = Tensor::Uninitialized({batch, m, n});
    const Tensor z =
        ops::BatchGemm(a, b, false, false,
                       ops::GemmEpilogue::kBiasGatedTanhSigmoid, &bias,
                       &preact);
    ASSERT_EQ(z.size(2), half);
    for (int64_t s_idx = 0; s_idx < batch; ++s_idx) {
      const Tensor a_s = ops::Slice(a, 0, s_idx, 1).Reshape({m, k});
      const Tensor b_s = ops::Slice(b, 0, s_idx, 1).Reshape({k, n});
      const Tensor pre_ref = MatMulPlusBias(a_s, b_s, bias);
      const Tensor sig = ops::Sigmoid(pre_ref);
      EXPECT_EQ(MaxAbsDiff(ops::Slice(preact, 0, s_idx, 1).Reshape({m, n}),
                           pre_ref),
                0.0f)
          << "slice " << s_idx << " preact";
      const Tensor z_s = ops::Slice(z, 0, s_idx, 1).Reshape({m, half});
      Tensor z_ref = Tensor::Uninitialized({m, half});
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < half; ++j) {
          z_ref.data()[i * half + j] = std::tanh(pre_ref.data()[i * n + j]) *
                                       sig.data()[i * n + half + j];
        }
      }
      EXPECT_EQ(MaxAbsDiff(z_s, z_ref), 0.0f) << "slice " << s_idx << " z";
    }
  }
}

TEST(MatMulBiasTest, ForwardAndGradMatchMatMulAddChain) {
  Rng rng(53);
  const Tensor a0 = Tensor::Randn({9, 6}, rng);
  const Tensor w0 = Tensor::Randn({6, 7}, rng);
  const Tensor bias0 = Tensor::Randn({7}, rng);
  const Tensor upstream = Tensor::Randn({9, 7}, rng);

  auto run = [&](bool fused) {
    ag::Variable a = ag::Variable::Leaf(a0.Clone(), /*requires_grad=*/true);
    ag::Variable w = ag::Variable::Leaf(w0.Clone(), /*requires_grad=*/true);
    ag::Variable bias =
        ag::Variable::Leaf(bias0.Clone(), /*requires_grad=*/true);
    ag::Variable out = fused ? ag::MatMulBias(a, w, bias)
                             : ag::Add(ag::MatMul(a, w), bias);
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    return std::vector<Tensor>{out.data().Clone(), a.grad().Clone(),
                               w.grad().Clone(), bias.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

// --- fused gated convolution --------------------------------------------

/// The unfused reference chain for a dilated conv + gating, mirroring
/// EnhanceTcnLayer (tanh·σ, causal left pad) and Stgcn::TemporalGlu
/// (GLU, valid conv) exactly.
ag::Variable ReferenceGatedConv(const ag::Variable& x,
                                const std::vector<ag::Variable>& taps,
                                const ag::Variable& bias, int64_t dilation,
                                int64_t pad_left, bool glu) {
  const int64_t batch = x.size(0);
  const int64_t n = x.size(1);
  const int64_t time = x.size(2);
  const int64_t c_in = x.size(3);
  const int64_t kernel = static_cast<int64_t>(taps.size());
  const int64_t t_out = time + pad_left - dilation * (kernel - 1);
  const int64_t half = taps[0].size(1) / 2;
  ag::Variable padded = pad_left > 0 ? ag::PadAxis(x, 2, pad_left, 0) : x;
  ag::Variable conv;
  for (int64_t k = 0; k < kernel; ++k) {
    ag::Variable tap_in = ag::Slice(padded, 2, k * dilation, t_out);
    ag::Variable flat = ag::Reshape(tap_in, {batch * n * t_out, c_in});
    ag::Variable term = ag::MatMul(flat, taps[static_cast<size_t>(k)]);
    conv = (k == 0) ? term : ag::Add(conv, term);
  }
  conv = ag::Add(conv, bias);
  ag::Variable a = ag::Slice(conv, -1, 0, half);
  ag::Variable b = ag::Slice(conv, -1, half, half);
  ag::Variable z = glu ? ag::Mul(a, ag::Sigmoid(b))
                       : ag::Mul(ag::Tanh(a), ag::Sigmoid(b));
  return ag::Reshape(z, {batch, n, t_out, half});
}

/// Runs the fused-vs-reference comparison for shared-filter FusedGatedConv
/// and checks forward + every input gradient to kGradTol.
void ExpectFusedGatedConvMatches(int64_t kernel, int64_t dilation,
                                 int64_t pad_left, bool glu, uint64_t seed) {
  Rng rng(seed);
  const int64_t batch = 2, n = 3, time = 8, c_in = 4, half = 5;
  const int64_t t_out = time + pad_left - dilation * (kernel - 1);
  const Tensor x0 = Tensor::Randn({batch, n, time, c_in}, rng);
  std::vector<Tensor> taps0;
  for (int64_t k = 0; k < kernel; ++k) {
    taps0.push_back(Tensor::Randn({c_in, 2 * half}, rng));
  }
  const Tensor bias0 = Tensor::Randn({2 * half}, rng);
  const Tensor upstream = Tensor::Randn({batch, n, t_out, half}, rng);

  auto run = [&](bool fused) {
    ag::Variable x = ag::Variable::Leaf(x0.Clone(), /*requires_grad=*/true);
    std::vector<ag::Variable> taps;
    for (const Tensor& t : taps0) {
      taps.push_back(ag::Variable::Leaf(t.Clone(), /*requires_grad=*/true));
    }
    ag::Variable bias =
        ag::Variable::Leaf(bias0.Clone(), /*requires_grad=*/true);
    ag::Variable out =
        fused ? ag::FusedGatedConv(
                    x, ag::Concat(taps, 0), bias, kernel, dilation, pad_left,
                    glu ? ops::GemmEpilogue::kBiasGlu
                        : ops::GemmEpilogue::kBiasGatedTanhSigmoid)
              : ReferenceGatedConv(x, taps, bias, dilation, pad_left, glu);
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    std::vector<Tensor> result{out.data().Clone(), x.grad().Clone(),
                               bias.grad().Clone()};
    for (const ag::Variable& t : taps) result.push_back(t.grad().Clone());
    return result;
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  ASSERT_EQ(fused.size(), reference.size());
  EXPECT_LE(MaxAbsDiff(fused[0], reference[0]), kGradTol) << "forward";
  for (size_t i = 1; i < fused.size(); ++i) {
    // Gradients accumulate over the stacked K·C columns in a different order
    // than the K separate per-tap GEMMs, so the bound is 1e-6 *relative* to
    // the gradient's magnitude.
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]),
              kGradTol * std::max(1.0f, MaxAbs(reference[i])))
        << "tensor " << i;
  }
}

TEST(FusedGatedConvTest, CausalTanhSigmoidMatchesUnfusedChain) {
  // The EnhanceTcnLayer configuration: K=2, d=2, left pad keeps T.
  ExpectFusedGatedConvMatches(/*kernel=*/2, /*dilation=*/2, /*pad_left=*/2,
                              /*glu=*/false, /*seed=*/59);
}

TEST(FusedGatedConvTest, ValidGluMatchesUnfusedChain) {
  // The Stgcn::TemporalGlu configuration: K=3, unpadded, T shrinks by K-1.
  ExpectFusedGatedConvMatches(/*kernel=*/3, /*dilation=*/1, /*pad_left=*/0,
                              /*glu=*/true, /*seed=*/61);
}

TEST(FusedGatedConvPerEntityTest, MatchesBatchMatMulChain) {
  Rng rng(67);
  const int64_t batch = 2, n = 3, time = 6, c_in = 3, half = 4;
  const int64_t kernel = 2, dilation = 1;
  const int64_t pad_left = dilation * (kernel - 1);
  const Tensor x0 = Tensor::Randn({batch, n, time, c_in}, rng);
  // DFGN layout: per entity, taps flattened k-major / c-minor.
  const Tensor filters0 =
      Tensor::Randn({n, kernel * c_in * 2 * half}, rng);
  const Tensor bias0 = Tensor::Randn({2 * half}, rng);
  const Tensor upstream = Tensor::Randn({batch, n, time, half}, rng);

  auto run = [&](bool fused) {
    ag::Variable x = ag::Variable::Leaf(x0.Clone(), /*requires_grad=*/true);
    ag::Variable filters =
        ag::Variable::Leaf(filters0.Clone(), /*requires_grad=*/true);
    ag::Variable bias =
        ag::Variable::Leaf(bias0.Clone(), /*requires_grad=*/true);
    ag::Variable out;
    if (fused) {
      out = ag::FusedGatedConvPerEntity(
          x, filters, bias, kernel, dilation, pad_left,
          ops::GemmEpilogue::kBiasGatedTanhSigmoid);
    } else {
      // EnhanceTcnLayer's unfused DFGN branch, verbatim.
      std::vector<ag::Variable> taps;
      for (int64_t k = 0; k < kernel; ++k) {
        taps.push_back(ag::Reshape(
            ag::Slice(filters, -1, k * c_in * 2 * half, c_in * 2 * half),
            {n, c_in, 2 * half}));
      }
      ag::Variable padded = ag::PadAxis(x, 2, pad_left, 0);
      ag::Variable conv;
      for (int64_t k = 0; k < kernel; ++k) {
        ag::Variable tap_in = ag::Slice(padded, 2, k * dilation, time);
        ag::Variable by_entity =
            ag::Reshape(ag::Transpose(tap_in, 0, 1), {n, batch * time, c_in});
        ag::Variable mixed = ag::BatchMatMul(by_entity, taps[k]);
        ag::Variable term = ag::Transpose(
            ag::Reshape(mixed, {n, batch, time, 2 * half}), 0, 1);
        conv = (k == 0) ? term : ag::Add(conv, term);
      }
      conv = ag::Add(conv, bias);
      ag::Variable f = ag::Slice(conv, -1, 0, half);
      ag::Variable g = ag::Slice(conv, -1, half, half);
      out = ag::Mul(ag::Tanh(f), ag::Sigmoid(g));
    }
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();
    return std::vector<Tensor>{out.data().Clone(), x.grad().Clone(),
                               filters.grad().Clone(), bias.grad().Clone()};
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  EXPECT_LE(MaxAbsDiff(fused[0], reference[0]), kGradTol) << "forward";
  EXPECT_LE(MaxAbsDiff(fused[1], reference[1]), kGradTol) << "d x";
  EXPECT_LE(MaxAbsDiff(fused[2], reference[2]), kGradTol) << "d filters";
  EXPECT_LE(MaxAbsDiff(fused[3], reference[3]), kGradTol) << "d bias";
}

// --- layer wiring (ENHANCENET_FUSED toggle) -----------------------------

core::TcnLayerConfig SmallTcnLayerConfig() {
  core::TcnLayerConfig config;
  config.num_entities = 3;
  config.in_channels = 4;
  config.conv_channels = 5;
  config.skip_channels = 6;
  config.kernel_size = 2;
  config.dilation = 2;
  config.dropout = 0.0f;  // determinism across the toggle
  return config;
}

TEST(FusedTcnWiringTest, TcnLayerAgreesAcrossToggle) {
  Rng rng(71);
  core::EnhanceTcnLayer layer(SmallTcnLayerConfig(), nullptr, rng);
  const Tensor x0 = Tensor::Randn({2, 3, 8, 4}, rng);
  Rng fwd_rng(5);

  auto run = [&](bool fused) {
    FusedScope scope(fused);
    ag::Variable x = ag::Variable::Leaf(x0.Clone(), /*requires_grad=*/true);
    core::EnhanceTcnLayer::Output out = layer.Forward(x, {}, fwd_rng);
    ag::Variable loss = ag::Add(ag::MeanAll(ag::Square(out.skip)),
                                ag::MeanAll(ag::Square(out.residual)));
    for (auto& p : layer.Parameters()) p.ZeroGrad();
    loss.Backward();
    std::vector<Tensor> result{out.skip.data().Clone(),
                               out.residual.data().Clone(), x.grad().Clone()};
    for (const auto& p : layer.Parameters()) result.push_back(p.grad().Clone());
    return result;
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  ASSERT_EQ(fused.size(), reference.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

TEST(FusedTcnWiringTest, DfgnLayerAgreesAcrossToggle) {
  Rng rng(73);
  core::TcnLayerConfig config = SmallTcnLayerConfig();
  config.use_dfgn = true;
  ag::Variable memory =
      ag::Variable::Leaf(Tensor::Randn({config.num_entities, 8}, rng),
                         /*requires_grad=*/true);
  core::EnhanceTcnLayer layer(config, &memory, rng);
  const Tensor x0 = Tensor::Randn({2, 3, 8, 4}, rng);
  Rng fwd_rng(5);

  auto run = [&](bool fused) {
    FusedScope scope(fused);
    ag::Variable x = ag::Variable::Leaf(x0.Clone(), /*requires_grad=*/true);
    core::EnhanceTcnLayer::Output out = layer.Forward(x, {}, fwd_rng);
    ag::Variable loss = ag::Add(ag::MeanAll(ag::Square(out.skip)),
                                ag::MeanAll(ag::Square(out.residual)));
    for (auto& p : layer.Parameters()) p.ZeroGrad();
    memory.ZeroGrad();
    loss.Backward();
    std::vector<Tensor> result{out.skip.data().Clone(),
                               out.residual.data().Clone(), x.grad().Clone(),
                               memory.grad().Clone()};
    for (const auto& p : layer.Parameters()) result.push_back(p.grad().Clone());
    return result;
  };

  std::vector<Tensor> fused = run(true);
  std::vector<Tensor> reference = run(false);
  ASSERT_EQ(fused.size(), reference.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxAbsDiff(fused[i], reference[i]), kGradTol) << "tensor " << i;
  }
}

// The satellite bugfix: projecting only t = T−1 through skip_proj_ must give
// exactly the last timestep of the full-sequence projection.
TEST(FusedTcnWiringTest, SkipLastOnlyMatchesLastTimestepOfFullProjection) {
  auto make = [](bool last_only) {
    core::TcnLayerConfig config = SmallTcnLayerConfig();
    config.skip_last_only = last_only;
    Rng rng(79);  // identical init for both layers
    return std::make_unique<core::EnhanceTcnLayer>(config, nullptr, rng);
  };
  std::unique_ptr<core::EnhanceTcnLayer> full = make(false);
  std::unique_ptr<core::EnhanceTcnLayer> last = make(true);
  Rng data_rng(83);
  const int64_t time = 8;
  const Tensor x0 = Tensor::Randn({2, 3, time, 4}, data_rng);
  Rng r_full(5), r_last(5);
  const ag::Variable x = ag::Variable::Leaf(x0, /*requires_grad=*/false);
  const Tensor skip_full = full->Forward(x, {}, r_full).skip.data();
  const Tensor skip_last = last->Forward(x, {}, r_last).skip.data();
  ASSERT_EQ(skip_last.size(2), 1);
  EXPECT_LE(MaxAbsDiff(ops::Slice(skip_full, 2, time - 1, 1), skip_last),
            kGradTol);
}

// --- determinism across thread counts -----------------------------------

// Every element of every fused output (and gradient) is computed by its
// owning For1D chunk, so the results must be bit-identical whether the pool
// has 1 worker or 8.
TEST(FusedThreadInvarianceTest, GatedConvAndEpilogueGemmBitwise) {
  Rng rng(89);
  const int64_t batch = 4, n = 6, time = 16, c_in = 8, half = 12;
  const int64_t kernel = 2, dilation = 2;
  const int64_t pad_left = dilation * (kernel - 1);
  const Tensor x0 = Tensor::Randn({batch, n, time, c_in}, rng);
  const Tensor w0 = Tensor::Randn({kernel * c_in, 2 * half}, rng);
  const Tensor bias0 = Tensor::Randn({2 * half}, rng);
  const Tensor upstream = Tensor::Randn({batch, n, time, half}, rng);
  // A tiled-regime Linear-style GEMM rides along so the non-gated epilogue
  // write-back is covered too.
  const Tensor a0 = Tensor::Randn({200, 96}, rng);
  const Tensor lw0 = Tensor::Randn({96, 144}, rng);
  const Tensor lb0 = Tensor::Randn({144}, rng);
  const Tensor lup = Tensor::Randn({200, 144}, rng);

  auto run = [&](int threads) {
    SetNumThreads(threads);
    ag::Variable x = ag::Variable::Leaf(x0.Clone(), /*requires_grad=*/true);
    ag::Variable w = ag::Variable::Leaf(w0.Clone(), /*requires_grad=*/true);
    ag::Variable bias =
        ag::Variable::Leaf(bias0.Clone(), /*requires_grad=*/true);
    ag::Variable out = ag::FusedGatedConv(
        x, w, bias, kernel, dilation, pad_left,
        ops::GemmEpilogue::kBiasGatedTanhSigmoid);
    ag::Variable loss = ag::SumAll(
        ag::Mul(out, ag::Variable::Leaf(upstream.Clone(), false)));
    loss.Backward();

    ag::Variable a = ag::Variable::Leaf(a0.Clone(), /*requires_grad=*/true);
    ag::Variable lw = ag::Variable::Leaf(lw0.Clone(), /*requires_grad=*/true);
    ag::Variable lb = ag::Variable::Leaf(lb0.Clone(), /*requires_grad=*/true);
    ag::Variable y = ag::MatMulBias(a, lw, lb);
    ag::Variable loss2 =
        ag::SumAll(ag::Mul(y, ag::Variable::Leaf(lup.Clone(), false)));
    loss2.Backward();
    return std::vector<Tensor>{
        out.data().Clone(), x.grad().Clone(),  w.grad().Clone(),
        bias.grad().Clone(), y.data().Clone(), a.grad().Clone(),
        lw.grad().Clone(),   lb.grad().Clone()};
  };

  const int prev_threads = GetNumThreads();
  std::vector<Tensor> one = run(1);
  std::vector<Tensor> eight = run(8);
  SetNumThreads(prev_threads);
  ASSERT_EQ(one.size(), eight.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(one[i], eight[i]), 0.0f) << "tensor " << i;
  }
}

// --- allocation-free TCN training steps ---------------------------------

// The perf acceptance gate's allocator half: after warmup, a full TCN train
// step (fused gated conv + epilogue GEMMs + Adam) allocates nothing from the
// heap — every tensor comes from the pool, every fusion temporary from the
// Workspace.
TEST(FusedTcnAllocatorTest, TcnTrainStepsAllocFreeAfterWarmup) {
  TensorAllocator& allocator = TensorAllocator::Global();
  const bool was_caching = allocator.caching_enabled();
  allocator.set_caching_enabled(true);

  const int64_t entities = 8;
  data::CtsData data = data::MakeEbLike(entities, /*days=*/2, /*seed=*/7);
  const int64_t train_end = data.num_steps() * 7 / 10;
  data::StandardScaler scaler;
  scaler.Fit(data.series, 0, train_end);
  const Tensor scaled = scaler.Transform(data.series);
  models::ModelSizing sizing;
  sizing.tcn_channels = 8;
  sizing.skip_channels = 8;
  sizing.end_channels = 16;
  sizing.dilations = {1, 2};
  data::WindowDataset train(scaled, data.series, /*target_channel=*/0, 0,
                            train_end, sizing.history, sizing.horizon);
  Rng model_rng(11);
  std::unique_ptr<models::ForecastingModel> model = models::MakeModel(
      "TCN", entities, 1, graph::GaussianKernelAdjacency(data.distances),
      sizing, model_rng);
  model->SetTraining(true);
  optim::Adam optimizer(model->Parameters(), 0.01f);
  const data::Batch batch = train.MakeBatch({0, 3, 6, 9});
  Rng rng(3);

  auto step = [&] {
    ag::Variable pred =
        model->Forward(batch.x, &batch.y_scaled, /*teacher_prob=*/1.0f, rng);
    ag::Variable loss = ag::MeanAll(ag::Abs(
        ag::Sub(pred, ag::Variable::Leaf(batch.y_scaled, false))));
    model->ZeroGrad();
    loss.Backward();
    optim::ClipGradNorm(optimizer.params(), 5.0f);
    optimizer.Step();
  };

  for (int i = 0; i < 2; ++i) step();  // warmup populates pool + workspace
  allocator.ResetStats();
  for (int i = 0; i < 3; ++i) step();

  const AllocatorStats stats = allocator.GetStats();
  ASSERT_GT(stats.requests, 0);
  EXPECT_GT(stats.pool_hits, 0);
  EXPECT_EQ(stats.pool_misses + stats.oversize, 0)
      << "steady-state TCN steps must be allocation-free: misses="
      << stats.pool_misses << " oversize=" << stats.oversize;

  allocator.set_caching_enabled(was_caching);
}

}  // namespace
}  // namespace enhancenet
