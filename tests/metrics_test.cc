#include "train/metrics.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace enhancenet {
namespace {

using train::ErrorStats;
using train::MetricAccumulator;

// ---------------------------------------------------------------------------
// Error accumulation
// ---------------------------------------------------------------------------

TEST(MetricAccumulatorTest, KnownValuesSingleHorizon) {
  MetricAccumulator acc(1);
  Tensor pred = Tensor::FromVector({1, 2, 1}, {11.0f, 18.0f});
  Tensor truth = Tensor::FromVector({1, 2, 1}, {10.0f, 20.0f});
  acc.Add(pred, truth);
  const ErrorStats stats = acc.Overall();
  EXPECT_EQ(stats.count, 2);
  EXPECT_NEAR(stats.mae, 1.5, 1e-9);  // (1 + 2) / 2
  EXPECT_NEAR(stats.rmse, std::sqrt((1.0 + 4.0) / 2.0), 1e-9);
  EXPECT_NEAR(stats.mape, 100.0 * (0.1 + 0.1) / 2.0, 1e-6);
}

TEST(MetricAccumulatorTest, MaskedNullValuesExcluded) {
  MetricAccumulator acc(1);
  Tensor pred = Tensor::FromVector({1, 3, 1}, {5.0f, 99.0f, 12.0f});
  Tensor truth = Tensor::FromVector({1, 3, 1}, {4.0f, 0.0f, 10.0f});
  acc.Add(pred, truth);
  const ErrorStats stats = acc.Overall();
  EXPECT_EQ(stats.count, 2);  // middle entry masked
  EXPECT_NEAR(stats.mae, 1.5, 1e-9);
}

TEST(MetricAccumulatorTest, PerHorizonSeparation) {
  MetricAccumulator acc(2);
  Tensor pred = Tensor::FromVector({1, 1, 2}, {11.0f, 14.0f});
  Tensor truth = Tensor::FromVector({1, 1, 2}, {10.0f, 10.0f});
  acc.Add(pred, truth);
  EXPECT_NEAR(acc.AtHorizon(0).mae, 1.0, 1e-9);
  EXPECT_NEAR(acc.AtHorizon(1).mae, 4.0, 1e-9);
  EXPECT_NEAR(acc.Overall().mae, 2.5, 1e-9);
}

TEST(MetricAccumulatorTest, AccumulatesAcrossBatches) {
  MetricAccumulator acc(1);
  acc.Add(Tensor::FromVector({1, 1, 1}, {11.0f}),
          Tensor::FromVector({1, 1, 1}, {10.0f}));
  acc.Add(Tensor::FromVector({1, 1, 1}, {13.0f}),
          Tensor::FromVector({1, 1, 1}, {10.0f}));
  EXPECT_EQ(acc.Overall().count, 2);
  EXPECT_NEAR(acc.Overall().mae, 2.0, 1e-9);
}

TEST(MetricAccumulatorTest, PerWindowMaeTracked) {
  MetricAccumulator acc(1);
  // Two windows in one batch.
  acc.Add(Tensor::FromVector({2, 1, 1}, {11.0f, 30.0f}),
          Tensor::FromVector({2, 1, 1}, {10.0f, 10.0f}));
  ASSERT_EQ(acc.per_window_mae().size(), 2u);
  EXPECT_NEAR(acc.per_window_mae()[0], 1.0, 1e-9);
  EXPECT_NEAR(acc.per_window_mae()[1], 20.0, 1e-9);
}

TEST(MetricAccumulatorTest, EmptyStatsAreZero) {
  MetricAccumulator acc(3);
  const ErrorStats stats = acc.Overall();
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.mae, 0.0);
}

// ---------------------------------------------------------------------------
// Incomplete beta / Student-t
// ---------------------------------------------------------------------------

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_EQ(train::RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(train::RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a)
  const double v1 = train::RegularizedIncompleteBeta(2.5, 1.5, 0.3);
  const double v2 = 1.0 - train::RegularizedIncompleteBeta(1.5, 2.5, 0.7);
  EXPECT_NEAR(v1, v2, 1e-9);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.35, 0.8}) {
    EXPECT_NEAR(train::RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-9);
  }
}

TEST(StudentTTest, KnownPValues) {
  // Two-sided p for t=2.0, df=10 is ~0.0734 (standard tables).
  EXPECT_NEAR(train::StudentTTwoSidedPValue(2.0, 10.0), 0.0734, 2e-3);
  // t=0 -> p=1.
  EXPECT_NEAR(train::StudentTTwoSidedPValue(0.0, 5.0), 1.0, 1e-9);
  // Huge |t| -> p ~ 0; sign does not matter.
  EXPECT_LT(train::StudentTTwoSidedPValue(50.0, 20.0), 1e-6);
  EXPECT_NEAR(train::StudentTTwoSidedPValue(-2.0, 10.0),
              train::StudentTTwoSidedPValue(2.0, 10.0), 1e-12);
}

// ---------------------------------------------------------------------------
// Welch t-test
// ---------------------------------------------------------------------------

TEST(WelchTTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {1.0, 1.1, 0.9, 1.05, 0.95};
  const auto result = train::WelchTTest(a, a);
  EXPECT_NEAR(result.t_statistic, 0.0, 1e-9);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(WelchTTest, ClearlySeparatedSamplesSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.Normal(1.0, 0.1));
    b.push_back(rng.Normal(2.0, 0.1));
  }
  const auto result = train::WelchTTest(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_LT(result.t_statistic, 0.0);  // mean(a) < mean(b)
}

TEST(WelchTTest, MatchesReferenceValues) {
  // Hand-derived: a = [1..5]: mean 3, s² = 2.5; b = [2,3,4,5,7]: mean 4.2,
  // s² = 3.7. t = (3-4.2)/sqrt(2.5/5 + 3.7/5) = -1.0776, df = 7.711,
  // p(two-sided) ≈ 0.3138.
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 3, 4, 5, 7};
  const auto result = train::WelchTTest(a, b);
  EXPECT_NEAR(result.t_statistic, -1.0776, 1e-3);
  EXPECT_NEAR(result.degrees_of_freedom, 7.711, 1e-2);
  EXPECT_NEAR(result.p_value, 0.3138, 2e-3);
}

TEST(WelchTTest, DegreesOfFreedomBetweenMinAndSum) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6};
  std::vector<double> b = {2.0, 2.1, 2.2};
  const auto result = train::WelchTTest(a, b);
  EXPECT_GE(result.degrees_of_freedom, 2.0);
  EXPECT_LE(result.degrees_of_freedom, 7.0);
}

}  // namespace
}  // namespace enhancenet
