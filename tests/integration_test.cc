// End-to-end integration tests: data generation -> scaling -> windowing ->
// training -> evaluation, exercising the same pipeline the benchmark
// harness uses, at smoke-test scale.

#include <cmath>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "gtest/gtest.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace enhancenet {
namespace {

struct Pipeline {
  explicit Pipeline(data::CtsData dataset)
      : raw(std::move(dataset)),
        splits(data::ChronologicalSplits(raw.num_steps())) {
    scaler.Fit(raw.series, 0, splits.train_end);
    const Tensor scaled = scaler.Transform(raw.series);
    adjacency = graph::GaussianKernelAdjacency(raw.distances);
    train = std::make_unique<data::WindowDataset>(
        scaled, raw.series, raw.target_channel, 0, splits.train_end, 12, 12,
        /*stride=*/10);
    val = std::make_unique<data::WindowDataset>(
        scaled, raw.series, raw.target_channel, splits.train_end,
        splits.val_end, 12, 12, 10);
    test = std::make_unique<data::WindowDataset>(
        scaled, raw.series, raw.target_channel, splits.val_end, splits.total,
        12, 12, 10);
  }

  data::CtsData raw;
  data::Splits splits;
  data::StandardScaler scaler;
  Tensor adjacency;
  std::unique_ptr<data::WindowDataset> train;
  std::unique_ptr<data::WindowDataset> val;
  std::unique_ptr<data::WindowDataset> test;
};

models::ModelSizing SmokeSizing() {
  models::ModelSizing sizing;
  sizing.rnn_hidden = 8;
  sizing.rnn_hidden_dfgn = 6;
  sizing.tcn_channels = 6;
  sizing.tcn_channels_dfgn = 6;
  sizing.skip_channels = 8;
  sizing.end_channels = 8;
  sizing.memory_dim = 6;
  sizing.damgn_mem_dim = 4;
  sizing.damgn_embed_dim = 4;
  return sizing;
}

TEST(IntegrationTest, EnhancedGrnnTrainsOnTrafficData) {
  Pipeline pipeline(data::MakeEbLike(10, 3, /*seed=*/91));
  Rng rng(92);
  auto model = models::MakeModel("D-DA-GRNN", pipeline.raw.num_entities(),
                                 pipeline.raw.num_channels(),
                                 pipeline.adjacency, SmokeSizing(), rng);
  train::TrainerConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  train::Trainer trainer(model.get(), &pipeline.scaler,
                         pipeline.raw.target_channel, tc);
  const train::TrainResult result =
      trainer.Train(*pipeline.train, *pipeline.val, rng);
  EXPECT_TRUE(std::isfinite(result.best_val_mae));

  train::MetricAccumulator acc(12);
  trainer.Evaluate(*pipeline.test, &acc, rng);
  const auto overall = acc.Overall();
  EXPECT_GT(overall.count, 0);
  // Speeds are in [3, 76]; even a barely-trained model must land below the
  // trivial "always zero" error (~60) by a wide margin.
  EXPECT_LT(overall.mae, 30.0);
  EXPECT_TRUE(std::isfinite(overall.rmse));
  EXPECT_GE(overall.rmse, overall.mae);  // RMSE dominates MAE always
}

TEST(IntegrationTest, EnhancedGtcnTrainsOnWeatherData) {
  Pipeline pipeline(data::MakeUsLike(9, 20, /*seed=*/93));
  Rng rng(94);
  auto model = models::MakeModel("D-DA-GTCN", pipeline.raw.num_entities(),
                                 pipeline.raw.num_channels(),
                                 pipeline.adjacency, SmokeSizing(), rng);
  train::TrainerConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  tc.learning_rate = 0.001f;
  tc.use_step_decay = false;
  tc.use_scheduled_sampling = false;
  train::Trainer trainer(model.get(), &pipeline.scaler,
                         pipeline.raw.target_channel, tc);
  trainer.Train(*pipeline.train, *pipeline.val, rng);
  train::MetricAccumulator acc(12);
  trainer.Evaluate(*pipeline.test, &acc, rng);
  // Temperatures are ~280-300 K; anything below 20 K MAE means the model
  // actually locked on to the signal scale.
  EXPECT_LT(acc.Overall().mae, 20.0);
}

TEST(IntegrationTest, TrainingImprovesOverEpochsOnEasySignal) {
  Pipeline pipeline(data::MakeEbLike(8, 4, /*seed=*/95));
  Rng rng(96);
  auto model =
      models::MakeModel("RNN", pipeline.raw.num_entities(),
                        pipeline.raw.num_channels(), Tensor(), SmokeSizing(),
                        rng);
  train::TrainerConfig tc;
  tc.epochs = 5;
  tc.batch_size = 8;
  train::Trainer trainer(model.get(), &pipeline.scaler,
                         pipeline.raw.target_channel, tc);
  const train::TrainResult result =
      trainer.Train(*pipeline.train, *pipeline.val, rng);
  EXPECT_LT(result.epoch_train_loss.back(),
            result.epoch_train_loss.front() * 0.8);
}

TEST(IntegrationTest, FullPipelineIsDeterministic) {
  auto run_once = [] {
    Pipeline pipeline(data::MakeEbLike(8, 3, /*seed=*/97));
    Rng rng(98);
    auto model = models::MakeModel("GRNN", pipeline.raw.num_entities(),
                                   pipeline.raw.num_channels(),
                                   pipeline.adjacency, SmokeSizing(), rng);
    train::TrainerConfig tc;
    tc.epochs = 1;
    tc.batch_size = 8;
    train::Trainer trainer(model.get(), &pipeline.scaler,
                           pipeline.raw.target_channel, tc);
    trainer.Train(*pipeline.train, *pipeline.val, rng);
    train::MetricAccumulator acc(12);
    trainer.Evaluate(*pipeline.test, &acc, rng);
    return acc.Overall().mae;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace enhancenet
