// Thread-count invariance: every tensor op must produce bitwise-identical
// results for ENHANCENET_NUM_THREADS=1 and >1, across shapes that do not
// divide evenly into chunks, tiles, or SIMD widths. This is the contract
// that keeps autograd gradient checks and the seeded table reproductions
// stable no matter the host.

#include <cstring>
#include <functional>

#include "runtime/parallel.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

class TensorParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(saved_threads_); }

  // Runs `fn` serially and with 4 threads; the results must match bit for bit.
  void ExpectInvariant(const std::function<Tensor()>& fn, const char* what) {
    SetNumThreads(1);
    const Tensor serial = fn();
    SetNumThreads(4);
    const Tensor threaded = fn();
    SetNumThreads(1);
    EXPECT_TRUE(BitwiseEqual(serial, threaded)) << what;
  }

  int saved_threads_ = 1;
};

TEST_F(TensorParallelTest, GemmAllTransposeVariants) {
  Rng rng(7);
  // 127 x 65 x 33: every dimension leaves ragged micro-tiles.
  Tensor a = Tensor::Randn({127, 65}, rng);
  Tensor b = Tensor::Randn({65, 33}, rng);
  Tensor at = Tensor::Randn({65, 127}, rng);
  Tensor bt = Tensor::Randn({33, 65}, rng);
  ExpectInvariant([&] { return ops::MatMul(a, b); }, "MatMul");
  ExpectInvariant([&] { return ops::Gemm(at, b, true, false); }, "Gemm tn");
  ExpectInvariant([&] { return ops::Gemm(a, bt, false, true); }, "Gemm nt");
  ExpectInvariant([&] { return ops::Gemm(at, bt, true, true); }, "Gemm tt");
}

TEST_F(TensorParallelTest, GemmMultipleKBlocks) {
  Rng rng(11);
  // k=300 spans two KC=256 blocks; exercises the block-accumulation order.
  Tensor a = Tensor::Randn({127, 300}, rng);
  Tensor b = Tensor::Randn({300, 33}, rng);
  ExpectInvariant([&] { return ops::MatMul(a, b); }, "MatMul k=300");
}

TEST_F(TensorParallelTest, GemmMultipleCacheBlocksEveryAxis) {
  Rng rng(13);
  // 300 x 300 x 600 spans every blocking level raggedly: M crosses two
  // MC=128 A sub-blocks plus a remainder, K two KC=256 blocks, N two NC=512
  // panels — so A is packed per (pc, jc, sub-block) rather than once.
  Tensor a = Tensor::Randn({300, 300}, rng);
  Tensor b = Tensor::Randn({300, 600}, rng);
  ExpectInvariant([&] { return ops::MatMul(a, b); }, "MatMul 300x300x600");
  Tensor at = Tensor::Randn({300, 300}, rng);
  ExpectInvariant([&] { return ops::Gemm(at, b, true, false); },
                  "Gemm tn 300x300x600");
  // Correctness against the K-slice identity the tiled path must satisfy:
  // C = A*B == A[:, :k0]*B[:k0, :] + A[:, k0:]*B[k0:, :] computed as two
  // small products. Accumulation order over K differs, so compare with a
  // tolerance instead of bitwise.
  const int64_t k0 = 150;
  Tensor full = ops::MatMul(a, b);
  Tensor part = ops::Add(
      ops::MatMul(ops::Slice(a, 1, 0, k0), ops::Slice(b, 0, 0, k0)),
      ops::MatMul(ops::Slice(a, 1, k0, 300 - k0),
                  ops::Slice(b, 0, k0, 300 - k0)));
  ASSERT_EQ(full.shape(), part.shape());
  for (int64_t i = 0; i < full.numel(); ++i) {
    EXPECT_NEAR(full.data()[i], part.data()[i], 1e-3f) << "at " << i;
  }
}

TEST_F(TensorParallelTest, GemmTransposeReadsMatchMaterializedTranspose) {
  // Packing a transposed operand in place must be bitwise identical to
  // materializing the transpose first (same K accumulation order).
  Rng rng(13);
  Tensor at = Tensor::Randn({65, 127}, rng);
  Tensor b = Tensor::Randn({65, 33}, rng);
  SetNumThreads(4);
  EXPECT_TRUE(BitwiseEqual(ops::Gemm(at, b, true, false),
                           ops::MatMul(ops::Transpose2D(at), b)));
  SetNumThreads(1);
}

TEST_F(TensorParallelTest, BatchGemmSmallSlices) {
  Rng rng(17);
  // The D-RNN per-entity filter shape: small slices, batch-parallel path.
  Tensor x = Tensor::Randn({19, 8, 17}, rng);
  Tensor w = Tensor::Randn({19, 17, 32}, rng);
  Tensor xt = Tensor::Randn({19, 17, 8}, rng);
  Tensor wt = Tensor::Randn({19, 32, 17}, rng);
  ExpectInvariant([&] { return ops::BatchMatMul(x, w); }, "bmm nn");
  ExpectInvariant([&] { return ops::BatchGemm(xt, w, true, false); }, "bmm tn");
  ExpectInvariant([&] { return ops::BatchGemm(x, wt, false, true); }, "bmm nt");
  ExpectInvariant([&] { return ops::BatchGemm(xt, wt, true, true); }, "bmm tt");
}

TEST_F(TensorParallelTest, BatchGemmBigSlicesUseTiledPath) {
  Rng rng(19);
  Tensor a = Tensor::Randn({3, 127, 65}, rng);
  Tensor b = Tensor::Randn({3, 65, 33}, rng);
  ExpectInvariant([&] { return ops::BatchMatMul(a, b); }, "bmm big");
}

TEST_F(TensorParallelTest, BatchGemmMatchesPerSliceGemm) {
  Rng rng(23);
  Tensor a = Tensor::Randn({5, 33, 17}, rng);
  Tensor b = Tensor::Randn({5, 17, 29}, rng);
  SetNumThreads(4);
  Tensor c = ops::BatchMatMul(a, b);
  for (int64_t i = 0; i < 5; ++i) {
    Tensor ai = ops::Slice(a, 0, i, 1).Reshape({33, 17});
    Tensor bi = ops::Slice(b, 0, i, 1).Reshape({17, 29});
    Tensor ci = ops::Slice(c, 0, i, 1).Reshape({33, 29});
    EXPECT_TRUE(BitwiseEqual(ci, ops::MatMul(ai, bi))) << "slice " << i;
  }
  SetNumThreads(1);
}

TEST_F(TensorParallelTest, ElementwiseAndBroadcast) {
  Rng rng(29);
  Tensor a = Tensor::Randn({997, 37}, rng);
  Tensor b = Tensor::Randn({997, 37}, rng);
  Tensor bias = Tensor::Randn({37}, rng);
  ExpectInvariant([&] { return ops::Add(a, b); }, "Add");
  ExpectInvariant([&] { return ops::Mul(a, b); }, "Mul");
  ExpectInvariant([&] { return ops::Add(a, bias); }, "Add bias");
  ExpectInvariant([&] { return ops::MulScalar(a, 0.37f); }, "MulScalar");
  ExpectInvariant([&] { return ops::Maximum(a, b); }, "Maximum");
}

TEST_F(TensorParallelTest, UnaryOps) {
  Rng rng(31);
  Tensor a = Tensor::Randn({997, 37}, rng);
  ExpectInvariant([&] { return ops::Sigmoid(a); }, "Sigmoid");
  ExpectInvariant([&] { return ops::Tanh(a); }, "Tanh");
  ExpectInvariant([&] { return ops::Exp(a); }, "Exp");
  ExpectInvariant([&] { return ops::Relu(a); }, "Relu");
  ExpectInvariant([&] { return ops::Square(a); }, "Square");
}

TEST_F(TensorParallelTest, AxpyInPlace) {
  Rng rng(37);
  Tensor x = Tensor::Randn({997, 37}, rng);
  Tensor y0 = Tensor::Randn({997, 37}, rng);
  auto run = [&] {
    Tensor y = y0.Clone();
    ops::AxpyInPlace(0.25f, x, &y);
    return y;
  };
  ExpectInvariant(run, "AxpyInPlace");
}

TEST_F(TensorParallelTest, SoftmaxLastDim) {
  Rng rng(41);
  Tensor t = Tensor::Randn({511, 65}, rng);
  ExpectInvariant([&] { return ops::SoftmaxLastDim(t); }, "SoftmaxLastDim");
}

TEST_F(TensorParallelTest, Reductions) {
  Rng rng(43);
  Tensor t = Tensor::Randn({513, 127}, rng);
  ExpectInvariant([&] { return ops::Sum(t, 0, false); }, "Sum axis0");
  ExpectInvariant([&] { return ops::Sum(t, 1, true); }, "Sum axis1 keepdim");
  ExpectInvariant([&] { return ops::Mean(t, 0, false); }, "Mean axis0");
  ExpectInvariant([&] { return ops::SumAll(t); }, "SumAll");
  ExpectInvariant([&] { return ops::MeanAll(t); }, "MeanAll");
  ExpectInvariant([&] { return ops::ReduceToShape(t, {127}); }, "ReduceToShape");
  ExpectInvariant([&] { return ops::ReduceToShape(t, {1, 127}); },
                  "ReduceToShape keepdim");
}

TEST_F(TensorParallelTest, TransposeBlockedFastPath) {
  Rng rng(47);
  Tensor t = Tensor::Randn({127, 513}, rng);
  ExpectInvariant([&] { return ops::Transpose2D(t); }, "Transpose2D");
  ExpectInvariant([&] { return ops::Transpose(t, 0, 1); }, "Transpose rank2");
  // Blocked fast path must agree with the generic layout exactly.
  SetNumThreads(4);
  Tensor tt = ops::Transpose2D(t);
  for (int64_t i = 0; i < 127; i += 13) {
    for (int64_t j = 0; j < 513; j += 31) {
      ASSERT_EQ(t.at({i, j}), tt.at({j, i}));
    }
  }
  SetNumThreads(1);
}

}  // namespace
}  // namespace enhancenet
