// Tests for the observability layer: registry semantics, RAII timers and
// trace spans, exporters, profiling gating of the tensor-backend hooks, and
// an end-to-end CLI run whose --metrics-out snapshot is parsed back.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/context.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  // Counters like serve.* / train.* / tensor.* are process-global; zero them
  // so every test sees exact values.
  void SetUp() override { obs::Registry::Global().ResetForTest(); }
};

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram semantics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterAddsAndResets) {
  obs::Counter* c = obs::Registry::Global().GetCounter("test.counter");
  EXPECT_EQ(c->Get(), 0);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Get(), 42);
  c->Reset();
  EXPECT_EQ(c->Get(), 0);
}

TEST_F(ObsTest, RegistryReturnsStablePointers) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter* a = registry.GetCounter("test.stable");
  obs::Counter* b = registry.GetCounter("test.stable");
  EXPECT_EQ(a, b);
  registry.ResetForTest();
  // Reset zeroes values but never invalidates handed-out handles.
  EXPECT_EQ(registry.GetCounter("test.stable"), a);
  a->Add(7);
  EXPECT_EQ(b->Get(), 7);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  obs::Gauge* g = obs::Registry::Global().GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-3.25);
  EXPECT_DOUBLE_EQ(g->Get(), -3.25);
}

TEST_F(ObsTest, HistogramBucketsAreLeSemantics) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // le=1
  h.Observe(1.0);   // le=1: a value on the bound belongs to that bucket
  h.Observe(1.5);   // le=2
  h.Observe(4.0);   // le=4
  h.Observe(100.0); // overflow
  const std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.Count(), 5);
  EXPECT_DOUBLE_EQ(h.Sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 107.0 / 5.0);
}

TEST_F(ObsTest, EmptyHistogramReportsZeros) {
  obs::Histogram h({1.0});
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST_F(ObsTest, ConcurrentUpdatesAreExact) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter* counter = registry.GetCounter("test.concurrent.counter");
  obs::Histogram* histogram =
      registry.GetHistogram("test.concurrent.hist", {0.25, 0.5, 0.75});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        histogram->Observe(static_cast<double>((t + i) % 4) / 4.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Get(), kThreads * kPerThread);
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (const int64_t c : histogram->BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// ScopedTimer / TraceSpan
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ScopedTimerRecordsOnDestruction) {
  obs::Histogram h(obs::LatencyBucketsMs());
  {
    obs::ScopedTimer timer(&h);
    EXPECT_EQ(h.Count(), 0);  // nothing recorded while the scope is live
  }
  EXPECT_EQ(h.Count(), 1);
  EXPECT_GE(h.Sum(), 0.0);
}

TEST_F(ObsTest, CancelledScopedTimerRecordsNothing) {
  obs::Histogram h(obs::LatencyBucketsMs());
  {
    obs::ScopedTimer timer(&h);
    timer.Cancel();
  }
  EXPECT_EQ(h.Count(), 0);
}

TEST_F(ObsTest, TraceSpansNestIntoDottedHistogramNames) {
  obs::Registry& registry = obs::Registry::Global();
  EXPECT_EQ(obs::TraceSpan::Depth(), 0);
  {
    obs::TraceSpan outer("outer");
    EXPECT_EQ(obs::TraceSpan::Depth(), 1);
    EXPECT_EQ(obs::TraceSpan::CurrentPath(), "outer");
    {
      obs::TraceSpan inner("inner");
      EXPECT_EQ(obs::TraceSpan::Depth(), 2);
      EXPECT_EQ(obs::TraceSpan::CurrentPath(), "outer.inner");
    }
    EXPECT_EQ(obs::TraceSpan::Depth(), 1);
  }
  EXPECT_EQ(obs::TraceSpan::Depth(), 0);
  EXPECT_EQ(registry
                .GetHistogram("trace.outer", obs::LatencyBucketsMs())
                ->Count(),
            1);
  EXPECT_EQ(registry
                .GetHistogram("trace.outer.inner", obs::LatencyBucketsMs())
                ->Count(),
            1);
}

TEST_F(ObsTest, TraceSpansAreThreadLocal) {
  obs::TraceSpan outer("main_thread_span");
  std::thread other([] {
    // A sibling thread starts from an empty span stack.
    EXPECT_EQ(obs::TraceSpan::Depth(), 0);
    obs::TraceSpan span("other_thread_span");
    EXPECT_EQ(obs::TraceSpan::CurrentPath(), "other_thread_span");
  });
  other.join();
  EXPECT_EQ(obs::TraceSpan::CurrentPath(), "main_thread_span");
}

// ---------------------------------------------------------------------------
// Profiling gating of the tensor-backend hooks
// ---------------------------------------------------------------------------

TEST_F(ObsTest, GemmCountersOnlyRecordWhenProfilingEnabled) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter* calls = registry.GetCounter("tensor.gemm.calls");
  obs::Counter* flops = registry.GetCounter("tensor.gemm.flops");
  Rng rng(5);
  Tensor a = Tensor::Randn({4, 6}, rng);
  Tensor b = Tensor::Randn({6, 8}, rng);

  ASSERT_FALSE(runtime::ProfilingEnabled());  // default off
  ops::MatMul(a, b);
  EXPECT_EQ(calls->Get(), 0);
  EXPECT_EQ(flops->Get(), 0);

  runtime::SetProfilingEnabled(true);
  ops::MatMul(a, b);
  runtime::SetProfilingEnabled(false);
  EXPECT_EQ(calls->Get(), 1);
  EXPECT_EQ(flops->Get(), 2 * 4 * 6 * 8);

  ops::MatMul(a, b);  // off again: no further counts
  EXPECT_EQ(calls->Get(), 1);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TextExportListsEveryKind) {
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("test.export.counter")->Add(3);
  registry.GetGauge("test.export.gauge")->Set(1.5);
  registry.GetHistogram("test.export.hist", {1.0, 2.0})->Observe(0.5);
  std::ostringstream out;
  obs::ExportText(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("counter test.export.counter 3"), std::string::npos);
  EXPECT_NE(text.find("gauge test.export.gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("histogram test.export.hist count=1"),
            std::string::npos);
}

TEST_F(ObsTest, JsonExportIsWellFormedAndSorted) {
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("test.json.b")->Add(2);
  registry.GetCounter("test.json.a")->Add(1);
  registry.GetHistogram("test.json.hist", {1.0})->Observe(5.0);  // overflow
  const std::string json = obs::ExportJsonString(registry);
  // Sorted keys: a before b.
  const size_t pos_a = json.find("\"test.json.a\": 1");
  const size_t pos_b = json.find("\"test.json.b\": 2");
  ASSERT_NE(pos_a, std::string::npos) << json;
  ASSERT_NE(pos_b, std::string::npos) << json;
  EXPECT_LT(pos_a, pos_b);
  // The implicit overflow bucket exports with a quoted "inf" bound.
  EXPECT_NE(json.find("{\"le\": \"inf\", \"count\": 1}"), std::string::npos)
      << json;
  // Braces balance (cheap well-formedness check; full parsing happens in the
  // CLI integration test below).
  int depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsTest, NonFiniteGaugeIsQuotedInJson) {
  obs::Registry& registry = obs::Registry::Global();
  registry.GetGauge("test.json.inf")->Set(
      std::numeric_limits<double>::infinity());
  const std::string json = obs::ExportJsonString(registry);
  EXPECT_NE(json.find("\"test.json.inf\": \"inf\""), std::string::npos)
      << json;
}

TEST_F(ObsTest, WriteMetricsJsonIsAtomic) {
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("test.write.counter")->Add(9);
  const std::string path = ::testing::TempDir() + "/obs_snapshot.json";
  ASSERT_TRUE(obs::WriteMetricsJson(registry, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"test.write.counter\": 9"),
            std::string::npos);
  // No temp file left behind, and a bad destination is a Status, not abort.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
  EXPECT_FALSE(obs::WriteMetricsJson(registry, "/nonexistent/dir/x.json").ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End to end: a 2-epoch CLI train run emits a parseable snapshot with
// deterministic counters, serve latency buckets, and (under --profile) GEMM
// call counts.
// ---------------------------------------------------------------------------

/// Extracts the integer following `"key": ` (counters). -1 when absent.
int64_t ExtractCounter(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(json.c_str() + pos + needle.size());
}

/// Sums the per-bucket counts of histogram `name`. -1 when absent.
int64_t SumHistogramBuckets(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\": {";
  const size_t start = json.find(needle);
  if (start == std::string::npos) return -1;
  const size_t end = json.find("]}", start);
  const std::string object = json.substr(start, end - start);
  int64_t total = 0;
  size_t pos = object.find("\"buckets\": [");
  while ((pos = object.find("\"count\": ", pos)) != std::string::npos) {
    pos += 9;
    total += std::atoll(object.c_str() + pos);
  }
  return total;
}

TEST_F(ObsTest, CliTrainRunEmitsParseableMetricsSnapshot) {
#ifndef ENHANCENET_CLI_PATH
  GTEST_SKIP() << "CLI path not wired in";
#else
  const std::string checkpoint = ::testing::TempDir() + "/obs_cli.encp";
  const std::string metrics = ::testing::TempDir() + "/obs_cli_metrics.json";
  const std::string command = std::string(ENHANCENET_CLI_PATH) +
                              " train --synthetic eb --model D-GRNN" +
                              " --epochs 2 --checkpoint " + checkpoint +
                              " --metrics-out=" + metrics +
                              " --profile > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  std::ifstream in(metrics);
  ASSERT_TRUE(in.is_open()) << metrics;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  // Deterministic trainer counters: exactly the requested epochs ran, with
  // the same batch count each epoch.
  EXPECT_EQ(ExtractCounter(json, "train.epochs"), 2) << json;
  const int64_t batches = ExtractCounter(json, "train.batches");
  EXPECT_GT(batches, 0);
  EXPECT_EQ(batches % 2, 0);

  // The post-train serve smoke produced serve latency histogram mass.
  EXPECT_EQ(ExtractCounter(json, "serve.session.windows"), 1);
  EXPECT_EQ(ExtractCounter(json, "serve.session.forwards"), 1);
  EXPECT_EQ(SumHistogramBuckets(json, "serve.session.latency_ms"), 1);

  // The smoke goes through the serving control plane: the model was
  // published to a ModelRegistry as version 1 under its zoo name, so the
  // per-model metric family is in the snapshot (gauges print as integers).
  EXPECT_EQ(ExtractCounter(json, "serve.model.D-GRNN.version"), 1) << json;
  EXPECT_EQ(ExtractCounter(json, "serve.model.D-GRNN.requests"), 1);
  EXPECT_EQ(ExtractCounter(json, "serve.model.D-GRNN.errors"), 0);
  EXPECT_EQ(SumHistogramBuckets(json, "serve.model.D-GRNN.pool.occupancy"),
            1);

  // Trainer epoch timing histogram carries one sample per epoch.
  EXPECT_EQ(SumHistogramBuckets(json, "train.epoch_ms"), 2);

  // --profile turned the tensor-backend hooks on.
  EXPECT_GT(ExtractCounter(json, "tensor.gemm.calls"), 0);
  EXPECT_GT(ExtractCounter(json, "tensor.gemm.flops"), 0);

  // The default allocator exports per-shard hit-rate gauges; a single-thread
  // run allocates exclusively on shard 0, and a 2-epoch train recycles
  // enough blocks to push its hit rate up.
  EXPECT_NE(json.find("\"tensor.alloc.shard.0.hit_rate\""), std::string::npos)
      << json;
  EXPECT_GT(ExtractCounter(json, "tensor.alloc.pool_hits"), 0);

  std::remove(checkpoint.c_str());
  std::remove(metrics.c_str());
#endif
}

}  // namespace
}  // namespace enhancenet
