#include "tensor/tensor.h"

#include "gtest/gtest.h"
#include "runtime/workspace.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

using ::enhancenet::testing::ExpectTensorNear;

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({3}), 3);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({5, 0, 2}), 0);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({}), "[]");
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t.item(), 0.0f);
}

TEST(TensorTest, ZerosAndOnes) {
  Tensor z = Tensor::Zeros({2, 3});
  Tensor o = Tensor::Ones({2, 3});
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(z.data()[i], 0.0f);
    EXPECT_EQ(o.data()[i], 1.0f);
  }
}

TEST(TensorTest, FullAndScalar) {
  Tensor f = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(f.data()[i], 2.5f);
  EXPECT_EQ(Tensor::Scalar(-3.0f).item(), -3.0f);
}

TEST(TensorTest, FromVectorRoundTrip) {
  const std::vector<float> values = {1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::FromVector({2, 3}, values);
  EXPECT_EQ(t.ToVector(), values);
  EXPECT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_EQ(t.at({1, 0}), 4.0f);
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Zeros({2});
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a.data()[0] = 7.0f;
  EXPECT_EQ(shallow.data()[0], 7.0f);
  EXPECT_EQ(deep.data()[0], 0.0f);
  EXPECT_TRUE(a.SharesStorageWith(shallow));
  EXPECT_FALSE(a.SharesStorageWith(deep));
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshape({3, 2});
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_EQ(b.at({2, 1}), 6.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor a = Tensor::Zeros({4, 6});
  EXPECT_EQ(ShapeToString(a.Reshape({-1, 3}).shape()), "[8, 3]");
  EXPECT_EQ(ShapeToString(a.Reshape({2, -1}).shape()), "[2, 12]");
}

TEST(TensorTest, NegativeSizeIndexing) {
  Tensor a = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(a.size(-1), 4);
  EXPECT_EQ(a.size(-3), 2);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng rng1(99);
  Rng rng2(99);
  Tensor a = Tensor::Randn({8}, rng1);
  Tensor b = Tensor::Randn({8}, rng2);
  ExpectTensorNear(a, b, 0.0f);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(5);
  Tensor t = Tensor::RandUniform({1000}, rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.data()[i], -2.0f);
    EXPECT_LT(t.data()[i], 3.0f);
  }
}

// ---------------------------------------------------------------------------
// Elementwise ops
// ---------------------------------------------------------------------------

TEST(TensorOpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  ExpectTensorNear(ops::Add(a, b), Tensor::FromVector({2, 2}, {11, 22, 33, 44}));
}

TEST(TensorOpsTest, BroadcastBiasAdd) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  ExpectTensorNear(ops::Add(a, bias),
                   Tensor::FromVector({2, 3}, {11, 22, 33, 14, 25, 36}));
}

TEST(TensorOpsTest, BroadcastScalarTensor) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(5.0f);
  ExpectTensorNear(ops::Mul(a, s), Tensor::FromVector({2, 2}, {5, 10, 15, 20}));
}

TEST(TensorOpsTest, BroadcastLeadingDim) {
  // [N,N] broadcast against [B,N,N].
  Tensor a = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  Tensor b = Tensor::Ones({3, 2, 2});
  Tensor out = ops::Add(b, a);
  EXPECT_EQ(ShapeToString(out.shape()), "[3, 2, 2]");
  EXPECT_EQ(out.at({2, 0, 0}), 2.0f);
  EXPECT_EQ(out.at({2, 0, 1}), 1.0f);
}

TEST(TensorOpsTest, BroadcastMiddleOnes) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({1, 3, 1}, {10, 20, 30});
  Tensor out = ops::Add(a, b);
  EXPECT_EQ(ShapeToString(out.shape()), "[2, 3, 2]");
  EXPECT_EQ(out.at({0, 0, 0}), 11.0f);
  EXPECT_EQ(out.at({0, 2, 1}), 32.0f);
  EXPECT_EQ(out.at({1, 1, 0}), 23.0f);
}

TEST(TensorOpsTest, BroadcastSuffixBlock) {
  // [2,2,2] + [2,2] exercises the trailing-block fast path.
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  ExpectTensorNear(ops::Add(a, b),
                   Tensor::FromVector({2, 2, 2},
                                      {11, 22, 33, 44, 15, 26, 37, 48}));
  // And the mirrored order.
  ExpectTensorNear(ops::Add(b, a),
                   Tensor::FromVector({2, 2, 2},
                                      {11, 22, 33, 44, 15, 26, 37, 48}));
}

TEST(TensorOpsTest, BroadcastScalarWithHigherRankKeepsBroadcastShape) {
  // [3] * [1,1] must produce [1,3] (the strict NumPy broadcast shape).
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor s = Tensor::Ones({1, 1});
  Tensor out = ops::Mul(a, s);
  EXPECT_EQ(ShapeToString(out.shape()), "[1, 3]");
}

TEST(TensorOpsTest, BroadcastInteriorOnesStillExact) {
  // [3,4] + [1,4] must not take the suffix fast path blindly.
  Tensor a = Tensor::Ones({3, 4});
  Tensor b = Tensor::FromVector({1, 4}, {1, 2, 3, 4});
  Tensor out = ops::Add(a, b);
  EXPECT_EQ(ShapeToString(out.shape()), "[3, 4]");
  EXPECT_EQ(out.at({2, 3}), 5.0f);
}

TEST(TensorOpsTest, SubMulDiv) {
  Tensor a = Tensor::FromVector({3}, {6, 8, 10});
  Tensor b = Tensor::FromVector({3}, {2, 4, 5});
  ExpectTensorNear(ops::Sub(a, b), Tensor::FromVector({3}, {4, 4, 5}));
  ExpectTensorNear(ops::Mul(a, b), Tensor::FromVector({3}, {12, 32, 50}));
  ExpectTensorNear(ops::Div(a, b), Tensor::FromVector({3}, {3, 2, 2}));
}

TEST(TensorOpsTest, MaximumAndUnaryOps) {
  Tensor a = Tensor::FromVector({4}, {-2, -0.5, 0, 3});
  ExpectTensorNear(ops::Maximum(a, Tensor::Zeros({4})),
                   Tensor::FromVector({4}, {0, 0, 0, 3}));
  ExpectTensorNear(ops::Neg(a), Tensor::FromVector({4}, {2, 0.5, 0, -3}));
  ExpectTensorNear(ops::Abs(a), Tensor::FromVector({4}, {2, 0.5, 0, 3}));
  ExpectTensorNear(ops::Sign(a), Tensor::FromVector({4}, {-1, -1, 0, 1}));
  ExpectTensorNear(ops::Relu(a), Tensor::FromVector({4}, {0, 0, 0, 3}));
  ExpectTensorNear(ops::ReluMask(a), Tensor::FromVector({4}, {0, 0, 0, 1}));
  ExpectTensorNear(ops::Square(a), Tensor::FromVector({4}, {4, 0.25, 0, 9}));
}

TEST(TensorOpsTest, SigmoidValuesAndStability) {
  Tensor a = Tensor::FromVector({3}, {0.0f, 100.0f, -100.0f});
  Tensor s = ops::Sigmoid(a);
  EXPECT_NEAR(s.data()[0], 0.5f, 1e-6f);
  EXPECT_NEAR(s.data()[1], 1.0f, 1e-6f);
  EXPECT_NEAR(s.data()[2], 0.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(s.data()[1]));
  EXPECT_FALSE(std::isnan(s.data()[2]));
}

TEST(TensorOpsTest, TanhExpLogSqrt) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_NEAR(ops::Tanh(a).data()[1], std::tanh(1.0f), 1e-6f);
  EXPECT_NEAR(ops::Exp(a).data()[1], std::exp(1.0f), 1e-5f);
  Tensor b = Tensor::FromVector({2}, {1.0f, 4.0f});
  EXPECT_NEAR(ops::Log(b).data()[1], std::log(4.0f), 1e-6f);
  EXPECT_NEAR(ops::Sqrt(b).data()[1], 2.0f, 1e-6f);
}

TEST(TensorOpsTest, ScalarOpsAndAxpy) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  ExpectTensorNear(ops::AddScalar(a, 1.5f),
                   Tensor::FromVector({3}, {2.5, 3.5, 4.5}));
  ExpectTensorNear(ops::MulScalar(a, -2.0f),
                   Tensor::FromVector({3}, {-2, -4, -6}));
  Tensor y = Tensor::FromVector({3}, {10, 10, 10});
  ops::AxpyInPlace(2.0f, a, &y);
  ExpectTensorNear(y, Tensor::FromVector({3}, {12, 14, 16}));
}

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

TEST(TensorOpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  ExpectTensorNear(ops::MatMul(a, b),
                   Tensor::FromVector({2, 2}, {58, 64, 139, 154}));
}

TEST(TensorOpsTest, GemmTransposeVariants) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 5}, rng);
  Tensor b = Tensor::Randn({5, 3}, rng);
  Tensor base = ops::MatMul(a, b);
  ExpectTensorNear(ops::Gemm(ops::Transpose2D(a), b, true, false), base,
                   1e-4f);
  ExpectTensorNear(ops::Gemm(a, ops::Transpose2D(b), false, true), base,
                   1e-4f);
  ExpectTensorNear(
      ops::Gemm(ops::Transpose2D(a), ops::Transpose2D(b), true, true), base,
      1e-4f);
}

TEST(TensorOpsTest, MatMulIdentity) {
  Rng rng(4);
  Tensor a = Tensor::Randn({3, 3}, rng);
  Tensor eye = Tensor::Zeros({3, 3});
  for (int64_t i = 0; i < 3; ++i) eye.at({i, i}) = 1.0f;
  ExpectTensorNear(ops::MatMul(a, eye), a, 1e-6f);
  ExpectTensorNear(ops::MatMul(eye, a), a, 1e-6f);
}

TEST(TensorOpsTest, BatchMatMulMatchesPerSlice) {
  Rng rng(7);
  Tensor a = Tensor::Randn({3, 2, 4}, rng);
  Tensor b = Tensor::Randn({3, 4, 5}, rng);
  Tensor c = ops::BatchMatMul(a, b);
  EXPECT_EQ(ShapeToString(c.shape()), "[3, 2, 5]");
  for (int64_t i = 0; i < 3; ++i) {
    Tensor ai = ops::Slice(a, 0, i, 1).Reshape({2, 4});
    Tensor bi = ops::Slice(b, 0, i, 1).Reshape({4, 5});
    Tensor ci = ops::Slice(c, 0, i, 1).Reshape({2, 5});
    ExpectTensorNear(ci, ops::MatMul(ai, bi), 1e-5f);
  }
}

TEST(TensorOpsTest, BatchGemmTransposeVariants) {
  Rng rng(8);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor b = Tensor::Randn({2, 4, 5}, rng);
  Tensor base = ops::BatchMatMul(a, b);
  Tensor at = ops::Transpose(a, 1, 2);
  Tensor bt = ops::Transpose(b, 1, 2);
  ExpectTensorNear(ops::BatchGemm(at, b, true, false), base, 1e-4f);
  ExpectTensorNear(ops::BatchGemm(a, bt, false, true), base, 1e-4f);
}

// ---------------------------------------------------------------------------
// Movement ops
// ---------------------------------------------------------------------------

TEST(TensorOpsTest, Transpose2DValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  ExpectTensorNear(ops::Transpose2D(a),
                   Tensor::FromVector({3, 2}, {1, 4, 2, 5, 3, 6}));
}

TEST(TensorOpsTest, TransposeGeneralRoundTrip) {
  Rng rng(11);
  Tensor a = Tensor::Randn({2, 3, 4, 5}, rng);
  Tensor t = ops::Transpose(a, 1, 3);
  EXPECT_EQ(ShapeToString(t.shape()), "[2, 5, 4, 3]");
  ExpectTensorNear(ops::Transpose(t, 1, 3), a, 0.0f);
  EXPECT_EQ(t.at({1, 2, 3, 0}), a.at({1, 0, 3, 2}));
}

TEST(TensorOpsTest, TransposeSameDimIsCopy) {
  Rng rng(12);
  Tensor a = Tensor::Randn({2, 3}, rng);
  Tensor t = ops::Transpose(a, 1, 1);
  ExpectTensorNear(t, a, 0.0f);
  EXPECT_FALSE(t.SharesStorageWith(a));
}

TEST(TensorOpsTest, ConcatAxis0And1) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  ExpectTensorNear(ops::Concat({a, b}, 0),
                   Tensor::FromVector({2, 2}, {1, 2, 3, 4}));
  ExpectTensorNear(ops::Concat({a, b}, 1),
                   Tensor::FromVector({1, 4}, {1, 2, 3, 4}));
  ExpectTensorNear(ops::Concat({a, b}, -1),
                   Tensor::FromVector({1, 4}, {1, 2, 3, 4}));
}

TEST(TensorOpsTest, SliceMiddleAxis) {
  Tensor a = Tensor::FromVector({2, 3, 2},
                                {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor s = ops::Slice(a, 1, 1, 2);
  EXPECT_EQ(ShapeToString(s.shape()), "[2, 2, 2]");
  ExpectTensorNear(s, Tensor::FromVector({2, 2, 2}, {2, 3, 4, 5, 8, 9, 10, 11}));
}

TEST(TensorOpsTest, SliceThenConcatRestores) {
  Rng rng(13);
  Tensor a = Tensor::Randn({3, 5}, rng);
  Tensor left = ops::Slice(a, 1, 0, 2);
  Tensor right = ops::Slice(a, 1, 2, 3);
  ExpectTensorNear(ops::Concat({left, right}, 1), a, 0.0f);
}

TEST(TensorOpsTest, ConcatIntoMatchesConcat) {
  Rng rng(17);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor b = Tensor::Randn({5, 3, 4}, rng);
  Tensor c = Tensor::Randn({1, 3, 4}, rng);
  for (const int64_t axis : {int64_t{0}, int64_t{-3}}) {
    const Tensor reference = ops::Concat({a, b, c}, axis);
    // Pre-poison the destination: every element must be overwritten.
    Tensor out = Tensor::Full(reference.shape(), -123.0f);
    ops::ConcatInto({a, b, c}, axis, &out);
    ExpectTensorNear(out, reference, 0.0f);
  }
  // Interior axis exercises the outer/inner copy loops.
  Tensor d = Tensor::Randn({2, 5, 4}, rng);
  const Tensor reference = ops::Concat({a, d}, 1);
  Tensor out = Tensor::Full(reference.shape(), -123.0f);
  ops::ConcatInto({a, d}, 1, &out);
  ExpectTensorNear(out, reference, 0.0f);
}

TEST(TensorOpsTest, ConcatIntoWorkspaceStorage) {
  // The serving staging pattern: concat directly into a pooled workspace
  // block adopted via WithStorage — no allocator traffic, same values.
  Rng rng(18);
  Tensor a = Tensor::Randn({1, 2, 3, 2}, rng);
  Tensor b = Tensor::Randn({1, 2, 3, 2}, rng);
  runtime::Workspace workspace;
  Tensor staged =
      Tensor::WithStorage(workspace.Acquire(2 * 2 * 3 * 2), {2, 2, 3, 2});
  ops::ConcatInto({a, b}, 0, &staged);
  ExpectTensorNear(staged, ops::Concat({a, b}, 0), 0.0f);
}

TEST(TensorOpsTest, SliceIntoMatchesSlice) {
  Rng rng(19);
  Tensor a = Tensor::Randn({4, 5, 3}, rng);
  const struct { int64_t axis, start, length; } cases[] = {
      {0, 1, 2}, {1, 2, 3}, {-1, 0, 2}, {2, 1, 1}};
  for (const auto& c : cases) {
    const Tensor reference = ops::Slice(a, c.axis, c.start, c.length);
    Tensor out = Tensor::Full(reference.shape(), -123.0f);
    ops::SliceInto(a, c.axis, c.start, c.length, &out);
    ExpectTensorNear(out, reference, 0.0f);
  }
}

TEST(TensorOpsTest, PadAxisZeroFill) {
  Tensor a = Tensor::FromVector({1, 2}, {5, 6});
  Tensor p = ops::PadAxis(a, 1, 2, 1);
  ExpectTensorNear(p, Tensor::FromVector({1, 5}, {0, 0, 5, 6, 0}));
  Tensor p0 = ops::PadAxis(a, 0, 1, 0);
  ExpectTensorNear(p0, Tensor::FromVector({2, 2}, {0, 0, 5, 6}));
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

TEST(TensorOpsTest, SumAllMeanAll) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(ops::SumAll(a).item(), 10.0f);
  EXPECT_EQ(ops::MeanAll(a).item(), 2.5f);
}

TEST(TensorOpsTest, SumAxisKeepdim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = ops::Sum(a, 0, true);
  EXPECT_EQ(ShapeToString(s0.shape()), "[1, 3]");
  ExpectTensorNear(s0, Tensor::FromVector({1, 3}, {5, 7, 9}));
  Tensor s1 = ops::Sum(a, 1, false);
  EXPECT_EQ(ShapeToString(s1.shape()), "[2]");
  ExpectTensorNear(s1, Tensor::FromVector({2}, {6, 15}));
  Tensor m1 = ops::Mean(a, -1, true);
  ExpectTensorNear(m1, Tensor::FromVector({2, 1}, {2, 5}));
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  Rng rng(17);
  Tensor a = Tensor::Randn({4, 6}, rng, 3.0f);
  Tensor s = ops::SoftmaxLastDim(a);
  for (int64_t r = 0; r < 4; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < 6; ++c) {
      const float v = s.at({r, c});
      EXPECT_GT(v, 0.0f);
      total += v;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(TensorOpsTest, SoftmaxStableForLargeInputs) {
  Tensor a = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = ops::SoftmaxLastDim(a);
  for (int64_t c = 0; c < 3; ++c) EXPECT_NEAR(s.at({0, c}), 1.0f / 3, 1e-5f);
}

TEST(TensorOpsTest, SoftmaxKnownValues) {
  Tensor a = Tensor::FromVector({1, 2}, {0.0f, std::log(3.0f)});
  Tensor s = ops::SoftmaxLastDim(a);
  EXPECT_NEAR(s.at({0, 0}), 0.25f, 1e-5f);
  EXPECT_NEAR(s.at({0, 1}), 0.75f, 1e-5f);
}

// ---------------------------------------------------------------------------
// Broadcast reduction (autograd support)
// ---------------------------------------------------------------------------

TEST(TensorOpsTest, ReduceToShapeBias) {
  Tensor g = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = ops::ReduceToShape(g, {3});
  ExpectTensorNear(r, Tensor::FromVector({3}, {5, 7, 9}));
}

TEST(TensorOpsTest, ReduceToShapeScalar) {
  Tensor g = Tensor::Ones({2, 3});
  Tensor r = ops::ReduceToShape(g, {});
  EXPECT_EQ(r.item(), 6.0f);
}

TEST(TensorOpsTest, ReduceToShapeMiddle) {
  Tensor g = Tensor::Ones({2, 3, 4});
  Tensor r = ops::ReduceToShape(g, {2, 1, 4});
  EXPECT_EQ(ShapeToString(r.shape()), "[2, 1, 4]");
  EXPECT_EQ(r.at({0, 0, 0}), 3.0f);
}

TEST(TensorOpsTest, ReduceToShapeSuffixBlock) {
  Tensor g = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  ExpectTensorNear(ops::ReduceToShape(g, {2, 2}),
                   Tensor::FromVector({2, 2}, {6, 8, 10, 12}));
}

TEST(TensorOpsTest, ReduceToShapeInteriorOnes) {
  Tensor g = Tensor::FromVector({3, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12});
  Tensor r = ops::ReduceToShape(g, {1, 4});
  EXPECT_EQ(ShapeToString(r.shape()), "[1, 4]");
  ExpectTensorNear(r, Tensor::FromVector({1, 4}, {15, 18, 21, 24}));
}

TEST(TensorOpsTest, AllCloseBehaviour) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromVector({2}, {1.0f, 2.00001f});
  EXPECT_TRUE(ops::AllClose(a, b));
  Tensor c = Tensor::FromVector({2}, {1.0f, 3.0f});
  EXPECT_FALSE(ops::AllClose(a, c));
  Tensor d = Tensor::FromVector({1}, {1.0f});
  EXPECT_FALSE(ops::AllClose(a, d));
}

}  // namespace
}  // namespace enhancenet
