#include "autograd/ops.h"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>

#include "autograd/grad_mode.h"
#include "autograd/variable.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;
using ::enhancenet::testing::ExpectGradientsMatch;
using ::enhancenet::testing::ExpectTensorNear;

// ---------------------------------------------------------------------------
// Variable mechanics
// ---------------------------------------------------------------------------

TEST(VariableTest, LeafProperties) {
  ag::Variable v = ag::Variable::Leaf(Tensor::Ones({2, 2}), true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.numel(), 4);
}

TEST(VariableTest, DefaultIsUndefined) {
  ag::Variable v;
  EXPECT_FALSE(v.defined());
}

TEST(VariableTest, CopySharesNode) {
  ag::Variable a = ag::Variable::Leaf(Tensor::Zeros({2}), true);
  ag::Variable b = a;
  b.mutable_data().data()[0] = 5.0f;
  EXPECT_EQ(a.data().data()[0], 5.0f);
}

TEST(VariableTest, AccumulateGradAddsUp) {
  ag::Variable v = ag::Variable::Leaf(Tensor::Zeros({2}), true);
  v.AccumulateGrad(Tensor::FromVector({2}, {1, 2}));
  v.AccumulateGrad(Tensor::FromVector({2}, {10, 20}));
  ExpectTensorNear(v.grad(), Tensor::FromVector({2}, {11, 22}));
  v.ZeroGrad();
  EXPECT_FALSE(v.has_grad());
}

TEST(VariableTest, BackwardSeedsOnes) {
  ag::Variable v = ag::Variable::Leaf(Tensor::Scalar(3.0f), true);
  ag::Variable y = ag::MulScalar(v, 2.0f);
  y.Backward();
  EXPECT_EQ(v.grad().item(), 2.0f);
}

TEST(VariableTest, DetachCutsGraph) {
  ag::Variable v = ag::Variable::Leaf(Tensor::Scalar(3.0f), true);
  ag::Variable d = ag::Square(v).Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.data().item(), 9.0f);
  ag::Variable y = ag::MulScalar(d, 2.0f);
  EXPECT_FALSE(y.requires_grad());
}

TEST(VariableTest, NoGradInputsSkipGraphConstruction) {
  ag::Variable a = ag::Variable::Leaf(Tensor::Ones({2}), false);
  ag::Variable b = ag::Variable::Leaf(Tensor::Ones({2}), false);
  ag::Variable c = ag::Add(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.node()->is_leaf);  // recorded as a constant
}

TEST(GradModeTest, NoGradGuardDetachesOpsOnGradInputs) {
  ag::Variable w = ag::Variable::Leaf(Tensor::Ones({2, 2}), true);
  EXPECT_TRUE(ag::GradMode::IsEnabled());
  {
    ag::NoGradGuard no_grad;
    EXPECT_FALSE(ag::GradMode::IsEnabled());
    ag::Variable y = ag::Square(w);
    // Same forward values, but no graph: leaf result, no parents, no
    // backward closure, requires_grad off.
    EXPECT_EQ(y.data().at({0, 0}), 1.0f);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_TRUE(y.node()->is_leaf);
    EXPECT_TRUE(y.node()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(y.node()->backward_fn));
  }
  // Mode restored: the same op records again.
  EXPECT_TRUE(ag::GradMode::IsEnabled());
  ag::Variable z = ag::Square(w);
  EXPECT_TRUE(z.requires_grad());
  EXPECT_FALSE(z.node()->is_leaf);
}

TEST(GradModeTest, GuardsNestAndRestoreOnException) {
  {
    ag::NoGradGuard outer;
    {
      ag::NoGradGuard inner;
      EXPECT_FALSE(ag::GradMode::IsEnabled());
    }
    // Inner guard restores the *outer* disabled state, not enabled.
    EXPECT_FALSE(ag::GradMode::IsEnabled());
  }
  EXPECT_TRUE(ag::GradMode::IsEnabled());

  try {
    ag::NoGradGuard guard;
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(ag::GradMode::IsEnabled());  // RAII restored during unwind
}

TEST(GradModeTest, GuardIsPerThread) {
  ag::NoGradGuard no_grad;
  bool other_thread_enabled = false;
  std::thread probe(
      [&] { other_thread_enabled = ag::GradMode::IsEnabled(); });
  probe.join();
  // Disabling grad on this (serving) thread leaves trainer threads alone.
  EXPECT_TRUE(other_thread_enabled);
  EXPECT_FALSE(ag::GradMode::IsEnabled());
}

TEST(VariableTest, DiamondGraphAccumulatesBothPaths) {
  // y = x*x + x*x -> dy/dx = 4x.
  ag::Variable x = ag::Variable::Leaf(Tensor::Scalar(3.0f), true);
  ag::Variable sq = ag::Square(x);
  ag::Variable y = ag::Add(sq, sq);
  y.Backward();
  EXPECT_NEAR(x.grad().item(), 12.0f, 1e-5f);
}

TEST(VariableTest, ReusedLeafAccumulatesAcrossOps) {
  // y = sum(x) + sum(2x) -> dy/dx_i = 3.
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({3}), true);
  ag::Variable y =
      ag::Add(ag::SumAll(x), ag::SumAll(ag::MulScalar(x, 2.0f)));
  y.Backward();
  ExpectTensorNear(x.grad(), Tensor::Full({3}, 3.0f));
}

TEST(VariableTest, DeepChainBackwardDoesNotOverflowStack) {
  ag::Variable x = ag::Variable::Leaf(Tensor::Scalar(1.0f), true);
  ag::Variable y = x;
  for (int i = 0; i < 5000; ++i) y = ag::AddScalar(y, 0.0f);
  y.Backward();
  EXPECT_EQ(x.grad().item(), 1.0f);
}

// ---------------------------------------------------------------------------
// Forward values
// ---------------------------------------------------------------------------

TEST(AutogradOpsTest, ForwardMatchesTensorOps) {
  Rng rng(1);
  Tensor ta = Tensor::Randn({3, 4}, rng);
  Tensor tb = Tensor::Randn({3, 4}, rng);
  ag::Variable a = ag::Variable::Leaf(ta, true);
  ag::Variable b = ag::Variable::Leaf(tb, true);
  ExpectTensorNear(ag::Add(a, b).data(), ops::Add(ta, tb));
  ExpectTensorNear(ag::Mul(a, b).data(), ops::Mul(ta, tb));
  ExpectTensorNear(ag::Sigmoid(a).data(), ops::Sigmoid(ta));
  ExpectTensorNear(ag::SoftmaxLastDim(a).data(), ops::SoftmaxLastDim(ta));
}

// ---------------------------------------------------------------------------
// Parameterized finite-difference gradient checks, one case per op.
// ---------------------------------------------------------------------------

struct GradCase {
  std::string name;
  // Builds the scalar output from the (fixed) inputs.
  std::function<ag::Variable(const std::vector<ag::Variable>&)> fn;
  std::vector<Shape> input_shapes;
  // Positive-only inputs (for log/sqrt).
  bool positive = false;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, MatchesFiniteDifferences) {
  const GradCase& test_case = GetParam();
  Rng rng(42);
  std::vector<ag::Variable> inputs;
  for (const Shape& shape : test_case.input_shapes) {
    Tensor init = test_case.positive
                      ? Tensor::RandUniform(shape, rng, 0.5f, 2.0f)
                      : Tensor::Randn(shape, rng, 0.8f);
    inputs.push_back(ag::Variable::Leaf(init, true));
  }
  ExpectGradientsMatch([&] { return test_case.fn(inputs); }, inputs);
}

ag::Variable Scalarize(const ag::Variable& v) {
  // Weighted sum (not plain mean) so gradient errors cannot cancel.
  ag::Variable flat = ag::Reshape(v, {v.numel()});
  Tensor weights({v.numel()});
  for (int64_t i = 0; i < v.numel(); ++i) {
    weights.data()[i] = 0.1f * static_cast<float>(i % 7) + 0.3f;
  }
  ag::Variable w = ag::Variable::Leaf(weights, false);
  return ag::SumAll(ag::Mul(flat, w));
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest,
    ::testing::Values(
        GradCase{"add",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Add(in[0], in[1]));
                 },
                 {{3, 4}, {3, 4}}},
        GradCase{"add_broadcast_bias",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Add(in[0], in[1]));
                 },
                 {{3, 4}, {4}}},
        GradCase{"add_broadcast_batch",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Add(in[0], in[1]));
                 },
                 {{2, 3, 3}, {3, 3}}},
        GradCase{"sub",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Sub(in[0], in[1]));
                 },
                 {{2, 3}, {2, 3}}},
        GradCase{"mul",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Mul(in[0], in[1]));
                 },
                 {{2, 3}, {2, 3}}},
        GradCase{"mul_broadcast_scalar",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Mul(in[0], in[1]));
                 },
                 {{2, 3}, {}}},
        GradCase{"neg",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Neg(in[0]));
                 },
                 {{5}}},
        GradCase{"abs",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Abs(in[0]));
                 },
                 {{6}},
                 /*positive=*/true},  // avoid the kink at 0
        GradCase{"sigmoid",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Sigmoid(in[0]));
                 },
                 {{4, 3}}},
        GradCase{"tanh",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Tanh(in[0]));
                 },
                 {{4, 3}}},
        GradCase{"relu",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Relu(in[0]));
                 },
                 {{6}},
                 /*positive=*/true},  // avoid the kink at 0
        GradCase{"exp",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Exp(in[0]));
                 },
                 {{3, 2}}},
        GradCase{"log",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Log(in[0]));
                 },
                 {{5}},
                 /*positive=*/true},
        GradCase{"sqrt",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Sqrt(in[0]));
                 },
                 {{5}},
                 /*positive=*/true},
        GradCase{"square",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Square(in[0]));
                 },
                 {{3, 3}}},
        GradCase{"add_scalar",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::AddScalar(in[0], 1.7f));
                 },
                 {{4}}},
        GradCase{"mul_scalar",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::MulScalar(in[0], -0.6f));
                 },
                 {{4}}},
        GradCase{"matmul",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::MatMul(in[0], in[1]));
                 },
                 {{3, 4}, {4, 2}}},
        GradCase{"bmm",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::BatchMatMul(in[0], in[1]));
                 },
                 {{2, 3, 4}, {2, 4, 2}}},
        GradCase{"transpose_2d",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Transpose(in[0], 0, 1));
                 },
                 {{3, 4}}},
        GradCase{"transpose_3d",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Transpose(in[0], 0, 2));
                 },
                 {{2, 3, 4}}},
        GradCase{"reshape",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Reshape(in[0], {4, 3}));
                 },
                 {{3, 4}}},
        GradCase{"concat",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Concat({in[0], in[1]}, 1));
                 },
                 {{2, 3}, {2, 2}}},
        GradCase{"slice",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Slice(in[0], 1, 1, 2));
                 },
                 {{3, 4}}},
        GradCase{"pad",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::PadAxis(in[0], 1, 2, 1));
                 },
                 {{2, 3}}},
        GradCase{"sum_all",
                 [](const std::vector<ag::Variable>& in) {
                   return ag::SumAll(in[0]);
                 },
                 {{3, 4}}},
        GradCase{"mean_all",
                 [](const std::vector<ag::Variable>& in) {
                   return ag::MeanAll(ag::Square(in[0]));
                 },
                 {{3, 4}}},
        GradCase{"sum_axis_keepdim",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Sum(in[0], 1, true));
                 },
                 {{3, 4}}},
        GradCase{"sum_axis_nokeepdim",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Sum(in[0], 0, false));
                 },
                 {{3, 4}}},
        GradCase{"mean_axis",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::Mean(in[0], -1, false));
                 },
                 {{2, 5}}},
        GradCase{"softmax",
                 [](const std::vector<ag::Variable>& in) {
                   return Scalarize(ag::SoftmaxLastDim(in[0]));
                 },
                 {{3, 5}}},
        GradCase{"composite_gru_like",
                 [](const std::vector<ag::Variable>& in) {
                   // σ(xW) ⊙ tanh(xU) — the gating pattern used everywhere.
                   ag::Variable g = ag::Sigmoid(ag::MatMul(in[0], in[1]));
                   ag::Variable c = ag::Tanh(ag::MatMul(in[0], in[2]));
                   return Scalarize(ag::Mul(g, c));
                 },
                 {{3, 4}, {4, 2}, {4, 2}}},
        GradCase{"composite_attention_like",
                 [](const std::vector<ag::Variable>& in) {
                   // softmax(E1 E2ᵀ) · X — the DAMGN dynamic-C pattern.
                   ag::Variable scores = ag::MatMul(
                       in[0], ag::Transpose(in[1], 0, 1));
                   ag::Variable attn = ag::SoftmaxLastDim(scores);
                   return Scalarize(ag::MatMul(attn, in[2]));
                 },
                 {{4, 3}, {4, 3}, {4, 2}}}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

TEST(DropoutTest, IdentityWhenEval) {
  Rng rng(3);
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({100}), true);
  ag::Variable y = ag::Dropout(x, 0.5f, /*training=*/false, rng);
  ExpectTensorNear(y.data(), x.data());
}

TEST(DropoutTest, ZeroProbabilityIsIdentity) {
  Rng rng(3);
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({100}), true);
  ag::Variable y = ag::Dropout(x, 0.0f, /*training=*/true, rng);
  ExpectTensorNear(y.data(), x.data());
}

TEST(DropoutTest, ScalesKeptElements) {
  Rng rng(3);
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({10000}), true);
  ag::Variable y = ag::Dropout(x, 0.3f, /*training=*/true, rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.data().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.7f, 1e-5f);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
  // Expectation is preserved.
  EXPECT_NEAR(ops::MeanAll(y.data()).item(), 1.0f, 0.05f);
}

TEST(DropoutTest, GradientUsesSameMask) {
  Rng rng(5);
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({1000}), true);
  ag::Variable y = ag::Dropout(x, 0.4f, /*training=*/true, rng);
  ag::SumAll(y).Backward();
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(x.grad().data()[i], y.data().data()[i]);
  }
}

}  // namespace
}  // namespace enhancenet
