#include "bench_common.h"

#include <cstdlib>

#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace {

class BenchCommonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("ENHANCENET_QUICK");
    ::unsetenv("ENHANCENET_FULL");
  }
};

TEST_F(BenchCommonTest, ModeFromEnvDefaults) {
  EXPECT_EQ(bench::ModeFromEnv(), bench::Mode::kDefault);
  ::setenv("ENHANCENET_QUICK", "1", 1);
  EXPECT_EQ(bench::ModeFromEnv(), bench::Mode::kQuick);
  ::unsetenv("ENHANCENET_QUICK");
  ::setenv("ENHANCENET_FULL", "1", 1);
  EXPECT_EQ(bench::ModeFromEnv(), bench::Mode::kFull);
  ::unsetenv("ENHANCENET_FULL");
}

TEST_F(BenchCommonTest, ZeroValuedEnvVarDoesNotTrigger) {
  ::setenv("ENHANCENET_QUICK", "0", 1);
  EXPECT_EQ(bench::ModeFromEnv(), bench::Mode::kDefault);
  ::unsetenv("ENHANCENET_QUICK");
}

TEST_F(BenchCommonTest, PreparedDatasetsHaveConsistentShapes) {
  for (const char* name : {"EB", "LA", "US"}) {
    bench::PreparedData d = bench::PrepareDataset(name, bench::Mode::kQuick);
    const int64_t n = d.raw.num_entities();
    EXPECT_GT(n, 0) << name;
    EXPECT_EQ(ShapeToString(d.adjacency.shape()),
              ShapeToString(Shape{n, n}))
        << name;
    EXPECT_GT(d.train->num_windows(), 0) << name;
    EXPECT_GT(d.val->num_windows(), 0) << name;
    EXPECT_GT(d.test->num_windows(), 0) << name;
    EXPECT_EQ(d.train->history(), 12) << name;
    EXPECT_EQ(d.train->horizon(), 12) << name;
  }
}

TEST_F(BenchCommonTest, PreparedDatasetIsDeterministic) {
  bench::PreparedData a = bench::PrepareDataset("EB", bench::Mode::kQuick);
  bench::PreparedData b = bench::PrepareDataset("EB", bench::Mode::kQuick);
  EXPECT_TRUE(ops::AllClose(a.raw.series, b.raw.series, 0.0f, 0.0f));
  EXPECT_TRUE(ops::AllClose(a.adjacency, b.adjacency, 0.0f, 0.0f));
}

TEST_F(BenchCommonTest, DatasetChannelsMatchPaper) {
  EXPECT_EQ(bench::PrepareDataset("EB", bench::Mode::kQuick)
                .raw.num_channels(),
            1);  // speed only
  EXPECT_EQ(bench::PrepareDataset("LA", bench::Mode::kQuick)
                .raw.num_channels(),
            2);  // speed + time
  EXPECT_EQ(bench::PrepareDataset("US", bench::Mode::kQuick)
                .raw.num_channels(),
            6);  // six weather attributes
}

TEST_F(BenchCommonTest, TrainerRecipesFollowPaper) {
  // RNN family: Adam @0.01, step decay, scheduled sampling.
  for (const char* name : {"RNN", "D-DA-GRNN", "LSTM", "DCRNN"}) {
    const auto config = bench::TrainerConfigFor(name, bench::Mode::kDefault);
    EXPECT_FLOAT_EQ(config.learning_rate, 0.01f) << name;
    EXPECT_TRUE(config.use_step_decay) << name;
    EXPECT_TRUE(config.use_scheduled_sampling) << name;
  }
  // TCN family and other baselines: fixed 0.001.
  for (const char* name : {"TCN", "D-DA-GTCN", "STGCN", "GraphWaveNet"}) {
    const auto config = bench::TrainerConfigFor(name, bench::Mode::kDefault);
    EXPECT_FLOAT_EQ(config.learning_rate, 0.001f) << name;
    EXPECT_FALSE(config.use_step_decay) << name;
  }
}

TEST_F(BenchCommonTest, FullModeUsesPaperSizes) {
  const models::ModelSizing sizing =
      bench::SizingForMode(bench::Mode::kFull);
  EXPECT_EQ(sizing.rnn_hidden, 64);       // Sec. VI-A
  EXPECT_EQ(sizing.rnn_hidden_dfgn, 16);  // Sec. VI-B1
  EXPECT_EQ(sizing.tcn_channels, 32);
  EXPECT_EQ(sizing.memory_dim, 16);
  EXPECT_EQ(sizing.damgn_mem_dim, 10);
  EXPECT_EQ(static_cast<int>(sizing.dilations.size()), 8);
}

TEST_F(BenchCommonTest, RunArimaProducesFiniteErrors) {
  bench::PreparedData d = bench::PrepareDataset("EB", bench::Mode::kQuick);
  const bench::ModelRun run = bench::RunArima(d, "EB");
  EXPECT_EQ(run.model, "ARIMA");
  EXPECT_GT(run.overall.count, 0);
  EXPECT_GT(run.overall.mae, 0.0);
  EXPECT_LT(run.overall.mae, 60.0);  // better than predicting zero speed
  EXPECT_FALSE(run.per_window_mae.empty());
}

TEST_F(BenchCommonTest, RunNeuralModelEndToEnd) {
  bench::PreparedData d = bench::PrepareDataset("EB", bench::Mode::kQuick);
  const bench::ModelRun run =
      bench::RunNeuralModel("RNN", d, "EB", bench::Mode::kQuick);
  EXPECT_EQ(run.model, "RNN");
  EXPECT_GT(run.num_params, 0);
  EXPECT_GT(run.train_seconds_per_epoch, 0.0);
  EXPECT_GT(run.predict_millis, 0.0);
  EXPECT_GT(run.overall.count, 0);
  EXPECT_LT(run.overall.mae, 60.0);
}

}  // namespace
}  // namespace enhancenet
