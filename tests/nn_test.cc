#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "gtest/gtest.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;
using ::enhancenet::testing::ExpectGradientsMatch;
using ::enhancenet::testing::ExpectTensorNear;

// ---------------------------------------------------------------------------
// Module registry
// ---------------------------------------------------------------------------

class ToyModule : public nn::Module {
 public:
  explicit ToyModule(Rng& rng) : child_(2, 3, rng) {
    w_ = RegisterParameter("w", Tensor::Zeros({4, 5}));
    b_ = RegisterParameter("b", Tensor::Zeros({5}));
    RegisterSubmodule("child", &child_);
  }
  ag::Variable w_;
  ag::Variable b_;
  nn::Linear child_;
};

TEST(ModuleTest, CountsParametersRecursively) {
  Rng rng(1);
  ToyModule m(rng);
  // w: 20, b: 5, child Linear(2,3): 6 + 3 = 9.
  EXPECT_EQ(m.NumParameters(), 34);
  EXPECT_EQ(m.Parameters().size(), 4u);
}

TEST(ModuleTest, NamedParametersHaveHierarchicalNames) {
  Rng rng(1);
  ToyModule m(rng);
  const auto named = m.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "w");
  EXPECT_EQ(named[1].first, "b");
  EXPECT_EQ(named[2].first, "child.weight");
  EXPECT_EQ(named[3].first, "child.bias");
}

TEST(ModuleTest, ZeroGradClearsEverything) {
  Rng rng(1);
  ToyModule m(rng);
  for (auto& p : m.Parameters()) p.AccumulateGrad(Tensor::Ones(p.shape()));
  m.ZeroGrad();
  for (auto& p : m.Parameters()) EXPECT_FALSE(p.has_grad());
}

TEST(ModuleTest, TrainingModePropagates) {
  Rng rng(1);
  ToyModule m(rng);
  EXPECT_TRUE(m.training());
  m.SetTraining(false);
  EXPECT_FALSE(m.training());
  EXPECT_FALSE(m.child_.training());
}

// ---------------------------------------------------------------------------
// Init
// ---------------------------------------------------------------------------

TEST(InitTest, GlorotUniformBounds) {
  Rng rng(2);
  Tensor w = nn::GlorotUniform({64, 32}, rng);
  const float limit = std::sqrt(6.0f / (64 + 32));
  float max_abs = 0.0f;
  double sum = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) {
    max_abs = std::max(max_abs, std::fabs(w.data()[i]));
    sum += w.data()[i];
  }
  EXPECT_LE(max_abs, limit);
  EXPECT_NEAR(sum / static_cast<double>(w.numel()), 0.0, 0.01);
}

TEST(InitTest, GlorotRank3UsesTrailingFans) {
  Rng rng(3);
  Tensor w = nn::GlorotUniform({100, 8, 4}, rng);
  const float limit = std::sqrt(6.0f / (8 + 4));
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), limit);
  }
}

TEST(InitTest, UniformInitScale) {
  Rng rng(4);
  Tensor m = nn::UniformInit({50, 16}, rng, 0.5f);
  for (int64_t i = 0; i < m.numel(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), 0.5f);
  }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

TEST(LinearTest, KnownValues) {
  Rng rng(5);
  nn::Linear layer(2, 2, rng);
  // Overwrite weights for a deterministic check.
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  std::copy_n(Tensor::FromVector({2, 2}, {1, 2, 3, 4}).data(), 4,
              params[0].mutable_data().data());
  std::copy_n(Tensor::FromVector({2}, {10, 20}).data(), 2,
              params[1].mutable_data().data());
  ag::Variable x =
      ag::Variable::Leaf(Tensor::FromVector({1, 2}, {1, 1}), false);
  ExpectTensorNear(layer.Forward(x).data(),
                   Tensor::FromVector({1, 2}, {14, 26}));
}

TEST(LinearTest, HandlesHigherRankInputs) {
  Rng rng(6);
  nn::Linear layer(3, 5, rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::Randn({2, 4, 7, 3}, rng), false);
  ag::Variable y = layer.Forward(x);
  EXPECT_EQ(ShapeToString(y.shape()), "[2, 4, 7, 5]");
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(7);
  nn::Linear layer(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.NumParameters(), 6);
  ag::Variable zero = ag::Variable::Leaf(Tensor::Zeros({1, 3}), false);
  ExpectTensorNear(layer.Forward(zero).data(), Tensor::Zeros({1, 2}));
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(8);
  nn::Linear layer(3, 2, rng);
  Tensor xt = Tensor::Randn({4, 3}, rng);
  auto params = layer.Parameters();
  ExpectGradientsMatch(
      [&] {
        ag::Variable x = ag::Variable::Leaf(xt, false);
        return ag::SumAll(ag::Square(layer.Forward(x)));
      },
      params);
}

// ---------------------------------------------------------------------------
// GRU cell
// ---------------------------------------------------------------------------

TEST(GruCellTest, OutputShapeAndRange) {
  Rng rng(9);
  nn::GruCell cell(3, 8, rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::Randn({5, 3}, rng), false);
  ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({5, 8}), false);
  ag::Variable h2 = cell.Forward(x, h);
  EXPECT_EQ(ShapeToString(h2.shape()), "[5, 8]");
  // GRU output is a convex combination of h (0) and tanh-candidate (|.|<1).
  for (int64_t i = 0; i < h2.numel(); ++i) {
    EXPECT_LT(std::fabs(h2.data().data()[i]), 1.0f);
  }
}

TEST(GruCellTest, MatchesHandComputedStep) {
  // With all weights zero and bias zero: r=u=0.5, candidate=tanh(0)=0,
  // h' = 0.5*h + 0.5*0 = 0.5*h.
  Rng rng(10);
  nn::GruCell cell(1, 2, rng);
  for (auto& p : cell.Parameters()) p.mutable_data().Fill(0.0f);
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({1, 1}), false);
  ag::Variable h =
      ag::Variable::Leaf(Tensor::FromVector({1, 2}, {0.4f, -0.8f}), false);
  ExpectTensorNear(cell.Forward(x, h).data(),
                   Tensor::FromVector({1, 2}, {0.2f, -0.4f}), 1e-5f);
}

TEST(GruCellTest, ParameterCountMatchesFormula) {
  Rng rng(11);
  const int64_t c = 3;
  const int64_t h = 8;
  nn::GruCell cell(c, h, rng);
  // 3 input filters [C,C'], 3 recurrent filters [C',C'], 3 biases [C'].
  EXPECT_EQ(cell.NumParameters(), 3 * c * h + 3 * h * h + 3 * h);
}

TEST(GruCellTest, HiddenStateRetainsInformation) {
  // Feeding the same input twice from different hidden states must differ.
  Rng rng(12);
  nn::GruCell cell(2, 4, rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({1, 2}), false);
  ag::Variable h0 = ag::Variable::Leaf(Tensor::Zeros({1, 4}), false);
  ag::Variable h1 = ag::Variable::Leaf(Tensor::Ones({1, 4}), false);
  EXPECT_FALSE(ops::AllClose(cell.Forward(x, h0).data(),
                             cell.Forward(x, h1).data(), 1e-3f, 1e-3f));
}

TEST(GruCellTest, GradCheckThroughTwoSteps) {
  Rng rng(13);
  nn::GruCell cell(2, 3, rng);
  Tensor x1 = Tensor::Randn({2, 2}, rng);
  Tensor x2 = Tensor::Randn({2, 2}, rng);
  auto params = cell.Parameters();
  ExpectGradientsMatch(
      [&] {
        ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({2, 3}), false);
        h = cell.Forward(ag::Variable::Leaf(x1, false), h);
        h = cell.Forward(ag::Variable::Leaf(x2, false), h);
        return ag::SumAll(ag::Square(h));
      },
      params, /*eps=*/1e-2f, /*tolerance=*/3e-2f);
}

// ---------------------------------------------------------------------------
// LSTM cell
// ---------------------------------------------------------------------------

TEST(LstmCellTest, OutputShapes) {
  Rng rng(14);
  nn::LstmCell cell(3, 6, rng);
  nn::LstmCell::State state;
  state.h = ag::Variable::Leaf(Tensor::Zeros({4, 6}), false);
  state.c = ag::Variable::Leaf(Tensor::Zeros({4, 6}), false);
  ag::Variable x = ag::Variable::Leaf(Tensor::Randn({4, 3}, rng), false);
  auto next = cell.Forward(x, state);
  EXPECT_EQ(ShapeToString(next.h.shape()), "[4, 6]");
  EXPECT_EQ(ShapeToString(next.c.shape()), "[4, 6]");
}

TEST(LstmCellTest, ForgetBiasInitializedToOne) {
  Rng rng(15);
  const int64_t hidden = 4;
  nn::LstmCell cell(2, hidden, rng);
  const auto named = cell.NamedParameters();
  for (const auto& [name, param] : named) {
    if (name != "bias") continue;
    for (int64_t i = 0; i < 4 * hidden; ++i) {
      const float expected =
          (i >= hidden && i < 2 * hidden) ? 1.0f : 0.0f;
      EXPECT_EQ(param.data().data()[i], expected) << "bias index " << i;
    }
  }
}

TEST(LstmCellTest, ParameterCount) {
  Rng rng(16);
  nn::LstmCell cell(3, 8, rng);
  EXPECT_EQ(cell.NumParameters(), 3 * 32 + 8 * 32 + 32);
}

TEST(LstmCellTest, GradCheckSingleStep) {
  Rng rng(17);
  nn::LstmCell cell(2, 3, rng);
  Tensor xt = Tensor::Randn({2, 2}, rng);
  auto params = cell.Parameters();
  ExpectGradientsMatch(
      [&] {
        nn::LstmCell::State state;
        state.h = ag::Variable::Leaf(Tensor::Zeros({2, 3}), false);
        state.c = ag::Variable::Leaf(Tensor::Zeros({2, 3}), false);
        auto next = cell.Forward(ag::Variable::Leaf(xt, false), state);
        return ag::SumAll(ag::Square(next.h));
      },
      params, /*eps=*/1e-2f, /*tolerance=*/3e-2f);
}

}  // namespace
}  // namespace enhancenet
