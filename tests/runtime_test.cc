// Tests for the runtime layer: env-var validation, RuntimeContext binding
// and isolation, the Workspace arena, thread-state propagation through
// ParallelFor, and two InferenceSessions predicting concurrently from
// independent contexts (run under ENHANCENET_SANITIZE=thread to prove the
// sessions share no allocator state).
//
// The env death tests are declared first on purpose: the library env
// accessors cache on first parse, so the fatal paths must be exercised
// before any test touches RuntimeContext::Default().

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "core/damgn.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/allocator.h"
#include "runtime/context.h"
#include "runtime/env.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"
#include "serve/inference_session.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;

// ---------------------------------------------------------------------------
// Env validation (death tests first; see file comment)
// ---------------------------------------------------------------------------

TEST(RuntimeEnvDeathTest, MalformedNumThreadsDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_NUM_THREADS", "lots", /*overwrite=*/1);
        runtime::EnvNumThreads();
      },
      "ENHANCENET_NUM_THREADS must be an integer");
}

TEST(RuntimeEnvDeathTest, OutOfRangeNumThreadsDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_NUM_THREADS", "0", /*overwrite=*/1);
        runtime::EnvNumThreads();
      },
      "ENHANCENET_NUM_THREADS must be an integer in \\[1, 4096\\]");
}

TEST(RuntimeEnvDeathTest, MalformedAllocatorChoiceDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_ALLOCATOR", "bogus", /*overwrite=*/1);
        // First Default() touch parses the allocator choice eagerly.
        TensorAllocator::Global();
      },
      "ENHANCENET_ALLOCATOR must be");
}

TEST(RuntimeEnvDeathTest, MalformedBoolDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_FUSED", "maybe", /*overwrite=*/1);
        runtime::EnvFusedKernels();
      },
      "ENHANCENET_FUSED must be one of");
}

TEST(RuntimeEnvDeathTest, MalformedShardsDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_SHARDS", "many", /*overwrite=*/1);
        runtime::EnvShards();
      },
      "ENHANCENET_SHARDS must be an integer in \\[1, 1024\\]");
}

TEST(RuntimeEnvDeathTest, OutOfRangeShardsDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_SHARDS", "0", /*overwrite=*/1);
        runtime::EnvShards();
      },
      "ENHANCENET_SHARDS must be an integer in \\[1, 1024\\]");
}

TEST(RuntimeEnvDeathTest, MalformedSloMsDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_SLO_MS", "fast", /*overwrite=*/1);
        runtime::EnvSloMs();
      },
      "ENHANCENET_SLO_MS must be a number");
}

TEST(RuntimeEnvDeathTest, NonPositiveSloMsDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_SLO_MS", "-5", /*overwrite=*/1);
        runtime::EnvSloMs();
      },
      "ENHANCENET_SLO_MS must be a number in \\(0, 1e7\\]");
}

TEST(RuntimeEnvTest, DefaultsWhenUnset) {
  // The harness does not set ENHANCENET_* for tests, so the accessors see
  // unset variables and produce the documented defaults.
  EXPECT_GE(runtime::EnvNumThreads(), 1);
  EXPECT_TRUE(runtime::EnvAllocatorCaching());
  EXPECT_TRUE(runtime::EnvFusedKernels());
  EXPECT_TRUE(runtime::EnvEagerRelease());
  EXPECT_FALSE(runtime::EnvProfiling());
  EXPECT_EQ(runtime::EnvShards(), 1);  // single-context execution by default
  EXPECT_EQ(runtime::EnvSloMs(), 0.0);  // no process-wide SLO by default
  EXPECT_EQ(runtime::EnvMetricsOut(), nullptr);
}

TEST(RuntimeEnvTest, BenchModeVarsReparseEveryCall) {
  ASSERT_FALSE(runtime::EnvQuickMode());
  setenv("ENHANCENET_QUICK", "on", /*overwrite=*/1);
  EXPECT_TRUE(runtime::EnvQuickMode());
  setenv("ENHANCENET_QUICK", "0", /*overwrite=*/1);
  EXPECT_FALSE(runtime::EnvQuickMode());
  unsetenv("ENHANCENET_QUICK");
  EXPECT_FALSE(runtime::EnvQuickMode());
}

// ---------------------------------------------------------------------------
// Context binding
// ---------------------------------------------------------------------------

TEST(RuntimeContextTest, CurrentFallsBackToDefault) {
  EXPECT_EQ(&runtime::RuntimeContext::Current(),
            &runtime::RuntimeContext::Default());
  EXPECT_EQ(runtime::detail::BoundContextOrNull(), nullptr);
}

TEST(RuntimeContextTest, BindNestsAndRestores) {
  runtime::RuntimeContext outer;
  runtime::RuntimeContext inner;
  {
    runtime::RuntimeContext::Bind bind_outer(outer);
    EXPECT_EQ(&runtime::RuntimeContext::Current(), &outer);
    {
      runtime::RuntimeContext::Bind bind_inner(inner);
      EXPECT_EQ(&runtime::RuntimeContext::Current(), &inner);
    }
    EXPECT_EQ(&runtime::RuntimeContext::Current(), &outer);
  }
  EXPECT_EQ(&runtime::RuntimeContext::Current(),
            &runtime::RuntimeContext::Default());
}

TEST(RuntimeContextTest, DefaultConstructionSharesDefaultAllocatorAndExec) {
  runtime::RuntimeContext context;
  EXPECT_EQ(&context.allocator(), &TensorAllocator::Global());
  EXPECT_EQ(context.exec_ptr(),
            runtime::RuntimeContext::Default().exec_ptr());
  // ... but the workspace is always private.
  EXPECT_NE(&context.workspace(),
            &runtime::RuntimeContext::Default().workspace());
}

TEST(RuntimeContextTest, PrivateAllocatorIsolatesAllocations) {
  runtime::RuntimeContext::Options options;
  options.private_allocator = true;
  runtime::RuntimeContext context(options);
  ASSERT_NE(&context.allocator(), &TensorAllocator::Global());

  const int64_t default_before = TensorAllocator::Global().GetStats().requests;
  const int64_t private_before = context.allocator().GetStats().requests;
  {
    runtime::RuntimeContext::Bind bound(context);
    Tensor t(Shape{64, 64});
    EXPECT_GT(t.numel(), 0);
  }
  EXPECT_EQ(TensorAllocator::Global().GetStats().requests, default_before);
  EXPECT_GT(context.allocator().GetStats().requests, private_before);
}

TEST(RuntimeContextTest, PrivateExecIsIndependent) {
  runtime::RuntimeContext::Options options;
  options.private_exec = true;
  runtime::RuntimeContext context(options);
  const int default_threads = GetNumThreads();
  {
    runtime::RuntimeContext::Bind bound(context);
    SetNumThreads(default_threads + 3);
    EXPECT_EQ(GetNumThreads(), default_threads + 3);
  }
  // The override stayed inside the private exec config.
  EXPECT_EQ(GetNumThreads(), default_threads);
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

TEST(WorkspaceTest, ReusesExactSizeBlocks) {
  runtime::Workspace workspace;
  float* first = nullptr;
  {
    std::shared_ptr<float[]> block = workspace.Acquire(100);
    first = block.get();
  }
  {
    std::shared_ptr<float[]> block = workspace.Acquire(100);
    EXPECT_EQ(block.get(), first);  // exact-size free list hit
  }
  {
    std::shared_ptr<float[]> block = workspace.Acquire(101);
    EXPECT_NE(block.get(), first);  // different numel: no cross-size reuse
  }
  const runtime::WorkspaceStats stats = workspace.GetStats();
  EXPECT_EQ(stats.acquires, 3);
  EXPECT_EQ(stats.hits, 1);
}

TEST(WorkspaceTest, TrimFreesCachedBlocks) {
  runtime::Workspace workspace;
  workspace.Acquire(256);  // released immediately -> cached
  EXPECT_GT(workspace.GetStats().bytes_cached, 0);
  workspace.Trim();
  EXPECT_EQ(workspace.GetStats().bytes_cached, 0);
}

TEST(WorkspaceTest, TensorCanAdoptWorkspaceStorage) {
  runtime::Workspace workspace;
  float* block_ptr = nullptr;
  {
    std::shared_ptr<float[]> block = workspace.Acquire(12);
    block_ptr = block.get();
    Tensor t = Tensor::WithStorage(std::move(block), Shape{3, 4});
    EXPECT_EQ(t.data(), block_ptr);
    t.Fill(2.5f);
    EXPECT_EQ(t.at({2, 3}), 2.5f);
  }
  // The tensor's storage went back to the arena, not the heap.
  std::shared_ptr<float[]> again = workspace.Acquire(12);
  EXPECT_EQ(again.get(), block_ptr);
}

// ---------------------------------------------------------------------------
// ParallelFor thread-state propagation (regression: a no-grad scope must
// hold inside parallel regions)
// ---------------------------------------------------------------------------

TEST(ParallelPropagationTest, NoGradHoldsInsideParallelRegion) {
  const int saved_threads = GetNumThreads();
  SetNumThreads(4);
  constexpr int64_t kRange = 4096;
  // Retry until a pool worker (not just the caller) has executed a chunk:
  // chunks are cheap enough that the caller can occasionally drain the
  // whole range before a worker wakes. The no-grad invariant is asserted on
  // every attempt regardless of which threads ran.
  std::set<std::thread::id> thread_ids;
  for (int attempt = 0; attempt < 50 && thread_ids.size() < 2; ++attempt) {
    std::vector<char> grad_seen(kRange, 2);
    std::mutex mu;
    thread_ids.clear();
    {
      ag::NoGradGuard no_grad;
      ParallelFor(0, kRange, 1, [&](int64_t begin, int64_t end) {
        const char enabled = ag::GradMode::IsEnabled() ? 1 : 0;
        for (int64_t i = begin; i < end; ++i) grad_seen[i] = enabled;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        std::lock_guard<std::mutex> lock(mu);
        thread_ids.insert(std::this_thread::get_id());
      });
    }
    for (int64_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(grad_seen[i], 0) << "grad mode leaked into chunk at " << i;
    }
    EXPECT_TRUE(ag::GradMode::IsEnabled());  // restored on the caller
  }
  SetNumThreads(saved_threads);
  // The range really was executed by the pool, not inline on the caller.
  EXPECT_GE(thread_ids.size(), 2u);
}

TEST(ParallelPropagationTest, BoundContextReachesWorkers) {
  runtime::RuntimeContext::Options options;
  options.private_allocator = true;
  runtime::RuntimeContext context(options);
  const int saved_threads = GetNumThreads();
  SetNumThreads(4);
  std::atomic<int64_t> wrong_context{0};
  {
    runtime::RuntimeContext::Bind bound(context);
    ParallelFor(0, 4096, 1, [&](int64_t begin, int64_t end) {
      if (&runtime::RuntimeContext::Current() != &context) {
        wrong_context.fetch_add(end - begin);
      }
    });
  }
  SetNumThreads(saved_threads);
  EXPECT_EQ(wrong_context.load(), 0);
  EXPECT_EQ(&runtime::RuntimeContext::Current(),
            &runtime::RuntimeContext::Default());
}

TEST(ParallelPropagationTest, TraceStackReachesWorkers) {
  const int saved_threads = GetNumThreads();
  SetNumThreads(4);
  std::atomic<int64_t> wrong_stack{0};
  {
    obs::TraceSpan span("runtime_test_region");
    ParallelFor(0, 4096, 1, [&](int64_t begin, int64_t end) {
      const std::vector<const char*> stack = obs::TraceSpan::SnapshotStack();
      if (stack.size() != 1 ||
          std::string(stack[0]) != "runtime_test_region") {
        wrong_stack.fetch_add(end - begin);
      }
    });
    // The caller's own stack survived the region.
    const std::vector<const char*> after = obs::TraceSpan::SnapshotStack();
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(std::string(after[0]), "runtime_test_region");
  }
  SetNumThreads(saved_threads);
  EXPECT_EQ(wrong_stack.load(), 0);
  EXPECT_TRUE(obs::TraceSpan::SnapshotStack().empty());
}

// ---------------------------------------------------------------------------
// Sharded allocator
// ---------------------------------------------------------------------------

TEST(ShardedAllocatorTest, SingleThreadUsesShardZero) {
  TensorAllocator allocator(/*export_metrics=*/false, /*num_shards=*/4);
  for (int i = 0; i < 3; ++i) allocator.Allocate(256);
  const std::vector<AllocatorShardStats> shards = allocator.GetShardStats();
  ASSERT_EQ(static_cast<int>(shards.size()), allocator.num_shards());
  int64_t total_hits = 0;
  int64_t total_misses = 0;
  for (const AllocatorShardStats& shard : shards) {
    total_hits += shard.pool_hits;
    total_misses += shard.pool_misses;
  }
  const AllocatorStats stats = allocator.GetStats();
  EXPECT_EQ(total_hits, stats.pool_hits);
  EXPECT_EQ(total_misses, stats.pool_misses);
  // All this thread's traffic landed on one shard (whatever its ordinal
  // maps to), so exactly one shard saw the 1 miss + 2 hits.
  EXPECT_EQ(stats.pool_hits, 2);
  EXPECT_EQ(stats.pool_misses, 1);
}

TEST(ShardedAllocatorTest, DefaultAllocatorExportsShardGauges) {
  // Touch the default allocator so the gauges carry fresh values.
  { Tensor t(Shape{128}); }
  { Tensor t(Shape{128}); }
  obs::Registry& registry = obs::Registry::Global();
  for (int i = 0; i < TensorAllocator::Global().num_shards(); ++i) {
    obs::Gauge* gauge = registry.GetGauge("tensor.alloc.shard." +
                                          std::to_string(i) + ".hit_rate");
    ASSERT_NE(gauge, nullptr);
    EXPECT_GE(gauge->Get(), 0.0);
    EXPECT_LE(gauge->Get(), 1.0);
  }
}

// ---------------------------------------------------------------------------
// DAMGN workspace fast path: bitwise parity with the recording path
// ---------------------------------------------------------------------------

TEST(RuntimeWorkspaceIntegrationTest, DamgnDynamicCMatchesRecordingPath) {
  constexpr int64_t kN = 6;
  Rng rng(33);
  Tensor dist = Tensor::RandUniform({kN, kN}, rng, 0.1f, 10.0f);
  Tensor adjacency = graph::GaussianKernelAdjacency(dist);
  core::Damgn damgn(adjacency, kN, /*in_channels=*/2, /*mem_dim=*/5,
                    /*embed_dim=*/4, rng);
  ag::Variable x =
      ag::Variable::Leaf(Tensor::Randn({3, kN, 2}, rng), /*requires_grad=*/false);

  const Tensor recorded = damgn.DynamicC(x).data();
  Tensor fast;
  {
    ag::NoGradGuard no_grad;
    fast = damgn.DynamicC(x).data();
  }
  ASSERT_EQ(ShapeToString(fast.shape()), ShapeToString(recorded.shape()));
  const float* a = recorded.data();
  const float* b = fast.data();
  for (int64_t i = 0; i < recorded.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i << " diverged";
  }

  // A second no-grad call reuses the arena blocks instead of allocating.
  const runtime::WorkspaceStats before =
      runtime::RuntimeContext::Current().workspace().GetStats();
  {
    ag::NoGradGuard no_grad;
    damgn.DynamicC(x);
  }
  const runtime::WorkspaceStats after =
      runtime::RuntimeContext::Current().workspace().GetStats();
  EXPECT_EQ(after.acquires - before.acquires, 3);
  // Two of the three blocks (the transpose and scores scratch) came back to
  // the arena after the first call; the third (the probs block) is still
  // pinned by `fast`, so the second call's probs acquire misses.
  EXPECT_EQ(after.hits - before.hits, 2);
}

// ---------------------------------------------------------------------------
// Concurrent serving: two sessions, independent contexts, no shared
// allocator. Run under ENHANCENET_SANITIZE=thread for the full guarantee.
// ---------------------------------------------------------------------------

class ConcurrentServeTest : public ::testing::Test {
 protected:
  static constexpr int64_t kEntities = 8;
  static constexpr int64_t kHistory = 12;

  void SetUp() override {
    data_ = data::MakeEbLike(kEntities, 2, /*seed=*/7);
    adjacency_ = graph::GaussianKernelAdjacency(data_.distances);
    scaler_.Fit(data_.series, 0, data_.num_steps() * 7 / 10);
  }

  serve::SessionConfig Config() const {
    serve::SessionConfig config;
    config.model_name = "D-GRNN";
    config.num_entities = kEntities;
    config.in_channels = 1;
    config.target_channel = 0;
    config.adjacency = adjacency_;
    config.sizing = TinySizing();
    config.checkpoint_path.clear();  // fresh weights: fine for this test
    config.seed = 77;
    return config;
  }

  static models::ModelSizing TinySizing() {
    models::ModelSizing sizing;
    sizing.rnn_hidden = 8;
    sizing.rnn_hidden_dfgn = 6;
    sizing.memory_dim = 6;
    sizing.dfgn_hidden1 = 6;
    sizing.dfgn_hidden2 = 3;
    return sizing;
  }

  std::unique_ptr<serve::InferenceSession> MakeSession() {
    std::unique_ptr<serve::InferenceSession> session;
    const Status status =
        serve::InferenceSession::Create(Config(), scaler_, &session);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return session;
  }

  Tensor RawWindow(int64_t t) const {
    Tensor window(Shape{kEntities, kHistory, 1});
    for (int64_t i = 0; i < kEntities; ++i) {
      for (int64_t h = 0; h < kHistory; ++h) {
        window.at({i, h, 0}) = data_.series.at({i, t - kHistory + 1 + h, 0});
      }
    }
    return window;
  }

  data::CtsData data_;
  Tensor adjacency_;
  data::StandardScaler scaler_;
};

TEST_F(ConcurrentServeTest, TwoSessionsPredictConcurrentlyWithoutSharing) {
  std::unique_ptr<serve::InferenceSession> session_a = MakeSession();
  std::unique_ptr<serve::InferenceSession> session_b = MakeSession();
  ASSERT_NE(session_a, nullptr);
  ASSERT_NE(session_b, nullptr);

  TensorAllocator& alloc_a = session_a->context().allocator();
  TensorAllocator& alloc_b = session_b->context().allocator();
  // Independent contexts: no common allocator, and neither is the default.
  EXPECT_NE(&alloc_a, &alloc_b);
  EXPECT_NE(&alloc_a, &TensorAllocator::Global());
  EXPECT_NE(&alloc_b, &TensorAllocator::Global());

  // Baseline: one session, one thread, steady-state hit rate.
  double baseline = 0.0;
  {
    std::unique_ptr<serve::InferenceSession> solo = MakeSession();
    const Tensor window = RawWindow(kHistory + 5);
    serve::PredictRequest request;
    request.history = window;
    serve::PredictResponse response;
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(solo->Predict(request, &response).ok());
    }
    solo->context().allocator().ResetStats();
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(solo->Predict(request, &response).ok());
    }
    baseline = solo->context().allocator().GetStats().HitRate();
  }

  constexpr int kThreadsPerSession = 4;
  constexpr int kWarmupReps = 2;
  constexpr int kMeasureReps = 3;
  // 8 worker threads + this coordinator. Workers stay alive across the
  // warmup -> reset -> measure phases because allocator shard identity is
  // per OS thread.
  std::barrier sync(2 * kThreadsPerSession + 1);
  std::atomic<int> failures{0};

  auto worker = [&](serve::InferenceSession* session, int64_t t) {
    const Tensor window = RawWindow(t);
    serve::PredictRequest request;
    request.history = window;
    serve::PredictResponse response;
    for (int i = 0; i < kWarmupReps; ++i) {
      if (!session->Predict(request, &response).ok()) failures.fetch_add(1);
    }
    sync.arrive_and_wait();  // warmup done
    sync.arrive_and_wait();  // stats reset by the coordinator
    for (int i = 0; i < kMeasureReps; ++i) {
      if (!session->Predict(request, &response).ok()) failures.fetch_add(1);
    }
    sync.arrive_and_wait();  // measurement done
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreadsPerSession; ++i) {
    threads.emplace_back(worker, session_a.get(), kHistory + 3 + i);
    threads.emplace_back(worker, session_b.get(), kHistory + 3 + i);
  }

  sync.arrive_and_wait();  // warmup done
  alloc_a.ResetStats();
  alloc_b.ResetStats();
  const int64_t default_requests_before =
      TensorAllocator::Global().GetStats().requests;
  sync.arrive_and_wait();  // release workers into the measured phase
  sync.arrive_and_wait();  // measurement done
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // Predict allocates only from the session's own context: the default
  // allocator saw no traffic during the measured phase.
  EXPECT_EQ(TensorAllocator::Global().GetStats().requests,
            default_requests_before);

  // Sharding keeps the sessions' hit rates at the single-session level:
  // each thread's traffic cycles through its own shard, so concurrency
  // costs no pool misses.
  const AllocatorStats stats_a = alloc_a.GetStats();
  const AllocatorStats stats_b = alloc_b.GetStats();
  EXPECT_GT(stats_a.requests, 0);
  EXPECT_GT(stats_b.requests, 0);
  EXPECT_GE(stats_a.HitRate(), baseline - 1e-9);
  EXPECT_GE(stats_b.HitRate(), baseline - 1e-9);
}

}  // namespace
}  // namespace enhancenet
