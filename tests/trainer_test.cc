#include "train/trainer.h"

#include <cmath>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "gtest/gtest.h"
#include "models/model_factory.h"
#include "test_util.h"

namespace enhancenet {
namespace {

/// Tiny but learnable setup: a 8-sensor EB-like dataset, 2 days, and a small
/// RNN, so training converges in seconds.
struct TrainFixture {
  TrainFixture()
      : dataset(data::MakeEbLike(8, 3, /*seed=*/23)),
        splits(data::ChronologicalSplits(dataset.num_steps())) {
    scaler.Fit(dataset.series, 0, splits.train_end);
    scaled = scaler.Transform(dataset.series);
    train = std::make_unique<data::WindowDataset>(
        scaled, dataset.series, 0, 0, splits.train_end, 12, 12, 8);
    val = std::make_unique<data::WindowDataset>(
        scaled, dataset.series, 0, splits.train_end, splits.val_end, 12, 12,
        8);
    test = std::make_unique<data::WindowDataset>(
        scaled, dataset.series, 0, splits.val_end, splits.total, 12, 12, 8);
  }

  std::unique_ptr<models::ForecastingModel> MakeRnn(int64_t hidden = 8) {
    models::ModelSizing sizing;
    sizing.rnn_hidden = hidden;
    Rng rng(31);
    return models::MakeModel("RNN", dataset.num_entities(),
                             dataset.num_channels(), Tensor(), sizing, rng);
  }

  data::CtsData dataset;
  data::Splits splits;
  data::StandardScaler scaler;
  Tensor scaled;
  std::unique_ptr<data::WindowDataset> train;
  std::unique_ptr<data::WindowDataset> val;
  std::unique_ptr<data::WindowDataset> test;
};

TEST(TrainerTest, LossDecreasesOverEpochs) {
  TrainFixture fixture;
  auto model = fixture.MakeRnn();
  train::TrainerConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  train::Trainer trainer(model.get(), &fixture.scaler, 0, config);
  Rng rng(32);
  train::TrainResult result =
      trainer.Train(*fixture.train, *fixture.val, rng);
  ASSERT_EQ(result.epoch_train_loss.size(), 4u);
  EXPECT_LT(result.epoch_train_loss.back(), result.epoch_train_loss.front());
  EXPECT_GT(result.mean_epoch_seconds, 0.0);
}

TEST(TrainerTest, TrainedModelBeatsUntrainedOnTest) {
  TrainFixture fixture;
  auto untrained = fixture.MakeRnn();
  auto trained = fixture.MakeRnn();
  train::TrainerConfig config;
  config.epochs = 4;
  config.batch_size = 8;

  Rng rng(33);
  train::Trainer t_untrained(untrained.get(), &fixture.scaler, 0, config);
  train::MetricAccumulator acc_untrained(12);
  t_untrained.Evaluate(*fixture.test, &acc_untrained, rng);

  train::Trainer t_trained(trained.get(), &fixture.scaler, 0, config);
  t_trained.Train(*fixture.train, *fixture.val, rng);
  train::MetricAccumulator acc_trained(12);
  t_trained.Evaluate(*fixture.test, &acc_trained, rng);

  EXPECT_LT(acc_trained.Overall().mae, acc_untrained.Overall().mae);
}

TEST(TrainerTest, BestWeightsRestoredAfterTraining) {
  TrainFixture fixture;
  auto model = fixture.MakeRnn();
  train::TrainerConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  train::Trainer trainer(model.get(), &fixture.scaler, 0, config);
  Rng rng(34);
  train::TrainResult result =
      trainer.Train(*fixture.train, *fixture.val, rng);

  // Evaluating now must reproduce the best recorded validation MAE.
  train::MetricAccumulator acc(12);
  trainer.Evaluate(*fixture.val, &acc, rng);
  EXPECT_NEAR(acc.Overall().mae, result.best_val_mae,
              1e-6 + 1e-4 * result.best_val_mae);
  EXPECT_GE(result.best_epoch, 0);
  EXPECT_LT(result.best_epoch, 3);
}

TEST(TrainerTest, EarlyStoppingHonoursPatience) {
  TrainFixture fixture;
  auto model = fixture.MakeRnn(/*hidden=*/2);
  train::TrainerConfig config;
  config.epochs = 50;
  config.batch_size = 16;
  config.learning_rate = 1e-6f;  // effectively frozen -> no improvement
  config.patience = 2;
  config.min_delta = 0.05;  // micro-improvements do not reset patience
  train::Trainer trainer(model.get(), &fixture.scaler, 0, config);
  Rng rng(35);
  train::TrainResult result =
      trainer.Train(*fixture.train, *fixture.val, rng);
  EXPECT_LE(result.epoch_train_loss.size(), 5u);  // stopped long before 50
}

TEST(TrainerTest, StepDecayLowersLearningRate) {
  TrainFixture fixture;
  auto model = fixture.MakeRnn(2);
  train::TrainerConfig config;
  config.epochs = 3;
  config.batch_size = 32;
  config.use_step_decay = true;
  config.lr_first_decay_epoch = 1;
  config.lr_decay_period = 1;
  config.learning_rate = 0.01f;
  // Just verifying the run completes with the schedule active and training
  // remains numerically stable at decayed rates.
  train::Trainer trainer(model.get(), &fixture.scaler, 0, config);
  Rng rng(36);
  train::TrainResult result =
      trainer.Train(*fixture.train, *fixture.val, rng);
  for (double loss : result.epoch_train_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(TrainerTest, MeasurePredictMillisPositiveAndStable) {
  TrainFixture fixture;
  auto model = fixture.MakeRnn(2);
  train::TrainerConfig config;
  train::Trainer trainer(model.get(), &fixture.scaler, 0, config);
  Rng rng(37);
  const double millis = trainer.MeasurePredictMillis(*fixture.test, 3, rng);
  EXPECT_GT(millis, 0.0);
  EXPECT_LT(millis, 10000.0);
}

TEST(TrainerTest, EvaluateAndMeasureRestorePriorTrainingMode) {
  // Evaluate/MeasurePredictMillis must put the model back in whatever mode
  // the caller had it in — forcing training mode on exit would silently
  // corrupt eval-mode callers (e.g. a serving path reusing the model).
  TrainFixture fixture;
  auto model = fixture.MakeRnn(2);
  train::TrainerConfig config;
  train::Trainer trainer(model.get(), &fixture.scaler, 0, config);
  Rng rng(41);
  train::MetricAccumulator acc(12);

  model->SetTraining(false);
  trainer.Evaluate(*fixture.test, &acc, rng);
  EXPECT_FALSE(model->training());
  trainer.MeasurePredictMillis(*fixture.test, 1, rng);
  EXPECT_FALSE(model->training());

  model->SetTraining(true);
  train::MetricAccumulator acc2(12);
  trainer.Evaluate(*fixture.test, &acc2, rng);
  EXPECT_TRUE(model->training());
  trainer.MeasurePredictMillis(*fixture.test, 1, rng);
  EXPECT_TRUE(model->training());
}

TEST(TrainerTest, EvaluateUsesRealUnits) {
  TrainFixture fixture;
  auto model = fixture.MakeRnn(2);
  train::TrainerConfig config;
  train::Trainer trainer(model.get(), &fixture.scaler, 0, config);
  Rng rng(38);
  train::MetricAccumulator acc(12);
  trainer.Evaluate(*fixture.test, &acc, rng);
  // Speeds are ~60; an untrained model predicts ~scaler-mean offsets, so
  // real-unit MAE lands in single-to-double digits, not ~1 (scaled units).
  EXPECT_GT(acc.Overall().mae, 1.0);
  EXPECT_GT(acc.Overall().count, 0);
}

TEST(TrainerTest, ScheduledSamplingProbabilityDecays) {
  // Indirect test: with tau very small, probability ~0 from the start, so
  // training equals no-teacher-forcing; both configs must run fine and give
  // finite losses.
  TrainFixture fixture;
  auto model = fixture.MakeRnn(2);
  train::TrainerConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.scheduled_sampling_tau = 0.1f;
  train::Trainer trainer(model.get(), &fixture.scaler, 0, config);
  Rng rng(39);
  train::TrainResult result =
      trainer.Train(*fixture.train, *fixture.val, rng);
  EXPECT_TRUE(std::isfinite(result.epoch_train_loss[0]));
}

}  // namespace
}  // namespace enhancenet
