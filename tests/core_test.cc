#include <cmath>

#include "autograd/ops.h"
#include "core/damgn.h"
#include "core/dfgn.h"
#include "core/enhance_gru_cell.h"
#include "core/enhance_tcn_layer.h"
#include "core/entity_memory.h"
#include "graph/adjacency.h"
#include "graph/graph_conv.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;
using ::enhancenet::testing::ExpectGradientsMatch;
using ::enhancenet::testing::ExpectTensorNear;

Tensor RandomAdjacency(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Tensor dist = Tensor::RandUniform({n, n}, rng, 0.2f, 5.0f);
  for (int64_t i = 0; i < n; ++i) dist.at({i, i}) = 0.0f;
  return graph::GaussianKernelAdjacency(dist);
}

// ---------------------------------------------------------------------------
// EntityMemoryBank
// ---------------------------------------------------------------------------

TEST(EntityMemoryTest, ShapeAndTrainability) {
  Rng rng(1);
  core::EntityMemoryBank bank(10, 16, rng);
  EXPECT_EQ(ShapeToString(bank.memory().shape()), "[10, 16]");
  EXPECT_TRUE(bank.memory().requires_grad());
  EXPECT_EQ(bank.NumParameters(), 160);
}

TEST(EntityMemoryTest, UniformInitializationBounds) {
  Rng rng(2);
  core::EntityMemoryBank bank(100, 8, rng);
  const float* p = bank.memory().data().data();
  for (int64_t i = 0; i < 800; ++i) EXPECT_LE(std::fabs(p[i]), 0.5f);
}

// ---------------------------------------------------------------------------
// DFGN (Sec. IV-C)
// ---------------------------------------------------------------------------

TEST(DfgnTest, GeneratesPerEntityFilters) {
  Rng rng(3);
  core::Dfgn dfgn(16, 16, 4, 24, rng);
  ag::Variable memory = ag::Variable::Leaf(Tensor::Randn({5, 16}, rng), false);
  ag::Variable filters = dfgn.Generate(memory);
  EXPECT_EQ(ShapeToString(filters.shape()), "[5, 24]");
}

TEST(DfgnTest, ParameterCountMatchesPaperFormula) {
  // Paper Sec. IV-C: m·n₁ + n₁·n₂ + n₂·o (memories counted separately).
  Rng rng(4);
  const int64_t m = 16;
  const int64_t n1 = 16;
  const int64_t n2 = 4;
  const int64_t o = 3 * 16 * (1 + 16);  // GRU head, C=1, C'=16
  core::Dfgn dfgn(m, n1, n2, o, rng);
  EXPECT_EQ(dfgn.NumParameters(), m * n1 + n1 * n2 + n2 * o);
}

TEST(DfgnTest, DistinctMemoriesGiveDistinctFilters) {
  Rng rng(5);
  core::Dfgn dfgn(8, 16, 4, 10, rng);
  Tensor mem = Tensor::Randn({2, 8}, rng);
  ag::Variable filters =
      dfgn.Generate(ag::Variable::Leaf(mem, false));
  Tensor f0 = ops::Slice(filters.data(), 0, 0, 1);
  Tensor f1 = ops::Slice(filters.data(), 0, 1, 1);
  EXPECT_FALSE(ops::AllClose(f0, f1, 1e-4f, 1e-4f));
}

TEST(DfgnTest, IdenticalMemoriesGiveIdenticalFilters) {
  Rng rng(6);
  core::Dfgn dfgn(8, 16, 4, 10, rng);
  Tensor mem({2, 8});
  Rng fill(7);
  Tensor row = Tensor::Randn({8}, fill);
  std::copy(row.data(), row.data() + 8, mem.data());
  std::copy(row.data(), row.data() + 8, mem.data() + 8);
  ag::Variable filters = dfgn.Generate(ag::Variable::Leaf(mem, false));
  ExpectTensorNear(ops::Slice(filters.data(), 0, 0, 1),
                   ops::Slice(filters.data(), 0, 1, 1), 1e-6f);
}

TEST(DfgnTest, CalibrationMatchesGlorotScale) {
  Rng rng(9);
  const int64_t fan_in = 20;
  const int64_t fan_out = 30;
  core::Dfgn dfgn(8, 16, 4, fan_in * fan_out, rng);
  Tensor mem = nn::UniformInit({50, 8}, rng);
  ag::Variable memory = ag::Variable::Leaf(mem, false);
  dfgn.CalibrateGeneratedScale(memory, fan_in, fan_out);
  const Tensor generated = dfgn.Generate(memory).data();
  double sum = 0.0;
  double sq = 0.0;
  for (int64_t i = 0; i < generated.numel(); ++i) {
    sum += generated.data()[i];
    sq += static_cast<double>(generated.data()[i]) * generated.data()[i];
  }
  const double n = static_cast<double>(generated.numel());
  const double std = std::sqrt(sq / n - (sum / n) * (sum / n));
  const double target = std::sqrt(2.0 / (fan_in + fan_out));
  EXPECT_NEAR(std, target, target * 0.05);
}

TEST(DfgnTest, GradientsReachMemoryAndTrunk) {
  Rng rng(8);
  core::Dfgn dfgn(6, 8, 4, 5, rng);
  ag::Variable memory = ag::Variable::Leaf(Tensor::Randn({3, 6}, rng), true);
  std::vector<ag::Variable> inputs = dfgn.Parameters();
  inputs.push_back(memory);
  ExpectGradientsMatch(
      [&] { return ag::SumAll(ag::Square(dfgn.Generate(memory))); }, inputs,
      1e-2f, 3e-2f);
}

// ---------------------------------------------------------------------------
// DAMGN (Sec. V-B)
// ---------------------------------------------------------------------------

class DamgnTest : public ::testing::Test {
 protected:
  DamgnTest()
      : rng_(11),
        adjacency_(RandomAdjacency(6, 11)),
        damgn_(adjacency_, 6, 2, 4, 3, rng_) {}

  Rng rng_;
  Tensor adjacency_;
  core::Damgn damgn_;
};

TEST_F(DamgnTest, AdaptiveBRowsSumToOne) {
  Tensor b = damgn_.AdaptiveB().data();
  EXPECT_EQ(ShapeToString(b.shape()), "[6, 6]");
  for (int64_t i = 0; i < 6; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_GE(b.at({i, j}), 0.0f);
      row += b.at({i, j});
    }
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST_F(DamgnTest, DynamicCRowsSumToOne) {
  Rng rng(12);
  Tensor x = Tensor::Randn({3, 6, 2}, rng);
  Tensor c = damgn_.DynamicC(ag::Variable::Leaf(x, false)).data();
  EXPECT_EQ(ShapeToString(c.shape()), "[3, 6, 6]");
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t i = 0; i < 6; ++i) {
      float row = 0.0f;
      for (int64_t j = 0; j < 6; ++j) row += c.at({b, i, j});
      EXPECT_NEAR(row, 1.0f, 1e-5f);
    }
  }
}

TEST_F(DamgnTest, DynamicCDependsOnInput) {
  Rng rng(13);
  Tensor x1 = Tensor::Randn({1, 6, 2}, rng);
  Tensor x2 = Tensor::Randn({1, 6, 2}, rng);
  Tensor c1 = damgn_.DynamicC(ag::Variable::Leaf(x1, false)).data();
  Tensor c2 = damgn_.DynamicC(ag::Variable::Leaf(x2, false)).data();
  EXPECT_FALSE(ops::AllClose(c1, c2, 1e-4f, 1e-4f));
}

TEST_F(DamgnTest, DynamicCCanBeAsymmetric) {
  Rng rng(14);
  Tensor x = Tensor::Randn({1, 6, 2}, rng);
  Tensor c = damgn_.DynamicC(ag::Variable::Leaf(x, false)).data();
  float max_asym = 0.0f;
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      max_asym = std::max(max_asym,
                          std::fabs(c.at({0, i, j}) - c.at({0, j, i})));
    }
  }
  EXPECT_GT(max_asym, 1e-4f);  // θ ≠ φ distinguishes source and target
}

TEST_F(DamgnTest, AtInitializationCombinedEqualsStaticA) {
  // λ_A=1, λ_B=λ_C=0 => A' == row-normalized A: the enhanced model reduces
  // to the base model (the paper's "at least as powerful" argument).
  Rng rng(15);
  Tensor x = Tensor::Randn({2, 6, 2}, rng);
  Tensor combined = damgn_.Combined(ag::Variable::Leaf(x, false)).data();
  const Tensor expected = graph::RowNormalize(adjacency_);
  for (int64_t b = 0; b < 2; ++b) {
    ExpectTensorNear(ops::Slice(combined, 0, b, 1).Reshape({6, 6}), expected,
                     1e-5f);
  }
}

TEST_F(DamgnTest, LambdasAreLearnable) {
  auto named = damgn_.NamedParameters();
  int lambda_count = 0;
  for (const auto& [name, param] : named) {
    if (name.find("lambda") != std::string::npos) {
      ++lambda_count;
      EXPECT_TRUE(param.requires_grad());
    }
  }
  EXPECT_EQ(lambda_count, 3);
  EXPECT_FLOAT_EQ(damgn_.lambda_a(), 1.0f);
  EXPECT_FLOAT_EQ(damgn_.lambda_b(), 0.0f);
  EXPECT_FLOAT_EQ(damgn_.lambda_c(), 0.0f);
}

TEST_F(DamgnTest, CombinedSupportsCountsAndShapes) {
  Rng rng(16);
  Tensor x = Tensor::Randn({2, 6, 2}, rng);
  const auto supports =
      damgn_.CombinedSupports(ag::Variable::Leaf(x, false), 2, true);
  ASSERT_EQ(supports.size(), 4u);
  for (const auto& s : supports) {
    EXPECT_EQ(ShapeToString(s.dense.shape()), "[2, 6, 6]");
  }
  // Second support is the batch square of the first.
  Tensor sq =
      ops::BatchMatMul(supports[0].dense.data(), supports[0].dense.data());
  ExpectTensorNear(supports[1].dense.data(), sq, 1e-5f);
  // Third is the transpose of the first.
  ExpectTensorNear(supports[2].dense.data(),
                   ops::Transpose(supports[0].dense.data(), 1, 2), 1e-6f);
}

TEST_F(DamgnTest, ParameterCountMatchesFormula) {
  // 2·N·M (B₁,B₂) + 2·C·e (θ,φ) + 3 λs.
  EXPECT_EQ(damgn_.NumParameters(), 2 * 6 * 4 + 2 * 2 * 3 + 3);
}

TEST_F(DamgnTest, GradientsFlowToAllParameters) {
  Rng rng(17);
  Tensor x = Tensor::Randn({1, 6, 2}, rng);
  auto params = damgn_.Parameters();
  ag::Variable out =
      ag::SumAll(ag::Square(damgn_.Combined(ag::Variable::Leaf(x, false))));
  damgn_.ZeroGrad();
  out.Backward();
  for (auto& p : params) {
    EXPECT_TRUE(p.has_grad());
  }
}

// ---------------------------------------------------------------------------
// EnhanceGruCell
// ---------------------------------------------------------------------------

core::GruCellConfig CellConfig(int64_t n, int64_t c, int64_t hidden,
                               int64_t supports, bool dfgn) {
  core::GruCellConfig config;
  config.num_entities = n;
  config.in_channels = c;
  config.hidden = hidden;
  config.num_supports = supports;
  config.use_dfgn = dfgn;
  config.dfgn_hidden1 = 8;
  config.dfgn_hidden2 = 4;
  return config;
}

TEST(EnhanceGruCellTest, PlainCellShapes) {
  Rng rng(21);
  core::EnhanceGruCell cell(CellConfig(4, 2, 6, 0, false), nullptr, rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::Randn({3, 4, 2}, rng), false);
  ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({3, 4, 6}), false);
  ag::Variable h2 = cell.Forward(x, h, {});
  EXPECT_EQ(ShapeToString(h2.shape()), "[3, 4, 6]");
}

TEST(EnhanceGruCellTest, SharedParameterCountMatchesFormula) {
  Rng rng(22);
  const int64_t c = 2;
  const int64_t hidden = 6;
  core::EnhanceGruCell cell(CellConfig(4, c, hidden, 0, false), nullptr, rng);
  const int64_t mixed = c + hidden;
  // w_ru [mixed,2C'] + w_c [mixed,C'] + biases 3C'.
  EXPECT_EQ(cell.NumParameters(), mixed * 2 * hidden + mixed * hidden +
                                      3 * hidden);
}

TEST(EnhanceGruCellTest, DfgnVariantUsesSharedMemory) {
  Rng rng(23);
  core::EntityMemoryBank bank(4, 8, rng);
  core::EnhanceGruCell cell(CellConfig(4, 2, 6, 0, true), &bank.memory(),
                            rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::Randn({3, 4, 2}, rng), false);
  ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({3, 4, 6}), false);
  ag::Variable h2 = cell.Forward(x, h, {});
  EXPECT_EQ(ShapeToString(h2.shape()), "[3, 4, 6]");
  // Gradients reach the memory bank through the cell.
  bank.ZeroGrad();
  cell.ZeroGrad();
  ag::SumAll(ag::Square(h2)).Backward();
  EXPECT_TRUE(bank.memory().has_grad());
}

TEST(EnhanceGruCellTest, DfgnParameterCountMatchesPaperAnalysis) {
  Rng rng(24);
  const int64_t c = 1;
  const int64_t hidden = 16;
  const int64_t n1 = 8;
  const int64_t n2 = 4;
  auto config = CellConfig(30, c, hidden, 0, true);
  config.dfgn_hidden1 = n1;
  config.dfgn_hidden2 = n2;
  core::EntityMemoryBank bank(30, 16, rng);
  core::EnhanceGruCell cell(config, &bank.memory(), rng);
  const int64_t mixed = c + hidden;
  const int64_t o = 3 * mixed * hidden;  // all six GRU filters at once
  // DFGN trunk+head + shared biases; memories live in the bank.
  EXPECT_EQ(cell.NumParameters(), 16 * n1 + n1 * n2 + n2 * o + 3 * hidden);
}

TEST(EnhanceGruCellTest, DfgnNeedsFewerParamsThanStraightforward) {
  // The straightforward method stores N distinct filter sets; DFGN
  // amortizes them through the generator (paper Sec. IV-C1).
  Rng rng(25);
  const int64_t n = 100;
  const int64_t c = 1;
  const int64_t hidden = 16;
  core::EntityMemoryBank bank(n, 16, rng);
  core::EnhanceGruCell cell(CellConfig(n, c, hidden, 0, true),
                            &bank.memory(), rng);
  const int64_t mixed = c + hidden;
  const int64_t straightforward = n * 3 * mixed * hidden;
  EXPECT_LT(cell.NumParameters() + bank.NumParameters(), straightforward);
}

TEST(EnhanceGruCellTest, GraphVariantUsesSupports) {
  Rng rng(26);
  Tensor adjacency = RandomAdjacency(4, 26);
  const auto raw = graph::DiffusionSupports(adjacency, 1);
  std::vector<graph::Support> supports;
  for (const auto& s : raw) supports.push_back(ag::Variable::Leaf(s, false));

  core::EnhanceGruCell cell(CellConfig(4, 2, 6, 2, false), nullptr, rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::Randn({2, 4, 2}, rng), false);
  ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({2, 4, 6}), false);
  ag::Variable out = cell.Forward(x, h, supports);
  EXPECT_EQ(ShapeToString(out.shape()), "[2, 4, 6]");

  // Different supports change the result (graph actually used).
  std::vector<graph::Support> zero_supports = {
      ag::Variable::Leaf(Tensor::Zeros({4, 4}), false),
      ag::Variable::Leaf(Tensor::Zeros({4, 4}), false)};
  ag::Variable out2 = cell.Forward(x, h, zero_supports);
  EXPECT_FALSE(ops::AllClose(out.data(), out2.data(), 1e-4f, 1e-4f));
}

TEST(EnhanceGruCellTest, HoistedFilterGenerationMatchesConvenienceOverload) {
  Rng rng(29);
  core::EntityMemoryBank bank(4, 6, rng);
  core::EnhanceGruCell cell(CellConfig(4, 2, 5, 0, true), &bank.memory(),
                            rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::Randn({2, 4, 2}, rng), false);
  ag::Variable h = ag::Variable::Leaf(Tensor::Randn({2, 4, 5}, rng), false);
  const auto filters = cell.GenerateFilters();
  ExpectTensorNear(cell.Forward(x, h, {}, filters).data(),
                   cell.Forward(x, h, {}).data(), 0.0f);
  // Reusing the same filters across multiple steps also matches.
  ag::Variable h2 = cell.Forward(x, h, {}, filters);
  ag::Variable h3 = cell.Forward(x, h2, {}, filters);
  ExpectTensorNear(h3.data(), cell.Forward(x, cell.Forward(x, h, {}), {}).data(),
                   1e-6f);
}

TEST(EnhanceGruCellTest, GradCheckSharedPath) {
  Rng rng(27);
  core::EnhanceGruCell cell(CellConfig(3, 1, 2, 0, false), nullptr, rng);
  Tensor x = Tensor::Randn({2, 3, 1}, rng);
  auto params = cell.Parameters();
  ExpectGradientsMatch(
      [&] {
        ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({2, 3, 2}), false);
        h = cell.Forward(ag::Variable::Leaf(x, false), h, {});
        return ag::SumAll(ag::Square(h));
      },
      params, 1e-2f, 3e-2f);
}

TEST(EnhanceGruCellTest, GradCheckDfgnGraphPath) {
  Rng rng(28);
  Tensor adjacency = RandomAdjacency(3, 28);
  const auto raw = graph::DiffusionSupports(adjacency, 1);
  std::vector<graph::Support> supports;
  for (const auto& s : raw) supports.push_back(ag::Variable::Leaf(s, false));
  core::EntityMemoryBank bank(3, 4, rng);
  auto config = CellConfig(3, 1, 2, 2, true);
  config.dfgn_hidden1 = 4;
  config.dfgn_hidden2 = 2;
  core::EnhanceGruCell cell(config, &bank.memory(), rng);
  Tensor x = Tensor::Randn({2, 3, 1}, rng);
  std::vector<ag::Variable> inputs = cell.Parameters();
  auto bank_params = bank.Parameters();
  inputs.insert(inputs.end(), bank_params.begin(), bank_params.end());
  ExpectGradientsMatch(
      [&] {
        ag::Variable h = ag::Variable::Leaf(Tensor::Zeros({2, 3, 2}), false);
        h = cell.Forward(ag::Variable::Leaf(x, false), h, supports);
        return ag::SumAll(ag::Square(h));
      },
      inputs, 1e-2f, 3e-2f);
}

// ---------------------------------------------------------------------------
// EnhanceTcnLayer
// ---------------------------------------------------------------------------

core::TcnLayerConfig LayerConfig(int64_t n, int64_t c, int64_t conv,
                                 int64_t dilation, int64_t supports,
                                 bool dfgn) {
  core::TcnLayerConfig config;
  config.num_entities = n;
  config.in_channels = c;
  config.conv_channels = conv;
  config.skip_channels = 5;
  config.dilation = dilation;
  config.num_supports = supports;
  config.use_dfgn = dfgn;
  config.dfgn_hidden1 = 8;
  config.dfgn_hidden2 = 4;
  config.dropout = 0.0f;
  return config;
}

TEST(FoldTimeTest, RoundTrip) {
  Rng rng(31);
  Tensor x = Tensor::Randn({2, 3, 4, 5}, rng);
  ag::Variable folded = core::FoldTime(ag::Variable::Leaf(x, false));
  EXPECT_EQ(ShapeToString(folded.shape()), "[8, 3, 5]");
  ag::Variable back = core::UnfoldTime(folded, 2, 4);
  ExpectTensorNear(back.data(), x, 1e-6f);
}

TEST(FoldTimeTest, OrderIsBatchMajorThenTime) {
  Tensor x = Tensor::Zeros({2, 1, 2, 1});
  x.at({1, 0, 0, 0}) = 7.0f;  // batch 1, time 0
  ag::Variable folded = core::FoldTime(ag::Variable::Leaf(x, false));
  // Folded index = b*T + t = 2.
  EXPECT_FLOAT_EQ(folded.data().at({2, 0, 0}), 7.0f);
}

TEST(EnhanceTcnLayerTest, OutputShapes) {
  Rng rng(32);
  core::EnhanceTcnLayer layer(LayerConfig(4, 3, 6, 2, 0, false), nullptr,
                              rng);
  ag::Variable x = ag::Variable::Leaf(Tensor::Randn({2, 4, 12, 3}, rng),
                                      false);
  auto out = layer.Forward(x, {}, rng);
  EXPECT_EQ(ShapeToString(out.residual.shape()), "[2, 4, 12, 3]");
  EXPECT_EQ(ShapeToString(out.skip.shape()), "[2, 4, 12, 5]");
}

TEST(EnhanceTcnLayerTest, CausalityRespected) {
  // Changing the input at time t must not affect outputs before t.
  Rng rng(33);
  core::EnhanceTcnLayer layer(LayerConfig(2, 1, 4, 2, 0, false), nullptr,
                              rng);
  layer.SetTraining(false);
  Rng drop1(1);
  Rng drop2(1);
  Tensor x1 = Tensor::Randn({1, 2, 8, 1}, rng);
  Tensor x2 = x1.Clone();
  x2.at({0, 0, 5, 0}) += 10.0f;  // perturb t=5
  Tensor out1 =
      layer.Forward(ag::Variable::Leaf(x1, false), {}, drop1).skip.data();
  Tensor out2 =
      layer.Forward(ag::Variable::Leaf(x2, false), {}, drop2).skip.data();
  for (int64_t t = 0; t < 5; ++t) {
    for (int64_t ch = 0; ch < 5; ++ch) {
      EXPECT_NEAR(out1.at({0, 0, t, ch}), out2.at({0, 0, t, ch}), 1e-5f)
          << "leak at t=" << t;
    }
  }
  // And some output at t >= 5 does change.
  bool changed = false;
  for (int64_t t = 5; t < 8 && !changed; ++t) {
    for (int64_t ch = 0; ch < 5; ++ch) {
      if (std::fabs(out1.at({0, 0, t, ch}) - out2.at({0, 0, t, ch})) >
          1e-4f) {
        changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST(EnhanceTcnLayerTest, DilationControlsReceptiveField) {
  // With K=2, dilation=4, output at t depends on t and t-4 only.
  Rng rng(34);
  core::EnhanceTcnLayer layer(LayerConfig(1, 1, 4, 4, 0, false), nullptr,
                              rng);
  layer.SetTraining(false);
  Rng drop(1);
  Tensor x1 = Tensor::Randn({1, 1, 10, 1}, rng);
  Tensor x2 = x1.Clone();
  x2.at({0, 0, 3, 0}) += 5.0f;  // t=3: affects outputs at 3 and 7 only
  Tensor out1 =
      layer.Forward(ag::Variable::Leaf(x1, false), {}, drop).skip.data();
  Tensor out2 =
      layer.Forward(ag::Variable::Leaf(x2, false), {}, drop).skip.data();
  for (int64_t t = 0; t < 10; ++t) {
    const float diff = std::fabs(out1.at({0, 0, t, 0}) - out2.at({0, 0, t, 0}));
    if (t == 3 || t == 7) {
      EXPECT_GT(diff, 1e-5f) << "t=" << t;
    } else {
      EXPECT_LT(diff, 1e-6f) << "t=" << t;
    }
  }
}

TEST(EnhanceTcnLayerTest, DfgnParameterCountPerLayer) {
  Rng rng(35);
  const int64_t c = 3;
  const int64_t conv = 6;
  const int64_t n1 = 8;
  const int64_t n2 = 4;
  core::EntityMemoryBank bank(4, 8, rng);
  core::EnhanceTcnLayer layer(LayerConfig(4, c, conv, 1, 0, true),
                              &bank.memory(), rng);
  // DFGN o = K·C·2C' (gated WaveNet doubles the filter count); plus conv
  // bias, residual proj, skip proj.
  const int64_t o = 2 * c * 2 * conv;
  const int64_t dfgn = 8 * n1 + n1 * n2 + n2 * o;
  const int64_t rest = 2 * conv                 // conv bias
                       + (conv * c + c)         // residual proj
                       + (conv * 5 + 5);        // skip proj
  EXPECT_EQ(layer.NumParameters(), dfgn + rest);
}

TEST(EnhanceTcnLayerTest, GraphConvChangesOutput) {
  Rng rng(36);
  Tensor adjacency = RandomAdjacency(3, 36);
  const auto raw = graph::DiffusionSupports(adjacency, 1);
  std::vector<graph::Support> supports;
  for (const auto& s : raw) supports.push_back(ag::Variable::Leaf(s, false));

  core::EnhanceTcnLayer layer(LayerConfig(3, 2, 4, 1, 2, false), nullptr,
                              rng);
  layer.SetTraining(false);
  Rng drop(1);
  ag::Variable x =
      ag::Variable::Leaf(Tensor::Randn({1, 3, 6, 2}, rng), false);
  Tensor with_graph = layer.Forward(x, supports, drop).skip.data();
  std::vector<graph::Support> zeros = {
      ag::Variable::Leaf(Tensor::Zeros({3, 3}), false),
      ag::Variable::Leaf(Tensor::Zeros({3, 3}), false)};
  Tensor without = layer.Forward(x, zeros, drop).skip.data();
  EXPECT_FALSE(ops::AllClose(with_graph, without, 1e-4f, 1e-4f));
}

TEST(EnhanceTcnLayerTest, GradCheckDfgnPath) {
  Rng rng(37);
  core::EntityMemoryBank bank(2, 4, rng);
  auto config = LayerConfig(2, 1, 2, 1, 0, true);
  config.dfgn_hidden1 = 4;
  config.dfgn_hidden2 = 2;
  config.skip_channels = 2;
  core::EnhanceTcnLayer layer(config, &bank.memory(), rng);
  layer.SetTraining(false);
  Tensor x = Tensor::Randn({1, 2, 4, 1}, rng);
  std::vector<ag::Variable> inputs = layer.Parameters();
  auto bank_params = bank.Parameters();
  inputs.insert(inputs.end(), bank_params.begin(), bank_params.end());
  Rng drop(1);
  ExpectGradientsMatch(
      [&] {
        auto out = layer.Forward(ag::Variable::Leaf(x, false), {}, drop);
        return ag::Add(ag::SumAll(ag::Square(out.skip)),
                       ag::SumAll(ag::Square(out.residual)));
      },
      inputs, 1e-2f, 3e-2f);
}

}  // namespace
}  // namespace enhancenet
