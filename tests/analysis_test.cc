#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "analysis/heatmap.h"
#include "analysis/kmeans.h"
#include "analysis/tsne.h"
#include "gtest/gtest.h"

namespace enhancenet {
namespace {

/// Two well-separated Gaussian blobs in 8-D, `per_cluster` points each.
Tensor TwoBlobs(int64_t per_cluster, uint64_t seed) {
  Rng rng(seed);
  Tensor points({2 * per_cluster, 8});
  for (int64_t i = 0; i < 2 * per_cluster; ++i) {
    const float center = i < per_cluster ? -6.0f : 6.0f;
    for (int64_t d = 0; d < 8; ++d) {
      points.at({i, d}) =
          center + static_cast<float>(rng.Normal(0.0, 0.4));
    }
  }
  return points;
}

// ---------------------------------------------------------------------------
// t-SNE (Figure 10 machinery)
// ---------------------------------------------------------------------------

TEST(TsneTest, OutputShape) {
  Tensor points = TwoBlobs(20, 1);
  analysis::TsneConfig config;
  config.iterations = 150;
  Tensor embedding = analysis::Tsne(points, config);
  EXPECT_EQ(ShapeToString(embedding.shape()), "[40, 2]");
  for (int64_t i = 0; i < embedding.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(embedding.data()[i]));
  }
}

TEST(TsneTest, SeparatesTwoClusters) {
  Tensor points = TwoBlobs(20, 2);
  analysis::TsneConfig config;
  config.iterations = 300;
  Tensor embedding = analysis::Tsne(points, config);
  // Within-cluster distances must be smaller than between-cluster.
  auto dist = [&](int64_t a, int64_t b) {
    const float dx = embedding.at({a, 0}) - embedding.at({b, 0});
    const float dy = embedding.at({a, 1}) - embedding.at({b, 1});
    return std::sqrt(dx * dx + dy * dy);
  };
  double within = 0.0;
  double between = 0.0;
  int64_t wc = 0;
  int64_t bc = 0;
  for (int64_t i = 0; i < 40; ++i) {
    for (int64_t j = i + 1; j < 40; ++j) {
      if ((i < 20) == (j < 20)) {
        within += dist(i, j);
        ++wc;
      } else {
        between += dist(i, j);
        ++bc;
      }
    }
  }
  EXPECT_LT(within / wc, 0.5 * between / bc);
}

TEST(TsneTest, DeterministicPerSeed) {
  Tensor points = TwoBlobs(18, 3);
  analysis::TsneConfig config;
  config.iterations = 100;
  Tensor e1 = analysis::Tsne(points, config);
  Tensor e2 = analysis::Tsne(points, config);
  for (int64_t i = 0; i < e1.numel(); ++i) {
    EXPECT_EQ(e1.data()[i], e2.data()[i]);
  }
}

TEST(TsneTest, EmbeddingIsCentered) {
  Tensor points = TwoBlobs(18, 4);
  analysis::TsneConfig config;
  config.iterations = 100;
  Tensor embedding = analysis::Tsne(points, config);
  for (int64_t d = 0; d < 2; ++d) {
    double mean = 0.0;
    for (int64_t i = 0; i < 36; ++i) mean += embedding.at({i, d});
    EXPECT_NEAR(mean / 36.0, 0.0, 1e-3);
  }
}

// ---------------------------------------------------------------------------
// k-means (Figure 11 machinery)
// ---------------------------------------------------------------------------

TEST(KmeansTest, RecoversObviousClusters) {
  Tensor points = TwoBlobs(25, 5);
  Rng rng(6);
  analysis::KmeansResult result = analysis::Kmeans(points, 2, rng);
  ASSERT_EQ(result.assignments.size(), 50u);
  // All points of a blob share a label, and the blobs differ.
  const int label0 = result.assignments[0];
  for (int64_t i = 1; i < 25; ++i) EXPECT_EQ(result.assignments[i], label0);
  const int label1 = result.assignments[25];
  EXPECT_NE(label0, label1);
  for (int64_t i = 26; i < 50; ++i) EXPECT_EQ(result.assignments[i], label1);
}

TEST(KmeansTest, CentroidsNearBlobCenters) {
  Tensor points = TwoBlobs(25, 7);
  Rng rng(8);
  analysis::KmeansResult result = analysis::Kmeans(points, 2, rng);
  std::set<float> signs;
  for (int c = 0; c < 2; ++c) {
    const float v = result.centroids.at({c, 0});
    EXPECT_NEAR(std::fabs(v), 6.0f, 0.6f);
    signs.insert(v > 0 ? 1.0f : -1.0f);
  }
  EXPECT_EQ(signs.size(), 2u);
}

TEST(KmeansTest, KEqualsNGivesZeroInertia) {
  Rng data_rng(9);
  Tensor points = Tensor::Randn({5, 3}, data_rng);
  Rng rng(10);
  analysis::KmeansResult result = analysis::Kmeans(points, 5, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-6);
}

TEST(KmeansTest, SingleClusterCentroidIsMean) {
  Rng data_rng(11);
  Tensor points = Tensor::Randn({40, 2}, data_rng);
  Rng rng(12);
  analysis::KmeansResult result = analysis::Kmeans(points, 1, rng);
  for (int64_t d = 0; d < 2; ++d) {
    double mean = 0.0;
    for (int64_t i = 0; i < 40; ++i) mean += points.at({i, d});
    EXPECT_NEAR(result.centroids.at({0, d}), mean / 40.0, 1e-4);
  }
}

TEST(KmeansTest, InertiaDecreasesWithMoreClusters) {
  Tensor points = TwoBlobs(20, 13);
  Rng rng1(14);
  Rng rng2(14);
  const double inertia2 = analysis::Kmeans(points, 2, rng1).inertia;
  const double inertia4 = analysis::Kmeans(points, 4, rng2).inertia;
  EXPECT_LE(inertia4, inertia2 + 1e-9);
}

// ---------------------------------------------------------------------------
// Heatmap / CSV (Figure 12 machinery)
// ---------------------------------------------------------------------------

TEST(HeatmapTest, AsciiDimensionsAndGlyphs) {
  Tensor m = Tensor::FromVector({2, 3}, {0, 0.5, 1, 1, 0.5, 0});
  const std::string art = analysis::RenderAsciiHeatmap(m);
  // Two lines of three glyphs.
  ASSERT_EQ(art.size(), 8u);  // 2*(3+1)
  EXPECT_EQ(art[3], '\n');
  EXPECT_EQ(art[0], ' ');   // minimum -> lightest glyph
  EXPECT_EQ(art[2], '@');   // maximum -> darkest glyph
  EXPECT_EQ(art[4], '@');
}

TEST(HeatmapTest, ConstantMatrixDoesNotCrash) {
  Tensor m = Tensor::Full({3, 3}, 2.0f);
  const std::string art = analysis::RenderAsciiHeatmap(m);
  EXPECT_EQ(art.size(), 12u);
}

TEST(CsvTest, WritesMatrixReadableBack) {
  Tensor m = Tensor::FromVector({2, 2}, {1.5f, -2.0f, 0.0f, 42.0f});
  const std::string path = ::testing::TempDir() + "/heatmap_test.csv";
  ASSERT_TRUE(analysis::WriteCsv(path, m).ok());
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_EQ(line1, "1.5,-2");
  EXPECT_EQ(line2, "0,42");
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsRank3) {
  Tensor m = Tensor::Zeros({2, 2, 2});
  EXPECT_FALSE(analysis::WriteCsv("/tmp/x.csv", m).ok());
}

TEST(CsvTest, FailsOnUnwritablePath) {
  Tensor m = Tensor::Zeros({2, 2});
  EXPECT_EQ(analysis::WriteCsv("/nonexistent-dir/x.csv", m).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace enhancenet
