#include <cmath>

#include "autograd/ops.h"
#include "graph/adjacency.h"
#include "graph/graph_conv.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;
using ::enhancenet::testing::ExpectGradientsMatch;
using ::enhancenet::testing::ExpectTensorNear;

Tensor SimpleDistances() {
  // 3 entities on a line: 0 --1km-- 1 --1km-- 2.
  return Tensor::FromVector({3, 3}, {0, 1, 2,  //
                                     1, 0, 1,  //
                                     2, 1, 0});
}

// ---------------------------------------------------------------------------
// Adjacency construction (Sec. VI-A recipe)
// ---------------------------------------------------------------------------

TEST(AdjacencyTest, GaussianKernelDiagonalIsOne) {
  Tensor a = graph::GaussianKernelAdjacency(SimpleDistances());
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a.at({i, i}), 1.0f);
}

TEST(AdjacencyTest, GaussianKernelDecreasesWithDistance) {
  Tensor a = graph::GaussianKernelAdjacency(SimpleDistances());
  EXPECT_GT(a.at({0, 1}), a.at({0, 2}));
  EXPECT_GT(a.at({0, 0}), a.at({0, 1}));
}

TEST(AdjacencyTest, ThresholdZeroesWeakEdges) {
  // With a very high threshold everything but the diagonal vanishes.
  Tensor a = graph::GaussianKernelAdjacency(SimpleDistances(), 0.99f);
  EXPECT_FLOAT_EQ(a.at({0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(a.at({0, 0}), 1.0f);
}

TEST(AdjacencyTest, AsymmetricDistancesGiveAsymmetricAdjacency) {
  Tensor dist = Tensor::FromVector({2, 2}, {0, 1, 3, 0});
  Tensor a = graph::GaussianKernelAdjacency(dist);
  EXPECT_GT(a.at({0, 1}), a.at({1, 0}));
}

TEST(AdjacencyTest, RowNormalizeRowsSumToOne) {
  Tensor a = graph::GaussianKernelAdjacency(SimpleDistances());
  Tensor p = graph::RowNormalize(a);
  for (int64_t i = 0; i < 3; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 3; ++j) row += p.at({i, j});
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(AdjacencyTest, RowNormalizeKeepsZeroRows) {
  Tensor a = Tensor::Zeros({2, 2});
  a.at({0, 1}) = 2.0f;
  Tensor p = graph::RowNormalize(a);
  EXPECT_FLOAT_EQ(p.at({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(p.at({1, 0}), 0.0f);
  EXPECT_FLOAT_EQ(p.at({1, 1}), 0.0f);
}

TEST(AdjacencyTest, SymNormalizeIsSymmetricWithSelfLoops) {
  Tensor a = graph::GaussianKernelAdjacency(SimpleDistances());
  Tensor s = graph::SymNormalize(a);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_GT(s.at({i, i}), 0.0f);  // self loop added
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(s.at({i, j}), s.at({j, i}), 1e-5f);
    }
  }
}

TEST(AdjacencyTest, DiffusionSupportsCountAndStochasticity) {
  Tensor a = graph::GaussianKernelAdjacency(SimpleDistances());
  const auto supports = graph::DiffusionSupports(a, 2);
  ASSERT_EQ(supports.size(), 4u);  // fwd, fwd², bwd, bwd²
  for (const Tensor& support : supports) {
    for (int64_t i = 0; i < 3; ++i) {
      float row = 0.0f;
      for (int64_t j = 0; j < 3; ++j) row += support.at({i, j});
      EXPECT_NEAR(row, 1.0f, 1e-4f);  // powers of row-stochastic stay so
    }
  }
}

TEST(AdjacencyTest, SecondHopIsMatrixSquare) {
  Tensor a = graph::GaussianKernelAdjacency(SimpleDistances());
  const auto supports = graph::DiffusionSupports(a, 2);
  ExpectTensorNear(supports[1], ops::MatMul(supports[0], supports[0]), 1e-5f);
  ExpectTensorNear(supports[3], ops::MatMul(supports[2], supports[2]), 1e-5f);
}

TEST(AdjacencyTest, MatSquare) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 1, 0, 1});
  ExpectTensorNear(graph::MatSquare(a),
                   Tensor::FromVector({2, 2}, {1, 2, 0, 1}));
}

// ---------------------------------------------------------------------------
// Graph convolution
// ---------------------------------------------------------------------------

TEST(GraphConvTest, StaticAdjacencyAggregatesNeighbours) {
  // Adjacency that copies entity 1's features into entity 0.
  Tensor adj = Tensor::Zeros({2, 2});
  adj.at({0, 1}) = 1.0f;
  ag::Variable a = ag::Variable::Leaf(adj, false);
  Tensor xt = Tensor::FromVector({1, 2, 2}, {1, 2, 3, 4});
  ag::Variable x = ag::Variable::Leaf(xt, false);
  Tensor out = graph::ApplyAdjacency(a, x).data();
  EXPECT_FLOAT_EQ(out.at({0, 0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(out.at({0, 0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(out.at({0, 1, 0}), 0.0f);
}

TEST(GraphConvTest, DynamicAdjacencyMatchesPerSampleStatic) {
  Rng rng(21);
  const int64_t batch = 3;
  const int64_t n = 4;
  const int64_t c = 5;
  Tensor x = Tensor::Randn({batch, n, c}, rng);
  Tensor adj = Tensor::Randn({n, n}, rng);
  // Dynamic tensor that repeats the same adjacency per sample.
  Tensor dyn({batch, n, n});
  for (int64_t b = 0; b < batch; ++b) {
    std::copy(adj.data(), adj.data() + n * n, dyn.data() + b * n * n);
  }
  Tensor out_static = graph::ApplyAdjacency(ag::Variable::Leaf(adj, false),
                                            ag::Variable::Leaf(x, false))
                          .data();
  Tensor out_dynamic = graph::ApplyAdjacency(ag::Variable::Leaf(dyn, false),
                                             ag::Variable::Leaf(x, false))
                           .data();
  ExpectTensorNear(out_static, out_dynamic, 1e-4f);
}

TEST(GraphConvTest, MixSupportsConcatenatesSelfFirst) {
  Rng rng(22);
  Tensor x = Tensor::Randn({2, 3, 4}, rng);
  Tensor adj = Tensor::Randn({3, 3}, rng);
  ag::Variable mixed = graph::MixSupports(
      ag::Variable::Leaf(x, false), {ag::Variable::Leaf(adj, false)}, true);
  EXPECT_EQ(ShapeToString(mixed.shape()), "[2, 3, 8]");
  ExpectTensorNear(ops::Slice(mixed.data(), 2, 0, 4), x, 1e-6f);
}

TEST(GraphConvTest, MixSupportsWithoutSelf) {
  Rng rng(23);
  Tensor x = Tensor::Randn({2, 3, 4}, rng);
  Tensor adj = Tensor::Randn({3, 3}, rng);
  ag::Variable mixed = graph::MixSupports(
      ag::Variable::Leaf(x, false), {ag::Variable::Leaf(adj, false)}, false);
  EXPECT_EQ(ShapeToString(mixed.shape()), "[2, 3, 4]");
}

TEST(GraphConvLayerTest, EquationTwelveKnownValues) {
  // Z = A·X·S with identity-ish weights: verify by direct computation.
  Rng rng(24);
  graph::GraphConvLayer layer(1, 2, 3, rng);
  Tensor x = Tensor::Randn({2, 3, 2}, rng);
  Tensor adj = Tensor::Randn({3, 3}, rng);
  ag::Variable out = layer.Forward(ag::Variable::Leaf(x, false),
                                   {ag::Variable::Leaf(adj, false)});
  EXPECT_EQ(ShapeToString(out.shape()), "[2, 3, 3]");

  // Manual: mixed = [x ‖ A·x]; out = mixed @ W + b.
  const auto params = layer.Parameters();
  const Tensor w = params[0].data();
  const Tensor b = params[1].data();
  Tensor ax = graph::ApplyAdjacency(ag::Variable::Leaf(adj, false),
                                    ag::Variable::Leaf(x, false))
                  .data();
  Tensor mixed = ops::Concat({x, ax}, -1).Reshape({6, 4});
  Tensor expect = ops::Add(ops::MatMul(mixed, w), b).Reshape({2, 3, 3});
  ExpectTensorNear(out.data(), expect, 1e-4f);
}

TEST(GraphConvLayerTest, GradientsFlowToWeights) {
  Rng rng(25);
  graph::GraphConvLayer layer(1, 2, 2, rng);
  Tensor x = Tensor::Randn({1, 3, 2}, rng);
  Tensor adj = Tensor::Randn({3, 3}, rng);
  auto params = layer.Parameters();
  ExpectGradientsMatch(
      [&] {
        return ag::SumAll(ag::Square(
            layer.Forward(ag::Variable::Leaf(x, false),
                          {ag::Variable::Leaf(adj, false)})));
      },
      params, 1e-2f, 3e-2f);
}

TEST(GraphConvLayerTest, IsolatedEntityOnlySeesItself) {
  Rng rng(26);
  graph::GraphConvLayer layer(1, 1, 1, rng);
  // Entity 2 has no incoming edges.
  Tensor adj = Tensor::Zeros({3, 3});
  adj.at({0, 1}) = 1.0f;
  adj.at({1, 0}) = 1.0f;
  Tensor x1 = Tensor::FromVector({1, 3, 1}, {1, 2, 3});
  Tensor x2 = Tensor::FromVector({1, 3, 1}, {5, 9, 3});  // entity 2 unchanged
  Tensor out1 = layer.Forward(ag::Variable::Leaf(x1, false),
                              {ag::Variable::Leaf(adj, false)})
                    .data();
  Tensor out2 = layer.Forward(ag::Variable::Leaf(x2, false),
                              {ag::Variable::Leaf(adj, false)})
                    .data();
  EXPECT_NEAR(out1.at({0, 2, 0}), out2.at({0, 2, 0}), 1e-5f);
  EXPECT_NE(out1.at({0, 0, 0}), out2.at({0, 0, 0}));
}

}  // namespace
}  // namespace enhancenet
