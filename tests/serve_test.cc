#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "gtest/gtest.h"
#include "io/checkpoint.h"
#include "obs/metrics.h"
#include "runtime/workspace.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;

constexpr int64_t kEntities = 8;
constexpr int64_t kHistory = 12;
constexpr int64_t kHorizon = 12;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

models::ModelSizing TinySizing() {
  models::ModelSizing sizing;
  sizing.rnn_hidden = 8;
  sizing.rnn_hidden_dfgn = 6;
  sizing.tcn_channels = 6;
  sizing.tcn_channels_dfgn = 4;
  sizing.skip_channels = 6;
  sizing.end_channels = 8;
  sizing.memory_dim = 6;
  sizing.dfgn_hidden1 = 6;
  sizing.dfgn_hidden2 = 3;
  return sizing;
}

/// Shared fixture: a trained-free (perturbed-from-init) D-GRNN checkpoint
/// plus the dataset, scaler, and eval-path batch it should be served with.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Serve metrics are process-global (shared "serve.*" registry names);
    // zero them so each test sees exact counts.
    obs::Registry::Global().ResetForTest();
    data_ = data::MakeEbLike(kEntities, 2, /*seed=*/5);
    adjacency_ = graph::GaussianKernelAdjacency(data_.distances);
    scaler_.Fit(data_.series, 0, data_.num_steps() * 7 / 10);
    scaled_ = scaler_.Transform(data_.series);

    Rng rng(11);
    model_ = models::MakeModel("D-GRNN", kEntities, 1, adjacency_,
                               TinySizing(), rng);
    // Perturb away from init so checkpoint loading is observable.
    Rng noise(12);
    for (auto& p : model_->Parameters()) {
      ops::AxpyInPlace(0.1f, Tensor::Randn(p.shape(), noise),
                       &p.mutable_data());
    }
    checkpoint_path_ = TempPath("serve_model.encp");
    io::CheckpointMeta meta;
    meta.model_name = "D-GRNN";
    meta.num_entities = kEntities;
    meta.in_channels = 1;
    meta.history = kHistory;
    meta.horizon = kHorizon;
    ASSERT_TRUE(io::SaveCheckpoint(checkpoint_path_, *model_, meta).ok());
  }

  void TearDown() override { std::remove(checkpoint_path_.c_str()); }

  serve::ModelSpec Spec() const {
    serve::ModelSpec spec;
    spec.model_name = "D-GRNN";
    spec.num_entities = kEntities;
    spec.in_channels = 1;
    spec.target_channel = 0;
    spec.adjacency = adjacency_;
    spec.sizing = TinySizing();
    spec.checkpoint_path = checkpoint_path_;
    return spec;
  }

  serve::SessionOptions Options() const {
    serve::SessionOptions options;
    options.seed = 999;  // different from the training seed on purpose
    return options;
  }

  std::unique_ptr<serve::InferenceSession> MakeSession() {
    std::unique_ptr<serve::InferenceSession> session;
    const Status status =
        serve::InferenceSession::Create(Spec(), Options(), scaler_, &session);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return session;
  }

  /// A raw (unscaled) [N, H, C] history window ending at absolute time `t`.
  Tensor RawWindow(int64_t t) const {
    Tensor window(Shape{kEntities, kHistory, 1});
    for (int64_t i = 0; i < kEntities; ++i) {
      for (int64_t h = 0; h < kHistory; ++h) {
        window.at({i, h, 0}) =
            data_.series.at({i, t - kHistory + 1 + h, 0});
      }
    }
    return window;
  }

  /// The training-time eval path: graph-building Predict on the scaled
  /// window, then the scaler's inverse transform. Returns [N, F] real units.
  Tensor EvalPathForecast(const Tensor& raw_window) {
    Tensor scaled = scaler_.Transform(raw_window)
                        .Reshape({1, kEntities, kHistory, 1});
    model_->SetTraining(false);
    Rng rng(14);
    Tensor pred = model_->Predict(scaled, rng).data();  // [1,N,F]
    return scaler_.InverseTarget(pred, 0).Reshape({kEntities, kHorizon});
  }

  data::CtsData data_;
  Tensor adjacency_;
  Tensor scaled_;
  data::StandardScaler scaler_;
  std::unique_ptr<models::ForecastingModel> model_;
  std::string checkpoint_path_;
};

// ---------------------------------------------------------------------------
// Checkpoint round trip: save -> fresh session -> bitwise-equal predictions
// vs the Trainer's graph-building eval path.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, SessionMatchesEvalPathBitwise) {
  auto session = MakeSession();
  ASSERT_NE(session, nullptr);

  const Tensor raw = RawWindow(/*t=*/100);
  const Tensor reference = EvalPathForecast(raw);

  serve::PredictRequest request;
  request.history = raw;
  serve::PredictResponse response;
  const Status status = session->Predict(request, &response);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(ShapeToString(response.forecast.shape()),
            ShapeToString(reference.shape()));
  for (int64_t i = 0; i < reference.numel(); ++i) {
    // Bitwise equality: the no-grad forward runs the exact same kernels.
    EXPECT_EQ(response.forecast.data()[i], reference.data()[i])
        << "element " << i;
  }
  EXPECT_GT(response.latency_ms, 0.0);
}

TEST_F(ServeTest, BatchedRequestMatchesSingleRequests) {
  auto session = MakeSession();
  ASSERT_NE(session, nullptr);

  // Stack three windows into one [B,N,H,C] request.
  std::vector<Tensor> windows = {RawWindow(50), RawWindow(80), RawWindow(110)};
  std::vector<Tensor> lifted;
  for (const Tensor& w : windows) {
    lifted.push_back(w.Reshape({1, kEntities, kHistory, 1}));
  }
  serve::PredictRequest batched;
  batched.history = ops::Concat(lifted, 0);
  serve::PredictResponse batched_response;
  ASSERT_TRUE(session->Predict(batched, &batched_response).ok());
  ASSERT_EQ(ShapeToString(batched_response.forecast.shape()), "[3, 8, 12]");

  for (size_t b = 0; b < windows.size(); ++b) {
    serve::PredictRequest single;
    single.history = windows[b];
    serve::PredictResponse single_response;
    ASSERT_TRUE(session->Predict(single, &single_response).ok());
    const Tensor slice = ops::Slice(batched_response.forecast, 0,
                                    static_cast<int64_t>(b), 1)
                             .Reshape({kEntities, kHorizon});
    for (int64_t i = 0; i < slice.numel(); ++i) {
      EXPECT_EQ(slice.data()[i], single_response.forecast.data()[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Malformed input never aborts: every failure mode surfaces as Status.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, UnknownModelNameIsStatusNotAbort) {
  serve::ModelSpec spec = Spec();
  spec.model_name = "D-GRNN-TYPO";
  spec.checkpoint_path.clear();  // fail on the name, not the meta check
  std::unique_ptr<serve::InferenceSession> session;
  const Status status =
      serve::InferenceSession::Create(spec, Options(), scaler_, &session);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("D-GRNN-TYPO"), std::string::npos);
  EXPECT_EQ(session, nullptr);
}

TEST_F(ServeTest, MissingCheckpointIsStatus) {
  serve::ModelSpec spec = Spec();
  spec.checkpoint_path = "/nonexistent/never.encp";
  std::unique_ptr<serve::InferenceSession> session;
  EXPECT_EQ(serve::InferenceSession::Create(spec, Options(), scaler_,
                                            &session)
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ServeTest, WrongArchitectureCheckpointIsStatus) {
  serve::ModelSpec spec = Spec();
  spec.model_name = "GRNN";  // checkpoint was saved from D-GRNN
  std::unique_ptr<serve::InferenceSession> session;
  const Status status =
      serve::InferenceSession::Create(spec, Options(), scaler_, &session);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // The metadata precheck names the file's own identity, so the error
  // reports the mismatch before any parameter shapes are compared.
  EXPECT_NE(status.message().find("was saved from model 'D-GRNN'"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("'GRNN'"), std::string::npos);
}

TEST_F(ServeTest, GraphModelWithoutAdjacencyIsStatus) {
  serve::ModelSpec spec = Spec();
  spec.adjacency = Tensor();
  spec.checkpoint_path.clear();
  std::unique_ptr<serve::InferenceSession> session;
  EXPECT_EQ(serve::InferenceSession::Create(spec, Options(), scaler_,
                                            &session)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, BadTargetChannelIsStatus) {
  serve::ModelSpec spec = Spec();
  spec.target_channel = 7;
  std::unique_ptr<serve::InferenceSession> session;
  EXPECT_EQ(serve::InferenceSession::Create(spec, Options(), scaler_,
                                            &session)
                .code(),
            StatusCode::kInvalidArgument);
}

// The deprecated SessionConfig shim (spec + options in one struct) keeps
// old call sites compiling for one release and must serve identically.
TEST_F(ServeTest, DeprecatedSessionConfigShimStillServes) {
  serve::SessionConfig config;
  static_cast<serve::ModelSpec&>(config) = Spec();
  config.seed = 999;
  std::unique_ptr<serve::InferenceSession> session;
  const Status status =
      serve::InferenceSession::Create(config, scaler_, &session);
  ASSERT_TRUE(status.ok()) << status.ToString();

  auto reference = MakeSession();
  serve::PredictRequest request;
  request.history = RawWindow(85);
  serve::PredictResponse via_shim, via_spec;
  ASSERT_TRUE(session->Predict(request, &via_shim).ok());
  ASSERT_TRUE(reference->Predict(request, &via_spec).ok());
  for (int64_t i = 0; i < via_spec.forecast.numel(); ++i) {
    EXPECT_EQ(via_shim.forecast.data()[i], via_spec.forecast.data()[i]);
  }
}

TEST_F(ServeTest, WrongRankIsRejected) {
  auto session = MakeSession();
  serve::PredictRequest request;
  request.history = Tensor::Zeros({kEntities, kHistory});  // rank 2
  serve::PredictResponse response;
  EXPECT_EQ(session->Predict(request, &response).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->stats().rejected, 1);
}

TEST_F(ServeTest, WrongShapeIsRejected) {
  auto session = MakeSession();
  serve::PredictRequest request;
  request.history = Tensor::Zeros({kEntities + 1, kHistory, 1});
  serve::PredictResponse response;
  const Status status = session->Predict(request, &response);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("N=8"), std::string::npos);
}

TEST_F(ServeTest, NanHistoryIsRejected) {
  auto session = MakeSession();
  Tensor bad = RawWindow(60);
  bad.at({2, 3, 0}) = std::nanf("");
  serve::PredictRequest request;
  request.history = bad;
  serve::PredictResponse response;
  EXPECT_EQ(session->Predict(request, &response).code(),
            StatusCode::kInvalidArgument);

  Tensor inf = RawWindow(60);
  inf.at({0, 0, 0}) = std::numeric_limits<float>::infinity();
  request.history = inf;
  EXPECT_EQ(session->Predict(request, &response).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->stats().rejected, 2);
}

// ---------------------------------------------------------------------------
// NoGradGuard: session forwards never allocate graph bookkeeping.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, NoGradGuardSkipsGraphConstruction) {
  // Direct op-level contract: with a guard active, an op on a
  // requires_grad input returns a detached leaf with no parents and no
  // backward closure.
  ag::Variable w = ag::Variable::Leaf(Tensor::Ones({3, 3}), true);
  ag::Variable x = ag::Variable::Leaf(Tensor::Ones({3, 3}), false);
  {
    ag::NoGradGuard no_grad;
    EXPECT_FALSE(ag::GradMode::IsEnabled());
    ag::Variable y = ag::MatMul(x, w);
    EXPECT_TRUE(y.node()->is_leaf);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_TRUE(y.node()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(y.node()->backward_fn));
  }
  EXPECT_TRUE(ag::GradMode::IsEnabled());

  // Model-level contract: the variable coming out of an eval-mode forward
  // under the guard carries no graph either.
  model_->SetTraining(false);
  Tensor scaled = scaler_.Transform(RawWindow(90))
                      .Reshape({1, kEntities, kHistory, 1});
  Rng rng(3);
  {
    ag::NoGradGuard no_grad;
    ag::Variable pred = model_->Predict(scaled, rng);
    EXPECT_TRUE(pred.node()->is_leaf);
    EXPECT_TRUE(pred.node()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(pred.node()->backward_fn));
  }
  // Without the guard the same forward builds a graph (params require
  // grad), which is exactly what serving avoids.
  ag::Variable graphed = model_->Predict(scaled, rng);
  EXPECT_FALSE(graphed.node()->is_leaf);
  EXPECT_FALSE(graphed.node()->parents.empty());
}

TEST_F(ServeTest, NoGradGuardNestsAndRestores) {
  EXPECT_TRUE(ag::GradMode::IsEnabled());
  {
    ag::NoGradGuard outer;
    {
      ag::NoGradGuard inner;
      EXPECT_FALSE(ag::GradMode::IsEnabled());
    }
    EXPECT_FALSE(ag::GradMode::IsEnabled());
  }
  EXPECT_TRUE(ag::GradMode::IsEnabled());
}

// ---------------------------------------------------------------------------
// Concurrency: 4 threads hammering one session agree with the serial
// reference and the counters stay consistent.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ConcurrentPredictIsConsistent) {
  auto session = MakeSession();
  ASSERT_NE(session, nullptr);
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 8;

  std::vector<Tensor> windows;
  std::vector<Tensor> references;
  for (int i = 0; i < kThreads; ++i) {
    windows.push_back(RawWindow(40 + 13 * i));
    serve::PredictRequest request;
    request.history = windows.back();
    serve::PredictResponse response;
    ASSERT_TRUE(session->Predict(request, &response).ok());
    references.push_back(response.forecast);
  }

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        serve::PredictRequest request;
        request.history = windows[static_cast<size_t>(t)];
        serve::PredictResponse response;
        if (!session->Predict(request, &response).ok()) {
          ++mismatches[static_cast<size_t>(t)];
          continue;
        }
        const Tensor& expect = references[static_cast<size_t>(t)];
        for (int64_t i = 0; i < expect.numel(); ++i) {
          if (response.forecast.data()[i] != expect.data()[i]) {
            ++mismatches[static_cast<size_t>(t)];
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);

  const serve::Stats stats = session->stats();
  EXPECT_EQ(stats.windows, kThreads + kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.forwards, kThreads + kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GT(stats.total_latency_ms, 0.0);
  EXPECT_GE(stats.max_latency_ms, stats.mean_latency_ms());
}

// ---------------------------------------------------------------------------
// MicroBatcher
// ---------------------------------------------------------------------------

TEST_F(ServeTest, MicroBatcherMatchesDirectSession) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 1;  // degenerate: every request is its own batch
  serve::MicroBatcher batcher(session.get(), bc);

  const Tensor raw = RawWindow(70);
  serve::PredictRequest request;
  request.history = raw;
  serve::PredictResponse direct;
  ASSERT_TRUE(session->Predict(request, &direct).ok());
  serve::PredictResponse via_batcher;
  ASSERT_TRUE(batcher.Predict(request, &via_batcher).ok());
  for (int64_t i = 0; i < direct.forecast.numel(); ++i) {
    EXPECT_EQ(via_batcher.forecast.data()[i], direct.forecast.data()[i]);
  }
  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, 1);
  EXPECT_EQ(stats.forwards, 1);
}

TEST_F(ServeTest, MicroBatcherCoalescesConcurrentRequests) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 4;
  bc.max_wait_ms = 2000.0;  // generous so all four threads join one batch
  serve::MicroBatcher batcher(session.get(), bc);

  constexpr int kThreads = 4;
  std::vector<Tensor> windows;
  std::vector<Tensor> references;
  for (int t = 0; t < kThreads; ++t) {
    windows.push_back(RawWindow(45 + 17 * t));
    serve::PredictRequest request;
    request.history = windows.back();
    serve::PredictResponse response;
    ASSERT_TRUE(session->Predict(request, &response).ok());
    references.push_back(response.forecast);
  }

  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::PredictRequest request;
      request.history = windows[static_cast<size_t>(t)];
      serve::PredictResponse response;
      if (!batcher.Predict(request, &response).ok()) {
        ++failures[static_cast<size_t>(t)];
        return;
      }
      const Tensor& expect = references[static_cast<size_t>(t)];
      for (int64_t i = 0; i < expect.numel(); ++i) {
        if (response.forecast.data()[i] != expect.data()[i]) {
          ++failures[static_cast<size_t>(t)];
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);

  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, kThreads);
  // Coalescing must have happened at least partially; with the generous
  // window all four normally land in a single forward.
  EXPECT_LE(stats.forwards, kThreads);
  EXPECT_GE(stats.forwards, 1);
  EXPECT_GE(stats.mean_batch_occupancy(), 1.0);
}

TEST_F(ServeTest, MicroBatcherRejectsWithoutPoisoningBatch) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 4;
  bc.max_wait_ms = 0.0;
  serve::MicroBatcher batcher(session.get(), bc);

  serve::PredictRequest bad;
  bad.history = Tensor::Zeros({2, kEntities, kHistory, 1});  // rank 4
  serve::PredictResponse response;
  EXPECT_EQ(batcher.Predict(bad, &response).code(),
            StatusCode::kInvalidArgument);

  Tensor nan_window = RawWindow(55);
  nan_window.at({1, 1, 0}) = std::nanf("");
  bad.history = nan_window;
  EXPECT_EQ(batcher.Predict(bad, &response).code(),
            StatusCode::kInvalidArgument);

  // A good request after the rejects still works.
  serve::PredictRequest good;
  good.history = RawWindow(55);
  ASSERT_TRUE(batcher.Predict(good, &response).ok());
  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.rejected, 2);
  EXPECT_EQ(stats.windows, 1);
}

// ---------------------------------------------------------------------------
// Registry-backed serve metrics: occupancy/latency histograms under a full
// batch, and under a poisoned batch whose forward fails.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, MicroBatcherFullBatchRecordsOccupancyAndLatency) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 4;
  bc.max_wait_ms = 2000.0;  // generous so all four threads share one forward
  serve::MicroBatcher batcher(session.get(), bc);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::PredictRequest request;
      request.history = RawWindow(45 + 17 * t);
      serve::PredictResponse response;
      if (!batcher.Predict(request, &response).ok()) {
        ++failures[static_cast<size_t>(t)];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) ASSERT_EQ(failures[t], 0);

  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram* occupancy = registry.GetHistogram(
      "serve.batcher.batch_occupancy", obs::OccupancyBuckets());
  obs::Histogram* latency = registry.GetHistogram(
      "serve.batcher.latency_ms", obs::LatencyBucketsMs());

  // One observation per forward; total occupancy mass equals the windows
  // served. With the generous wait this is normally a single forward of 4.
  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(occupancy->Count(), stats.forwards);
  EXPECT_EQ(static_cast<int64_t>(occupancy->Sum()), kThreads);
  EXPECT_GE(occupancy->Max(), 1.0);
  EXPECT_LE(occupancy->Max(), 4.0);

  // One latency observation per served window, all mass in finite buckets.
  EXPECT_EQ(latency->Count(), kThreads);
  EXPECT_GT(latency->Sum(), 0.0);
  int64_t bucket_total = 0;
  for (const int64_t c : latency->BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads);
}

/// Failing-forward test double: validation passes (so requests join a
/// batch), but the batched forward itself errors — the "poisoned batch"
/// case a real model hits on e.g. resource exhaustion.
class FailingSession : public serve::InferenceSession {
 public:
  FailingSession(serve::ModelSpec spec, serve::SessionOptions options,
                 std::unique_ptr<models::ForecastingModel> model,
                 const data::StandardScaler& scaler)
      : InferenceSession(std::move(spec), std::move(options),
                         std::move(model), scaler) {}

  Status Predict(const serve::PredictRequest&,
                 serve::PredictResponse*) const override {
    return Status::Internal("injected forward failure");
  }
};

TEST_F(ServeTest, MicroBatcherPoisonedBatchCountsForwardErrors) {
  Rng rng(21);
  auto model = models::MakeModel("D-GRNN", kEntities, 1, adjacency_,
                                 TinySizing(), rng);
  FailingSession session(Spec(), Options(), std::move(model), scaler_);

  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 2;
  bc.max_wait_ms = 2000.0;
  serve::MicroBatcher batcher(&session, bc);

  constexpr int kThreads = 2;
  std::vector<std::thread> threads;
  std::vector<StatusCode> codes(kThreads, StatusCode::kOk);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::PredictRequest request;
      request.history = RawWindow(60 + 9 * t);
      serve::PredictResponse response;
      codes[static_cast<size_t>(t)] = batcher.Predict(request, &response).code();
    });
  }
  for (auto& thread : threads) thread.join();
  // Every member of the poisoned batch gets the forward's error, and nobody
  // hangs waiting for results that will never come.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(codes[t], StatusCode::kInternal);
  }

  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, 0);         // nothing was served
  EXPECT_EQ(stats.rejected, 0);        // validation passed
  EXPECT_GE(stats.forwards, 1);
  EXPECT_EQ(stats.forward_errors, stats.forwards);

  // Occupancy is still observed for failed forwards (capacity was spent),
  // and so is latency: requests riding a failed forward observe their wall
  // time too, otherwise p99 under partial failure only counts the lucky
  // requests.
  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram* occupancy = registry.GetHistogram(
      "serve.batcher.batch_occupancy", obs::OccupancyBuckets());
  obs::Histogram* latency = registry.GetHistogram(
      "serve.batcher.latency_ms", obs::LatencyBucketsMs());
  EXPECT_EQ(occupancy->Count(), stats.forwards);
  EXPECT_EQ(static_cast<int64_t>(occupancy->Sum()), kThreads);
  EXPECT_EQ(latency->Count(), kThreads);
  EXPECT_EQ(stats.latency_count, kThreads);
  EXPECT_GT(stats.mean_latency_ms(), 0.0);
}

// ---------------------------------------------------------------------------
// Deadline-aware policy: budget-driven flush, fill-driven early flush, the
// max_batch_size=1 fast path, miss accounting, and retired-batch isolation.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, MicroBatcherFlushesOnBudgetNotMaxWait) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 8;
  bc.max_wait_ms = 60000.0;  // fixed-wait policy would sleep a minute here
  serve::MicroBatcher batcher(session.get(), bc);

  serve::PredictRequest request;
  request.history = RawWindow(75);
  request.deadline_ms = 200.0;
  serve::PredictResponse response;
  Stopwatch timer;
  ASSERT_TRUE(batcher.Predict(request, &response).ok());
  // The leader flushed when the request's own budget ran out, not after
  // max_wait_ms (bounds are generous to stay robust on loaded machines).
  EXPECT_LT(timer.ElapsedMillis(), 30000.0);

  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, 1);
  EXPECT_EQ(stats.forwards, 1);
  EXPECT_EQ(stats.flush_budget, 1);
  EXPECT_EQ(stats.flush_full, 0);
}

TEST_F(ServeTest, MicroBatcherDeadlinePolicyFlushesEarlyOnFill) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 4;
  bc.slo_ms = 60000.0;  // huge budget: only a full batch can flush fast
  serve::MicroBatcher batcher(session.get(), bc);

  constexpr int kThreads = 4;
  std::vector<Tensor> windows;
  std::vector<Tensor> references;
  for (int t = 0; t < kThreads; ++t) {
    windows.push_back(RawWindow(45 + 17 * t));
    serve::PredictRequest request;
    request.history = windows.back();
    serve::PredictResponse response;
    ASSERT_TRUE(session->Predict(request, &response).ok());
    references.push_back(response.forecast);
  }

  std::vector<int> failures(kThreads, 0);
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::PredictRequest request;
      request.history = windows[static_cast<size_t>(t)];
      serve::PredictResponse response;
      if (!batcher.Predict(request, &response).ok()) {
        ++failures[static_cast<size_t>(t)];
        return;
      }
      // Bitwise parity batched vs unbatched under the deadline policy.
      const Tensor& expect = references[static_cast<size_t>(t)];
      for (int64_t i = 0; i < expect.numel(); ++i) {
        if (response.forecast.data()[i] != expect.data()[i]) {
          ++failures[static_cast<size_t>(t)];
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
  // Filling the batch flushed it immediately — nobody burned the 60 s
  // budget.
  EXPECT_LT(timer.ElapsedMillis(), 30000.0);

  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, kThreads);
  EXPECT_EQ(stats.forwards, 1);  // budget never expires, so one full batch
  EXPECT_EQ(stats.flush_full, 1);
  EXPECT_EQ(stats.flush_budget, 0);
  EXPECT_EQ(stats.deadline_miss, 0);
}

TEST_F(ServeTest, MicroBatcherSizeOneFastPathMatchesDirect) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 1;  // fast path: no coalescing state at all
  bc.slo_ms = 60000.0;
  serve::MicroBatcher batcher(session.get(), bc);

  Stopwatch timer;
  for (int r = 0; r < 3; ++r) {
    const Tensor raw = RawWindow(70 + 5 * r);
    serve::PredictRequest request;
    request.history = raw;
    serve::PredictResponse direct, via_batcher;
    ASSERT_TRUE(session->Predict(request, &direct).ok());
    ASSERT_TRUE(batcher.Predict(request, &via_batcher).ok());
    for (int64_t i = 0; i < direct.forecast.numel(); ++i) {
      ASSERT_EQ(via_batcher.forecast.data()[i], direct.forecast.data()[i]);
    }
  }
  // The fast path never waits on a budget — three requests with a 60 s SLO
  // complete in forward time.
  EXPECT_LT(timer.ElapsedMillis(), 30000.0);

  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, 3);
  EXPECT_EQ(stats.forwards, 3);
  EXPECT_EQ(stats.flush_full, 3);
  EXPECT_EQ(stats.flush_budget, 0);
}

TEST_F(ServeTest, MicroBatcherCountsDeadlineMisses) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 4;
  serve::MicroBatcher batcher(session.get(), bc);

  serve::PredictRequest request;
  request.history = RawWindow(65);
  request.deadline_ms = 1e-4;  // no forward can beat a 100 ns budget
  serve::PredictResponse response;
  ASSERT_TRUE(batcher.Predict(request, &response).ok());

  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, 1);
  EXPECT_EQ(stats.deadline_miss, 1);
  obs::Histogram* slack = obs::Registry::Global().GetHistogram(
      "serve.batcher.deadline.slack_ms", obs::SlackBucketsMs());
  EXPECT_EQ(slack->Count(), 1);
  EXPECT_LT(slack->Min(), 0.0);  // completed after the deadline
}

TEST_F(ServeTest, MicroBatcherRetiredBatchTakesNoJoiners) {
  auto session = MakeSession();
  serve::MicroBatcherConfig bc;
  bc.max_batch_size = 3;
  bc.slo_ms = 0.5;  // budgets expire constantly, so batches retire mid-race
  serve::MicroBatcher batcher(session.get(), bc);

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 6;
  std::vector<Tensor> windows;
  std::vector<Tensor> references;
  for (int t = 0; t < kThreads; ++t) {
    windows.push_back(RawWindow(40 + 13 * t));
    serve::PredictRequest request;
    request.history = windows.back();
    serve::PredictResponse response;
    ASSERT_TRUE(session->Predict(request, &response).ok());
    references.push_back(response.forecast);
  }

  // Retired batches must never hand a joiner someone else's slice (or no
  // slice at all): every response bitwise-matches its own window's
  // reference, and every request is served exactly once.
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        serve::PredictRequest request;
        request.history = windows[static_cast<size_t>(t)];
        serve::PredictResponse response;
        if (!batcher.Predict(request, &response).ok()) {
          ++failures[static_cast<size_t>(t)];
          continue;
        }
        const Tensor& expect = references[static_cast<size_t>(t)];
        for (int64_t i = 0; i < expect.numel(); ++i) {
          if (response.forecast.data()[i] != expect.data()[i]) {
            ++failures[static_cast<size_t>(t)];
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);

  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.latency_count, kThreads * kRequestsPerThread);
  EXPECT_GE(stats.forwards, 1);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.forward_errors, 0);
}

TEST_F(ServeTest, MicroBatcherSteadyStateServesAllocationFree) {
  // Single-shard allocator: the rounds below spawn a fresh client thread
  // each time, and per-thread shard pinning would otherwise scatter the
  // cached blocks across shards (a geometry artifact, not a serving alloc).
  serve::SessionOptions options = Options();
  options.allocator =
      std::make_shared<TensorAllocator>(/*export_metrics=*/false,
                                        /*num_shards=*/1);
  std::unique_ptr<serve::InferenceSession> session;
  ASSERT_TRUE(serve::InferenceSession::Create(Spec(), options, scaler_,
                                              &session)
                  .ok());
  serve::MicroBatcherConfig bc;
  // A 60 s budget with a ceiling of 2 makes every batch fill with exactly
  // two members before it can flush: deterministic composition, so the
  // staging/slicing path runs with the same shapes every round.
  bc.max_batch_size = 2;
  bc.slo_ms = 60000.0;
  bc.adaptive_ceiling = false;
  serve::MicroBatcher batcher(session.get(), bc);

  const Tensor raw_a = RawWindow(88);
  const Tensor raw_b = RawWindow(92);
  const auto serve_round = [&] {
    std::thread other([&] {
      serve::PredictRequest request;
      request.history = raw_a;
      serve::PredictResponse response;
      EXPECT_TRUE(batcher.Predict(request, &response).ok());
    });
    serve::PredictRequest request;
    request.history = raw_b;
    serve::PredictResponse response;
    EXPECT_TRUE(batcher.Predict(request, &response).ok());
    other.join();
  };
  // Warm the session pool and workspace free lists.
  for (int r = 0; r < 3; ++r) serve_round();

  TensorAllocator& allocator = session->context().allocator();
  runtime::Workspace& workspace = session->context().workspace();
  allocator.ResetStats();
  const runtime::WorkspaceStats w0 = workspace.GetStats();
  for (int r = 0; r < 5; ++r) serve_round();
  const AllocatorStats a1 = allocator.GetStats();
  const runtime::WorkspaceStats w1 = workspace.GetStats();

  // The whole request path — scaling, [B,N,H,C] staging, forward, output
  // slicing, unscaling — recycles pooled storage: zero fresh mallocs per
  // request in steady state.
  EXPECT_GT(a1.requests, 0);
  EXPECT_EQ(a1.pool_misses, 0);
  EXPECT_EQ(a1.oversize, 0);
  EXPECT_EQ(a1.HitRate(), 1.0);
  EXPECT_GT(w1.acquires, w0.acquires);  // staging/slices did go through it
  EXPECT_EQ(w1.acquires - w1.hits, w0.acquires - w0.hits)
      << "workspace took a fresh block in steady state";
  const serve::Stats stats = batcher.stats();
  EXPECT_EQ(stats.windows, 16);
  EXPECT_EQ(stats.forwards, 8);  // every batch filled with two members
}

// ---------------------------------------------------------------------------
// Scaled-input/scaled-output request flags
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ScaledFlagsRoundTrip) {
  auto session = MakeSession();
  const Tensor raw = RawWindow(95);

  // scaled_input: feeding the pre-scaled window gives the same forecast.
  serve::PredictRequest raw_request;
  raw_request.history = raw;
  serve::PredictResponse from_raw;
  ASSERT_TRUE(session->Predict(raw_request, &from_raw).ok());

  serve::PredictRequest scaled_request;
  scaled_request.history = scaler_.Transform(raw);
  scaled_request.scaled_input = true;
  serve::PredictResponse from_scaled;
  ASSERT_TRUE(session->Predict(scaled_request, &from_scaled).ok());
  for (int64_t i = 0; i < from_raw.forecast.numel(); ++i) {
    EXPECT_EQ(from_raw.forecast.data()[i], from_scaled.forecast.data()[i]);
  }

  // scaled_output: returned scaled units invert to the real-unit forecast.
  serve::PredictRequest scaled_out = raw_request;
  scaled_out.scaled_output = true;
  serve::PredictResponse scaled_response;
  ASSERT_TRUE(session->Predict(scaled_out, &scaled_response).ok());
  const Tensor inverted =
      scaler_.InverseTarget(scaled_response.forecast, 0);
  for (int64_t i = 0; i < from_raw.forecast.numel(); ++i) {
    EXPECT_EQ(from_raw.forecast.data()[i], inverted.data()[i]);
  }
}

}  // namespace
}  // namespace enhancenet
