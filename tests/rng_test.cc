#include "common/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "gtest/gtest.h"

namespace enhancenet {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, LowEntropySeedsAreMixed) {
  // Consecutive small seeds must not produce correlated first outputs.
  std::set<uint64_t> firsts;
  for (uint64_t seed = 0; seed < 32; ++seed) firsts.insert(Rng(seed).Next());
  EXPECT_EQ(firsts.size(), 32u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, -1.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, -1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(RngTest, UniformIntOfOneIsZero) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, CopyReplaysStream) {
  Rng a(14);
  a.Next();
  Rng b = a;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

// --- Status (colocated tiny common tests) ----------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad horizon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad horizon");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::Internal("inner failed");
    return Status::Ok();
  };
  auto outer = [&](bool fail) -> Status {
    ENHANCENET_RETURN_IF_ERROR(inner(fail));
    return Status::Ok();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedMillis() * 0.5);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace enhancenet
