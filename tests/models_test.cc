#include <cmath>
#include <set>

#include "graph/adjacency.h"
#include "gtest/gtest.h"
#include "models/lstm_model.h"
#include "models/model_factory.h"
#include "models/rnn_model.h"
#include "models/stgcn.h"
#include "models/tcn_model.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;
using ::enhancenet::testing::ExpectTensorNear;

constexpr int64_t kEntities = 6;
constexpr int64_t kBatch = 2;
constexpr int64_t kHistory = 12;
constexpr int64_t kHorizon = 12;

Tensor TestAdjacency(int64_t n = kEntities) {
  Rng rng(50);
  Tensor dist = Tensor::RandUniform({n, n}, rng, 0.3f, 4.0f);
  for (int64_t i = 0; i < n; ++i) dist.at({i, i}) = 0.0f;
  return graph::GaussianKernelAdjacency(dist);
}

models::ModelSizing TinySizing() {
  models::ModelSizing sizing;
  sizing.rnn_hidden = 8;
  sizing.rnn_hidden_dfgn = 4;
  sizing.tcn_channels = 6;
  sizing.tcn_channels_dfgn = 4;
  sizing.skip_channels = 6;
  sizing.end_channels = 8;
  sizing.memory_dim = 6;
  sizing.dfgn_hidden1 = 6;
  sizing.dfgn_hidden2 = 3;
  sizing.damgn_mem_dim = 4;
  sizing.damgn_embed_dim = 3;
  return sizing;
}

// ---------------------------------------------------------------------------
// Factory: every model builds, runs forward with the right shape, and is
// deterministic per seed. Parameterized over all 17 names.
// ---------------------------------------------------------------------------

class ModelFactoryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelFactoryTest, ForwardShapeAndDeterminism) {
  const std::string& name = GetParam();
  const Tensor adjacency = TestAdjacency();
  Rng data_rng(51);
  Tensor x = Tensor::Randn({kBatch, kEntities, kHistory, 2}, data_rng);

  Rng rng1(52);
  auto model1 = models::MakeModel(name, kEntities, 2, adjacency, TinySizing(),
                                  rng1);
  model1->SetTraining(false);
  Rng fwd1(53);
  Tensor out1 = model1->Predict(x, fwd1).data();
  EXPECT_EQ(ShapeToString(out1.shape()), "[2, 6, 12]") << name;
  for (int64_t i = 0; i < out1.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out1.data()[i])) << name;
  }

  Rng rng2(52);
  auto model2 = models::MakeModel(name, kEntities, 2, adjacency, TinySizing(),
                                  rng2);
  model2->SetTraining(false);
  Rng fwd2(53);
  Tensor out2 = model2->Predict(x, fwd2).data();
  ExpectTensorNear(out1, out2, 0.0f);
}

TEST_P(ModelFactoryTest, GradientsReachEveryParameter) {
  const std::string& name = GetParam();
  const Tensor adjacency = TestAdjacency();
  Rng rng(54);
  auto model = models::MakeModel(name, kEntities, 2, adjacency, TinySizing(),
                                 rng);
  Rng data_rng(55);
  Tensor x = Tensor::Randn({kBatch, kEntities, kHistory, 2}, data_rng);
  model->SetTraining(false);  // disable dropout so all paths are exercised
  Rng fwd(56);
  ag::Variable out = model->Predict(x, fwd);
  model->ZeroGrad();
  ag::SumAll(ag::Square(out)).Backward();
  int64_t with_grad = 0;
  int64_t total = 0;
  for (auto& p : model->Parameters()) {
    ++total;
    if (p.has_grad()) ++with_grad;
  }
  // Every trainable parameter must be reachable from the loss.
  EXPECT_EQ(with_grad, total) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelFactoryTest,
    ::testing::Values("RNN", "D-RNN", "GRNN", "D-GRNN", "DA-GRNN",
                      "D-DA-GRNN", "TCN", "WaveNet", "D-TCN", "GTCN",
                      "D-GTCN", "DA-GTCN", "D-DA-GTCN", "LSTM", "DCRNN",
                      "STGCN", "GraphWaveNet"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelFactoryTest, ListNamesAllConstructible) {
  const auto names = models::ListModelNames();
  EXPECT_EQ(names.size(), 17u);
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

// ---------------------------------------------------------------------------
// Parameter-count relationships the paper reports (Tables I and II)
// ---------------------------------------------------------------------------

TEST(ParameterCountTest, DfgnModelsSmallerThanNaive) {
  const Tensor adjacency = TestAdjacency(30);
  models::ModelSizing sizing;  // paper-like sizes: hidden 64 vs 16
  Rng rng(57);
  auto rnn = models::MakeModel("RNN", 30, 1, adjacency, sizing, rng);
  auto drnn = models::MakeModel("D-RNN", 30, 1, adjacency, sizing, rng);
  EXPECT_LT(drnn->NumParameters(), rnn->NumParameters());

  auto tcn = models::MakeModel("TCN", 30, 1, adjacency, sizing, rng);
  auto dtcn = models::MakeModel("D-TCN", 30, 1, adjacency, sizing, rng);
  EXPECT_LT(dtcn->NumParameters(), tcn->NumParameters());
}

TEST(ParameterCountTest, DamgnAddsOnlySlightOverhead) {
  const Tensor adjacency = TestAdjacency();
  models::ModelSizing sizing;
  Rng rng(58);
  auto grnn = models::MakeModel("GRNN", kEntities, 1, adjacency, sizing, rng);
  auto da = models::MakeModel("DA-GRNN", kEntities, 1, adjacency, sizing,
                              rng);
  EXPECT_GT(da->NumParameters(), grnn->NumParameters());
  // "slightly more parameters" (Sec. VI-B2): under 5% here.
  EXPECT_LT(da->NumParameters() - grnn->NumParameters(),
            grnn->NumParameters() / 20);
}

TEST(ParameterCountTest, CombinedModelsSmallerThanBase) {
  // "the D-DA- models have much less parameters than the base models".
  const Tensor adjacency = TestAdjacency(30);
  models::ModelSizing sizing;
  Rng rng(59);
  auto base = models::MakeModel("GRNN", 30, 1, adjacency, sizing, rng);
  auto full = models::MakeModel("D-DA-GRNN", 30, 1, adjacency, sizing, rng);
  EXPECT_LT(full->NumParameters(), base->NumParameters());
}

TEST(ParameterCountTest, DfgnMemoryGrowsLinearlyInN) {
  // Doubling N should only add N·m memory parameters (plus nothing else).
  const models::ModelSizing sizing = TinySizing();
  Rng rng(60);
  Rng rng2(60);
  auto small = models::MakeModel("D-RNN", 10, 1, Tensor(), sizing, rng);
  auto large = models::MakeModel("D-RNN", 20, 1, Tensor(), sizing, rng2);
  EXPECT_EQ(large->NumParameters() - small->NumParameters(),
            10 * sizing.memory_dim);
}

// ---------------------------------------------------------------------------
// RNN-specific behaviour
// ---------------------------------------------------------------------------

TEST(RnnModelTest, TeacherForcingChangesTrainingOutputs) {
  Rng rng(61);
  models::RnnModelConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.hidden = 6;
  config.history = kHistory;
  config.horizon = kHorizon;
  models::RnnModel model(config, rng);

  Rng data_rng(62);
  Tensor x = Tensor::Randn({kBatch, kEntities, kHistory, 1}, data_rng);
  Tensor teacher = Tensor::Randn({kBatch, kEntities, kHorizon}, data_rng);

  Rng fwd1(63);
  Tensor with_teacher =
      model.Forward(x, &teacher, /*teacher_prob=*/1.0f, fwd1).data();
  Rng fwd2(63);
  Tensor without =
      model.Forward(x, nullptr, /*teacher_prob=*/0.0f, fwd2).data();
  EXPECT_FALSE(ops::AllClose(with_teacher, without, 1e-5f, 1e-5f));
  // First step is identical (teacher only affects feedback from step 2 on).
  ExpectTensorNear(ops::Slice(with_teacher, 2, 0, 1),
                   ops::Slice(without, 2, 0, 1), 1e-6f);
}

TEST(RnnModelTest, TeacherForcingIgnoredInEvalMode) {
  Rng rng(64);
  models::RnnModelConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.hidden = 6;
  models::RnnModel model(config, rng);
  model.SetTraining(false);
  Rng data_rng(65);
  Tensor x = Tensor::Randn({kBatch, kEntities, kHistory, 1}, data_rng);
  Tensor teacher = Tensor::Randn({kBatch, kEntities, kHorizon}, data_rng);
  Rng fwd1(66);
  Rng fwd2(66);
  ExpectTensorNear(model.Forward(x, &teacher, 1.0f, fwd1).data(),
                   model.Forward(x, nullptr, 0.0f, fwd2).data(), 1e-6f);
}

TEST(RnnModelTest, EntityMemoriesAccessibleOnlyWithDfgn) {
  Rng rng(67);
  models::RnnModelConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.hidden = 4;
  config.use_dfgn = true;
  config.memory_dim = 5;
  models::RnnModel model(config, rng);
  EXPECT_EQ(ShapeToString(model.entity_memories().shape()), "[6, 5]");
}

TEST(RnnModelTest, DamgnAccessor) {
  Rng rng(68);
  models::RnnModelConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.hidden = 4;
  config.use_graph = true;
  config.use_damgn = true;
  config.adjacency = TestAdjacency();
  models::RnnModel model(config, rng);
  ASSERT_NE(model.damgn(), nullptr);
  EXPECT_FLOAT_EQ(model.damgn()->lambda_a(), 1.0f);
}

TEST(RnnModelTest, HistoryActuallyInfluencesPrediction) {
  Rng rng(69);
  models::RnnModelConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.hidden = 8;
  models::RnnModel model(config, rng);
  model.SetTraining(false);
  Rng data_rng(70);
  Tensor x1 = Tensor::Randn({1, kEntities, kHistory, 1}, data_rng);
  Tensor x2 = x1.Clone();
  x2.at({0, 0, 0, 0}) += 3.0f;  // oldest timestamp
  Rng fwd1(71);
  Rng fwd2(71);
  EXPECT_FALSE(ops::AllClose(model.Predict(x1, fwd1).data(),
                             model.Predict(x2, fwd2).data(), 1e-6f, 1e-6f));
}

// ---------------------------------------------------------------------------
// TCN-specific behaviour
// ---------------------------------------------------------------------------

TEST(TcnModelTest, ReceptiveFieldCoversFullHistory) {
  Rng rng(72);
  models::TcnModelConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.residual_channels = 4;
  config.conv_channels = 4;
  config.skip_channels = 4;
  config.end_channels = 6;
  models::TcnModel model(config, rng);
  model.SetTraining(false);
  Rng data_rng(73);
  Tensor x1 = Tensor::Randn({1, kEntities, kHistory, 1}, data_rng);
  Tensor x2 = x1.Clone();
  x2.at({0, 0, 0, 0}) += 3.0f;  // oldest step must still matter
  Rng fwd1(74);
  Rng fwd2(74);
  EXPECT_FALSE(ops::AllClose(model.Predict(x1, fwd1).data(),
                             model.Predict(x2, fwd2).data(), 1e-6f, 1e-6f));
}

TEST(TcnModelTest, GraphWaveNetHasAdaptiveEmbeddings) {
  Rng rng(75);
  const Tensor adjacency = TestAdjacency();
  auto gwn = models::MakeModel("GraphWaveNet", kEntities, 1, adjacency,
                               TinySizing(), rng);
  bool found = false;
  for (const auto& [name, param] : gwn->NamedParameters()) {
    if (name.find("adaptive_e") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TcnModelTest, DropoutMakesTrainingStochastic) {
  Rng rng(76);
  models::TcnModelConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.residual_channels = 4;
  config.conv_channels = 4;
  config.skip_channels = 4;
  config.end_channels = 6;
  config.dropout = 0.5f;
  models::TcnModel model(config, rng);
  Rng data_rng(77);
  Tensor x = Tensor::Randn({1, kEntities, kHistory, 1}, data_rng);
  Rng fwd(78);
  Tensor out1 = model.Forward(x, nullptr, 0.0f, fwd).data();
  Tensor out2 = model.Forward(x, nullptr, 0.0f, fwd).data();
  EXPECT_FALSE(ops::AllClose(out1, out2, 1e-6f, 1e-6f));
  model.SetTraining(false);
  Tensor eval1 = model.Forward(x, nullptr, 0.0f, fwd).data();
  Tensor eval2 = model.Forward(x, nullptr, 0.0f, fwd).data();
  ExpectTensorNear(eval1, eval2, 0.0f);
}

// ---------------------------------------------------------------------------
// STGCN-specific behaviour
// ---------------------------------------------------------------------------

TEST(StgcnTest, RejectsTooShortHistory) {
  Rng rng(79);
  models::StgcnConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.history = 8;  // needs > 4*(K-1) = 8 steps left over
  config.adjacency = TestAdjacency();
  EXPECT_DEATH(models::Stgcn(config, rng), "history too short");
}

TEST(StgcnTest, GraphChangesOutput) {
  models::StgcnConfig config;
  config.num_entities = kEntities;
  config.in_channels = 1;
  config.block_channels = 6;
  config.spatial_channels = 4;
  config.dropout = 0.0f;
  config.adjacency = TestAdjacency();
  Rng rng1(80);
  models::Stgcn with_graph(config, rng1);
  config.adjacency = Tensor::Zeros({kEntities, kEntities});
  Rng rng2(80);
  models::Stgcn isolated(config, rng2);
  with_graph.SetTraining(false);
  isolated.SetTraining(false);
  Rng data_rng(81);
  Tensor x = Tensor::Randn({1, kEntities, kHistory, 1}, data_rng);
  Rng fwd1(82);
  Rng fwd2(82);
  EXPECT_FALSE(ops::AllClose(with_graph.Predict(x, fwd1).data(),
                             isolated.Predict(x, fwd2).data(), 1e-5f,
                             1e-5f));
}

TEST(ModelFactoryTest, TryMakeModelUnknownNameIsNotFound) {
  Rng rng(60);
  std::unique_ptr<models::ForecastingModel> model;
  const Status status = models::TryMakeModel(
      "NOT-A-MODEL", kEntities, 1, TestAdjacency(), TinySizing(), rng, &model);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // The message lists the valid set and the out param stays untouched.
  EXPECT_NE(status.message().find("NOT-A-MODEL"), std::string::npos);
  EXPECT_NE(status.message().find("D-GRNN"), std::string::npos);
  EXPECT_EQ(model, nullptr);
}

TEST(ModelFactoryTest, TryMakeModelValidNameProducesWorkingModel) {
  Rng rng(61);
  std::unique_ptr<models::ForecastingModel> model;
  const Status status = models::TryMakeModel(
      "D-GRNN", kEntities, 1, TestAdjacency(), TinySizing(), rng, &model);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_NE(model, nullptr);
  model->SetTraining(false);
  Rng eval_rng(62);
  Tensor x = Tensor::RandUniform({kBatch, kEntities, kHistory, 1}, eval_rng,
                                 -1.0f, 1.0f);
  ag::Variable pred = model->Predict(x, eval_rng);
  EXPECT_EQ(ShapeToString(pred.data().shape()), "[2, 6, 12]");
}

TEST(ModelFactoryTest, TryMakeModelGraphModelNeedsAdjacency) {
  Rng rng(63);
  std::unique_ptr<models::ForecastingModel> model;
  const Status status = models::TryMakeModel(
      "GRNN", kEntities, 1, Tensor(), TinySizing(), rng, &model);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model, nullptr);
  // Graph-free models accept an empty adjacency.
  EXPECT_TRUE(models::TryMakeModel("RNN", kEntities, 1, Tensor(), TinySizing(),
                                   rng, &model)
                  .ok());
  EXPECT_NE(model, nullptr);
}

TEST(ModelFactoryTest, TryMakeModelRejectsBadDimensions) {
  Rng rng(64);
  std::unique_ptr<models::ForecastingModel> model;
  EXPECT_EQ(models::TryMakeModel("RNN", 0, 1, Tensor(), TinySizing(), rng,
                                 &model)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(models::TryMakeModel("RNN", kEntities, 0, Tensor(), TinySizing(),
                                 rng, &model)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model, nullptr);
}

TEST(ModelFactoryDeathTest, MakeModelStillChecksOnUnknownName) {
  Rng rng(65);
  EXPECT_DEATH(models::MakeModel("NOT-A-MODEL", kEntities, 1, TestAdjacency(),
                                 TinySizing(), rng),
               "unknown model name");
}

}  // namespace
}  // namespace enhancenet
