// serve::ModelRegistry: versioned publish, atomic hot-swap under live
// traffic, session pools, shadow-mode mirroring, and the per-model
// serve.model.<name>.* metric family (DESIGN.md §11).

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "gtest/gtest.h"
#include "io/checkpoint.h"
#include "obs/metrics.h"
#include "serve/inference_session.h"
#include "serve/model_registry.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

constexpr int64_t kEntities = 8;
constexpr int64_t kHistory = 12;
constexpr int64_t kHorizon = 12;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

models::ModelSizing TinySizing() {
  models::ModelSizing sizing;
  sizing.rnn_hidden = 8;
  sizing.rnn_hidden_dfgn = 6;
  sizing.tcn_channels = 6;
  sizing.tcn_channels_dfgn = 4;
  sizing.skip_channels = 6;
  sizing.end_channels = 8;
  sizing.memory_dim = 6;
  sizing.dfgn_hidden1 = 6;
  sizing.dfgn_hidden2 = 3;
  return sizing;
}

/// Fixture: two D-GRNN checkpoints (A and B) with distinct weights, both
/// carrying metadata, plus the reference forecast each one produces for a
/// fixed request window — the oracle for bitwise routing checks.
class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetForTest();
    data_ = data::MakeEbLike(kEntities, 2, /*seed=*/5);
    adjacency_ = graph::GaussianKernelAdjacency(data_.distances);
    scaler_.Fit(data_.series, 0, data_.num_steps() * 7 / 10);

    ckpt_a_ = TempPath("registry_a.encp");
    ckpt_b_ = TempPath("registry_b.encp");
    SaveDistinctCheckpoint(ckpt_a_, /*noise_seed=*/12);
    SaveDistinctCheckpoint(ckpt_b_, /*noise_seed=*/77);

    window_ = RawWindow(100);
    reference_a_ = DirectForecast(ckpt_a_);
    reference_b_ = DirectForecast(ckpt_b_);
    // The two checkpoints must actually disagree, or the routing and
    // shadow-delta assertions below are vacuous.
    ASSERT_FALSE(ops::AllClose(reference_a_, reference_b_, 1e-6f, 1e-6f));
  }

  void TearDown() override {
    std::remove(ckpt_a_.c_str());
    std::remove(ckpt_b_.c_str());
  }

  void SaveDistinctCheckpoint(const std::string& path, uint64_t noise_seed) {
    Rng rng(11);
    auto model = models::MakeModel("D-GRNN", kEntities, 1, adjacency_,
                                   TinySizing(), rng);
    Rng noise(noise_seed);
    for (auto& p : model->Parameters()) {
      ops::AxpyInPlace(0.1f, Tensor::Randn(p.shape(), noise),
                       &p.mutable_data());
    }
    io::CheckpointMeta meta;
    meta.model_name = "D-GRNN";
    meta.num_entities = kEntities;
    meta.in_channels = 1;
    meta.history = kHistory;
    meta.horizon = kHorizon;
    ASSERT_TRUE(io::SaveCheckpoint(path, *model, meta).ok());
  }

  serve::ModelSpec Spec(const std::string& checkpoint) const {
    serve::ModelSpec spec;
    spec.model_name = "D-GRNN";
    spec.num_entities = kEntities;
    spec.in_channels = 1;
    spec.target_channel = 0;
    spec.adjacency = adjacency_;
    spec.sizing = TinySizing();
    spec.checkpoint_path = checkpoint;
    return spec;
  }

  /// A raw (unscaled) [N, H, C] history window ending at absolute time `t`.
  Tensor RawWindow(int64_t t) const {
    Tensor window(Shape{kEntities, kHistory, 1});
    for (int64_t i = 0; i < kEntities; ++i) {
      for (int64_t h = 0; h < kHistory; ++h) {
        window.at({i, h, 0}) = data_.series.at({i, t - kHistory + 1 + h, 0});
      }
    }
    return window;
  }

  /// The fixture window served by a standalone session on `checkpoint` —
  /// what any registry route must reproduce bitwise.
  Tensor DirectForecast(const std::string& checkpoint) const {
    std::unique_ptr<serve::InferenceSession> session;
    const Status created = serve::InferenceSession::Create(
        Spec(checkpoint), serve::SessionOptions(), scaler_, &session);
    EXPECT_TRUE(created.ok()) << created.ToString();
    serve::PredictRequest request;
    request.history = window_;
    serve::PredictResponse response;
    EXPECT_TRUE(session->Predict(request, &response).ok());
    return response.forecast;
  }

  static bool BitwiseEqual(const Tensor& a, const Tensor& b) {
    if (a.shape() != b.shape()) return false;
    for (int64_t i = 0; i < a.numel(); ++i) {
      if (a.data()[i] != b.data()[i]) return false;
    }
    return true;
  }

  data::CtsData data_;
  Tensor adjacency_;
  data::StandardScaler scaler_;
  std::string ckpt_a_;
  std::string ckpt_b_;
  Tensor window_;
  Tensor reference_a_;
  Tensor reference_b_;
};

// ---------------------------------------------------------------------------
// Publish + Predict basics
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, PublishAndPredictMatchesDirectSession) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(
      registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_).ok());

  serve::PredictRequest request;
  request.history = window_;
  serve::PredictResponse response;
  const Status served = registry.Predict("traffic", request, &response);
  ASSERT_TRUE(served.ok()) << served.ToString();
  EXPECT_EQ(response.model_version, 1);
  EXPECT_TRUE(BitwiseEqual(response.forecast, reference_a_));

  serve::ModelInfo info;
  ASSERT_TRUE(registry.Info("traffic", &info).ok());
  EXPECT_EQ(info.active_version, 1);
  EXPECT_EQ(info.shadow_version, -1);
  EXPECT_EQ(info.pool_size, 2);
  EXPECT_EQ(info.swaps, 0);
  EXPECT_EQ(info.draining, 0);

  obs::Registry& obs = obs::Registry::Global();
  EXPECT_EQ(obs.GetGauge("serve.model.traffic.version")->Get(), 1.0);
  EXPECT_EQ(obs.GetGauge("serve.model.traffic.pool.size")->Get(), 2.0);
  EXPECT_EQ(obs.GetCounter("serve.model.traffic.requests")->Get(), 1);
  EXPECT_EQ(obs.GetCounter("serve.model.traffic.errors")->Get(), 0);
}

TEST_F(RegistryTest, PoolRoundRobinStaysBitwiseIdentical) {
  serve::ModelRegistry registry;
  serve::PublishOptions po;
  po.pool_size = 3;
  ASSERT_TRUE(
      registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_, po).ok());
  // More requests than pool members: every session must serve the same
  // bits, so callers cannot observe which pool slot they landed on.
  for (int i = 0; i < 7; ++i) {
    serve::PredictRequest request;
    request.history = window_;
    serve::PredictResponse response;
    ASSERT_TRUE(registry.Predict("traffic", request, &response).ok());
    EXPECT_TRUE(BitwiseEqual(response.forecast, reference_a_)) << i;
  }
}

TEST_F(RegistryTest, PredictUnknownModelIsNotFoundListingPublished) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("m1", 1, Spec(ckpt_a_), scaler_).ok());
  serve::PredictRequest request;
  request.history = window_;
  serve::PredictResponse response;
  const Status served = registry.Predict("m2", request, &response);
  EXPECT_EQ(served.code(), StatusCode::kNotFound);
  EXPECT_NE(served.message().find("'m2'"), std::string::npos)
      << served.ToString();
  EXPECT_NE(served.message().find("'m1'"), std::string::npos)
      << served.ToString();
}

TEST_F(RegistryTest, PublishRejectsSpecCheckpointMismatch) {
  serve::ModelRegistry registry;
  serve::ModelSpec wrong = Spec(ckpt_a_);
  wrong.model_name = "GRNN";  // checkpoint metadata says D-GRNN
  const Status published = registry.Publish("traffic", 1, wrong, scaler_);
  EXPECT_EQ(published.code(), StatusCode::kFailedPrecondition);
  // The error names the model and version being published plus the file's
  // own identity.
  EXPECT_NE(published.message().find("model 'traffic' v1"), std::string::npos)
      << published.ToString();
  EXPECT_NE(published.message().find("was saved from model 'D-GRNN'"),
            std::string::npos)
      << published.ToString();

  // The failed publish staged nothing: the name was never registered.
  serve::PredictRequest request;
  request.history = window_;
  serve::PredictResponse response;
  EXPECT_EQ(registry.Predict("traffic", request, &response).code(),
            StatusCode::kNotFound);
}

TEST_F(RegistryTest, PublishRejectsNonPositiveVersion) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.Publish("traffic", 0, Spec(ckpt_a_), scaler_).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Publish("traffic", -3, Spec(ckpt_a_), scaler_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RegistryTest, FailedRepublishLeavesActiveVersionServing) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_).ok());
  // Bad re-publish: missing checkpoint. Staging fails before any flip.
  EXPECT_FALSE(
      registry.Publish("traffic", 2, Spec("/nonexistent/x.encp"), scaler_)
          .ok());
  serve::PredictRequest request;
  request.history = window_;
  serve::PredictResponse response;
  ASSERT_TRUE(registry.Predict("traffic", request, &response).ok());
  EXPECT_EQ(response.model_version, 1);
  EXPECT_TRUE(BitwiseEqual(response.forecast, reference_a_));
}

// ---------------------------------------------------------------------------
// Hot swap
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, SwapRoutesNewTrafficToNewVersion) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_).ok());
  ASSERT_TRUE(registry.Publish("traffic", 2, Spec(ckpt_b_), scaler_).ok());

  serve::PredictRequest request;
  request.history = window_;
  serve::PredictResponse response;
  ASSERT_TRUE(registry.Predict("traffic", request, &response).ok());
  EXPECT_EQ(response.model_version, 2);
  EXPECT_TRUE(BitwiseEqual(response.forecast, reference_b_));

  serve::ModelInfo info;
  ASSERT_TRUE(registry.Info("traffic", &info).ok());
  EXPECT_EQ(info.active_version, 2);
  EXPECT_EQ(info.swaps, 1);
  EXPECT_EQ(obs::Registry::Global()
                .GetCounter("serve.model.traffic.swaps")
                ->Get(),
            1);
  EXPECT_EQ(
      obs::Registry::Global().GetGauge("serve.model.traffic.version")->Get(),
      2.0);
}

TEST_F(RegistryTest, HundredSwapsUnderConcurrentTraffic) {
  // The acceptance gate: 4 threads of continuous traffic across 100
  // back-to-back hot-swaps. Zero failed requests, and every response is
  // bitwise correct for the version that reports having served it.
  serve::ModelRegistry registry;
  serve::PublishOptions po;
  po.pool_size = 1;  // swap cost dominates; one session per version
  ASSERT_TRUE(
      registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_, po).ok());

  constexpr int kThreads = 4;
  constexpr int kSwaps = 100;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> served{0};
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      serve::PredictRequest request;
      request.history = window_;
      while (!stop.load(std::memory_order_relaxed)) {
        serve::PredictResponse response;
        if (!registry.Predict("traffic", request, &response).ok()) {
          ++failures[static_cast<size_t>(t)];
          continue;
        }
        // Odd versions were published from checkpoint A, even from B; the
        // response must match the forecast of whichever version served it.
        const Tensor& expect =
            response.model_version % 2 == 1 ? reference_a_ : reference_b_;
        if (!BitwiseEqual(response.forecast, expect)) {
          ++failures[static_cast<size_t>(t)];
          continue;
        }
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  serve::PredictRequest probe;
  probe.history = window_;
  for (int64_t v = 2; v <= kSwaps + 1; ++v) {
    const Status swapped = registry.Publish(
        "traffic", v, Spec(v % 2 == 1 ? ckpt_a_ : ckpt_b_), scaler_, po);
    ASSERT_TRUE(swapped.ok()) << swapped.ToString();
    // Publish has returned, so the very next request must be served by the
    // new version — never by the one it replaced.
    serve::PredictResponse response;
    ASSERT_TRUE(registry.Predict("traffic", probe, &response).ok());
    ASSERT_EQ(response.model_version, v);
    ASSERT_TRUE(BitwiseEqual(
        response.forecast, v % 2 == 1 ? reference_a_ : reference_b_));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "worker " << t << " saw a failed or torn "
                              << "request during the swap storm";
  }
  EXPECT_GT(served.load(), 0);

  serve::ModelInfo info;
  ASSERT_TRUE(registry.Info("traffic", &info).ok());
  EXPECT_EQ(info.active_version, kSwaps + 1);
  EXPECT_EQ(info.swaps, kSwaps);
  // With the workers joined and every old version drained, nothing is left
  // retiring.
  EXPECT_EQ(info.draining, 0);

  // Every request (worker + probe) was counted and observed exactly once in
  // the occupancy histogram.
  obs::Registry& obs = obs::Registry::Global();
  const int64_t requests =
      obs.GetCounter("serve.model.traffic.requests")->Get();
  EXPECT_EQ(requests, served.load() + kSwaps);
  EXPECT_EQ(obs.GetHistogram("serve.model.traffic.pool.occupancy",
                             obs::OccupancyBuckets())
                ->Count(),
            requests);
  EXPECT_EQ(obs.GetCounter("serve.model.traffic.errors")->Get(), 0);
}

TEST_F(RegistryTest, RetiredVersionDrainsAndReleasesAllocator) {
  serve::ModelRegistry registry;
  serve::PublishOptions po;
  po.pool_size = 1;
  ASSERT_TRUE(
      registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_, po).ok());

  // The test seam hands out the per-version allocator without keeping the
  // version alive: the shared_ptr keeps the accounting object inspectable
  // after the Version that owned it is destroyed.
  std::shared_ptr<TensorAllocator> v1_alloc =
      registry.ActiveAllocatorForTest("traffic");
  ASSERT_NE(v1_alloc, nullptr);

  {
    serve::PredictRequest request;
    request.history = window_;
    serve::PredictResponse response;
    ASSERT_TRUE(registry.Predict("traffic", request, &response).ok());
    EXPECT_GT(v1_alloc->GetStats().bytes_outstanding, 0)
        << "the response tensor must come from the version's allocator";
  }
  // Response dropped: v1's allocator holds no live storage, only cache.
  EXPECT_EQ(v1_alloc->GetStats().bytes_outstanding, 0);

  ASSERT_TRUE(
      registry.Publish("traffic", 2, Spec(ckpt_b_), scaler_, po).ok());
  // No request was in flight, so v1 retired and was destroyed by the swap:
  // its sessions and RuntimeContexts are gone and the only remaining
  // reference to the allocator is the one this test holds.
  EXPECT_EQ(v1_alloc.use_count(), 1);
  EXPECT_EQ(v1_alloc->GetStats().bytes_outstanding, 0);

  serve::ModelInfo info;
  ASSERT_TRUE(registry.Info("traffic", &info).ok());
  EXPECT_EQ(info.draining, 0);
  EXPECT_EQ(
      obs::Registry::Global().GetGauge("serve.model.traffic.draining")->Get(),
      0.0);

  // The new version serves from its own, different allocator.
  std::shared_ptr<TensorAllocator> v2_alloc =
      registry.ActiveAllocatorForTest("traffic");
  ASSERT_NE(v2_alloc, nullptr);
  EXPECT_NE(v2_alloc.get(), v1_alloc.get());
}

// ---------------------------------------------------------------------------
// Shadow mode
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, ShadowRecordsDeltaHistograms) {
  serve::ModelRegistry registry;
  obs::Registry& obs = obs::Registry::Global();

  // m1: shadow differs from active -> every mirrored request records a
  // strictly positive mean |delta|.
  ASSERT_TRUE(registry.Publish("m1", 1, Spec(ckpt_a_), scaler_).ok());
  ASSERT_TRUE(registry.PublishShadow("m1", 2, Spec(ckpt_b_), scaler_).ok());
  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) {
    serve::PredictRequest request;
    request.history = window_;
    serve::PredictResponse response;
    ASSERT_TRUE(registry.Predict("m1", request, &response).ok());
    // The caller always gets the active version's forecast, never the
    // shadow's.
    EXPECT_EQ(response.model_version, 1);
    EXPECT_TRUE(BitwiseEqual(response.forecast, reference_a_));
  }
  obs::Histogram* delta_m1 =
      obs.GetHistogram("serve.model.m1.shadow.delta", obs::DeltaBuckets());
  EXPECT_EQ(delta_m1->Count(), kRequests);
  EXPECT_GT(delta_m1->Sum(), 0.0);
  EXPECT_GT(delta_m1->Min(), 0.0);
  EXPECT_EQ(obs.GetCounter("serve.model.m1.shadow.requests")->Get(),
            kRequests);
  EXPECT_EQ(obs.GetCounter("serve.model.m1.shadow.errors")->Get(), 0);
  EXPECT_EQ(obs.GetGauge("serve.model.m1.shadow.version")->Get(), 2.0);

  // m2: shadow is the same checkpoint -> deterministic eval forwards give
  // bitwise-identical predictions, so every delta is exactly zero.
  ASSERT_TRUE(registry.Publish("m2", 1, Spec(ckpt_a_), scaler_).ok());
  ASSERT_TRUE(registry.PublishShadow("m2", 2, Spec(ckpt_a_), scaler_).ok());
  for (int i = 0; i < 2; ++i) {
    serve::PredictRequest request;
    request.history = window_;
    serve::PredictResponse response;
    ASSERT_TRUE(registry.Predict("m2", request, &response).ok());
  }
  obs::Histogram* delta_m2 =
      obs.GetHistogram("serve.model.m2.shadow.delta", obs::DeltaBuckets());
  EXPECT_EQ(delta_m2->Count(), 2);
  EXPECT_EQ(delta_m2->Sum(), 0.0);
  EXPECT_EQ(delta_m2->Max(), 0.0);
}

TEST_F(RegistryTest, ShadowRequiresActiveVersion) {
  serve::ModelRegistry registry;
  EXPECT_EQ(
      registry.PublishShadow("traffic", 1, Spec(ckpt_a_), scaler_).code(),
      StatusCode::kFailedPrecondition);
}

TEST_F(RegistryTest, PromoteSwapsShadowIntoActive) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_).ok());
  ASSERT_TRUE(
      registry.PublishShadow("traffic", 2, Spec(ckpt_b_), scaler_).ok());
  ASSERT_TRUE(registry.Promote("traffic").ok());

  serve::PredictRequest request;
  request.history = window_;
  serve::PredictResponse response;
  ASSERT_TRUE(registry.Predict("traffic", request, &response).ok());
  EXPECT_EQ(response.model_version, 2);
  EXPECT_TRUE(BitwiseEqual(response.forecast, reference_b_));

  serve::ModelInfo info;
  ASSERT_TRUE(registry.Info("traffic", &info).ok());
  EXPECT_EQ(info.active_version, 2);
  EXPECT_EQ(info.shadow_version, -1);
  EXPECT_EQ(info.swaps, 1);
  EXPECT_EQ(
      obs::Registry::Global()
          .GetGauge("serve.model.traffic.shadow.version")
          ->Get(),
      0.0);

  // Promoting again has nothing staged.
  EXPECT_EQ(registry.Promote("traffic").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RegistryTest, ClearShadowStopsMirroring) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_).ok());
  ASSERT_TRUE(
      registry.PublishShadow("traffic", 2, Spec(ckpt_b_), scaler_).ok());
  ASSERT_TRUE(registry.ClearShadow("traffic").ok());
  ASSERT_TRUE(registry.ClearShadow("traffic").ok());  // idempotent

  serve::PredictRequest request;
  request.history = window_;
  serve::PredictResponse response;
  ASSERT_TRUE(registry.Predict("traffic", request, &response).ok());
  EXPECT_EQ(obs::Registry::Global()
                .GetCounter("serve.model.traffic.shadow.requests")
                ->Get(),
            0);
  serve::ModelInfo info;
  ASSERT_TRUE(registry.Info("traffic", &info).ok());
  EXPECT_EQ(info.shadow_version, -1);
}

// ---------------------------------------------------------------------------
// Micro-batching through the registry
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, MicroBatchingThroughRegistryStaysBitwiseCorrect) {
  serve::ModelRegistry registry;
  serve::PublishOptions po;
  po.pool_size = 1;
  po.session.micro_batching = true;
  po.session.max_batch_size = 4;
  po.session.max_wait_ms = 2000.0;  // generous so the threads coalesce
  ASSERT_TRUE(
      registry.Publish("traffic", 1, Spec(ckpt_a_), scaler_, po).ok());

  constexpr int kThreads = 4;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::PredictRequest request;
      request.history = window_;
      serve::PredictResponse response;
      if (!registry.Predict("traffic", request, &response).ok() ||
          response.model_version != 1 ||
          !BitwiseEqual(response.forecast, reference_a_)) {
        ++failures[static_cast<size_t>(t)];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);

  obs::Registry& obs = obs::Registry::Global();
  EXPECT_EQ(obs.GetCounter("serve.model.traffic.requests")->Get(), kThreads);
  // The batcher coalesced: fewer forwards than windows served.
  obs::Histogram* occupancy = obs.GetHistogram(
      "serve.batcher.batch_occupancy", obs::OccupancyBuckets());
  EXPECT_GE(occupancy->Count(), 1);
  EXPECT_EQ(static_cast<int64_t>(occupancy->Sum()), kThreads);
}

TEST_F(RegistryTest, DeadlineBatchingOptionsReachTheBatcher) {
  // End-to-end plumbing: SessionOptions' deadline knobs configure the
  // version's MicroBatcher, requests carry per-request deadlines, and the
  // deadline metrics land in the registry — all with bitwise-correct
  // routing.
  serve::ModelRegistry registry;
  serve::PublishOptions po;
  po.pool_size = 1;
  po.session.micro_batching = true;
  po.session.max_batch_size = 4;
  po.session.deadline_batching = true;
  po.session.slo_ms = 2000.0;  // generous budget so the threads coalesce
  ASSERT_TRUE(
      registry.Publish("deadline", 1, Spec(ckpt_a_), scaler_, po).ok());

  constexpr int kThreads = 4;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::PredictRequest request;
      request.history = window_;
      request.deadline_ms = 2000.0;
      serve::PredictResponse response;
      if (!registry.Predict("deadline", request, &response).ok() ||
          response.model_version != 1 ||
          !BitwiseEqual(response.forecast, reference_a_)) {
        ++failures[static_cast<size_t>(t)];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);

  obs::Registry& obs = obs::Registry::Global();
  obs::Histogram* occupancy = obs.GetHistogram(
      "serve.batcher.batch_occupancy", obs::OccupancyBuckets());
  EXPECT_EQ(static_cast<int64_t>(occupancy->Sum()), kThreads);
  // The adaptive ceiling gauge is live, every flush is attributed to
  // budget or fill, and nobody missed a 2 s deadline on a tiny model.
  EXPECT_GE(obs.GetGauge("serve.batcher.deadline.ceiling")->Get(), 1.0);
  const int64_t flushes =
      obs.GetCounter("serve.batcher.deadline.flush_full")->Get() +
      obs.GetCounter("serve.batcher.deadline.flush_budget")->Get();
  EXPECT_EQ(flushes, occupancy->Count());
  EXPECT_EQ(obs.GetCounter("serve.batcher.deadline.miss")->Get(), 0);
}

}  // namespace
}  // namespace enhancenet
