#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "gtest/gtest.h"
#include "io/checkpoint.h"
#include "io/csv.h"
#include "models/model_factory.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace enhancenet {
namespace {

using ::enhancenet::testing::ExpectTensorNear;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream file(path);
  file << contents;
}

// ---------------------------------------------------------------------------
// CSV matrix round trips
// ---------------------------------------------------------------------------

TEST(CsvTest, ReadSimpleMatrix) {
  const std::string path = TempPath("simple.csv");
  WriteFile(path, "1,2,3\n4,5,6\n");
  auto result = io::ReadMatrixCsv(path);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  ExpectTensorNear(result.value, Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}));
  std::remove(path.c_str());
}

TEST(CsvTest, SkipsHeaderRow) {
  const std::string path = TempPath("header.csv");
  WriteFile(path, "sensor_a,sensor_b\n1.5,2.5\n3.5,4.5\n");
  auto result = io::ReadMatrixCsv(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ShapeToString(result.value.shape()), "[2, 2]");
  EXPECT_FLOAT_EQ(result.value.at({0, 0}), 1.5f);
  std::remove(path.c_str());
}

TEST(CsvTest, SkipsBlankLinesAndCrLf) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "1,2\r\n\r\n3,4\r\n");
  auto result = io::ReadMatrixCsv(path);
  ASSERT_TRUE(result.ok());
  ExpectTensorNear(result.value, Tensor::FromVector({2, 2}, {1, 2, 3, 4}));
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "1,2,3\n4,5\n");
  auto result = io::ReadMatrixCsv(path);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsNonNumericField) {
  const std::string path = TempPath("nonnum.csv");
  WriteFile(path, "1,2\n3,oops\n");
  auto result = io::ReadMatrixCsv(path);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto result = io::ReadMatrixCsv("/nonexistent/never.csv");
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
}

TEST(CsvTest, EmptyFileIsError) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  EXPECT_FALSE(io::ReadMatrixCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, WriteThenReadRoundTrip) {
  Rng rng(1);
  Tensor m = Tensor::Randn({5, 7}, rng);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(io::WriteMatrixCsv(path, m).ok());
  auto result = io::ReadMatrixCsv(path);
  ASSERT_TRUE(result.ok());
  ExpectTensorNear(result.value, m, 1e-4f);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Dataset loading
// ---------------------------------------------------------------------------

class LoadCtsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 2 entities, 3 timestamps, 2 channels: series is [T, N*C].
    series_path_ = TempPath("series.csv");
    WriteFile(series_path_,
              "10,0.1,20,0.2\n"
              "11,0.3,21,0.4\n"
              "12,0.5,22,0.6\n");
    dist_path_ = TempPath("dist.csv");
    WriteFile(dist_path_, "0,1\n1,0\n");
    loc_path_ = TempPath("loc.csv");
    WriteFile(loc_path_, "0,0\n3,4\n");
  }
  void TearDown() override {
    std::remove(series_path_.c_str());
    std::remove(dist_path_.c_str());
    std::remove(loc_path_.c_str());
  }
  std::string series_path_;
  std::string dist_path_;
  std::string loc_path_;
};

TEST_F(LoadCtsTest, LoadsEntityMajorLayout) {
  auto result = io::LoadCtsFromCsv("test", series_path_, dist_path_,
                                   loc_path_, /*num_channels=*/2);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  const data::CtsData& d = result.value;
  EXPECT_EQ(d.num_entities(), 2);
  EXPECT_EQ(d.num_steps(), 3);
  EXPECT_EQ(d.num_channels(), 2);
  EXPECT_FLOAT_EQ(d.series.at({0, 0, 0}), 10.0f);
  EXPECT_FLOAT_EQ(d.series.at({0, 2, 1}), 0.5f);
  EXPECT_FLOAT_EQ(d.series.at({1, 0, 0}), 20.0f);
  EXPECT_FLOAT_EQ(d.series.at({1, 1, 1}), 0.4f);
  EXPECT_FLOAT_EQ(d.distances.at({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(d.locations.at({1, 0}), 3.0f);
}

TEST_F(LoadCtsTest, LocationsOptional) {
  auto result = io::LoadCtsFromCsv("test", series_path_, dist_path_, "",
                                   /*num_channels=*/2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ShapeToString(result.value.locations.shape()), "[2, 2]");
}

TEST_F(LoadCtsTest, RejectsMismatchedChannelCount) {
  auto result = io::LoadCtsFromCsv("test", series_path_, dist_path_, "",
                                   /*num_channels=*/3);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(LoadCtsTest, RejectsWrongDistanceShape) {
  const std::string bad = TempPath("bad_dist.csv");
  WriteFile(bad, "0,1,2\n1,0,2\n2,2,0\n");
  auto result =
      io::LoadCtsFromCsv("test", series_path_, bad, "", /*num_channels=*/2);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  std::remove(bad.c_str());
}

TEST_F(LoadCtsTest, RejectsBadTargetChannel) {
  auto result = io::LoadCtsFromCsv("test", series_path_, dist_path_, "",
                                   /*num_channels=*/2, /*target_channel=*/5);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST(ForecastCsvTest, WritesHeaderAndRows) {
  Tensor forecast = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  const std::string path = TempPath("forecast.csv");
  ASSERT_TRUE(io::WriteForecastCsv(path, forecast).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "entity,h1,h2,h3");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "0,1,2,3");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

TEST(CheckpointTest, RoundTripRestoresExactPredictions) {
  data::CtsData d = data::MakeEbLike(8, 2, /*seed=*/5);
  const Tensor adjacency = graph::GaussianKernelAdjacency(d.distances);
  models::ModelSizing sizing;
  sizing.rnn_hidden = 8;
  sizing.rnn_hidden_dfgn = 6;

  Rng rng1(11);
  auto original = models::MakeModel("D-DA-GRNN", 8, 1, adjacency, sizing,
                                    rng1);
  // Perturb away from the initialization so the test is not vacuous.
  Rng noise(12);
  for (auto& p : original->Parameters()) {
    ops::AxpyInPlace(0.1f, Tensor::Randn(p.shape(), noise),
                     &p.mutable_data());
  }
  const std::string path = TempPath("model.encp");
  ASSERT_TRUE(io::SaveCheckpoint(path, *original).ok());

  // Fresh model with a different seed -> different weights until loaded.
  Rng rng2(99);
  auto restored = models::MakeModel("D-DA-GRNN", 8, 1, adjacency, sizing,
                                    rng2);
  Rng data_rng(13);
  Tensor x = Tensor::Randn({2, 8, 12, 1}, data_rng);
  original->SetTraining(false);
  restored->SetTraining(false);
  Rng fwd1(14);
  Rng fwd2(14);
  EXPECT_FALSE(ops::AllClose(original->Predict(x, fwd1).data(),
                             restored->Predict(x, fwd2).data(), 1e-5f,
                             1e-5f));

  ASSERT_TRUE(io::LoadCheckpoint(path, restored.get()).ok());
  Rng fwd3(14);
  Rng fwd4(14);
  ExpectTensorNear(restored->Predict(x, fwd3).data(),
                   original->Predict(x, fwd4).data(), 1e-6f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsWrongArchitecture) {
  data::CtsData d = data::MakeEbLike(8, 2, /*seed=*/6);
  const Tensor adjacency = graph::GaussianKernelAdjacency(d.distances);
  models::ModelSizing sizing;
  sizing.rnn_hidden = 8;
  Rng rng(21);
  auto rnn = models::MakeModel("RNN", 8, 1, adjacency, sizing, rng);
  auto grnn = models::MakeModel("GRNN", 8, 1, adjacency, sizing, rng);
  const std::string path = TempPath("arch.encp");
  ASSERT_TRUE(io::SaveCheckpoint(path, *rnn).ok());
  const Status status = io::LoadCheckpoint(path, grnn.get());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  models::ModelSizing small;
  small.rnn_hidden = 8;
  models::ModelSizing big;
  big.rnn_hidden = 16;
  Rng rng(22);
  auto a = models::MakeModel("RNN", 8, 1, Tensor(), small, rng);
  auto b = models::MakeModel("RNN", 8, 1, Tensor(), big, rng);
  const std::string path = TempPath("shape.encp");
  ASSERT_TRUE(io::SaveCheckpoint(path, *a).ok());
  const Status status = io::LoadCheckpoint(path, b.get());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchNamesParameterAndBothShapes) {
  models::ModelSizing small;
  small.rnn_hidden = 8;
  models::ModelSizing big;
  big.rnn_hidden = 16;
  Rng rng(24);
  auto a = models::MakeModel("RNN", 8, 1, Tensor(), small, rng);
  auto b = models::MakeModel("RNN", 8, 1, Tensor(), big, rng);
  const std::string path = TempPath("shape_msg.encp");
  ASSERT_TRUE(io::SaveCheckpoint(path, *a).ok());
  const Status status = io::LoadCheckpoint(path, b.get());
  ASSERT_FALSE(status.ok());
  // The message must identify the offending parameter by name and report
  // both sides of the mismatch so a misconfigured server is debuggable.
  const std::string& msg = status.message();
  EXPECT_NE(msg.find("shape mismatch for parameter '"), std::string::npos)
      << msg;
  // Both sides of the mismatch are rendered (GRU gate matrices: [in+hidden,
  // 2*hidden], so hidden 8 vs 16 gives [9, 16] vs [17, 32]).
  EXPECT_NE(msg.find("checkpoint has [9, 16]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("module has [17, 32]"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  const std::string path = TempPath("garbage.encp");
  WriteFile(path, "this is not a checkpoint");
  Rng rng(23);
  auto model = models::MakeModel("RNN", 4, 1, Tensor(), models::ModelSizing(),
                                 rng);
  EXPECT_EQ(io::LoadCheckpoint(path, model.get()).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Rng rng(24);
  auto model = models::MakeModel("RNN", 4, 1, Tensor(), models::ModelSizing(),
                                 rng);
  EXPECT_EQ(io::LoadCheckpoint("/nonexistent/x.encp", model.get()).code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Crash safety: atomic save, transactional load.
// ---------------------------------------------------------------------------

/// Flattened copy of all parameter payloads, for bitwise comparison.
std::vector<float> SnapshotParams(const nn::Module& module) {
  std::vector<float> snapshot;
  for (const auto& param : module.Parameters()) {
    const float* p = param.data().data();
    snapshot.insert(snapshot.end(), p, p + param.numel());
  }
  return snapshot;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

TEST(CheckpointTest, SaveLeavesNoTempFile) {
  Rng rng(31);
  auto model = models::MakeModel("RNN", 4, 1, Tensor(), models::ModelSizing(),
                                 rng);
  const std::string path = TempPath("atomic.encp");
  ASSERT_TRUE(io::SaveCheckpoint(path, *model).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CheckpointTest, FailedRenameCleansUpTempFile) {
  Rng rng(32);
  auto model = models::MakeModel("RNN", 4, 1, Tensor(), models::ModelSizing(),
                                 rng);
  // A directory at the destination makes the final rename fail after the
  // temp file was fully written; the temp must not be left behind.
  const std::string path = TempPath("blocked.encp");
  ASSERT_EQ(::mkdir(path.c_str(), 0755), 0);
  const Status status = io::SaveCheckpoint(path, *model);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));
  ::rmdir(path.c_str());
}

TEST(CheckpointTest, UnwritablePathIsStatusNotAbort) {
  Rng rng(33);
  auto model = models::MakeModel("RNN", 4, 1, Tensor(), models::ModelSizing(),
                                 rng);
  EXPECT_FALSE(io::SaveCheckpoint("/nonexistent/dir/x.encp", *model).ok());
}

TEST(CheckpointTest, EveryTruncationIsRejectedAndLeavesModuleUntouched) {
  // Kill-at-any-point: no strict prefix of a checkpoint is loadable, and a
  // failed load leaves the destination module bitwise identical. Together
  // with the rename-into-place save this means an interrupted save/load
  // cycle can never corrupt weights: the file at `path` is always either
  // absent or complete, and a bad file never half-applies.
  models::ModelSizing sizing;
  sizing.rnn_hidden = 4;
  Rng rng(34);
  auto source = models::MakeModel("RNN", 3, 1, Tensor(), sizing, rng);
  const std::string path = TempPath("full.encp");
  ASSERT_TRUE(io::SaveCheckpoint(path, *source).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 16u);

  Rng rng2(35);
  auto target = models::MakeModel("RNN", 3, 1, Tensor(), sizing, rng2);
  const std::vector<float> before = SnapshotParams(*target);

  const std::string truncated_path = TempPath("truncated.encp");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFile(truncated_path, bytes.substr(0, len));
    const Status status = io::LoadCheckpoint(truncated_path, target.get());
    ASSERT_FALSE(status.ok()) << "prefix of " << len << " bytes loaded";
    const std::vector<float> after = SnapshotParams(*target);
    ASSERT_EQ(after.size(), before.size());
    ASSERT_EQ(std::memcmp(after.data(), before.data(),
                          before.size() * sizeof(float)),
              0)
        << "prefix of " << len << " bytes modified the module";
  }
  std::remove(truncated_path.c_str());

  // Sanity: the complete file still loads, and only then do params change.
  ASSERT_TRUE(io::LoadCheckpoint(path, target.get()).ok());
  const std::vector<float> after = SnapshotParams(*target);
  EXPECT_NE(std::memcmp(after.data(), before.data(),
                        before.size() * sizeof(float)),
            0);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MidFileShapeMismatchLeavesModuleUntouched) {
  // Transactionality beyond truncation: a file whose early parameters are
  // perfectly valid but whose *last* one mismatches must not half-apply the
  // early ones. The file is crafted in the checkpoint wire format: real
  // names/shapes/payloads for every parameter except the final shape, whose
  // leading dimension is off by one.
  models::ModelSizing sizing;
  sizing.rnn_hidden = 4;
  Rng rng(36);
  auto target = models::MakeModel("RNN", 3, 1, Tensor(), sizing, rng);
  const auto named = target->NamedParameters();
  ASSERT_GT(named.size(), 1u);

  const std::string path = TempPath("mismatch_tail.encp");
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write("ENCP", 4);
    const uint32_t version = 1;
    file.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t count = named.size();
    file.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (size_t i = 0; i < named.size(); ++i) {
      const auto& [name, param] = named[i];
      const uint32_t name_len = static_cast<uint32_t>(name.size());
      file.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
      file.write(name.data(), name_len);
      Shape shape = param.shape();
      if (i + 1 == named.size()) shape[0] += 1;  // poison the tail
      const uint32_t rank = static_cast<uint32_t>(shape.size());
      file.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
      for (int64_t d : shape) {
        file.write(reinterpret_cast<const char*>(&d), sizeof(d));
      }
      // Payload sized to the (possibly poisoned) shape, filled with a value
      // distinct from the live weights so a partial apply would be visible.
      const std::vector<float> payload(
          static_cast<size_t>(NumElements(shape)), 123.25f);
      file.write(reinterpret_cast<const char*>(payload.data()),
                 static_cast<std::streamsize>(payload.size() * sizeof(float)));
    }
  }

  const std::vector<float> before = SnapshotParams(*target);
  EXPECT_EQ(io::LoadCheckpoint(path, target.get()).code(),
            StatusCode::kFailedPrecondition);
  const std::vector<float> after = SnapshotParams(*target);
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(std::memcmp(after.data(), before.data(),
                        before.size() * sizeof(float)),
            0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Metadata header (format v2): identity round trip and v1 compatibility.
// ---------------------------------------------------------------------------

TEST(CheckpointTest, MetaRoundTrip) {
  Rng rng(41);
  auto model = models::MakeModel("RNN", 4, 2, Tensor(), models::ModelSizing(),
                                 rng);
  const std::string path = TempPath("meta.encp");
  io::CheckpointMeta meta;
  meta.model_name = "RNN";
  meta.num_entities = 4;
  meta.in_channels = 2;
  meta.history = 12;
  meta.horizon = 12;
  ASSERT_TRUE(io::SaveCheckpoint(path, *model, meta).ok());

  io::CheckpointMeta read;
  ASSERT_TRUE(io::ReadCheckpointMeta(path, &read).ok());
  EXPECT_TRUE(read.present);
  EXPECT_EQ(read.model_name, "RNN");
  EXPECT_EQ(read.num_entities, 4);
  EXPECT_EQ(read.in_channels, 2);
  EXPECT_EQ(read.history, 12);
  EXPECT_EQ(read.horizon, 12);

  // The metadata block must not disturb the parameter payloads.
  Rng rng2(42);
  auto restored = models::MakeModel("RNN", 4, 2, Tensor(),
                                    models::ModelSizing(), rng2);
  ASSERT_TRUE(io::LoadCheckpoint(path, restored.get()).ok());
  const std::vector<float> a = SnapshotParams(*model);
  const std::vector<float> b = SnapshotParams(*restored);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MetalessSaveReadsBackAsAbsent) {
  Rng rng(43);
  auto model = models::MakeModel("RNN", 4, 1, Tensor(), models::ModelSizing(),
                                 rng);
  const std::string path = TempPath("metaless.encp");
  ASSERT_TRUE(io::SaveCheckpoint(path, *model).ok());
  io::CheckpointMeta meta;
  meta.present = true;  // must be overwritten, not left stale
  ASSERT_TRUE(io::ReadCheckpointMeta(path, &meta).ok());
  EXPECT_FALSE(meta.present);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ReadMetaOnV1FileReportsAbsent) {
  // A hand-crafted v1 header (no has_meta byte at all): the reader must
  // treat it as metadata-absent, not misparse the parameter count.
  const std::string path = TempPath("v1_header.encp");
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write("ENCP", 4);
    const uint32_t version = 1;
    file.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t count = 0;
    file.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  io::CheckpointMeta meta;
  ASSERT_TRUE(io::ReadCheckpointMeta(path, &meta).ok());
  EXPECT_FALSE(meta.present);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ReadMetaErrorsMatchLoad) {
  io::CheckpointMeta meta;
  EXPECT_EQ(io::ReadCheckpointMeta("/nonexistent/x.encp", &meta).code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("meta_garbage.encp");
  WriteFile(path, "this is not a checkpoint");
  EXPECT_EQ(io::ReadCheckpointMeta(path, &meta).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, EveryTruncationOfMetaHeaderIsRejected) {
  // The kill-at-any-point guarantee extends to the metadata block: no
  // strict prefix of a v2-with-meta file passes either reader.
  Rng rng(44);
  auto model = models::MakeModel("RNN", 3, 1, Tensor(), models::ModelSizing(),
                                 rng);
  const std::string path = TempPath("meta_full.encp");
  io::CheckpointMeta meta;
  meta.model_name = "RNN";
  meta.num_entities = 3;
  meta.in_channels = 1;
  meta.history = 12;
  meta.horizon = 12;
  ASSERT_TRUE(io::SaveCheckpoint(path, *model, meta).ok());
  const std::string bytes = ReadFileBytes(path);
  // Truncate through the header region only (magic + version + has_meta +
  // name block + 4 int64 fields + param count); payload truncation is
  // covered by the meta-less test above. ReadCheckpointMeta stops before
  // the param count, so it legitimately succeeds once the meta block is
  // complete — only LoadCheckpoint must reject every header prefix.
  const size_t meta_len = 4 + 4 + 1 + (4 + 3) + 4 * 8;
  const size_t header_len = meta_len + 8;
  ASSERT_GT(bytes.size(), header_len);
  const std::string truncated_path = TempPath("meta_truncated.encp");
  for (size_t len = 0; len <= header_len; ++len) {
    WriteFile(truncated_path, bytes.substr(0, len));
    io::CheckpointMeta out;
    if (len < meta_len) {
      EXPECT_FALSE(io::ReadCheckpointMeta(truncated_path, &out).ok())
          << "meta read accepted a prefix of " << len << " bytes";
    }
    EXPECT_FALSE(io::LoadCheckpoint(truncated_path, model.get()).ok())
        << "load accepted a prefix of " << len << " bytes";
  }
  std::remove(truncated_path.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace enhancenet
