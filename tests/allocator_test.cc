#include "runtime/allocator.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/gru.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;

TEST(AllocatorTest, BucketRounding) {
  EXPECT_EQ(TensorAllocator::BucketNumel(0), TensorAllocator::kMinBucketNumel);
  EXPECT_EQ(TensorAllocator::BucketNumel(1), TensorAllocator::kMinBucketNumel);
  EXPECT_EQ(TensorAllocator::BucketNumel(32), 32);
  EXPECT_EQ(TensorAllocator::BucketNumel(33), 64);
  EXPECT_EQ(TensorAllocator::BucketNumel(1000), 1024);
  EXPECT_EQ(TensorAllocator::BucketNumel(TensorAllocator::kMaxBucketNumel),
            TensorAllocator::kMaxBucketNumel);
  // Above the largest bucket the pool is bypassed.
  EXPECT_EQ(TensorAllocator::BucketNumel(TensorAllocator::kMaxBucketNumel + 1),
            -1);
}

TEST(AllocatorTest, NegativeRequestDies) {
  EXPECT_DEATH(TensorAllocator::BucketNumel(-1), "negative allocation");
}

TEST(AllocatorTest, InvalidEnvChoiceDies) {
  EXPECT_DEATH(
      {
        setenv("ENHANCENET_ALLOCATOR", "bogus", /*overwrite=*/1);
        // Fresh process (death test child): first Global() touch parses env.
        TensorAllocator::Global();
      },
      "ENHANCENET_ALLOCATOR must be");
}

TEST(AllocatorTest, ReuseAfterReturn) {
  TensorAllocator allocator;
  float* first = nullptr;
  {
    std::shared_ptr<float[]> block = allocator.Allocate(100);
    first = block.get();
    block[0] = 42.0f;  // touch the memory
  }
  // The block went back to the 128-float bucket; same-size request gets the
  // same pointer back without a heap allocation.
  std::shared_ptr<float[]> again = allocator.Allocate(100);
  EXPECT_EQ(again.get(), first);

  AllocatorStats stats = allocator.GetStats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.pool_misses, 1);
  EXPECT_EQ(stats.pool_hits, 1);
  EXPECT_EQ(stats.oversize, 0);
}

TEST(AllocatorTest, AccountingAcrossLifecycle) {
  TensorAllocator allocator;
  constexpr int64_t kBytes = 128 * static_cast<int64_t>(sizeof(float));

  std::shared_ptr<float[]> a = allocator.Allocate(100);  // rounds to 128
  std::shared_ptr<float[]> b = allocator.Allocate(100);
  AllocatorStats stats = allocator.GetStats();
  EXPECT_EQ(stats.bytes_outstanding, 2 * kBytes);
  EXPECT_EQ(stats.bytes_high_water, 2 * kBytes);
  EXPECT_EQ(stats.bytes_cached, 0);

  a.reset();
  stats = allocator.GetStats();
  EXPECT_EQ(stats.bytes_outstanding, kBytes);
  EXPECT_EQ(stats.bytes_cached, kBytes);
  EXPECT_EQ(stats.bytes_high_water, 2 * kBytes);  // peak sticks

  // ResetStats restarts the high-water mark from current outstanding.
  allocator.ResetStats();
  stats = allocator.GetStats();
  EXPECT_EQ(stats.requests, 0);
  EXPECT_EQ(stats.bytes_outstanding, kBytes);
  EXPECT_EQ(stats.bytes_high_water, kBytes);

  // Trim frees the cached block but not the live one.
  allocator.Trim();
  stats = allocator.GetStats();
  EXPECT_EQ(stats.bytes_cached, 0);
  EXPECT_EQ(stats.bytes_outstanding, kBytes);
  b[0] = 1.0f;  // still usable
}

TEST(AllocatorTest, OversizeBypassesPool) {
  TensorAllocator allocator;
  const int64_t numel = TensorAllocator::kMaxBucketNumel + 1;
  {
    std::shared_ptr<float[]> big = allocator.Allocate(numel);
    big[0] = 1.0f;
    big[numel - 1] = 2.0f;
    AllocatorStats stats = allocator.GetStats();
    EXPECT_EQ(stats.oversize, 1);
    EXPECT_EQ(stats.bytes_outstanding,
              numel * static_cast<int64_t>(sizeof(float)));
  }
  // Released straight to the system allocator, never cached.
  AllocatorStats stats = allocator.GetStats();
  EXPECT_EQ(stats.bytes_outstanding, 0);
  EXPECT_EQ(stats.bytes_cached, 0);
}

TEST(AllocatorTest, SystemModeNeverCaches) {
  TensorAllocator allocator;
  allocator.set_caching_enabled(false);
  float* first = nullptr;
  {
    std::shared_ptr<float[]> block = allocator.Allocate(64);
    first = block.get();
    (void)first;
  }
  AllocatorStats stats = allocator.GetStats();
  EXPECT_EQ(stats.bytes_cached, 0);
  std::shared_ptr<float[]> again = allocator.Allocate(64);
  stats = allocator.GetStats();
  // Both requests missed: accounting is identical to caching mode except
  // nothing is ever served from a free list.
  EXPECT_EQ(stats.pool_hits, 0);
  EXPECT_EQ(stats.pool_misses, 2);
}

TEST(AllocatorTest, ConcurrentAllocFreeStress) {
  TensorAllocator allocator;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&allocator, &failures, t] {
      // Deterministic per-thread size sequence covering several buckets plus
      // brief cross-thread holds via a small local working set.
      std::vector<std::shared_ptr<float[]>> held;
      for (int i = 0; i < kIters; ++i) {
        const int64_t numel = (int64_t{1} << (3 + (i + t) % 10)) + t;
        std::shared_ptr<float[]> block = allocator.Allocate(numel);
        block[0] = static_cast<float>(t);
        block[numel - 1] = static_cast<float>(i);
        if (block[0] != static_cast<float>(t)) failures.fetch_add(1);
        held.push_back(std::move(block));
        if (held.size() > 4) held.erase(held.begin());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  AllocatorStats stats = allocator.GetStats();
  EXPECT_EQ(stats.requests, kThreads * kIters);
  EXPECT_EQ(stats.bytes_outstanding, 0);  // everything returned
  EXPECT_GT(stats.pool_hits, 0);          // recycling did happen
}

// The tentpole property: after one warmup step, a training step's tensor
// traffic is served entirely from the pool — zero heap allocations in steady
// state. Exercised through the real op stack (GRU forward + backward + a
// parameter update), against the process-global allocator Tensor uses.
TEST(AllocatorTest, TrainingStepsHitPoolAfterWarmup) {
  TensorAllocator& allocator = TensorAllocator::Global();
  const bool was_caching = allocator.caching_enabled();
  allocator.set_caching_enabled(true);

  Rng rng(1234);
  nn::GruCell cell(8, 16, rng);
  const Tensor x = Tensor::Randn({32, 8}, rng);
  const Tensor h0 = Tensor::Zeros({32, 16});

  auto step = [&] {
    ag::Variable h = ag::Variable::Leaf(h0, /*requires_grad=*/false);
    for (int t = 0; t < 4; ++t) {
      h = cell.Forward(ag::Variable::Leaf(x, /*requires_grad=*/false), h);
    }
    ag::Variable loss = ag::MeanAll(ag::Square(h));
    for (auto& p : cell.Parameters()) p.ZeroGrad();
    loss.Backward();
  };

  step();  // warmup: populates the buckets for every shape the step makes
  step();  // second pass returns/retakes the same blocks
  allocator.ResetStats();
  for (int i = 0; i < 5; ++i) step();

  AllocatorStats stats = allocator.GetStats();
  ASSERT_GT(stats.requests, 0);
  EXPECT_EQ(stats.oversize, 0);
  EXPECT_GT(stats.HitRate(), 0.95)
      << "steady-state steps should allocate from the pool: hits="
      << stats.pool_hits << " misses=" << stats.pool_misses;

  allocator.set_caching_enabled(was_caching);
}

}  // namespace
}  // namespace enhancenet
