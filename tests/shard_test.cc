// Entity-sharded execution suite (DESIGN.md §12): ShardPlan partitioning
// (contiguous and edge-cut), HaloExchange entity lists and remap semantics,
// the EntityShardedExecutor's bitwise-identity contract against the
// single-context kernels, the anti-vacuousness guard (sharded applies must
// put allocator traffic on every shard), end-to-end bitwise identity for
// S ∈ {1, 2, 4} across all four model families, and SessionOptions::shards
// plumbing through serve::InferenceSession.
//
// Run alone with `ctest -L shard`; bench/run_shard_tsan.sh re-runs this
// label under ThreadSanitizer.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "graph/graph_conv.h"
#include "graph/sparse_adjacency.h"
#include "gtest/gtest.h"
#include "models/model_factory.h"
#include "obs/metrics.h"
#include "runtime/context.h"
#include "serve/inference_session.h"
#include "shard/executor.h"
#include "shard/halo.h"
#include "shard/shard_plan.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace {

namespace ag = ::enhancenet::autograd;

/// Bitwise equality: the sharded kernels promise the same bits, not just
/// the same values up to rounding, so memcmp is the right comparison.
void ExpectBitwiseEqual(const Tensor& actual, const Tensor& expected) {
  ASSERT_EQ(ShapeToString(actual.shape()), ShapeToString(expected.shape()));
  if (std::memcmp(actual.data(), expected.data(),
                  actual.numel() * sizeof(float)) == 0) {
    return;
  }
  for (int64_t i = 0; i < actual.numel(); ++i) {
    ASSERT_EQ(actual.data()[i], expected.data()[i]) << "element " << i;
  }
}

Tensor RandomDense(int64_t batch, int64_t n, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandUniform({batch, n, n}, rng, -1.0f, 1.0f);
}

// ---------------------------------------------------------------------------
// ShardPlan
// ---------------------------------------------------------------------------

TEST(ShardPlanTest, ContiguousPlanBalancesAndCovers) {
  const shard::ShardPlan plan = shard::MakeContiguousPlan(10, 4);
  ASSERT_TRUE(plan.defined());
  ASSERT_EQ(plan.num_shards(), 4);
  EXPECT_EQ(plan.boundaries.front(), 0);
  EXPECT_EQ(plan.boundaries.back(), 10);
  // Sizes differ by at most one; the first N % S shards take the extra row.
  EXPECT_EQ(plan.size(0), 3);
  EXPECT_EQ(plan.size(1), 3);
  EXPECT_EQ(plan.size(2), 2);
  EXPECT_EQ(plan.size(3), 2);
  for (int64_t e = 0; e < 10; ++e) {
    const int s = plan.ShardOf(e);
    EXPECT_GE(e, plan.begin(s));
    EXPECT_LT(e, plan.end(s));
  }
}

TEST(ShardPlanTest, ContiguousPlanClampsShardCount) {
  // More shards than entities: one entity per shard.
  const shard::ShardPlan over = shard::MakeContiguousPlan(3, 8);
  EXPECT_EQ(over.num_shards(), 3);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(over.size(s), 1);
  // Zero/negative requests clamp to a single shard.
  EXPECT_EQ(shard::MakeContiguousPlan(5, 0).num_shards(), 1);
  EXPECT_EQ(shard::MakeContiguousPlan(5, -2).num_shards(), 1);
}

TEST(ShardPlanTest, EdgeCutPlanMovesTheCutToTheClusterBoundary) {
  // Two clusters {0..2} and {3..7} with no cross-cluster weight. The
  // balanced cut for S=2 is at 4 (splitting cluster two); the edge-cut plan
  // slides it to 3, where nothing crosses.
  const int64_t n = 8;
  Tensor adj = Tensor::Zeros({n, n});
  const auto connect = [&](int64_t i, int64_t j) {
    adj.at({i, j}) = 1.0f;
    adj.at({j, i}) = 1.0f;
  };
  connect(0, 1);
  connect(1, 2);
  connect(0, 2);
  connect(3, 7);
  connect(4, 6);
  connect(5, 7);
  connect(3, 5);
  const shard::ShardPlan plan = shard::MakeEdgeCutPlan(adj, 2);
  ASSERT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(plan.boundaries[1], 3);
  EXPECT_EQ(plan.boundaries.front(), 0);
  EXPECT_EQ(plan.boundaries.back(), n);
}

TEST(ShardPlanTest, EdgeCutPlanKeepsBalancedCutWhenNothingIsCheaper) {
  // A ring has the same crossing weight at every cut, so the tie-break
  // (closest to the balanced position) keeps the contiguous boundaries.
  const int64_t n = 12;
  Tensor adj = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    adj.at({i, (i + 1) % n}) = 1.0f;
    adj.at({(i + 1) % n, i}) = 1.0f;
  }
  const shard::ShardPlan plan = shard::MakeEdgeCutPlan(adj, 3);
  const shard::ShardPlan balanced = shard::MakeContiguousPlan(n, 3);
  EXPECT_EQ(plan.boundaries, balanced.boundaries);
}

// ---------------------------------------------------------------------------
// HaloExchange
// ---------------------------------------------------------------------------

/// Walks every shard-owned position of the pattern and checks the remap
/// resolves to exactly the operand entity the single-context kernel reads.
void CheckHaloConsistency(const ag::SparseIndex& index,
                          const shard::ShardPlan& plan, bool transpose) {
  shard::HaloExchange exchange(index, plan, transpose);
  const int64_t batch = index.batch;
  const int64_t n = index.n;
  const int64_t kk = index.nnz / (batch * n);
  const int32_t* cols = index.cols.data();
  const int32_t* bounds = transpose ? index.t_row_offsets.data()
                                    : index.row_offsets.data();
  const int32_t* tperm = transpose ? index.t_perm.data() : nullptr;

  int64_t total_external = 0;
  for (int s = 0; s < plan.num_shards(); ++s) {
    const shard::ShardHalo& halo = exchange.halo(s);
    const int64_t b0 = plan.begin(s);
    const int64_t b1 = plan.end(s);
    // Entity lists are sorted, unique, and strictly external.
    for (size_t h = 0; h < halo.entities.size(); ++h) {
      const int32_t id = halo.entities[h];
      EXPECT_TRUE(id < b0 || id >= b1) << "shard " << s << " lists owned row";
      if (h > 0) {
        EXPECT_LT(halo.entities[h - 1], id);
      }
    }
    total_external += static_cast<int64_t>(halo.entities.size());

    ASSERT_EQ(static_cast<int64_t>(halo.slot_base.size()), batch + 1);
    const int32_t* remap = halo.remap.data();
    int64_t slot = 0;
    for (int64_t b = 0; b < batch; ++b) {
      EXPECT_EQ(halo.slot_base[b], slot);
      const int64_t p0 = bounds[b * n + b0];
      const int64_t p1 = bounds[b * n + b1];
      for (int64_t p = p0; p < p1; ++p, ++slot) {
        const int64_t operand =
            transpose ? (tperm[p] / kk) % n : static_cast<int64_t>(cols[p]);
        const int32_t m = remap[slot];
        if (m >= 0) {
          EXPECT_EQ(m, operand);
          EXPECT_GE(operand, b0);
          EXPECT_LT(operand, b1);
        } else {
          const int64_t halo_row = ~m;
          ASSERT_LT(halo_row, static_cast<int64_t>(halo.entities.size()));
          EXPECT_EQ(halo.entities[halo_row], operand);
        }
      }
    }
    EXPECT_EQ(halo.slot_base[batch], slot);
  }
  EXPECT_EQ(exchange.TotalHaloEntities(), total_external);
  // A top-k pattern over a random dense matrix with k < N and multiple
  // shards must reference someone else's rows.
  if (plan.num_shards() > 1 && kk < n) {
    EXPECT_GT(total_external, 0);
  }
}

TEST(HaloExchangeTest, RemapResolvesEveryOperandCsrAndCsc) {
  const int64_t batch = 2, n = 10, k = 3;
  graph::SparseAdjacency sparse = graph::TopKSparsify(RandomDense(batch, n, 77), k);
  const shard::ShardPlan plan = shard::MakeContiguousPlan(n, 3);
  CheckHaloConsistency(sparse.index, plan, /*transpose=*/false);
  CheckHaloConsistency(sparse.index, plan, /*transpose=*/true);
}

TEST(HaloExchangeTest, GatherCopiesTheListedRows) {
  const int64_t batch = 2, n = 8, k = 2, channels = 3;
  graph::SparseAdjacency sparse = graph::TopKSparsify(RandomDense(batch, n, 78), k);
  const shard::ShardPlan plan = shard::MakeContiguousPlan(n, 2);
  shard::HaloExchange exchange(sparse.index, plan, /*transpose=*/false);
  Rng rng(79);
  const Tensor x = Tensor::Randn({batch, n, channels}, rng);
  for (int s = 0; s < plan.num_shards(); ++s) {
    exchange.GatherShard(s, x);
    const shard::ShardHalo& halo = exchange.halo(s);
    const int64_t h = static_cast<int64_t>(halo.entities.size());
    ASSERT_EQ(ShapeToString(halo.buffer.shape()),
              ShapeToString(Shape{batch, h, channels}));
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t row = 0; row < h; ++row) {
        const float* copied = halo.buffer.data() + (b * h + row) * channels;
        const float* source =
            x.data() + (b * n + halo.entities[row]) * channels;
        EXPECT_EQ(std::memcmp(copied, source, channels * sizeof(float)), 0)
            << "shard " << s << " batch " << b << " halo row " << row;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// EntityShardedExecutor kernels: bitwise identity + placement
// ---------------------------------------------------------------------------

TEST(ShardExecutorTest, ApplyDenseBitwiseMatchesAdjacencyMatMul) {
  const int64_t batch = 2, n = 11, channels = 5;
  Rng rng(80);
  Tensor adj = Tensor::RandUniform({n, n}, rng, 0.0f, 1.0f);
  // Realistic sparsity: the dense kernel's zero-skip must be replicated.
  for (int64_t i = 0; i < adj.numel(); ++i) {
    if (adj.data()[i] < 0.4f) adj.data()[i] = 0.0f;
  }
  const Tensor x = Tensor::Randn({batch, n, channels}, rng);
  const Tensor reference =
      ag::AdjacencyMatMul(ag::Variable::Leaf(adj, false),
                          ag::Variable::Leaf(x, false))
          .data();
  for (const int s : {1, 2, 3, 4}) {
    shard::EntityShardedExecutor executor(shard::MakeContiguousPlan(n, s));
    ExpectBitwiseEqual(executor.ApplyDense(adj, x), reference);
  }
}

TEST(ShardExecutorTest, ApplySparseBitwiseMatchesSparseAdjacencyMatMul) {
  const int64_t batch = 2, n = 13, channels = 4, k = 4;
  graph::SparseAdjacency sparse = graph::TopKSparsify(RandomDense(batch, n, 81), k);
  Rng rng(82);
  const Tensor x = Tensor::Randn({batch, n, channels}, rng);
  const ag::Variable xv = ag::Variable::Leaf(x, false);
  for (const bool transpose : {false, true}) {
    const Tensor reference =
        ag::SparseAdjacencyMatMul(sparse.values, sparse.index, xv, transpose)
            .data();
    for (const int s : {1, 2, 4}) {
      shard::EntityShardedExecutor executor(shard::MakeContiguousPlan(n, s));
      ExpectBitwiseEqual(executor.ApplySparse(sparse.index,
                                              sparse.values.data(), x,
                                              transpose),
                         reference);
    }
  }
}

TEST(ShardExecutorTest, ShardedApplyPutsTrafficOnEveryShardAllocator) {
  // The anti-vacuousness guard: shards > 1 must actually change execution
  // placement. Each shard stages its output slab (and any halo buffer) on
  // its own allocator, so after one apply every shard shows traffic.
  const int64_t batch = 2, n = 12, channels = 4;
  shard::EntityShardedExecutor executor(shard::MakeContiguousPlan(n, 4));
  Rng rng(83);
  const Tensor adj = Tensor::RandUniform({n, n}, rng, 0.0f, 1.0f);
  const Tensor x = Tensor::Randn({batch, n, channels}, rng);
  executor.ApplyDense(adj, x);
  for (int s = 0; s < executor.num_shards(); ++s) {
    const AllocatorStats stats = executor.ShardAllocatorStats(s);
    EXPECT_GT(stats.requests, 0) << "shard " << s << " saw no allocations";
  }
  // The per-shard gauges mirror the same accounting.
  obs::Registry& registry = obs::Registry::Global();
  for (int s = 0; s < executor.num_shards(); ++s) {
    EXPECT_GT(registry
                  .GetGauge("tensor.alloc.shard." + std::to_string(s) +
                            ".requests")
                  ->Get(),
              0.0);
  }
}

TEST(ShardExecutorTest, SparseApplyPublishesHaloTrafficGauges) {
  const int64_t batch = 2, n = 16, channels = 4, k = 3;
  graph::SparseAdjacency sparse = graph::TopKSparsify(RandomDense(batch, n, 84), k);
  Rng rng(85);
  const Tensor x = Tensor::Randn({batch, n, channels}, rng);
  shard::EntityShardedExecutor executor(shard::MakeContiguousPlan(n, 4));
  executor.ApplySparse(sparse.index, sparse.values.data(), x, false);
  obs::Registry& registry = obs::Registry::Global();
  const double entities = registry.GetGauge("shard.halo.entities")->Get();
  const double bytes = registry.GetGauge("shard.halo.bytes")->Get();
  EXPECT_GT(entities, 0.0);
  EXPECT_EQ(bytes, entities * batch * channels * sizeof(float));
}

TEST(ShardExecutorTest, ForCurrentContextGatesCachesAndClamps) {
  // Default context: shards == 1, no executor.
  EXPECT_EQ(shard::EntityShardedExecutor::ForCurrentContext(64), nullptr);

  runtime::RuntimeContext::Options options;
  options.private_exec = true;
  runtime::RuntimeContext context(options);
  context.exec().shards.store(4, std::memory_order_relaxed);
  runtime::RuntimeContext::Bind bind(context);

  const auto executor = shard::EntityShardedExecutor::ForCurrentContext(64);
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor->num_shards(), 4);
  // Same entity count: the extension-slot instance is reused, not rebuilt.
  EXPECT_EQ(shard::EntityShardedExecutor::ForCurrentContext(64).get(),
            executor.get());
  // A different entity count rebuilds; shard count clamps to the graph.
  const auto small = shard::EntityShardedExecutor::ForCurrentContext(3);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(small->num_shards(), 3);
  EXPECT_NE(small.get(), executor.get());
  // Degenerate graphs never shard.
  EXPECT_EQ(shard::EntityShardedExecutor::ForCurrentContext(1), nullptr);
}

// ---------------------------------------------------------------------------
// End to end: sharded forward bitwise-identical across the model families
// ---------------------------------------------------------------------------

models::ModelSizing TinySizing() {
  models::ModelSizing sizing;
  sizing.rnn_hidden = 8;
  sizing.rnn_hidden_dfgn = 4;
  sizing.tcn_channels = 6;
  sizing.tcn_channels_dfgn = 4;
  sizing.skip_channels = 6;
  sizing.end_channels = 8;
  sizing.memory_dim = 6;
  sizing.dfgn_hidden1 = 6;
  sizing.dfgn_hidden2 = 3;
  sizing.damgn_mem_dim = 4;
  sizing.damgn_embed_dim = 3;
  return sizing;
}

/// One representative per family: the full EnhanceNet RNN and TCN variants
/// (both own a DAMGN, so with topk set the sparse halo path is exercised
/// too) plus the two graph baselines, which stress the dense apply.
class ShardedForwardTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedForwardTest, BitwiseIdenticalForOneTwoAndFourShards) {
  const std::string& name = GetParam();
  const int64_t entities = 12, channels = 2;
  Rng dist_rng(86);
  Tensor dist = Tensor::RandUniform({entities, entities}, dist_rng, 0.3f, 4.0f);
  for (int64_t i = 0; i < entities; ++i) dist.at({i, i}) = 0.0f;
  const Tensor adjacency = graph::GaussianKernelAdjacency(dist);
  Rng model_rng(87);
  auto model = models::MakeModel(name, entities, channels, adjacency,
                                 TinySizing(), model_rng);
  model->SetTraining(false);
  Rng data_rng(88);
  const Tensor x = Tensor::Randn({2, entities, 12, channels}, data_rng);

  const auto run = [&](int shards) {
    runtime::RuntimeContext::Options options;
    options.private_exec = true;
    options.private_allocator = true;
    runtime::RuntimeContext context(options);
    // topk = 4 routes the DAMGN variants through TopKAttention +
    // SparseAdjacencyMatMul, so sharding covers the halo-exchange path and
    // not just the dense apply.
    context.exec().topk.store(4, std::memory_order_relaxed);
    context.exec().shards.store(shards, std::memory_order_relaxed);
    runtime::RuntimeContext::Bind bind(context);
    ag::NoGradGuard no_grad;
    Rng fwd(89);
    return model->Predict(x, fwd).data();
  };

  const Tensor baseline = run(1);
  ExpectBitwiseEqual(run(2), baseline);
  ExpectBitwiseEqual(run(4), baseline);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ShardedForwardTest,
    ::testing::Values("D-DA-GRNN", "D-DA-GTCN", "DCRNN", "GraphWaveNet"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Serve plumbing: SessionOptions::shards
// ---------------------------------------------------------------------------

TEST(ServeShardTest, SessionShardsServeBitwiseIdenticalForecasts) {
  const int64_t entities = 12;
  data::CtsData data = data::MakeEbLike(entities, 2, /*seed=*/90);
  const Tensor adjacency = graph::GaussianKernelAdjacency(data.distances);
  data::StandardScaler scaler;
  scaler.Fit(data.series, 0, data.num_steps() * 7 / 10);

  serve::ModelSpec spec;
  spec.model_name = "D-DA-GRNN";
  spec.num_entities = entities;
  spec.in_channels = 1;
  spec.target_channel = 0;
  spec.adjacency = adjacency;
  spec.sizing = TinySizing();
  // No checkpoint: both sessions serve the same seed-deterministic weights.

  const auto serve_window = [&](int shards, Tensor* forecast) {
    serve::SessionOptions options;
    options.seed = 91;
    options.topk = 4;
    options.shards = shards;
    std::unique_ptr<serve::InferenceSession> session;
    const Status created =
        serve::InferenceSession::Create(spec, options, scaler, &session);
    ASSERT_TRUE(created.ok()) << created.ToString();
    EXPECT_EQ(session->context().exec().shards.load(std::memory_order_relaxed),
              shards < 1 ? 1 : shards);
    Tensor window(Shape{entities, 12, 1});
    for (int64_t i = 0; i < entities; ++i) {
      for (int64_t h = 0; h < 12; ++h) {
        window.at({i, h, 0}) = data.series.at({i, h, 0});
      }
    }
    serve::PredictRequest request;
    request.history = window;
    serve::PredictResponse response;
    const Status served = session->Predict(request, &response);
    ASSERT_TRUE(served.ok()) << served.ToString();
    *forecast = response.forecast;
  };

  Tensor single, sharded;
  serve_window(1, &single);
  serve_window(4, &sharded);
  ExpectBitwiseEqual(sharded, single);
  // The sharded session really placed work on per-shard allocators.
  EXPECT_GT(obs::Registry::Global()
                .GetGauge("tensor.alloc.shard.3.requests")
                ->Get(),
            0.0);
}

// A session with shards unset (-1) shares the process exec config, exactly
// like the topk knob: no private ExecConfig is materialized.
TEST(ServeShardTest, InheritedShardsSharesProcessExecConfig) {
  const int64_t entities = 6;
  data::CtsData data = data::MakeEbLike(entities, 2, /*seed=*/92);
  data::StandardScaler scaler;
  scaler.Fit(data.series, 0, data.num_steps() * 7 / 10);
  serve::ModelSpec spec;
  spec.model_name = "RNN";
  spec.num_entities = entities;
  spec.in_channels = 1;
  spec.sizing = TinySizing();
  serve::SessionOptions options;
  std::unique_ptr<serve::InferenceSession> inherited;
  ASSERT_TRUE(
      serve::InferenceSession::Create(spec, options, scaler, &inherited).ok());
  EXPECT_EQ(inherited->context().exec_ptr(),
            runtime::RuntimeContext::Default().exec_ptr());
  options.shards = 2;
  std::unique_ptr<serve::InferenceSession> pinned;
  ASSERT_TRUE(
      serve::InferenceSession::Create(spec, options, scaler, &pinned).ok());
  EXPECT_NE(pinned->context().exec_ptr(),
            runtime::RuntimeContext::Default().exec_ptr());
}

}  // namespace
}  // namespace enhancenet
