#ifndef ENHANCENET_TESTS_TEST_UTIL_H_
#define ENHANCENET_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace testing {

/// Checks every analytic gradient of `inputs` against central finite
/// differences of `fn` (a scalar-valued function of the inputs). `fn` must
/// be a pure function of the inputs' data.
inline void ExpectGradientsMatch(
    const std::function<autograd::Variable()>& fn,
    std::vector<autograd::Variable> inputs, float eps = 1e-2f,
    float tolerance = 2e-2f) {
  autograd::Variable out = fn();
  ASSERT_EQ(out.numel(), 1) << "gradient check needs a scalar output";
  for (auto& input : inputs) input.ZeroGrad();
  out.Backward();

  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    autograd::Variable& input = inputs[vi];
    ASSERT_TRUE(input.has_grad()) << "input " << vi << " got no gradient";
    const Tensor analytic = input.grad().Clone();
    float* data = input.mutable_data().data();
    for (int64_t i = 0; i < input.numel(); ++i) {
      const float saved = data[i];
      data[i] = saved + eps;
      const float plus = fn().data().item();
      data[i] = saved - eps;
      const float minus = fn().data().item();
      data[i] = saved;
      const float numeric = (plus - minus) / (2.0f * eps);
      const float a = analytic.data()[i];
      EXPECT_NEAR(a, numeric, tolerance + tolerance * std::fabs(numeric))
          << "input " << vi << " element " << i;
    }
  }
}

/// EXPECT that two tensors match elementwise within tolerance.
inline void ExpectTensorNear(const Tensor& actual, const Tensor& expected,
                             float tolerance = 1e-5f) {
  ASSERT_EQ(ShapeToString(actual.shape()), ShapeToString(expected.shape()));
  const float* pa = actual.data();
  const float* pe = expected.data();
  for (int64_t i = 0; i < actual.numel(); ++i) {
    EXPECT_NEAR(pa[i], pe[i], tolerance) << "element " << i;
  }
}

}  // namespace testing
}  // namespace enhancenet

#endif  // ENHANCENET_TESTS_TEST_UTIL_H_
