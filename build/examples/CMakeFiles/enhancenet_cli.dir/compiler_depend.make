# Empty compiler generated dependencies file for enhancenet_cli.
# This may be replaced when dependencies are built.
