file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_cli.dir/enhancenet_cli.cpp.o"
  "CMakeFiles/enhancenet_cli.dir/enhancenet_cli.cpp.o.d"
  "enhancenet_cli"
  "enhancenet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
