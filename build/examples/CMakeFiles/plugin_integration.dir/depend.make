# Empty dependencies file for plugin_integration.
# This may be replaced when dependencies are built.
