file(REMOVE_RECURSE
  "CMakeFiles/plugin_integration.dir/plugin_integration.cpp.o"
  "CMakeFiles/plugin_integration.dir/plugin_integration.cpp.o.d"
  "plugin_integration"
  "plugin_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugin_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
