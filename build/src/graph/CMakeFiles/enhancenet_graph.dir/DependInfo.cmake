
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency.cc" "src/graph/CMakeFiles/enhancenet_graph.dir/adjacency.cc.o" "gcc" "src/graph/CMakeFiles/enhancenet_graph.dir/adjacency.cc.o.d"
  "/root/repo/src/graph/graph_conv.cc" "src/graph/CMakeFiles/enhancenet_graph.dir/graph_conv.cc.o" "gcc" "src/graph/CMakeFiles/enhancenet_graph.dir/graph_conv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/enhancenet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/enhancenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/enhancenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/enhancenet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
