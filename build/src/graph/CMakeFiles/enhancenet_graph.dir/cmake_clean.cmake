file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_graph.dir/adjacency.cc.o"
  "CMakeFiles/enhancenet_graph.dir/adjacency.cc.o.d"
  "CMakeFiles/enhancenet_graph.dir/graph_conv.cc.o"
  "CMakeFiles/enhancenet_graph.dir/graph_conv.cc.o.d"
  "libenhancenet_graph.a"
  "libenhancenet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
