# Empty compiler generated dependencies file for enhancenet_graph.
# This may be replaced when dependencies are built.
