file(REMOVE_RECURSE
  "libenhancenet_graph.a"
)
