# Empty dependencies file for enhancenet_nn.
# This may be replaced when dependencies are built.
