file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_nn.dir/gru.cc.o"
  "CMakeFiles/enhancenet_nn.dir/gru.cc.o.d"
  "CMakeFiles/enhancenet_nn.dir/init.cc.o"
  "CMakeFiles/enhancenet_nn.dir/init.cc.o.d"
  "CMakeFiles/enhancenet_nn.dir/linear.cc.o"
  "CMakeFiles/enhancenet_nn.dir/linear.cc.o.d"
  "CMakeFiles/enhancenet_nn.dir/module.cc.o"
  "CMakeFiles/enhancenet_nn.dir/module.cc.o.d"
  "libenhancenet_nn.a"
  "libenhancenet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
