file(REMOVE_RECURSE
  "libenhancenet_nn.a"
)
