# Empty compiler generated dependencies file for enhancenet_tensor.
# This may be replaced when dependencies are built.
