file(REMOVE_RECURSE
  "libenhancenet_tensor.a"
)
