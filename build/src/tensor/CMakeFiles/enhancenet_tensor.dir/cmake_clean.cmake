file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_tensor.dir/tensor.cc.o"
  "CMakeFiles/enhancenet_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/enhancenet_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/enhancenet_tensor.dir/tensor_ops.cc.o.d"
  "libenhancenet_tensor.a"
  "libenhancenet_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
