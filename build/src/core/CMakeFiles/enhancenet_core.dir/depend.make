# Empty dependencies file for enhancenet_core.
# This may be replaced when dependencies are built.
