file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_core.dir/damgn.cc.o"
  "CMakeFiles/enhancenet_core.dir/damgn.cc.o.d"
  "CMakeFiles/enhancenet_core.dir/dfgn.cc.o"
  "CMakeFiles/enhancenet_core.dir/dfgn.cc.o.d"
  "CMakeFiles/enhancenet_core.dir/enhance_gru_cell.cc.o"
  "CMakeFiles/enhancenet_core.dir/enhance_gru_cell.cc.o.d"
  "CMakeFiles/enhancenet_core.dir/enhance_tcn_layer.cc.o"
  "CMakeFiles/enhancenet_core.dir/enhance_tcn_layer.cc.o.d"
  "libenhancenet_core.a"
  "libenhancenet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
