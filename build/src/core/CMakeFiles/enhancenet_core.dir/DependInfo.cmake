
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/damgn.cc" "src/core/CMakeFiles/enhancenet_core.dir/damgn.cc.o" "gcc" "src/core/CMakeFiles/enhancenet_core.dir/damgn.cc.o.d"
  "/root/repo/src/core/dfgn.cc" "src/core/CMakeFiles/enhancenet_core.dir/dfgn.cc.o" "gcc" "src/core/CMakeFiles/enhancenet_core.dir/dfgn.cc.o.d"
  "/root/repo/src/core/enhance_gru_cell.cc" "src/core/CMakeFiles/enhancenet_core.dir/enhance_gru_cell.cc.o" "gcc" "src/core/CMakeFiles/enhancenet_core.dir/enhance_gru_cell.cc.o.d"
  "/root/repo/src/core/enhance_tcn_layer.cc" "src/core/CMakeFiles/enhancenet_core.dir/enhance_tcn_layer.cc.o" "gcc" "src/core/CMakeFiles/enhancenet_core.dir/enhance_tcn_layer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/enhancenet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/enhancenet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/enhancenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/enhancenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/enhancenet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
