file(REMOVE_RECURSE
  "libenhancenet_core.a"
)
