
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/heatmap.cc" "src/analysis/CMakeFiles/enhancenet_analysis.dir/heatmap.cc.o" "gcc" "src/analysis/CMakeFiles/enhancenet_analysis.dir/heatmap.cc.o.d"
  "/root/repo/src/analysis/kmeans.cc" "src/analysis/CMakeFiles/enhancenet_analysis.dir/kmeans.cc.o" "gcc" "src/analysis/CMakeFiles/enhancenet_analysis.dir/kmeans.cc.o.d"
  "/root/repo/src/analysis/tsne.cc" "src/analysis/CMakeFiles/enhancenet_analysis.dir/tsne.cc.o" "gcc" "src/analysis/CMakeFiles/enhancenet_analysis.dir/tsne.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/enhancenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/enhancenet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
