# Empty compiler generated dependencies file for enhancenet_analysis.
# This may be replaced when dependencies are built.
