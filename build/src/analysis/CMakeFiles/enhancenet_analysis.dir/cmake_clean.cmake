file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_analysis.dir/heatmap.cc.o"
  "CMakeFiles/enhancenet_analysis.dir/heatmap.cc.o.d"
  "CMakeFiles/enhancenet_analysis.dir/kmeans.cc.o"
  "CMakeFiles/enhancenet_analysis.dir/kmeans.cc.o.d"
  "CMakeFiles/enhancenet_analysis.dir/tsne.cc.o"
  "CMakeFiles/enhancenet_analysis.dir/tsne.cc.o.d"
  "libenhancenet_analysis.a"
  "libenhancenet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
