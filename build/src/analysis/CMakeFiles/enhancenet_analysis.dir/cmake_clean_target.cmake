file(REMOVE_RECURSE
  "libenhancenet_analysis.a"
)
