# Empty dependencies file for enhancenet_io.
# This may be replaced when dependencies are built.
