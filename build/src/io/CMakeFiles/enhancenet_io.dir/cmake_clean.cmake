file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_io.dir/checkpoint.cc.o"
  "CMakeFiles/enhancenet_io.dir/checkpoint.cc.o.d"
  "CMakeFiles/enhancenet_io.dir/csv.cc.o"
  "CMakeFiles/enhancenet_io.dir/csv.cc.o.d"
  "libenhancenet_io.a"
  "libenhancenet_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
