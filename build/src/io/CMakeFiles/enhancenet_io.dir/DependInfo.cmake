
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/checkpoint.cc" "src/io/CMakeFiles/enhancenet_io.dir/checkpoint.cc.o" "gcc" "src/io/CMakeFiles/enhancenet_io.dir/checkpoint.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/enhancenet_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/enhancenet_io.dir/csv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/enhancenet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/enhancenet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/enhancenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/enhancenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/enhancenet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
