file(REMOVE_RECURSE
  "libenhancenet_io.a"
)
