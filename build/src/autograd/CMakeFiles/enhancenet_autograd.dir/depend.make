# Empty dependencies file for enhancenet_autograd.
# This may be replaced when dependencies are built.
