file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_autograd.dir/ops.cc.o"
  "CMakeFiles/enhancenet_autograd.dir/ops.cc.o.d"
  "CMakeFiles/enhancenet_autograd.dir/variable.cc.o"
  "CMakeFiles/enhancenet_autograd.dir/variable.cc.o.d"
  "libenhancenet_autograd.a"
  "libenhancenet_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
