file(REMOVE_RECURSE
  "libenhancenet_autograd.a"
)
