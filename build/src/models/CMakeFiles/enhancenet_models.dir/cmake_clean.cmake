file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_models.dir/arima.cc.o"
  "CMakeFiles/enhancenet_models.dir/arima.cc.o.d"
  "CMakeFiles/enhancenet_models.dir/classical.cc.o"
  "CMakeFiles/enhancenet_models.dir/classical.cc.o.d"
  "CMakeFiles/enhancenet_models.dir/lstm_model.cc.o"
  "CMakeFiles/enhancenet_models.dir/lstm_model.cc.o.d"
  "CMakeFiles/enhancenet_models.dir/model_factory.cc.o"
  "CMakeFiles/enhancenet_models.dir/model_factory.cc.o.d"
  "CMakeFiles/enhancenet_models.dir/rnn_model.cc.o"
  "CMakeFiles/enhancenet_models.dir/rnn_model.cc.o.d"
  "CMakeFiles/enhancenet_models.dir/stgcn.cc.o"
  "CMakeFiles/enhancenet_models.dir/stgcn.cc.o.d"
  "CMakeFiles/enhancenet_models.dir/tcn_model.cc.o"
  "CMakeFiles/enhancenet_models.dir/tcn_model.cc.o.d"
  "libenhancenet_models.a"
  "libenhancenet_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
