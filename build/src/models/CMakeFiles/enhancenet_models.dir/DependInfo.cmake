
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/arima.cc" "src/models/CMakeFiles/enhancenet_models.dir/arima.cc.o" "gcc" "src/models/CMakeFiles/enhancenet_models.dir/arima.cc.o.d"
  "/root/repo/src/models/classical.cc" "src/models/CMakeFiles/enhancenet_models.dir/classical.cc.o" "gcc" "src/models/CMakeFiles/enhancenet_models.dir/classical.cc.o.d"
  "/root/repo/src/models/lstm_model.cc" "src/models/CMakeFiles/enhancenet_models.dir/lstm_model.cc.o" "gcc" "src/models/CMakeFiles/enhancenet_models.dir/lstm_model.cc.o.d"
  "/root/repo/src/models/model_factory.cc" "src/models/CMakeFiles/enhancenet_models.dir/model_factory.cc.o" "gcc" "src/models/CMakeFiles/enhancenet_models.dir/model_factory.cc.o.d"
  "/root/repo/src/models/rnn_model.cc" "src/models/CMakeFiles/enhancenet_models.dir/rnn_model.cc.o" "gcc" "src/models/CMakeFiles/enhancenet_models.dir/rnn_model.cc.o.d"
  "/root/repo/src/models/stgcn.cc" "src/models/CMakeFiles/enhancenet_models.dir/stgcn.cc.o" "gcc" "src/models/CMakeFiles/enhancenet_models.dir/stgcn.cc.o.d"
  "/root/repo/src/models/tcn_model.cc" "src/models/CMakeFiles/enhancenet_models.dir/tcn_model.cc.o" "gcc" "src/models/CMakeFiles/enhancenet_models.dir/tcn_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/enhancenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/enhancenet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/enhancenet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/enhancenet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/enhancenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/enhancenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/enhancenet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
