# Empty compiler generated dependencies file for enhancenet_models.
# This may be replaced when dependencies are built.
