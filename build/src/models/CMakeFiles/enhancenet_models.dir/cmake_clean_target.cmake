file(REMOVE_RECURSE
  "libenhancenet_models.a"
)
