file(REMOVE_RECURSE
  "libenhancenet_common.a"
)
