file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_common.dir/rng.cc.o"
  "CMakeFiles/enhancenet_common.dir/rng.cc.o.d"
  "CMakeFiles/enhancenet_common.dir/status.cc.o"
  "CMakeFiles/enhancenet_common.dir/status.cc.o.d"
  "libenhancenet_common.a"
  "libenhancenet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
