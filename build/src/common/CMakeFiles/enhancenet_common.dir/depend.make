# Empty dependencies file for enhancenet_common.
# This may be replaced when dependencies are built.
