file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_optim.dir/optimizer.cc.o"
  "CMakeFiles/enhancenet_optim.dir/optimizer.cc.o.d"
  "libenhancenet_optim.a"
  "libenhancenet_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
