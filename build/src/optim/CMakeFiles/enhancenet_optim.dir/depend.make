# Empty dependencies file for enhancenet_optim.
# This may be replaced when dependencies are built.
