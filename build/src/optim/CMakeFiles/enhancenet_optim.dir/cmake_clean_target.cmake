file(REMOVE_RECURSE
  "libenhancenet_optim.a"
)
