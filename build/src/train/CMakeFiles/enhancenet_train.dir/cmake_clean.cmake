file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_train.dir/metrics.cc.o"
  "CMakeFiles/enhancenet_train.dir/metrics.cc.o.d"
  "CMakeFiles/enhancenet_train.dir/trainer.cc.o"
  "CMakeFiles/enhancenet_train.dir/trainer.cc.o.d"
  "libenhancenet_train.a"
  "libenhancenet_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
