# Empty dependencies file for enhancenet_train.
# This may be replaced when dependencies are built.
