file(REMOVE_RECURSE
  "libenhancenet_train.a"
)
