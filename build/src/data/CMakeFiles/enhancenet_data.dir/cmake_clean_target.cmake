file(REMOVE_RECURSE
  "libenhancenet_data.a"
)
