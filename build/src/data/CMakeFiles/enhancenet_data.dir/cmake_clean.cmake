file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_data.dir/dataset.cc.o"
  "CMakeFiles/enhancenet_data.dir/dataset.cc.o.d"
  "CMakeFiles/enhancenet_data.dir/synthetic.cc.o"
  "CMakeFiles/enhancenet_data.dir/synthetic.cc.o.d"
  "libenhancenet_data.a"
  "libenhancenet_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
