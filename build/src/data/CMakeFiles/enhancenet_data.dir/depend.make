# Empty dependencies file for enhancenet_data.
# This may be replaced when dependencies are built.
