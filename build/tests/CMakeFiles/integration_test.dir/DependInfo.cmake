
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/enhancenet_io.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/enhancenet_train.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/enhancenet_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/enhancenet_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/enhancenet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/enhancenet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/enhancenet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/enhancenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/enhancenet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/enhancenet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/enhancenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/enhancenet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
