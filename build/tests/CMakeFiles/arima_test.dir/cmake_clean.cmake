file(REMOVE_RECURSE
  "CMakeFiles/arima_test.dir/arima_test.cc.o"
  "CMakeFiles/arima_test.dir/arima_test.cc.o.d"
  "arima_test"
  "arima_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arima_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
