# Empty dependencies file for enhancenet_bench_common.
# This may be replaced when dependencies are built.
