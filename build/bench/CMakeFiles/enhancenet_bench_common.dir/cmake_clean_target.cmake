file(REMOVE_RECURSE
  "libenhancenet_bench_common.a"
)
