file(REMOVE_RECURSE
  "CMakeFiles/enhancenet_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/enhancenet_bench_common.dir/bench_common.cc.o.d"
  "libenhancenet_bench_common.a"
  "libenhancenet_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancenet_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
