# Lint: environment access is centralized in src/runtime/env.cc. Any other
# getenv call bypasses the validated accessors (runtime/env.h) and breaks the
# "unknown/ malformed ENHANCENET_* values are fatal" contract, so this script
# fails the test suite when one appears.
#
# Run as a CTest test:
#   cmake -DREPO_ROOT=<repo> -P cmake/lint_no_getenv.cmake

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "lint_no_getenv: pass -DREPO_ROOT=<repo root>")
endif()

file(GLOB_RECURSE candidates
    "${REPO_ROOT}/src/*.cc" "${REPO_ROOT}/src/*.h"
    "${REPO_ROOT}/tests/*.cc" "${REPO_ROOT}/tests/*.h"
    "${REPO_ROOT}/bench/*.cc" "${REPO_ROOT}/bench/*.h"
    "${REPO_ROOT}/examples/*.cc" "${REPO_ROOT}/examples/*.cpp"
    "${REPO_ROOT}/examples/*.h")

set(violations "")
foreach(path ${candidates})
  # Only src/runtime/ may read the environment. Skip build trees that may
  # nest under the scanned directories.
  if(path MATCHES "/src/runtime/" OR path MATCHES "/build/")
    continue()
  endif()
  file(READ "${path}" contents)
  # Plain string search: "getenv" matches std::getenv and ::getenv but not
  # setenv/unsetenv (tests use those to stage env-var scenarios).
  string(FIND "${contents}" "getenv" hit)
  if(NOT hit EQUAL -1)
    list(APPEND violations "${path}")
  endif()
endforeach()

if(violations)
  list(JOIN violations "\n  " pretty)
  message(FATAL_ERROR
      "getenv outside src/runtime/ — route it through runtime/env.h:\n"
      "  ${pretty}")
endif()

message(STATUS "lint_no_getenv: clean")
