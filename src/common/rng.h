#ifndef ENHANCENET_COMMON_RNG_H_
#define ENHANCENET_COMMON_RNG_H_

#include <cstdint>

namespace enhancenet {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (weight initialization, dropout,
/// synthetic data generation, batch shuffling) draws from an explicitly
/// seeded Rng so results are reproducible bit-for-bit across runs. The class
/// is intentionally independent of <random> engines so seeds mean the same
/// thing on every platform.
class Rng {
 public:
  /// Seeds the generator. Two Rngs with the same seed produce identical
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Forks an independent generator; the child stream does not overlap with
  /// the parent's continued stream in practice (distinct SplitMix64 seeds).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace enhancenet

#endif  // ENHANCENET_COMMON_RNG_H_
