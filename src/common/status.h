#ifndef ENHANCENET_COMMON_STATUS_H_
#define ENHANCENET_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace enhancenet {

/// Error categories for fallible, user-facing operations. Programmer errors
/// (shape mismatches inside the tensor library, violated invariants) use the
/// CHECK macros in logging.h instead and abort.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
};

/// A lightweight success-or-error result, modelled after absl::Status /
/// rocksdb::Status. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: bad horizon".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define ENHANCENET_RETURN_IF_ERROR(expr)              \
  do {                                                \
    ::enhancenet::Status _status = (expr);            \
    if (!_status.ok()) return _status;                \
  } while (0)

}  // namespace enhancenet

#endif  // ENHANCENET_COMMON_STATUS_H_
