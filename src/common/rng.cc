#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace enhancenet {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 so that low-entropy seeds (0, 1, 2...)
  // still give well-mixed initial states, as recommended by the xoshiro
  // authors.
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  ENHANCENET_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  ENHANCENET_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; caches the second deviate.
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ull); }

}  // namespace enhancenet
