#ifndef ENHANCENET_COMMON_LOGGING_H_
#define ENHANCENET_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace enhancenet {
namespace internal_logging {

/// Accumulates a failure message and aborts the process on destruction.
/// Used by the CHECK macros below; never instantiate directly.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace enhancenet

/// Aborts with a message when `condition` is false. For programmer errors
/// (violated invariants, shape mismatches); user-facing fallible operations
/// return Status instead. Additional context can be streamed:
///   ENHANCENET_CHECK(a == b) << "a=" << a;
#define ENHANCENET_CHECK(condition)                                        \
  if (condition) {                                                         \
  } else /* NOLINT */                                                      \
    ::enhancenet::internal_logging::CheckFailure(__FILE__, __LINE__,       \
                                                 #condition)              \
        .stream()

#define ENHANCENET_CHECK_EQ(a, b) \
  ENHANCENET_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define ENHANCENET_CHECK_NE(a, b) \
  ENHANCENET_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define ENHANCENET_CHECK_LT(a, b) \
  ENHANCENET_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define ENHANCENET_CHECK_LE(a, b) \
  ENHANCENET_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define ENHANCENET_CHECK_GT(a, b) \
  ENHANCENET_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define ENHANCENET_CHECK_GE(a, b) \
  ENHANCENET_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // ENHANCENET_COMMON_LOGGING_H_
