#include "runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/context.h"

namespace enhancenet {
namespace {

// Opt-in (runtime::ProfilingEnabled) accounting of how ParallelFor carves
// work: regions dispatched to the pool vs. run inline, chunk counts, and
// what fraction of the available workers a region can actually occupy. The
// off path costs one relaxed atomic load per region.
struct ParallelProfile {
  obs::Counter* regions;
  obs::Counter* inline_regions;
  obs::Counter* chunks;
  obs::Histogram* chunks_per_region;
  obs::Histogram* shard_utilization;

  static ParallelProfile& Get() {
    static ParallelProfile profile = [] {
      obs::Registry& registry = obs::Registry::Global();
      ParallelProfile p;
      p.regions = registry.GetCounter("parallel.regions");
      p.inline_regions = registry.GetCounter("parallel.inline_regions");
      p.chunks = registry.GetCounter("parallel.chunks");
      p.chunks_per_region = registry.GetHistogram(
          "parallel.chunks_per_region", {1, 2, 4, 8, 16, 32, 64, 128});
      p.shard_utilization = registry.GetHistogram(
          "parallel.shard_utilization",
          {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0});
      return p;
    }();
    return profile;
  }
};

thread_local bool tls_in_parallel_region = false;

// Persistent worker pool. One parallel region runs at a time (outer regions
// from distinct user threads serialize on run_mutex_); nested regions run
// inline on the calling thread, so the pool never deadlocks on itself.
//
// Work distribution is dynamic (threads claim chunk indices from an atomic
// counter) but the chunk *boundaries* are fixed by the caller, so which
// thread runs a chunk never affects what the chunk computes.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    // Leaked intentionally: detached workers may outlive static destruction.
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  // Runs fn(chunk) for every chunk in [0, num_chunks), using the calling
  // thread plus up to (participants - 1) workers. Rethrows the first
  // exception any chunk raised. On return no pool thread is still touching
  // this job's state.
  void Run(int64_t num_chunks, int participants,
           const std::function<void(int64_t)>& fn) {
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    EnsureWorkers(participants - 1);

    // Publish the job in the same critical section that bumps the
    // generation. Workers read job state only after observing the new
    // generation (and job_active_) under this mutex, so there is no window
    // where a late-waking worker from a previous job can see half-written
    // state: if the job it was woken for has already completed, it finds
    // job_active_ == false and goes back to waiting.
    {
      std::lock_guard<std::mutex> lk(mutex_);
      job_fn_ = &fn;
      job_chunks_ = num_chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      pending_.store(num_chunks, std::memory_order_relaxed);
      first_error_ = nullptr;
      active_workers_ = std::min<int>(participants - 1,
                                      static_cast<int>(workers_.size()));
      job_active_ = true;
      ++generation_;
    }
    wake_cv_.notify_all();

    RunChunks();

    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] {
      return pending_.load(std::memory_order_acquire) == 0 && inflight_ == 0;
    });
    // Retire the job while still holding the lock: any worker that wakes
    // after this point sees job_active_ == false and never touches the
    // (about to be reused) job state.
    job_active_ = false;
    job_fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  ThreadPool() = default;

  void EnsureWorkers(int wanted) {
    std::lock_guard<std::mutex> lk(mutex_);
    wanted = std::min(wanted, 4096);
    while (static_cast<int>(workers_.size()) < wanted) {
      const int index = static_cast<int>(workers_.size());
      const uint64_t spawn_generation = generation_;
      workers_.emplace_back(
          [this, index, spawn_generation] { WorkerMain(index, spawn_generation); });
    }
  }

  void WorkerMain(int index, uint64_t seen_generation) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mutex_);
        wake_cv_.wait(lk, [&] { return generation_ != seen_generation; });
        seen_generation = generation_;
        // job_active_ distinguishes a live job from a late wake-up: if this
        // worker was scheduled only after the job it was woken for already
        // finished, the job's state is gone and must not be entered.
        if (!job_active_ || index >= active_workers_) continue;
        // Registered under the same lock as the generation gate: Run() for
        // this job cannot return, and the next job cannot reset state, while
        // this worker is inside RunChunks.
        ++inflight_;
      }
      RunChunks();
      {
        std::lock_guard<std::mutex> lk(mutex_);
        --inflight_;
      }
      done_cv_.notify_all();
    }
  }

  // Claims and executes chunks until none remain. Shared by the caller
  // thread and the workers.
  void RunChunks() {
    const bool saved_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    for (;;) {
      const int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job_chunks_) break;
      try {
        (*job_fn_)(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(mutex_);
        done_cv_.notify_all();
      }
    }
    tls_in_parallel_region = saved_region;
  }

  std::mutex run_mutex_;  // serializes outer parallel regions

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int active_workers_ = 0;
  int inflight_ = 0;  // workers currently inside RunChunks
  bool job_active_ = false;  // true between a job's publication and retirement
  std::vector<std::thread> workers_;

  // Job state below is written only inside mutex_ critical sections of
  // Run(); workers gate on (generation_, job_active_) under the same mutex
  // before reading any of it.
  const std::function<void(int64_t)>* job_fn_ = nullptr;
  int64_t job_chunks_ = 0;
  std::atomic<int64_t> next_chunk_{0};
  std::atomic<int64_t> pending_{0};

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

int GetNumThreads() {
  return runtime::RuntimeContext::Current().exec().num_threads.load(
      std::memory_order_relaxed);
}

void SetNumThreads(int n) {
  runtime::RuntimeContext::Current().exec().num_threads.store(
      std::max(n, 1), std::memory_order_relaxed);
}

bool InParallelRegion() { return tls_in_parallel_region; }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  const int64_t n = end - begin;
  if (grain < 1) grain = 1;
  const int threads = GetNumThreads();
  if (threads <= 1 || n <= grain || tls_in_parallel_region) {
    if (runtime::ProfilingEnabled()) {
      ParallelProfile::Get().inline_regions->Add();
    }
    fn(begin, end);
    return;
  }
  // Up to 4 chunks per thread for load balancing; all chunks except
  // possibly the final one are at least `grain` indices. Boundaries depend
  // only on (n, grain, threads); every index belongs to exactly one chunk.
  const int64_t max_chunks = std::max<int64_t>(
      1, std::min<int64_t>(n / grain, static_cast<int64_t>(threads) * 4));
  const int64_t chunk_size = CeilDiv(n, max_chunks);
  const int64_t num_chunks = CeilDiv(n, chunk_size);
  if (num_chunks <= 1) {
    if (runtime::ProfilingEnabled()) {
      ParallelProfile::Get().inline_regions->Add();
    }
    fn(begin, end);
    return;
  }
  if (runtime::ProfilingEnabled()) {
    ParallelProfile& profile = ParallelProfile::Get();
    profile.regions->Add();
    profile.chunks->Add(num_chunks);
    profile.chunks_per_region->Observe(static_cast<double>(num_chunks));
    profile.shard_utilization->Observe(
        static_cast<double>(std::min<int64_t>(num_chunks, threads)) /
        static_cast<double>(threads));
  }
  // Snapshot the caller's thread state once per region; every chunk —
  // whether it lands on a pool worker or back on the caller — re-installs
  // it, so kernels observe the same context, gradient mode, and trace stack
  // on every participating thread. Re-installation on the caller itself is
  // an idempotent TLS write, and RAII unwinds the state even when fn throws.
  runtime::RuntimeContext* bound_context =
      runtime::detail::BoundContextOrNull();
  const bool grad_enabled = runtime::ThreadGradEnabled();
  const std::vector<const char*> trace_stack = obs::TraceSpan::SnapshotStack();
  const std::function<void(int64_t)> chunk_fn = [&](int64_t chunk) {
    runtime::detail::ScopedContext context_scope(bound_context);
    runtime::detail::ScopedThreadGrad grad_scope(grad_enabled);
    obs::ScopedTraceStack trace_scope(trace_stack);
    const int64_t b = begin + chunk * chunk_size;
    const int64_t e = std::min(end, b + chunk_size);
    fn(b, e);
  };
  ThreadPool::Instance().Run(num_chunks, threads, chunk_fn);
}

double ParallelSum(int64_t n,
                   const std::function<double(int64_t, int64_t)>& block_sum) {
  if (n <= 0) return 0.0;
  // Fixed block size: the grouping of terms into partial sums must not
  // depend on the thread count, or the combine order would change rounding.
  constexpr int64_t kBlock = 65536;
  const int64_t num_blocks = CeilDiv(n, kBlock);
  if (num_blocks == 1) return block_sum(0, n);
  std::vector<double> partials(static_cast<size_t>(num_blocks), 0.0);
  ParallelFor(0, num_blocks, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const int64_t lo = b * kBlock;
      const int64_t hi = std::min(n, lo + kBlock);
      partials[static_cast<size_t>(b)] = block_sum(lo, hi);
    }
  });
  double total = 0.0;
  for (const double p : partials) total += p;
  return total;
}

}  // namespace enhancenet
