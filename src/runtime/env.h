#ifndef ENHANCENET_RUNTIME_ENV_H_
#define ENHANCENET_RUNTIME_ENV_H_

namespace enhancenet {
namespace runtime {

/// Validated accessors for every ENHANCENET_* environment variable the
/// library honors. This is the only translation unit in the tree allowed to
/// call getenv (enforced by cmake/lint_no_getenv.cmake); every other layer
/// reads configuration through the RuntimeContext, which is seeded from
/// these accessors exactly once.
///
/// Validation contract: an unset variable yields the documented default; a
/// malformed value is a fatal error that names the variable and the value it
/// rejected. Each accessor parses lazily on first call and caches the result
/// for the process lifetime, so death tests can exercise the fatal paths
/// before anything else has consulted the variable.
///
/// Boolean variables accept 0/false/off and 1/true/on (case-sensitive).

/// ENHANCENET_NUM_THREADS: worker count for ParallelFor. Unset defaults to
/// std::thread::hardware_concurrency(); set values must parse as an integer
/// in [1, 4096].
int EnvNumThreads();

/// ENHANCENET_ALLOCATOR: 'caching' (default) or 'system'. Controls whether
/// the default context's TensorAllocator recycles freed blocks.
bool EnvAllocatorCaching();

/// ENHANCENET_FUSED: fused recurrent-cell / optimizer kernels. Default on.
bool EnvFusedKernels();

/// ENHANCENET_EAGER_RELEASE: eager release of backward-pass state. Default
/// on.
bool EnvEagerRelease();

/// ENHANCENET_PROFILE: tensor-backend profiling counters. Default off.
bool EnvProfiling();

/// ENHANCENET_TOPK: top-k sparsification of the DAMGN dynamic adjacency.
/// 0 (default) keeps the dense path; k >= 1 keeps the k strongest attention
/// neighbours per entity row. Set values must parse as an integer in
/// [0, 2^24) (column indices are float-encoded, see DESIGN.md §10).
int EnvTopK();

/// ENHANCENET_SHARDS: entity-sharded execution (DESIGN.md §12). 1 (default)
/// keeps the single-context path bitwise unchanged; S >= 2 partitions the
/// entity graph into S contiguous shards, each bound to its own
/// RuntimeContext (allocator, workspace, thread-pool slice) with halo
/// exchange for cross-shard neighbours. Set values must parse as an integer
/// in [1, 1024].
int EnvShards();

/// ENHANCENET_SLO_MS: process-wide default latency budget (milliseconds)
/// for deadline-aware micro-batching. Requests that carry no explicit
/// `PredictRequest::deadline_ms` — and batchers whose `slo_ms` option is
/// unset — inherit it. 0.0 (default, unset) means "no process-wide SLO":
/// the batcher falls back to its `max_wait_ms` as the budget. Set values
/// must parse as a number in (0, 1e7].
double EnvSloMs();

/// ENHANCENET_QUICK: benchmark quick mode (fewer shapes). Default off.
/// Unlike the library variables above, re-parsed on every call (tests and
/// harness scripts toggle it at runtime).
bool EnvQuickMode();

/// ENHANCENET_FULL: benchmark full mode (every shape). Default off.
/// Re-parsed on every call, like ENHANCENET_QUICK.
bool EnvFullMode();

/// ENHANCENET_METRICS_OUT: path benchmarks dump a metrics JSON to on exit.
/// Returns nullptr when unset or empty (no validation beyond non-emptiness;
/// the path is handed to the exporter as-is). Re-parsed on every call.
const char* EnvMetricsOut();

}  // namespace runtime
}  // namespace enhancenet

#endif  // ENHANCENET_RUNTIME_ENV_H_
