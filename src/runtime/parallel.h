#ifndef ENHANCENET_RUNTIME_PARALLEL_H_
#define ENHANCENET_RUNTIME_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <utility>

namespace enhancenet {

/// Parallel-execution substrate: a persistent worker-thread pool plus a
/// ParallelFor primitive that the tensor kernels are written against.
///
/// Determinism contract: ParallelFor partitions [begin, end) into chunks and
/// every index is handed to `fn` exactly once, so any kernel that computes
/// each *output* element entirely inside the chunk that owns it produces
/// bitwise-identical results for every thread count (including 1). Chunk
/// boundaries may vary with the thread count; ownership of an index never
/// does. Kernels must therefore never accumulate across chunk boundaries
/// into shared state.
///
/// Thread-state propagation: each chunk runs under the caller's bound
/// RuntimeContext, gradient mode (runtime::ThreadGradEnabled), and obs
/// trace-span stack — thread_local state that a raw pool worker would
/// otherwise silently reset to its defaults. A kernel that allocates inside
/// a parallel region therefore uses the same allocator on every thread, and
/// a no-grad scope stays no-grad inside the region.
///
/// Thread count resolution:
///   * default: ENHANCENET_NUM_THREADS (validated by runtime/env.h) if set,
///     otherwise std::thread::hardware_concurrency();
///   * SetNumThreads() overrides at runtime (tests, benchmarks) by writing
///     the current context's exec config;
///   * a value of 1 is exactly the historical serial behavior — ParallelFor
///     invokes `fn(begin, end)` inline and never touches the pool.

/// Threads used by subsequent ParallelFor calls (>= 1). Reads the calling
/// thread's current RuntimeContext.
int GetNumThreads();

/// Overrides the thread count of the current context at runtime; values < 1
/// are clamped to 1. Workers are spawned lazily, so raising the count is
/// cheap until the next parallel region actually runs.
void SetNumThreads(int n);

/// True while the calling thread is executing inside a ParallelFor chunk.
/// Nested ParallelFor calls detect this and run serially (no deadlock, no
/// oversubscription).
bool InParallelRegion();

/// Invokes `fn(chunk_begin, chunk_end)` over a partition of [begin, end).
/// `grain` is the minimum chunk size: ranges of at most `grain` indices run
/// inline on the calling thread (the small-tensor serial fast path).
/// Exceptions thrown by `fn` are captured and the first one is rethrown on
/// the calling thread after all chunks finish.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Deterministic parallel sum reduction: computes
///   sum_{i in [0, n)} term(i)
/// in double precision. Terms are grouped into fixed-size blocks whose
/// partial sums are combined in ascending block order, so the result is
/// bitwise identical for every thread count.
double ParallelSum(int64_t n, const std::function<double(int64_t, int64_t)>& block_sum);

}  // namespace enhancenet

#endif  // ENHANCENET_RUNTIME_PARALLEL_H_
