#ifndef ENHANCENET_RUNTIME_CONTEXT_H_
#define ENHANCENET_RUNTIME_CONTEXT_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "runtime/allocator.h"
#include "runtime/workspace.h"

namespace enhancenet {
namespace runtime {

/// Mutable execution configuration shared by every thread of a context:
/// ParallelFor's thread budget, the fused-kernel and eager-release toggles,
/// and the tensor-backend profiling switch. All fields are relaxed atomics —
/// readers sit on hot paths (one load per kernel call) and the toggles are
/// control-plane knobs, not synchronization.
struct ExecConfig {
  ExecConfig(int threads, bool fused, bool eager, bool profile, int top_k = 0,
             int num_shards = 1)
      : num_threads(threads),
        fused_kernels(fused),
        eager_release(eager),
        profiling(profile),
        topk(top_k),
        shards(num_shards) {}

  std::atomic<int> num_threads;
  std::atomic<bool> fused_kernels;
  std::atomic<bool> eager_release;
  std::atomic<bool> profiling;
  /// Top-k sparsification of the DAMGN dynamic adjacency: 0 = dense
  /// (bitwise-identical to the pre-sparse code path), k >= 1 keeps the k
  /// strongest attention neighbours per entity row (DESIGN.md §10).
  std::atomic<int> topk;
  /// Entity-sharded execution (DESIGN.md §12): 1 = single-context path
  /// (bitwise-identical to the pre-shard code), S >= 2 partitions the entity
  /// dimension into S contiguous shards, each executing on its own
  /// RuntimeContext with halo exchange for cross-shard neighbours.
  std::atomic<int> shards;
};

/// An explicit bundle of the runtime state that used to live in process-wide
/// singletons: the tensor allocator, the execution config, and a per-context
/// scratch Workspace.
///
/// Ownership model:
///   * Default() is the process-wide context, configured once from the
///     ENHANCENET_* environment (runtime/env.h) and leaked like the obs
///     registry. Code that never binds a context gets exactly the historical
///     global behavior through it.
///   * Additional contexts (one per Trainer / InferenceSession) share
///     Default()'s allocator and exec config unless Options asks for private
///     copies; each context always owns its own Workspace. A private
///     allocator gives a session its own free lists and shard locks, so two
///     sessions serving concurrently never touch a common allocator mutex.
///
/// Binding: Current() resolves to the context bound to the calling thread by
/// a live RuntimeContext::Bind guard, falling back to Default(). Bind is a
/// nestable RAII scope in the spirit of autograd::NoGradGuard:
///
///   RuntimeContext::Bind bound(context_);
///   ... every Tensor allocation on this thread now uses context_ ...
///
/// ParallelFor propagates the caller's binding (plus its gradient mode and
/// trace-span stack) into worker threads, so a parallel kernel launched
/// under a bound context allocates from that context on every thread.
class RuntimeContext {
 public:
  struct Options {
    /// Explicit allocator / exec config to adopt. Null means "share
    /// Default()'s" unless the matching private_* flag asks for a fresh one.
    std::shared_ptr<TensorAllocator> allocator;
    std::shared_ptr<ExecConfig> exec;
    /// Fresh non-metric-exporting allocator instead of sharing Default()'s.
    bool private_allocator = false;
    /// Fresh exec config (seeded from Default()'s current values) instead of
    /// sharing Default()'s.
    bool private_exec = false;
    int allocator_shards = TensorAllocator::kDefaultShards;
  };

  /// Shares Default()'s allocator and exec config; owns a fresh Workspace.
  RuntimeContext();
  explicit RuntimeContext(const Options& options);
  ~RuntimeContext();

  RuntimeContext(const RuntimeContext&) = delete;
  RuntimeContext& operator=(const RuntimeContext&) = delete;

  /// The process-wide, env-configured context. Constructed on first use and
  /// intentionally leaked (its allocator's deleters may outlive static
  /// teardown).
  static RuntimeContext& Default();

  /// The context bound to the calling thread, or Default() when none is.
  static RuntimeContext& Current();

  /// Opaque per-context extension slot: lazily-built subsystem state whose
  /// lifetime must match the context's (the entity-sharded executor parks
  /// its per-shard contexts here, so a session's shard allocators retire as
  /// a unit with the session's context). Keyed by an arbitrary stable
  /// address (typically a function-local static tag in the owning library).
  /// Get returns the stored value or null; Set overwrites. Thread-safe.
  std::shared_ptr<void> GetExtension(const void* key) const;
  void SetExtension(const void* key, std::shared_ptr<void> value);

  TensorAllocator& allocator() { return *allocator_; }
  const std::shared_ptr<TensorAllocator>& allocator_ptr() const {
    return allocator_;
  }
  ExecConfig& exec() { return *exec_; }
  const std::shared_ptr<ExecConfig>& exec_ptr() const { return exec_; }
  Workspace& workspace() { return *workspace_; }

  /// RAII guard binding a context to the calling thread. Nestable; restores
  /// the previous binding (possibly none) on destruction. The context must
  /// outlive the guard.
  class Bind {
   public:
    explicit Bind(RuntimeContext& context);
    ~Bind();

    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    RuntimeContext* previous_;
  };

 private:
  struct DefaultTag {};
  explicit RuntimeContext(DefaultTag);

  std::shared_ptr<TensorAllocator> allocator_;
  std::shared_ptr<ExecConfig> exec_;
  std::unique_ptr<Workspace> workspace_;
  mutable std::mutex extensions_mu_;
  std::map<const void*, std::shared_ptr<void>> extensions_;
};

/// Per-thread gradient-recording flag (default true). autograd::GradMode and
/// NoGradGuard are thin facades over these; the flag lives here so the
/// parallel substrate can propagate it into workers without depending on
/// autograd.
bool ThreadGradEnabled();
void SetThreadGradEnabled(bool enabled);

/// Tensor-backend profiling switch of the calling thread's current context
/// (one relaxed load on the off path).
bool ProfilingEnabled();
void SetProfilingEnabled(bool enabled);

namespace detail {

/// The raw thread binding: null when the thread runs on Default(). Used by
/// ParallelFor to snapshot the caller's binding for its workers.
RuntimeContext* BoundContextOrNull();

/// Installs a (possibly null) binding for the current scope. Unlike Bind
/// this accepts null, so a worker can mirror an unbound caller exactly.
class ScopedContext {
 public:
  explicit ScopedContext(RuntimeContext* context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  RuntimeContext* previous_;
};

/// Installs a gradient-mode value for the current scope.
class ScopedThreadGrad {
 public:
  explicit ScopedThreadGrad(bool enabled);
  ~ScopedThreadGrad();

  ScopedThreadGrad(const ScopedThreadGrad&) = delete;
  ScopedThreadGrad& operator=(const ScopedThreadGrad&) = delete;

 private:
  bool previous_;
};

}  // namespace detail
}  // namespace runtime
}  // namespace enhancenet

#endif  // ENHANCENET_RUNTIME_CONTEXT_H_
