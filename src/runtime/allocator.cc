#include "runtime/allocator.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"
#include "runtime/context.h"

namespace enhancenet {
namespace {

constexpr int64_t kMinBucketLog2 = 5;   // 32 floats
constexpr int64_t kMaxBucketLog2 = 26;  // 64 Mi floats

int64_t Log2Ceil(int64_t n) {
  int64_t log2 = 0;
  while ((int64_t{1} << log2) < n) ++log2;
  return log2;
}

// Shard selection: each OS thread gets a stable ordinal in first-allocation
// order and is pinned to `ordinal % num_shards`. The first allocating thread
// (the main thread, in practice) is ordinal 0, so single-threaded code
// always sees shard 0 — which keeps the pre-shard stats tests exact.
std::atomic<int> g_thread_ordinal{0};
thread_local int tls_thread_ordinal = -1;

int ThreadOrdinal() {
  if (tls_thread_ordinal < 0) {
    tls_thread_ordinal = g_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_ordinal;
}

}  // namespace

/// Cached obs handles so every alloc/free is a registry-free relaxed store.
struct TensorAllocator::Metrics {
  obs::Counter* pool_hits;
  obs::Counter* pool_misses;
  obs::Counter* oversize;
  obs::Gauge* bytes_outstanding;
  obs::Gauge* bytes_cached;
  obs::Gauge* bytes_high_water;
  std::vector<obs::Gauge*> shard_hit_rate;

  explicit Metrics(int num_shards) {
    obs::Registry& registry = obs::Registry::Global();
    pool_hits = registry.GetCounter("tensor.alloc.pool_hits");
    pool_misses = registry.GetCounter("tensor.alloc.pool_misses");
    oversize = registry.GetCounter("tensor.alloc.oversize");
    bytes_outstanding = registry.GetGauge("tensor.alloc.bytes_outstanding");
    bytes_cached = registry.GetGauge("tensor.alloc.bytes_cached");
    bytes_high_water = registry.GetGauge("tensor.alloc.bytes_high_water");
    shard_hit_rate.reserve(static_cast<size_t>(num_shards));
    for (int i = 0; i < num_shards; ++i) {
      shard_hit_rate.push_back(registry.GetGauge(
          "tensor.alloc.shard." + std::to_string(i) + ".hit_rate"));
    }
  }
};

/// One independently locked slice of the pool. Hit/miss counters are atomics
/// so GetStats can sum them without taking every shard lock.
struct TensorAllocator::Shard {
  mutable std::mutex mu;
  std::vector<std::vector<float*>> buckets;  // free lists, by log2 capacity
  std::atomic<int64_t> pool_hits{0};
  std::atomic<int64_t> pool_misses{0};
};

/// Everything the deleters need, shared between the allocator and every
/// outstanding block so frees stay safe after the allocator is destroyed.
struct TensorAllocator::State {
  explicit State(int shard_count)
      : num_shards(shard_count), shards(new Shard[shard_count]) {
    for (int i = 0; i < shard_count; ++i) {
      shards[i].buckets.resize(static_cast<size_t>(kMaxBucketLog2 + 1));
    }
  }

  ~State() {
    delete metrics;
    for (int i = 0; i < num_shards; ++i) {
      for (std::vector<float*>& free_list : shards[i].buckets) {
        for (float* block : free_list) delete[] block;
      }
    }
  }

  const int num_shards;
  std::unique_ptr<Shard[]> shards;

  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> oversize{0};
  std::atomic<int64_t> bytes_outstanding{0};
  std::atomic<int64_t> bytes_cached{0};
  std::atomic<int64_t> bytes_high_water{0};
  std::atomic<bool> caching{true};
  // Set by ~TensorAllocator: late frees release directly instead of caching
  // into a pool nobody will ever pop from.
  std::atomic<bool> retired{false};
  Metrics* metrics = nullptr;  // null unless export_metrics

  Shard& ShardForThisThread() {
    return shards[ThreadOrdinal() % num_shards];
  }

  void RaiseHighWater(int64_t outstanding) {
    int64_t current = bytes_high_water.load(std::memory_order_relaxed);
    while (outstanding > current &&
           !bytes_high_water.compare_exchange_weak(
               current, outstanding, std::memory_order_relaxed)) {
    }
  }

  void PushGauges() {
    if (metrics == nullptr) return;
    metrics->bytes_outstanding->Set(static_cast<double>(
        bytes_outstanding.load(std::memory_order_relaxed)));
    metrics->bytes_cached->Set(
        static_cast<double>(bytes_cached.load(std::memory_order_relaxed)));
    metrics->bytes_high_water->Set(static_cast<double>(
        bytes_high_water.load(std::memory_order_relaxed)));
  }
};

TensorAllocator& TensorAllocator::Global() {
  return runtime::RuntimeContext::Default().allocator();
}

TensorAllocator::TensorAllocator(bool export_metrics, int num_shards)
    : state_(std::make_shared<State>(std::max(num_shards, 1))) {
  if (export_metrics) state_->metrics = new Metrics(state_->num_shards);
}

TensorAllocator::~TensorAllocator() {
  state_->retired.store(true, std::memory_order_relaxed);
  Trim();
}

int64_t TensorAllocator::BucketNumel(int64_t numel) {
  ENHANCENET_CHECK_GE(numel, 0) << "negative allocation";
  if (numel > kMaxBucketNumel) return -1;
  const int64_t log2 = std::max(Log2Ceil(numel), kMinBucketLog2);
  return int64_t{1} << log2;
}

std::shared_ptr<float[]> TensorAllocator::Allocate(int64_t numel) {
  State& st = *state_;
  const int64_t capacity = BucketNumel(numel);

  if (capacity < 0) {
    // Oversize: straight to the system allocator, never cached.
    const int64_t count = std::max<int64_t>(numel, 1);
    const int64_t bytes = count * static_cast<int64_t>(sizeof(float));
    float* block = new float[static_cast<size_t>(count)];
    st.requests.fetch_add(1, std::memory_order_relaxed);
    st.oversize.fetch_add(1, std::memory_order_relaxed);
    if (st.metrics != nullptr) st.metrics->oversize->Add();
    st.RaiseHighWater(
        st.bytes_outstanding.fetch_add(bytes, std::memory_order_relaxed) +
        bytes);
    st.PushGauges();
    std::shared_ptr<State> state = state_;
    return std::shared_ptr<float[]>(block, [state, count](float* p) {
      OnFree(*state, p, count, /*pooled=*/false);
    });
  }

  const size_t bucket = static_cast<size_t>(Log2Ceil(capacity));
  const int64_t bytes = capacity * static_cast<int64_t>(sizeof(float));
  Shard& shard = st.ShardForThisThread();
  float* block = nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<float*>& free_list = shard.buckets[bucket];
    if (!free_list.empty()) {
      block = free_list.back();
      free_list.pop_back();
    }
  }
  st.requests.fetch_add(1, std::memory_order_relaxed);
  if (block != nullptr) {
    shard.pool_hits.fetch_add(1, std::memory_order_relaxed);
    st.bytes_cached.fetch_sub(bytes, std::memory_order_relaxed);
    if (st.metrics != nullptr) st.metrics->pool_hits->Add();
  } else {
    shard.pool_misses.fetch_add(1, std::memory_order_relaxed);
    if (st.metrics != nullptr) st.metrics->pool_misses->Add();
  }
  st.RaiseHighWater(
      st.bytes_outstanding.fetch_add(bytes, std::memory_order_relaxed) +
      bytes);
  if (st.metrics != nullptr) {
    st.metrics->shard_hit_rate[static_cast<size_t>(&shard - st.shards.get())]
        ->Set(AllocatorShardStats{
                  shard.pool_hits.load(std::memory_order_relaxed),
                  shard.pool_misses.load(std::memory_order_relaxed)}
                  .HitRate());
  }
  st.PushGauges();
  if (block == nullptr) {
    block = new float[static_cast<size_t>(capacity)];
  }
  std::shared_ptr<State> state = state_;
  return std::shared_ptr<float[]>(block, [state, capacity](float* p) {
    OnFree(*state, p, capacity, /*pooled=*/true);
  });
}

void TensorAllocator::OnFree(State& st, float* block, int64_t capacity,
                             bool pooled) {
  const int64_t bytes = capacity * static_cast<int64_t>(sizeof(float));
  st.bytes_outstanding.fetch_sub(bytes, std::memory_order_relaxed);
  const bool cache = pooled && st.caching.load(std::memory_order_relaxed) &&
                     !st.retired.load(std::memory_order_relaxed);
  if (cache) {
    // Return to the FREEING thread's shard: same-thread alloc/free cycles
    // (the overwhelmingly common case) stay on one lock, and cross-thread
    // frees just migrate the block.
    Shard& shard = st.ShardForThisThread();
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.buckets[static_cast<size_t>(Log2Ceil(capacity))].push_back(block);
    st.bytes_cached.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    delete[] block;
  }
  st.PushGauges();
}

AllocatorStats TensorAllocator::GetStats() const {
  const State& st = *state_;
  AllocatorStats stats;
  stats.requests = st.requests.load(std::memory_order_relaxed);
  stats.oversize = st.oversize.load(std::memory_order_relaxed);
  stats.bytes_outstanding =
      st.bytes_outstanding.load(std::memory_order_relaxed);
  stats.bytes_cached = st.bytes_cached.load(std::memory_order_relaxed);
  stats.bytes_high_water =
      st.bytes_high_water.load(std::memory_order_relaxed);
  for (int i = 0; i < st.num_shards; ++i) {
    stats.pool_hits += st.shards[i].pool_hits.load(std::memory_order_relaxed);
    stats.pool_misses +=
        st.shards[i].pool_misses.load(std::memory_order_relaxed);
  }
  return stats;
}

std::vector<AllocatorShardStats> TensorAllocator::GetShardStats() const {
  const State& st = *state_;
  std::vector<AllocatorShardStats> out(static_cast<size_t>(st.num_shards));
  for (int i = 0; i < st.num_shards; ++i) {
    out[static_cast<size_t>(i)].pool_hits =
        st.shards[i].pool_hits.load(std::memory_order_relaxed);
    out[static_cast<size_t>(i)].pool_misses =
        st.shards[i].pool_misses.load(std::memory_order_relaxed);
  }
  return out;
}

int TensorAllocator::num_shards() const { return state_->num_shards; }

void TensorAllocator::ResetStats() {
  State& st = *state_;
  st.requests.store(0, std::memory_order_relaxed);
  st.oversize.store(0, std::memory_order_relaxed);
  for (int i = 0; i < st.num_shards; ++i) {
    st.shards[i].pool_hits.store(0, std::memory_order_relaxed);
    st.shards[i].pool_misses.store(0, std::memory_order_relaxed);
  }
  st.bytes_high_water.store(
      st.bytes_outstanding.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  st.PushGauges();
}

void TensorAllocator::Trim() {
  State& st = *state_;
  std::vector<float*> to_free;
  for (int i = 0; i < st.num_shards; ++i) {
    std::lock_guard<std::mutex> lock(st.shards[i].mu);
    for (std::vector<float*>& free_list : st.shards[i].buckets) {
      to_free.insert(to_free.end(), free_list.begin(), free_list.end());
      free_list.clear();
    }
  }
  st.bytes_cached.store(0, std::memory_order_relaxed);
  st.PushGauges();
  for (float* block : to_free) delete[] block;
}

bool TensorAllocator::caching_enabled() const {
  return state_->caching.load(std::memory_order_relaxed);
}

void TensorAllocator::set_caching_enabled(bool enabled) {
  state_->caching.store(enabled, std::memory_order_relaxed);
}

}  // namespace enhancenet
