#include "runtime/context.h"

#include "runtime/env.h"

namespace enhancenet {
namespace runtime {
namespace {

thread_local RuntimeContext* tls_bound = nullptr;
thread_local bool tls_grad_enabled = true;

}  // namespace

RuntimeContext::RuntimeContext(DefaultTag)
    : allocator_(std::make_shared<TensorAllocator>(
          /*export_metrics=*/true, TensorAllocator::kDefaultShards)),
      exec_(std::make_shared<ExecConfig>(EnvNumThreads(), EnvFusedKernels(),
                                         EnvEagerRelease(), EnvProfiling(),
                                         EnvTopK(), EnvShards())),
      workspace_(std::make_unique<Workspace>()) {
  // Parsed eagerly (not on first Allocate) so an invalid ENHANCENET_ALLOCATOR
  // aborts as soon as anything touches the default context.
  allocator_->set_caching_enabled(EnvAllocatorCaching());
}

RuntimeContext::RuntimeContext() : RuntimeContext(Options{}) {}

RuntimeContext::RuntimeContext(const Options& options)
    : workspace_(std::make_unique<Workspace>()) {
  RuntimeContext& def = Default();
  if (options.allocator != nullptr) {
    allocator_ = options.allocator;
  } else if (options.private_allocator) {
    allocator_ = std::make_shared<TensorAllocator>(
        /*export_metrics=*/false, options.allocator_shards);
    allocator_->set_caching_enabled(EnvAllocatorCaching());
  } else {
    allocator_ = def.allocator_;
  }
  if (options.exec != nullptr) {
    exec_ = options.exec;
  } else if (options.private_exec) {
    ExecConfig& d = *def.exec_;
    exec_ = std::make_shared<ExecConfig>(
        d.num_threads.load(std::memory_order_relaxed),
        d.fused_kernels.load(std::memory_order_relaxed),
        d.eager_release.load(std::memory_order_relaxed),
        d.profiling.load(std::memory_order_relaxed),
        d.topk.load(std::memory_order_relaxed),
        d.shards.load(std::memory_order_relaxed));
  } else {
    exec_ = def.exec_;
  }
}

RuntimeContext::~RuntimeContext() = default;

RuntimeContext& RuntimeContext::Default() {
  // Leaked intentionally: tensors allocated from it may live in static
  // storage, and their deleters must stay valid through process teardown.
  static RuntimeContext* context = new RuntimeContext(DefaultTag{});
  return *context;
}

std::shared_ptr<void> RuntimeContext::GetExtension(const void* key) const {
  std::lock_guard<std::mutex> lock(extensions_mu_);
  const auto it = extensions_.find(key);
  return it == extensions_.end() ? nullptr : it->second;
}

void RuntimeContext::SetExtension(const void* key,
                                  std::shared_ptr<void> value) {
  std::lock_guard<std::mutex> lock(extensions_mu_);
  extensions_[key] = std::move(value);
}

RuntimeContext& RuntimeContext::Current() {
  return tls_bound != nullptr ? *tls_bound : Default();
}

RuntimeContext::Bind::Bind(RuntimeContext& context) : previous_(tls_bound) {
  tls_bound = &context;
}

RuntimeContext::Bind::~Bind() { tls_bound = previous_; }

bool ThreadGradEnabled() { return tls_grad_enabled; }

void SetThreadGradEnabled(bool enabled) { tls_grad_enabled = enabled; }

bool ProfilingEnabled() {
  return RuntimeContext::Current().exec().profiling.load(
      std::memory_order_relaxed);
}

void SetProfilingEnabled(bool enabled) {
  RuntimeContext::Current().exec().profiling.store(enabled,
                                                   std::memory_order_relaxed);
}

namespace detail {

RuntimeContext* BoundContextOrNull() { return tls_bound; }

ScopedContext::ScopedContext(RuntimeContext* context) : previous_(tls_bound) {
  tls_bound = context;
}

ScopedContext::~ScopedContext() { tls_bound = previous_; }

ScopedThreadGrad::ScopedThreadGrad(bool enabled)
    : previous_(tls_grad_enabled) {
  tls_grad_enabled = enabled;
}

ScopedThreadGrad::~ScopedThreadGrad() { tls_grad_enabled = previous_; }

}  // namespace detail
}  // namespace runtime
}  // namespace enhancenet
