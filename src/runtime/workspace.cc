#include "runtime/workspace.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace enhancenet {
namespace runtime {

struct Workspace::State {
  mutable std::mutex mu;
  std::unordered_map<int64_t, std::vector<float*>> free_lists;
  std::unordered_map<int64_t, std::vector<int32_t*>> int_free_lists;
  WorkspaceStats stats;
  // Set by ~Workspace: blocks released afterwards are freed directly.
  std::atomic<bool> retired{false};

  ~State() {
    for (auto& [numel, blocks] : free_lists) {
      for (float* block : blocks) delete[] block;
    }
    for (auto& [numel, blocks] : int_free_lists) {
      for (int32_t* block : blocks) delete[] block;
    }
  }
};

Workspace::Workspace() : state_(std::make_shared<State>()) {}

Workspace::~Workspace() {
  state_->retired.store(true, std::memory_order_relaxed);
}

std::shared_ptr<float[]> Workspace::Acquire(int64_t numel) {
  ENHANCENET_CHECK_GE(numel, 0) << "negative workspace acquisition";
  const int64_t count = std::max<int64_t>(numel, 1);
  float* block = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->stats.acquires;
    auto it = state_->free_lists.find(count);
    if (it != state_->free_lists.end() && !it->second.empty()) {
      block = it->second.back();
      it->second.pop_back();
      ++state_->stats.hits;
      state_->stats.bytes_cached -=
          count * static_cast<int64_t>(sizeof(float));
    }
  }
  if (block == nullptr) block = new float[static_cast<size_t>(count)];
  // The deleter shares ownership of the state block, so releasing a block
  // after the workspace itself is gone frees it instead of reviving a dead
  // free list.
  std::shared_ptr<State> state = state_;
  return std::shared_ptr<float[]>(block, [state, count](float* p) {
    if (state->retired.load(std::memory_order_relaxed)) {
      delete[] p;
      return;
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->free_lists[count].push_back(p);
    state->stats.bytes_cached += count * static_cast<int64_t>(sizeof(float));
  });
}

std::shared_ptr<int32_t[]> Workspace::AcquireInts(int64_t numel) {
  ENHANCENET_CHECK_GE(numel, 0) << "negative workspace acquisition";
  const int64_t count = std::max<int64_t>(numel, 1);
  int32_t* block = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->stats.acquires;
    auto it = state_->int_free_lists.find(count);
    if (it != state_->int_free_lists.end() && !it->second.empty()) {
      block = it->second.back();
      it->second.pop_back();
      ++state_->stats.hits;
      state_->stats.bytes_cached -=
          count * static_cast<int64_t>(sizeof(int32_t));
    }
  }
  if (block == nullptr) block = new int32_t[static_cast<size_t>(count)];
  std::shared_ptr<State> state = state_;
  return std::shared_ptr<int32_t[]>(block, [state, count](int32_t* p) {
    if (state->retired.load(std::memory_order_relaxed)) {
      delete[] p;
      return;
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->int_free_lists[count].push_back(p);
    state->stats.bytes_cached +=
        count * static_cast<int64_t>(sizeof(int32_t));
  });
}

void Workspace::Trim() {
  std::vector<float*> to_free;
  std::vector<int32_t*> ints_to_free;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    for (auto& [numel, blocks] : state_->free_lists) {
      to_free.insert(to_free.end(), blocks.begin(), blocks.end());
      blocks.clear();
    }
    for (auto& [numel, blocks] : state_->int_free_lists) {
      ints_to_free.insert(ints_to_free.end(), blocks.begin(), blocks.end());
      blocks.clear();
    }
    state_->stats.bytes_cached = 0;
  }
  for (float* block : to_free) delete[] block;
  for (int32_t* block : ints_to_free) delete[] block;
}

WorkspaceStats Workspace::GetStats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

}  // namespace runtime
}  // namespace enhancenet
