#ifndef ENHANCENET_RUNTIME_WORKSPACE_H_
#define ENHANCENET_RUNTIME_WORKSPACE_H_

#include <cstdint>
#include <memory>

namespace enhancenet {
namespace runtime {

/// Point-in-time view of a workspace's accounting.
struct WorkspaceStats {
  int64_t acquires = 0;     ///< Acquire() calls
  int64_t hits = 0;         ///< served from a cached block
  int64_t bytes_cached = 0; ///< parked, ready for reuse

  double HitRate() const {
    return acquires == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(acquires);
  }
};

/// A reusable arena for per-step scratch buffers (attention score matrices,
/// softmax temporaries, transposed embedding blocks).
///
/// Unlike the bucketed TensorAllocator, the workspace keys its free lists by
/// the exact element count: step-scoped scratch shapes repeat identically
/// every step, so exact matching wastes no capacity on power-of-two
/// rounding, and the arena stays as small as one step's live set.
///
/// Acquire() returns an UNINITIALIZED block whose deleter parks it back on
/// the free list; in steady state a step performs zero heap allocations for
/// scratch. The state block is owned jointly by the workspace and every
/// outstanding deleter, so a block released after the workspace is destroyed
/// is freed directly instead of touching a dead free list.
///
/// Thread-safety: Acquire and release are mutex-protected; a workspace may
/// be shared by the threads of one session, but each RuntimeContext owns its
/// own workspace so contexts never contend with each other.
class Workspace {
 public:
  Workspace();
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Storage for `numel` floats (>= 0; zero-element requests get a 1-float
  /// block). Contents are NOT initialized — recycled blocks hold stale data.
  std::shared_ptr<float[]> Acquire(int64_t numel);

  /// int32 storage with the same pooling contract as Acquire. Backs the
  /// sparse-adjacency index arrays (column ids, CSR/CSC offsets, transpose
  /// permutations — DESIGN.md §10/§12), which are exact integers up to
  /// INT32_MAX instead of the 2^24 float-encoding ceiling.
  std::shared_ptr<int32_t[]> AcquireInts(int64_t numel);

  /// Frees every cached block. Outstanding blocks are unaffected.
  void Trim();

  WorkspaceStats GetStats() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace runtime
}  // namespace enhancenet

#endif  // ENHANCENET_RUNTIME_WORKSPACE_H_
