#include "runtime/env.h"

#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.h"

namespace enhancenet {
namespace runtime {
namespace {

// Each accessor owns its static so the variables parse independently: a
// death test for one variable must be able to run before (and without)
// forcing the others through their first parse in the parent process.

bool ParseBool(const char* name, bool default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return default_value;
  const std::string choice(value);
  if (choice == "1" || choice == "true" || choice == "on") return true;
  if (choice == "0" || choice == "false" || choice == "off") return false;
  ENHANCENET_CHECK(false) << name << " must be one of 0/false/off or "
                          << "1/true/on (got '" << choice << "')";
  return default_value;
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ParseNumThreads() {
  const char* value = std::getenv("ENHANCENET_NUM_THREADS");
  if (value == nullptr || value[0] == '\0') return HardwareThreads();
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  ENHANCENET_CHECK(end != value && *end == '\0' && v >= 1 && v <= 4096)
      << "ENHANCENET_NUM_THREADS must be an integer in [1, 4096] (got '"
      << value << "')";
  return static_cast<int>(v);
}

bool ParseAllocatorCaching() {
  const char* value = std::getenv("ENHANCENET_ALLOCATOR");
  if (value == nullptr || value[0] == '\0') return true;
  const std::string choice(value);
  if (choice == "caching") return true;
  if (choice == "system") return false;
  ENHANCENET_CHECK(false) << "ENHANCENET_ALLOCATOR must be 'caching' or "
                          << "'system' (got '" << choice << "')";
  return true;
}

int ParseTopK() {
  const char* value = std::getenv("ENHANCENET_TOPK");
  if (value == nullptr || value[0] == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  ENHANCENET_CHECK(end != value && *end == '\0' && v >= 0 &&
                   v < (1L << 24))
      << "ENHANCENET_TOPK must be an integer in [0, 2^24) (got '" << value
      << "')";
  return static_cast<int>(v);
}

int ParseShards() {
  const char* value = std::getenv("ENHANCENET_SHARDS");
  if (value == nullptr || value[0] == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  ENHANCENET_CHECK(end != value && *end == '\0' && v >= 1 && v <= 1024)
      << "ENHANCENET_SHARDS must be an integer in [1, 1024] (got '" << value
      << "')";
  return static_cast<int>(v);
}

double ParseSloMs() {
  const char* value = std::getenv("ENHANCENET_SLO_MS");
  if (value == nullptr || value[0] == '\0') return 0.0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  ENHANCENET_CHECK(end != value && *end == '\0' && v > 0.0 && v <= 1e7)
      << "ENHANCENET_SLO_MS must be a number in (0, 1e7] (got '" << value
      << "')";
  return v;
}

}  // namespace

int EnvNumThreads() {
  static const int value = ParseNumThreads();
  return value;
}

bool EnvAllocatorCaching() {
  static const bool value = ParseAllocatorCaching();
  return value;
}

bool EnvFusedKernels() {
  static const bool value = ParseBool("ENHANCENET_FUSED", true);
  return value;
}

bool EnvEagerRelease() {
  static const bool value = ParseBool("ENHANCENET_EAGER_RELEASE", true);
  return value;
}

bool EnvProfiling() {
  static const bool value = ParseBool("ENHANCENET_PROFILE", false);
  return value;
}

int EnvTopK() {
  static const int value = ParseTopK();
  return value;
}

int EnvShards() {
  static const int value = ParseShards();
  return value;
}

double EnvSloMs() {
  static const double value = ParseSloMs();
  return value;
}

// The benchmark-harness variables re-parse on every call (they are read at
// most a handful of times per process, and tests toggle them at runtime);
// only the library variables above cache for the process lifetime.

bool EnvQuickMode() { return ParseBool("ENHANCENET_QUICK", false); }

bool EnvFullMode() { return ParseBool("ENHANCENET_FULL", false); }

const char* EnvMetricsOut() {
  const char* path = std::getenv("ENHANCENET_METRICS_OUT");
  return (path == nullptr || path[0] == '\0') ? nullptr : path;
}

}  // namespace runtime
}  // namespace enhancenet
