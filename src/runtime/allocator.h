#ifndef ENHANCENET_RUNTIME_ALLOCATOR_H_
#define ENHANCENET_RUNTIME_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace enhancenet {

/// Point-in-time view of the allocator's accounting. All byte figures refer
/// to float storage handed out by Allocate (bucket-rounded capacity, not the
/// requested numel).
struct AllocatorStats {
  int64_t requests = 0;      ///< Allocate() calls.
  int64_t pool_hits = 0;     ///< served from a bucket free list
  int64_t pool_misses = 0;   ///< bucketable size, but the free list was empty
  int64_t oversize = 0;      ///< above kMaxBucketNumel; bypassed the pool
  int64_t bytes_outstanding = 0;  ///< held by live tensors right now
  int64_t bytes_cached = 0;       ///< parked on free lists, ready for reuse
  int64_t bytes_high_water = 0;   ///< peak of bytes_outstanding since reset

  /// Fraction of bucketable requests served from the pool (0 when none).
  double HitRate() const {
    const int64_t bucketable = pool_hits + pool_misses;
    return bucketable == 0
               ? 0.0
               : static_cast<double>(pool_hits) / static_cast<double>(bucketable);
  }
};

/// Per-shard hit/miss accounting (see GetShardStats).
struct AllocatorShardStats {
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;

  double HitRate() const {
    const int64_t bucketable = pool_hits + pool_misses;
    return bucketable == 0
               ? 0.0
               : static_cast<double>(pool_hits) / static_cast<double>(bucketable);
  }
};

/// Thread-safe, size-bucketed, shard-able caching allocator for Tensor
/// storage.
///
/// Allocate() rounds the requested element count up to a power-of-two bucket
/// and pops a recycled block from that bucket's free list when one is
/// available; the returned shared_ptr's deleter pushes the block back instead
/// of freeing it. In steady state a training step therefore performs zero
/// heap allocations for tensor storage: every shape the step produces was
/// produced by the previous step too, so every request is a pool hit.
///
/// Sharding: the free lists are split into `num_shards` independently locked
/// shards, and each OS thread is pinned to the shard `ordinal % num_shards`
/// (ordinals assigned in first-allocation order, so a single-threaded
/// process always uses shard 0 and sees exactly the pre-shard accounting).
/// Allocations and frees from the same thread touch the same shard lock, so
/// concurrent sessions on different threads never contend; a block freed on
/// a different thread than it was allocated on simply migrates shards.
///
/// Requests above kMaxBucketNumel bypass the pool entirely (allocated and
/// freed through the system allocator, still counted in the outstanding
/// stats) so a single giant tensor can never pin its high-water mark as
/// cached-but-idle memory.
///
/// `ENHANCENET_ALLOCATOR=system` disables caching for the default context's
/// instance (every free list stays empty; blocks are freed on release) as an
/// escape hatch for leak hunting with external heap tools. Accounting is
/// identical in both modes, so tests written against the stats run anywhere.
///
/// Lifetime: the allocator's free lists and counters live in a state block
/// shared with every outstanding deleter, so an instance may be destroyed
/// while its tensors are still alive — late frees release their block
/// directly instead of touching the retired pool.
///
/// Outstanding/high-water/cached bytes, hit/miss counts, and per-shard hit
/// rates (`tensor.alloc.shard.<i>.hit_rate`) are mirrored into the obs
/// registry by metric-exporting instances (the default context's).
class TensorAllocator {
 public:
  /// Smallest bucket: requests below this round up to it.
  static constexpr int64_t kMinBucketNumel = 1 << 5;  // 32 floats
  /// Largest cached bucket (64 Mi floats = 256 MiB); larger requests bypass
  /// the pool.
  static constexpr int64_t kMaxBucketNumel = 1 << 26;
  /// Default shard count: enough that a handful of sessions rarely collide.
  static constexpr int kDefaultShards = 8;

  /// The default context's instance (runtime::RuntimeContext::Default()).
  /// Never destroyed, so pooled deleters outlive every static-storage
  /// tensor. Contexts with a private allocator route around this entirely.
  static TensorAllocator& Global();

  /// `export_metrics` mirrors stats into the obs registry; only the default
  /// context's instance should pass true.
  explicit TensorAllocator(bool export_metrics = false,
                           int num_shards = kDefaultShards);
  ~TensorAllocator();

  TensorAllocator(const TensorAllocator&) = delete;
  TensorAllocator& operator=(const TensorAllocator&) = delete;

  /// Storage for `numel` floats (>= 0; zero-element requests get a 1-float
  /// block). Contents are NOT initialized — recycled blocks hold stale data.
  std::shared_ptr<float[]> Allocate(int64_t numel);

  AllocatorStats GetStats() const;

  /// Per-shard hit/miss counts, indexed by shard. Summing them reproduces
  /// GetStats().pool_hits / pool_misses.
  std::vector<AllocatorShardStats> GetShardStats() const;

  int num_shards() const;

  /// Zeroes the counters and restarts the high-water mark from the current
  /// outstanding bytes. Live blocks and free lists are untouched.
  void ResetStats();

  /// Frees every cached block. Storage owned by live tensors is unaffected.
  void Trim();

  bool caching_enabled() const;
  /// Runtime override of the ENHANCENET_ALLOCATOR default (tests, benches).
  /// Disabling does not free already-cached blocks; call Trim() for that.
  void set_caching_enabled(bool enabled);

  /// Bucket capacity (in floats) for a request, or -1 when the request is
  /// oversize and must bypass the pool. Exposed for tests.
  static int64_t BucketNumel(int64_t numel);

 private:
  struct Metrics;  // cached obs registry handles
  struct Shard;
  struct State;

  static void OnFree(State& state, float* block, int64_t capacity,
                     bool pooled);

  std::shared_ptr<State> state_;
};

}  // namespace enhancenet

#endif  // ENHANCENET_RUNTIME_ALLOCATOR_H_
