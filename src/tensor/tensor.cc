#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "runtime/context.h"

namespace enhancenet {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    ENHANCENET_CHECK_GE(d, 0) << "negative dimension in " << ShapeToString(shape);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor() : Tensor(Shape{}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(NumElements(shape_)) {
  ENHANCENET_CHECK_LE(shape_.size(), 4u)
      << "rank > 4 not supported: " << ShapeToString(shape_);
  storage_ = runtime::RuntimeContext::Current().allocator().Allocate(numel_);
  // Pooled blocks are recycled, so zero-initialization is explicit.
  std::fill(storage_.get(), storage_.get() + std::max<int64_t>(numel_, 1),
            0.0f);
}

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t(kUninitializedTag{});
  t.shape_ = std::move(shape);
  t.numel_ = NumElements(t.shape_);
  ENHANCENET_CHECK_LE(t.shape_.size(), 4u)
      << "rank > 4 not supported: " << ShapeToString(t.shape_);
  t.storage_ =
      runtime::RuntimeContext::Current().allocator().Allocate(t.numel_);
  return t;
}

Tensor Tensor::WithStorage(std::shared_ptr<float[]> storage, Shape shape) {
  ENHANCENET_CHECK(storage != nullptr) << "WithStorage: null storage";
  ENHANCENET_CHECK_LE(shape.size(), 4u)
      << "rank > 4 not supported: " << ShapeToString(shape);
  return Tensor(std::move(storage), std::move(shape));
}

Tensor::Tensor(std::shared_ptr<float[]> storage, Shape shape)
    : storage_(std::move(storage)),
      shape_(std::move(shape)),
      numel_(NumElements(shape_)) {}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape{}};
  t.data()[0] = value;
  return t;
}

Tensor Tensor::FromVector(Shape shape, const std::vector<float>& values) {
  Tensor t(std::move(shape));
  ENHANCENET_CHECK_EQ(t.numel(), static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

int64_t Tensor::size(int64_t d) const {
  const int64_t rank = dim();
  if (d < 0) d += rank;
  ENHANCENET_CHECK(d >= 0 && d < rank)
      << "dim " << d << " out of range for " << ShapeToString(shape_);
  return shape_[static_cast<size_t>(d)];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> index) const {
  ENHANCENET_CHECK_EQ(static_cast<int64_t>(index.size()), dim());
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : index) {
    ENHANCENET_CHECK(i >= 0 && i < shape_[d])
        << "index " << i << " out of range for dim " << d << " of "
        << ShapeToString(shape_);
    flat = flat * shape_[d] + i;
    ++d;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> index) {
  return storage_[FlatIndex(index)];
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  return storage_[FlatIndex(index)];
}

Tensor Tensor::Clone() const {
  Tensor t = Uninitialized(shape_);
  std::copy(data(), data() + numel_, t.data());
  return t;
}

Tensor Tensor::Reshape(Shape new_shape) const {
  // Resolve a single -1 dimension.
  int64_t known = 1;
  int inferred = -1;
  for (size_t d = 0; d < new_shape.size(); ++d) {
    if (new_shape[d] == -1) {
      ENHANCENET_CHECK_EQ(inferred, -1) << "multiple -1 dims in reshape";
      inferred = static_cast<int>(d);
    } else {
      known *= new_shape[d];
    }
  }
  if (inferred >= 0) {
    ENHANCENET_CHECK(known > 0 && numel_ % known == 0)
        << "cannot infer dim: " << numel_ << " vs " << ShapeToString(new_shape);
    new_shape[static_cast<size_t>(inferred)] = numel_ / known;
  }
  ENHANCENET_CHECK_EQ(NumElements(new_shape), numel_)
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  return Tensor(storage_, std::move(new_shape));
}

void Tensor::Fill(float value) {
  std::fill(data(), data() + numel_, value);
}

std::vector<float> Tensor::ToVector() const {
  return std::vector<float>(data(), data() + numel_);
}

float Tensor::item() const {
  ENHANCENET_CHECK_EQ(numel_, 1) << "item() on tensor " << ShapeToString(shape_);
  return storage_[0];
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min(numel_, max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << storage_[i];
  }
  if (n < numel_) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace enhancenet
