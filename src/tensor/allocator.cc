#include "tensor/allocator.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace enhancenet {
namespace {

constexpr int64_t kMinBucketLog2 = 5;   // 32 floats
constexpr int64_t kMaxBucketLog2 = 26;  // 64 Mi floats

int64_t Log2Ceil(int64_t n) {
  int64_t log2 = 0;
  while ((int64_t{1} << log2) < n) ++log2;
  return log2;
}

bool CachingEnabledFromEnv() {
  const char* value = std::getenv("ENHANCENET_ALLOCATOR");
  if (value == nullptr || value[0] == '\0') return true;
  const std::string choice(value);
  if (choice == "caching") return true;
  if (choice == "system") return false;
  ENHANCENET_CHECK(false) << "ENHANCENET_ALLOCATOR must be 'caching' or "
                          << "'system' (got '" << choice << "')";
  return true;
}

}  // namespace

/// Cached obs handles so every alloc/free is a registry-free relaxed store.
struct TensorAllocator::Metrics {
  obs::Counter* pool_hits;
  obs::Counter* pool_misses;
  obs::Counter* oversize;
  obs::Gauge* bytes_outstanding;
  obs::Gauge* bytes_cached;
  obs::Gauge* bytes_high_water;

  Metrics() {
    obs::Registry& registry = obs::Registry::Global();
    pool_hits = registry.GetCounter("tensor.alloc.pool_hits");
    pool_misses = registry.GetCounter("tensor.alloc.pool_misses");
    oversize = registry.GetCounter("tensor.alloc.oversize");
    bytes_outstanding = registry.GetGauge("tensor.alloc.bytes_outstanding");
    bytes_cached = registry.GetGauge("tensor.alloc.bytes_cached");
    bytes_high_water = registry.GetGauge("tensor.alloc.bytes_high_water");
  }
};

TensorAllocator& TensorAllocator::Global() {
  static TensorAllocator* allocator = [] {
    auto* a = new TensorAllocator(/*export_metrics=*/true);  // leaked
    a->set_caching_enabled(CachingEnabledFromEnv());
    return a;
  }();
  return *allocator;
}

TensorAllocator::TensorAllocator(bool export_metrics)
    : buckets_(static_cast<size_t>(kMaxBucketLog2 + 1)),
      caching_enabled_(true) {
  if (export_metrics) metrics_ = new Metrics();
}

TensorAllocator::~TensorAllocator() {
  // Blocks still outstanding hold a deleter that points at this instance;
  // non-global instances must not be destroyed before their tensors.
  Trim();
  delete metrics_;
}

int64_t TensorAllocator::BucketNumel(int64_t numel) {
  ENHANCENET_CHECK_GE(numel, 0) << "negative allocation";
  if (numel > kMaxBucketNumel) return -1;
  const int64_t log2 = std::max(Log2Ceil(numel), kMinBucketLog2);
  return int64_t{1} << log2;
}

std::shared_ptr<float[]> TensorAllocator::Allocate(int64_t numel) {
  const int64_t capacity = BucketNumel(numel);

  if (capacity < 0) {
    // Oversize: straight to the system allocator, never cached.
    const int64_t count = std::max<int64_t>(numel, 1);
    float* block = new float[static_cast<size_t>(count)];
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests;
      ++stats_.oversize;
      if (metrics_ != nullptr) metrics_->oversize->Add();
      stats_.bytes_outstanding += count * static_cast<int64_t>(sizeof(float));
      stats_.bytes_high_water =
          std::max(stats_.bytes_high_water, stats_.bytes_outstanding);
      PushStatsLocked();
    }
    return std::shared_ptr<float[]>(
        block, [this, count](float* p) {
          OnFree(p, count, /*pooled=*/false);
        });
  }

  const size_t bucket = static_cast<size_t>(Log2Ceil(capacity));
  float* block = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    std::vector<float*>& free_list = buckets_[bucket];
    if (!free_list.empty()) {
      block = free_list.back();
      free_list.pop_back();
      ++stats_.pool_hits;
      if (metrics_ != nullptr) metrics_->pool_hits->Add();
      stats_.bytes_cached -= capacity * static_cast<int64_t>(sizeof(float));
    } else {
      ++stats_.pool_misses;
      if (metrics_ != nullptr) metrics_->pool_misses->Add();
    }
    stats_.bytes_outstanding += capacity * static_cast<int64_t>(sizeof(float));
    stats_.bytes_high_water =
        std::max(stats_.bytes_high_water, stats_.bytes_outstanding);
    PushStatsLocked();
  }
  if (block == nullptr) {
    block = new float[static_cast<size_t>(capacity)];
  }
  return std::shared_ptr<float[]>(
      block, [this, capacity](float* p) {
        OnFree(p, capacity, /*pooled=*/true);
      });
}

void TensorAllocator::OnFree(float* block, int64_t capacity, bool pooled) {
  bool cache = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_outstanding -= capacity * static_cast<int64_t>(sizeof(float));
    cache = pooled && caching_enabled_;
    if (cache) {
      buckets_[static_cast<size_t>(Log2Ceil(capacity))].push_back(block);
      stats_.bytes_cached += capacity * static_cast<int64_t>(sizeof(float));
    }
    PushStatsLocked();
  }
  if (!cache) delete[] block;
}

AllocatorStats TensorAllocator::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TensorAllocator::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t outstanding = stats_.bytes_outstanding;
  const int64_t cached = stats_.bytes_cached;
  stats_ = AllocatorStats();
  stats_.bytes_outstanding = outstanding;
  stats_.bytes_cached = cached;
  stats_.bytes_high_water = outstanding;
  PushStatsLocked();
}

void TensorAllocator::Trim() {
  std::vector<float*> to_free;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::vector<float*>& free_list : buckets_) {
      to_free.insert(to_free.end(), free_list.begin(), free_list.end());
      free_list.clear();
    }
    stats_.bytes_cached = 0;
    PushStatsLocked();
  }
  for (float* block : to_free) delete[] block;
}

bool TensorAllocator::caching_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return caching_enabled_;
}

void TensorAllocator::set_caching_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  caching_enabled_ = enabled;
}

void TensorAllocator::PushStatsLocked() {
  if (metrics_ == nullptr) return;
  metrics_->bytes_outstanding->Set(
      static_cast<double>(stats_.bytes_outstanding));
  metrics_->bytes_cached->Set(static_cast<double>(stats_.bytes_cached));
  metrics_->bytes_high_water->Set(
      static_cast<double>(stats_.bytes_high_water));
}

}  // namespace enhancenet
