#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "runtime/context.h"
#include "runtime/parallel.h"

namespace enhancenet {
namespace ops {
namespace {

// Opt-in (runtime::ProfilingEnabled) accounting for the kernels that dominate
// training and serving cost. Handles are resolved once; the off path is a
// single relaxed atomic load per op call, so the hooks are safe to leave
// compiled into release builds.
struct OpsProfile {
  obs::Counter* gemm_calls;
  obs::Counter* gemm_flops;
  obs::Counter* batch_gemm_calls;
  obs::Counter* batch_gemm_slices;
  obs::Counter* batch_gemm_flops;
  obs::Counter* concat_calls;
  obs::Counter* concat_elements;

  static OpsProfile& Get() {
    static OpsProfile profile = [] {
      obs::Registry& registry = obs::Registry::Global();
      OpsProfile p;
      p.gemm_calls = registry.GetCounter("tensor.gemm.calls");
      p.gemm_flops = registry.GetCounter("tensor.gemm.flops");
      p.batch_gemm_calls = registry.GetCounter("tensor.batch_gemm.calls");
      p.batch_gemm_slices = registry.GetCounter("tensor.batch_gemm.slices");
      p.batch_gemm_flops = registry.GetCounter("tensor.batch_gemm.flops");
      p.concat_calls = registry.GetCounter("tensor.concat.calls");
      p.concat_elements = registry.GetCounter("tensor.concat.elements");
      return p;
    }();
    return profile;
  }
};

#define ENHANCENET_RESTRICT __restrict__

// Tensors with at most this many elements (or an equivalent amount of work)
// are processed serially: below it, thread hand-off costs more than the loop.
constexpr int64_t kSerialNumel = 1 << 14;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// ParallelFor wrapper that keeps the serial fast path free of std::function
// construction. `body(b, e)` must compute every output element in [b, e)
// entirely, so results are identical for any thread count.
template <typename Body>
inline void For1D(int64_t n, int64_t grain, Body&& body) {
  if (n <= grain || InParallelRegion()) {
    body(0, n);
    return;
  }
  ParallelFor(0, n, grain, std::forward<Body>(body));
}

// Numerically stable logistic sigmoid, shared by ops::Sigmoid and the GEMM
// gate epilogues so fused and unfused paths are bitwise identical.
inline float StableSigmoidScalar(float x) {
  if (x >= 0) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

// Strides (in elements) of a row-major tensor with the given shape.
std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t d = static_cast<int64_t>(shape.size()) - 2; d >= 0; --d) {
    strides[d] = strides[d + 1] * shape[d + 1];
  }
  return strides;
}

// True if `suffix` equals the trailing dims of `shape` (rank may be lower).
bool IsSuffixShape(const Shape& suffix, const Shape& shape) {
  if (suffix.size() > shape.size()) return false;
  for (size_t d = 0; d < suffix.size(); ++d) {
    if (suffix[suffix.size() - 1 - d] != shape[shape.size() - 1 - d]) {
      return false;
    }
  }
  return true;
}

// Applies `f` elementwise over the broadcast of a and b.
template <typename BinaryOp>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, BinaryOp f) {
  // Fast path: identical shapes.
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    For1D(a.numel(), kSerialNumel, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
    });
    return out;
  }
  // Fast path: scalar operand (rank guard keeps the output shape equal to
  // the true broadcast shape).
  if (b.numel() == 1 && b.dim() <= a.dim()) {
    const float s = b.data()[0];
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    float* po = out.data();
    For1D(a.numel(), kSerialNumel, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], s);
    });
    return out;
  }
  if (a.numel() == 1 && a.dim() <= b.dim()) {
    const float s = a.data()[0];
    Tensor out = Tensor::Uninitialized(b.shape());
    const float* pb = b.data();
    float* po = out.data();
    For1D(b.numel(), kSerialNumel, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = f(s, pb[i]);
    });
    return out;
  }
  // Fast path: bias-style broadcast (b is a trailing block of a, e.g.
  // [R, C] op [C]) — the hot pattern in every gate computation.
  if (b.dim() <= a.dim() && IsSuffixShape(b.shape(), a.shape())) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t inner = b.numel();
    const int64_t rows = a.numel() / std::max<int64_t>(inner, 1);
    const int64_t grain = std::max<int64_t>(1, kSerialNumel / std::max<int64_t>(inner, 1));
    For1D(rows, grain, [=](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* arow = pa + r * inner;
        float* orow = po + r * inner;
        for (int64_t i = 0; i < inner; ++i) orow[i] = f(arow[i], pb[i]);
      }
    });
    return out;
  }
  if (a.dim() <= b.dim() && IsSuffixShape(a.shape(), b.shape())) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t inner = a.numel();
    const int64_t rows = b.numel() / std::max<int64_t>(inner, 1);
    const int64_t grain = std::max<int64_t>(1, kSerialNumel / std::max<int64_t>(inner, 1));
    For1D(rows, grain, [=](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* brow = pb + r * inner;
        float* orow = po + r * inner;
        for (int64_t i = 0; i < inner; ++i) orow[i] = f(pa[i], brow[i]);
      }
    });
    return out;
  }
  // General case: serial odometer walk (cold path — every hot broadcast
  // pattern in the models hits one of the fast paths above).
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t rank = static_cast<int64_t>(out_shape.size());

  // Effective strides per input: 0 on broadcast dims, padded on the left.
  auto effective_strides = [&](const Shape& s) {
    std::vector<int64_t> strides(static_cast<size_t>(rank), 0);
    const auto native = RowMajorStrides(s);
    const int64_t offset = rank - static_cast<int64_t>(s.size());
    for (int64_t d = 0; d < static_cast<int64_t>(s.size()); ++d) {
      strides[static_cast<size_t>(offset + d)] =
          (s[static_cast<size_t>(d)] == 1) ? 0 : native[static_cast<size_t>(d)];
    }
    return strides;
  };
  const auto sa = effective_strides(a.shape());
  const auto sb = effective_strides(b.shape());

  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  int64_t ia = 0;
  int64_t ib = 0;
  for (int64_t i = 0; i < n; ++i) {
    po[i] = f(pa[ia], pb[ib]);
    // Odometer increment.
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      ia += sa[du];
      ib += sb[du];
      if (index[du] < out_shape[du]) break;
      ia -= sa[du] * out_shape[du];
      ib -= sb[du] * out_shape[du];
      index[du] = 0;
    }
  }
  return out;
}

template <typename UnaryOp>
Tensor Unary(const Tensor& t, UnaryOp f) {
  Tensor out = Tensor::Uninitialized(t.shape());
  const float* p = t.data();
  float* po = out.data();
  For1D(t.numel(), kSerialNumel, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = f(p[i]);
  });
  return out;
}

// ---------------------------------------------------------------------------
// GEMM
//
// Two regimes, chosen by problem size only (never by thread count, so the
// same input always takes the same code path and the result is bitwise
// independent of ENHANCENET_NUM_THREADS):
//
//  * SmallGemm — the historical serial kernel, extended to read transposed
//    operands in place. Used for tiny products and for per-slice work inside
//    a batch-parallel BatchGemm.
//  * GemmTiled — cache-blocked and register-blocked: B is packed into
//    KC x NR column panels, A into MR x KC row panels, and an MR x NR
//    micro-kernel accumulates in registers. Parallelism is over row tiles;
//    each C element is owned by exactly one row tile, and its K-dimension
//    accumulation order (ascending, KC blocks in ascending order) is fixed.
// ---------------------------------------------------------------------------

constexpr int64_t kMR = 8;    // micro-kernel rows
constexpr int64_t kNR = 16;   // micro-kernel cols (one AVX-512 / two AVX2 rows)
constexpr int64_t kKC = 256;  // K cache block (packed panels stay in L1/L2)
constexpr int64_t kNC = 512;  // N cache block
// M cache block, in kMR row tiles: at most kMCTiles tiles of A are packed at
// a time (BLIS-style MC blocking), so the packed-A working set is bounded by
// kMCTiles*kMR x kKC floats (128 x 256 = 128 KiB) per thread instead of
// growing as O(M*KC).
constexpr int64_t kMCTiles = 16;

// Products with at most this many flops (2*M*N*K) use SmallGemm.
constexpr int64_t kSmallGemmFlops = 2 * 48 * 48 * 48;

// Epilogue plumbing threaded through GemmDispatch/GemmTiled. All pointers are
// slice-local (BatchGemm rebinds them per slice). For the gated kinds the
// accumulation target is the [m, n] pre-activation buffer (`preact_store`
// true when the caller wants it kept) and `z` is the separate [m, n/2]
// output; for everything else the output tensor itself accumulates and `z`
// is unused.
struct EpilogueArgs {
  GemmEpilogue kind = GemmEpilogue::kNone;
  const float* bias = nullptr;  // [n] of the raw product
  float* preact = nullptr;      // [m, n] pre-activation store, may be null
  float* z = nullptr;           // [m, n/2] gated output
  int64_t half = 0;             // n/2 for the gated kinds
};

// Applies a gated epilogue to rows [r0, r1): reads the completed accumulator
// rows (leading dim n), writes z rows (leading dim n/2) and, when requested,
// stores the biased pre-activations back into `preact` (which may alias
// `acc` — reads of both halves happen before the writes for each column).
// Elementwise per output element, so any row partition is bitwise safe.
void ApplyGatedEpilogueRows(const EpilogueArgs& e, const float* acc, int64_t n,
                            int64_t r0, int64_t r1) {
  const int64_t half = e.half;
  const bool glu = e.kind == GemmEpilogue::kBiasGlu;
  for (int64_t r = r0; r < r1; ++r) {
    const float* arow = acc + r * n;
    float* zrow = e.z + r * half;
    float* prow = e.preact ? e.preact + r * n : nullptr;
    for (int64_t j = 0; j < half; ++j) {
      const float sf = arow[j] + e.bias[j];
      const float sg = arow[half + j] + e.bias[half + j];
      if (prow) {
        prow[j] = sf;
        prow[half + j] = sg;
      }
      const float gate = StableSigmoidScalar(sg);
      zrow[j] = (glu ? sf : std::tanh(sf)) * gate;
    }
  }
}

// Serial epilogue application over a whole [m, n] product — the SmallGemm
// companion, called inside whatever chunk owns the slice.
void ApplyEpilogueAllRows(const EpilogueArgs& e, float* c, int64_t m,
                          int64_t n) {
  if (e.half > 0) {
    ApplyGatedEpilogueRows(e, c, n, 0, m);
    return;
  }
  for (int64_t r = 0; r < m; ++r) {
    float* crow = c + r * n;
    float* prow = e.preact ? e.preact + r * n : nullptr;
    for (int64_t j = 0; j < n; ++j) {
      const float s = crow[j] + e.bias[j];
      if (prow) prow[j] = s;
      switch (e.kind) {
        case GemmEpilogue::kBias:
          crow[j] = s;
          break;
        case GemmEpilogue::kBiasTanh:
          crow[j] = std::tanh(s);
          break;
        default:
          crow[j] = StableSigmoidScalar(s);
          break;
      }
    }
  }
}

// Serial GEMM on raw pointers, accumulating C[M,N] += op(A) * op(B).
// Physical layouts: a is (trans_a ? K x M : M x K) with leading dim lda;
// b is (trans_b ? N x K : K x N) with leading dim ldb. Accumulation over K
// is in ascending order for every element in all four variants.
void SmallGemm(const float* ENHANCENET_RESTRICT a, int64_t lda, bool trans_a,
               const float* ENHANCENET_RESTRICT b, int64_t ldb, bool trans_b,
               float* ENHANCENET_RESTRICT c, int64_t m, int64_t k, int64_t n) {
  if (!trans_a && !trans_b) {
    // i-k-j: inner loop streams contiguous rows of B and C.
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * ldb;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  } else if (trans_a && !trans_b) {
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = a[kk * lda + i];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * ldb;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    // i-j-k: both operand rows are contiguous; dot product per element.
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += acc;
      }
    }
  } else {
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += a[kk * lda + i] * brow[kk];
        crow[j] += acc;
      }
    }
  }
}

// Packs row tiles [t_begin, t_end) of A for K block [pc, pc+kc) into row
// tiles of kMR: dst[it - t_begin][kk][r] = A[it*kMR + r][pc + kk],
// zero-padded past row m. Serial by design: GemmTiled calls it from inside
// parallel compute chunks, each chunk on its own destination buffer.
void PackATiles(const float* ENHANCENET_RESTRICT a, int64_t lda, bool trans_a,
                int64_t m, int64_t t_begin, int64_t t_end, int64_t pc,
                int64_t kc, float* ENHANCENET_RESTRICT ap) {
  for (int64_t it = t_begin; it < t_end; ++it) {
    float* dst = ap + (it - t_begin) * kc * kMR;
    const int64_t i0 = it * kMR;
    const int64_t mr = std::min(kMR, m - i0);
    if (!trans_a) {
      for (int64_t r = 0; r < kMR; ++r) {
        if (r < mr) {
          const float* src = a + (i0 + r) * lda + pc;
          for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kMR + r] = src[kk];
        } else {
          for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kMR + r] = 0.0f;
        }
      }
    } else {
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* src = a + (pc + kk) * lda + i0;
        for (int64_t r = 0; r < kMR; ++r) {
          dst[kk * kMR + r] = (r < mr) ? src[r] : 0.0f;
        }
      }
    }
  }
}

// Packs the B panel for cols [jc, jc+nc), K block [pc, pc+kc) into column
// tiles of kNR: bp[tile][kk][r] = B[pc + kk][jc + tile*kNR + r], zero-padded
// past column jc+nc.
void PackBPanel(const float* ENHANCENET_RESTRICT b, int64_t ldb, bool trans_b,
                int64_t jc, int64_t nc, int64_t pc, int64_t kc,
                float* ENHANCENET_RESTRICT bp) {
  const int64_t n_tiles = CeilDiv(nc, kNR);
  For1D(n_tiles, 4, [=](int64_t t0, int64_t t1) {
    for (int64_t jt = t0; jt < t1; ++jt) {
      float* dst = bp + jt * kc * kNR;
      const int64_t j0 = jc + jt * kNR;
      const int64_t nr = std::min(kNR, jc + nc - j0);
      if (!trans_b) {
        for (int64_t kk = 0; kk < kc; ++kk) {
          const float* src = b + (pc + kk) * ldb + j0;
          for (int64_t r = 0; r < kNR; ++r) {
            dst[kk * kNR + r] = (r < nr) ? src[r] : 0.0f;
          }
        }
      } else {
        for (int64_t r = 0; r < kNR; ++r) {
          if (r < nr) {
            const float* src = b + (j0 + r) * ldb + pc;
            for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kNR + r] = src[kk];
          } else {
            for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kNR + r] = 0.0f;
          }
        }
      }
    }
  });
}

// One micro-kernel column block: kNR floats. GCC/Clang vector extension —
// compiles to one AVX-512 register, two AVX2 registers, or four SSE
// registers, with identical (IEEE, per-lane) arithmetic everywhere. The
// alignment override permits unaligned loads/stores; may_alias is required
// because the kernel loads/stores through float* via reinterpret_cast, and
// vector types do not alias their element type under TBAA by default.
typedef float VecNR __attribute__((vector_size(kNR * sizeof(float)),
                                   aligned(4), __may_alias__));

// kMR x kNR register-blocked micro-kernel: accumulates ap (kc x kMR packed)
// times bp (kc x kNR packed) into C with edge guards. The accumulator block
// (kMR vector registers) lives in registers across the whole K loop.
//
// When `bias` is non-null this is the final K block for the tile and the
// non-gated epilogue `epi` is folded into the write-back: each element's
// bias add + activation happen while the tile's row is a stack-held view of
// hot cache lines, never as a separate pass. `bias` and `preact` are
// tile-local (already offset to this tile's first column / element; preact
// shares C's leading dimension). Gated epilogues never reach here — they
// need both column halves and are applied per row tile by GemmTiled.
void MicroKernel(int64_t kc, const float* ENHANCENET_RESTRICT ap,
                 const float* ENHANCENET_RESTRICT bp,
                 float* ENHANCENET_RESTRICT c, int64_t ldc, int64_t mr,
                 int64_t nr, GemmEpilogue epi = GemmEpilogue::kNone,
                 const float* ENHANCENET_RESTRICT bias = nullptr,
                 float* ENHANCENET_RESTRICT preact = nullptr) {
  VecNR acc[kMR];
  for (int64_t r = 0; r < kMR; ++r) acc[r] = VecNR{};
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* ENHANCENET_RESTRICT av = ap + kk * kMR;
    const VecNR bv = *reinterpret_cast<const VecNR*>(bp + kk * kNR);
    for (int64_t r = 0; r < kMR; ++r) acc[r] += av[r] * bv;
  }
  if (bias != nullptr) {
    for (int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      float* prow = preact ? preact + r * ldc : nullptr;
      for (int64_t j = 0; j < nr; ++j) {
        const float s = crow[j] + acc[r][j] + bias[j];
        if (prow) prow[j] = s;
        switch (epi) {
          case GemmEpilogue::kBias:
            crow[j] = s;
            break;
          case GemmEpilogue::kBiasTanh:
            crow[j] = std::tanh(s);
            break;
          default:
            crow[j] = StableSigmoidScalar(s);
            break;
        }
      }
    }
    return;
  }
  if (mr == kMR && nr == kNR) {
    for (int64_t r = 0; r < kMR; ++r) {
      VecNR* crow = reinterpret_cast<VecNR*>(c + r * ldc);
      *crow += acc[r];
    }
  } else {
    for (int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
    }
  }
}

// Cache-tiled GEMM accumulating C[M,N] += op(A) * op(B); C must be dense
// row-major with leading dimension n. Parallel over row tiles. A non-null
// `epi` is applied exactly once per output element: non-gated kinds inside
// the micro-kernel write-back of the final K block, gated kinds per row tile
// once the final (K block, N block) iteration completes the full product row
// — in both cases inside the For1D chunk that owns those rows, so the result
// stays bitwise identical for any thread count.
void GemmTiled(const float* a, int64_t lda, bool trans_a, const float* b,
               int64_t ldb, bool trans_b, float* c, int64_t m, int64_t k,
               int64_t n, const EpilogueArgs* epi = nullptr) {
  const int64_t m_tiles = CeilDiv(m, kMR);
  const int64_t kc_max = std::min(k, kKC);
  const int64_t nc_max = std::min(n, kNC);
  std::vector<float> bp(static_cast<size_t>(CeilDiv(nc_max, kNR) * kNR * kc_max));
  float* bp_data = bp.data();

  for (int64_t pc = 0; pc < k; pc += kKC) {
    const int64_t kc = std::min(kKC, k - pc);
    const bool last_k = pc + kc == k;
    for (int64_t jc = 0; jc < n; jc += kNC) {
      const int64_t nc = std::min(kNC, n - jc);
      const int64_t n_tiles = CeilDiv(nc, kNR);
      const bool micro_epi = epi && epi->half == 0 && last_k;
      const bool gated_epi = epi && epi->half > 0 && last_k && jc + nc == n;
      PackBPanel(b, ldb, trans_b, jc, nc, pc, kc, bp_data);
      For1D(m_tiles, 1, [=](int64_t t0, int64_t t1) {
        // Each chunk packs at most kMCTiles row tiles of A at a time into
        // its own cache-sized buffer, then sweeps the B panel over them.
        // Which sub-block a row tile lands in never changes its packed
        // contents or its single MicroKernel call per (pc, jc), so results
        // stay bitwise identical for any chunking.
        std::vector<float> ap(static_cast<size_t>(
            std::min(t1 - t0, kMCTiles) * kMR * kc));
        float* ap_data = ap.data();
        for (int64_t tb = t0; tb < t1; tb += kMCTiles) {
          const int64_t te = std::min(t1, tb + kMCTiles);
          PackATiles(a, lda, trans_a, m, tb, te, pc, kc, ap_data);
          // jt outer / it inner: the kc x kNR micro-panel of B stays in L1
          // while it sweeps this sub-block's row tiles.
          for (int64_t jt = 0; jt < n_tiles; ++jt) {
            const float* btile = bp_data + jt * kc * kNR;
            const int64_t j0 = jc + jt * kNR;
            const int64_t nr = std::min(kNR, jc + nc - j0);
            for (int64_t it = tb; it < te; ++it) {
              const int64_t i0 = it * kMR;
              const int64_t mr = std::min(kMR, m - i0);
              if (micro_epi) {
                MicroKernel(kc, ap_data + (it - tb) * kc * kMR, btile,
                            c + i0 * n + j0, n, mr, nr, epi->kind,
                            epi->bias + j0,
                            epi->preact ? epi->preact + i0 * n + j0 : nullptr);
              } else {
                MicroKernel(kc, ap_data + (it - tb) * kc * kMR, btile,
                            c + i0 * n + j0, n, mr, nr);
              }
            }
          }
        }
        if (gated_epi) {
          ApplyGatedEpilogueRows(*epi, c, n, t0 * kMR,
                                 std::min(t1 * kMR, m));
        }
      });
    }
  }
}

// Size-based dispatch shared by Gemm and BatchGemm slices. Regime choice
// depends on problem size only, never on the epilogue or thread count.
void GemmDispatch(const float* a, int64_t lda, bool trans_a, const float* b,
                  int64_t ldb, bool trans_b, float* c, int64_t m, int64_t k,
                  int64_t n, const EpilogueArgs* epi = nullptr) {
  if (2 * m * k * n <= kSmallGemmFlops) {
    SmallGemm(a, lda, trans_a, b, ldb, trans_b, c, m, k, n);
    if (epi) ApplyEpilogueAllRows(*epi, c, m, n);
  } else {
    GemmTiled(a, lda, trans_a, b, ldb, trans_b, c, m, k, n, epi);
  }
}

constexpr int64_t kTransposeBlock = 32;

// Writes the [cols, rows] transpose of rank-2 `t` into `po`, which must hold
// t.numel() floats. Every element is overwritten; no zeroing required.
void MaterializeTranspose2DInto(const Tensor& t, float* po) {
  const int64_t rows = t.size(0);
  const int64_t cols = t.size(1);
  const float* p = t.data();
  // Blocked: a kTransposeBlock x kTransposeBlock tile of the input stays in
  // L1 while it is written out column-contiguously. Parallel over output
  // rows (= input columns); pure scatter-free writes, so any partition is
  // bitwise safe.
  const int64_t grain =
      std::max<int64_t>(kTransposeBlock,
                        kSerialNumel / std::max<int64_t>(rows, 1));
  For1D(cols, grain, [=](int64_t j0, int64_t j1) {
    for (int64_t ib = 0; ib < rows; ib += kTransposeBlock) {
      const int64_t imax = std::min(ib + kTransposeBlock, rows);
      for (int64_t j = j0; j < j1; ++j) {
        float* orow = po + j * rows;
        for (int64_t i = ib; i < imax; ++i) orow[i] = p[i * cols + j];
      }
    }
  });
}

Tensor MaterializeTranspose2D(const Tensor& t) {
  Tensor out = Tensor::Uninitialized(Shape{t.size(1), t.size(0)});
  MaterializeTranspose2DInto(t, out.data());
  return out;
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t rank =
      std::max<int64_t>(static_cast<int64_t>(a.size()),
                        static_cast<int64_t>(b.size()));
  Shape out(static_cast<size_t>(rank), 1);
  for (int64_t d = 0; d < rank; ++d) {
    const int64_t da =
        d < static_cast<int64_t>(a.size())
            ? a[a.size() - 1 - static_cast<size_t>(d)]
            : 1;
    const int64_t db =
        d < static_cast<int64_t>(b.size())
            ? b[b.size() - 1 - static_cast<size_t>(d)]
            : 1;
    ENHANCENET_CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast " << ShapeToString(a) << " with "
        << ShapeToString(b);
    out[out.size() - 1 - static_cast<size_t>(d)] = std::max(da, db);
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t.Clone();
  // Verify target broadcasts to t.shape().
  ENHANCENET_CHECK(BroadcastShapes(t.shape(), target) == t.shape())
      << "ReduceToShape: " << ShapeToString(target) << " does not broadcast to "
      << ShapeToString(t.shape());
  // Fast path: target is a trailing block (bias-gradient reduction).
  if (static_cast<int64_t>(target.size()) <= t.dim() &&
      IsSuffixShape(target, t.shape())) {
    Tensor out = Tensor::Zeros(target);
    const int64_t inner = out.numel();
    if (inner > 0) {
      const int64_t rows = t.numel() / inner;
      const float* p = t.data();
      float* po = out.data();
      // Partition over output columns: each column's row-sum is computed by
      // one thread in ascending row order, so the result is bitwise
      // identical for any thread count. Chunks stay >= 64 columns so
      // narrow bias reductions keep the serial path (a thread would pull
      // whole cache lines for a few-column slice otherwise).
      const int64_t grain =
          std::max<int64_t>(64, kSerialNumel / std::max<int64_t>(rows, 1));
      For1D(inner, grain, [=](int64_t i0, int64_t i1) {
        for (int64_t r = 0; r < rows; ++r) {
          const float* row = p + r * inner;
          for (int64_t i = i0; i < i1; ++i) po[i] += row[i];
        }
      });
    }
    return out;
  }
  Tensor out = Tensor::Zeros(target);
  const int64_t rank = t.dim();
  const int64_t offset = rank - out.dim();
  const auto out_strides = RowMajorStrides(target);

  std::vector<int64_t> eff(static_cast<size_t>(rank), 0);
  for (int64_t d = 0; d < out.dim(); ++d) {
    eff[static_cast<size_t>(offset + d)] =
        (target[static_cast<size_t>(d)] == 1)
            ? 0
            : out_strides[static_cast<size_t>(d)];
  }

  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* p = t.data();
  float* po = out.data();
  const int64_t n = t.numel();
  int64_t io = 0;
  const Shape& ts = t.shape();
  for (int64_t i = 0; i < n; ++i) {
    po[io] += p[i];
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      io += eff[du];
      if (index[du] < ts[du]) break;
      io -= eff[du] * ts[du];
      index[du] = 0;
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x / y; });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return std::max(x, y); });
}

Tensor Neg(const Tensor& t) {
  return Unary(t, [](float x) { return -x; });
}

Tensor Abs(const Tensor& t) {
  return Unary(t, [](float x) { return std::fabs(x); });
}

Tensor Sign(const Tensor& t) {
  return Unary(t, [](float x) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}

Tensor Sigmoid(const Tensor& t) {
  return Unary(t, [](float x) { return StableSigmoidScalar(x); });
}

Tensor Tanh(const Tensor& t) {
  return Unary(t, [](float x) { return std::tanh(x); });
}

Tensor Relu(const Tensor& t) {
  return Unary(t, [](float x) { return x > 0 ? x : 0.0f; });
}

Tensor ReluMask(const Tensor& t) {
  return Unary(t, [](float x) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor Exp(const Tensor& t) {
  return Unary(t, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& t) {
  return Unary(t, [](float x) { return std::log(x); });
}

Tensor Sqrt(const Tensor& t) {
  return Unary(t, [](float x) { return std::sqrt(x); });
}

Tensor Square(const Tensor& t) {
  return Unary(t, [](float x) { return x * x; });
}

Tensor AddScalar(const Tensor& t, float s) {
  return Unary(t, [s](float x) { return x + s; });
}

Tensor MulScalar(const Tensor& t, float s) {
  return Unary(t, [s](float x) { return x * s; });
}

void AxpyInPlace(float alpha, const Tensor& x, Tensor* y) {
  ENHANCENET_CHECK(x.shape() == y->shape())
      << "axpy shape mismatch: " << ShapeToString(x.shape()) << " vs "
      << ShapeToString(y->shape());
  const float* px = x.data();
  float* py = y->data();
  For1D(x.numel(), kSerialNumel, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] += alpha * px[i];
  });
}

namespace {

// Acquires a recycled workspace block from the bound RuntimeContext and
// wraps it as a dense tensor — scratch for gated epilogues when the caller
// does not want the pre-activations kept.
Tensor EpilogueScratch(const Shape& shape) {
  int64_t numel = 1;
  for (int64_t d : shape) numel *= d;
  return Tensor::WithStorage(
      runtime::RuntimeContext::Current().workspace().Acquire(numel), shape);
}

// Validates the epilogue operands against the product width n and fills the
// non-accumulator fields of `e`. Returns true if an epilogue is active.
bool CheckEpilogue(GemmEpilogue epilogue, const Tensor* bias, int64_t n,
                   EpilogueArgs* e) {
  if (epilogue == GemmEpilogue::kNone) return false;
  ENHANCENET_CHECK(bias != nullptr) << "gemm epilogue requires a bias tensor";
  ENHANCENET_CHECK(bias->dim() == 1 && bias->size(0) == n)
      << "gemm epilogue bias must be [" << n << "], got "
      << ShapeToString(bias->shape());
  if (IsGatedEpilogue(epilogue)) {
    ENHANCENET_CHECK_EQ(n % 2, 0)
        << "gated gemm epilogue needs an even product width";
    e->half = n / 2;
  }
  e->kind = epilogue;
  e->bias = bias->data();
  return true;
}

}  // namespace

bool IsGatedEpilogue(GemmEpilogue epilogue) {
  return epilogue == GemmEpilogue::kBiasGatedTanhSigmoid ||
         epilogue == GemmEpilogue::kBiasGlu;
}

Tensor Gemm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
            GemmEpilogue epilogue, const Tensor* bias, Tensor* preact) {
  ENHANCENET_CHECK_EQ(a.dim(), 2);
  ENHANCENET_CHECK_EQ(b.dim(), 2);
  const int64_t m = trans_a ? a.size(1) : a.size(0);
  const int64_t k = trans_a ? a.size(0) : a.size(1);
  const int64_t kb = trans_b ? b.size(1) : b.size(0);
  ENHANCENET_CHECK_EQ(k, kb) << "gemm inner dims: " << ShapeToString(a.shape())
                             << " x " << ShapeToString(b.shape());
  const int64_t n = trans_b ? b.size(0) : b.size(1);
  if (runtime::ProfilingEnabled()) {
    OpsProfile& profile = OpsProfile::Get();
    profile.gemm_calls->Add();
    profile.gemm_flops->Add(2 * m * k * n);
  }
  EpilogueArgs e;
  const bool has_epi = CheckEpilogue(epilogue, bias, n, &e);
  if (!has_epi || e.half == 0) {
    // The output tensor is the accumulator; any non-gated epilogue folds
    // into its write-back.
    if (preact != nullptr) {
      ENHANCENET_CHECK(epilogue == GemmEpilogue::kBiasTanh ||
                       epilogue == GemmEpilogue::kBiasSigmoid)
          << "gemm preact is only produced by activation epilogues";
      ENHANCENET_CHECK(preact->shape() == (Shape{m, n}))
          << "gemm preact must be [" << m << ", " << n << "]";
      e.preact = preact->data();
    }
    Tensor c(Shape{m, n});
    GemmDispatch(a.data(), a.size(1), trans_a, b.data(), b.size(1), trans_b,
                 c.data(), m, k, n, has_epi ? &e : nullptr);
    return c;
  }
  // Gated: accumulate the full-width product into the pre-activation buffer
  // (caller's, or workspace scratch), then gate into the half-width output.
  Tensor acc;
  if (preact != nullptr) {
    ENHANCENET_CHECK(preact->shape() == (Shape{m, n}))
        << "gemm preact must be [" << m << ", " << n << "]";
    acc = *preact;
    e.preact = acc.data();
  } else {
    acc = EpilogueScratch(Shape{m, n});
  }
  std::fill(acc.data(), acc.data() + acc.numel(), 0.0f);
  Tensor z = Tensor::Uninitialized(Shape{m, e.half});
  e.z = z.data();
  GemmDispatch(a.data(), a.size(1), trans_a, b.data(), b.size(1), trans_b,
               acc.data(), m, k, n, &e);
  return z;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  return Gemm(a, b, /*trans_a=*/false, /*trans_b=*/false);
}

namespace {

struct BatchGemmDims {
  int64_t batch, m, k, n;
};

// Shape checks shared by BatchGemm and BatchMatMulInto.
BatchGemmDims CheckBatchGemmDims(const Tensor& a, const Tensor& b, bool trans_a,
                                 bool trans_b) {
  ENHANCENET_CHECK_EQ(a.dim(), 3);
  ENHANCENET_CHECK_EQ(b.dim(), 3);
  ENHANCENET_CHECK_EQ(a.size(0), b.size(0)) << "batch dims differ";
  BatchGemmDims d;
  d.batch = a.size(0);
  d.m = trans_a ? a.size(2) : a.size(1);
  d.k = trans_a ? a.size(1) : a.size(2);
  const int64_t kb = trans_b ? b.size(2) : b.size(1);
  ENHANCENET_CHECK_EQ(d.k, kb) << "bmm inner dims: " << ShapeToString(a.shape())
                               << " x " << ShapeToString(b.shape());
  d.n = trans_b ? b.size(1) : b.size(2);
  return d;
}

// Slice-local epilogue view: advances the per-slice pointers of `base` to
// batch index i (accumulator stride m*n, gated output stride m*n/2).
EpilogueArgs SliceEpilogue(const EpilogueArgs& base, int64_t i, int64_t m,
                           int64_t n) {
  EpilogueArgs e = base;
  if (e.preact) e.preact += i * m * n;
  if (e.z) e.z += i * m * e.half;
  return e;
}

// Runs the batched product into `pc`, which must point at batch*m*n ZEROED
// floats — the inner kernels accumulate C += op(A)*op(B). A non-null `epi`
// holds batch-base pointers; each slice's epilogue is applied inside the
// chunk that computes that slice.
void BatchGemmIntoRaw(const Tensor& a, const Tensor& b, bool trans_a,
                      bool trans_b, const BatchGemmDims& d, float* pc,
                      const EpilogueArgs* epi = nullptr) {
  const int64_t batch = d.batch;
  const int64_t m = d.m;
  const int64_t k = d.k;
  const int64_t n = d.n;
  if (runtime::ProfilingEnabled()) {
    OpsProfile& profile = OpsProfile::Get();
    profile.batch_gemm_calls->Add();
    profile.batch_gemm_slices->Add(batch);
    profile.batch_gemm_flops->Add(batch * 2 * m * k * n);
  }
  // Zero-copy per-slice pointers: slice i of a dense [B, R, C] tensor is the
  // dense [R, C] block at offset i*R*C.
  const int64_t a_stride = a.size(1) * a.size(2);
  const int64_t b_stride = b.size(1) * b.size(2);
  const int64_t c_stride = m * n;
  const int64_t lda = a.size(2);
  const int64_t ldb = b.size(2);
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t slice_flops = 2 * m * k * n;
  if (slice_flops > kSmallGemmFlops) {
    // Big slices: let the tiled kernel parallelize over rows inside each
    // slice (batch is often smaller than the thread count here).
    for (int64_t i = 0; i < batch; ++i) {
      if (epi) {
        const EpilogueArgs se = SliceEpilogue(*epi, i, m, n);
        GemmTiled(pa + i * a_stride, lda, trans_a, pb + i * b_stride, ldb,
                  trans_b, pc + i * c_stride, m, k, n, &se);
      } else {
        GemmTiled(pa + i * a_stride, lda, trans_a, pb + i * b_stride, ldb,
                  trans_b, pc + i * c_stride, m, k, n);
      }
    }
  } else {
    // Small slices (the per-entity filter banks): parallelize over the batch
    // dimension, several slices per chunk.
    const int64_t grain = std::max<int64_t>(
        1, (4 * kSmallGemmFlops) / std::max<int64_t>(slice_flops, 1));
    For1D(batch, grain, [=](int64_t b0, int64_t b1) {
      for (int64_t i = b0; i < b1; ++i) {
        SmallGemm(pa + i * a_stride, lda, trans_a, pb + i * b_stride, ldb,
                  trans_b, pc + i * c_stride, m, k, n);
        if (epi) {
          const EpilogueArgs se = SliceEpilogue(*epi, i, m, n);
          ApplyEpilogueAllRows(se, pc + i * c_stride, m, n);
        }
      }
    });
  }
}

}  // namespace

Tensor BatchGemm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                 GemmEpilogue epilogue, const Tensor* bias, Tensor* preact) {
  const BatchGemmDims d = CheckBatchGemmDims(a, b, trans_a, trans_b);
  EpilogueArgs e;
  const bool has_epi = CheckEpilogue(epilogue, bias, d.n, &e);
  if (!has_epi || e.half == 0) {
    if (preact != nullptr) {
      ENHANCENET_CHECK(epilogue == GemmEpilogue::kBiasTanh ||
                       epilogue == GemmEpilogue::kBiasSigmoid)
          << "bmm preact is only produced by activation epilogues";
      ENHANCENET_CHECK(preact->shape() == (Shape{d.batch, d.m, d.n}))
          << "bmm preact shape mismatch";
      e.preact = preact->data();
    }
    Tensor c(Shape{d.batch, d.m, d.n});
    BatchGemmIntoRaw(a, b, trans_a, trans_b, d, c.data(),
                     has_epi ? &e : nullptr);
    return c;
  }
  Tensor acc;
  if (preact != nullptr) {
    ENHANCENET_CHECK(preact->shape() == (Shape{d.batch, d.m, d.n}))
        << "bmm preact shape mismatch";
    acc = *preact;
    e.preact = acc.data();
  } else {
    acc = EpilogueScratch(Shape{d.batch, d.m, d.n});
  }
  std::fill(acc.data(), acc.data() + acc.numel(), 0.0f);
  Tensor z = Tensor::Uninitialized(Shape{d.batch, d.m, e.half});
  e.z = z.data();
  BatchGemmIntoRaw(a, b, trans_a, trans_b, d, acc.data(), &e);
  return z;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  return BatchGemm(a, b, /*trans_a=*/false, /*trans_b=*/false);
}

void BatchMatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  ENHANCENET_CHECK(out != nullptr);
  const BatchGemmDims d =
      CheckBatchGemmDims(a, b, /*trans_a=*/false, /*trans_b=*/false);
  const Shape expected{d.batch, d.m, d.n};
  ENHANCENET_CHECK(out->shape() == expected)
      << "BatchMatMulInto: out shape " << ShapeToString(out->shape())
      << " != " << ShapeToString(expected);
  // The GEMM kernels accumulate, and `out` may be recycled workspace memory
  // holding stale values — zero it first.
  std::fill(out->data(), out->data() + out->numel(), 0.0f);
  BatchGemmIntoRaw(a, b, /*trans_a=*/false, /*trans_b=*/false, d, out->data());
}

namespace {

// Generic-rank transpose (d0/d1 already resolved, d0 != d1, rank > 2) writing
// into `po`, which must hold t.numel() floats. Fully overwrites.
void TransposeOdometerInto(const Tensor& t, int64_t d0, int64_t d1,
                           const Shape& out_shape, float* po) {
  const int64_t rank = t.dim();
  const auto in_strides = RowMajorStrides(t.shape());
  auto moved_strides = in_strides;
  std::swap(moved_strides[static_cast<size_t>(d0)],
            moved_strides[static_cast<size_t>(d1)]);

  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* p = t.data();
  const int64_t n = t.numel();
  int64_t ii = 0;
  for (int64_t i = 0; i < n; ++i) {
    po[i] = p[ii];
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      ii += moved_strides[du];
      if (index[du] < out_shape[du]) break;
      ii -= moved_strides[du] * out_shape[du];
      index[du] = 0;
    }
  }
}

}  // namespace

Tensor Transpose(const Tensor& t, int64_t d0, int64_t d1) {
  const int64_t rank = t.dim();
  if (d0 < 0) d0 += rank;
  if (d1 < 0) d1 += rank;
  ENHANCENET_CHECK(d0 >= 0 && d0 < rank && d1 >= 0 && d1 < rank);
  if (d0 == d1) return t.Clone();
  // Rank-2 fast path: cache-blocked transpose instead of the odometer walk.
  if (rank == 2) return MaterializeTranspose2D(t);

  Shape out_shape = t.shape();
  std::swap(out_shape[static_cast<size_t>(d0)],
            out_shape[static_cast<size_t>(d1)]);
  Tensor out = Tensor::Uninitialized(out_shape);
  TransposeOdometerInto(t, d0, d1, out_shape, out.data());
  return out;
}

void TransposeInto(const Tensor& t, int64_t d0, int64_t d1, Tensor* out) {
  ENHANCENET_CHECK(out != nullptr);
  const int64_t rank = t.dim();
  if (d0 < 0) d0 += rank;
  if (d1 < 0) d1 += rank;
  ENHANCENET_CHECK(d0 >= 0 && d0 < rank && d1 >= 0 && d1 < rank);
  Shape out_shape = t.shape();
  std::swap(out_shape[static_cast<size_t>(d0)],
            out_shape[static_cast<size_t>(d1)]);
  ENHANCENET_CHECK(out->shape() == out_shape)
      << "TransposeInto: out shape " << ShapeToString(out->shape())
      << " != " << ShapeToString(out_shape);
  if (d0 == d1) {
    std::copy(t.data(), t.data() + t.numel(), out->data());
    return;
  }
  if (rank == 2) {
    MaterializeTranspose2DInto(t, out->data());
    return;
  }
  TransposeOdometerInto(t, d0, d1, out_shape, out->data());
}

Tensor Transpose2D(const Tensor& t) {
  ENHANCENET_CHECK_EQ(t.dim(), 2);
  return MaterializeTranspose2D(t);
}

namespace {

// Shared shape computation for Concat/ConcatInto: normalizes `axis` in
// place, checks that all parts agree on every other dimension, and returns
// the concatenated shape.
Shape ConcatOutShape(const std::vector<Tensor>& parts, int64_t* axis) {
  ENHANCENET_CHECK(!parts.empty());
  const int64_t rank = parts[0].dim();
  if (*axis < 0) *axis += rank;
  ENHANCENET_CHECK(*axis >= 0 && *axis < rank);

  Shape out_shape = parts[0].shape();
  int64_t axis_total = 0;
  for (const Tensor& p : parts) {
    ENHANCENET_CHECK_EQ(p.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != *axis) {
        ENHANCENET_CHECK_EQ(p.size(d), parts[0].size(d))
            << "concat dim " << d << " mismatch";
      }
    }
    axis_total += p.size(*axis);
  }
  out_shape[static_cast<size_t>(*axis)] = axis_total;
  return out_shape;
}

}  // namespace

void ConcatInto(const std::vector<Tensor>& parts, int64_t axis, Tensor* out) {
  ENHANCENET_CHECK(out != nullptr);
  const Shape out_shape = ConcatOutShape(parts, &axis);
  ENHANCENET_CHECK(out->shape() == out_shape)
      << "ConcatInto: out has shape " << ShapeToString(out->shape())
      << ", expected " << ShapeToString(out_shape);
  const int64_t rank = parts[0].dim();
  if (runtime::ProfilingEnabled()) {
    OpsProfile& profile = OpsProfile::Get();
    profile.concat_calls->Add();
    profile.concat_elements->Add(out->numel());
  }

  // outer = product of dims before axis; inner = product after.
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= out_shape[static_cast<size_t>(d)];
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) {
    inner *= out_shape[static_cast<size_t>(d)];
  }

  float* po = out->data();
  const int64_t out_row = out_shape[static_cast<size_t>(axis)] * inner;
  int64_t axis_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t p_axis = p.size(axis);
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(pp + o * p_axis * inner, pp + (o + 1) * p_axis * inner,
                po + o * out_row + axis_offset * inner);
    }
    axis_offset += p_axis;
  }
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  Tensor out = Tensor::Uninitialized(ConcatOutShape(parts, &axis));
  ConcatInto(parts, axis, &out);
  return out;
}

void SliceInto(const Tensor& t, int64_t axis, int64_t start, int64_t length,
               Tensor* out) {
  ENHANCENET_CHECK(out != nullptr);
  const int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  ENHANCENET_CHECK(axis >= 0 && axis < rank);
  ENHANCENET_CHECK(start >= 0 && length >= 0 && start + length <= t.size(axis))
      << "slice [" << start << ", " << start + length << ") of dim "
      << t.size(axis);

  Shape out_shape = t.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  ENHANCENET_CHECK(out->shape() == out_shape)
      << "SliceInto: out has shape " << ShapeToString(out->shape())
      << ", expected " << ShapeToString(out_shape);

  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= t.size(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) inner *= t.size(d);

  const float* p = t.data();
  float* po = out->data();
  const int64_t in_row = t.size(axis) * inner;
  const int64_t out_row = length * inner;
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(p + o * in_row + start * inner,
              p + o * in_row + (start + length) * inner, po + o * out_row);
  }
}

Tensor Slice(const Tensor& t, int64_t axis, int64_t start, int64_t length) {
  const int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  ENHANCENET_CHECK(axis >= 0 && axis < rank);
  ENHANCENET_CHECK(start >= 0 && length >= 0 && start + length <= t.size(axis))
      << "slice [" << start << ", " << start + length << ") of dim "
      << t.size(axis);
  Shape out_shape = t.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  Tensor out = Tensor::Uninitialized(out_shape);
  SliceInto(t, axis, start, length, &out);
  return out;
}

Tensor PadAxis(const Tensor& t, int64_t axis, int64_t before, int64_t after) {
  const int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  ENHANCENET_CHECK(axis >= 0 && axis < rank);
  ENHANCENET_CHECK(before >= 0 && after >= 0);
  if (before == 0 && after == 0) return t.Clone();

  Shape out_shape = t.shape();
  out_shape[static_cast<size_t>(axis)] += before + after;
  Tensor out(out_shape);  // zero-initialized

  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= t.size(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) inner *= t.size(d);

  const float* p = t.data();
  float* po = out.data();
  const int64_t in_row = t.size(axis) * inner;
  const int64_t out_row = out_shape[static_cast<size_t>(axis)] * inner;
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(p + o * in_row, p + (o + 1) * in_row,
              po + o * out_row + before * inner);
  }
  return out;
}

Tensor SumAll(const Tensor& t) {
  const float* p = t.data();
  const double acc = ParallelSum(t.numel(), [=](int64_t lo, int64_t hi) {
    double s = 0.0;
    for (int64_t i = lo; i < hi; ++i) s += p[i];
    return s;
  });
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor MeanAll(const Tensor& t) {
  ENHANCENET_CHECK_GT(t.numel(), 0);
  return Tensor::Scalar(SumAll(t).item() / static_cast<float>(t.numel()));
}

Tensor Sum(const Tensor& t, int64_t axis, bool keepdim) {
  const int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  ENHANCENET_CHECK(axis >= 0 && axis < rank);

  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= t.size(d);
  const int64_t mid = t.size(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) inner *= t.size(d);

  Shape out_shape = t.shape();
  if (keepdim) {
    out_shape[static_cast<size_t>(axis)] = 1;
  } else {
    out_shape.erase(out_shape.begin() + static_cast<size_t>(axis));
  }
  Tensor out(out_shape);

  const float* p = t.data();
  float* po = out.data();
  if (outer > 1) {
    // Partition over the outer dimension; each output block po[o*inner ..]
    // is owned by one thread and accumulated in ascending `mid` order.
    const int64_t grain = std::max<int64_t>(
        1, kSerialNumel / std::max<int64_t>(mid * inner, 1));
    For1D(outer, grain, [=](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        float* orow = po + o * inner;
        for (int64_t m = 0; m < mid; ++m) {
          const float* row = p + (o * mid + m) * inner;
          for (int64_t i = 0; i < inner; ++i) orow[i] += row[i];
        }
      }
    });
  } else {
    // Axis 0 of a flat tensor: partition over output columns instead
    // (>= 64 columns per chunk to avoid cache-line sharing).
    const int64_t grain =
        std::max<int64_t>(64, kSerialNumel / std::max<int64_t>(mid, 1));
    For1D(inner, grain, [=](int64_t i0, int64_t i1) {
      for (int64_t m = 0; m < mid; ++m) {
        const float* row = p + m * inner;
        for (int64_t i = i0; i < i1; ++i) po[i] += row[i];
      }
    });
  }
  return out;
}

Tensor Mean(const Tensor& t, int64_t axis, bool keepdim) {
  const int64_t rank = t.dim();
  const int64_t resolved = axis < 0 ? axis + rank : axis;
  Tensor s = Sum(t, axis, keepdim);
  return MulScalar(s, 1.0f / static_cast<float>(t.size(resolved)));
}

namespace {

// Row-wise softmax of `t` into `po` (t.numel() floats). Fully overwrites.
void SoftmaxRowsInto(const Tensor& t, float* po) {
  const int64_t cols = t.size(-1);
  const int64_t rows = t.numel() / cols;
  const float* p = t.data();
  const int64_t grain =
      std::max<int64_t>(1, kSerialNumel / std::max<int64_t>(cols, 1));
  For1D(rows, grain, [=](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* row = p + r * cols;
      float* orow = po + r * cols;
      float mx = row[0];
      for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
      // Fully-masked row (every score -inf): exp(-inf - -inf) would turn the
      // whole row into NaNs. Fall back to a uniform distribution instead;
      // rows with any finite score are untouched (bitwise).
      if (mx == -std::numeric_limits<float>::infinity()) {
        const float uniform = 1.0f / static_cast<float>(cols);
        for (int64_t c = 0; c < cols; ++c) orow[c] = uniform;
        continue;
      }
      double denom = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        orow[c] = std::exp(row[c] - mx);
        denom += orow[c];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
    }
  });
}

}  // namespace

Tensor SoftmaxLastDim(const Tensor& t) {
  ENHANCENET_CHECK_GE(t.dim(), 1);
  Tensor out = Tensor::Uninitialized(t.shape());
  SoftmaxRowsInto(t, out.data());
  return out;
}

void SoftmaxLastDimInto(const Tensor& t, Tensor* out) {
  ENHANCENET_CHECK(out != nullptr);
  ENHANCENET_CHECK_GE(t.dim(), 1);
  ENHANCENET_CHECK(out->shape() == t.shape())
      << "SoftmaxLastDimInto: out shape " << ShapeToString(out->shape())
      << " != " << ShapeToString(t.shape());
  SoftmaxRowsInto(t, out->data());
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    if (diff > atol + rtol * std::fabs(pb[i])) return false;
    if (std::isnan(pa[i]) != std::isnan(pb[i])) return false;
  }
  return true;
}

}  // namespace ops
}  // namespace enhancenet
