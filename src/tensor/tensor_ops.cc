#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"

namespace enhancenet {
namespace ops {
namespace {

// Strides (in elements) of a row-major tensor with the given shape.
std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t d = static_cast<int64_t>(shape.size()) - 2; d >= 0; --d) {
    strides[d] = strides[d + 1] * shape[d + 1];
  }
  return strides;
}

// True if `suffix` equals the trailing dims of `shape` (rank may be lower).
bool IsSuffixShape(const Shape& suffix, const Shape& shape) {
  if (suffix.size() > shape.size()) return false;
  for (size_t d = 0; d < suffix.size(); ++d) {
    if (suffix[suffix.size() - 1 - d] != shape[shape.size() - 1 - d]) {
      return false;
    }
  }
  return true;
}

// Applies `f` elementwise over the broadcast of a and b.
template <typename BinaryOp>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, BinaryOp f) {
  // Fast path: identical shapes.
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
    return out;
  }
  // Fast path: scalar operand (rank guard keeps the output shape equal to
  // the true broadcast shape).
  if (b.numel() == 1 && b.dim() <= a.dim()) {
    const float s = b.data()[0];
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    float* po = out.data();
    for (int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i], s);
    return out;
  }
  if (a.numel() == 1 && a.dim() <= b.dim()) {
    const float s = a.data()[0];
    Tensor out = Tensor::Uninitialized(b.shape());
    const float* pb = b.data();
    float* po = out.data();
    for (int64_t i = 0; i < b.numel(); ++i) po[i] = f(s, pb[i]);
    return out;
  }
  // Fast path: bias-style broadcast (b is a trailing block of a, e.g.
  // [R, C] op [C]) — the hot pattern in every gate computation.
  if (b.dim() <= a.dim() && IsSuffixShape(b.shape(), a.shape())) {
    Tensor out = Tensor::Uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t inner = b.numel();
    const int64_t rows = a.numel() / inner;
    for (int64_t r = 0; r < rows; ++r) {
      const float* arow = pa + r * inner;
      float* orow = po + r * inner;
      for (int64_t i = 0; i < inner; ++i) orow[i] = f(arow[i], pb[i]);
    }
    return out;
  }
  if (a.dim() <= b.dim() && IsSuffixShape(a.shape(), b.shape())) {
    Tensor out = Tensor::Uninitialized(b.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t inner = a.numel();
    const int64_t rows = b.numel() / inner;
    for (int64_t r = 0; r < rows; ++r) {
      const float* brow = pb + r * inner;
      float* orow = po + r * inner;
      for (int64_t i = 0; i < inner; ++i) orow[i] = f(pa[i], brow[i]);
    }
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t rank = static_cast<int64_t>(out_shape.size());

  // Effective strides per input: 0 on broadcast dims, padded on the left.
  auto effective_strides = [&](const Shape& s) {
    std::vector<int64_t> strides(static_cast<size_t>(rank), 0);
    const auto native = RowMajorStrides(s);
    const int64_t offset = rank - static_cast<int64_t>(s.size());
    for (int64_t d = 0; d < static_cast<int64_t>(s.size()); ++d) {
      strides[static_cast<size_t>(offset + d)] =
          (s[static_cast<size_t>(d)] == 1) ? 0 : native[static_cast<size_t>(d)];
    }
    return strides;
  };
  const auto sa = effective_strides(a.shape());
  const auto sb = effective_strides(b.shape());

  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  int64_t ia = 0;
  int64_t ib = 0;
  for (int64_t i = 0; i < n; ++i) {
    po[i] = f(pa[ia], pb[ib]);
    // Odometer increment.
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      ia += sa[du];
      ib += sb[du];
      if (index[du] < out_shape[du]) break;
      ia -= sa[du] * out_shape[du];
      ib -= sb[du] * out_shape[du];
      index[du] = 0;
    }
  }
  return out;
}

template <typename UnaryOp>
Tensor Unary(const Tensor& t, UnaryOp f) {
  Tensor out = Tensor::Uninitialized(t.shape());
  const float* p = t.data();
  float* po = out.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(p[i]);
  return out;
}

// Core GEMM kernel on contiguous row-major buffers:
//   C[M,N] += A[M,K] * B[K,N]
// i-k-j loop order so the inner loop streams over contiguous rows of B and C,
// which GCC auto-vectorizes.
void GemmKernel(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

Tensor MaterializeTranspose2D(const Tensor& t) {
  const int64_t rows = t.size(0);
  const int64_t cols = t.size(1);
  Tensor out = Tensor::Uninitialized(Shape{cols, rows});
  const float* p = t.data();
  float* po = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) po[j * rows + i] = p[i * cols + j];
  }
  return out;
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t rank =
      std::max<int64_t>(static_cast<int64_t>(a.size()),
                        static_cast<int64_t>(b.size()));
  Shape out(static_cast<size_t>(rank), 1);
  for (int64_t d = 0; d < rank; ++d) {
    const int64_t da =
        d < static_cast<int64_t>(a.size())
            ? a[a.size() - 1 - static_cast<size_t>(d)]
            : 1;
    const int64_t db =
        d < static_cast<int64_t>(b.size())
            ? b[b.size() - 1 - static_cast<size_t>(d)]
            : 1;
    ENHANCENET_CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast " << ShapeToString(a) << " with "
        << ShapeToString(b);
    out[out.size() - 1 - static_cast<size_t>(d)] = std::max(da, db);
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t.Clone();
  // Verify target broadcasts to t.shape().
  ENHANCENET_CHECK(BroadcastShapes(t.shape(), target) == t.shape())
      << "ReduceToShape: " << ShapeToString(target) << " does not broadcast to "
      << ShapeToString(t.shape());
  // Fast path: target is a trailing block (bias-gradient reduction).
  if (static_cast<int64_t>(target.size()) <= t.dim() &&
      IsSuffixShape(target, t.shape())) {
    Tensor out = Tensor::Zeros(target);
    const int64_t inner = out.numel();
    if (inner > 0) {
      const int64_t rows = t.numel() / inner;
      const float* p = t.data();
      float* po = out.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float* row = p + r * inner;
        for (int64_t i = 0; i < inner; ++i) po[i] += row[i];
      }
    }
    return out;
  }
  Tensor out = Tensor::Zeros(target);
  const int64_t rank = t.dim();
  const int64_t offset = rank - out.dim();
  const auto out_strides = RowMajorStrides(target);

  std::vector<int64_t> eff(static_cast<size_t>(rank), 0);
  for (int64_t d = 0; d < out.dim(); ++d) {
    eff[static_cast<size_t>(offset + d)] =
        (target[static_cast<size_t>(d)] == 1)
            ? 0
            : out_strides[static_cast<size_t>(d)];
  }

  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* p = t.data();
  float* po = out.data();
  const int64_t n = t.numel();
  int64_t io = 0;
  const Shape& ts = t.shape();
  for (int64_t i = 0; i < n; ++i) {
    po[io] += p[i];
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      io += eff[du];
      if (index[du] < ts[du]) break;
      io -= eff[du] * ts[du];
      index[du] = 0;
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x / y; });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return std::max(x, y); });
}

Tensor Neg(const Tensor& t) {
  return Unary(t, [](float x) { return -x; });
}

Tensor Abs(const Tensor& t) {
  return Unary(t, [](float x) { return std::fabs(x); });
}

Tensor Sign(const Tensor& t) {
  return Unary(t, [](float x) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}

Tensor Sigmoid(const Tensor& t) {
  return Unary(t, [](float x) {
    // Numerically stable in both tails.
    if (x >= 0) {
      const float z = std::exp(-x);
      return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
  });
}

Tensor Tanh(const Tensor& t) {
  return Unary(t, [](float x) { return std::tanh(x); });
}

Tensor Relu(const Tensor& t) {
  return Unary(t, [](float x) { return x > 0 ? x : 0.0f; });
}

Tensor ReluMask(const Tensor& t) {
  return Unary(t, [](float x) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor Exp(const Tensor& t) {
  return Unary(t, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& t) {
  return Unary(t, [](float x) { return std::log(x); });
}

Tensor Sqrt(const Tensor& t) {
  return Unary(t, [](float x) { return std::sqrt(x); });
}

Tensor Square(const Tensor& t) {
  return Unary(t, [](float x) { return x * x; });
}

Tensor AddScalar(const Tensor& t, float s) {
  return Unary(t, [s](float x) { return x + s; });
}

Tensor MulScalar(const Tensor& t, float s) {
  return Unary(t, [s](float x) { return x * s; });
}

void AxpyInPlace(float alpha, const Tensor& x, Tensor* y) {
  ENHANCENET_CHECK(x.shape() == y->shape())
      << "axpy shape mismatch: " << ShapeToString(x.shape()) << " vs "
      << ShapeToString(y->shape());
  const float* px = x.data();
  float* py = y->data();
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

Tensor Gemm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  ENHANCENET_CHECK_EQ(a.dim(), 2);
  ENHANCENET_CHECK_EQ(b.dim(), 2);
  const Tensor aa = trans_a ? MaterializeTranspose2D(a) : a;
  const Tensor bb = trans_b ? MaterializeTranspose2D(b) : b;
  const int64_t m = aa.size(0);
  const int64_t k = aa.size(1);
  ENHANCENET_CHECK_EQ(k, bb.size(0))
      << "gemm inner dims: " << ShapeToString(aa.shape()) << " x "
      << ShapeToString(bb.shape());
  const int64_t n = bb.size(1);
  Tensor c(Shape{m, n});
  GemmKernel(aa.data(), bb.data(), c.data(), m, k, n);
  return c;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  return Gemm(a, b, /*trans_a=*/false, /*trans_b=*/false);
}

Tensor BatchGemm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  ENHANCENET_CHECK_EQ(a.dim(), 3);
  ENHANCENET_CHECK_EQ(b.dim(), 3);
  ENHANCENET_CHECK_EQ(a.size(0), b.size(0)) << "batch dims differ";
  const int64_t batch = a.size(0);
  const int64_t m = trans_a ? a.size(2) : a.size(1);
  const int64_t k = trans_a ? a.size(1) : a.size(2);
  const int64_t kb = trans_b ? b.size(2) : b.size(1);
  ENHANCENET_CHECK_EQ(k, kb) << "bmm inner dims: " << ShapeToString(a.shape())
                             << " x " << ShapeToString(b.shape());
  const int64_t n = trans_b ? b.size(1) : b.size(2);
  Tensor c(Shape{batch, m, n});

  const int64_t a_stride = a.size(1) * a.size(2);
  const int64_t b_stride = b.size(1) * b.size(2);
  const int64_t c_stride = m * n;
  for (int64_t i = 0; i < batch; ++i) {
    Tensor ai = Slice(a, 0, i, 1).Reshape({a.size(1), a.size(2)});
    Tensor bi = Slice(b, 0, i, 1).Reshape({b.size(1), b.size(2)});
    if (trans_a) ai = MaterializeTranspose2D(ai);
    if (trans_b) bi = MaterializeTranspose2D(bi);
    GemmKernel(ai.data(), bi.data(), c.data() + i * c_stride, m, k, n);
  }
  (void)a_stride;
  (void)b_stride;
  return c;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  return BatchGemm(a, b, /*trans_a=*/false, /*trans_b=*/false);
}

Tensor Transpose(const Tensor& t, int64_t d0, int64_t d1) {
  const int64_t rank = t.dim();
  if (d0 < 0) d0 += rank;
  if (d1 < 0) d1 += rank;
  ENHANCENET_CHECK(d0 >= 0 && d0 < rank && d1 >= 0 && d1 < rank);
  if (d0 == d1) return t.Clone();

  Shape out_shape = t.shape();
  std::swap(out_shape[static_cast<size_t>(d0)],
            out_shape[static_cast<size_t>(d1)]);
  Tensor out = Tensor::Uninitialized(out_shape);

  const auto in_strides = RowMajorStrides(t.shape());
  auto moved_strides = in_strides;
  std::swap(moved_strides[static_cast<size_t>(d0)],
            moved_strides[static_cast<size_t>(d1)]);

  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* p = t.data();
  float* po = out.data();
  const int64_t n = t.numel();
  int64_t ii = 0;
  for (int64_t i = 0; i < n; ++i) {
    po[i] = p[ii];
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      ii += moved_strides[du];
      if (index[du] < out_shape[du]) break;
      ii -= moved_strides[du] * out_shape[du];
      index[du] = 0;
    }
  }
  return out;
}

Tensor Transpose2D(const Tensor& t) {
  ENHANCENET_CHECK_EQ(t.dim(), 2);
  return MaterializeTranspose2D(t);
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  ENHANCENET_CHECK(!parts.empty());
  const int64_t rank = parts[0].dim();
  if (axis < 0) axis += rank;
  ENHANCENET_CHECK(axis >= 0 && axis < rank);

  Shape out_shape = parts[0].shape();
  int64_t axis_total = 0;
  for (const Tensor& p : parts) {
    ENHANCENET_CHECK_EQ(p.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != axis) {
        ENHANCENET_CHECK_EQ(p.size(d), parts[0].size(d))
            << "concat dim " << d << " mismatch";
      }
    }
    axis_total += p.size(axis);
  }
  out_shape[static_cast<size_t>(axis)] = axis_total;
  Tensor out = Tensor::Uninitialized(out_shape);

  // outer = product of dims before axis; inner = product after.
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= out_shape[static_cast<size_t>(d)];
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) {
    inner *= out_shape[static_cast<size_t>(d)];
  }

  float* po = out.data();
  const int64_t out_row = axis_total * inner;
  int64_t axis_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t p_axis = p.size(axis);
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(pp + o * p_axis * inner, pp + (o + 1) * p_axis * inner,
                po + o * out_row + axis_offset * inner);
    }
    axis_offset += p_axis;
  }
  return out;
}

Tensor Slice(const Tensor& t, int64_t axis, int64_t start, int64_t length) {
  const int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  ENHANCENET_CHECK(axis >= 0 && axis < rank);
  ENHANCENET_CHECK(start >= 0 && length >= 0 && start + length <= t.size(axis))
      << "slice [" << start << ", " << start + length << ") of dim "
      << t.size(axis);

  Shape out_shape = t.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  Tensor out = Tensor::Uninitialized(out_shape);

  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= t.size(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) inner *= t.size(d);

  const float* p = t.data();
  float* po = out.data();
  const int64_t in_row = t.size(axis) * inner;
  const int64_t out_row = length * inner;
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(p + o * in_row + start * inner,
              p + o * in_row + (start + length) * inner, po + o * out_row);
  }
  return out;
}

Tensor PadAxis(const Tensor& t, int64_t axis, int64_t before, int64_t after) {
  const int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  ENHANCENET_CHECK(axis >= 0 && axis < rank);
  ENHANCENET_CHECK(before >= 0 && after >= 0);
  if (before == 0 && after == 0) return t.Clone();

  Shape out_shape = t.shape();
  out_shape[static_cast<size_t>(axis)] += before + after;
  Tensor out(out_shape);  // zero-initialized

  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= t.size(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) inner *= t.size(d);

  const float* p = t.data();
  float* po = out.data();
  const int64_t in_row = t.size(axis) * inner;
  const int64_t out_row = out_shape[static_cast<size_t>(axis)] * inner;
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(p + o * in_row, p + (o + 1) * in_row,
              po + o * out_row + before * inner);
  }
  return out;
}

Tensor SumAll(const Tensor& t) {
  double acc = 0.0;
  const float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) acc += p[i];
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor MeanAll(const Tensor& t) {
  ENHANCENET_CHECK_GT(t.numel(), 0);
  return Tensor::Scalar(SumAll(t).item() / static_cast<float>(t.numel()));
}

Tensor Sum(const Tensor& t, int64_t axis, bool keepdim) {
  const int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  ENHANCENET_CHECK(axis >= 0 && axis < rank);

  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= t.size(d);
  const int64_t mid = t.size(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) inner *= t.size(d);

  Shape out_shape = t.shape();
  if (keepdim) {
    out_shape[static_cast<size_t>(axis)] = 1;
  } else {
    out_shape.erase(out_shape.begin() + static_cast<size_t>(axis));
  }
  Tensor out(out_shape);

  const float* p = t.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t m = 0; m < mid; ++m) {
      const float* row = p + (o * mid + m) * inner;
      float* orow = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) orow[i] += row[i];
    }
  }
  return out;
}

Tensor Mean(const Tensor& t, int64_t axis, bool keepdim) {
  const int64_t rank = t.dim();
  const int64_t resolved = axis < 0 ? axis + rank : axis;
  Tensor s = Sum(t, axis, keepdim);
  return MulScalar(s, 1.0f / static_cast<float>(t.size(resolved)));
}

Tensor SoftmaxLastDim(const Tensor& t) {
  ENHANCENET_CHECK_GE(t.dim(), 1);
  const int64_t cols = t.size(-1);
  const int64_t rows = t.numel() / cols;
  Tensor out = Tensor::Uninitialized(t.shape());
  const float* p = t.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = p + r * cols;
    float* orow = po + r * cols;
    float mx = row[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      orow[c] = std::exp(row[c] - mx);
      denom += orow[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
  }
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    if (diff > atol + rtol * std::fabs(pb[i])) return false;
    if (std::isnan(pa[i]) != std::isnan(pb[i])) return false;
  }
  return true;
}

}  // namespace ops
}  // namespace enhancenet
