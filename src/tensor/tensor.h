#ifndef ENHANCENET_TENSOR_TENSOR_H_
#define ENHANCENET_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace enhancenet {

/// Dimension sizes of a tensor, outermost first.
using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by `shape` (1 for a 0-d scalar).
int64_t NumElements(const Shape& shape);

/// Renders a shape as "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// A dense, row-major, always-contiguous float tensor.
///
/// Storage is shared between copies (shallow copy semantics, like
/// torch.Tensor): copying a Tensor is O(1) and both copies alias the same
/// buffer. Use Clone() for a deep copy. Mutating ops on the raw buffer are
/// visible through every alias; the functional ops in tensor_ops.h always
/// allocate fresh outputs.
///
/// Supported ranks are 0 (scalar) through 4, which covers every layout the
/// library uses: [B, N, T, C] activations, [N, C, C'] per-entity filter
/// banks, [N, N] adjacency matrices.
class Tensor {
 public:
  /// An empty (rank-0, 1-element, zero-valued) tensor.
  Tensor();

  /// A zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// A tensor whose elements are NOT initialized. For kernel outputs that
  /// overwrite every element; never expose uninitialized contents.
  static Tensor Uninitialized(Shape shape);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Factory: all zeros.
  static Tensor Zeros(Shape shape);
  /// Factory: all ones.
  static Tensor Ones(Shape shape);
  /// Factory: every element set to `value`.
  static Tensor Full(Shape shape, float value);
  /// Factory: rank-0 scalar.
  static Tensor Scalar(float value);
  /// Factory: copies `values` (size must match the shape's element count).
  static Tensor FromVector(Shape shape, const std::vector<float>& values);
  /// Factory: i.i.d. N(0, stddev²) entries drawn from `rng`.
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// Factory: i.i.d. Uniform[lo, hi) entries drawn from `rng`.
  static Tensor RandUniform(Shape shape, Rng& rng, float lo, float hi);

  /// Factory: adopts caller-provided storage (e.g. a runtime::Workspace
  /// block) without copying. `storage` must hold at least the shape's
  /// element count (and at least 1 float); contents are left as-is. The
  /// tensor shares ownership, so the storage's own deleter decides where
  /// the block goes when the last alias drops.
  static Tensor WithStorage(std::shared_ptr<float[]> storage, Shape shape);

  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  /// Size of dimension `d`; negative `d` counts from the end.
  int64_t size(int64_t d) const;
  int64_t numel() const { return numel_; }

  float* data() { return storage_.get(); }
  const float* data() const { return storage_.get(); }

  /// Element access by multi-index (rank must match the index count).
  float& at(std::initializer_list<int64_t> index);
  float at(std::initializer_list<int64_t> index) const;

  /// Deep copy with fresh storage.
  Tensor Clone() const;

  /// Returns a tensor sharing this storage with a new shape. The element
  /// count must be unchanged. One dimension may be -1 (inferred).
  Tensor Reshape(Shape new_shape) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Copies all elements out into a std::vector.
  std::vector<float> ToVector() const;

  /// Value of a rank-0 or single-element tensor.
  float item() const;

  /// True if the two tensors share the same storage buffer.
  bool SharesStorageWith(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  /// Compact textual rendering (for debugging / small tensors).
  std::string ToString(int64_t max_elements = 64) const;

 private:
  /// Tag for the Uninitialized factory: skips the storage allocation the
  /// default constructor would perform (the factory installs its own).
  struct kUninitializedTag {};
  explicit Tensor(kUninitializedTag) : numel_(0) {}

  Tensor(std::shared_ptr<float[]> storage, Shape shape);

  int64_t FlatIndex(std::initializer_list<int64_t> index) const;

  std::shared_ptr<float[]> storage_;
  Shape shape_;
  int64_t numel_;
};

}  // namespace enhancenet

#endif  // ENHANCENET_TENSOR_TENSOR_H_
