#ifndef ENHANCENET_TENSOR_ALLOCATOR_H_
#define ENHANCENET_TENSOR_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace enhancenet {

/// Point-in-time view of the allocator's accounting. All byte figures refer
/// to float storage handed out by Allocate (bucket-rounded capacity, not the
/// requested numel).
struct AllocatorStats {
  int64_t requests = 0;      ///< Allocate() calls.
  int64_t pool_hits = 0;     ///< served from a bucket free list
  int64_t pool_misses = 0;   ///< bucketable size, but the free list was empty
  int64_t oversize = 0;      ///< above kMaxBucketNumel; bypassed the pool
  int64_t bytes_outstanding = 0;  ///< held by live tensors right now
  int64_t bytes_cached = 0;       ///< parked on free lists, ready for reuse
  int64_t bytes_high_water = 0;   ///< peak of bytes_outstanding since reset

  /// Fraction of bucketable requests served from the pool (0 when none).
  double HitRate() const {
    const int64_t bucketable = pool_hits + pool_misses;
    return bucketable == 0
               ? 0.0
               : static_cast<double>(pool_hits) / static_cast<double>(bucketable);
  }
};

/// Thread-safe, size-bucketed caching allocator for Tensor storage.
///
/// Allocate() rounds the requested element count up to a power-of-two bucket
/// and pops a recycled block from that bucket's free list when one is
/// available; the returned shared_ptr's deleter pushes the block back instead
/// of freeing it. In steady state a training step therefore performs zero
/// heap allocations for tensor storage: every shape the step produces was
/// produced by the previous step too, so every request is a pool hit.
///
/// Requests above kMaxBucketNumel bypass the pool entirely (allocated and
/// freed through the system allocator, still counted in the outstanding
/// stats) so a single giant tensor can never pin its high-water mark as
/// cached-but-idle memory.
///
/// `ENHANCENET_ALLOCATOR=system` disables caching for the process-wide
/// instance (every free list stays empty; blocks are freed on release) as an
/// escape hatch for leak hunting with external heap tools. Accounting is
/// identical in both modes, so tests written against the stats run anywhere.
///
/// Outstanding/high-water/cached bytes and hit/miss counts are mirrored into
/// the obs registry (`tensor.alloc.*`) by the global instance.
class TensorAllocator {
 public:
  /// Smallest bucket: requests below this round up to it.
  static constexpr int64_t kMinBucketNumel = 1 << 5;  // 32 floats
  /// Largest cached bucket (64 Mi floats = 256 MiB); larger requests bypass
  /// the pool.
  static constexpr int64_t kMaxBucketNumel = 1 << 26;

  /// The process-wide instance used by Tensor storage. Never destroyed
  /// (leaked, like the obs registry), so pooled deleters outlive every
  /// static-storage tensor.
  static TensorAllocator& Global();

  /// `export_metrics` mirrors stats into the obs registry; only the global
  /// instance should pass true.
  explicit TensorAllocator(bool export_metrics = false);
  ~TensorAllocator();

  TensorAllocator(const TensorAllocator&) = delete;
  TensorAllocator& operator=(const TensorAllocator&) = delete;

  /// Storage for `numel` floats (>= 0; zero-element requests get a 1-float
  /// block). Contents are NOT initialized — recycled blocks hold stale data.
  std::shared_ptr<float[]> Allocate(int64_t numel);

  AllocatorStats GetStats() const;

  /// Zeroes the counters and restarts the high-water mark from the current
  /// outstanding bytes. Live blocks and free lists are untouched.
  void ResetStats();

  /// Frees every cached block. Storage owned by live tensors is unaffected.
  void Trim();

  bool caching_enabled() const;
  /// Runtime override of the ENHANCENET_ALLOCATOR default (tests, benches).
  /// Disabling does not free already-cached blocks; call Trim() for that.
  void set_caching_enabled(bool enabled);

  /// Bucket capacity (in floats) for a request, or -1 when the request is
  /// oversize and must bypass the pool. Exposed for tests.
  static int64_t BucketNumel(int64_t numel);

 private:
  struct Metrics;  // cached obs registry handles

  void OnFree(float* block, int64_t capacity, bool pooled);
  void PushStatsLocked();

  mutable std::mutex mu_;
  std::vector<std::vector<float*>> buckets_;  // free lists, by log2 capacity
  bool caching_enabled_;
  AllocatorStats stats_;
  Metrics* metrics_ = nullptr;  // null unless export_metrics
};

}  // namespace enhancenet

#endif  // ENHANCENET_TENSOR_ALLOCATOR_H_
