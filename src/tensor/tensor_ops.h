#ifndef ENHANCENET_TENSOR_TENSOR_OPS_H_
#define ENHANCENET_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace enhancenet {
namespace ops {

// ---------------------------------------------------------------------------
// Shape utilities
// ---------------------------------------------------------------------------

/// NumPy-style broadcast of two shapes; CHECK-fails if incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// Sums `t` down to `target` (the reverse of broadcasting `target` -> t.shape).
/// Used by autograd to reduce gradients of broadcast operands.
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// ---------------------------------------------------------------------------
// Elementwise binary (with broadcasting)
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Elementwise unary
// ---------------------------------------------------------------------------

Tensor Neg(const Tensor& t);
Tensor Abs(const Tensor& t);
/// -1, 0, +1 elementwise.
Tensor Sign(const Tensor& t);
Tensor Sigmoid(const Tensor& t);
Tensor Tanh(const Tensor& t);
Tensor Relu(const Tensor& t);
/// 1.0 where t > 0 else 0.0 (derivative mask of Relu).
Tensor ReluMask(const Tensor& t);
Tensor Exp(const Tensor& t);
Tensor Log(const Tensor& t);
Tensor Sqrt(const Tensor& t);
Tensor Square(const Tensor& t);

// ---------------------------------------------------------------------------
// Scalar ops
// ---------------------------------------------------------------------------

Tensor AddScalar(const Tensor& t, float s);
Tensor MulScalar(const Tensor& t, float s);

/// y += alpha * x (shapes must match exactly). The only mutating op; used for
/// gradient accumulation and optimizer updates.
void AxpyInPlace(float alpha, const Tensor& x, Tensor* y);

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// Epilogue fused into a GEMM's write-back loop. The bias add and gate
/// nonlinearities are applied to each output tile as its K-dimension
/// accumulation completes — while the tile is still cache-hot — so none of
/// them ever costs a separate full-tensor pass. With P = op(A)·op(B):
///
///   kNone                 C = P                         (the historical GEMM)
///   kBias                 C = P + bias                  (affine layers)
///   kBiasTanh             C = tanh(P + bias)
///   kBiasSigmoid          C = σ(P + bias)
///   kBiasGatedTanhSigmoid C = tanh(Pf+bf) ⊙ σ(Pg+bg)    (WaveNet gating)
///   kBiasGlu              C = (Pf+bf) ⊙ σ(Pg+bg)        (GLU gating, STGCN)
///
/// The two gated epilogues split the product's N columns into halves
/// (Pf = P[:, :N/2], Pg = P[:, N/2:]) and emit a half-width output. Bias is
/// always [N] (the raw product width). Numerics match the composed unfused
/// ops exactly: the bias add reproduces the suffix-broadcast Add and the
/// sigmoid uses the same two-branch stable form as ops::Sigmoid, so every
/// epilogue output is bitwise identical to its unfused chain — and, since
/// each output element is written by the tile that owns it, bitwise
/// invariant across thread counts.
enum class GemmEpilogue {
  kNone,
  kBias,
  kBiasTanh,
  kBiasSigmoid,
  kBiasGatedTanhSigmoid,
  kBiasGlu,
};

/// True for the epilogues that gate the product's column halves into a
/// half-width output.
bool IsGatedEpilogue(GemmEpilogue epilogue);

/// General 2-D matrix product with optional operand transposes:
///   C = epilogue(op(A) * op(B) + bias), op(X) = X or Xᵀ.
///
/// With the default kNone epilogue `bias`/`preact` are ignored and this is
/// the historical C = op(A)·op(B). Otherwise `bias` must be a rank-1 tensor
/// of the product width N. For the activation epilogues, a non-null `preact`
/// (shape [M, N]) additionally receives the pre-activation P + bias — the
/// tensor a fused backward needs to recompute the gate values. Gated
/// epilogues with preact == nullptr stage the accumulator in the bound
/// RuntimeContext's Workspace instead, so the no-grad path allocates
/// nothing.
Tensor Gemm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
            GemmEpilogue epilogue = GemmEpilogue::kNone,
            const Tensor* bias = nullptr, Tensor* preact = nullptr);

/// C[M,N] = A[M,K] * B[K,N].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Batched 3-D matrix product with optional transposes of the trailing two
/// dims: C[i] = op(A[i]) * op(B[i]) for each leading index i. Epilogue
/// semantics match Gemm, applied per slice inside the slice's own compute
/// chunk (`bias` is shared across slices; `preact` is [B, M, N]).
Tensor BatchGemm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                 GemmEpilogue epilogue = GemmEpilogue::kNone,
                 const Tensor* bias = nullptr, Tensor* preact = nullptr);

/// C[B,M,N] = A[B,M,K] * B[B,K,N].
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

/// BatchMatMul into caller-provided storage (e.g. a runtime::Workspace
/// block). `out` must already have shape [B,M,N]; its contents are
/// discarded. Numerically identical to BatchMatMul.
void BatchMatMulInto(const Tensor& a, const Tensor& b, Tensor* out);

// ---------------------------------------------------------------------------
// Movement / restructuring (all produce fresh storage)
// ---------------------------------------------------------------------------

/// Swaps dimensions d0 and d1 (copy).
Tensor Transpose(const Tensor& t, int64_t d0, int64_t d1);

/// Transpose into caller-provided storage. `out` must already have the
/// swapped shape; every element is overwritten. Numerically identical to
/// Transpose.
void TransposeInto(const Tensor& t, int64_t d0, int64_t d1, Tensor* out);

/// 2-D transpose convenience.
Tensor Transpose2D(const Tensor& t);

/// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);

/// Concat into caller-provided storage (e.g. a runtime::Workspace block
/// adopted via Tensor::WithStorage). `out` must already have the concat
/// result shape; every element is overwritten. Numerically identical to
/// Concat. The micro-batcher stages [B,N,H,C] forwards through this so
/// steady-state serving never touches the allocator.
void ConcatInto(const std::vector<Tensor>& parts, int64_t axis, Tensor* out);

/// Takes elements [start, start+length) along `axis`.
Tensor Slice(const Tensor& t, int64_t axis, int64_t start, int64_t length);

/// Slice into caller-provided storage. `out` must already have the slice
/// result shape; every element is overwritten. Numerically identical to
/// Slice.
void SliceInto(const Tensor& t, int64_t axis, int64_t start, int64_t length,
               Tensor* out);

/// Zero-pads `before`/`after` elements along `axis`.
Tensor PadAxis(const Tensor& t, int64_t axis, int64_t before, int64_t after);

// ---------------------------------------------------------------------------
// Reductions and normalization
// ---------------------------------------------------------------------------

/// Scalar (rank-0) sum of all elements.
Tensor SumAll(const Tensor& t);
/// Scalar (rank-0) mean of all elements.
Tensor MeanAll(const Tensor& t);
/// Sum over `axis`, keeping it as size 1 if keepdim.
Tensor Sum(const Tensor& t, int64_t axis, bool keepdim);
/// Mean over `axis`, keeping it as size 1 if keepdim.
Tensor Mean(const Tensor& t, int64_t axis, bool keepdim);
/// Numerically stable softmax over the last dimension.
Tensor SoftmaxLastDim(const Tensor& t);

/// SoftmaxLastDim into caller-provided storage. `out` must have t's shape;
/// every element is overwritten. Numerically identical to SoftmaxLastDim.
void SoftmaxLastDimInto(const Tensor& t, Tensor* out);

// ---------------------------------------------------------------------------
// Comparisons (for tests)
// ---------------------------------------------------------------------------

/// True if shapes match and |a-b| <= atol + rtol*|b| elementwise.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace ops
}  // namespace enhancenet

#endif  // ENHANCENET_TENSOR_TENSOR_OPS_H_
