#include "io/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace enhancenet {
namespace io {
namespace {

bool LooksNumeric(const std::string& field) {
  if (field.empty()) return false;
  char* end = nullptr;
  std::strtod(field.c_str(), &end);
  // Accept trailing whitespace only.
  while (end != nullptr && *end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  // A trailing comma means an empty final field.
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

Result<Tensor> ReadMatrixCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Result<Tensor>::Error(Status::NotFound("cannot open " + path));
  }
  std::vector<std::vector<float>> rows;
  std::string line;
  int64_t line_number = 0;
  int64_t cols = -1;
  while (std::getline(file, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (rows.empty() && cols == -1 && !LooksNumeric(fields[0])) {
      continue;  // header row
    }
    if (cols == -1) {
      cols = static_cast<int64_t>(fields.size());
    } else if (static_cast<int64_t>(fields.size()) != cols) {
      std::ostringstream msg;
      msg << path << ":" << line_number << ": expected " << cols
          << " fields, got " << fields.size();
      return Result<Tensor>::Error(Status::InvalidArgument(msg.str()));
    }
    std::vector<float> row;
    row.reserve(fields.size());
    for (const std::string& field : fields) {
      if (!LooksNumeric(field)) {
        std::ostringstream msg;
        msg << path << ":" << line_number << ": non-numeric field '" << field
            << "'";
        return Result<Tensor>::Error(Status::InvalidArgument(msg.str()));
      }
      row.push_back(std::strtof(field.c_str(), nullptr));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Result<Tensor>::Error(
        Status::InvalidArgument(path + ": no data rows"));
  }
  Tensor out({static_cast<int64_t>(rows.size()), cols});
  float* p = out.data();
  for (const auto& row : rows) {
    p = std::copy(row.begin(), row.end(), p);
  }
  return Result<Tensor>::Ok(std::move(out));
}

Status WriteMatrixCsv(const std::string& path, const Tensor& matrix) {
  if (matrix.dim() > 2) {
    return Status::InvalidArgument("WriteMatrixCsv expects rank <= 2");
  }
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  const int64_t rows = matrix.dim() == 2 ? matrix.size(0) : 1;
  const int64_t cols =
      matrix.dim() == 2 ? matrix.size(1)
                        : (matrix.dim() == 1 ? matrix.size(0) : 1);
  const float* p = matrix.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) file << ',';
      file << p[r * cols + c];
    }
    file << '\n';
  }
  return file.good() ? Status::Ok()
                     : Status::Internal("write to " + path + " failed");
}

Result<data::CtsData> LoadCtsFromCsv(const std::string& name,
                                     const std::string& series_path,
                                     const std::string& distances_path,
                                     const std::string& locations_path,
                                     int64_t num_channels,
                                     int64_t target_channel,
                                     int64_t steps_per_day) {
  using R = Result<data::CtsData>;
  if (num_channels <= 0) {
    return R::Error(Status::InvalidArgument("num_channels must be positive"));
  }
  Result<Tensor> series = ReadMatrixCsv(series_path);
  if (!series.ok()) return R::Error(series.status);
  Result<Tensor> distances = ReadMatrixCsv(distances_path);
  if (!distances.ok()) return R::Error(distances.status);

  const int64_t t_total = series.value.size(0);
  const int64_t wide = series.value.size(1);
  if (wide % num_channels != 0) {
    return R::Error(Status::InvalidArgument(
        "series column count is not a multiple of num_channels"));
  }
  const int64_t n = wide / num_channels;
  if (distances.value.dim() != 2 || distances.value.size(0) != n ||
      distances.value.size(1) != n) {
    return R::Error(Status::InvalidArgument(
        "distances must be [N, N] with N matching the series"));
  }
  if (target_channel < 0 || target_channel >= num_channels) {
    return R::Error(Status::InvalidArgument("target_channel out of range"));
  }

  data::CtsData out;
  out.name = name;
  out.target_channel = target_channel;
  out.steps_per_day = steps_per_day;
  // [T, N*C] row-major -> [N, T, C].
  out.series = Tensor({n, t_total, num_channels});
  const float* src = series.value.data();
  for (int64_t t = 0; t < t_total; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < num_channels; ++c) {
        out.series.at({i, t, c}) = src[t * wide + i * num_channels + c];
      }
    }
  }
  out.distances = std::move(distances.value);

  if (!locations_path.empty()) {
    Result<Tensor> locations = ReadMatrixCsv(locations_path);
    if (!locations.ok()) return R::Error(locations.status);
    if (locations.value.dim() != 2 || locations.value.size(0) != n ||
        locations.value.size(1) != 2) {
      return R::Error(
          Status::InvalidArgument("locations must be [N, 2]"));
    }
    out.locations = std::move(locations.value);
  } else {
    out.locations = Tensor::Zeros({n, 2});
  }
  return R::Ok(std::move(out));
}

Status WriteForecastCsv(const std::string& path, const Tensor& forecast) {
  if (forecast.dim() != 2) {
    return Status::InvalidArgument("forecast must be [N, F]");
  }
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  file << "entity";
  for (int64_t f = 0; f < forecast.size(1); ++f) file << ",h" << (f + 1);
  file << '\n';
  for (int64_t i = 0; i < forecast.size(0); ++i) {
    file << i;
    for (int64_t f = 0; f < forecast.size(1); ++f) {
      file << ',' << forecast.at({i, f});
    }
    file << '\n';
  }
  return file.good() ? Status::Ok()
                     : Status::Internal("write to " + path + " failed");
}

}  // namespace io
}  // namespace enhancenet
