#include "io/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace enhancenet {
namespace io {
namespace {

constexpr char kMagic[4] = {'E', 'N', 'C', 'P'};
/// v1: no metadata block. v2 (current): uint8 has_meta + optional metadata
/// between the version word and the parameter count.
constexpr uint32_t kVersion = 2;

template <typename T>
void WritePod(std::ofstream& file, T value) {
  file.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& file, T* value) {
  file.read(reinterpret_cast<char*>(value), sizeof(T));
  return file.good();
}

/// Reads magic, version, and (for v2) the metadata block, leaving the stream
/// positioned at the parameter count. Shared by ReadCheckpointMeta and
/// LoadCheckpoint so the two can never disagree on the wire format.
Status ReadHeader(std::ifstream& file, const std::string& path,
                  CheckpointMeta* meta) {
  char magic[4];
  file.read(magic, sizeof(magic));
  if (!file.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an EnhanceNet checkpoint");
  }
  uint32_t version = 0;
  if (!ReadPod(file, &version) || version < 1 || version > kVersion) {
    return Status::InvalidArgument(path + ": unsupported checkpoint version");
  }
  *meta = CheckpointMeta();
  if (version == 1) return Status::Ok();  // v1: parameters follow directly
  uint8_t has_meta = 0;
  if (!ReadPod(file, &has_meta) || has_meta > 1) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  if (has_meta == 0) return Status::Ok();
  uint32_t name_len = 0;
  if (!ReadPod(file, &name_len) || name_len > 4096) {
    return Status::InvalidArgument(path + ": corrupt model name in header");
  }
  std::string name(name_len, '\0');
  file.read(name.data(), name_len);
  if (!file.good()) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  int64_t fields[4];
  for (int64_t& field : fields) {
    if (!ReadPod(file, &field) || field < 0) {
      return Status::InvalidArgument(path + ": corrupt sizing in header");
    }
  }
  meta->present = true;
  meta->model_name = std::move(name);
  meta->num_entities = fields[0];
  meta->in_channels = fields[1];
  meta->history = fields[2];
  meta->horizon = fields[3];
  return Status::Ok();
}

Status SaveCheckpointImpl(const std::string& path, const nn::Module& module,
                          const CheckpointMeta* meta) {
  // Crash safety: the final file must never exist in a partially-written
  // state, so everything is written to <path>.tmp and renamed into place
  // only after every byte landed. A crash at any point leaves either no
  // file at `path` or the previous complete one; the only torn artifact is
  // the temp file, which LoadCheckpoint never looks at.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) {
      return Status::NotFound("cannot open " + tmp_path + " for writing");
    }
    const auto named = module.NamedParameters();
    file.write(kMagic, sizeof(kMagic));
    WritePod(file, kVersion);
    WritePod(file, static_cast<uint8_t>(meta != nullptr ? 1 : 0));
    if (meta != nullptr) {
      WritePod(file, static_cast<uint32_t>(meta->model_name.size()));
      file.write(meta->model_name.data(),
                 static_cast<std::streamsize>(meta->model_name.size()));
      WritePod(file, meta->num_entities);
      WritePod(file, meta->in_channels);
      WritePod(file, meta->history);
      WritePod(file, meta->horizon);
    }
    WritePod(file, static_cast<uint64_t>(named.size()));
    for (const auto& [name, param] : named) {
      WritePod(file, static_cast<uint32_t>(name.size()));
      file.write(name.data(), static_cast<std::streamsize>(name.size()));
      const Shape& shape = param.shape();
      WritePod(file, static_cast<uint32_t>(shape.size()));
      for (int64_t d : shape) WritePod(file, d);
      file.write(reinterpret_cast<const char*>(param.data().data()),
                 static_cast<std::streamsize>(param.numel() * sizeof(float)));
    }
    file.flush();
    if (!file.good()) {
      file.close();
      std::remove(tmp_path.c_str());
      return Status::Internal("write to " + tmp_path + " failed");
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("rename " + tmp_path + " -> " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const nn::Module& module) {
  return SaveCheckpointImpl(path, module, nullptr);
}

Status SaveCheckpoint(const std::string& path, const nn::Module& module,
                      const CheckpointMeta& meta) {
  return SaveCheckpointImpl(path, module, &meta);
}

Status ReadCheckpointMeta(const std::string& path, CheckpointMeta* meta) {
  if (meta == nullptr) {
    return Status::InvalidArgument("meta is null");
  }
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return ReadHeader(file, path, meta);
}

Status LoadCheckpoint(const std::string& path, nn::Module* module) {
  if (module == nullptr) {
    return Status::InvalidArgument("module is null");
  }
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  CheckpointMeta meta;
  ENHANCENET_RETURN_IF_ERROR(ReadHeader(file, path, &meta));
  uint64_t count = 0;
  if (!ReadPod(file, &count)) {
    return Status::InvalidArgument(path + ": truncated header");
  }

  // Index the module's parameters by name.
  std::map<std::string, autograd::Variable> params;
  for (auto& [name, param] : module->NamedParameters()) {
    params.emplace(name, param);
  }
  if (count != params.size()) {
    std::ostringstream msg;
    msg << path << ": checkpoint has " << count << " parameters, module has "
        << params.size() << " (module expects:";
    for (const auto& [name, param] : params) {
      msg << " " << name << ShapeToString(param.shape());
    }
    msg << ")";
    return Status::FailedPrecondition(msg.str());
  }

  // Transactional load: every payload is staged into a scratch buffer and
  // the module is only touched after the entire file has been read and
  // validated. A truncated tail or mid-file corruption therefore leaves the
  // module's parameters bitwise identical to before the call.
  std::vector<std::pair<autograd::Variable, std::vector<float>>> staged;
  staged.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(file, &name_len) || name_len > 4096) {
      return Status::InvalidArgument(path + ": corrupt parameter name");
    }
    std::string name(name_len, '\0');
    file.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!file.good() || !ReadPod(file, &rank) || rank > 4) {
      return Status::InvalidArgument(path + ": corrupt parameter header");
    }
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(file, &shape[d]) || shape[d] < 0) {
        return Status::InvalidArgument(path + ": corrupt shape");
      }
    }
    const auto it = params.find(name);
    if (it == params.end()) {
      return Status::FailedPrecondition(
          path + ": checkpoint parameter '" + name + "' " +
          ShapeToString(shape) + " does not exist in the module");
    }
    if (it->second.shape() != shape) {
      return Status::FailedPrecondition(
          path + ": shape mismatch for parameter '" + name +
          "': checkpoint has " + ShapeToString(shape) + ", module has " +
          ShapeToString(it->second.shape()));
    }
    std::vector<float> scratch(static_cast<size_t>(NumElements(shape)));
    file.read(reinterpret_cast<char*>(scratch.data()),
              static_cast<std::streamsize>(scratch.size() * sizeof(float)));
    if (!file.good()) {
      return Status::InvalidArgument(path + ": truncated data for '" + name +
                                     "'");
    }
    staged.emplace_back(it->second, std::move(scratch));
  }

  // Commit point: all reads and checks passed.
  for (auto& [param, scratch] : staged) {
    std::memcpy(param.mutable_data().data(), scratch.data(),
                scratch.size() * sizeof(float));
  }
  return Status::Ok();
}

}  // namespace io
}  // namespace enhancenet
