#include "io/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace enhancenet {
namespace io {
namespace {

constexpr char kMagic[4] = {'E', 'N', 'C', 'P'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& file, T value) {
  file.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& file, T* value) {
  file.read(reinterpret_cast<char*>(value), sizeof(T));
  return file.good();
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const nn::Module& module) {
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  const auto named = module.NamedParameters();
  file.write(kMagic, sizeof(kMagic));
  WritePod(file, kVersion);
  WritePod(file, static_cast<uint64_t>(named.size()));
  for (const auto& [name, param] : named) {
    WritePod(file, static_cast<uint32_t>(name.size()));
    file.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Shape& shape = param.shape();
    WritePod(file, static_cast<uint32_t>(shape.size()));
    for (int64_t d : shape) WritePod(file, d);
    file.write(reinterpret_cast<const char*>(param.data().data()),
               static_cast<std::streamsize>(param.numel() * sizeof(float)));
  }
  if (!file.good()) {
    return Status::Internal("write to " + path + " failed");
  }
  return Status::Ok();
}

Status LoadCheckpoint(const std::string& path, nn::Module* module) {
  if (module == nullptr) {
    return Status::InvalidArgument("module is null");
  }
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  char magic[4];
  file.read(magic, sizeof(magic));
  if (!file.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an EnhanceNet checkpoint");
  }
  uint32_t version = 0;
  if (!ReadPod(file, &version) || version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported checkpoint version");
  }
  uint64_t count = 0;
  if (!ReadPod(file, &count)) {
    return Status::InvalidArgument(path + ": truncated header");
  }

  // Index the module's parameters by name.
  std::map<std::string, autograd::Variable> params;
  for (auto& [name, param] : module->NamedParameters()) {
    params.emplace(name, param);
  }
  if (count != params.size()) {
    std::ostringstream msg;
    msg << path << ": checkpoint has " << count << " parameters, module has "
        << params.size() << " (module expects:";
    for (const auto& [name, param] : params) {
      msg << " " << name << ShapeToString(param.shape());
    }
    msg << ")";
    return Status::FailedPrecondition(msg.str());
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(file, &name_len) || name_len > 4096) {
      return Status::InvalidArgument(path + ": corrupt parameter name");
    }
    std::string name(name_len, '\0');
    file.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!file.good() || !ReadPod(file, &rank) || rank > 4) {
      return Status::InvalidArgument(path + ": corrupt parameter header");
    }
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(file, &shape[d]) || shape[d] < 0) {
        return Status::InvalidArgument(path + ": corrupt shape");
      }
    }
    const auto it = params.find(name);
    if (it == params.end()) {
      return Status::FailedPrecondition(
          path + ": checkpoint parameter '" + name + "' " +
          ShapeToString(shape) + " does not exist in the module");
    }
    if (it->second.shape() != shape) {
      return Status::FailedPrecondition(
          path + ": shape mismatch for parameter '" + name +
          "': checkpoint has " + ShapeToString(shape) + ", module has " +
          ShapeToString(it->second.shape()));
    }
    file.read(reinterpret_cast<char*>(it->second.mutable_data().data()),
              static_cast<std::streamsize>(NumElements(shape) *
                                           sizeof(float)));
    if (!file.good()) {
      return Status::InvalidArgument(path + ": truncated data for '" + name +
                                     "'");
    }
  }
  return Status::Ok();
}

}  // namespace io
}  // namespace enhancenet
