#ifndef ENHANCENET_IO_CSV_H_
#define ENHANCENET_IO_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace io {

/// Result-or-error carrier for loaders (a minimal StatusOr).
template <typename T>
struct Result {
  Status status;
  T value;

  bool ok() const { return status.ok(); }

  static Result Ok(T value) {
    Result r;
    r.value = std::move(value);
    return r;
  }
  static Result Error(Status status) {
    Result r;
    r.status = std::move(status);
    return r;
  }
};

/// Parses a numeric CSV file into a [rows, cols] tensor. Every row must have
/// the same number of fields; blank lines are skipped; a single optional
/// header row is skipped automatically when its first field is not numeric.
Result<Tensor> ReadMatrixCsv(const std::string& path);

/// Writes a rank-1/2 tensor as CSV (same format ReadMatrixCsv accepts).
Status WriteMatrixCsv(const std::string& path, const Tensor& matrix);

/// Loads a correlated time series dataset from three CSV files:
///
///  * `series_path`   — T rows × (N·C) columns; column order is entity-major
///                      (entity0-chan0, entity0-chan1, ..., entity1-chan0, ...).
///  * `distances_path`— N rows × N columns of pairwise distances.
///  * `locations_path`— optional (may be empty): N rows × 2 columns.
///
/// This is the bridge for running the library on real data (e.g. METR-LA
/// exported from its HDF5 file) instead of the synthetic generators.
Result<data::CtsData> LoadCtsFromCsv(const std::string& name,
                                     const std::string& series_path,
                                     const std::string& distances_path,
                                     const std::string& locations_path,
                                     int64_t num_channels,
                                     int64_t target_channel = 0,
                                     int64_t steps_per_day = 288);

/// Writes per-entity forecasts [N, F] with a header row (h1..hF) and one row
/// per entity.
Status WriteForecastCsv(const std::string& path, const Tensor& forecast);

}  // namespace io
}  // namespace enhancenet

#endif  // ENHANCENET_IO_CSV_H_
