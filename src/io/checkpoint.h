#ifndef ENHANCENET_IO_CHECKPOINT_H_
#define ENHANCENET_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace enhancenet {
namespace io {

/// Identity of the model a checkpoint was saved from. Written into the
/// checkpoint header (format v2) so a serving control plane can reject a
/// spec/file mismatch with a precise error *before* staging the weights,
/// instead of surfacing as a parameter-shape mismatch mid-load.
struct CheckpointMeta {
  /// False for files without a metadata block (all v1 checkpoints, and v2
  /// files written through the meta-less SaveCheckpoint overload).
  bool present = false;
  std::string model_name;
  int64_t num_entities = 0;
  int64_t in_channels = 0;
  int64_t history = 0;
  int64_t horizon = 0;
};

/// Binary weight checkpoints.
///
/// Format (little-endian):
///   magic "ENCP", uint32 version (2), uint8 has_meta,
///   [if has_meta: uint32 name length, name bytes, int64 num_entities,
///    int64 in_channels, int64 history, int64 horizon],
///   uint64 parameter count, then per parameter: uint32 name length, name
///   bytes, uint32 rank, int64 dims[], float32 data[].
///
/// Version 1 files (no metadata block) remain fully loadable; only writing
/// moved to version 2.
///
/// Loading matches parameters by hierarchical name and CHECKs nothing — all
/// mismatches (missing file, unknown/missing names, shape conflicts) are
/// reported through Status so callers can recover. Typical round trip:
///
///   io::SaveCheckpoint("model.encp", *model, meta);
///   ...
///   auto fresh = models::MakeModel(...same config & seed...);
///   io::LoadCheckpoint("model.encp", fresh.get());
///
/// Crash safety: saving writes <path>.tmp and renames it into place, so a
/// kill at any point leaves either no file or the previous complete file at
/// `path` — never a torn one with a valid header. Loading is transactional:
/// the module is modified only after the whole file has been read and every
/// name/shape check passed, so a failed load leaves the parameters bitwise
/// untouched.
Status SaveCheckpoint(const std::string& path, const nn::Module& module);

/// Saves with a metadata block identifying the source model; `meta.present`
/// is ignored (writing a meta implies presence).
Status SaveCheckpoint(const std::string& path, const nn::Module& module,
                      const CheckpointMeta& meta);

/// Reads only the header of a checkpoint: cheap (no parameter payloads are
/// touched) and safe to call on files of either version. For v1 files and
/// meta-less v2 files, returns OK with `meta->present == false`.
Status ReadCheckpointMeta(const std::string& path, CheckpointMeta* meta);

/// Restores every parameter of `module` from the checkpoint. The checkpoint
/// must contain exactly the module's parameter names with matching shapes.
Status LoadCheckpoint(const std::string& path, nn::Module* module);

}  // namespace io
}  // namespace enhancenet

#endif  // ENHANCENET_IO_CHECKPOINT_H_
