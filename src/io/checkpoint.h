#ifndef ENHANCENET_IO_CHECKPOINT_H_
#define ENHANCENET_IO_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace enhancenet {
namespace io {

/// Binary weight checkpoints.
///
/// Format (little-endian):
///   magic "ENCP", uint32 version (1), uint64 parameter count, then per
///   parameter: uint32 name length, name bytes, uint32 rank, int64 dims[],
///   float32 data[].
///
/// Loading matches parameters by hierarchical name and CHECKs nothing — all
/// mismatches (missing file, unknown/missing names, shape conflicts) are
/// reported through Status so callers can recover. Typical round trip:
///
///   io::SaveCheckpoint("model.encp", *model);
///   ...
///   auto fresh = models::MakeModel(...same config & seed...);
///   io::LoadCheckpoint("model.encp", fresh.get());
///
/// Crash safety: saving writes <path>.tmp and renames it into place, so a
/// kill at any point leaves either no file or the previous complete file at
/// `path` — never a torn one with a valid header. Loading is transactional:
/// the module is modified only after the whole file has been read and every
/// name/shape check passed, so a failed load leaves the parameters bitwise
/// untouched.
Status SaveCheckpoint(const std::string& path, const nn::Module& module);

/// Restores every parameter of `module` from the checkpoint. The checkpoint
/// must contain exactly the module's parameter names with matching shapes.
Status LoadCheckpoint(const std::string& path, nn::Module* module);

}  // namespace io
}  // namespace enhancenet

#endif  // ENHANCENET_IO_CHECKPOINT_H_
