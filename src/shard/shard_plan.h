#ifndef ENHANCENET_SHARD_SHARD_PLAN_H_
#define ENHANCENET_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace enhancenet {
namespace shard {

/// A partition of the entity axis [0, N) into S contiguous shards
/// (DESIGN.md §12). Contiguity is load-bearing twice over: a shard's rows of
/// any [B,N,C] signal form one memory slab per batch, and the CSR entry
/// ranges of a shard's rows are contiguous per batch, so shard-local kernels
/// iterate exactly the slices the single-context kernels iterate — the
/// precondition for the bitwise-identity contract.
struct ShardPlan {
  int64_t num_entities = 0;
  /// S+1 ascending cut points; boundaries[0] == 0, boundaries[S] == N.
  std::vector<int64_t> boundaries;

  int num_shards() const { return static_cast<int>(boundaries.size()) - 1; }
  int64_t begin(int s) const { return boundaries[s]; }
  int64_t end(int s) const { return boundaries[s + 1]; }
  int64_t size(int s) const { return end(s) - begin(s); }
  bool defined() const { return num_entities > 0 && boundaries.size() >= 2; }

  /// Shard owning `entity` (0 <= entity < num_entities).
  int ShardOf(int64_t entity) const;
};

/// Splits N entities into `num_shards` near-equal contiguous shards (sizes
/// differ by at most one; the first N % S shards take the extra row).
/// num_shards is clamped to [1, N].
ShardPlan MakeContiguousPlan(int64_t num_entities, int num_shards);

/// Contiguous plan whose cut points greedily minimize the static adjacency
/// weight crossing shard boundaries. For each interior cut the total |w| of
/// entries (i,j) with i and j on opposite sides is computed in O(nnz + N)
/// via a difference array, then each cut slides inside a ±N/(4S) window
/// around its balanced position to the cheapest crossing. `adj` is the
/// static [N,N] adjacency (A, or A+B summed by the caller); the dynamic
/// attention pattern is unknowable at plan time and handled by halo
/// exchange instead.
ShardPlan MakeEdgeCutPlan(const Tensor& adj, int num_shards);

}  // namespace shard
}  // namespace enhancenet

#endif  // ENHANCENET_SHARD_SHARD_PLAN_H_
