#include "shard/shard_plan.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace enhancenet {
namespace shard {

int ShardPlan::ShardOf(int64_t entity) const {
  ENHANCENET_CHECK_GE(entity, 0);
  ENHANCENET_CHECK_LT(entity, num_entities);
  const auto it =
      std::upper_bound(boundaries.begin(), boundaries.end(), entity);
  return static_cast<int>(it - boundaries.begin()) - 1;
}

ShardPlan MakeContiguousPlan(int64_t num_entities, int num_shards) {
  ENHANCENET_CHECK_GT(num_entities, 0);
  const int64_t s =
      std::clamp<int64_t>(num_shards, 1, num_entities);
  ShardPlan plan;
  plan.num_entities = num_entities;
  plan.boundaries.resize(s + 1);
  const int64_t base = num_entities / s;
  const int64_t extra = num_entities % s;
  plan.boundaries[0] = 0;
  for (int64_t i = 0; i < s; ++i) {
    plan.boundaries[i + 1] = plan.boundaries[i] + base + (i < extra ? 1 : 0);
  }
  return plan;
}

ShardPlan MakeEdgeCutPlan(const Tensor& adj, int num_shards) {
  ENHANCENET_CHECK_EQ(adj.dim(), 2);
  const int64_t n = adj.size(0);
  ENHANCENET_CHECK_EQ(adj.size(1), n);
  ShardPlan plan = MakeContiguousPlan(n, num_shards);
  const int s = plan.num_shards();
  if (s <= 1) return plan;

  // cut[c] = Σ |adj[i,j]| over entries crossing the boundary between rows
  // c-1 and c (i < c <= j or j < c <= i). Each entry (i,j), a = min, b = max,
  // crosses every cut in (a, b]; accumulate with a difference array.
  std::vector<double> diff(n + 2, 0.0);
  const float* pa = adj.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const float w = pa[i * n + j];
      if (w == 0.0f || i == j) continue;
      const int64_t a = std::min(i, j);
      const int64_t b = std::max(i, j);
      diff[a + 1] += std::fabs(w);
      diff[b + 1] -= std::fabs(w);
    }
  }
  std::vector<double> cut(n + 1, 0.0);
  for (int64_t c = 1; c <= n; ++c) cut[c] = cut[c - 1] + diff[c];

  // Slide each balanced cut point within a window to its cheapest position,
  // left to right, keeping every shard non-empty.
  const int64_t window = std::max<int64_t>(1, n / (4 * s));
  for (int i = 1; i < s; ++i) {
    const int64_t ideal = plan.boundaries[i];
    const int64_t lo =
        std::max(plan.boundaries[i - 1] + 1, ideal - window);
    // Later cuts have not moved yet, so cap by the next balanced position.
    const int64_t hi = std::min(plan.boundaries[i + 1] - 1, ideal + window);
    int64_t best = ideal;
    for (int64_t c = lo; c <= hi; ++c) {
      if (cut[c] < cut[best] ||
          (cut[c] == cut[best] &&
           std::llabs(c - ideal) < std::llabs(best - ideal))) {
        best = c;
      }
    }
    plan.boundaries[i] = best;
  }
  return plan;
}

}  // namespace shard
}  // namespace enhancenet
