#ifndef ENHANCENET_SHARD_HALO_H_
#define ENHANCENET_SHARD_HALO_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "shard/shard_plan.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace shard {

/// One shard's view of a sparse pattern: which external entities its rows
/// reference, where each entry's operand row lives after the gather, and
/// the gathered halo buffer itself.
struct ShardHalo {
  /// Sorted-unique entity ids this shard reads but does not own (union over
  /// the batch — per-sample patterns may differ, the gather copies every
  /// sample's row for each listed entity).
  std::vector<int32_t> entities;
  /// One slot per entry (CSR order) / per CSC position (transpose order)
  /// owned by this shard: m >= 0 reads x[b, m, :] (an owned or same-slab
  /// entity), m < 0 reads halo row ~m of the gathered buffer.
  autograd::IntArray remap;
  /// Slot base of each batch sample inside `remap` (size B+1): transpose
  /// patterns have non-uniform per-row counts, so the bases are recorded
  /// rather than derived.
  std::vector<int64_t> slot_base;
  /// [B, H, C] gathered external rows, H == entities.size(). Allocated by
  /// Gather from whichever context is bound at the call (the executor binds
  /// the shard's own context, putting the bytes on the shard's allocator).
  Tensor buffer;
};

/// Builds and fills per-shard halos for a sparse top-k pattern
/// (DESIGN.md §12). The exchange is what lets SparseAdjacencyMatMul run
/// shard-local: after Gather, every operand row a shard's entries touch is
/// reachable either in x directly (owned) or in the shard's halo buffer
/// (external), and the per-row accumulation order is untouched — the
/// sharded apply stays bitwise-identical to the single-context kernel.
class HaloExchange {
 public:
  /// Derives each shard's external-entity list and entry remap from the
  /// pattern. `transpose` selects the CSC half (t_row_offsets / t_perm):
  /// there the operand of a position is the *source row* of its entry, not
  /// its column. O(nnz log halo) per build; patterns change every step under
  /// dynamic attention, so the build is paid per apply.
  HaloExchange(const autograd::SparseIndex& index, const ShardPlan& plan,
               bool transpose);

  /// Gathers shard `s`'s external rows from x [B,N,C] into the shard's halo
  /// buffer. Call with the shard's RuntimeContext bound so the buffer lands
  /// on the shard's allocator.
  void GatherShard(int s, const Tensor& x);

  /// Publishes `shard.halo.entities` (gathered entity-rows, summed over
  /// shards) and `shard.halo.bytes` (their storage) to the obs registry for
  /// channels (C) wide rows. Call once per apply, after the gathers.
  void PublishMetrics(int64_t batch, int64_t channels) const;

  const ShardHalo& halo(int s) const { return halos_[s]; }
  ShardHalo& halo(int s) { return halos_[s]; }

  /// Total external entities across shards (the halo traffic in rows).
  int64_t TotalHaloEntities() const;

 private:
  std::vector<ShardHalo> halos_;
};

}  // namespace shard
}  // namespace enhancenet

#endif  // ENHANCENET_SHARD_HALO_H_
