#include "shard/halo.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "runtime/parallel.h"

namespace enhancenet {
namespace shard {

namespace ag = ::enhancenet::autograd;

HaloExchange::HaloExchange(const ag::SparseIndex& index, const ShardPlan& plan,
                           bool transpose) {
  ENHANCENET_CHECK(plan.defined());
  ENHANCENET_CHECK_EQ(plan.num_entities, index.n);
  const int64_t batch = index.batch;
  const int64_t n = index.n;
  const int64_t kk = index.nnz / (batch * n);  // uniform degree
  const int32_t* cols = index.cols.data();
  const int32_t* off = index.row_offsets.data();
  const int32_t* toff = transpose ? index.t_row_offsets.data() : nullptr;
  const int32_t* tperm = transpose ? index.t_perm.data() : nullptr;
  if (transpose) {
    ENHANCENET_CHECK(toff != nullptr && tperm != nullptr)
        << "HaloExchange(transpose) needs the CSC half of the pattern";
  }

  const int num_shards = plan.num_shards();
  halos_.resize(num_shards);
  // Scratch shared across shard builds: entity id -> halo slot (or -1).
  std::vector<int32_t> slot_of(n, -1);

  for (int s = 0; s < num_shards; ++s) {
    ShardHalo& halo = halos_[s];
    const int64_t b0 = plan.begin(s);
    const int64_t b1 = plan.end(s);

    // The operand entity of a position, in the exact order the shard-local
    // kernel will consume positions. CSR: the entry's column. CSC: the
    // entry's source row (the transposed apply gathers by target column).
    const auto operand_of = [&](int64_t pos) -> int64_t {
      return transpose ? (tperm[pos] / kk) % n
                       : static_cast<int64_t>(cols[pos]);
    };
    const int32_t* bounds = transpose ? toff : off;

    // Pass 1: count positions per batch and mark external entities.
    halo.slot_base.assign(batch + 1, 0);
    halo.entities.clear();
    for (int64_t b = 0; b < batch; ++b) {
      const int64_t p0 = bounds[b * n + b0];
      const int64_t p1 = bounds[b * n + b1];
      halo.slot_base[b + 1] = halo.slot_base[b] + (p1 - p0);
      for (int64_t p = p0; p < p1; ++p) {
        const int64_t id = operand_of(p);
        if (id < b0 || id >= b1) {
          if (slot_of[id] < 0) {
            slot_of[id] = 0;  // provisional; numbered after the sort
            halo.entities.push_back(static_cast<int32_t>(id));
          }
        }
      }
    }
    std::sort(halo.entities.begin(), halo.entities.end());
    for (size_t h = 0; h < halo.entities.size(); ++h) {
      slot_of[halo.entities[h]] = static_cast<int32_t>(h);
    }

    // Pass 2: remap every position. Owned operands keep their global entity
    // id (they are read straight from x); external ones point into the halo
    // buffer via the one's-complement encoding.
    halo.remap = ag::AcquireIndexArray(halo.slot_base[batch]);
    int32_t* remap = halo.remap.data();
    int64_t slot = 0;
    for (int64_t b = 0; b < batch; ++b) {
      const int64_t p0 = bounds[b * n + b0];
      const int64_t p1 = bounds[b * n + b1];
      for (int64_t p = p0; p < p1; ++p, ++slot) {
        const int64_t id = operand_of(p);
        remap[slot] = (id >= b0 && id < b1) ? static_cast<int32_t>(id)
                                            : ~slot_of[id];
      }
    }

    for (const int32_t id : halo.entities) slot_of[id] = -1;  // reset scratch
  }
}

void HaloExchange::GatherShard(int s, const Tensor& x) {
  ENHANCENET_CHECK_EQ(x.dim(), 3);
  ShardHalo& halo = halos_[s];
  const int64_t batch = x.size(0);
  const int64_t n = x.size(1);
  const int64_t channels = x.size(2);
  const int64_t h = static_cast<int64_t>(halo.entities.size());
  halo.buffer = Tensor::Uninitialized({batch, h, channels});
  if (h == 0) return;
  const float* px = x.data();
  const int32_t* ids = halo.entities.data();
  float* pb = halo.buffer.data();
  ParallelFor(0, batch * h, std::max<int64_t>(1, 4096 / channels),
              [=](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int64_t b = r / h;
                  const int64_t slot = r % h;
                  std::memcpy(pb + r * channels,
                              px + (b * n + ids[slot]) * channels,
                              channels * sizeof(float));
                }
              });
}

void HaloExchange::PublishMetrics(int64_t batch, int64_t channels) const {
  static obs::Gauge* entities =
      obs::Registry::Global().GetGauge("shard.halo.entities");
  static obs::Gauge* bytes =
      obs::Registry::Global().GetGauge("shard.halo.bytes");
  const int64_t total = TotalHaloEntities();
  entities->Set(static_cast<double>(total));
  bytes->Set(static_cast<double>(total * batch * channels *
                                 static_cast<int64_t>(sizeof(float))));
}

int64_t HaloExchange::TotalHaloEntities() const {
  int64_t total = 0;
  for (const ShardHalo& halo : halos_) {
    total += static_cast<int64_t>(halo.entities.size());
  }
  return total;
}

}  // namespace shard
}  // namespace enhancenet
