#ifndef ENHANCENET_SHARD_EXECUTOR_H_
#define ENHANCENET_SHARD_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "runtime/allocator.h"
#include "runtime/context.h"
#include "shard/halo.h"
#include "shard/shard_plan.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace obs {
class Gauge;
}  // namespace obs

namespace shard {

/// Entity-sharded execution of the per-entity aggregation kernels
/// (DESIGN.md §12): the graph applies — the only cross-entity operations in
/// any model family — are partitioned by a ShardPlan, and each shard's rows
/// run with that shard's own RuntimeContext bound (private allocator,
/// private workspace, a num_threads slice of the owning context's budget).
/// Every temporary a shard stages — its output slab, its halo buffer, its
/// workspace scratch — therefore lives on that shard's allocator, and the
/// whole set retires together when the executor does.
///
/// Bitwise contract: shard kernels iterate exactly the row slices of the
/// single-context kernels with the same per-row operand order (CSR entry
/// order survives the halo remap; the dense inner loop is the AdjacencyMatMul
/// loop verbatim), so any shard count S >= 1 produces bit-identical output
/// to shards=1. Shards execute in plan order; within a shard, rows
/// parallelize under the usual ownership contract.
///
/// Scope: serving/no-grad forwards. The routing sites (graph::ApplyAdjacency
/// and graph::ApplySparseAdjacency) fall back to the single-context kernels
/// whenever a gradient is being recorded.
class EntityShardedExecutor {
 public:
  /// Builds one RuntimeContext per shard. Thread budget: each shard context
  /// gets max(1, T/S) ParallelFor threads, where T is the budget of the
  /// context bound at construction. Fused/topk toggles are copied from it;
  /// shard contexts always run shards=1 (no recursive sharding).
  explicit EntityShardedExecutor(ShardPlan plan);

  const ShardPlan& plan() const { return plan_; }
  int num_shards() const { return plan_.num_shards(); }
  runtime::RuntimeContext& context(int s) { return *contexts_[s]; }

  /// y = adj · x computed shard-by-shard: adj [N,N], x [B,N,C] -> [B,N,C].
  /// Bitwise-identical to autograd::AdjacencyMatMul's forward.
  Tensor ApplyDense(const Tensor& adj, const Tensor& x);

  /// y = A·x (or Aᵀ·x) for a CSR top-k pattern, with halo exchange: each
  /// shard gathers the external rows its entries reference into a local
  /// buffer before applying its block. Bitwise-identical to
  /// autograd::SparseAdjacencyMatMul's forward.
  Tensor ApplySparse(const autograd::SparseIndex& index, const Tensor& values,
                     const Tensor& x, bool transpose);

  /// Shard s's allocator accounting (the anti-vacuousness probe: sharded
  /// applies must put traffic on every shard's allocator).
  AllocatorStats ShardAllocatorStats(int s) const {
    return contexts_[s]->allocator().GetStats();
  }

  /// The executor parked on the calling thread's current RuntimeContext,
  /// built on first use from its ExecConfig::shards (clamped to
  /// num_entities) and rebuilt if the entity count or shard count changed.
  /// Returns null when exec().shards <= 1 or the graph is too small to
  /// split — callers fall back to the single-context kernels. The executor
  /// is stored in the context's extension slot, so its S per-shard
  /// allocators retire as a unit with the owning context.
  static std::shared_ptr<EntityShardedExecutor> ForCurrentContext(
      int64_t num_entities);

 private:
  void PublishShardMetrics() const;

  ShardPlan plan_;
  std::vector<std::unique_ptr<runtime::RuntimeContext>> contexts_;
  /// Cached obs handles: tensor.alloc.shard.<s>.{requests,bytes_outstanding}.
  std::vector<obs::Gauge*> gauge_requests_;
  std::vector<obs::Gauge*> gauge_bytes_;
};

}  // namespace shard
}  // namespace enhancenet

#endif  // ENHANCENET_SHARD_EXECUTOR_H_
