#include "shard/executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"
#include "runtime/parallel.h"

namespace enhancenet {
namespace shard {

namespace ag = ::enhancenet::autograd;

namespace {

/// Grain matching the RowGrain the single-context kernels use: enough rows
/// that a chunk amortizes dispatch, scaled down for wide rows.
int64_t RowGrain(int64_t channels) {
  return std::max<int64_t>(1, 2048 / std::max<int64_t>(1, channels));
}

}  // namespace

EntityShardedExecutor::EntityShardedExecutor(ShardPlan plan)
    : plan_(std::move(plan)) {
  ENHANCENET_CHECK(plan_.defined());
  const int num_shards = plan_.num_shards();
  runtime::RuntimeContext& owner = runtime::RuntimeContext::Current();
  const int total_threads =
      owner.exec().num_threads.load(std::memory_order_relaxed);
  const int slice = std::max(1, total_threads / std::max(1, num_shards));
  contexts_.reserve(num_shards);
  obs::Registry& registry = obs::Registry::Global();
  for (int s = 0; s < num_shards; ++s) {
    runtime::RuntimeContext::Options options;
    options.private_allocator = true;
    options.private_exec = true;
    auto context = std::make_unique<runtime::RuntimeContext>(options);
    context->exec().num_threads.store(slice, std::memory_order_relaxed);
    context->exec().shards.store(1, std::memory_order_relaxed);
    context->exec().fused_kernels.store(
        owner.exec().fused_kernels.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    context->exec().topk.store(
        owner.exec().topk.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    contexts_.push_back(std::move(context));
    const std::string prefix = "tensor.alloc.shard." + std::to_string(s);
    gauge_requests_.push_back(registry.GetGauge(prefix + ".requests"));
    gauge_bytes_.push_back(registry.GetGauge(prefix + ".bytes_outstanding"));
  }
}

void EntityShardedExecutor::PublishShardMetrics() const {
  for (int s = 0; s < plan_.num_shards(); ++s) {
    const AllocatorStats stats = contexts_[s]->allocator().GetStats();
    gauge_requests_[s]->Set(static_cast<double>(stats.requests));
    gauge_bytes_[s]->Set(static_cast<double>(stats.bytes_outstanding));
  }
}

Tensor EntityShardedExecutor::ApplyDense(const Tensor& adj, const Tensor& x) {
  ENHANCENET_CHECK_EQ(adj.dim(), 2);
  ENHANCENET_CHECK_EQ(x.dim(), 3);
  const int64_t batch = x.size(0);
  const int64_t n = x.size(1);
  const int64_t channels = x.size(2);
  ENHANCENET_CHECK_EQ(adj.size(0), n);
  ENHANCENET_CHECK_EQ(adj.size(1), n);
  ENHANCENET_CHECK_EQ(plan_.num_entities, n);

  Tensor out = Tensor::Uninitialized(x.shape());  // owner-context storage
  const float* pa = adj.data();
  const float* px = x.data();
  float* po = out.data();

  for (int s = 0; s < plan_.num_shards(); ++s) {
    runtime::RuntimeContext::Bind bind(*contexts_[s]);
    const int64_t b0 = plan_.begin(s);
    const int64_t sz = plan_.size(s);
    // Stage the shard's output rows in a shard-local slab, then merge. The
    // slab is the shard's execution placement: its bytes live (and pool) on
    // this shard's allocator, not the session's.
    Tensor slab = Tensor::Uninitialized({batch, sz, channels});
    float* ps = slab.data();
    ParallelFor(0, batch * sz, RowGrain(channels),
                [=](int64_t r0, int64_t r1) {
                  for (int64_t rr = r0; rr < r1; ++rr) {
                    const int64_t b = rr / sz;
                    const int64_t i = b0 + rr % sz;
                    float* orow = ps + rr * channels;
                    std::fill(orow, orow + channels, 0.0f);
                    // The AdjacencyMatMul inner loop verbatim: ascending j,
                    // zero-skip — same operands, same order, same bits.
                    const float* arow = pa + i * n;
                    const float* xb = px + b * n * channels;
                    for (int64_t j = 0; j < n; ++j) {
                      const float a = arow[j];
                      if (a == 0.0f) continue;
                      const float* xrow = xb + j * channels;
                      for (int64_t c = 0; c < channels; ++c) {
                        orow[c] += a * xrow[c];
                      }
                    }
                  }
                });
    ParallelFor(0, batch * sz, RowGrain(channels),
                [=](int64_t r0, int64_t r1) {
                  for (int64_t rr = r0; rr < r1; ++rr) {
                    const int64_t b = rr / sz;
                    const int64_t i = b0 + rr % sz;
                    std::memcpy(po + (b * n + i) * channels,
                                ps + rr * channels,
                                channels * sizeof(float));
                  }
                });
  }
  PublishShardMetrics();
  return out;
}

Tensor EntityShardedExecutor::ApplySparse(const ag::SparseIndex& index,
                                          const Tensor& values,
                                          const Tensor& x, bool transpose) {
  ENHANCENET_CHECK_EQ(x.dim(), 3);
  const int64_t batch = x.size(0);
  const int64_t n = x.size(1);
  const int64_t channels = x.size(2);
  ENHANCENET_CHECK_EQ(index.batch, batch);
  ENHANCENET_CHECK_EQ(index.n, n);
  ENHANCENET_CHECK_EQ(plan_.num_entities, n);
  ENHANCENET_CHECK_EQ(values.numel(), index.nnz);
  if (transpose) {
    ENHANCENET_CHECK_EQ(index.t_perm.numel, index.nnz)
        << "sharded transposed apply needs the CSC half of the pattern";
  }

  Tensor out = Tensor::Uninitialized(x.shape());
  HaloExchange exchange(index, plan_, transpose);
  const float* pv = values.data();
  const float* px = x.data();
  float* po = out.data();
  const int32_t* bounds =
      transpose ? index.t_row_offsets.data() : index.row_offsets.data();
  const int32_t* tperm = transpose ? index.t_perm.data() : nullptr;

  for (int s = 0; s < plan_.num_shards(); ++s) {
    runtime::RuntimeContext::Bind bind(*contexts_[s]);
    const int64_t b0 = plan_.begin(s);
    const int64_t sz = plan_.size(s);
    exchange.GatherShard(s, x);  // halo buffer on this shard's allocator
    const ShardHalo& halo = exchange.halo(s);
    const float* ph = halo.buffer.data();
    const int64_t h = static_cast<int64_t>(halo.entities.size());
    const int32_t* remap = halo.remap.data();
    const int64_t* slot_base = halo.slot_base.data();

    Tensor slab = Tensor::Uninitialized({batch, sz, channels});
    float* ps = slab.data();
    ParallelFor(
        0, batch * sz, RowGrain(channels), [=](int64_t r0, int64_t r1) {
          for (int64_t rr = r0; rr < r1; ++rr) {
            const int64_t b = rr / sz;
            const int64_t i = b0 + rr % sz;
            const int64_t r = b * n + i;
            float* orow = ps + rr * channels;
            std::fill(orow, orow + channels, 0.0f);
            const float* xb = px + b * n * channels;
            const float* hb = ph + b * h * channels;
            const int64_t p0 = bounds[r];
            const int64_t p1 = bounds[r + 1];
            // Positions in their single-context order; each operand row is
            // the same float data whether read from x or from the gathered
            // halo copy, so the accumulation is bit-identical.
            int64_t slot = slot_base[b] + (p0 - bounds[b * n + b0]);
            for (int64_t p = p0; p < p1; ++p, ++slot) {
              const int64_t e = transpose ? tperm[p] : p;
              const float a = pv[e];
              const int32_t m = remap[slot];
              const float* xrow = m >= 0 ? xb + m * channels
                                         : hb + static_cast<int64_t>(~m) *
                                                    channels;
              for (int64_t c = 0; c < channels; ++c) {
                orow[c] += a * xrow[c];
              }
            }
          }
        });
    ParallelFor(0, batch * sz, RowGrain(channels),
                [=](int64_t r0, int64_t r1) {
                  for (int64_t rr = r0; rr < r1; ++rr) {
                    const int64_t b = rr / sz;
                    const int64_t i = b0 + rr % sz;
                    std::memcpy(po + (b * n + i) * channels,
                                ps + rr * channels,
                                channels * sizeof(float));
                  }
                });
  }
  exchange.PublishMetrics(batch, channels);
  PublishShardMetrics();
  return out;
}

std::shared_ptr<EntityShardedExecutor>
EntityShardedExecutor::ForCurrentContext(int64_t num_entities) {
  static const char kExtensionTag = 0;
  runtime::RuntimeContext& context = runtime::RuntimeContext::Current();
  const int shards = context.exec().shards.load(std::memory_order_relaxed);
  if (shards <= 1 || num_entities <= 1) return nullptr;
  const int effective =
      static_cast<int>(std::min<int64_t>(shards, num_entities));
  auto existing = std::static_pointer_cast<EntityShardedExecutor>(
      context.GetExtension(&kExtensionTag));
  if (existing != nullptr &&
      existing->plan().num_entities == num_entities &&
      existing->num_shards() == effective) {
    return existing;
  }
  auto executor = std::make_shared<EntityShardedExecutor>(
      MakeContiguousPlan(num_entities, effective));
  context.SetExtension(&kExtensionTag, executor);
  return executor;
}

}  // namespace shard
}  // namespace enhancenet
