#ifndef ENHANCENET_NN_MODULE_H_
#define ENHANCENET_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace enhancenet {
namespace nn {

/// Base class for neural-network building blocks.
///
/// A Module owns trainable parameters (registered with RegisterParameter)
/// and may contain submodules (registered with RegisterSubmodule; the parent
/// owns the submodule object itself — registration is a non-owning link used
/// for recursive traversal). Parameters(), NumParameters(), ZeroGrad() and
/// SetTraining() all recurse through the submodule tree.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// All trainable parameters of this module and its submodules.
  std::vector<autograd::Variable> Parameters() const;

  /// Parameters with hierarchical names ("encoder.cell0.weight").
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// Total number of trainable scalars — the "# Para" column of Tables I/II.
  int64_t NumParameters() const;

  /// Clears gradients of every parameter in the tree.
  void ZeroGrad();

  /// Switches train/eval mode (affects Dropout and scheduled sampling).
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  /// Registers a trainable parameter initialized with `init`; returns the
  /// Variable handle the forward pass should use.
  autograd::Variable RegisterParameter(const std::string& name, Tensor init);

  /// Links a child module for recursive traversal. `submodule` must outlive
  /// this module (it is normally a data member of the subclass).
  void RegisterSubmodule(const std::string& name, Module* submodule);

 private:
  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> submodules_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace enhancenet

#endif  // ENHANCENET_NN_MODULE_H_
