#include "nn/gru.h"

#include "autograd/grad_mode.h"
#include "autograd/ops.h"
#include "common/logging.h"
#include "nn/init.h"

namespace enhancenet {
namespace nn {

namespace ag = ::enhancenet::autograd;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  wx_ = RegisterParameter("wx",
                          GlorotUniform({input_size, 3 * hidden_size}, rng));
  wh_ = RegisterParameter("wh",
                          GlorotUniform({hidden_size, 3 * hidden_size}, rng));
  bias_ = RegisterParameter("bias", Tensor::Zeros({3 * hidden_size}));
}

ag::Variable GruCell::Forward(const ag::Variable& x,
                              const ag::Variable& h) const {
  ENHANCENET_CHECK_EQ(x.size(-1), input_size_);
  ENHANCENET_CHECK_EQ(h.size(-1), hidden_size_);
  const int64_t hs = hidden_size_;

  ag::Variable gx = ag::Add(ag::MatMul(x, wx_), bias_);  // [rows, 3C']
  ag::Variable gh = ag::MatMul(h, wh_);                  // [rows, 3C']

  if (ag::FusedKernels::IsEnabled()) return ag::FusedGruCell(gx, gh, h);

  ag::Variable r = ag::Sigmoid(
      ag::Add(ag::Slice(gx, -1, 0, hs), ag::Slice(gh, -1, 0, hs)));
  ag::Variable u = ag::Sigmoid(
      ag::Add(ag::Slice(gx, -1, hs, hs), ag::Slice(gh, -1, hs, hs)));
  ag::Variable candidate = ag::Tanh(ag::Add(
      ag::Slice(gx, -1, 2 * hs, hs),
      ag::Mul(r, ag::Slice(gh, -1, 2 * hs, hs))));

  // h' = u ⊙ h + (1 - u) ⊙ ĥ   (Equation 6)
  ag::Variable one_minus_u = ag::AddScalar(ag::Neg(u), 1.0f);
  return ag::Add(ag::Mul(u, h), ag::Mul(one_minus_u, candidate));
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  wx_ = RegisterParameter("wx",
                          GlorotUniform({input_size, 4 * hidden_size}, rng));
  wh_ = RegisterParameter("wh",
                          GlorotUniform({hidden_size, 4 * hidden_size}, rng));
  Tensor b = Tensor::Zeros({4 * hidden_size});
  // Forget-gate bias = 1 encourages gradient flow early in training.
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i) b.data()[i] = 1.0f;
  bias_ = RegisterParameter("bias", std::move(b));
}

LstmCell::State LstmCell::Forward(const ag::Variable& x,
                                  const State& state) const {
  ENHANCENET_CHECK_EQ(x.size(-1), input_size_);
  const int64_t hs = hidden_size_;

  ag::Variable gates =
      ag::Add(ag::Add(ag::MatMul(x, wx_), ag::MatMul(state.h, wh_)), bias_);

  if (ag::FusedKernels::IsEnabled()) {
    State next;
    ag::FusedLstmCell(gates, state.c, &next.h, &next.c);
    return next;
  }

  ag::Variable i = ag::Sigmoid(ag::Slice(gates, -1, 0, hs));
  ag::Variable f = ag::Sigmoid(ag::Slice(gates, -1, hs, hs));
  ag::Variable g = ag::Tanh(ag::Slice(gates, -1, 2 * hs, hs));
  ag::Variable o = ag::Sigmoid(ag::Slice(gates, -1, 3 * hs, hs));

  ag::Variable c = ag::Add(ag::Mul(f, state.c), ag::Mul(i, g));
  ag::Variable h = ag::Mul(o, ag::Tanh(c));
  return {h, c};
}

}  // namespace nn
}  // namespace enhancenet
