#ifndef ENHANCENET_NN_GRU_H_
#define ENHANCENET_NN_GRU_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace enhancenet {
namespace nn {

/// Gated Recurrent Unit cell with entity-invariant ("naive", paper Sec. IV-A)
/// filters, following Equations 3–6 of the paper:
///   r = σ(W_r x + U_r h),  u = σ(W_u x + U_u h)
///   ĥ = tanh(W_h x + U_h (r ⊙ h))
///   h' = u ⊙ h + (1-u) ⊙ ĥ
/// The three input filters are fused into one [C, 3C'] matrix (likewise the
/// recurrent filters) so each step costs two GEMMs.
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// x: [rows, input_size], h: [rows, hidden_size] -> new h [rows, hidden].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& h) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  autograd::Variable wx_;  // [C, 3C'] gate order: r, u, candidate
  autograd::Variable wh_;  // [C', 3C']
  autograd::Variable bias_;  // [3C']
};

/// Long Short-Term Memory cell (baseline, Table III). Gate order i, f, g, o;
/// forget-gate bias initialized to 1.
class LstmCell : public Module {
 public:
  struct State {
    autograd::Variable h;
    autograd::Variable c;
  };

  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// x: [rows, input_size] -> new (h, c).
  State Forward(const autograd::Variable& x, const State& state) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  autograd::Variable wx_;    // [C, 4C']
  autograd::Variable wh_;    // [C', 4C']
  autograd::Variable bias_;  // [4C']
};

}  // namespace nn
}  // namespace enhancenet

#endif  // ENHANCENET_NN_GRU_H_
