#ifndef ENHANCENET_NN_INIT_H_
#define ENHANCENET_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace nn {

/// Glorot/Xavier uniform initialization: U(-l, l), l = sqrt(6/(fan_in+fan_out)).
/// For rank-2 [in, out] weights, fans are the two dims; for rank-3 banks
/// [N, in, out] the leading dim is treated as a bank index.
Tensor GlorotUniform(Shape shape, Rng& rng);

/// Uniform U(-scale, scale); used for entity memories (the paper initializes
/// memories from a uniform distribution, Sec. VI-A).
Tensor UniformInit(Shape shape, Rng& rng, float scale = 0.5f);

}  // namespace nn
}  // namespace enhancenet

#endif  // ENHANCENET_NN_INIT_H_
