#ifndef ENHANCENET_NN_LINEAR_H_
#define ENHANCENET_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace enhancenet {
namespace nn {

/// Affine map y = x W + b over the last dimension.
///
/// Accepts inputs of any rank >= 1 whose last dim equals in_features; the
/// output replaces the last dim with out_features.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  autograd::Variable weight_;  // [in, out]
  autograd::Variable bias_;    // [out], undefined when bias=false
};

}  // namespace nn
}  // namespace enhancenet

#endif  // ENHANCENET_NN_LINEAR_H_
