#include "nn/linear.h"

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "nn/init.h"

namespace enhancenet {
namespace nn {

namespace ag = ::enhancenet::autograd;

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  ENHANCENET_CHECK_GT(in_features, 0);
  ENHANCENET_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight", GlorotUniform({in_features, out_features}, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  ENHANCENET_CHECK_EQ(x.size(-1), in_features_)
      << "Linear expects last dim " << in_features_;
  Shape out_shape = x.shape();
  out_shape.back() = out_features_;
  ag::Variable flat = ag::Reshape(x, {-1, in_features_});
  ag::Variable y;
  if (bias_.defined() && ag::FusedKernels::IsEnabled()) {
    // Bias folded into the GEMM write-back (ops::GemmEpilogue::kBias):
    // bitwise-identical to MatMul + Add, one graph node and one full-tensor
    // pass fewer.
    y = ag::MatMulBias(flat, weight_, bias_);
  } else {
    y = ag::MatMul(flat, weight_);
    if (bias_.defined()) y = ag::Add(y, bias_);
  }
  return ag::Reshape(y, std::move(out_shape));
}

}  // namespace nn
}  // namespace enhancenet
