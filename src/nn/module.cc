#include "nn/module.h"

#include "common/logging.h"

namespace enhancenet {
namespace nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, param] : params_) out.push_back(param);
  for (const auto& [name, sub] : submodules_) {
    auto child = sub->Parameters();
    out.insert(out.end(), child.begin(), child.end());
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  for (const auto& [name, param] : params_) out.emplace_back(name, param);
  for (const auto& [name, sub] : submodules_) {
    for (auto& [child_name, param] : sub->NamedParameters()) {
      out.emplace_back(name + "." + child_name, param);
    }
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& param : Parameters()) total += param.numel();
  return total;
}

void Module::ZeroGrad() {
  for (auto& param : Parameters()) param.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, sub] : submodules_) sub->SetTraining(training);
}

autograd::Variable Module::RegisterParameter(const std::string& name,
                                             Tensor init) {
  for (const auto& [existing, param] : params_) {
    ENHANCENET_CHECK(existing != name) << "duplicate parameter " << name;
  }
  autograd::Variable v = autograd::Variable::Leaf(std::move(init),
                                                  /*requires_grad=*/true);
  params_.emplace_back(name, v);
  return v;
}

void Module::RegisterSubmodule(const std::string& name, Module* submodule) {
  ENHANCENET_CHECK(submodule != nullptr);
  ENHANCENET_CHECK(submodule != this) << "module cannot contain itself";
  for (const auto& [existing, sub] : submodules_) {
    ENHANCENET_CHECK(existing != name) << "duplicate submodule " << name;
  }
  submodules_.emplace_back(name, submodule);
}

}  // namespace nn
}  // namespace enhancenet
