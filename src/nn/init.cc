#include "nn/init.h"

#include <cmath>

#include "common/logging.h"

namespace enhancenet {
namespace nn {

Tensor GlorotUniform(Shape shape, Rng& rng) {
  ENHANCENET_CHECK_GE(shape.size(), 1u);
  int64_t fan_in = 1;
  int64_t fan_out = 1;
  if (shape.size() == 1) {
    fan_in = fan_out = shape[0];
  } else {
    // Trailing two dims are [in, out]; leading dims are bank indices.
    fan_in = shape[shape.size() - 2];
    fan_out = shape[shape.size() - 1];
  }
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandUniform(std::move(shape), rng, -limit, limit);
}

Tensor UniformInit(Shape shape, Rng& rng, float scale) {
  return Tensor::RandUniform(std::move(shape), rng, -scale, scale);
}

}  // namespace nn
}  // namespace enhancenet
