#ifndef ENHANCENET_OPTIM_OPTIMIZER_H_
#define ENHANCENET_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace enhancenet {
namespace optim {

/// Base class for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params, float lr);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients. Parameters without a
  /// gradient (e.g. unused branches) are skipped.
  virtual void Step() = 0;

  /// Clears gradients of all managed parameters.
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
  float lr_;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;  // lazily sized to match params
};

/// Adam (Kingma & Ba, 2015) with bias correction, as used by the paper's
/// training setup.
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. Standard recipe for RNN training stability.
float ClipGradNorm(const std::vector<autograd::Variable>& params,
                   float max_norm);

/// The paper's LR schedule (Sec. VI-A, RNN models): the initial rate decays
/// by 10x every `period` epochs starting at epoch `first_decay_epoch`.
/// Epochs are 0-based: with defaults, epochs 0..19 run at `initial_lr`,
/// 20..29 at initial/10, 30..39 at initial/100, etc.
class StepDecaySchedule {
 public:
  StepDecaySchedule(float initial_lr, int first_decay_epoch = 20,
                    int period = 10, float factor = 0.1f);

  /// Learning rate for a 0-based epoch index.
  float LrForEpoch(int epoch) const;

 private:
  float initial_lr_;
  int first_decay_epoch_;
  int period_;
  float factor_;
};

}  // namespace optim
}  // namespace enhancenet

#endif  // ENHANCENET_OPTIM_OPTIMIZER_H_
