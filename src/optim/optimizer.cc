#include "optim/optimizer.h"

#include <cmath>

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "runtime/parallel.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace optim {

namespace {

/// Range-update helpers shared by the fused (ParallelFor) and scalar-loop
/// optimizer paths. Each element's update depends only on index j, so the
/// result is invariant to how [0, n) is partitioned — and because both paths
/// execute this exact code, fused and scalar steps are bitwise identical.
constexpr int64_t kStepGrain = 16 * 1024;

void SgdPlainRange(float* p, const float* g, float lr, int64_t lo,
                   int64_t hi) {
  for (int64_t j = lo; j < hi; ++j) p[j] -= lr * g[j];
}

void SgdMomentumRange(float* p, float* vel, const float* g, float lr,
                      float momentum, int64_t lo, int64_t hi) {
  // v = momentum * v + g;  p -= lr * v
  for (int64_t j = lo; j < hi; ++j) {
    vel[j] = momentum * vel[j] + g[j];
    p[j] -= lr * vel[j];
  }
}

void AdamRange(float* p, float* m, float* v, const float* g, float lr,
               float beta1, float beta2, float eps, float weight_decay,
               float bc1, float bc2, int64_t lo, int64_t hi) {
  for (int64_t j = lo; j < hi; ++j) {
    float gj = g[j];
    if (weight_decay > 0.0f) gj += weight_decay * p[j];
    m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
    v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
    const float m_hat = m[j] / bc1;
    const float v_hat = v[j] / bc2;
    p[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

/// Runs `range(lo, hi)` over [0, n): one ParallelFor sweep when the fused
/// kernels are enabled, a single serial call otherwise.
template <typename RangeFn>
void RunStep(int64_t n, RangeFn&& range) {
  if (autograd::FusedKernels::IsEnabled()) {
    ParallelFor(0, n, kStepGrain, range);
  } else {
    range(0, n);
  }
}

}  // namespace

Optimizer::Optimizer(std::vector<autograd::Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  ENHANCENET_CHECK_GT(lr, 0.0f);
  for (const auto& p : params_) {
    ENHANCENET_CHECK(p.defined() && p.requires_grad())
        << "optimizer given a non-trainable variable";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  ENHANCENET_CHECK_GE(momentum, 0.0f);
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.shape());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    // Parameters that never saw a gradient this step (unused branches) are
    // skipped entirely: no velocity decay, no parameter touch, no pass over
    // the elements — identical in the fused and scalar paths.
    if (!p.has_grad()) continue;
    const float* pg = p.grad().data();
    float* pp = p.mutable_data().data();
    const int64_t n = p.numel();
    if (momentum_ > 0.0f) {
      float* pv = velocity_[i].data();
      const float lr = lr_;
      const float momentum = momentum_;
      RunStep(n, [=](int64_t lo, int64_t hi) {
        SgdMomentumRange(pp, pv, pg, lr, momentum, lo, hi);
      });
    } else {
      const float lr = lr_;
      RunStep(n, [=](int64_t lo, int64_t hi) {
        SgdPlainRange(pp, pg, lr, lo, hi);
      });
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.shape());
    v_.emplace_back(p.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    // Gradient-free parameters skip the whole element pass: t_ still
    // advances (global step count), but m/v stay untouched, matching the
    // semantics of per-parameter "skip if unused".
    if (!p.has_grad()) continue;
    const float* pg = p.grad().data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pp = p.mutable_data().data();
    const int64_t n = p.numel();
    const float lr = lr_;
    const float beta1 = beta1_;
    const float beta2 = beta2_;
    const float eps = eps_;
    const float weight_decay = weight_decay_;
    RunStep(n, [=](int64_t lo, int64_t hi) {
      AdamRange(pp, pm, pv, pg, lr, beta1, beta2, eps, weight_decay, bc1, bc2,
                lo, hi);
    });
  }
}

float ClipGradNorm(const std::vector<autograd::Variable>& params,
                   float max_norm) {
  ENHANCENET_CHECK_GT(max_norm, 0.0f);
  double sq = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const float* pg = p.grad().data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) sq += static_cast<double>(pg[j]) * pg[j];
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (auto p : params) {  // copy of the handle; shares the node
      if (!p.has_grad()) continue;
      float* pg = p.mutable_grad().data();
      const int64_t n = p.numel();
      for (int64_t j = 0; j < n; ++j) pg[j] *= scale;
    }
  }
  return norm;
}

StepDecaySchedule::StepDecaySchedule(float initial_lr, int first_decay_epoch,
                                     int period, float factor)
    : initial_lr_(initial_lr),
      first_decay_epoch_(first_decay_epoch),
      period_(period),
      factor_(factor) {
  ENHANCENET_CHECK_GT(period, 0);
  ENHANCENET_CHECK_GT(factor, 0.0f);
}

float StepDecaySchedule::LrForEpoch(int epoch) const {
  if (epoch < first_decay_epoch_) return initial_lr_;
  const int decays = 1 + (epoch - first_decay_epoch_) / period_;
  return initial_lr_ * std::pow(factor_, static_cast<float>(decays));
}

}  // namespace optim
}  // namespace enhancenet
