#include "optim/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace optim {

Optimizer::Optimizer(std::vector<autograd::Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  ENHANCENET_CHECK_GT(lr, 0.0f);
  for (const auto& p : params_) {
    ENHANCENET_CHECK(p.defined() && p.requires_grad())
        << "optimizer given a non-trainable variable";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  ENHANCENET_CHECK_GE(momentum, 0.0f);
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.shape());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    if (momentum_ > 0.0f) {
      Tensor& vel = velocity_[i];
      // v = momentum * v + g;  p -= lr * v
      float* pv = vel.data();
      const float* pg = g.data();
      float* pp = p.mutable_data().data();
      const int64_t n = vel.numel();
      for (int64_t j = 0; j < n; ++j) {
        pv[j] = momentum_ * pv[j] + pg[j];
        pp[j] -= lr_ * pv[j];
      }
    } else {
      ops::AxpyInPlace(-lr_, g, &p.mutable_data());
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.shape());
    v_.emplace_back(p.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const float* pg = p.grad().data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pp = p.mutable_data().data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      float g = pg[j];
      if (weight_decay_ > 0.0f) g += weight_decay_ * pp[j];
      pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * g;
      pv[j] = beta2_ * pv[j] + (1.0f - beta2_) * g * g;
      const float m_hat = pm[j] / bc1;
      const float v_hat = pv[j] / bc2;
      pp[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

float ClipGradNorm(const std::vector<autograd::Variable>& params,
                   float max_norm) {
  ENHANCENET_CHECK_GT(max_norm, 0.0f);
  double sq = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const float* pg = p.grad().data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) sq += static_cast<double>(pg[j]) * pg[j];
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (auto p : params) {  // copy of the handle; shares the node
      if (!p.has_grad()) continue;
      float* pg = p.mutable_grad().data();
      const int64_t n = p.numel();
      for (int64_t j = 0; j < n; ++j) pg[j] *= scale;
    }
  }
  return norm;
}

StepDecaySchedule::StepDecaySchedule(float initial_lr, int first_decay_epoch,
                                     int period, float factor)
    : initial_lr_(initial_lr),
      first_decay_epoch_(first_decay_epoch),
      period_(period),
      factor_(factor) {
  ENHANCENET_CHECK_GT(period, 0);
  ENHANCENET_CHECK_GT(factor, 0.0f);
}

float StepDecaySchedule::LrForEpoch(int epoch) const {
  if (epoch < first_decay_epoch_) return initial_lr_;
  const int decays = 1 + (epoch - first_decay_epoch_) / period_;
  return initial_lr_ * std::pow(factor_, static_cast<float>(decays));
}

}  // namespace optim
}  // namespace enhancenet
