#ifndef ENHANCENET_OBS_METRICS_H_
#define ENHANCENET_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace enhancenet {
namespace obs {

/// Process-wide metrics: named counters, gauges, and fixed-bucket histograms
/// behind a lock-striped registry.
///
/// Naming scheme (see DESIGN.md §7): dotted lowercase `layer.component.what`
/// with the unit as a suffix where one applies — `train.epoch_ms`,
/// `serve.batcher.batch_occupancy`, `tensor.gemm.calls`. Names are created on
/// first Get*() and live for the process lifetime, so call sites may cache
/// the returned pointer (the intended hot-path pattern: one registry lookup,
/// then lock-free atomic updates per event).
///
/// Cost model: Counter::Add and Gauge::Set are one relaxed atomic RMW/store.
/// Histogram::Observe is a branchless-ish bucket walk plus a handful of
/// relaxed atomics — cheap enough for per-batch (trainer) and per-request
/// (serving) use. Registry lookups take a shard mutex and are meant to be
/// amortized away by pointer caching.

/// Monotonic event count.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (loss, lr, best epoch, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative-style buckets defined by ascending
/// upper bounds (a trailing +inf bucket is implicit), plus count/sum/min/max.
/// All updates are relaxed atomics, so Observe never blocks and concurrent
/// observers never serialize; snapshots taken mid-update may be off by the
/// in-flight observation, which is fine for monitoring.
class Histogram {
 public:
  /// `bounds` must be strictly ascending upper bucket bounds.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value; 0.0 when Count() == 0.
  double Min() const;
  double Max() const;
  double Mean() const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (the last is the overflow
  /// bucket for values above every bound).
  std::vector<int64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Default bucket bounds for wall-latency histograms, in milliseconds
/// (50µs .. 10s, roughly exponential).
const std::vector<double>& LatencyBucketsMs();

/// Default bucket bounds for micro-batch occupancy histograms.
const std::vector<double>& OccupancyBuckets();

/// Default bucket bounds for shadow-mode prediction-delta histograms
/// (mean |primary - shadow| per request): 0 (bitwise identical), then
/// roughly one decade per bucket from float noise to gross divergence.
const std::vector<double>& DeltaBuckets();

/// Deadline-slack buckets (ms) for `serve.batcher.deadline.slack_ms`:
/// slack = budget − realized latency, so the negative bounds size *how
/// late* deadline misses were and the positive ones the headroom left at
/// completion.
const std::vector<double>& SlackBucketsMs();

/// Lock-striped name -> metric map. Metrics are created on first request and
/// never destroyed (stable pointers). The same name may exist independently
/// as a counter, a gauge, and a histogram; exporters keep the kinds apart.
class Registry {
 public:
  /// The process-wide registry every built-in instrumentation site uses.
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// First creation fixes the bucket bounds; subsequent calls with the same
  /// name must pass identical bounds (CHECK-enforced).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Name-sorted snapshots of the live metric handles (for exporters).
  std::map<std::string, Counter*> Counters() const;
  std::map<std::string, Gauge*> Gauges() const;
  std::map<std::string, Histogram*> Histograms() const;

  /// Zeroes every metric's value. Registered names and handed-out pointers
  /// stay valid — intended for test isolation, not production use.
  void ResetForTest();

 private:
  static constexpr int kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  Shard& ShardFor(const std::string& name);

  Shard shards_[kShards];
};

// The tensor-backend profiling switch used to live here; it is now part of
// the execution config on runtime::RuntimeContext (see runtime/context.h),
// keeping this library free of configuration state.

}  // namespace obs
}  // namespace enhancenet

#endif  // ENHANCENET_OBS_METRICS_H_
