#ifndef ENHANCENET_OBS_EXPORT_H_
#define ENHANCENET_OBS_EXPORT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace enhancenet {
namespace obs {

/// Human-readable snapshot, one metric per line:
///   counter tensor.gemm.calls 128
///   gauge train.lr 0.01
///   histogram serve.session.latency_ms count=4 sum=1.9 min=0.4 max=0.6 ...
void ExportText(const Registry& registry, std::ostream& out);

/// Machine-readable snapshot:
/// {
///   "counters": {"name": int, ...},
///   "gauges": {"name": double, ...},
///   "histograms": {"name": {"count": int, "sum": double, "min": double,
///                           "max": double,
///                           "buckets": [{"le": double-or-"inf",
///                                        "count": int}, ...]}, ...}
/// }
/// Keys are name-sorted, so equal registry states serialize identically.
void ExportJson(const Registry& registry, std::ostream& out);

std::string ExportJsonString(const Registry& registry);

/// Writes the JSON snapshot to `path` (crash-safely: temp file + rename,
/// like io::SaveCheckpoint).
Status WriteMetricsJson(const Registry& registry, const std::string& path);

}  // namespace obs
}  // namespace enhancenet

#endif  // ENHANCENET_OBS_EXPORT_H_
