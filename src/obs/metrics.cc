#include "obs/metrics.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/logging.h"

namespace enhancenet {
namespace obs {
namespace {

void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    ENHANCENET_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
}

void Histogram::Observe(double value) {
  // lower_bound, not upper_bound: buckets are `le` (value <= bound), so an
  // observation exactly on a bound belongs to that bound's bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<double>::infinity() ? 0.0 : v;
}

double Histogram::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return v == -std::numeric_limits<double>::infinity() ? 0.0 : v;
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double> buckets = {
      0.05, 0.1, 0.25, 0.5, 1.0,   2.5,   5.0,    10.0,
      25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0};
  return buckets;
}

const std::vector<double>& OccupancyBuckets() {
  static const std::vector<double> buckets = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
  return buckets;
}

const std::vector<double>& DeltaBuckets() {
  // First bound 0.0 so bitwise-identical shadow predictions land in their
  // own bucket; the rest spans float noise (1e-6) up to real divergence.
  static const std::vector<double> buckets = {
      0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
  return buckets;
}

const std::vector<double>& SlackBucketsMs() {
  static const std::vector<double> buckets = {
      -1000.0, -100.0, -10.0, -1.0, 0.0,  0.5,   1.0,   2.5,
      5.0,     10.0,   25.0,  50.0, 100.0, 250.0, 1000.0};
  return buckets;
}

Registry& Registry::Global() {
  // Leaked intentionally: instrumented threads may outlive static teardown.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Shard& Registry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter* Registry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.histograms[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds);
  } else {
    ENHANCENET_CHECK(slot->bounds() == bounds)
        << "histogram '" << name << "' re-registered with different bounds";
  }
  return slot.get();
}

std::map<std::string, Counter*> Registry::Counters() const {
  std::map<std::string, Counter*> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      out.emplace(name, counter.get());
    }
  }
  return out;
}

std::map<std::string, Gauge*> Registry::Gauges() const {
  std::map<std::string, Gauge*> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, gauge] : shard.gauges) {
      out.emplace(name, gauge.get());
    }
  }
  return out;
}

std::map<std::string, Histogram*> Registry::Histograms() const {
  std::map<std::string, Histogram*> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, histogram] : shard.histograms) {
      out.emplace(name, histogram.get());
    }
  }
  return out;
}

void Registry::ResetForTest() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, counter] : shard.counters) counter->Reset();
    for (auto& [name, gauge] : shard.gauges) gauge->Reset();
    for (auto& [name, histogram] : shard.histograms) histogram->Reset();
  }
}

}  // namespace obs
}  // namespace enhancenet
