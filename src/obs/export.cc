#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace enhancenet {
namespace obs {
namespace {

// JSON has no literal for non-finite numbers; quote them so a gauge holding
// inf/nan cannot corrupt the document.
void AppendDouble(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << '"' << (std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf")) << '"';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

void AppendQuoted(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void AppendHistogramJson(std::ostream& out, const Histogram& h) {
  out << "{\"count\": " << h.Count() << ", \"sum\": ";
  AppendDouble(out, h.Sum());
  out << ", \"min\": ";
  AppendDouble(out, h.Min());
  out << ", \"max\": ";
  AppendDouble(out, h.Max());
  out << ", \"buckets\": [";
  const std::vector<double>& bounds = h.bounds();
  const std::vector<int64_t> counts = h.BucketCounts();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"le\": ";
    if (i < bounds.size()) {
      AppendDouble(out, bounds[i]);
    } else {
      out << "\"inf\"";
    }
    out << ", \"count\": " << counts[i] << "}";
  }
  out << "]}";
}

}  // namespace

void ExportText(const Registry& registry, std::ostream& out) {
  for (const auto& [name, counter] : registry.Counters()) {
    out << "counter " << name << " " << counter->Get() << "\n";
  }
  for (const auto& [name, gauge] : registry.Gauges()) {
    out << "gauge " << name << " " << gauge->Get() << "\n";
  }
  for (const auto& [name, histogram] : registry.Histograms()) {
    out << "histogram " << name << " count=" << histogram->Count()
        << " sum=" << histogram->Sum() << " min=" << histogram->Min()
        << " max=" << histogram->Max() << " mean=" << histogram->Mean();
    const std::vector<double>& bounds = histogram->bounds();
    const std::vector<int64_t> counts = histogram->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      out << " le_";
      if (i < bounds.size()) {
        out << bounds[i];
      } else {
        out << "inf";
      }
      out << "=" << counts[i];
    }
    out << "\n";
  }
}

void ExportJson(const Registry& registry, std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry.Counters()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": " << counter->Get();
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry.Gauges()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": ";
    AppendDouble(out, gauge->Get());
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : registry.Histograms()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, name);
    out << ": ";
    AppendHistogramJson(out, *histogram);
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

std::string ExportJsonString(const Registry& registry) {
  std::ostringstream out;
  ExportJson(registry, out);
  return out.str();
}

Status WriteMetricsJson(const Registry& registry, const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::trunc);
    if (!file.is_open()) {
      return Status::NotFound("cannot open " + tmp_path + " for writing");
    }
    ExportJson(registry, file);
    file.flush();
    if (!file.good()) {
      file.close();
      std::remove(tmp_path.c_str());
      return Status::Internal("write to " + tmp_path + " failed");
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("rename " + tmp_path + " -> " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace enhancenet
