#include "obs/trace.h"

#include <utility>
#include <vector>

namespace enhancenet {
namespace obs {
namespace {

// Live span names of the calling thread, outermost first.
thread_local std::vector<const char*> tls_span_stack;

std::string JoinedPath() {
  std::string path;
  for (const char* name : tls_span_stack) {
    if (!path.empty()) path += '.';
    path += name;
  }
  return path;
}

}  // namespace

TraceSpan::TraceSpan(const char* name, Registry* registry)
    : registry_(registry) {
  tls_span_stack.push_back(name);
}

TraceSpan::~TraceSpan() {
  const double elapsed_ms = watch_.ElapsedMillis();
  registry_->GetHistogram("trace." + JoinedPath(), LatencyBucketsMs())
      ->Observe(elapsed_ms);
  tls_span_stack.pop_back();
}

int TraceSpan::Depth() { return static_cast<int>(tls_span_stack.size()); }

std::string TraceSpan::CurrentPath() { return JoinedPath(); }

std::vector<const char*> TraceSpan::SnapshotStack() { return tls_span_stack; }

ScopedTraceStack::ScopedTraceStack(std::vector<const char*> stack) {
  saved_.swap(tls_span_stack);
  tls_span_stack = std::move(stack);
}

ScopedTraceStack::~ScopedTraceStack() { tls_span_stack.swap(saved_); }

}  // namespace obs
}  // namespace enhancenet
