#ifndef ENHANCENET_OBS_TRACE_H_
#define ENHANCENET_OBS_TRACE_H_

#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace enhancenet {
namespace obs {

/// RAII timer: records the scope's wall time (milliseconds) into a histogram
/// on destruction. The histogram pointer is typically a cached registry
/// lookup, so the per-scope cost is one clock read on entry and one clock
/// read plus a histogram Observe on exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(watch_.ElapsedMillis());
  }

  /// Elapsed time so far, without stopping the timer.
  double ElapsedMillis() const { return watch_.ElapsedMillis(); }

  /// Detaches the timer: nothing is recorded at destruction.
  void Cancel() { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

/// A nested trace span. Spans form a per-thread stack: a span opened while
/// another is live on the same thread becomes its child, and its wall time
/// is recorded under the dotted concatenation of every live span name —
///
///   TraceSpan epoch("train.epoch");
///   ...
///     TraceSpan batch("batch");   // records "trace.train.epoch.batch"
///
/// so the exporter output reads as a flattened call tree with per-node
/// latency histograms. Span names should be compile-time literals; the
/// stack stores the pointers, not copies.
///
/// Thread-local: spans on different threads never interleave, and a span
/// must be destroyed on the thread that created it (guaranteed by RAII
/// scoping).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     Registry* registry = &Registry::Global());

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan();

  /// Nesting depth of the calling thread's live spans (0 when none).
  static int Depth();

  /// Dotted path of the calling thread's live spans ("" when none).
  static std::string CurrentPath();

  /// Copy of the calling thread's live span stack, outermost first. Pass it
  /// to ScopedTraceStack on another thread to continue the trace tree there
  /// (the names are compile-time literals, so the copy stays valid).
  static std::vector<const char*> SnapshotStack();

 private:
  Registry* registry_;
  Stopwatch watch_;
};

/// RAII scope that installs a span-stack snapshot as the calling thread's
/// trace stack, restoring the previous stack on destruction. ParallelFor
/// wraps every chunk in one so spans opened inside a parallel region nest
/// under the caller's spans instead of silently starting a fresh tree on
/// each pool worker. Spans opened inside the scope must close inside it.
class ScopedTraceStack {
 public:
  explicit ScopedTraceStack(std::vector<const char*> stack);
  ~ScopedTraceStack();

  ScopedTraceStack(const ScopedTraceStack&) = delete;
  ScopedTraceStack& operator=(const ScopedTraceStack&) = delete;

 private:
  std::vector<const char*> saved_;
};

}  // namespace obs
}  // namespace enhancenet

#endif  // ENHANCENET_OBS_TRACE_H_
