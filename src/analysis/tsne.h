#ifndef ENHANCENET_ANALYSIS_TSNE_H_
#define ENHANCENET_ANALYSIS_TSNE_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace analysis {

/// Parameters of the exact t-SNE embedding (van der Maaten & Hinton, 2008),
/// used to visualize the learned entity memories (Figure 10).
struct TsneConfig {
  int64_t out_dims = 2;
  double perplexity = 10.0;
  int iterations = 500;
  double learning_rate = 100.0;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  int momentum_switch_iter = 120;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 100;
  uint64_t seed = 1;
};

/// Embeds `points` [N, D] into [N, out_dims] with exact (O(N²)) t-SNE.
/// Deterministic given the config seed. N must exceed 3·perplexity.
Tensor Tsne(const Tensor& points, const TsneConfig& config = TsneConfig());

}  // namespace analysis
}  // namespace enhancenet

#endif  // ENHANCENET_ANALYSIS_TSNE_H_
