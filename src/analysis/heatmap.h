#ifndef ENHANCENET_ANALYSIS_HEATMAP_H_
#define ENHANCENET_ANALYSIS_HEATMAP_H_

#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace analysis {

/// Renders a [R, C] matrix as an ASCII heatmap (one glyph per cell, darker
/// glyph = larger value, row-range normalized over the whole matrix). Used
/// by bench_fig12 to show the learned adjacency matrices in the terminal.
std::string RenderAsciiHeatmap(const Tensor& matrix);

/// Writes a matrix (rank 1 or 2) as CSV. Rank-3+ tensors are rejected.
Status WriteCsv(const std::string& path, const Tensor& matrix);

}  // namespace analysis
}  // namespace enhancenet

#endif  // ENHANCENET_ANALYSIS_HEATMAP_H_
