#ifndef ENHANCENET_ANALYSIS_KMEANS_H_
#define ENHANCENET_ANALYSIS_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace analysis {

/// Result of a k-means clustering run.
struct KmeansResult {
  Tensor centroids;              // [K, D]
  std::vector<int> assignments;  // size N, values in [0, K)
  double inertia = 0.0;          // sum of squared distances to centroids
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. Used to group entity memories
/// into the colour clusters of Figures 10–11. Deterministic given `rng`.
KmeansResult Kmeans(const Tensor& points, int k, Rng& rng,
                    int max_iterations = 100);

}  // namespace analysis
}  // namespace enhancenet

#endif  // ENHANCENET_ANALYSIS_KMEANS_H_
