#include "analysis/tsne.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace enhancenet {
namespace analysis {
namespace {

/// Squared Euclidean distances between all row pairs of [N, D].
std::vector<double> PairwiseSquaredDistances(const Tensor& points) {
  const int64_t n = points.size(0);
  const int64_t d = points.size(1);
  const float* p = points.data();
  std::vector<double> dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double sq = 0.0;
      for (int64_t k = 0; k < d; ++k) {
        const double diff = static_cast<double>(p[i * d + k]) - p[j * d + k];
        sq += diff * diff;
      }
      dist[static_cast<size_t>(i * n + j)] = sq;
      dist[static_cast<size_t>(j * n + i)] = sq;
    }
  }
  return dist;
}

}  // namespace

Tensor Tsne(const Tensor& points, const TsneConfig& config) {
  ENHANCENET_CHECK_EQ(points.dim(), 2);
  const int64_t n = points.size(0);
  ENHANCENET_CHECK_GT(static_cast<double>(n), 3.0 * config.perplexity)
      << "need n > 3*perplexity";
  const int64_t out_dims = config.out_dims;

  const std::vector<double> dist = PairwiseSquaredDistances(points);

  // Per-point precision (beta) via binary search for the target perplexity.
  const double target_entropy = std::log(config.perplexity);
  std::vector<double> p_cond(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double beta = 1.0;
    double beta_lo = 0.0;
    double beta_hi = std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0;
      double weighted = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double pij =
            std::exp(-beta * dist[static_cast<size_t>(i * n + j)]);
        p_cond[static_cast<size_t>(i * n + j)] = pij;
        sum += pij;
        weighted += pij * dist[static_cast<size_t>(i * n + j)];
      }
      sum = std::max(sum, 1e-300);
      const double entropy = std::log(sum) + beta * weighted / sum;
      const double diff = entropy - target_entropy;
      if (std::fabs(diff) < 1e-5) break;
      if (diff > 0) {
        beta_lo = beta;
        beta = std::isinf(beta_hi) ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta + beta_lo) / 2.0;
      }
    }
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (j != i) sum += p_cond[static_cast<size_t>(i * n + j)];
    }
    sum = std::max(sum, 1e-300);
    for (int64_t j = 0; j < n; ++j) {
      if (j != i) p_cond[static_cast<size_t>(i * n + j)] /= sum;
    }
  }

  // Symmetrized joint probabilities with early exaggeration.
  std::vector<double> p_joint(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      p_joint[static_cast<size_t>(i * n + j)] =
          std::max((p_cond[static_cast<size_t>(i * n + j)] +
                    p_cond[static_cast<size_t>(j * n + i)]) /
                       (2.0 * static_cast<double>(n)),
                   1e-12);
    }
  }

  // Gradient descent on the low-dimensional embedding.
  Rng rng(config.seed);
  std::vector<double> y(static_cast<size_t>(n * out_dims));
  for (auto& v : y) v = rng.Normal(0.0, 1e-2);
  std::vector<double> velocity(y.size(), 0.0);
  std::vector<double> gains(y.size(), 1.0);
  std::vector<double> q(static_cast<size_t>(n * n), 0.0);
  std::vector<double> grad(y.size(), 0.0);

  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    // Student-t affinities in the embedding.
    double q_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double sq = 0.0;
        for (int64_t k = 0; k < out_dims; ++k) {
          const double diff = y[static_cast<size_t>(i * out_dims + k)] -
                              y[static_cast<size_t>(j * out_dims + k)];
          sq += diff * diff;
        }
        const double affinity = 1.0 / (1.0 + sq);
        q[static_cast<size_t>(i * n + j)] = affinity;
        q[static_cast<size_t>(j * n + i)] = affinity;
        q_sum += 2.0 * affinity;
      }
    }
    q_sum = std::max(q_sum, 1e-300);

    std::fill(grad.begin(), grad.end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double affinity = q[static_cast<size_t>(i * n + j)];
        const double qij = std::max(affinity / q_sum, 1e-12);
        const double mult =
            4.0 *
            (exaggeration * p_joint[static_cast<size_t>(i * n + j)] - qij) *
            affinity;
        for (int64_t k = 0; k < out_dims; ++k) {
          grad[static_cast<size_t>(i * out_dims + k)] +=
              mult * (y[static_cast<size_t>(i * out_dims + k)] -
                      y[static_cast<size_t>(j * out_dims + k)]);
        }
      }
    }

    const double momentum = iter < config.momentum_switch_iter
                                ? config.momentum_initial
                                : config.momentum_final;
    for (size_t idx = 0; idx < y.size(); ++idx) {
      // Adaptive gains as in the reference implementation.
      const bool same_sign = (grad[idx] > 0.0) == (velocity[idx] > 0.0);
      gains[idx] = same_sign ? std::max(gains[idx] * 0.8, 0.01)
                             : gains[idx] + 0.2;
      velocity[idx] = momentum * velocity[idx] -
                      config.learning_rate * gains[idx] * grad[idx];
      y[idx] += velocity[idx];
    }
    // Re-center.
    for (int64_t k = 0; k < out_dims; ++k) {
      double mean = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        mean += y[static_cast<size_t>(i * out_dims + k)];
      }
      mean /= static_cast<double>(n);
      for (int64_t i = 0; i < n; ++i) {
        y[static_cast<size_t>(i * out_dims + k)] -= mean;
      }
    }
  }

  Tensor out({n, out_dims});
  for (int64_t i = 0; i < n * out_dims; ++i) {
    out.data()[i] = static_cast<float>(y[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace analysis
}  // namespace enhancenet
