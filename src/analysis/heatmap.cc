#include "analysis/heatmap.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace enhancenet {
namespace analysis {

std::string RenderAsciiHeatmap(const Tensor& matrix) {
  ENHANCENET_CHECK_EQ(matrix.dim(), 2);
  const int64_t rows = matrix.size(0);
  const int64_t cols = matrix.size(1);
  const float* p = matrix.data();
  float lo = p[0];
  float hi = p[0];
  for (int64_t i = 0; i < matrix.numel(); ++i) {
    lo = std::min(lo, p[i]);
    hi = std::max(hi, p[i]);
  }
  const float range = std::max(hi - lo, 1e-12f);
  static constexpr char kGlyphs[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kGlyphs)) - 2;

  std::ostringstream out;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const float v = (p[r * cols + c] - lo) / range;
      const int level = std::clamp(
          static_cast<int>(v * static_cast<float>(kLevels)), 0, kLevels);
      out << kGlyphs[level];
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsv(const std::string& path, const Tensor& matrix) {
  if (matrix.dim() > 2) {
    return Status::InvalidArgument("WriteCsv expects rank <= 2");
  }
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  const int64_t rows = matrix.dim() == 2 ? matrix.size(0) : 1;
  const int64_t cols =
      matrix.dim() == 2 ? matrix.size(1)
                        : (matrix.dim() == 1 ? matrix.size(0) : 1);
  const float* p = matrix.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) file << ',';
      file << p[r * cols + c];
    }
    file << '\n';
  }
  if (!file.good()) {
    return Status::Internal("write to " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace analysis
}  // namespace enhancenet
