#include "analysis/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace enhancenet {
namespace analysis {
namespace {

double SquaredDistance(const float* a, const float* b, int64_t d) {
  double sq = 0.0;
  for (int64_t k = 0; k < d; ++k) {
    const double diff = static_cast<double>(a[k]) - b[k];
    sq += diff * diff;
  }
  return sq;
}

}  // namespace

KmeansResult Kmeans(const Tensor& points, int k, Rng& rng,
                    int max_iterations) {
  ENHANCENET_CHECK_EQ(points.dim(), 2);
  const int64_t n = points.size(0);
  const int64_t d = points.size(1);
  ENHANCENET_CHECK(k >= 1 && k <= n) << "k=" << k << " n=" << n;
  const float* p = points.data();

  // k-means++ seeding.
  Tensor centroids({k, d});
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::infinity());
  {
    const int64_t first = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(n)));
    std::copy(p + first * d, p + (first + 1) * d, centroids.data());
    for (int c = 1; c < k; ++c) {
      double total = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const double sq =
            SquaredDistance(p + i * d, centroids.data() + (c - 1) * d, d);
        min_dist[static_cast<size_t>(i)] =
            std::min(min_dist[static_cast<size_t>(i)], sq);
        total += min_dist[static_cast<size_t>(i)];
      }
      double r = rng.Uniform() * total;
      int64_t chosen = n - 1;
      for (int64_t i = 0; i < n; ++i) {
        r -= min_dist[static_cast<size_t>(i)];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
      std::copy(p + chosen * d, p + (chosen + 1) * d,
                centroids.data() + c * d);
    }
  }

  KmeansResult result;
  result.assignments.assign(static_cast<size_t>(n), 0);
  float* c = centroids.data();
  std::vector<int64_t> counts(static_cast<size_t>(k), 0);
  std::vector<double> sums(static_cast<size_t>(k * d), 0.0);

  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    result.inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_cluster = 0;
      for (int cluster = 0; cluster < k; ++cluster) {
        const double sq = SquaredDistance(p + i * d, c + cluster * d, d);
        if (sq < best) {
          best = sq;
          best_cluster = cluster;
        }
      }
      if (result.assignments[static_cast<size_t>(i)] != best_cluster) {
        result.assignments[static_cast<size_t>(i)] = best_cluster;
        changed = true;
      }
      result.inertia += best;
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    std::fill(counts.begin(), counts.end(), 0);
    std::fill(sums.begin(), sums.end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      const int cluster = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(cluster)];
      for (int64_t dim = 0; dim < d; ++dim) {
        sums[static_cast<size_t>(cluster * d + dim)] += p[i * d + dim];
      }
    }
    for (int cluster = 0; cluster < k; ++cluster) {
      if (counts[static_cast<size_t>(cluster)] == 0) continue;  // keep old
      for (int64_t dim = 0; dim < d; ++dim) {
        c[cluster * d + dim] = static_cast<float>(
            sums[static_cast<size_t>(cluster * d + dim)] /
            static_cast<double>(counts[static_cast<size_t>(cluster)]));
      }
    }
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace analysis
}  // namespace enhancenet
