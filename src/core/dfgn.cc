#include "core/dfgn.h"

#include <cmath>

#include "common/logging.h"

namespace enhancenet {
namespace core {

namespace ag = ::enhancenet::autograd;

Dfgn::Dfgn(int64_t memory_dim, int64_t hidden1, int64_t hidden2,
           int64_t output_size, Rng& rng)
    : memory_dim_(memory_dim),
      output_size_(output_size),
      fc1_(memory_dim, hidden1, rng, /*bias=*/false),
      fc2_(hidden1, hidden2, rng, /*bias=*/false),
      head_(hidden2, output_size, rng, /*bias=*/false) {
  RegisterSubmodule("fc1", &fc1_);
  RegisterSubmodule("fc2", &fc2_);
  RegisterSubmodule("head", &head_);
}

ag::Variable Dfgn::Generate(const ag::Variable& memory) const {
  ENHANCENET_CHECK_EQ(memory.size(-1), memory_dim_);
  ag::Variable h = ag::Relu(fc1_.Forward(memory));
  h = ag::Relu(fc2_.Forward(h));
  return head_.Forward(h);
}

void Dfgn::CalibrateGeneratedScale(const ag::Variable& memory, int64_t fan_in,
                                   int64_t fan_out) {
  ENHANCENET_CHECK_GT(fan_in, 0);
  ENHANCENET_CHECK_GT(fan_out, 0);
  const Tensor generated = Generate(memory).data();
  double sum = 0.0;
  double sq = 0.0;
  const float* p = generated.data();
  for (int64_t i = 0; i < generated.numel(); ++i) {
    sum += p[i];
    sq += static_cast<double>(p[i]) * p[i];
  }
  const double n = static_cast<double>(generated.numel());
  const double mean = sum / n;
  const double std = std::sqrt(std::max(sq / n - mean * mean, 1e-30));
  // Glorot-uniform std for a direct [fan_in, fan_out] weight.
  const double target =
      std::sqrt(2.0 / static_cast<double>(fan_in + fan_out));
  const float gain = static_cast<float>(target / std);
  // One parameter owns the output scale: the head weights.
  auto params = head_.Parameters();
  ENHANCENET_CHECK_EQ(params.size(), 1u);
  float* w = params[0].mutable_data().data();
  for (int64_t i = 0; i < params[0].numel(); ++i) w[i] *= gain;
}

}  // namespace core
}  // namespace enhancenet
