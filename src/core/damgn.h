#ifndef ENHANCENET_CORE_DAMGN_H_
#define ENHANCENET_CORE_DAMGN_H_

#include <vector>

#include "autograd/ops.h"
#include "graph/graph_conv.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace enhancenet {
namespace core {

/// Dynamic Adjacency Matrix Generation Network (Sec. V-B, Figure 9).
///
/// Generates, per timestamp, the enhanced adjacency matrix
///
///   A' = λ_A·A + λ_B·B + λ_C·C_t                         (Equation 13)
///
/// where
///  * A is the static, distance-derived adjacency (row-normalized here so
///    all three terms are row-stochastic-like and comparable in scale);
///  * B = softmax(ReLU(B₁·B₂ᵀ)) is a *global adaptive* adjacency learned
///    from two small N×M memory matrices (source / target vertex memories,
///    Equation 15) — static but data-driven;
///  * C_t = softmax-normalized embedded Gaussian θ(x_t)ᵀφ(x_t) attention over
///    the input signal at timestamp t (Equation 16) — dynamic and adaptive.
///
/// The λs are learnable scalars initialized to (1, 0, 0): at initialization
/// the enhanced graph convolution is exactly the base graph convolution, so
/// an enhanced model is at least as expressive as its base (Sec. V-B).
class Damgn : public nn::Module {
 public:
  /// `static_adjacency`: raw [N,N] distance-kernel adjacency (Sec. VI-A);
  /// row-normalized internally. `mem_dim` is M of the paper (default 10),
  /// `embed_dim` the width of the θ/φ embeddings.
  Damgn(Tensor static_adjacency, int64_t num_entities, int64_t in_channels,
        int64_t mem_dim, int64_t embed_dim, Rng& rng);

  /// The learned global adaptive adjacency B, [N, N].
  autograd::Variable AdaptiveB() const;

  /// The time-specific adjacency C for a batch of per-timestamp signals.
  /// x: [B, N, C] -> [B, N, N]; row i is softmax over sources j.
  autograd::Variable DynamicC(const autograd::Variable& x) const;

  /// Top-k sparsified C for the same batch of signals: the k strongest
  /// attention neighbours per row, softmax-normalized over the selection
  /// (DESIGN.md §10). Values are the *unscaled* probabilities — callers
  /// multiply by λ_C.
  graph::SparseAdjacency SparseDynamicC(const autograd::Variable& x,
                                        int64_t k) const;

  /// The static half of A' — λ_A·A + λ_B·B, [N, N].
  autograd::Variable StaticMix() const;

  /// A' = λ_A·A + λ_B·B + λ_C·C_t, broadcast over the batch: [B, N, N].
  autograd::Variable Combined(const autograd::Variable& x) const;

  /// Support set for diffusion-style graph convolution using A' in place of
  /// A (and (A')ᵏ in place of Aᵏ, Sec. V-A). With bidirectional=true the
  /// transposed supports are appended, mirroring the fwd/bwd static set:
  ///   { A', (A')², ..., A'ᵀ, (A'ᵀ)², ... }   each [B, N, N]
  ///
  /// Honors ExecConfig::topk of the bound RuntimeContext: k=0 returns the
  /// historical dense supports (bitwise unchanged); k>0 returns sparse
  /// supports that apply S + λ_C·C_topk hop-by-hop without ever
  /// materializing an [B,N,N] power.
  std::vector<graph::Support> CombinedSupports(const autograd::Variable& x,
                                               int max_hops,
                                               bool bidirectional) const;

  /// The static (row-normalized) A as a constant Variable, [N, N].
  const autograd::Variable& static_adjacency() const { return static_adj_; }

  /// Current values of the mixing coefficients (λ_A, λ_B, λ_C).
  float lambda_a() const { return lambda_a_.data().item(); }
  float lambda_b() const { return lambda_b_.data().item(); }
  float lambda_c() const { return lambda_c_.data().item(); }

  int64_t num_entities() const { return num_entities_; }
  int64_t in_channels() const { return in_channels_; }

 private:
  int64_t num_entities_;
  int64_t in_channels_;
  autograd::Variable static_adj_;  // constant leaf, row-normalized
  autograd::Variable b1_;          // [N, M] source-vertex memory
  autograd::Variable b2_;          // [N, M] target-vertex memory
  nn::Linear theta_;               // C -> embed
  nn::Linear phi_;                 // C -> embed
  autograd::Variable lambda_a_;    // scalar
  autograd::Variable lambda_b_;    // scalar
  autograd::Variable lambda_c_;    // scalar
};

}  // namespace core
}  // namespace enhancenet

#endif  // ENHANCENET_CORE_DAMGN_H_
