#include "core/enhance_gru_cell.h"

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "graph/graph_conv.h"
#include "nn/init.h"

namespace enhancenet {
namespace core {

namespace ag = ::enhancenet::autograd;

EnhanceGruCell::EnhanceGruCell(const GruCellConfig& config,
                               const ag::Variable* memory, Rng& rng)
    : config_(config), memory_(memory) {
  ENHANCENET_CHECK_GT(config.num_entities, 0);
  ENHANCENET_CHECK_GT(config.in_channels, 0);
  ENHANCENET_CHECK_GT(config.hidden, 0);
  const int64_t xh = config.in_channels + config.hidden;
  mixed_in_ = (1 + config.num_supports) * xh;
  const int64_t hidden = config.hidden;

  if (config.use_dfgn) {
    ENHANCENET_CHECK(memory != nullptr) << "DFGN requires an entity memory";
    ENHANCENET_CHECK_EQ(memory->size(0), config.num_entities);
    // One generator emits the r/u filters and the candidate filters jointly:
    // o = mixed_in·2C' + mixed_in·C' = 3·mixed_in·C'.
    dfgn_ = std::make_unique<Dfgn>(memory->size(1), config.dfgn_hidden1,
                                   config.dfgn_hidden2, 3 * mixed_in_ * hidden,
                                   rng);
    dfgn_->CalibrateGeneratedScale(*memory, mixed_in_, hidden);
    RegisterSubmodule("dfgn", dfgn_.get());
  } else {
    w_ru_ = RegisterParameter("w_ru",
                              nn::GlorotUniform({mixed_in_, 2 * hidden}, rng));
    w_c_ =
        RegisterParameter("w_c", nn::GlorotUniform({mixed_in_, hidden}, rng));
  }
  b_ru_ = RegisterParameter("b_ru", Tensor::Zeros({2 * hidden}));
  b_c_ = RegisterParameter("b_c", Tensor::Zeros({hidden}));
}

ag::Variable EnhanceGruCell::Transform(const ag::Variable& mixed,
                                       const ag::Variable& weight,
                                       const ag::Variable& bias,
                                       int64_t in_dim, int64_t out_dim) const {
  const int64_t batch = mixed.size(0);
  const int64_t n = mixed.size(1);
  ENHANCENET_CHECK_EQ(mixed.size(2), in_dim);
  if (!config_.use_dfgn) {
    ag::Variable flat = ag::Reshape(mixed, {batch * n, in_dim});
    ag::Variable out = ag::Add(ag::MatMul(flat, weight), bias);
    return ag::Reshape(out, {batch, n, out_dim});
  }
  // Per-entity filters: [B,N,Cin] -> [N,B,Cin] ·bmm· [N,Cin,Cout].
  ag::Variable xt = ag::Transpose(mixed, 0, 1);
  ag::Variable out = ag::BatchMatMul(xt, weight);  // [N,B,Cout]
  return ag::Add(ag::Transpose(out, 0, 1), bias);
}

EnhanceGruCell::Filters EnhanceGruCell::GenerateFilters() const {
  if (!config_.use_dfgn) return {w_ru_, w_c_};
  const int64_t hidden = config_.hidden;
  ag::Variable generated = dfgn_->Generate(*memory_);  // [N, 3·mixed_in·C']
  Filters filters;
  filters.w_ru = ag::Reshape(
      ag::Slice(generated, -1, 0, 2 * mixed_in_ * hidden),
      {config_.num_entities, mixed_in_, 2 * hidden});
  filters.w_c = ag::Reshape(
      ag::Slice(generated, -1, 2 * mixed_in_ * hidden, mixed_in_ * hidden),
      {config_.num_entities, mixed_in_, hidden});
  return filters;
}

ag::Variable EnhanceGruCell::Forward(
    const ag::Variable& x, const ag::Variable& h,
    const std::vector<graph::Support>& supports, const Filters& filters) const {
  ENHANCENET_CHECK_EQ(static_cast<int64_t>(supports.size()),
                      config_.num_supports);
  ENHANCENET_CHECK_EQ(x.size(2), config_.in_channels);
  ENHANCENET_CHECK_EQ(h.size(2), config_.hidden);
  const int64_t hidden = config_.hidden;
  const ag::Variable& w_ru = filters.w_ru;
  const ag::Variable& w_c = filters.w_c;

  // r, u gates (Equations 3–4, with matmul generalized to graph conv).
  ag::Variable xh = ag::Concat({x, h}, -1);
  ag::Variable mixed_ru =
      graph::MixSupports(xh, supports, /*include_self=*/true);
  ag::Variable gates = Transform(mixed_ru, w_ru, b_ru_, mixed_in_, 2 * hidden);
  ag::Variable u;
  ag::Variable xrh;
  if (ag::FusedKernels::IsEnabled()) {
    // Single-pass r/u gate tail; r is consumed only through r ⊙ h.
    ag::Variable rh;
    ag::FusedGruGates(gates, h, &rh, &u);
    xrh = ag::Concat({x, rh}, -1);  // candidate input (Equation 5)
  } else {
    ag::Variable r = ag::Sigmoid(ag::Slice(gates, -1, 0, hidden));
    u = ag::Sigmoid(ag::Slice(gates, -1, hidden, hidden));

    // Candidate state (Equation 5).
    xrh = ag::Concat({x, ag::Mul(r, h)}, -1);
  }
  ag::Variable mixed_c =
      graph::MixSupports(xrh, supports, /*include_self=*/true);
  ag::Variable candidate =
      ag::Tanh(Transform(mixed_c, w_c, b_c_, mixed_in_, hidden));

  // h' = u ⊙ h + (1-u) ⊙ ĥ (Equation 6). The candidate depends on r through
  // a second graph convolution, so only the final combine fuses here.
  if (ag::FusedKernels::IsEnabled()) return ag::GruCombine(u, h, candidate);
  ag::Variable one_minus_u = ag::AddScalar(ag::Neg(u), 1.0f);
  return ag::Add(ag::Mul(u, h), ag::Mul(one_minus_u, candidate));
}

}  // namespace core
}  // namespace enhancenet
