#ifndef ENHANCENET_CORE_ENTITY_MEMORY_H_
#define ENHANCENET_CORE_ENTITY_MEMORY_H_

#include "nn/init.h"
#include "nn/module.h"

namespace enhancenet {
namespace core {

/// The per-entity learnable memory bank M ∈ R^{N×m} of Sec. IV-C.
///
/// Memories are randomly initialized from a uniform distribution (as in the
/// paper's experimental setup) and trained end-to-end: backpropagation
/// through the DFGN shapes each entity's memory so that it encodes that
/// entity's temporal dynamics. A model owns exactly one bank, shared by
/// every DFGN attached to the model.
class EntityMemoryBank : public nn::Module {
 public:
  EntityMemoryBank(int64_t num_entities, int64_t memory_dim, Rng& rng)
      : num_entities_(num_entities), memory_dim_(memory_dim) {
    memory_ = RegisterParameter(
        "memory", nn::UniformInit({num_entities, memory_dim}, rng));
  }

  /// The [N, m] memory matrix as a trainable Variable.
  const autograd::Variable& memory() const { return memory_; }

  int64_t num_entities() const { return num_entities_; }
  int64_t memory_dim() const { return memory_dim_; }

 private:
  int64_t num_entities_;
  int64_t memory_dim_;
  autograd::Variable memory_;
};

}  // namespace core
}  // namespace enhancenet

#endif  // ENHANCENET_CORE_ENTITY_MEMORY_H_
