#ifndef ENHANCENET_CORE_DFGN_H_
#define ENHANCENET_CORE_DFGN_H_

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace enhancenet {
namespace core {

/// Distinct Filter Generation Network (Sec. IV-C, Figure 6).
///
/// A small feed-forward network, shared by all entities, that maps each
/// entity's memory vector M⁽ⁱ⁾ ∈ R^m to that entity's filters:
///
///   W⁽ⁱ⁾ = DFGN(M⁽ⁱ⁾) = Head(ReLU(FC₂(ReLU(FC₁(M⁽ⁱ⁾)))))
///
/// The trunk is m → n₁ → n₂ with ReLU activations; the head is a linear map
/// n₂ → o where o is the flattened filter size required by the consumer
/// (o = 3C'(C+C') for a GRU unit, o = C'·C·K per TCN layer). Parameter count
/// is m·n₁ + n₁·n₂ + n₂·o (+ the N·m memories owned by EntityMemoryBank),
/// matching the closed-form analysis of Sec. IV-C.
class Dfgn : public nn::Module {
 public:
  /// `output_size` is o above. Bias-free linears keep the count identical to
  /// the paper's formula.
  Dfgn(int64_t memory_dim, int64_t hidden1, int64_t hidden2,
       int64_t output_size, Rng& rng);

  /// memory: [N, m] -> generated filters [N, o].
  autograd::Variable Generate(const autograd::Variable& memory) const;

  /// Rescales the head weights (in place, once, at construction time) so
  /// that the filters generated from the *initial* memories have the same
  /// standard deviation Glorot initialization would give a [fan_in, fan_out]
  /// weight directly. Without this the generated filters start orders of
  /// magnitude too small (three stacked small linears shrink the scale) and
  /// the enhanced models train far slower than their bases.
  void CalibrateGeneratedScale(const autograd::Variable& memory,
                               int64_t fan_in, int64_t fan_out);

  int64_t output_size() const { return output_size_; }

 private:
  int64_t memory_dim_;
  int64_t output_size_;
  nn::Linear fc1_;
  nn::Linear fc2_;
  nn::Linear head_;
};

}  // namespace core
}  // namespace enhancenet

#endif  // ENHANCENET_CORE_DFGN_H_
