#ifndef ENHANCENET_CORE_ENHANCE_GRU_CELL_H_
#define ENHANCENET_CORE_ENHANCE_GRU_CELL_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "core/dfgn.h"
#include "graph/graph_conv.h"
#include "nn/module.h"

namespace enhancenet {
namespace core {

/// Configuration of an EnhanceGruCell.
struct GruCellConfig {
  int64_t num_entities = 0;
  int64_t in_channels = 0;   // C of this cell's per-step input
  int64_t hidden = 0;        // C'
  /// Number of adjacency supports passed to Forward (0 disables graph
  /// convolution; the identity term is always present).
  int64_t num_supports = 0;
  /// Entity-specific filters via DFGN instead of shared filters.
  bool use_dfgn = false;
  int64_t dfgn_hidden1 = 16;  // n₁
  int64_t dfgn_hidden2 = 4;   // n₂
};

/// GRU cell covering the paper's whole RNN-family design space.
///
/// The fundamental operation W·x + U·h of Equations 3–5 is realized as a
/// single channel-mixing transform applied to the concatenation [x ‖ h]
/// (and [x ‖ r⊙h] for the candidate state). Three orthogonal switches:
///
///  * num_supports = 0      -> plain GRU (RNN / D-RNN)
///  * num_supports > 0      -> matmul replaced by graph convolution over the
///                             supplied supports (Sec. V-C1: GRNN family)
///  * use_dfgn = false      -> shared, entity-invariant filters (Fig. 4a)
///  * use_dfgn = true       -> filters generated per entity by a DFGN from
///                             the shared memory bank (Fig. 4b/4c)
///
/// Dynamic supports (from DAMGN) and static supports are interchangeable:
/// Forward accepts [N,N] or [B,N,N] matrices.
class EnhanceGruCell : public nn::Module {
 public:
  /// The cell's per-entity filter banks for one forward pass. Generating
  /// them is decoupled from the step computation so a recurrent model can
  /// generate once per sequence instead of once per step — the filters only
  /// depend on the memories, not on the step inputs.
  struct Filters {
    autograd::Variable w_ru;  // [N, mixed_in, 2C'] or [mixed_in, 2C'] shared
    autograd::Variable w_c;   // [N, mixed_in, C']  or [mixed_in, C']
  };

  /// `memory` is the model-wide entity memory bank ([N, m] Variable); it is
  /// borrowed and must outlive the cell. Required iff config.use_dfgn.
  EnhanceGruCell(const GruCellConfig& config, const autograd::Variable* memory,
                 Rng& rng);

  /// Produces this pass's filters (runs the DFGN, or returns the shared
  /// weights). Call once per sequence and reuse across steps.
  Filters GenerateFilters() const;

  /// x: [B,N,C], h: [B,N,C'], supports: config.num_supports matrices
  /// ([N,N] or [B,N,N]). Returns the new hidden state [B,N,C'].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& h,
                             const std::vector<graph::Support>& supports,
                             const Filters& filters) const;

  /// Convenience overload that generates filters internally (single-step
  /// uses; recurrent models should hoist GenerateFilters()).
  autograd::Variable Forward(
      const autograd::Variable& x, const autograd::Variable& h,
      const std::vector<graph::Support>& supports) const {
    return Forward(x, h, supports, GenerateFilters());
  }

  const GruCellConfig& config() const { return config_; }

 private:
  /// Channel-mixing transform: mixed [B,N,Cin] -> [B,N,Cout], either via the
  /// shared weight or the per-entity generated bank.
  autograd::Variable Transform(const autograd::Variable& mixed,
                               const autograd::Variable& weight,
                               const autograd::Variable& bias,
                               int64_t in_dim, int64_t out_dim) const;

  GruCellConfig config_;
  const autograd::Variable* memory_;  // borrowed; null unless use_dfgn

  // Input widths of the two transforms after support mixing.
  int64_t mixed_in_;  // (1 + S) * (C + C')

  // Shared-filter path.
  autograd::Variable w_ru_;  // [mixed_in, 2C']
  autograd::Variable w_c_;   // [mixed_in, C']

  // DFGN path: one generator emits both filter banks, as the paper's DFGN
  // outputs all six GRU filters at once (Sec. IV-C1).
  std::unique_ptr<Dfgn> dfgn_;

  // Gate biases are shared across entities in both paths (the paper's
  // parameter analysis counts only the W/U filters).
  autograd::Variable b_ru_;  // [2C']
  autograd::Variable b_c_;   // [C']
};

}  // namespace core
}  // namespace enhancenet

#endif  // ENHANCENET_CORE_ENHANCE_GRU_CELL_H_
