#ifndef ENHANCENET_CORE_ENHANCE_TCN_LAYER_H_
#define ENHANCENET_CORE_ENHANCE_TCN_LAYER_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "core/dfgn.h"
#include "graph/graph_conv.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace enhancenet {
namespace core {

/// Folds the time axis into the batch axis: [B,N,T,C] -> [B·T,N,C].
/// Graph convolution treats every timestamp independently, so supports of
/// shape [N,N] (static) or [B·T,N,N] (dynamic, one per timestamp) apply
/// uniformly to the folded signal.
autograd::Variable FoldTime(const autograd::Variable& x);

/// Inverse of FoldTime: [B·T,N,C] -> [B,N,T,C].
autograd::Variable UnfoldTime(const autograd::Variable& x, int64_t batch,
                              int64_t time);

/// Configuration of an EnhanceTcnLayer.
struct TcnLayerConfig {
  int64_t num_entities = 0;
  int64_t in_channels = 0;    // residual-path channels entering the layer
  int64_t conv_channels = 0;  // C': gated convolution output channels
  int64_t skip_channels = 0;
  int64_t kernel_size = 2;    // K
  int64_t dilation = 1;       // d
  /// Supports for the graph convolution applied after the causal conv
  /// (Sec. V-C2). 0 disables GC (plain TCN / D-TCN).
  int64_t num_supports = 0;
  /// Entity-specific causal-convolution filters via DFGN. Each layer owns
  /// its own DFGN (Sec. IV-C2, Figure 8).
  bool use_dfgn = false;
  int64_t dfgn_hidden1 = 16;
  int64_t dfgn_hidden2 = 4;
  float dropout = 0.3f;
  /// The final layer of a stack feeds only the skip path; setting this false
  /// drops the (otherwise dead) residual projection.
  bool compute_residual = true;
  /// Project only the last timestep through skip_proj_. The TCN head keeps
  /// just t = T−1 of every layer's skip, so projecting all T timesteps is
  /// O(T) wasted GEMM work; with this set the skip output is
  /// [B,N,1,skip_channels]. Off by default for callers that consume the full
  /// skip sequence.
  bool skip_last_only = false;
};

/// One WaveNet-style block: dilated causal convolution with tanh/σ gating
/// (the paper's TCN base model), optionally followed by graph convolution
/// (GTCN) and with optionally DFGN-generated, entity-specific conv filters
/// (D-TCN / D-GTCN). Produces a residual output (same channel count as the
/// input, for stacking) and a skip output (accumulated by the model head).
class EnhanceTcnLayer : public nn::Module {
 public:
  struct Output {
    /// [B,N,T,in_channels]; undefined when config.compute_residual is false.
    autograd::Variable residual;
    /// [B,N,T,skip_channels], or [B,N,1,skip_channels] with skip_last_only.
    autograd::Variable skip;
  };

  /// `memory` is the shared entity memory bank; required iff use_dfgn.
  EnhanceTcnLayer(const TcnLayerConfig& config,
                  const autograd::Variable* memory, Rng& rng);

  /// x: [B,N,T,C]; supports: matrices of shape [N,N] or [B·T,N,N].
  /// `rng` drives dropout when training() is true.
  Output Forward(const autograd::Variable& x,
                 const std::vector<graph::Support>& supports,
                 Rng& rng) const;

  const TcnLayerConfig& config() const { return config_; }

 private:
  TcnLayerConfig config_;
  const autograd::Variable* memory_;

  // Shared-filter path: one fused weight per tap, [C, 2C'] (filter ‖ gate).
  std::vector<autograd::Variable> tap_weights_;
  // DFGN path: generates all taps at once, o = K·C·2C'.
  std::unique_ptr<Dfgn> dfgn_;
  autograd::Variable conv_bias_;  // [2C']

  // Post-conv graph convolution (entity-invariant weights).
  std::unique_ptr<nn::Linear> gc_mix_;  // [(1+S)·C', C']

  std::unique_ptr<nn::Linear> residual_proj_;  // C' -> C
  std::unique_ptr<nn::Linear> skip_proj_;      // C' -> skip
};

}  // namespace core
}  // namespace enhancenet

#endif  // ENHANCENET_CORE_ENHANCE_TCN_LAYER_H_
