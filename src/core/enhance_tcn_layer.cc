#include "core/enhance_tcn_layer.h"

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "graph/graph_conv.h"
#include "nn/init.h"

namespace enhancenet {
namespace core {

namespace ag = ::enhancenet::autograd;

ag::Variable FoldTime(const ag::Variable& x) {
  ENHANCENET_CHECK_EQ(x.data().dim(), 4);
  const int64_t batch = x.size(0);
  const int64_t n = x.size(1);
  const int64_t time = x.size(2);
  const int64_t channels = x.size(3);
  // [B,N,T,C] -> [B,T,N,C] -> [B·T,N,C]
  return ag::Reshape(ag::Transpose(x, 1, 2), {batch * time, n, channels});
}

ag::Variable UnfoldTime(const ag::Variable& x, int64_t batch, int64_t time) {
  ENHANCENET_CHECK_EQ(x.data().dim(), 3);
  ENHANCENET_CHECK_EQ(x.size(0), batch * time);
  const int64_t n = x.size(1);
  const int64_t channels = x.size(2);
  return ag::Transpose(ag::Reshape(x, {batch, time, n, channels}), 1, 2);
}

EnhanceTcnLayer::EnhanceTcnLayer(const TcnLayerConfig& config,
                                 const ag::Variable* memory, Rng& rng)
    : config_(config), memory_(memory) {
  ENHANCENET_CHECK_GT(config.num_entities, 0);
  ENHANCENET_CHECK_GT(config.in_channels, 0);
  ENHANCENET_CHECK_GT(config.conv_channels, 0);
  ENHANCENET_CHECK_GT(config.skip_channels, 0);
  ENHANCENET_CHECK_GE(config.kernel_size, 1);
  ENHANCENET_CHECK_GE(config.dilation, 1);
  const int64_t c_in = config.in_channels;
  const int64_t c_conv = config.conv_channels;

  if (config.use_dfgn) {
    ENHANCENET_CHECK(memory != nullptr) << "DFGN requires an entity memory";
    dfgn_ = std::make_unique<Dfgn>(
        memory->size(1), config.dfgn_hidden1, config.dfgn_hidden2,
        config.kernel_size * c_in * 2 * c_conv, rng);
    dfgn_->CalibrateGeneratedScale(*memory, c_in, 2 * c_conv);
    RegisterSubmodule("dfgn", dfgn_.get());
  } else {
    for (int64_t k = 0; k < config.kernel_size; ++k) {
      tap_weights_.push_back(RegisterParameter(
          "tap" + std::to_string(k),
          nn::GlorotUniform({c_in, 2 * c_conv}, rng)));
    }
  }
  conv_bias_ = RegisterParameter("conv_bias", Tensor::Zeros({2 * c_conv}));

  if (config.num_supports > 0) {
    gc_mix_ = std::make_unique<nn::Linear>(
        (1 + config.num_supports) * c_conv, c_conv, rng);
    RegisterSubmodule("gc_mix", gc_mix_.get());
  }
  if (config.compute_residual) {
    residual_proj_ = std::make_unique<nn::Linear>(c_conv, c_in, rng);
    RegisterSubmodule("residual_proj", residual_proj_.get());
  }
  skip_proj_ = std::make_unique<nn::Linear>(c_conv, config.skip_channels, rng);
  RegisterSubmodule("skip_proj", skip_proj_.get());
}

EnhanceTcnLayer::Output EnhanceTcnLayer::Forward(
    const ag::Variable& x, const std::vector<graph::Support>& supports,
    Rng& rng) const {
  ENHANCENET_CHECK_EQ(x.data().dim(), 4);
  ENHANCENET_CHECK_EQ(static_cast<int64_t>(supports.size()),
                      config_.num_supports);
  const int64_t batch = x.size(0);
  const int64_t n = x.size(1);
  const int64_t time = x.size(2);
  const int64_t c_in = config_.in_channels;
  const int64_t c_conv = config_.conv_channels;
  ENHANCENET_CHECK_EQ(x.size(3), c_in);
  const int64_t kernel = config_.kernel_size;
  const int64_t dilation = config_.dilation;

  ag::Variable z;  // gated conv output [B,N,T,C']
  if (ag::FusedKernels::IsEnabled()) {
    // Fused path: one stacked gated-epilogue GEMM replaces the K tap
    // products, bias Add, and the Slice/Tanh/Sigmoid/Mul gating tail
    // (DESIGN.md §8). ENHANCENET_FUSED=0 keeps the reference chain below.
    const int64_t pad_left = dilation * (kernel - 1);
    if (config_.use_dfgn) {
      z = ag::FusedGatedConvPerEntity(
          x, dfgn_->Generate(*memory_), conv_bias_, kernel, dilation,
          pad_left, ops::GemmEpilogue::kBiasGatedTanhSigmoid);
    } else {
      z = ag::FusedGatedConv(x, ag::Concat(tap_weights_, 0), conv_bias_,
                             kernel, dilation, pad_left,
                             ops::GemmEpilogue::kBiasGatedTanhSigmoid);
    }
  } else {
    // Per-entity tap filters, regenerated from the memories each pass.
    std::vector<ag::Variable> taps = tap_weights_;
    if (config_.use_dfgn) {
      ag::Variable filters = dfgn_->Generate(*memory_);  // [N, K·C·2C']
      taps.clear();
      for (int64_t k = 0; k < kernel; ++k) {
        taps.push_back(ag::Reshape(
            ag::Slice(filters, -1, k * c_in * 2 * c_conv, c_in * 2 * c_conv),
            {config_.num_entities, c_in, 2 * c_conv}));
      }
    }

    // Dilated causal convolution (Equation 8): left-pad by d·(K-1) so that
    // output[t] only sees inputs at t, t-d, ..., t-d(K-1).
    ag::Variable padded = ag::PadAxis(x, 2, dilation * (kernel - 1), 0);
    ag::Variable conv;  // [B,N,T,2C']
    for (int64_t k = 0; k < kernel; ++k) {
      ag::Variable tap_in = ag::Slice(padded, 2, k * dilation, time);
      ag::Variable term;
      if (config_.use_dfgn) {
        // [B,N,T,C] -> [N,B·T,C] ·bmm· [N,C,2C'] -> back.
        ag::Variable by_entity =
            ag::Reshape(ag::Transpose(tap_in, 0, 1), {n, batch * time, c_in});
        ag::Variable mixed = ag::BatchMatMul(by_entity, taps[k]);
        term = ag::Transpose(
            ag::Reshape(mixed, {n, batch, time, 2 * c_conv}), 0, 1);
      } else {
        ag::Variable flat = ag::Reshape(tap_in, {batch * n * time, c_in});
        term = ag::Reshape(ag::MatMul(flat, taps[k]),
                           {batch, n, time, 2 * c_conv});
      }
      conv = (k == 0) ? term : ag::Add(conv, term);
    }
    conv = ag::Add(conv, conv_bias_);

    // WaveNet gating: z = tanh(f) ⊙ σ(g).
    ag::Variable filter_part = ag::Slice(conv, -1, 0, c_conv);
    ag::Variable gate_part = ag::Slice(conv, -1, c_conv, c_conv);
    z = ag::Mul(ag::Tanh(filter_part), ag::Sigmoid(gate_part));
  }

  // Graph convolution on the gated output (Sec. V-C2), per timestamp.
  if (config_.num_supports > 0) {
    ag::Variable folded = FoldTime(z);  // [B·T,N,C']
    ag::Variable mixed =
        graph::MixSupports(folded, supports, /*include_self=*/true);
    ag::Variable gc = gc_mix_->Forward(mixed);
    z = UnfoldTime(gc, batch, time);
  }

  z = ag::Dropout(z, config_.dropout, training(), rng);

  Output out;
  // The TCN head keeps only t = T−1 of the skip path: slicing before the
  // projection saves the other T−1 rows of skip GEMM work. Row independence
  // of the GEMM makes slice-then-project equal to project-then-slice.
  out.skip = config_.skip_last_only
                 ? skip_proj_->Forward(ag::Slice(z, 2, time - 1, 1))
                 : skip_proj_->Forward(z);
  if (residual_proj_ != nullptr) {
    out.residual = ag::Add(residual_proj_->Forward(z), x);
  }
  return out;
}

}  // namespace core
}  // namespace enhancenet
