#include "core/damgn.h"

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "graph/adjacency.h"
#include "nn/init.h"
#include "runtime/context.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace core {

namespace ag = ::enhancenet::autograd;

Damgn::Damgn(Tensor static_adjacency, int64_t num_entities,
             int64_t in_channels, int64_t mem_dim, int64_t embed_dim, Rng& rng)
    : num_entities_(num_entities),
      in_channels_(in_channels),
      theta_(in_channels, embed_dim, rng, /*bias=*/false),
      phi_(in_channels, embed_dim, rng, /*bias=*/false) {
  ENHANCENET_CHECK_EQ(static_adjacency.dim(), 2);
  ENHANCENET_CHECK_EQ(static_adjacency.size(0), num_entities);
  ENHANCENET_CHECK_EQ(static_adjacency.size(1), num_entities);
  static_adj_ = ag::Variable::Leaf(graph::RowNormalize(static_adjacency),
                                   /*requires_grad=*/false);
  b1_ = RegisterParameter("b1",
                          nn::GlorotUniform({num_entities, mem_dim}, rng));
  b2_ = RegisterParameter("b2",
                          nn::GlorotUniform({num_entities, mem_dim}, rng));
  RegisterSubmodule("theta", &theta_);
  RegisterSubmodule("phi", &phi_);
  // λ_A = 1, λ_B = λ_C = 0: the enhanced graph convolution starts out
  // identical to the base one and learns to deviate.
  lambda_a_ = RegisterParameter("lambda_a", Tensor::Scalar(1.0f));
  lambda_b_ = RegisterParameter("lambda_b", Tensor::Scalar(0.0f));
  lambda_c_ = RegisterParameter("lambda_c", Tensor::Scalar(0.0f));
}

ag::Variable Damgn::AdaptiveB() const {
  // B = softmax(ReLU(B₁ B₂ᵀ))                        (Equation 15)
  ag::Variable scores =
      ag::MatMul(b1_, ag::Transpose(b2_, 0, 1));  // [N, N]
  return ag::SoftmaxLastDim(ag::Relu(scores));
}

ag::Variable Damgn::DynamicC(const ag::Variable& x) const {
  ENHANCENET_CHECK_EQ(x.data().dim(), 3);
  ENHANCENET_CHECK_EQ(x.size(1), num_entities_);
  ENHANCENET_CHECK_EQ(x.size(2), in_channels_);
  // C[i,j] = exp(θ(x_i)ᵀ φ(x_j)) / Σ_j exp(θ(x_i)ᵀ φ(x_j))   (Equation 16)
  ag::Variable e_src = theta_.Forward(x);  // [B, N, e]
  ag::Variable e_dst = phi_.Forward(x);    // [B, N, e]
  if (!ag::GradMode::IsEnabled() || ag::FusedKernels::IsEnabled()) {
    // Fused attention node: the φ-transpose and raw scores are staged in the
    // bound context's Workspace arena in training too, so the recorded graph
    // retains only the [B,N,N] probabilities. Forward values are bitwise
    // identical to the unfused chain below (same Into kernels); in no-grad
    // mode the result adopts a workspace block and parks it back on the
    // arena when the last alias drops — the historical serving fast path.
    return ag::AttentionProbs(e_src, e_dst);
  }
  ag::Variable scores =
      ag::BatchMatMul(e_src, ag::Transpose(e_dst, 1, 2));  // [B, N, N]
  return ag::SoftmaxLastDim(scores);
}

graph::SparseAdjacency Damgn::SparseDynamicC(const ag::Variable& x,
                                             int64_t k) const {
  ENHANCENET_CHECK_EQ(x.data().dim(), 3);
  ENHANCENET_CHECK_EQ(x.size(1), num_entities_);
  ENHANCENET_CHECK_EQ(x.size(2), in_channels_);
  ag::Variable e_src = theta_.Forward(x);
  ag::Variable e_dst = phi_.Forward(x);
  graph::SparseAdjacency sparse;
  sparse.values = ag::TopKAttention(e_src, e_dst, k, &sparse.index);
  return sparse;
}

ag::Variable Damgn::StaticMix() const {
  return ag::Add(ag::Mul(lambda_a_, static_adj_),
                 ag::Mul(lambda_b_, AdaptiveB()));
}

ag::Variable Damgn::Combined(const ag::Variable& x) const {
  // A' = λ_A·A + λ_B·B + λ_C·C_t                       (Equation 13)
  ag::Variable dynamic_part = ag::Mul(lambda_c_, DynamicC(x));  // [B, N, N]
  return ag::Add(dynamic_part, StaticMix());  // broadcast over batch
}

std::vector<graph::Support> Damgn::CombinedSupports(const ag::Variable& x,
                                                    int max_hops,
                                                    bool bidirectional) const {
  ENHANCENET_CHECK_GE(max_hops, 1);
  const int topk = runtime::RuntimeContext::Current().exec().topk.load(
      std::memory_order_relaxed);
  std::vector<graph::Support> supports;
  if (topk > 0) {
    // Sparse path: A' is kept split as S + λ_C·C_topk and applied
    // hop-by-hop, so no [B,N,N] tensor (let alone its powers) is built.
    ag::Variable s = StaticMix();
    graph::SparseAdjacency c = SparseDynamicC(x, topk);
    c.values = ag::Mul(lambda_c_, c.values);
    for (int hop = 1; hop <= max_hops; ++hop) {
      supports.emplace_back(s, c, hop, /*transposed=*/false);
    }
    if (bidirectional) {
      ag::Variable st = ag::Transpose(s, 0, 1);
      for (int hop = 1; hop <= max_hops; ++hop) {
        supports.emplace_back(st, c, hop, /*transposed=*/true);
      }
    }
    return supports;
  }
  const ag::Variable combined = Combined(x);
  supports.push_back(combined);
  ag::Variable power = combined;
  for (int hop = 2; hop <= max_hops; ++hop) {
    // (A')ᵏ replaces Aᵏ for k-hop neighbourhoods (Sec. V-A).
    power = ag::BatchMatMul(power, combined);
    supports.push_back(power);
  }
  if (bidirectional) {
    const ag::Variable transposed = ag::Transpose(combined, 1, 2);
    supports.push_back(transposed);
    ag::Variable tpower = transposed;
    for (int hop = 2; hop <= max_hops; ++hop) {
      tpower = ag::BatchMatMul(tpower, transposed);
      supports.push_back(tpower);
    }
  }
  return supports;
}

}  // namespace core
}  // namespace enhancenet
