#include "core/damgn.h"

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "graph/adjacency.h"
#include "nn/init.h"
#include "runtime/context.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace core {

namespace ag = ::enhancenet::autograd;

Damgn::Damgn(Tensor static_adjacency, int64_t num_entities,
             int64_t in_channels, int64_t mem_dim, int64_t embed_dim, Rng& rng)
    : num_entities_(num_entities),
      in_channels_(in_channels),
      theta_(in_channels, embed_dim, rng, /*bias=*/false),
      phi_(in_channels, embed_dim, rng, /*bias=*/false) {
  ENHANCENET_CHECK_EQ(static_adjacency.dim(), 2);
  ENHANCENET_CHECK_EQ(static_adjacency.size(0), num_entities);
  ENHANCENET_CHECK_EQ(static_adjacency.size(1), num_entities);
  static_adj_ = ag::Variable::Leaf(graph::RowNormalize(static_adjacency),
                                   /*requires_grad=*/false);
  b1_ = RegisterParameter("b1",
                          nn::GlorotUniform({num_entities, mem_dim}, rng));
  b2_ = RegisterParameter("b2",
                          nn::GlorotUniform({num_entities, mem_dim}, rng));
  RegisterSubmodule("theta", &theta_);
  RegisterSubmodule("phi", &phi_);
  // λ_A = 1, λ_B = λ_C = 0: the enhanced graph convolution starts out
  // identical to the base one and learns to deviate.
  lambda_a_ = RegisterParameter("lambda_a", Tensor::Scalar(1.0f));
  lambda_b_ = RegisterParameter("lambda_b", Tensor::Scalar(0.0f));
  lambda_c_ = RegisterParameter("lambda_c", Tensor::Scalar(0.0f));
}

ag::Variable Damgn::AdaptiveB() const {
  // B = softmax(ReLU(B₁ B₂ᵀ))                        (Equation 15)
  ag::Variable scores =
      ag::MatMul(b1_, ag::Transpose(b2_, 0, 1));  // [N, N]
  return ag::SoftmaxLastDim(ag::Relu(scores));
}

ag::Variable Damgn::DynamicC(const ag::Variable& x) const {
  ENHANCENET_CHECK_EQ(x.data().dim(), 3);
  ENHANCENET_CHECK_EQ(x.size(1), num_entities_);
  ENHANCENET_CHECK_EQ(x.size(2), in_channels_);
  // C[i,j] = exp(θ(x_i)ᵀ φ(x_j)) / Σ_j exp(θ(x_i)ᵀ φ(x_j))   (Equation 16)
  ag::Variable e_src = theta_.Forward(x);  // [B, N, e]
  ag::Variable e_dst = phi_.Forward(x);    // [B, N, e]
  if (!ag::GradMode::IsEnabled()) {
    // No-grad fast path: stage the φ-transpose and raw attention scores in
    // the bound context's Workspace arena instead of fresh allocations, so
    // serving reuses the same two blocks every step. The Into kernels run
    // the exact code the recording path runs, so values stay bitwise
    // identical; the result adopts its workspace block and parks it back on
    // the arena when the last alias drops.
    runtime::Workspace& ws = runtime::RuntimeContext::Current().workspace();
    const Tensor& src = e_src.data();
    const Tensor& dst = e_dst.data();
    const int64_t batch = src.size(0);
    const int64_t n = src.size(1);
    const int64_t e = src.size(2);
    Tensor dst_t =
        Tensor::WithStorage(ws.Acquire(batch * e * n), Shape{batch, e, n});
    ops::TransposeInto(dst, 1, 2, &dst_t);
    Tensor scores =
        Tensor::WithStorage(ws.Acquire(batch * n * n), Shape{batch, n, n});
    ops::BatchMatMulInto(src, dst_t, &scores);
    Tensor probs =
        Tensor::WithStorage(ws.Acquire(batch * n * n), Shape{batch, n, n});
    ops::SoftmaxLastDimInto(scores, &probs);
    return ag::Variable::Leaf(std::move(probs), /*requires_grad=*/false);
  }
  ag::Variable scores =
      ag::BatchMatMul(e_src, ag::Transpose(e_dst, 1, 2));  // [B, N, N]
  return ag::SoftmaxLastDim(scores);
}

ag::Variable Damgn::Combined(const ag::Variable& x) const {
  // A' = λ_A·A + λ_B·B + λ_C·C_t                       (Equation 13)
  ag::Variable static_part = ag::Add(ag::Mul(lambda_a_, static_adj_),
                                     ag::Mul(lambda_b_, AdaptiveB()));
  ag::Variable dynamic_part = ag::Mul(lambda_c_, DynamicC(x));  // [B, N, N]
  return ag::Add(dynamic_part, static_part);  // broadcast over batch
}

std::vector<ag::Variable> Damgn::CombinedSupports(const ag::Variable& x,
                                                  int max_hops,
                                                  bool bidirectional) const {
  ENHANCENET_CHECK_GE(max_hops, 1);
  std::vector<ag::Variable> supports;
  const ag::Variable combined = Combined(x);
  supports.push_back(combined);
  ag::Variable power = combined;
  for (int hop = 2; hop <= max_hops; ++hop) {
    // (A')ᵏ replaces Aᵏ for k-hop neighbourhoods (Sec. V-A).
    power = ag::BatchMatMul(power, combined);
    supports.push_back(power);
  }
  if (bidirectional) {
    const ag::Variable transposed = ag::Transpose(combined, 1, 2);
    supports.push_back(transposed);
    ag::Variable tpower = transposed;
    for (int hop = 2; hop <= max_hops; ++hop) {
      tpower = ag::BatchMatMul(tpower, transposed);
      supports.push_back(tpower);
    }
  }
  return supports;
}

}  // namespace core
}  // namespace enhancenet
