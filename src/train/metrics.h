#ifndef ENHANCENET_TRAIN_METRICS_H_
#define ENHANCENET_TRAIN_METRICS_H_

#include <vector>

#include "tensor/tensor.h"

namespace enhancenet {
namespace train {

/// Point-forecast error statistics (the paper's three metrics, Sec. VI-A).
/// MAPE is reported in percent.
struct ErrorStats {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;
  int64_t count = 0;
};

/// Streaming accumulator of masked forecasting errors over batches.
///
/// Masking follows the standard protocol for traffic data: ground-truth
/// entries equal to `null_value` (within a small tolerance) are excluded
/// from every metric — this also keeps MAPE well-defined. Per-horizon sums
/// are kept so the paper's 3rd/6th/12th-step rows can be reported, along
/// with per-window MAEs for significance testing (Table III's t-tests).
class MetricAccumulator {
 public:
  explicit MetricAccumulator(int64_t horizon, float null_value = 0.0f);

  /// pred, truth: [B, N, F] in real (unscaled) units.
  void Add(const Tensor& pred, const Tensor& truth);

  /// Errors restricted to horizon step `h` (0-based; the paper's "3rd"
  /// timestamp is h=2).
  ErrorStats AtHorizon(int64_t h) const;

  /// Errors pooled over all horizons.
  ErrorStats Overall() const;

  /// One MAE per added window (sample), pooled over entities and horizons;
  /// input to the paired t-test.
  const std::vector<double>& per_window_mae() const {
    return per_window_mae_;
  }

  int64_t horizon() const { return horizon_; }

 private:
  int64_t horizon_;
  float null_value_;
  std::vector<double> sum_abs_;   // per horizon
  std::vector<double> sum_sq_;    // per horizon
  std::vector<double> sum_ape_;   // per horizon
  std::vector<int64_t> counts_;   // per horizon
  std::vector<double> per_window_mae_;
};

/// Welch's unequal-variance t-test (two-sided).
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  // two-sided
};

/// Tests whether the means of two error samples differ. Used to reproduce
/// the paper's claim that the proposed models beat the state of the art
/// with p < 0.01 (Sec. VI-B3).
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Regularized incomplete beta function I_x(a, b) (continued-fraction
/// evaluation); exposed for testing.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Two-sided p-value of a t statistic with `df` degrees of freedom.
double StudentTTwoSidedPValue(double t, double df);

}  // namespace train
}  // namespace enhancenet

#endif  // ENHANCENET_TRAIN_METRICS_H_
