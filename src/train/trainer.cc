#include "train/trainer.h"

#include <cmath>
#include <iostream>
#include <limits>

#include "autograd/ops.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"

namespace enhancenet {
namespace train {

namespace ag = ::enhancenet::autograd;

namespace {

// Registry handles for the training loop, resolved once per process. Epoch
// wall time includes validation (it is the real cadence an operator sees);
// batch wall time covers forward+backward+step.
struct TrainMetrics {
  obs::Counter* epochs;
  obs::Counter* batches;
  obs::Counter* grad_clip_events;
  obs::Counter* early_stop_events;
  obs::Histogram* epoch_ms;
  obs::Histogram* batch_ms;
  obs::Gauge* loss;
  obs::Gauge* val_mae;
  obs::Gauge* lr;
  obs::Gauge* grad_norm;
  obs::Gauge* best_epoch;

  static TrainMetrics& Get() {
    static TrainMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      TrainMetrics m;
      m.epochs = registry.GetCounter("train.epochs");
      m.batches = registry.GetCounter("train.batches");
      m.grad_clip_events = registry.GetCounter("train.grad_clip.events");
      m.early_stop_events = registry.GetCounter("train.early_stop.events");
      m.epoch_ms =
          registry.GetHistogram("train.epoch_ms", obs::LatencyBucketsMs());
      m.batch_ms =
          registry.GetHistogram("train.batch_ms", obs::LatencyBucketsMs());
      m.loss = registry.GetGauge("train.loss");
      m.val_mae = registry.GetGauge("train.val_mae");
      m.lr = registry.GetGauge("train.lr");
      m.grad_norm = registry.GetGauge("train.grad_norm");
      m.best_epoch = registry.GetGauge("train.best_epoch");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Trainer::Trainer(models::ForecastingModel* model,
                 const data::StandardScaler* scaler, int64_t target_channel,
                 const TrainerConfig& config)
    : model_(model),
      scaler_(scaler),
      target_channel_(target_channel),
      config_(config) {
  ENHANCENET_CHECK(model != nullptr);
  ENHANCENET_CHECK(scaler != nullptr);
  ENHANCENET_CHECK_GT(config.epochs, 0);
  ENHANCENET_CHECK_GT(config.batch_size, 0);
}

ag::Variable Trainer::Loss(const ag::Variable& pred_scaled,
                           const Tensor& y_raw) const {
  // Un-scale inside the graph so the loss is masked MAE in real units.
  const float sd = scaler_->stddev(target_channel_);
  const float mean = scaler_->mean(target_channel_);
  ag::Variable pred_real =
      ag::AddScalar(ag::MulScalar(pred_scaled, sd), mean);

  // Mask of observed (non-null) targets.
  Tensor mask(y_raw.shape());
  const float* py = y_raw.data();
  float* pm = mask.data();
  int64_t observed = 0;
  for (int64_t i = 0; i < y_raw.numel(); ++i) {
    const bool is_null = std::fabs(py[i]) < 1e-6f;
    pm[i] = is_null ? 0.0f : 1.0f;
    observed += is_null ? 0 : 1;
  }
  ENHANCENET_CHECK_GT(observed, 0) << "all targets masked";

  ag::Variable truth = ag::Variable::Leaf(y_raw, /*requires_grad=*/false);
  ag::Variable mask_var = ag::Variable::Leaf(mask, /*requires_grad=*/false);
  ag::Variable abs_err = ag::Abs(ag::Sub(pred_real, truth));
  ag::Variable masked = ag::Mul(abs_err, mask_var);
  return ag::MulScalar(ag::SumAll(masked),
                       1.0f / static_cast<float>(observed));
}

TrainResult Trainer::Train(const data::WindowDataset& train_set,
                           const data::WindowDataset& val_set, Rng& rng) {
  runtime::RuntimeContext::Bind bind_context(context_);
  TrainMetrics& metrics = TrainMetrics::Get();
  obs::TraceSpan train_span("train");
  TrainResult result;
  optim::Adam optimizer(model_->Parameters(), config_.learning_rate);
  optim::StepDecaySchedule schedule(config_.learning_rate,
                                    config_.lr_first_decay_epoch,
                                    config_.lr_decay_period);

  // Snapshot of the best weights (validation MAE) for restore-at-end.
  std::vector<Tensor> best_weights;
  double best_val = std::numeric_limits<double>::infinity();
  int stale_epochs = 0;
  double total_epoch_seconds = 0.0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("epoch");
    Stopwatch epoch_wall;  // full epoch, validation included
    if (config_.use_step_decay) {
      optimizer.set_lr(schedule.LrForEpoch(epoch));
    }
    model_->SetTraining(true);
    Stopwatch epoch_timer;
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (const auto& indices :
         train_set.ShuffledBatches(config_.batch_size, rng)) {
      obs::ScopedTimer batch_timer(metrics.batch_ms);
      const data::Batch batch = train_set.MakeBatch(indices);
      const float teacher_prob =
          config_.use_scheduled_sampling
              ? config_.scheduled_sampling_tau /
                    (config_.scheduled_sampling_tau +
                     std::exp(static_cast<float>(global_batch_) /
                              config_.scheduled_sampling_tau))
              : 0.0f;
      ag::Variable pred =
          model_->Forward(batch.x, &batch.y_scaled, teacher_prob, rng);
      ag::Variable loss = Loss(pred, batch.y_raw);
      model_->ZeroGrad();
      loss.Backward();
      const float grad_norm =
          optim::ClipGradNorm(optimizer.params(), config_.grad_clip_norm);
      metrics.grad_norm->Set(grad_norm);
      if (grad_norm > config_.grad_clip_norm) metrics.grad_clip_events->Add();
      optimizer.Step();
      loss_sum += loss.data().item();
      metrics.batches->Add();
      ++batches;
      ++global_batch_;
    }
    total_epoch_seconds += epoch_timer.ElapsedSeconds();
    result.epoch_train_loss.push_back(loss_sum /
                                      static_cast<double>(batches));

    MetricAccumulator val_acc(model_->horizon());
    Evaluate(val_set, &val_acc, rng);
    const double val_mae = val_acc.Overall().mae;
    result.epoch_val_mae.push_back(val_mae);
    metrics.epochs->Add();
    metrics.epoch_ms->Observe(epoch_wall.ElapsedMillis());
    metrics.loss->Set(result.epoch_train_loss.back());
    metrics.val_mae->Set(val_mae);
    metrics.lr->Set(optimizer.lr());
    if (config_.verbose) {
      std::cerr << "[" << model_->name() << "] epoch " << epoch
                << " train_loss=" << result.epoch_train_loss.back()
                << " val_mae=" << val_mae << " lr=" << optimizer.lr()
                << std::endl;
    }

    const bool significant = val_mae < best_val - config_.min_delta;
    if (val_mae < best_val) {
      best_val = val_mae;
      result.best_epoch = epoch;
      metrics.best_epoch->Set(static_cast<double>(epoch));
      best_weights.clear();
      for (const auto& param : model_->Parameters()) {
        best_weights.push_back(param.data().Clone());
      }
    }
    stale_epochs = significant ? 0 : stale_epochs + 1;
    if (config_.patience > 0 && stale_epochs >= config_.patience) {
      metrics.early_stop_events->Add();
      break;
    }
  }

  // Restore the best weights.
  if (!best_weights.empty()) {
    auto params = model_->Parameters();
    ENHANCENET_CHECK_EQ(params.size(), best_weights.size());
    for (size_t i = 0; i < params.size(); ++i) {
      std::copy(best_weights[i].data(),
                best_weights[i].data() + best_weights[i].numel(),
                params[i].mutable_data().data());
    }
  }
  result.best_val_mae = best_val;
  result.mean_epoch_seconds =
      total_epoch_seconds /
      static_cast<double>(result.epoch_train_loss.size());
  return result;
}

ErrorStats Trainer::Evaluate(const data::WindowDataset& dataset,
                             MetricAccumulator* accumulator, Rng& rng) {
  ENHANCENET_CHECK(accumulator != nullptr);
  runtime::RuntimeContext::Bind bind_context(context_);
  // Save/restore the caller's mode: forcing training mode on exit would
  // corrupt eval-mode callers (e.g. a post-training test evaluation).
  const bool was_training = model_->training();
  model_->SetTraining(false);
  for (const auto& indices :
       dataset.SequentialBatches(config_.batch_size)) {
    const data::Batch batch = dataset.MakeBatch(indices);
    ag::Variable pred = model_->Predict(batch.x, rng);
    Tensor pred_real =
        scaler_->InverseTarget(pred.data(), target_channel_);
    accumulator->Add(pred_real, batch.y_raw);
  }
  model_->SetTraining(was_training);
  return accumulator->Overall();
}

double Trainer::MeasurePredictMillis(const data::WindowDataset& dataset,
                                     int reps, Rng& rng) {
  ENHANCENET_CHECK_GT(reps, 0);
  ENHANCENET_CHECK_GT(dataset.num_windows(), 0);
  runtime::RuntimeContext::Bind bind_context(context_);
  const bool was_training = model_->training();
  model_->SetTraining(false);
  const data::Batch batch = dataset.MakeBatch({0});
  // Warm-up run (first call may allocate).
  model_->Predict(batch.x, rng);
  Stopwatch timer;
  for (int r = 0; r < reps; ++r) model_->Predict(batch.x, rng);
  const double millis = timer.ElapsedMillis() / static_cast<double>(reps);
  model_->SetTraining(was_training);
  return millis;
}

}  // namespace train
}  // namespace enhancenet
