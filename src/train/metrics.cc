#include "train/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace enhancenet {
namespace train {

MetricAccumulator::MetricAccumulator(int64_t horizon, float null_value)
    : horizon_(horizon), null_value_(null_value) {
  ENHANCENET_CHECK_GT(horizon, 0);
  sum_abs_.assign(static_cast<size_t>(horizon), 0.0);
  sum_sq_.assign(static_cast<size_t>(horizon), 0.0);
  sum_ape_.assign(static_cast<size_t>(horizon), 0.0);
  counts_.assign(static_cast<size_t>(horizon), 0);
}

void MetricAccumulator::Add(const Tensor& pred, const Tensor& truth) {
  ENHANCENET_CHECK(pred.shape() == truth.shape())
      << "pred " << ShapeToString(pred.shape()) << " vs truth "
      << ShapeToString(truth.shape());
  ENHANCENET_CHECK_EQ(pred.dim(), 3);
  ENHANCENET_CHECK_EQ(pred.size(2), horizon_);
  const int64_t batch = pred.size(0);
  const int64_t n = pred.size(1);
  const float* pp = pred.data();
  const float* pt = truth.data();

  for (int64_t b = 0; b < batch; ++b) {
    double window_abs = 0.0;
    int64_t window_count = 0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t h = 0; h < horizon_; ++h) {
        const int64_t idx = (b * n + i) * horizon_ + h;
        const float y = pt[idx];
        if (std::fabs(y - null_value_) < 1e-6f) continue;  // masked
        const double err = static_cast<double>(pp[idx]) - y;
        const size_t hu = static_cast<size_t>(h);
        sum_abs_[hu] += std::fabs(err);
        sum_sq_[hu] += err * err;
        sum_ape_[hu] += std::fabs(err) / std::fabs(static_cast<double>(y));
        ++counts_[hu];
        window_abs += std::fabs(err);
        ++window_count;
      }
    }
    if (window_count > 0) {
      per_window_mae_.push_back(window_abs /
                                static_cast<double>(window_count));
    }
  }
}

ErrorStats MetricAccumulator::AtHorizon(int64_t h) const {
  ENHANCENET_CHECK(h >= 0 && h < horizon_);
  const size_t hu = static_cast<size_t>(h);
  ErrorStats stats;
  stats.count = counts_[hu];
  if (stats.count == 0) return stats;
  const double n = static_cast<double>(stats.count);
  stats.mae = sum_abs_[hu] / n;
  stats.rmse = std::sqrt(sum_sq_[hu] / n);
  stats.mape = 100.0 * sum_ape_[hu] / n;
  return stats;
}

ErrorStats MetricAccumulator::Overall() const {
  ErrorStats stats;
  double abs_total = 0.0;
  double sq_total = 0.0;
  double ape_total = 0.0;
  for (int64_t h = 0; h < horizon_; ++h) {
    const size_t hu = static_cast<size_t>(h);
    abs_total += sum_abs_[hu];
    sq_total += sum_sq_[hu];
    ape_total += sum_ape_[hu];
    stats.count += counts_[hu];
  }
  if (stats.count == 0) return stats;
  const double n = static_cast<double>(stats.count);
  stats.mae = abs_total / n;
  stats.rmse = std::sqrt(sq_total / n);
  stats.mape = 100.0 * ape_total / n;
  return stats;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  ENHANCENET_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  // Symmetry transformation keeps the continued fraction convergent.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x);
  }
  const double log_beta =
      std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - log_beta) / a;
  // Lentz's continued fraction.
  double f = 1.0;
  double c = 1.0;
  double d = 0.0;
  for (int i = 0; i <= 300; ++i) {
    const int m = i / 2;
    double numerator;
    if (i == 0) {
      numerator = 1.0;
    } else if (i % 2 == 0) {
      numerator = (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
    } else {
      numerator =
          -((a + m) * (a + b + m) * x) / ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
    }
    d = 1.0 + numerator * d;
    if (std::fabs(d) < 1e-30) d = 1e-30;
    d = 1.0 / d;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < 1e-30) c = 1e-30;
    const double delta = c * d;
    f *= delta;
    if (std::fabs(1.0 - delta) < 1e-10) break;
  }
  return front * (f - 1.0);
}

double StudentTTwoSidedPValue(double t, double df) {
  ENHANCENET_CHECK_GT(df, 0.0);
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ENHANCENET_CHECK_GE(a.size(), 2u);
  ENHANCENET_CHECK_GE(b.size(), 2u);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (double v : a) mean_a += v;
  for (double v : b) mean_b += v;
  mean_a /= na;
  mean_b /= nb;
  double var_a = 0.0;
  double var_b = 0.0;
  for (double v : a) var_a += (v - mean_a) * (v - mean_a);
  for (double v : b) var_b += (v - mean_b) * (v - mean_b);
  var_a /= (na - 1.0);
  var_b /= (nb - 1.0);

  const double se_a = var_a / na;
  const double se_b = var_b / nb;
  const double se = std::sqrt(se_a + se_b) + 1e-300;

  TTestResult result;
  result.t_statistic = (mean_a - mean_b) / se;
  result.degrees_of_freedom =
      (se_a + se_b) * (se_a + se_b) /
      (se_a * se_a / (na - 1.0) + se_b * se_b / (nb - 1.0) + 1e-300);
  result.p_value =
      StudentTTwoSidedPValue(result.t_statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace train
}  // namespace enhancenet
