#ifndef ENHANCENET_TRAIN_TRAINER_H_
#define ENHANCENET_TRAIN_TRAINER_H_

#include <vector>

#include "data/dataset.h"
#include "models/forecasting_model.h"
#include "runtime/context.h"
#include "train/metrics.h"

namespace enhancenet {
namespace train {

/// Training hyperparameters, defaulting to the paper's RNN recipe
/// (Sec. VI-A): Adam, initial LR 0.01 decaying 10x every 10 epochs from
/// epoch 20, scheduled sampling, gradient clipping.
struct TrainerConfig {
  int epochs = 30;
  int64_t batch_size = 8;
  float learning_rate = 0.01f;
  /// Step-decay LR schedule (RNN models). TCN models use a fixed LR of
  /// 0.001 per the paper — set use_step_decay=false and learning_rate
  /// accordingly.
  bool use_step_decay = true;
  int lr_first_decay_epoch = 20;
  int lr_decay_period = 10;
  float grad_clip_norm = 5.0f;
  /// Inverse-sigmoid scheduled sampling: at global batch k the ground truth
  /// is fed with probability tau / (tau + exp(k / tau)).
  bool use_scheduled_sampling = true;
  float scheduled_sampling_tau = 20.0f;
  /// Early stopping patience on validation MAE; <= 0 disables. An epoch
  /// counts as an improvement only if it beats the best MAE by min_delta.
  int patience = 0;
  double min_delta = 0.0;
  bool verbose = false;
};

/// Outcome of a training run.
struct TrainResult {
  double best_val_mae = 0.0;
  int best_epoch = -1;
  double mean_epoch_seconds = 0.0;  // Table V "T (s)"
  std::vector<double> epoch_train_loss;
  std::vector<double> epoch_val_mae;
};

/// Trains and evaluates ForecastingModels with the paper's protocol:
/// masked-MAE loss in real units (predictions un-scaled through the
/// StandardScaler inside the autograd graph), validation-based model
/// selection with best-weight restore, and masked MAE/RMSE/MAPE evaluation.
class Trainer {
 public:
  /// `model` and `scaler` are borrowed and must outlive the trainer.
  Trainer(models::ForecastingModel* model, const data::StandardScaler* scaler,
          int64_t target_channel, const TrainerConfig& config);

  /// Runs the configured number of epochs; restores the best-validation
  /// weights before returning.
  TrainResult Train(const data::WindowDataset& train_set,
                    const data::WindowDataset& val_set, Rng& rng);

  /// Evaluates on a dataset, accumulating real-unit masked errors.
  ErrorStats Evaluate(const data::WindowDataset& dataset,
                      MetricAccumulator* accumulator, Rng& rng);

  /// Average wall-clock milliseconds to predict one window (B=1), the
  /// paper's "P (ms)" column (Table V).
  double MeasurePredictMillis(const data::WindowDataset& dataset, int reps,
                              Rng& rng);

  const TrainerConfig& config() const { return config_; }

 private:
  /// Masked MAE in real units as a differentiable scalar.
  autograd::Variable Loss(const autograd::Variable& pred_scaled,
                          const Tensor& y_raw) const;

  models::ForecastingModel* model_;
  const data::StandardScaler* scaler_;
  int64_t target_channel_;
  TrainerConfig config_;
  int64_t global_batch_ = 0;
  /// Bound for the duration of Train/Evaluate/MeasurePredictMillis. Shares
  /// the default context's allocator and exec config (so global knobs and
  /// stats behave exactly as before) but owns a private Workspace, keeping
  /// the trainer's scratch arena out of any concurrently-serving session's.
  runtime::RuntimeContext context_;
};

}  // namespace train
}  // namespace enhancenet

#endif  // ENHANCENET_TRAIN_TRAINER_H_
