#ifndef ENHANCENET_AUTOGRAD_VARIABLE_H_
#define ENHANCENET_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace enhancenet {
namespace autograd {

/// A node in the dynamic (define-by-run) computation graph.
/// Users interact with Variable; Node is an implementation detail shared by
/// the op library in ops.h.
struct Node {
  Tensor data;
  Tensor grad;  // valid only when grad_defined
  bool grad_defined = false;
  bool requires_grad = false;
  bool is_leaf = true;
  const char* op_name = "leaf";
  /// Parents in the graph (inputs of the op that produced this node).
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates `grad_out` (d loss / d this) into the parents' grads.
  /// Empty for leaves.
  std::function<void(const Tensor& grad_out)> backward_fn;
};

/// Value-semantic handle to a computation-graph node, in the spirit of
/// torch.Tensor with requires_grad. Copies share the node.
///
/// Typical use:
///   Variable w = Variable::Leaf(Tensor::Randn({4, 4}, rng), true);
///   Variable loss = MeanAll(Square(MatMul(x, w)));
///   loss.Backward();
///   ... w.grad() now holds d loss / d w ...
class Variable {
 public:
  /// A null handle; defined() is false.
  Variable() = default;

  /// Wraps `data` as a graph leaf.
  explicit Variable(Tensor data, bool requires_grad = false);

  /// Named factory for readability at call sites.
  static Variable Leaf(Tensor data, bool requires_grad);

  /// Internal: wraps an op-produced node.
  static Variable FromNode(std::shared_ptr<Node> node);

  bool defined() const { return node_ != nullptr; }

  const Tensor& data() const;
  /// Mutable access to the underlying values; used by optimizers to apply
  /// parameter updates in place.
  Tensor& mutable_data();

  const Shape& shape() const { return data().shape(); }
  int64_t size(int64_t d) const { return data().size(d); }
  int64_t numel() const { return data().numel(); }

  bool requires_grad() const;
  void set_requires_grad(bool requires_grad);

  /// True once a gradient has been accumulated into this node.
  bool has_grad() const;
  /// The accumulated gradient; CHECK-fails unless has_grad().
  const Tensor& grad() const;
  /// Mutable gradient access (used by gradient clipping).
  Tensor& mutable_grad();
  /// Drops the accumulated gradient (if any).
  void ZeroGrad();

  /// Adds `g` into this node's gradient buffer (allocating it on first use).
  /// const because it mutates the shared node, not the handle.
  void AccumulateGrad(const Tensor& g) const;

  /// Move form for freshly-computed gradient tensors nothing else holds: the
  /// first contribution is adopted as the grad buffer outright instead of
  /// being deep-cloned. Callers must not pass a tensor whose storage is
  /// shared (e.g. an upstream grad_out fanned out to several parents) —
  /// later contributions are accumulated into the buffer in place.
  void AccumulateGrad(Tensor&& g) const;

  /// Runs reverse-mode differentiation from this (scalar) variable: seeds
  /// d self/d self = 1 and propagates through the graph in reverse
  /// topological order. CHECK-fails if this variable is not a single element.
  void Backward();

  /// Returns a leaf variable sharing this data but cut off from the graph.
  Variable Detach() const;

  std::shared_ptr<Node> node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

}  // namespace autograd
}  // namespace enhancenet

#endif  // ENHANCENET_AUTOGRAD_VARIABLE_H_
