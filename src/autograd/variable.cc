#include "autograd/variable.h"

#include <unordered_set>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace autograd {

Variable::Variable(Tensor data, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->data = std::move(data);
  node_->requires_grad = requires_grad;
  node_->is_leaf = true;
}

Variable Variable::Leaf(Tensor data, bool requires_grad) {
  return Variable(std::move(data), requires_grad);
}

Variable Variable::FromNode(std::shared_ptr<Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

const Tensor& Variable::data() const {
  ENHANCENET_CHECK(defined());
  return node_->data;
}

Tensor& Variable::mutable_data() {
  ENHANCENET_CHECK(defined());
  return node_->data;
}

bool Variable::requires_grad() const {
  ENHANCENET_CHECK(defined());
  return node_->requires_grad;
}

void Variable::set_requires_grad(bool requires_grad) {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(node_->is_leaf) << "set_requires_grad on non-leaf";
  node_->requires_grad = requires_grad;
}

bool Variable::has_grad() const {
  ENHANCENET_CHECK(defined());
  return node_->grad_defined;
}

const Tensor& Variable::grad() const {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(node_->grad_defined) << "grad() before Backward()";
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(node_->grad_defined) << "mutable_grad() before Backward()";
  return node_->grad;
}

void Variable::ZeroGrad() {
  ENHANCENET_CHECK(defined());
  node_->grad_defined = false;
  node_->grad = Tensor();
}

void Variable::AccumulateGrad(const Tensor& g) const {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(g.shape() == node_->data.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " does not match data shape " << ShapeToString(node_->data.shape())
      << " (op " << node_->op_name << ")";
  if (!node_->grad_defined) {
    node_->grad = g.Clone();
    node_->grad_defined = true;
  } else {
    ops::AxpyInPlace(1.0f, g, &node_->grad);
  }
}

void Variable::Backward() {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK_EQ(node_->data.numel(), 1)
      << "Backward() requires a scalar output";

  // Iterative post-order DFS to get a topological order of the graph.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed d self / d self = 1.
  AccumulateGrad(Tensor::Ones(node_->data.shape()));

  // Reverse topological order: every node's grad is complete before its
  // backward_fn fires.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad_defined) {
      node->backward_fn(node->grad);
    }
  }
}

Variable Variable::Detach() const {
  ENHANCENET_CHECK(defined());
  return Variable::Leaf(node_->data, /*requires_grad=*/false);
}

}  // namespace autograd
}  // namespace enhancenet
