#include "autograd/variable.h"

#include <unordered_set>

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace autograd {

Variable::Variable(Tensor data, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->data = std::move(data);
  node_->requires_grad = requires_grad;
  node_->is_leaf = true;
}

Variable Variable::Leaf(Tensor data, bool requires_grad) {
  return Variable(std::move(data), requires_grad);
}

Variable Variable::FromNode(std::shared_ptr<Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

const Tensor& Variable::data() const {
  ENHANCENET_CHECK(defined());
  return node_->data;
}

Tensor& Variable::mutable_data() {
  ENHANCENET_CHECK(defined());
  return node_->data;
}

bool Variable::requires_grad() const {
  ENHANCENET_CHECK(defined());
  return node_->requires_grad;
}

void Variable::set_requires_grad(bool requires_grad) {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(node_->is_leaf) << "set_requires_grad on non-leaf";
  node_->requires_grad = requires_grad;
}

bool Variable::has_grad() const {
  ENHANCENET_CHECK(defined());
  return node_->grad_defined;
}

const Tensor& Variable::grad() const {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(node_->grad_defined) << "grad() before Backward()";
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(node_->grad_defined) << "mutable_grad() before Backward()";
  return node_->grad;
}

void Variable::ZeroGrad() {
  ENHANCENET_CHECK(defined());
  node_->grad_defined = false;
  node_->grad = Tensor();
}

void Variable::AccumulateGrad(const Tensor& g) const {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(g.shape() == node_->data.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " does not match data shape " << ShapeToString(node_->data.shape())
      << " (op " << node_->op_name << ")";
  if (!node_->grad_defined) {
    // Clone: `g` may be shared (an upstream grad_out headed to several
    // parents) and the buffer is mutated by later contributions.
    node_->grad = g.Clone();
    node_->grad_defined = true;
  } else {
    ops::AxpyInPlace(1.0f, g, &node_->grad);
  }
}

void Variable::AccumulateGrad(Tensor&& g) const {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK(g.shape() == node_->data.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " does not match data shape " << ShapeToString(node_->data.shape())
      << " (op " << node_->op_name << ")";
  if (!node_->grad_defined) {
    // Adopting the temp (instead of cloning it) is part of the optimized
    // training hot path, so it rides the FusedKernels toggle: with the
    // toggle off this degrades to the clone-always pre-optimization
    // behavior, which keeps in-process baseline benchmarking honest.
    if (FusedKernels::IsEnabled()) {
      node_->grad = std::move(g);
    } else {
      node_->grad = g.Clone();
    }
    node_->grad_defined = true;
  } else {
    ops::AxpyInPlace(1.0f, g, &node_->grad);
  }
}

void Variable::Backward() {
  ENHANCENET_CHECK(defined());
  ENHANCENET_CHECK_EQ(node_->data.numel(), 1)
      << "Backward() requires a scalar output";

  // Iterative post-order DFS to get a topological order of the graph.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed d self / d self = 1.
  AccumulateGrad(Tensor::Ones(node_->data.shape()));

  // Reverse topological order: every node's grad is complete before its
  // backward_fn fires (all of a node's consumers fire earlier in the sweep).
  // That same ordering makes eager release safe: once a node's backward_fn
  // has run, nothing later in the sweep reads its grad or its closure, so
  // both can be dropped immediately — the closure's captured aux tensors
  // (saved activations, masks) are the bulk of backward-pass memory. Data
  // tensors and leaf grads are user-visible and always kept.
  const bool release = EagerBackwardRelease::IsEnabled();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad_defined) {
      node->backward_fn(node->grad);
    }
    if (release && !node->is_leaf) {
      node->grad = Tensor();
      node->grad_defined = false;
      node->backward_fn = nullptr;
    }
  }

  // What the finished graph still pins: every node's data plus whatever
  // gradients remain (all of them in keep-everything mode, leaves only under
  // eager release).
  int64_t live_bytes = 0;
  for (Node* node : topo) {
    live_bytes += node->data.numel() * static_cast<int64_t>(sizeof(float));
    if (node->grad_defined) {
      live_bytes += node->grad.numel() * static_cast<int64_t>(sizeof(float));
    }
  }
  static obs::Gauge* live_gauge =
      obs::Registry::Global().GetGauge("autograd.graph.live_bytes");
  live_gauge->Set(live_bytes);
}

Variable Variable::Detach() const {
  ENHANCENET_CHECK(defined());
  return Variable::Leaf(node_->data, /*requires_grad=*/false);
}

}  // namespace autograd
}  // namespace enhancenet
