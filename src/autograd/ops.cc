#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "runtime/context.h"
#include "runtime/parallel.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace autograd {
namespace {

bool AnyRequiresGrad(const std::vector<Variable>& inputs) {
  for (const Variable& v : inputs) {
    if (v.requires_grad()) return true;
  }
  return false;
}

/// True when the op producing an output of `v` must record a graph edge:
/// gradient recording is enabled on this thread and `v` participates in
/// differentiation. Ops use this to skip computing backward-only auxiliary
/// tensors (masks, signs) during no-grad inference.
bool Records(const Variable& v) {
  return GradMode::IsEnabled() && v.requires_grad();
}

/// Builds the result variable for an op. If gradient recording is disabled
/// on this thread (NoGradGuard) or no input requires grad, the result is a
/// detached constant and `backward` is dropped without ever being converted
/// to a std::function (no Node, no closure allocation, no graph growth).
/// Otherwise the closure is stored and the parents are linked for the
/// topological sweep.
template <typename BackwardFn>
Variable MakeResult(Tensor out, const char* op_name,
                    std::vector<Variable> inputs, BackwardFn&& backward) {
  if (!GradMode::IsEnabled() || !AnyRequiresGrad(inputs)) {
    return Variable::Leaf(std::move(out), /*requires_grad=*/false);
  }
  auto node = std::make_shared<Node>();
  node->data = std::move(out);
  node->requires_grad = true;
  node->is_leaf = false;
  node->op_name = op_name;
  node->parents.reserve(inputs.size());
  for (const Variable& v : inputs) node->parents.push_back(v.node());
  node->backward_fn = std::forward<BackwardFn>(backward);
  return Variable::FromNode(std::move(node));
}

/// Accumulates `g` into `v` only when it participates in differentiation.
void MaybeAccumulate(Variable v, const Tensor& g) {
  if (v.requires_grad()) v.AccumulateGrad(g);
}

/// Rvalue form: a freshly computed gradient temp is adopted as the grad
/// buffer instead of being deep-cloned. Only for tensors with private
/// storage — never the upstream grad_out, which fans out to siblings.
void MaybeAccumulate(Variable v, Tensor&& g) {
  if (v.requires_grad()) v.AccumulateGrad(std::move(g));
}

/// Reduces a broadcast gradient back to the operand's shape and accumulates.
void AccumulateBroadcast(Variable v, const Tensor& g) {
  if (!v.requires_grad()) return;
  if (g.shape() == v.shape()) {
    v.AccumulateGrad(g);
  } else {
    v.AccumulateGrad(ops::ReduceToShape(g, v.shape()));
  }
}

/// Rvalue form; same private-storage contract as MaybeAccumulate above.
void AccumulateBroadcast(Variable v, Tensor&& g) {
  if (!v.requires_grad()) return;
  if (g.shape() == v.shape()) {
    v.AccumulateGrad(std::move(g));
  } else {
    v.AccumulateGrad(ops::ReduceToShape(g, v.shape()));
  }
}

/// Expands `g` (with `axis` kept as size 1) back to `full` by broadcasting.
Tensor ExpandAlong(const Tensor& g, const Shape& full) {
  return ops::Add(Tensor::Zeros(full), g);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = ops::Add(a.data(), b.data());
  return MakeResult(std::move(out), "add", {a, b},
                    [a, b](const Tensor& g) {
                      AccumulateBroadcast(a, g);
                      AccumulateBroadcast(b, g);
                    });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = ops::Sub(a.data(), b.data());
  return MakeResult(std::move(out), "sub", {a, b},
                    [a, b](const Tensor& g) {
                      AccumulateBroadcast(a, g);
                      AccumulateBroadcast(b, ops::Neg(g));
                    });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = ops::Mul(a.data(), b.data());
  return MakeResult(std::move(out), "mul", {a, b},
                    [a, b](const Tensor& g) {
                      AccumulateBroadcast(a, ops::Mul(g, b.data()));
                      AccumulateBroadcast(b, ops::Mul(g, a.data()));
                    });
}

Variable Neg(const Variable& v) {
  return MakeResult(ops::Neg(v.data()), "neg", {v}, [v](const Tensor& g) {
    MaybeAccumulate(v, ops::Neg(g));
  });
}

Variable Abs(const Variable& v) {
  Tensor sign = Records(v) ? ops::Sign(v.data()) : Tensor();
  return MakeResult(ops::Abs(v.data()), "abs", {v},
                    [v, sign](const Tensor& g) {
                      MaybeAccumulate(v, ops::Mul(g, sign));
                    });
}

Variable Sigmoid(const Variable& v) {
  Tensor y = ops::Sigmoid(v.data());
  return MakeResult(y, "sigmoid", {v}, [v, y](const Tensor& g) {
    // dy/dx = y (1 - y)
    Tensor one_minus = ops::AddScalar(ops::Neg(y), 1.0f);
    MaybeAccumulate(v, ops::Mul(g, ops::Mul(y, one_minus)));
  });
}

Variable Tanh(const Variable& v) {
  Tensor y = ops::Tanh(v.data());
  return MakeResult(y, "tanh", {v}, [v, y](const Tensor& g) {
    // dy/dx = 1 - y^2
    Tensor d = ops::AddScalar(ops::Neg(ops::Square(y)), 1.0f);
    MaybeAccumulate(v, ops::Mul(g, d));
  });
}

Variable Relu(const Variable& v) {
  Tensor mask = Records(v) ? ops::ReluMask(v.data()) : Tensor();
  return MakeResult(ops::Relu(v.data()), "relu", {v},
                    [v, mask](const Tensor& g) {
                      MaybeAccumulate(v, ops::Mul(g, mask));
                    });
}

Variable Exp(const Variable& v) {
  Tensor y = ops::Exp(v.data());
  return MakeResult(y, "exp", {v}, [v, y](const Tensor& g) {
    MaybeAccumulate(v, ops::Mul(g, y));
  });
}

Variable Log(const Variable& v) {
  Tensor x = v.data();
  return MakeResult(ops::Log(x), "log", {v}, [v, x](const Tensor& g) {
    MaybeAccumulate(v, ops::Div(g, x));
  });
}

Variable Sqrt(const Variable& v) {
  Tensor y = ops::Sqrt(v.data());
  return MakeResult(y, "sqrt", {v}, [v, y](const Tensor& g) {
    // dy/dx = 0.5 / y
    MaybeAccumulate(v, ops::Div(ops::MulScalar(g, 0.5f), y));
  });
}

Variable Square(const Variable& v) {
  Tensor x = v.data();
  return MakeResult(ops::Square(x), "square", {v}, [v, x](const Tensor& g) {
    MaybeAccumulate(v, ops::Mul(g, ops::MulScalar(x, 2.0f)));
  });
}

Variable AddScalar(const Variable& v, float s) {
  return MakeResult(ops::AddScalar(v.data(), s), "add_scalar", {v},
                    [v](const Tensor& g) { MaybeAccumulate(v, g); });
}

Variable MulScalar(const Variable& v, float s) {
  return MakeResult(ops::MulScalar(v.data(), s), "mul_scalar", {v},
                    [v, s](const Tensor& g) {
                      MaybeAccumulate(v, ops::MulScalar(g, s));
                    });
}

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = ops::MatMul(a.data(), b.data());
  return MakeResult(std::move(out), "matmul", {a, b},
                    [a, b](const Tensor& g) {
                      if (a.requires_grad()) {
                        a.AccumulateGrad(ops::Gemm(g, b.data(), false, true));
                      }
                      if (b.requires_grad()) {
                        b.AccumulateGrad(ops::Gemm(a.data(), g, true, false));
                      }
                    });
}

Variable MatMulBias(const Variable& a, const Variable& b,
                    const Variable& bias) {
  Tensor out = ops::Gemm(a.data(), b.data(), /*trans_a=*/false,
                         /*trans_b=*/false, ops::GemmEpilogue::kBias,
                         &bias.data());
  return MakeResult(std::move(out), "matmul_bias", {a, b, bias},
                    [a, b, bias](const Tensor& g) {
                      if (a.requires_grad()) {
                        a.AccumulateGrad(ops::Gemm(g, b.data(), false, true));
                      }
                      if (b.requires_grad()) {
                        b.AccumulateGrad(ops::Gemm(a.data(), g, true, false));
                      }
                      AccumulateBroadcast(bias, g);
                    });
}

Variable BatchMatMul(const Variable& a, const Variable& b) {
  Tensor out = ops::BatchMatMul(a.data(), b.data());
  return MakeResult(std::move(out), "bmm", {a, b}, [a, b](const Tensor& g) {
    if (a.requires_grad()) {
      a.AccumulateGrad(ops::BatchGemm(g, b.data(), false, true));
    }
    if (b.requires_grad()) {
      b.AccumulateGrad(ops::BatchGemm(a.data(), g, true, false));
    }
  });
}

Variable Transpose(const Variable& v, int64_t d0, int64_t d1) {
  return MakeResult(ops::Transpose(v.data(), d0, d1), "transpose", {v},
                    [v, d0, d1](const Tensor& g) {
                      MaybeAccumulate(v, ops::Transpose(g, d0, d1));
                    });
}

Variable Reshape(const Variable& v, Shape new_shape) {
  Shape old_shape = v.shape();
  Tensor out = v.data().Reshape(std::move(new_shape)).Clone();
  return MakeResult(std::move(out), "reshape", {v},
                    [v, old_shape](const Tensor& g) {
                      MaybeAccumulate(v, g.Reshape(old_shape).Clone());
                    });
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  ENHANCENET_CHECK(!parts.empty());
  std::vector<Tensor> tensors;
  tensors.reserve(parts.size());
  for (const Variable& p : parts) tensors.push_back(p.data());
  Tensor out = ops::Concat(tensors, axis);
  const int64_t resolved_axis = axis < 0 ? axis + parts[0].data().dim() : axis;
  return MakeResult(
      std::move(out), "concat", parts,
      [parts, resolved_axis](const Tensor& g) {
        int64_t offset = 0;
        for (const Variable& p : parts) {
          const int64_t len = p.size(resolved_axis);
          if (p.requires_grad()) {
            p.AccumulateGrad(ops::Slice(g, resolved_axis, offset, len));
          }
          offset += len;
        }
      });
}

Variable Slice(const Variable& v, int64_t axis, int64_t start, int64_t length) {
  const int64_t resolved_axis = axis < 0 ? axis + v.data().dim() : axis;
  const int64_t total = v.size(resolved_axis);
  Tensor out = ops::Slice(v.data(), resolved_axis, start, length);
  return MakeResult(std::move(out), "slice", {v},
                    [v, resolved_axis, start, length, total](const Tensor& g) {
                      MaybeAccumulate(
                          v, ops::PadAxis(g, resolved_axis, start,
                                          total - start - length));
                    });
}

Variable PadAxis(const Variable& v, int64_t axis, int64_t before,
                 int64_t after) {
  const int64_t resolved_axis = axis < 0 ? axis + v.data().dim() : axis;
  const int64_t len = v.size(resolved_axis);
  Tensor out = ops::PadAxis(v.data(), resolved_axis, before, after);
  return MakeResult(std::move(out), "pad", {v},
                    [v, resolved_axis, before, len](const Tensor& g) {
                      MaybeAccumulate(
                          v, ops::Slice(g, resolved_axis, before, len));
                    });
}

Variable SumAll(const Variable& v) {
  Shape in_shape = v.shape();
  return MakeResult(ops::SumAll(v.data()), "sum_all", {v},
                    [v, in_shape](const Tensor& g) {
                      MaybeAccumulate(v, Tensor::Full(in_shape, g.item()));
                    });
}

Variable MeanAll(const Variable& v) {
  Shape in_shape = v.shape();
  const float scale = 1.0f / static_cast<float>(v.numel());
  return MakeResult(ops::MeanAll(v.data()), "mean_all", {v},
                    [v, in_shape, scale](const Tensor& g) {
                      MaybeAccumulate(v,
                                      Tensor::Full(in_shape, g.item() * scale));
                    });
}

Variable Sum(const Variable& v, int64_t axis, bool keepdim) {
  const int64_t resolved_axis = axis < 0 ? axis + v.data().dim() : axis;
  Shape in_shape = v.shape();
  Tensor out = ops::Sum(v.data(), resolved_axis, keepdim);
  return MakeResult(std::move(out), "sum", {v},
                    [v, in_shape, resolved_axis, keepdim](const Tensor& g) {
                      if (!v.requires_grad()) return;
                      Tensor gk = g;
                      if (!keepdim) {
                        Shape kshape = in_shape;
                        kshape[static_cast<size_t>(resolved_axis)] = 1;
                        gk = g.Reshape(kshape);
                      }
                      v.AccumulateGrad(ExpandAlong(gk, in_shape));
                    });
}

Variable Mean(const Variable& v, int64_t axis, bool keepdim) {
  const int64_t resolved_axis = axis < 0 ? axis + v.data().dim() : axis;
  const float scale = 1.0f / static_cast<float>(v.size(resolved_axis));
  return MulScalar(Sum(v, resolved_axis, keepdim), scale);
}

Variable SoftmaxLastDim(const Variable& v) {
  Tensor y = ops::SoftmaxLastDim(v.data());
  return MakeResult(y, "softmax", {v}, [v, y](const Tensor& g) {
    if (!v.requires_grad()) return;
    // dx = y * (g - sum(g * y, last, keepdim))
    Tensor gy = ops::Mul(g, y);
    Tensor s = ops::Sum(gy, -1, /*keepdim=*/true);
    v.AccumulateGrad(ops::Mul(y, ops::Sub(g, s)));
  });
}

namespace {

/// Same numerically-stable formula as ops::Sigmoid, so fused forwards agree
/// with the unfused Sigmoid op to the last bit on each gate value.
inline float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

/// Elementwise work below this many output elements runs inline (mirrors the
/// tensor backend's serial threshold).
constexpr int64_t kFusedSerialNumel = 16 * 1024;

int64_t RowGrain(int64_t hidden) {
  return std::max<int64_t>(1, kFusedSerialNumel / std::max<int64_t>(hidden, 1));
}

/// True when an op over these inputs must record a graph (and therefore save
/// its activations for the fused backward).
bool RecordsAny(const Variable& a, const Variable& b, const Variable& c) {
  return GradMode::IsEnabled() &&
         (a.requires_grad() || b.requires_grad() || c.requires_grad());
}

}  // namespace

Variable FusedGruCell(const Variable& gx, const Variable& gh,
                      const Variable& h) {
  const int64_t hs = h.size(-1);
  ENHANCENET_CHECK_EQ(gx.size(-1), 3 * hs);
  ENHANCENET_CHECK_EQ(gh.size(-1), 3 * hs);
  const int64_t rows = h.numel() / hs;
  ENHANCENET_CHECK_EQ(gx.numel(), rows * 3 * hs);
  ENHANCENET_CHECK_EQ(gh.numel(), rows * 3 * hs);

  const bool record = RecordsAny(gx, gh, h);
  Tensor out = Tensor::Uninitialized(h.shape());
  // Saved activations for the fused backward; never allocated in no-grad
  // mode (the same contract the unfused ops honor via Records()).
  Tensor r_saved = record ? Tensor::Uninitialized(h.shape()) : Tensor();
  Tensor u_saved = record ? Tensor::Uninitialized(h.shape()) : Tensor();
  Tensor c_saved = record ? Tensor::Uninitialized(h.shape()) : Tensor();

  {
    const float* pgx = gx.data().data();
    const float* pgh = gh.data().data();
    const float* ph = h.data().data();
    float* po = out.data();
    float* pr = record ? r_saved.data() : nullptr;
    float* pu = record ? u_saved.data() : nullptr;
    float* pc = record ? c_saved.data() : nullptr;
    ParallelFor(0, rows, RowGrain(hs), [=](int64_t r0, int64_t r1) {
      for (int64_t row = r0; row < r1; ++row) {
        const float* gxr = pgx + row * 3 * hs;
        const float* ghr = pgh + row * 3 * hs;
        const float* hr = ph + row * hs;
        float* orow = po + row * hs;
        for (int64_t k = 0; k < hs; ++k) {
          const float rv = StableSigmoid(gxr[k] + ghr[k]);
          const float uv = StableSigmoid(gxr[hs + k] + ghr[hs + k]);
          const float cv = std::tanh(gxr[2 * hs + k] + rv * ghr[2 * hs + k]);
          orow[k] = uv * hr[k] + (1.0f - uv) * cv;
          if (pr != nullptr) {
            pr[row * hs + k] = rv;
            pu[row * hs + k] = uv;
            pc[row * hs + k] = cv;
          }
        }
      }
    });
  }

  return MakeResult(
      std::move(out), "fused_gru_cell", {gx, gh, h},
      [gx, gh, h, r_saved, u_saved, c_saved, rows, hs](const Tensor& g) {
        Tensor dgx = Tensor::Uninitialized(gx.shape());
        Tensor dgh = Tensor::Uninitialized(gh.shape());
        Tensor dh = Tensor::Uninitialized(h.shape());
        const float* pg = g.data();
        const float* pr = r_saved.data();
        const float* pu = u_saved.data();
        const float* pc = c_saved.data();
        const float* ph = h.data().data();
        const float* pgh_in = gh.data().data();
        float* pdgx = dgx.data();
        float* pdgh = dgh.data();
        float* pdh = dh.data();
        ParallelFor(0, rows, RowGrain(hs), [=](int64_t r0, int64_t r1) {
          for (int64_t row = r0; row < r1; ++row) {
            const int64_t base = row * hs;
            const int64_t base3 = row * 3 * hs;
            for (int64_t k = 0; k < hs; ++k) {
              const float gv = pg[base + k];
              const float rv = pr[base + k];
              const float uv = pu[base + k];
              const float cv = pc[base + k];
              const float hv = ph[base + k];
              const float ghc = pgh_in[base3 + 2 * hs + k];
              // h' = u h + (1-u) c with c = tanh(gx_c + r gh_c),
              // r/u = σ(gx + gh slices); chain rule in one pass.
              const float dpre_c = gv * (1.0f - uv) * (1.0f - cv * cv);
              const float dpre_u =
                  gv * (hv - cv) * uv * (1.0f - uv);
              const float dpre_r = dpre_c * ghc * rv * (1.0f - rv);
              pdgx[base3 + k] = dpre_r;
              pdgx[base3 + hs + k] = dpre_u;
              pdgx[base3 + 2 * hs + k] = dpre_c;
              pdgh[base3 + k] = dpre_r;
              pdgh[base3 + hs + k] = dpre_u;
              pdgh[base3 + 2 * hs + k] = dpre_c * rv;
              pdh[base + k] = gv * uv;
            }
          }
        });
        MaybeAccumulate(gx, std::move(dgx));
        MaybeAccumulate(gh, std::move(dgh));
        MaybeAccumulate(h, std::move(dh));
      });
}

void FusedLstmCell(const Variable& gates, const Variable& c_prev,
                   Variable* h_new, Variable* c_new) {
  ENHANCENET_CHECK(h_new != nullptr && c_new != nullptr);
  const int64_t hs = c_prev.size(-1);
  ENHANCENET_CHECK_EQ(gates.size(-1), 4 * hs);
  const int64_t rows = c_prev.numel() / hs;
  ENHANCENET_CHECK_EQ(gates.numel(), rows * 4 * hs);

  const bool record = RecordsAny(gates, c_prev, c_prev);
  Tensor h_out = Tensor::Uninitialized(c_prev.shape());
  Tensor c_out = Tensor::Uninitialized(c_prev.shape());
  Tensor i_saved = record ? Tensor::Uninitialized(c_prev.shape()) : Tensor();
  Tensor f_saved = record ? Tensor::Uninitialized(c_prev.shape()) : Tensor();
  Tensor g_saved = record ? Tensor::Uninitialized(c_prev.shape()) : Tensor();
  Tensor o_saved = record ? Tensor::Uninitialized(c_prev.shape()) : Tensor();
  Tensor t_saved = record ? Tensor::Uninitialized(c_prev.shape()) : Tensor();

  {
    const float* pga = gates.data().data();
    const float* pcp = c_prev.data().data();
    float* pho = h_out.data();
    float* pco = c_out.data();
    float* pi = record ? i_saved.data() : nullptr;
    float* pf = record ? f_saved.data() : nullptr;
    float* pgg = record ? g_saved.data() : nullptr;
    float* po = record ? o_saved.data() : nullptr;
    float* pt = record ? t_saved.data() : nullptr;
    ParallelFor(0, rows, RowGrain(hs), [=](int64_t r0, int64_t r1) {
      for (int64_t row = r0; row < r1; ++row) {
        const float* garow = pga + row * 4 * hs;
        const int64_t base = row * hs;
        for (int64_t k = 0; k < hs; ++k) {
          const float iv = StableSigmoid(garow[k]);
          const float fv = StableSigmoid(garow[hs + k]);
          const float gv = std::tanh(garow[2 * hs + k]);
          const float ov = StableSigmoid(garow[3 * hs + k]);
          const float cv = fv * pcp[base + k] + iv * gv;
          const float tv = std::tanh(cv);
          pco[base + k] = cv;
          pho[base + k] = ov * tv;
          if (pi != nullptr) {
            pi[base + k] = iv;
            pf[base + k] = fv;
            pgg[base + k] = gv;
            po[base + k] = ov;
            pt[base + k] = tv;
          }
        }
      }
    });
  }

  // Two result nodes over the same parents and saved activations. Each node
  // owns the complete chain rule for its own output, so the gradients the
  // next time step sends into h' and c' both reach gates/c_prev, in any
  // order the topological sweep fires them.
  *c_new = MakeResult(
      std::move(c_out), "fused_lstm_c", {gates, c_prev},
      [gates, c_prev, i_saved, f_saved, g_saved, rows, hs](const Tensor& g) {
        Tensor dgates = Tensor::Uninitialized(gates.shape());
        Tensor dc = Tensor::Uninitialized(c_prev.shape());
        const float* pg = g.data();
        const float* pi = i_saved.data();
        const float* pf = f_saved.data();
        const float* pgg = g_saved.data();
        const float* pcp = c_prev.data().data();
        float* pdg = dgates.data();
        float* pdc = dc.data();
        ParallelFor(0, rows, RowGrain(hs), [=](int64_t r0, int64_t r1) {
          for (int64_t row = r0; row < r1; ++row) {
            const int64_t base = row * hs;
            const int64_t base4 = row * 4 * hs;
            for (int64_t k = 0; k < hs; ++k) {
              const float gc = pg[base + k];
              const float iv = pi[base + k];
              const float fv = pf[base + k];
              const float gv = pgg[base + k];
              // c' = f c_prev + i g; no o-gate term through this output.
              pdg[base4 + k] = gc * gv * iv * (1.0f - iv);
              pdg[base4 + hs + k] =
                  gc * pcp[base + k] * fv * (1.0f - fv);
              pdg[base4 + 2 * hs + k] = gc * iv * (1.0f - gv * gv);
              pdg[base4 + 3 * hs + k] = 0.0f;
              pdc[base + k] = gc * fv;
            }
          }
        });
        MaybeAccumulate(gates, std::move(dgates));
        MaybeAccumulate(c_prev, std::move(dc));
      });
  *h_new = MakeResult(
      std::move(h_out), "fused_lstm_h", {gates, c_prev},
      [gates, c_prev, i_saved, f_saved, g_saved, o_saved, t_saved, rows,
       hs](const Tensor& g) {
        Tensor dgates = Tensor::Uninitialized(gates.shape());
        Tensor dc = Tensor::Uninitialized(c_prev.shape());
        const float* pg = g.data();
        const float* pi = i_saved.data();
        const float* pf = f_saved.data();
        const float* pgg = g_saved.data();
        const float* po = o_saved.data();
        const float* pt = t_saved.data();
        const float* pcp = c_prev.data().data();
        float* pdg = dgates.data();
        float* pdc = dc.data();
        ParallelFor(0, rows, RowGrain(hs), [=](int64_t r0, int64_t r1) {
          for (int64_t row = r0; row < r1; ++row) {
            const int64_t base = row * hs;
            const int64_t base4 = row * 4 * hs;
            for (int64_t k = 0; k < hs; ++k) {
              const float gh = pg[base + k];
              const float iv = pi[base + k];
              const float fv = pf[base + k];
              const float gv = pgg[base + k];
              const float ov = po[base + k];
              const float tv = pt[base + k];
              // h' = o tanh(c'); route the tanh(c') term through the whole
              // c' = f c_prev + i g expression.
              const float dcn = gh * ov * (1.0f - tv * tv);
              pdg[base4 + k] = dcn * gv * iv * (1.0f - iv);
              pdg[base4 + hs + k] =
                  dcn * pcp[base + k] * fv * (1.0f - fv);
              pdg[base4 + 2 * hs + k] = dcn * iv * (1.0f - gv * gv);
              pdg[base4 + 3 * hs + k] = gh * tv * ov * (1.0f - ov);
              pdc[base + k] = dcn * fv;
            }
          }
        });
        MaybeAccumulate(gates, std::move(dgates));
        MaybeAccumulate(c_prev, std::move(dc));
      });
}

Variable GruCombine(const Variable& u, const Variable& h, const Variable& c) {
  ENHANCENET_CHECK(u.shape() == h.shape() && u.shape() == c.shape())
      << "GruCombine shape mismatch: " << ShapeToString(u.shape()) << " vs "
      << ShapeToString(h.shape()) << " vs " << ShapeToString(c.shape());
  const int64_t n = u.numel();

  Tensor out = Tensor::Uninitialized(u.shape());
  {
    const float* pu = u.data().data();
    const float* ph = h.data().data();
    const float* pc = c.data().data();
    float* po = out.data();
    ParallelFor(0, n, kFusedSerialNumel, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        po[i] = pu[i] * ph[i] + (1.0f - pu[i]) * pc[i];
      }
    });
  }

  return MakeResult(
      std::move(out), "gru_combine", {u, h, c},
      [u, h, c, n](const Tensor& g) {
        Tensor du = Tensor::Uninitialized(u.shape());
        Tensor dh = Tensor::Uninitialized(u.shape());
        Tensor dc = Tensor::Uninitialized(u.shape());
        const float* pg = g.data();
        const float* pu = u.data().data();
        const float* ph = h.data().data();
        const float* pc = c.data().data();
        float* pdu = du.data();
        float* pdh = dh.data();
        float* pdc = dc.data();
        ParallelFor(0, n, kFusedSerialNumel, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            pdu[i] = pg[i] * (ph[i] - pc[i]);
            pdh[i] = pg[i] * pu[i];
            pdc[i] = pg[i] * (1.0f - pu[i]);
          }
        });
        MaybeAccumulate(u, std::move(du));
        MaybeAccumulate(h, std::move(dh));
        MaybeAccumulate(c, std::move(dc));
      });
}

void FusedGruGates(const Variable& gates, const Variable& h, Variable* rh,
                   Variable* u) {
  ENHANCENET_CHECK(rh != nullptr && u != nullptr);
  const int64_t hs = h.size(-1);
  ENHANCENET_CHECK_EQ(gates.size(-1), 2 * hs);
  const int64_t rows = h.numel() / hs;
  ENHANCENET_CHECK_EQ(gates.numel(), rows * 2 * hs);

  const bool record = RecordsAny(gates, h, h);
  Tensor rh_out = Tensor::Uninitialized(h.shape());
  Tensor u_out = Tensor::Uninitialized(h.shape());
  Tensor r_saved = record ? Tensor::Uninitialized(h.shape()) : Tensor();

  {
    const float* pg = gates.data().data();
    const float* ph = h.data().data();
    float* prh = rh_out.data();
    float* pu = u_out.data();
    float* pr = record ? r_saved.data() : nullptr;
    ParallelFor(0, rows, RowGrain(hs), [=](int64_t r0, int64_t r1) {
      for (int64_t row = r0; row < r1; ++row) {
        const float* grow = pg + row * 2 * hs;
        for (int64_t k = 0; k < hs; ++k) {
          const float rv = StableSigmoid(grow[k]);
          prh[row * hs + k] = rv * ph[row * hs + k];
          pu[row * hs + k] = StableSigmoid(grow[hs + k]);
          if (pr != nullptr) pr[row * hs + k] = rv;
        }
      }
    });
  }

  // u's value is its own node data; keep a storage-sharing handle for the
  // backward (node data is never mutated, so the alias is read-only).
  Tensor u_saved = record ? u_out : Tensor();

  *rh = MakeResult(
      std::move(rh_out), "fused_gru_rh", {gates, h},
      [gates, h, r_saved, rows, hs](const Tensor& g) {
        Tensor dgates = Tensor::Uninitialized(gates.shape());
        Tensor dh = Tensor::Uninitialized(h.shape());
        const float* pg = g.data();
        const float* pr = r_saved.data();
        const float* ph = h.data().data();
        float* pdg = dgates.data();
        float* pdh = dh.data();
        ParallelFor(0, rows, RowGrain(hs), [=](int64_t r0, int64_t r1) {
          for (int64_t row = r0; row < r1; ++row) {
            const int64_t base = row * hs;
            const int64_t base2 = row * 2 * hs;
            for (int64_t k = 0; k < hs; ++k) {
              const float gv = pg[base + k];
              const float rv = pr[base + k];
              // rh = σ(gates_r) ⊙ h; the u half owes nothing to this output.
              pdg[base2 + k] = gv * ph[base + k] * rv * (1.0f - rv);
              pdg[base2 + hs + k] = 0.0f;
              pdh[base + k] = gv * rv;
            }
          }
        });
        MaybeAccumulate(gates, std::move(dgates));
        MaybeAccumulate(h, std::move(dh));
      });
  *u = MakeResult(
      std::move(u_out), "fused_gru_u", {gates},
      [gates, u_saved, rows, hs](const Tensor& g) {
        Tensor dgates = Tensor::Uninitialized(gates.shape());
        const float* pg = g.data();
        const float* pu = u_saved.data();
        float* pdg = dgates.data();
        ParallelFor(0, rows, RowGrain(hs), [=](int64_t r0, int64_t r1) {
          for (int64_t row = r0; row < r1; ++row) {
            const int64_t base = row * hs;
            const int64_t base2 = row * 2 * hs;
            for (int64_t k = 0; k < hs; ++k) {
              const float uv = pu[base + k];
              pdg[base2 + k] = 0.0f;
              pdg[base2 + hs + k] = pg[base + k] * uv * (1.0f - uv);
            }
          }
        });
        MaybeAccumulate(gates, std::move(dgates));
      });
}

Variable AdjacencyMatMul(const Variable& adj, const Variable& x) {
  ENHANCENET_CHECK_EQ(adj.data().dim(), 2);
  ENHANCENET_CHECK_EQ(x.data().dim(), 3);
  const int64_t batch = x.size(0);
  const int64_t n = x.size(1);
  const int64_t channels = x.size(2);
  ENHANCENET_CHECK_EQ(adj.size(0), n);
  ENHANCENET_CHECK_EQ(adj.size(1), n);

  Tensor out = Tensor::Uninitialized(x.shape());
  {
    const float* pa = adj.data().data();
    const float* px = x.data().data();
    float* po = out.data();
    ParallelFor(0, batch * n, RowGrain(channels), [=](int64_t r0, int64_t r1) {
      for (int64_t row = r0; row < r1; ++row) {
        const int64_t b = row / n;
        const int64_t i = row % n;
        float* orow = po + row * channels;
        std::fill(orow, orow + channels, 0.0f);
        const float* arow = pa + i * n;
        const float* xb = px + b * n * channels;
        for (int64_t j = 0; j < n; ++j) {
          const float a = arow[j];
          if (a == 0.0f) continue;  // diffusion supports are often sparse
          const float* xrow = xb + j * channels;
          for (int64_t c = 0; c < channels; ++c) orow[c] += a * xrow[c];
        }
      }
    });
  }

  return MakeResult(
      std::move(out), "adj_matmul", {adj, x},
      [adj, x, batch, n, channels](const Tensor& g) {
        const float* pg = g.data();
        const float* pa = adj.data().data();
        const float* px = x.data().data();
        if (x.requires_grad()) {
          // dx[b,j,:] = Σ_i adj[i,j] · g[b,i,:]  (Aᵀ applied in-layout).
          Tensor dx = Tensor::Uninitialized(x.shape());
          float* pdx = dx.data();
          ParallelFor(0, batch * n, RowGrain(channels),
                      [=](int64_t r0, int64_t r1) {
                        for (int64_t row = r0; row < r1; ++row) {
                          const int64_t b = row / n;
                          const int64_t j = row % n;
                          float* drow = pdx + row * channels;
                          std::fill(drow, drow + channels, 0.0f);
                          const float* gb = pg + b * n * channels;
                          for (int64_t i = 0; i < n; ++i) {
                            const float a = pa[i * n + j];
                            if (a == 0.0f) continue;
                            const float* grow = gb + i * channels;
                            for (int64_t c = 0; c < channels; ++c) {
                              drow[c] += a * grow[c];
                            }
                          }
                        }
                      });
          MaybeAccumulate(x, std::move(dx));
        }
        if (adj.requires_grad()) {
          // dA[i,j] = Σ_b Σ_c g[b,i,c] · x[b,j,c].
          Tensor da = Tensor::Uninitialized(adj.shape());
          float* pda = da.data();
          ParallelFor(0, n, RowGrain(n), [=](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
              for (int64_t j = 0; j < n; ++j) {
                float s = 0.0f;
                for (int64_t b = 0; b < batch; ++b) {
                  const float* grow = pg + (b * n + i) * channels;
                  const float* xrow = px + (b * n + j) * channels;
                  for (int64_t c = 0; c < channels; ++c) {
                    s += grow[c] * xrow[c];
                  }
                }
                pda[i * n + j] = s;
              }
            }
          });
          MaybeAccumulate(adj, std::move(da));
        }
      });
}

namespace {

/// int32 index storage caps the entry count (not the entity count) — far
/// beyond any plan the allocator could hold, but CHECKed for honesty.
constexpr int64_t kMaxInt32Index =
    static_cast<int64_t>(std::numeric_limits<int32_t>::max());

/// Storage for sparse-attention results: allocator-backed when the graph is
/// recorded (the tensors outlive the op as node data / saved activations),
/// Workspace-backed on the no-grad serving path so every step reuses the
/// same arena blocks.
Tensor SparseStage(bool record, Shape shape) {
  if (record) return Tensor::Uninitialized(std::move(shape));
  runtime::Workspace& ws = runtime::RuntimeContext::Current().workspace();
  const int64_t numel = NumElements(shape);
  return Tensor::WithStorage(ws.Acquire(numel), std::move(shape));
}

/// A Workspace-staged temporary that dies at the end of the op's forward
/// pass (used in recorded mode too — nothing retains it).
Tensor WorkspaceTemp(Shape shape) {
  runtime::Workspace& ws = runtime::RuntimeContext::Current().workspace();
  const int64_t numel = NumElements(shape);
  return Tensor::WithStorage(ws.Acquire(numel), std::move(shape));
}

void BuildSparseTransposeImpl(SparseIndex* index) {
  const int64_t rows = index->batch * index->n;
  const int64_t n = index->n;
  const int64_t nnz = index->nnz;
  index->t_row_offsets = AcquireIndexArray(rows + 1);
  index->t_perm = AcquireIndexArray(nnz);
  const int32_t* pc = index->cols.data();
  const int32_t* po = index->row_offsets.data();
  int32_t* pto = index->t_row_offsets.data();
  int32_t* ptp = index->t_perm.data();
  // Deterministic counting sort over the entries, O(nnz) and serial: count
  // entries per target column, prefix-sum into offsets, then append entries
  // in their natural (source-row ascending) order. Transposed rows therefore
  // list their entries sorted by source row, independent of thread count.
  std::fill(pto, pto + rows + 1, 0);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t batch_base = (r / n) * n;
    const int64_t e0 = po[r];
    const int64_t e1 = po[r + 1];
    for (int64_t e = e0; e < e1; ++e) {
      pto[batch_base + pc[e] + 1] += 1;
    }
  }
  for (int64_t r = 0; r < rows; ++r) pto[r + 1] += pto[r];
  IntArray cursor = AcquireIndexArray(rows);
  int32_t* pcur = cursor.data();
  std::copy(pto, pto + rows, pcur);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t batch_base = (r / n) * n;
    const int64_t e0 = po[r];
    const int64_t e1 = po[r + 1];
    for (int64_t e = e0; e < e1; ++e) {
      const int64_t tr = batch_base + pc[e];
      ptp[pcur[tr]] = static_cast<int32_t>(e);
      pcur[tr] += 1;
    }
  }
}

/// Entries per row of a uniform-degree pattern.
int64_t SparseDegree(const SparseIndex& index) {
  return index.nnz / (index.batch * index.n);
}

/// y[b,i,:] = Σ_{e in CSR row (b,i)} values[e] · x[b, cols[e], :].
void SparseApplyCsr(const SparseIndex& idx, const float* pv, const float* px,
                    int64_t channels, float* po) {
  const int64_t n = idx.n;
  const int32_t* pc = idx.cols.data();
  const int32_t* poff = idx.row_offsets.data();
  ParallelFor(0, idx.batch * n, RowGrain(channels),
              [=](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int64_t b = r / n;
                  float* orow = po + r * channels;
                  std::fill(orow, orow + channels, 0.0f);
                  const float* xb = px + b * n * channels;
                  const int64_t e0 = poff[r];
                  const int64_t e1 = poff[r + 1];
                  for (int64_t e = e0; e < e1; ++e) {
                    const float a = pv[e];
                    const float* xrow = xb + pc[e] * channels;
                    for (int64_t c = 0; c < channels; ++c) {
                      orow[c] += a * xrow[c];
                    }
                  }
                }
              });
}

/// y[b,j,:] = Σ_{e with cols[e]==j} values[e] · x[b, row(e), :] — the
/// transposed apply, driven by the CSC half so each output row is owned by
/// one chunk (gather, never scatter).
void SparseApplyCsc(const SparseIndex& idx, const float* pv, const float* px,
                    int64_t channels, float* po) {
  const int64_t n = idx.n;
  const int64_t kk = SparseDegree(idx);
  const int32_t* ptoff = idx.t_row_offsets.data();
  const int32_t* ptp = idx.t_perm.data();
  ParallelFor(0, idx.batch * n, RowGrain(channels),
              [=](int64_t r0, int64_t r1) {
                for (int64_t tr = r0; tr < r1; ++tr) {
                  const int64_t b = tr / n;
                  float* orow = po + tr * channels;
                  std::fill(orow, orow + channels, 0.0f);
                  const float* xb = px + b * n * channels;
                  const int64_t w0 = ptoff[tr];
                  const int64_t w1 = ptoff[tr + 1];
                  for (int64_t w = w0; w < w1; ++w) {
                    const int64_t e = ptp[w];
                    const int64_t src_row = e / kk;  // uniform degree
                    const float* xrow =
                        xb + (src_row % n) * channels;
                    const float a = pv[e];
                    for (int64_t c = 0; c < channels; ++c) {
                      orow[c] += a * xrow[c];
                    }
                  }
                }
              });
}

/// dvalues[e] = Σ_c g[b, out_row(e), c] · x[b, in_row(e), c], where for the
/// plain apply out=CSR row / in=column and for the transposed apply the two
/// swap. Parallel over CSR rows: every entry is owned by exactly one chunk.
void SparseValueGrad(const SparseIndex& idx, bool transpose_adj,
                     const float* pg, const float* px, int64_t channels,
                     float* pdv) {
  const int64_t n = idx.n;
  const int32_t* pc = idx.cols.data();
  const int32_t* poff = idx.row_offsets.data();
  ParallelFor(0, idx.batch * n, RowGrain(channels),
              [=](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int64_t b = r / n;
                  const int64_t i = r % n;
                  const float* gb = pg + b * n * channels;
                  const float* xb = px + b * n * channels;
                  const int64_t e0 = poff[r];
                  const int64_t e1 = poff[r + 1];
                  for (int64_t e = e0; e < e1; ++e) {
                    const int64_t j = pc[e];
                    const float* grow =
                        gb + (transpose_adj ? j : i) * channels;
                    const float* xrow =
                        xb + (transpose_adj ? i : j) * channels;
                    float s = 0.0f;
                    for (int64_t c = 0; c < channels; ++c) {
                      s += grow[c] * xrow[c];
                    }
                    pdv[e] = s;
                  }
                }
              });
}

}  // namespace

IntArray AcquireIndexArray(int64_t numel) {
  ENHANCENET_CHECK_GE(numel, 0);
  ENHANCENET_CHECK_LE(numel, kMaxInt32Index);
  // Always workspace-backed (recorded or not): index arrays are rebuilt every
  // step, and the deleter parks safely even after the owning context retires.
  runtime::Workspace& ws = runtime::RuntimeContext::Current().workspace();
  IntArray out;
  out.storage = ws.AcquireInts(numel);
  out.numel = numel;
  return out;
}

void BuildSparseTranspose(SparseIndex* index) {
  ENHANCENET_CHECK(index != nullptr);
  ENHANCENET_CHECK_GT(index->nnz, 0);
  BuildSparseTransposeImpl(index);
}

Variable AttentionProbs(const Variable& e_src, const Variable& e_dst) {
  const Tensor& src = e_src.data();
  const Tensor& dst = e_dst.data();
  ENHANCENET_CHECK_EQ(src.dim(), 3);
  ENHANCENET_CHECK(dst.shape() == src.shape());
  const int64_t batch = src.size(0);
  const int64_t n = src.size(1);
  const int64_t e = src.size(2);
  const bool record = GradMode::IsEnabled() &&
                      (e_src.requires_grad() || e_dst.requires_grad());
  Tensor probs;
  {
    Tensor dst_t = WorkspaceTemp({batch, e, n});
    ops::TransposeInto(dst, 1, 2, &dst_t);
    Tensor scores = WorkspaceTemp({batch, n, n});
    ops::BatchMatMulInto(src, dst_t, &scores);
    probs = SparseStage(record, {batch, n, n});
    ops::SoftmaxLastDimInto(scores, &probs);
  }
  Tensor y = probs;  // alias saved for the backward pass
  return MakeResult(
      std::move(probs), "attention_probs", {e_src, e_dst},
      [e_src, e_dst, y](const Tensor& g) {
        // dscores = y ⊙ (g − Σ_last g⊙y); chain through scores = src·dstᵀ.
        Tensor gy = ops::Mul(g, y);
        Tensor s = ops::Sum(gy, -1, /*keepdim=*/true);
        Tensor dscores = ops::Mul(y, ops::Sub(g, s));
        if (e_src.requires_grad()) {
          MaybeAccumulate(e_src, ops::BatchMatMul(dscores, e_dst.data()));
        }
        if (e_dst.requires_grad()) {
          MaybeAccumulate(e_dst, ops::BatchGemm(dscores, e_src.data(),
                                                /*trans_a=*/true,
                                                /*trans_b=*/false));
        }
      });
}

Variable TopKAttention(const Variable& e_src, const Variable& e_dst, int64_t k,
                       SparseIndex* index) {
  ENHANCENET_CHECK(index != nullptr);
  const Tensor& src = e_src.data();
  const Tensor& dst = e_dst.data();
  ENHANCENET_CHECK_EQ(src.dim(), 3);
  ENHANCENET_CHECK(dst.shape() == src.shape());
  ENHANCENET_CHECK_GE(k, 1);
  const int64_t batch = src.size(0);
  const int64_t n = src.size(1);
  const int64_t e = src.size(2);
  const int64_t kk = std::min(k, n);
  const int64_t rows = batch * n;
  const int64_t nnz = rows * kk;
  ENHANCENET_CHECK_LT(nnz, kMaxInt32Index)
      << "sparse adjacency too large for int32 indices";
  const bool record = GradMode::IsEnabled() &&
                      (e_src.requires_grad() || e_dst.requires_grad());
  Tensor values;
  {
    Tensor dst_t = WorkspaceTemp({batch, e, n});
    ops::TransposeInto(dst, 1, 2, &dst_t);
    Tensor scores = WorkspaceTemp({batch, n, n});
    ops::BatchMatMulInto(src, dst_t, &scores);

    values = SparseStage(record, {batch, n, kk});
    index->cols = AcquireIndexArray(nnz);
    index->row_offsets = AcquireIndexArray(rows + 1);
    index->batch = batch;
    index->n = n;
    index->nnz = nnz;

    const float* ps = scores.data();
    float* pv = values.data();
    int32_t* pc = index->cols.data();
    ParallelFor(0, rows, RowGrain(n), [=](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* srow = ps + r * n;
        float* vrow = pv + r * kk;
        int32_t* crow = pc + r * kk;
        // Row-local selection: keep a kk-sized working set in the output
        // buffers and replace its minimum on a strictly greater score. The
        // strict compare keeps the earliest (lowest) column among ties.
        int64_t mn = 0;
        for (int64_t j = 0; j < kk; ++j) {
          vrow[j] = srow[j];
          crow[j] = static_cast<int32_t>(j);
          if (srow[j] < vrow[mn]) mn = j;
        }
        for (int64_t j = kk; j < n; ++j) {
          if (srow[j] > vrow[mn]) {
            vrow[mn] = srow[j];
            crow[mn] = static_cast<int32_t>(j);
            mn = 0;
            for (int64_t s = 1; s < kk; ++s) {
              if (vrow[s] < vrow[mn]) mn = s;
            }
          }
        }
        // Store selected columns ascending (insertion sort over kk entries)
        // so a k >= N row reproduces the dense softmax order bitwise.
        for (int64_t s = 1; s < kk; ++s) {
          const int32_t cv = crow[s];
          const float vv = vrow[s];
          int64_t t = s - 1;
          while (t >= 0 && crow[t] > cv) {
            crow[t + 1] = crow[t];
            vrow[t + 1] = vrow[t];
            --t;
          }
          crow[t + 1] = cv;
          vrow[t + 1] = vv;
        }
        // Stable softmax over the selected raw scores — identical to the
        // dense row's probabilities restricted to the selection and
        // renormalized. Fully-masked rows fall back to uniform (the same
        // guard ops::SoftmaxLastDim applies).
        float mx = vrow[0];
        for (int64_t s = 1; s < kk; ++s) mx = std::max(mx, vrow[s]);
        if (mx == -std::numeric_limits<float>::infinity()) {
          const float uniform = 1.0f / static_cast<float>(kk);
          for (int64_t s = 0; s < kk; ++s) vrow[s] = uniform;
          continue;
        }
        double denom = 0.0;
        for (int64_t s = 0; s < kk; ++s) {
          vrow[s] = std::exp(vrow[s] - mx);
          denom += vrow[s];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int64_t s = 0; s < kk; ++s) vrow[s] *= inv;
      }
    });
    int32_t* po = index->row_offsets.data();
    for (int64_t r = 0; r <= rows; ++r) {
      po[r] = static_cast<int32_t>(r * kk);
    }
    BuildSparseTransposeImpl(index);
  }
  SparseIndex idx = *index;  // shared-handle copy for the closure
  Tensor y = values;
  return MakeResult(
      values, "topk_attention", {e_src, e_dst},
      [e_src, e_dst, idx, y, batch, n, e, kk](const Tensor& g) {
        const int64_t rows = batch * n;
        const float* pg = g.data();
        const float* py = y.data();
        const int32_t* pc = idx.cols.data();
        // Softmax backward restricted to the selected entries (the selection
        // itself is piecewise constant, so unselected scores get zero grad).
        Tensor dsel = Tensor::Uninitialized({batch, n, kk});
        float* pd = dsel.data();
        ParallelFor(0, rows, RowGrain(kk), [=](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float* grow = pg + r * kk;
            const float* yrow = py + r * kk;
            float* drow = pd + r * kk;
            float dot = 0.0f;
            for (int64_t s = 0; s < kk; ++s) dot += grow[s] * yrow[s];
            for (int64_t s = 0; s < kk; ++s) {
              drow[s] = yrow[s] * (grow[s] - dot);
            }
          }
        });
        if (e_src.requires_grad()) {
          // de_src[b,i,:] = Σ_s dsel[b,i,s] · e_dst[b, cols[b,i,s], :].
          Tensor de_src = Tensor::Uninitialized(e_src.shape());
          const float* pdst = e_dst.data().data();
          float* pds = de_src.data();
          ParallelFor(0, rows, RowGrain(e), [=](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              const int64_t b = r / n;
              float* orow = pds + r * e;
              std::fill(orow, orow + e, 0.0f);
              const float* dstb = pdst + b * n * e;
              for (int64_t s = 0; s < kk; ++s) {
                const float d = pd[r * kk + s];
                const float* drow = dstb + pc[r * kk + s] * e;
                for (int64_t c = 0; c < e; ++c) orow[c] += d * drow[c];
              }
            }
          });
          MaybeAccumulate(e_src, std::move(de_src));
        }
        if (e_dst.requires_grad()) {
          // de_dst[b,j,:] = Σ_{entries with col j} dsel[e]·e_src[b,row(e),:]
          // — gathered through the CSC half, one output row per chunk.
          Tensor de_dst = Tensor::Uninitialized(e_dst.shape());
          const float* psrc = e_src.data().data();
          const int32_t* ptoff = idx.t_row_offsets.data();
          const int32_t* ptp = idx.t_perm.data();
          float* pdd = de_dst.data();
          ParallelFor(0, rows, RowGrain(e), [=](int64_t r0, int64_t r1) {
            for (int64_t tr = r0; tr < r1; ++tr) {
              const int64_t b = tr / n;
              float* orow = pdd + tr * e;
              std::fill(orow, orow + e, 0.0f);
              const float* srcb = psrc + b * n * e;
              const int64_t w0 = ptoff[tr];
              const int64_t w1 = ptoff[tr + 1];
              for (int64_t w = w0; w < w1; ++w) {
                const int64_t entry = ptp[w];
                const float d = pd[entry];
                const float* srow = srcb + ((entry / kk) % n) * e;
                for (int64_t c = 0; c < e; ++c) orow[c] += d * srow[c];
              }
            }
          });
          MaybeAccumulate(e_dst, std::move(de_dst));
        }
      });
}

Variable SparseAdjacencyMatMul(const Variable& values, const SparseIndex& index,
                               const Variable& x, bool transpose_adj) {
  const Tensor& xt = x.data();
  ENHANCENET_CHECK_EQ(xt.dim(), 3);
  ENHANCENET_CHECK_EQ(xt.size(0), index.batch);
  ENHANCENET_CHECK_EQ(xt.size(1), index.n);
  ENHANCENET_CHECK_EQ(values.numel(), index.nnz);
  ENHANCENET_CHECK_EQ(index.t_perm.numel, index.nnz)
      << "SparseAdjacencyMatMul needs the transpose half of the index";
  const int64_t channels = xt.size(2);

  Tensor out = Tensor::Uninitialized(xt.shape());
  if (transpose_adj) {
    SparseApplyCsc(index, values.data().data(), xt.data(), channels,
                   out.data());
  } else {
    SparseApplyCsr(index, values.data().data(), xt.data(), channels,
                   out.data());
  }

  SparseIndex idx = index;  // shared-handle copy for the closure
  return MakeResult(
      std::move(out), "sparse_adj_matmul", {values, x},
      [values, x, idx, transpose_adj, channels](const Tensor& g) {
        if (values.requires_grad()) {
          Tensor dv = Tensor::Uninitialized(values.shape());
          SparseValueGrad(idx, transpose_adj, g.data(), x.data().data(),
                          channels, dv.data());
          MaybeAccumulate(values, std::move(dv));
        }
        if (x.requires_grad()) {
          // dx = Aᵀ·g for the plain apply, A·g for the transposed one.
          Tensor dx = Tensor::Uninitialized(x.shape());
          if (transpose_adj) {
            SparseApplyCsr(idx, values.data().data(), g.data(), channels,
                           dx.data());
          } else {
            SparseApplyCsc(idx, values.data().data(), g.data(), channels,
                           dx.data());
          }
          MaybeAccumulate(x, std::move(dx));
        }
      });
}

namespace {

/// Resolved shapes of a fused gated conv call, shared by the two variants.
struct GatedConvDims {
  int64_t batch, n, t_in, c_in, t_out, half;
};

/// Gathers the K dilated tap windows of x [B,N,T,C] into the stacked GEMM
/// operand: row (pair, t) holds taps k = 0..K-1 side by side,
///   S[pair, t, k·C + c] = x[b, i, t + k·dilation − pad_left, c]
/// (zero outside [0,T)). `by_entity` selects the pair ordering: false packs
/// rows as (b·N + i) — matching x's own layout, for the shared-filter 2-D
/// GEMM — true as (i·B + b), grouping each entity's rows contiguously for
/// the per-entity BatchGemm. Pure per-pair gather: each (b, i) pair's rows
/// are written entirely by the chunk that owns the pair.
void GatherTapWindows(const float* px, int64_t batch, int64_t n_entities,
                      int64_t t_in, int64_t c_in, int64_t t_out,
                      int64_t kernel, int64_t dilation, int64_t pad_left,
                      bool by_entity, float* ps) {
  const int64_t kc = kernel * c_in;
  ParallelFor(
      0, batch * n_entities, RowGrain(t_out * kc),
      [=](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          const int64_t b = by_entity ? p % batch : p / n_entities;
          const int64_t i = by_entity ? p / batch : p % n_entities;
          const float* src = px + (b * n_entities + i) * t_in * c_in;
          float* dst = ps + p * t_out * kc;
          for (int64_t t = 0; t < t_out; ++t) {
            float* drow = dst + t * kc;
            for (int64_t k = 0; k < kernel; ++k) {
              const int64_t ts = t + k * dilation - pad_left;
              if (ts >= 0 && ts < t_in) {
                std::copy(src + ts * c_in, src + (ts + 1) * c_in,
                          drow + k * c_in);
              } else {
                std::fill(drow + k * c_in, drow + (k + 1) * c_in, 0.0f);
              }
            }
          }
        }
      });
}

/// Transpose of GatherTapWindows for the backward pass: accumulates the
/// stacked-operand gradient dS back onto dx. Parallel over dx's own (b, i)
/// pairs — every dx row is owned by one chunk, and within it taps accumulate
/// in ascending (t, k) order, so the scatter is bitwise thread-invariant.
void ScatterTapWindows(const float* pds, int64_t batch, int64_t n_entities,
                       int64_t t_in, int64_t c_in, int64_t t_out,
                       int64_t kernel, int64_t dilation, int64_t pad_left,
                       bool by_entity, float* pdx) {
  const int64_t kc = kernel * c_in;
  ParallelFor(
      0, batch * n_entities, RowGrain(t_in * c_in),
      [=](int64_t q0, int64_t q1) {
        for (int64_t q = q0; q < q1; ++q) {
          const int64_t b = q / n_entities;
          const int64_t i = q % n_entities;
          const int64_t p = by_entity ? i * batch + b : q;
          const float* srow = pds + p * t_out * kc;
          float* dxrow = pdx + q * t_in * c_in;
          std::fill(dxrow, dxrow + t_in * c_in, 0.0f);
          for (int64_t t = 0; t < t_out; ++t) {
            for (int64_t k = 0; k < kernel; ++k) {
              const int64_t ts = t + k * dilation - pad_left;
              if (ts < 0 || ts >= t_in) continue;
              const float* s = srow + t * kc + k * c_in;
              float* d = dxrow + ts * c_in;
              for (int64_t c = 0; c < c_in; ++c) d[c] += s[c];
            }
          }
        }
      });
}

/// Single-pass gate backward: from upstream grad g [rows, C'] and the saved
/// biased pre-activations [rows, 2C'], recomputes the gate values and emits
/// the pre-activation gradient [rows, 2C']. With s_f/s_g the two halves and
/// σ' = σ(s_g)(1−σ(s_g)):
///   tanh⊙σ:  d s_f = g · σ(s_g) · (1 − tanh²(s_f)),  d s_g = g · tanh(s_f) · σ'
///   GLU:     d s_f = g · σ(s_g),                      d s_g = g · s_f · σ'
void GatedConvBackwardRows(ops::GemmEpilogue gate, const float* pg,
                           const float* ppre, int64_t rows, int64_t half,
                           float* pdpre) {
  const bool glu = gate == ops::GemmEpilogue::kBiasGlu;
  ParallelFor(0, rows, RowGrain(2 * half), [=](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* grow = pg + r * half;
      const float* prow = ppre + r * 2 * half;
      float* drow = pdpre + r * 2 * half;
      for (int64_t j = 0; j < half; ++j) {
        const float sf = prow[j];
        const float sg = prow[half + j];
        const float gatev = StableSigmoid(sg);
        const float gv = grow[j];
        float fval;
        if (glu) {
          drow[j] = gv * gatev;
          fval = sf;
        } else {
          const float tf = std::tanh(sf);
          drow[j] = gv * (1.0f - tf * tf) * gatev;
          fval = tf;
        }
        drow[half + j] = gv * fval * gatev * (1.0f - gatev);
      }
    }
  });
}

/// Shape checks shared by the two fused gated conv variants.
GatedConvDims CheckGatedConvDims(const Variable& x, int64_t kernel,
                                 int64_t dilation, int64_t pad_left,
                                 int64_t two_cp, ops::GemmEpilogue gate) {
  ENHANCENET_CHECK(ops::IsGatedEpilogue(gate))
      << "FusedGatedConv needs a gated epilogue";
  ENHANCENET_CHECK_EQ(x.data().dim(), 4);
  ENHANCENET_CHECK(kernel >= 1 && dilation >= 1 && pad_left >= 0);
  ENHANCENET_CHECK_EQ(two_cp % 2, 0);
  GatedConvDims d;
  d.batch = x.size(0);
  d.n = x.size(1);
  d.t_in = x.size(2);
  d.c_in = x.size(3);
  d.t_out = d.t_in + pad_left - dilation * (kernel - 1);
  ENHANCENET_CHECK_GE(d.t_out, 1)
      << "gated conv receptive field " << dilation * (kernel - 1) + 1
      << " exceeds padded input length " << d.t_in + pad_left;
  d.half = two_cp / 2;
  return d;
}

}  // namespace

Variable FusedGatedConv(const Variable& x, const Variable& weight,
                        const Variable& bias, int64_t kernel, int64_t dilation,
                        int64_t pad_left, ops::GemmEpilogue gate) {
  ENHANCENET_CHECK_EQ(weight.data().dim(), 2);
  ENHANCENET_CHECK_EQ(bias.data().dim(), 1);
  const int64_t two_cp = weight.size(1);
  ENHANCENET_CHECK_EQ(bias.size(0), two_cp);
  const GatedConvDims d =
      CheckGatedConvDims(x, kernel, dilation, pad_left, two_cp, gate);
  const int64_t kc = kernel * d.c_in;
  ENHANCENET_CHECK_EQ(weight.size(0), kc)
      << "FusedGatedConv weight rows must be kernel*channels";
  const int64_t rows = d.batch * d.n * d.t_out;

  const bool record = RecordsAny(x, weight, bias);
  // The biased pre-activations are the only saved activation — allocator-
  // backed when recorded (the backward closure outlives the forward),
  // Workspace-backed otherwise.
  Tensor preact = SparseStage(record, {rows, two_cp});
  Tensor z;
  {
    Tensor stacked = WorkspaceTemp({rows, kc});
    GatherTapWindows(x.data().data(), d.batch, d.n, d.t_in, d.c_in, d.t_out,
                     kernel, dilation, pad_left, /*by_entity=*/false,
                     stacked.data());
    z = ops::Gemm(stacked, weight.data(), /*trans_a=*/false,
                  /*trans_b=*/false, gate, &bias.data(), &preact);
  }

  return MakeResult(
      z.Reshape({d.batch, d.n, d.t_out, d.half}), "fused_gated_conv",
      {x, weight, bias},
      [x, weight, bias, preact, gate, kernel, dilation, pad_left, d, kc,
       rows](const Tensor& g) {
        const int64_t two_cp = 2 * d.half;
        Tensor dpre = WorkspaceTemp({rows, two_cp});
        GatedConvBackwardRows(gate, g.data(), preact.data(), rows, d.half,
                              dpre.data());
        if (weight.requires_grad()) {
          Tensor stacked = WorkspaceTemp({rows, kc});
          GatherTapWindows(x.data().data(), d.batch, d.n, d.t_in, d.c_in,
                           d.t_out, kernel, dilation, pad_left,
                           /*by_entity=*/false, stacked.data());
          MaybeAccumulate(weight, ops::Gemm(stacked, dpre, /*trans_a=*/true,
                                            /*trans_b=*/false));
        }
        if (bias.requires_grad()) {
          MaybeAccumulate(bias, ops::ReduceToShape(dpre, bias.shape()));
        }
        if (x.requires_grad()) {
          const Tensor ds = ops::Gemm(dpre, weight.data(), /*trans_a=*/false,
                                      /*trans_b=*/true);
          Tensor dx = Tensor::Uninitialized(x.shape());
          ScatterTapWindows(ds.data(), d.batch, d.n, d.t_in, d.c_in, d.t_out,
                            kernel, dilation, pad_left, /*by_entity=*/false,
                            dx.data());
          MaybeAccumulate(x, std::move(dx));
        }
      });
}

namespace {

/// z_e [N, B·T', C'] (entity-major) <-> out [B, N, T', C'] permutation;
/// each (b, i) pair moves one contiguous T'·C' block, parallel over pairs.
void UnfoldEntityRows(const float* pz, int64_t batch, int64_t n_entities,
                      int64_t block, float* po) {
  ParallelFor(0, batch * n_entities, RowGrain(block),
              [=](int64_t q0, int64_t q1) {
                for (int64_t q = q0; q < q1; ++q) {
                  const int64_t b = q / n_entities;
                  const int64_t i = q % n_entities;
                  const float* src = pz + (i * batch + b) * block;
                  std::copy(src, src + block, po + q * block);
                }
              });
}

/// Inverse of UnfoldEntityRows: regroups [B, N, T', C'] by entity.
void FoldEntityRows(const float* po, int64_t batch, int64_t n_entities,
                    int64_t block, float* pz) {
  ParallelFor(0, batch * n_entities, RowGrain(block),
              [=](int64_t p0, int64_t p1) {
                for (int64_t p = p0; p < p1; ++p) {
                  const int64_t i = p / batch;
                  const int64_t b = p % batch;
                  const float* src = po + (b * n_entities + i) * block;
                  std::copy(src, src + block, pz + p * block);
                }
              });
}

}  // namespace

Variable FusedGatedConvPerEntity(const Variable& x, const Variable& filters,
                                 const Variable& bias, int64_t kernel,
                                 int64_t dilation, int64_t pad_left,
                                 ops::GemmEpilogue gate) {
  ENHANCENET_CHECK_EQ(filters.data().dim(), 2);
  ENHANCENET_CHECK_EQ(bias.data().dim(), 1);
  const int64_t two_cp = bias.size(0);
  const GatedConvDims d =
      CheckGatedConvDims(x, kernel, dilation, pad_left, two_cp, gate);
  const int64_t kc = kernel * d.c_in;
  ENHANCENET_CHECK_EQ(filters.size(0), d.n);
  ENHANCENET_CHECK_EQ(filters.size(1), kc * two_cp)
      << "FusedGatedConvPerEntity filters must be [N, K*C*2C']";
  const int64_t erows = d.batch * d.t_out;  // rows per entity slice
  const int64_t rows = d.n * erows;

  const bool record = RecordsAny(x, filters, bias);
  // Dfgn::Generate emits tap-major, input-channel-minor flat filters, which
  // is exactly the [N, K·C, 2C'] stacked layout — a zero-copy view.
  const Tensor w_view = filters.data().Reshape({d.n, kc, two_cp});
  Tensor preact = SparseStage(record, {d.n, erows, two_cp});
  Tensor out = Tensor::Uninitialized({d.batch, d.n, d.t_out, d.half});
  {
    Tensor stacked = WorkspaceTemp({d.n, erows, kc});
    GatherTapWindows(x.data().data(), d.batch, d.n, d.t_in, d.c_in, d.t_out,
                     kernel, dilation, pad_left, /*by_entity=*/true,
                     stacked.data());
    const Tensor z_e =
        ops::BatchGemm(stacked, w_view, /*trans_a=*/false, /*trans_b=*/false,
                       gate, &bias.data(), &preact);
    UnfoldEntityRows(z_e.data(), d.batch, d.n, d.t_out * d.half, out.data());
  }

  return MakeResult(
      std::move(out), "fused_gated_conv_entity", {x, filters, bias},
      [x, filters, bias, preact, gate, kernel, dilation, pad_left, d, kc,
       erows, rows](const Tensor& g) {
        const int64_t two_cp = 2 * d.half;
        const Tensor w_view = filters.data().Reshape({d.n, kc, two_cp});
        Tensor g_e = WorkspaceTemp({d.n, erows, d.half});
        FoldEntityRows(g.data(), d.batch, d.n, d.t_out * d.half, g_e.data());
        Tensor dpre = WorkspaceTemp({d.n, erows, two_cp});
        GatedConvBackwardRows(gate, g_e.data(), preact.data(), rows, d.half,
                              dpre.data());
        if (filters.requires_grad()) {
          Tensor stacked = WorkspaceTemp({d.n, erows, kc});
          GatherTapWindows(x.data().data(), d.batch, d.n, d.t_in, d.c_in,
                           d.t_out, kernel, dilation, pad_left,
                           /*by_entity=*/true, stacked.data());
          Tensor dw = ops::BatchGemm(stacked, dpre, /*trans_a=*/true,
                                     /*trans_b=*/false);
          MaybeAccumulate(filters, dw.Reshape(filters.shape()));
        }
        if (bias.requires_grad()) {
          MaybeAccumulate(bias, ops::ReduceToShape(dpre, bias.shape()));
        }
        if (x.requires_grad()) {
          const Tensor ds = ops::BatchGemm(dpre, w_view, /*trans_a=*/false,
                                           /*trans_b=*/true);
          Tensor dx = Tensor::Uninitialized(x.shape());
          ScatterTapWindows(ds.data(), d.batch, d.n, d.t_in, d.c_in, d.t_out,
                            kernel, dilation, pad_left, /*by_entity=*/true,
                            dx.data());
          MaybeAccumulate(x, std::move(dx));
        }
      });
}

Variable Dropout(const Variable& v, float p, bool training, Rng& rng) {
  ENHANCENET_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
  if (!training || p == 0.0f) return v;
  Tensor mask(v.shape());
  const float keep_scale = 1.0f / (1.0f - p);
  float* m = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = (rng.Uniform() < p) ? 0.0f : keep_scale;
  }
  Tensor out = ops::Mul(v.data(), mask);
  return MakeResult(std::move(out), "dropout", {v},
                    [v, mask](const Tensor& g) {
                      MaybeAccumulate(v, ops::Mul(g, mask));
                    });
}

}  // namespace autograd
}  // namespace enhancenet
