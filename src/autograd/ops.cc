#include "autograd/ops.h"

#include <utility>

#include "autograd/grad_mode.h"
#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace autograd {
namespace {

bool AnyRequiresGrad(const std::vector<Variable>& inputs) {
  for (const Variable& v : inputs) {
    if (v.requires_grad()) return true;
  }
  return false;
}

/// True when the op producing an output of `v` must record a graph edge:
/// gradient recording is enabled on this thread and `v` participates in
/// differentiation. Ops use this to skip computing backward-only auxiliary
/// tensors (masks, signs) during no-grad inference.
bool Records(const Variable& v) {
  return GradMode::IsEnabled() && v.requires_grad();
}

/// Builds the result variable for an op. If gradient recording is disabled
/// on this thread (NoGradGuard) or no input requires grad, the result is a
/// detached constant and `backward` is dropped without ever being converted
/// to a std::function (no Node, no closure allocation, no graph growth).
/// Otherwise the closure is stored and the parents are linked for the
/// topological sweep.
template <typename BackwardFn>
Variable MakeResult(Tensor out, const char* op_name,
                    std::vector<Variable> inputs, BackwardFn&& backward) {
  if (!GradMode::IsEnabled() || !AnyRequiresGrad(inputs)) {
    return Variable::Leaf(std::move(out), /*requires_grad=*/false);
  }
  auto node = std::make_shared<Node>();
  node->data = std::move(out);
  node->requires_grad = true;
  node->is_leaf = false;
  node->op_name = op_name;
  node->parents.reserve(inputs.size());
  for (const Variable& v : inputs) node->parents.push_back(v.node());
  node->backward_fn = std::forward<BackwardFn>(backward);
  return Variable::FromNode(std::move(node));
}

/// Accumulates `g` into `v` only when it participates in differentiation.
void MaybeAccumulate(Variable v, const Tensor& g) {
  if (v.requires_grad()) v.AccumulateGrad(g);
}

/// Reduces a broadcast gradient back to the operand's shape and accumulates.
void AccumulateBroadcast(Variable v, const Tensor& g) {
  if (!v.requires_grad()) return;
  if (g.shape() == v.shape()) {
    v.AccumulateGrad(g);
  } else {
    v.AccumulateGrad(ops::ReduceToShape(g, v.shape()));
  }
}

/// Expands `g` (with `axis` kept as size 1) back to `full` by broadcasting.
Tensor ExpandAlong(const Tensor& g, const Shape& full) {
  return ops::Add(Tensor::Zeros(full), g);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = ops::Add(a.data(), b.data());
  return MakeResult(std::move(out), "add", {a, b},
                    [a, b](const Tensor& g) {
                      AccumulateBroadcast(a, g);
                      AccumulateBroadcast(b, g);
                    });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = ops::Sub(a.data(), b.data());
  return MakeResult(std::move(out), "sub", {a, b},
                    [a, b](const Tensor& g) {
                      AccumulateBroadcast(a, g);
                      AccumulateBroadcast(b, ops::Neg(g));
                    });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = ops::Mul(a.data(), b.data());
  return MakeResult(std::move(out), "mul", {a, b},
                    [a, b](const Tensor& g) {
                      AccumulateBroadcast(a, ops::Mul(g, b.data()));
                      AccumulateBroadcast(b, ops::Mul(g, a.data()));
                    });
}

Variable Neg(const Variable& v) {
  return MakeResult(ops::Neg(v.data()), "neg", {v}, [v](const Tensor& g) {
    MaybeAccumulate(v, ops::Neg(g));
  });
}

Variable Abs(const Variable& v) {
  Tensor sign = Records(v) ? ops::Sign(v.data()) : Tensor();
  return MakeResult(ops::Abs(v.data()), "abs", {v},
                    [v, sign](const Tensor& g) {
                      MaybeAccumulate(v, ops::Mul(g, sign));
                    });
}

Variable Sigmoid(const Variable& v) {
  Tensor y = ops::Sigmoid(v.data());
  return MakeResult(y, "sigmoid", {v}, [v, y](const Tensor& g) {
    // dy/dx = y (1 - y)
    Tensor one_minus = ops::AddScalar(ops::Neg(y), 1.0f);
    MaybeAccumulate(v, ops::Mul(g, ops::Mul(y, one_minus)));
  });
}

Variable Tanh(const Variable& v) {
  Tensor y = ops::Tanh(v.data());
  return MakeResult(y, "tanh", {v}, [v, y](const Tensor& g) {
    // dy/dx = 1 - y^2
    Tensor d = ops::AddScalar(ops::Neg(ops::Square(y)), 1.0f);
    MaybeAccumulate(v, ops::Mul(g, d));
  });
}

Variable Relu(const Variable& v) {
  Tensor mask = Records(v) ? ops::ReluMask(v.data()) : Tensor();
  return MakeResult(ops::Relu(v.data()), "relu", {v},
                    [v, mask](const Tensor& g) {
                      MaybeAccumulate(v, ops::Mul(g, mask));
                    });
}

Variable Exp(const Variable& v) {
  Tensor y = ops::Exp(v.data());
  return MakeResult(y, "exp", {v}, [v, y](const Tensor& g) {
    MaybeAccumulate(v, ops::Mul(g, y));
  });
}

Variable Log(const Variable& v) {
  Tensor x = v.data();
  return MakeResult(ops::Log(x), "log", {v}, [v, x](const Tensor& g) {
    MaybeAccumulate(v, ops::Div(g, x));
  });
}

Variable Sqrt(const Variable& v) {
  Tensor y = ops::Sqrt(v.data());
  return MakeResult(y, "sqrt", {v}, [v, y](const Tensor& g) {
    // dy/dx = 0.5 / y
    MaybeAccumulate(v, ops::Div(ops::MulScalar(g, 0.5f), y));
  });
}

Variable Square(const Variable& v) {
  Tensor x = v.data();
  return MakeResult(ops::Square(x), "square", {v}, [v, x](const Tensor& g) {
    MaybeAccumulate(v, ops::Mul(g, ops::MulScalar(x, 2.0f)));
  });
}

Variable AddScalar(const Variable& v, float s) {
  return MakeResult(ops::AddScalar(v.data(), s), "add_scalar", {v},
                    [v](const Tensor& g) { MaybeAccumulate(v, g); });
}

Variable MulScalar(const Variable& v, float s) {
  return MakeResult(ops::MulScalar(v.data(), s), "mul_scalar", {v},
                    [v, s](const Tensor& g) {
                      MaybeAccumulate(v, ops::MulScalar(g, s));
                    });
}

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = ops::MatMul(a.data(), b.data());
  return MakeResult(std::move(out), "matmul", {a, b},
                    [a, b](const Tensor& g) {
                      if (a.requires_grad()) {
                        a.AccumulateGrad(ops::Gemm(g, b.data(), false, true));
                      }
                      if (b.requires_grad()) {
                        b.AccumulateGrad(ops::Gemm(a.data(), g, true, false));
                      }
                    });
}

Variable BatchMatMul(const Variable& a, const Variable& b) {
  Tensor out = ops::BatchMatMul(a.data(), b.data());
  return MakeResult(std::move(out), "bmm", {a, b}, [a, b](const Tensor& g) {
    if (a.requires_grad()) {
      a.AccumulateGrad(ops::BatchGemm(g, b.data(), false, true));
    }
    if (b.requires_grad()) {
      b.AccumulateGrad(ops::BatchGemm(a.data(), g, true, false));
    }
  });
}

Variable Transpose(const Variable& v, int64_t d0, int64_t d1) {
  return MakeResult(ops::Transpose(v.data(), d0, d1), "transpose", {v},
                    [v, d0, d1](const Tensor& g) {
                      MaybeAccumulate(v, ops::Transpose(g, d0, d1));
                    });
}

Variable Reshape(const Variable& v, Shape new_shape) {
  Shape old_shape = v.shape();
  Tensor out = v.data().Reshape(std::move(new_shape)).Clone();
  return MakeResult(std::move(out), "reshape", {v},
                    [v, old_shape](const Tensor& g) {
                      MaybeAccumulate(v, g.Reshape(old_shape).Clone());
                    });
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  ENHANCENET_CHECK(!parts.empty());
  std::vector<Tensor> tensors;
  tensors.reserve(parts.size());
  for (const Variable& p : parts) tensors.push_back(p.data());
  Tensor out = ops::Concat(tensors, axis);
  const int64_t resolved_axis = axis < 0 ? axis + parts[0].data().dim() : axis;
  return MakeResult(
      std::move(out), "concat", parts,
      [parts, resolved_axis](const Tensor& g) {
        int64_t offset = 0;
        for (const Variable& p : parts) {
          const int64_t len = p.size(resolved_axis);
          if (p.requires_grad()) {
            p.AccumulateGrad(ops::Slice(g, resolved_axis, offset, len));
          }
          offset += len;
        }
      });
}

Variable Slice(const Variable& v, int64_t axis, int64_t start, int64_t length) {
  const int64_t resolved_axis = axis < 0 ? axis + v.data().dim() : axis;
  const int64_t total = v.size(resolved_axis);
  Tensor out = ops::Slice(v.data(), resolved_axis, start, length);
  return MakeResult(std::move(out), "slice", {v},
                    [v, resolved_axis, start, length, total](const Tensor& g) {
                      MaybeAccumulate(
                          v, ops::PadAxis(g, resolved_axis, start,
                                          total - start - length));
                    });
}

Variable PadAxis(const Variable& v, int64_t axis, int64_t before,
                 int64_t after) {
  const int64_t resolved_axis = axis < 0 ? axis + v.data().dim() : axis;
  const int64_t len = v.size(resolved_axis);
  Tensor out = ops::PadAxis(v.data(), resolved_axis, before, after);
  return MakeResult(std::move(out), "pad", {v},
                    [v, resolved_axis, before, len](const Tensor& g) {
                      MaybeAccumulate(
                          v, ops::Slice(g, resolved_axis, before, len));
                    });
}

Variable SumAll(const Variable& v) {
  Shape in_shape = v.shape();
  return MakeResult(ops::SumAll(v.data()), "sum_all", {v},
                    [v, in_shape](const Tensor& g) {
                      MaybeAccumulate(v, Tensor::Full(in_shape, g.item()));
                    });
}

Variable MeanAll(const Variable& v) {
  Shape in_shape = v.shape();
  const float scale = 1.0f / static_cast<float>(v.numel());
  return MakeResult(ops::MeanAll(v.data()), "mean_all", {v},
                    [v, in_shape, scale](const Tensor& g) {
                      MaybeAccumulate(v,
                                      Tensor::Full(in_shape, g.item() * scale));
                    });
}

Variable Sum(const Variable& v, int64_t axis, bool keepdim) {
  const int64_t resolved_axis = axis < 0 ? axis + v.data().dim() : axis;
  Shape in_shape = v.shape();
  Tensor out = ops::Sum(v.data(), resolved_axis, keepdim);
  return MakeResult(std::move(out), "sum", {v},
                    [v, in_shape, resolved_axis, keepdim](const Tensor& g) {
                      if (!v.requires_grad()) return;
                      Tensor gk = g;
                      if (!keepdim) {
                        Shape kshape = in_shape;
                        kshape[static_cast<size_t>(resolved_axis)] = 1;
                        gk = g.Reshape(kshape);
                      }
                      v.AccumulateGrad(ExpandAlong(gk, in_shape));
                    });
}

Variable Mean(const Variable& v, int64_t axis, bool keepdim) {
  const int64_t resolved_axis = axis < 0 ? axis + v.data().dim() : axis;
  const float scale = 1.0f / static_cast<float>(v.size(resolved_axis));
  return MulScalar(Sum(v, resolved_axis, keepdim), scale);
}

Variable SoftmaxLastDim(const Variable& v) {
  Tensor y = ops::SoftmaxLastDim(v.data());
  return MakeResult(y, "softmax", {v}, [v, y](const Tensor& g) {
    if (!v.requires_grad()) return;
    // dx = y * (g - sum(g * y, last, keepdim))
    Tensor gy = ops::Mul(g, y);
    Tensor s = ops::Sum(gy, -1, /*keepdim=*/true);
    v.AccumulateGrad(ops::Mul(y, ops::Sub(g, s)));
  });
}

Variable Dropout(const Variable& v, float p, bool training, Rng& rng) {
  ENHANCENET_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
  if (!training || p == 0.0f) return v;
  Tensor mask(v.shape());
  const float keep_scale = 1.0f / (1.0f - p);
  float* m = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = (rng.Uniform() < p) ? 0.0f : keep_scale;
  }
  Tensor out = ops::Mul(v.data(), mask);
  return MakeResult(std::move(out), "dropout", {v},
                    [v, mask](const Tensor& g) {
                      MaybeAccumulate(v, ops::Mul(g, mask));
                    });
}

}  // namespace autograd
}  // namespace enhancenet
