#ifndef ENHANCENET_AUTOGRAD_OPS_H_
#define ENHANCENET_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"

namespace enhancenet {
namespace autograd {

// Differentiable operations on Variables. Each returns a new Variable; if no
// input requires a gradient, the result is a detached leaf (no graph is
// recorded). Shapes follow the semantics of the corresponding kernels in
// tensor/tensor_ops.h.

// --- elementwise binary (broadcasting) -------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);

// --- elementwise unary -------------------------------------------------------
Variable Neg(const Variable& v);
Variable Abs(const Variable& v);
Variable Sigmoid(const Variable& v);
Variable Tanh(const Variable& v);
Variable Relu(const Variable& v);
Variable Exp(const Variable& v);
Variable Log(const Variable& v);
Variable Sqrt(const Variable& v);
Variable Square(const Variable& v);

// --- scalar ------------------------------------------------------------------
Variable AddScalar(const Variable& v, float s);
Variable MulScalar(const Variable& v, float s);

// --- linear algebra ----------------------------------------------------------
/// C[M,N] = A[M,K] * B[K,N].
Variable MatMul(const Variable& a, const Variable& b);
/// C[B,M,N] = A[B,M,K] * B[B,K,N].
Variable BatchMatMul(const Variable& a, const Variable& b);

// --- movement ----------------------------------------------------------------
Variable Transpose(const Variable& v, int64_t d0, int64_t d1);
Variable Reshape(const Variable& v, Shape new_shape);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Slice(const Variable& v, int64_t axis, int64_t start, int64_t length);
Variable PadAxis(const Variable& v, int64_t axis, int64_t before,
                 int64_t after);

// --- reductions / normalization ----------------------------------------------
Variable SumAll(const Variable& v);
Variable MeanAll(const Variable& v);
Variable Sum(const Variable& v, int64_t axis, bool keepdim);
Variable Mean(const Variable& v, int64_t axis, bool keepdim);
Variable SoftmaxLastDim(const Variable& v);

// --- regularization ----------------------------------------------------------
/// Inverted dropout: zeroes elements with probability p and scales the rest
/// by 1/(1-p). Identity when !training or p == 0.
Variable Dropout(const Variable& v, float p, bool training, Rng& rng);

}  // namespace autograd
}  // namespace enhancenet

#endif  // ENHANCENET_AUTOGRAD_OPS_H_
