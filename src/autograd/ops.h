#ifndef ENHANCENET_AUTOGRAD_OPS_H_
#define ENHANCENET_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"

namespace enhancenet {
namespace autograd {

// Differentiable operations on Variables. Each returns a new Variable; if no
// input requires a gradient, the result is a detached leaf (no graph is
// recorded). Shapes follow the semantics of the corresponding kernels in
// tensor/tensor_ops.h.

// --- elementwise binary (broadcasting) -------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);

// --- elementwise unary -------------------------------------------------------
Variable Neg(const Variable& v);
Variable Abs(const Variable& v);
Variable Sigmoid(const Variable& v);
Variable Tanh(const Variable& v);
Variable Relu(const Variable& v);
Variable Exp(const Variable& v);
Variable Log(const Variable& v);
Variable Sqrt(const Variable& v);
Variable Square(const Variable& v);

// --- scalar ------------------------------------------------------------------
Variable AddScalar(const Variable& v, float s);
Variable MulScalar(const Variable& v, float s);

// --- linear algebra ----------------------------------------------------------
/// C[M,N] = A[M,K] * B[K,N].
Variable MatMul(const Variable& a, const Variable& b);
/// C[B,M,N] = A[B,M,K] * B[B,K,N].
Variable BatchMatMul(const Variable& a, const Variable& b);

// --- movement ----------------------------------------------------------------
Variable Transpose(const Variable& v, int64_t d0, int64_t d1);
Variable Reshape(const Variable& v, Shape new_shape);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Slice(const Variable& v, int64_t axis, int64_t start, int64_t length);
Variable PadAxis(const Variable& v, int64_t axis, int64_t before,
                 int64_t after);

// --- reductions / normalization ----------------------------------------------
Variable SumAll(const Variable& v);
Variable MeanAll(const Variable& v);
Variable Sum(const Variable& v, int64_t axis, bool keepdim);
Variable Mean(const Variable& v, int64_t axis, bool keepdim);
Variable SoftmaxLastDim(const Variable& v);

// --- fused recurrent-cell kernels --------------------------------------------
// Single-pass replacements for the Slice/Sigmoid/Tanh/Mul chains inside the
// recurrent cells. Each op computes its outputs in one ParallelFor sweep and
// records one graph node with a matching single-pass backward, instead of the
// ~10 tiny nodes (and their per-node output + backward-aux allocations) the
// unfused chain emits per cell step. Forward values match the unfused chain
// bitwise (same per-element arithmetic order); gradients agree to float
// rounding (the unfused graph accumulates partial grads in a different
// order). See DESIGN.md §8 for the equivalence argument.

/// Fused GRU cell tail. Inputs are the two gate GEMM outputs
///   gx = x·Wx + b  [rows, 3H] (gate order r, u, candidate)
///   gh = h·Wh      [rows, 3H]
/// and the previous hidden state h [rows, H]. Computes
///   r = σ(gx_r + gh_r),  u = σ(gx_u + gh_u),
///   c = tanh(gx_c + r ⊙ gh_c),  h' = u ⊙ h + (1-u) ⊙ c.
/// Leading dimensions may be any rank (flattened to rows); the last dim of
/// gx/gh must be exactly 3x that of h.
Variable FusedGruCell(const Variable& gx, const Variable& gh,
                      const Variable& h);

/// Fused LSTM cell tail. `gates` [rows, 4H] holds the summed pre-activations
/// in gate order i, f, g, o; `c_prev` is [rows, H]. Computes
///   i = σ(g_i), f = σ(g_f), g = tanh(g_g), o = σ(g_o),
///   c' = f ⊙ c_prev + i ⊙ g,  h' = o ⊙ tanh(c').
/// Emits two graph nodes (h', c') that share one saved-activation set; each
/// node owns the complete chain rule for its output, so gradients arriving
/// through h' and c' (both feed the next step) accumulate correctly.
void FusedLstmCell(const Variable& gates, const Variable& c_prev,
                   Variable* h_new, Variable* c_new);

/// Fused GRU state combine: u ⊙ h + (1-u) ⊙ c in one pass. Used by cells
/// whose gates come from separate graph transforms (core::EnhanceGruCell,
/// where the candidate depends on r through a second graph convolution).
/// All three inputs must share one shape.
Variable GruCombine(const Variable& u, const Variable& h, const Variable& c);

/// Fused r/u gate tail for cells whose candidate needs r before its own
/// transform (core::EnhanceGruCell): from `gates` [rows, 2H] (order r, u)
/// and h [rows, H] computes
///   r = σ(gates_r),  *rh = r ⊙ h,  *u = σ(gates_u)
/// as two graph nodes instead of the five-node Slice/Sigmoid/Mul chain.
/// r itself is not exposed — callers only consume r through rh.
void FusedGruGates(const Variable& gates, const Variable& h, Variable* rh,
                   Variable* u);

/// Fused graph-convolution mix for a 2-D adjacency: out[b,i,:] = Σ_j
/// adj[i,j] · x[b,j,:] with adj [N,N] and x [B,N,C], computed directly in
/// [B,N,C] layout. Replaces the Transpose/Reshape/MatMul/Reshape/Transpose
/// five-node chain (and its two full-tensor copies in each direction) that
/// the unfused path pays per support application.
Variable AdjacencyMatMul(const Variable& adj, const Variable& x);

// --- regularization ----------------------------------------------------------
/// Inverted dropout: zeroes elements with probability p and scales the rest
/// by 1/(1-p). Identity when !training or p == 0.
Variable Dropout(const Variable& v, float p, bool training, Rng& rng);

}  // namespace autograd
}  // namespace enhancenet

#endif  // ENHANCENET_AUTOGRAD_OPS_H_
