#ifndef ENHANCENET_AUTOGRAD_OPS_H_
#define ENHANCENET_AUTOGRAD_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace autograd {

// Differentiable operations on Variables. Each returns a new Variable; if no
// input requires a gradient, the result is a detached leaf (no graph is
// recorded). Shapes follow the semantics of the corresponding kernels in
// tensor/tensor_ops.h.

// --- elementwise binary (broadcasting) -------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);

// --- elementwise unary -------------------------------------------------------
Variable Neg(const Variable& v);
Variable Abs(const Variable& v);
Variable Sigmoid(const Variable& v);
Variable Tanh(const Variable& v);
Variable Relu(const Variable& v);
Variable Exp(const Variable& v);
Variable Log(const Variable& v);
Variable Sqrt(const Variable& v);
Variable Square(const Variable& v);

// --- scalar ------------------------------------------------------------------
Variable AddScalar(const Variable& v, float s);
Variable MulScalar(const Variable& v, float s);

// --- linear algebra ----------------------------------------------------------
/// C[M,N] = A[M,K] * B[K,N].
Variable MatMul(const Variable& a, const Variable& b);
/// C[B,M,N] = A[B,M,K] * B[B,K,N].
Variable BatchMatMul(const Variable& a, const Variable& b);
/// C[M,N] = A[M,K] * B[K,N] + bias[N], with the bias add folded into the
/// GEMM's write-back loop (ops::GemmEpilogue::kBias) instead of a separate
/// full-tensor Add pass. One graph node instead of two; forward values are
/// bitwise identical to Add(MatMul(a, b), bias) and gradients match exactly
/// (dA = g·Bᵀ, dB = Aᵀ·g, dbias = column-sum of g — the same kernels the
/// unfused pair runs). nn::Linear routes through this when FusedKernels is
/// enabled.
Variable MatMulBias(const Variable& a, const Variable& b,
                    const Variable& bias);

// --- movement ----------------------------------------------------------------
Variable Transpose(const Variable& v, int64_t d0, int64_t d1);
Variable Reshape(const Variable& v, Shape new_shape);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Slice(const Variable& v, int64_t axis, int64_t start, int64_t length);
Variable PadAxis(const Variable& v, int64_t axis, int64_t before,
                 int64_t after);

// --- reductions / normalization ----------------------------------------------
Variable SumAll(const Variable& v);
Variable MeanAll(const Variable& v);
Variable Sum(const Variable& v, int64_t axis, bool keepdim);
Variable Mean(const Variable& v, int64_t axis, bool keepdim);
Variable SoftmaxLastDim(const Variable& v);

// --- fused recurrent-cell kernels --------------------------------------------
// Single-pass replacements for the Slice/Sigmoid/Tanh/Mul chains inside the
// recurrent cells. Each op computes its outputs in one ParallelFor sweep and
// records one graph node with a matching single-pass backward, instead of the
// ~10 tiny nodes (and their per-node output + backward-aux allocations) the
// unfused chain emits per cell step. Forward values match the unfused chain
// bitwise (same per-element arithmetic order); gradients agree to float
// rounding (the unfused graph accumulates partial grads in a different
// order). See DESIGN.md §8 for the equivalence argument.

/// Fused GRU cell tail. Inputs are the two gate GEMM outputs
///   gx = x·Wx + b  [rows, 3H] (gate order r, u, candidate)
///   gh = h·Wh      [rows, 3H]
/// and the previous hidden state h [rows, H]. Computes
///   r = σ(gx_r + gh_r),  u = σ(gx_u + gh_u),
///   c = tanh(gx_c + r ⊙ gh_c),  h' = u ⊙ h + (1-u) ⊙ c.
/// Leading dimensions may be any rank (flattened to rows); the last dim of
/// gx/gh must be exactly 3x that of h.
Variable FusedGruCell(const Variable& gx, const Variable& gh,
                      const Variable& h);

/// Fused LSTM cell tail. `gates` [rows, 4H] holds the summed pre-activations
/// in gate order i, f, g, o; `c_prev` is [rows, H]. Computes
///   i = σ(g_i), f = σ(g_f), g = tanh(g_g), o = σ(g_o),
///   c' = f ⊙ c_prev + i ⊙ g,  h' = o ⊙ tanh(c').
/// Emits two graph nodes (h', c') that share one saved-activation set; each
/// node owns the complete chain rule for its output, so gradients arriving
/// through h' and c' (both feed the next step) accumulate correctly.
void FusedLstmCell(const Variable& gates, const Variable& c_prev,
                   Variable* h_new, Variable* c_new);

/// Fused GRU state combine: u ⊙ h + (1-u) ⊙ c in one pass. Used by cells
/// whose gates come from separate graph transforms (core::EnhanceGruCell,
/// where the candidate depends on r through a second graph convolution).
/// All three inputs must share one shape.
Variable GruCombine(const Variable& u, const Variable& h, const Variable& c);

/// Fused r/u gate tail for cells whose candidate needs r before its own
/// transform (core::EnhanceGruCell): from `gates` [rows, 2H] (order r, u)
/// and h [rows, H] computes
///   r = σ(gates_r),  *rh = r ⊙ h,  *u = σ(gates_u)
/// as two graph nodes instead of the five-node Slice/Sigmoid/Mul chain.
/// r itself is not exposed — callers only consume r through rh.
void FusedGruGates(const Variable& gates, const Variable& h, Variable* rh,
                   Variable* u);

// --- fused gated convolution (TCN / STGCN family) ----------------------------
// Single-node replacements for the dilated-causal-conv + gate chains of
// DESIGN.md Eq. 8. Instead of K tap GEMMs + Adds + bias Add + the
// Slice/Tanh/Sigmoid/Mul gating tail (~4K graph nodes per layer call), the K
// dilated tap windows of the input are gathered into one stacked
// [rows, K·C] operand and multiplied against the pre-concatenated tap
// weights in a single GEMM whose gated epilogue emits
//   z = tanh(f) ⊙ σ(g)   (kBiasGatedTanhSigmoid)  or
//   z = f ⊙ σ(g)         (kBiasGlu)
// directly. The stacked operand, gradient scratch, and no-grad
// pre-activations are staged through the bound RuntimeContext's Workspace;
// only the biased pre-activations are saved for the single-pass backward,
// which recomputes the gate values from them. Forward and backward
// parallelise over (batch, entity) rows — each owned by one chunk — so
// results are bitwise invariant across thread counts. See DESIGN.md §8.

/// Shared-filter fused gated conv. x is [B,N,T,C]; `weight` [K·C, 2C'] holds
/// the K tap kernels concatenated along dim 0 in tap order (tap k occupies
/// rows [k·C, (k+1)·C)); `bias` is [2C']. Tap k of output step t reads input
/// step t + k·dilation − pad_left (zero outside [0,T)), so
/// pad_left = dilation·(K−1) reproduces the causal left-padded conv and
/// pad_left = 0 the valid conv. Returns [B,N,T_out,C'] with
/// T_out = T + pad_left − dilation·(K−1). `gate` must be one of the two
/// gated epilogues.
Variable FusedGatedConv(const Variable& x, const Variable& weight,
                        const Variable& bias, int64_t kernel, int64_t dilation,
                        int64_t pad_left, ops::GemmEpilogue gate);

/// Per-entity (DFGN) fused gated conv: entity i uses its own filter bank.
/// `filters` is [N, K·C·2C'] exactly as core::Dfgn::Generate emits it
/// (k-major, input-channel-minor rows) — viewed as [N, K·C, 2C'] without a
/// copy — and the stacked taps run through one BatchGemm over entities with
/// the same gated epilogue. Shapes and semantics otherwise match
/// FusedGatedConv.
Variable FusedGatedConvPerEntity(const Variable& x, const Variable& filters,
                                 const Variable& bias, int64_t kernel,
                                 int64_t dilation, int64_t pad_left,
                                 ops::GemmEpilogue gate);

/// Fused graph-convolution mix for a 2-D adjacency: out[b,i,:] = Σ_j
/// adj[i,j] · x[b,j,:] with adj [N,N] and x [B,N,C], computed directly in
/// [B,N,C] layout. Replaces the Transpose/Reshape/MatMul/Reshape/Transpose
/// five-node chain (and its two full-tensor copies in each direction) that
/// the unfused path pays per support application.
Variable AdjacencyMatMul(const Variable& adj, const Variable& x);

// --- sparse dynamic adjacency ------------------------------------------------
// Kernels for the top-k sparsified DAMGN attention (DESIGN.md §10). A sparse
// adjacency is a CSR-style triple (row offsets, column indices, values); the
// float values ride ordinary Tensors while the integer index arrays use
// dedicated int32 storage drawn from the bound RuntimeContext's Workspace,
// so both stay allocation-free in steady state.

/// A pooled int32 index buffer. Replaces the historical float-encoded index
/// Tensors (exact only below 2^24): int32 represents every entity id and
/// entry offset a 10^6-row plan produces. Storage comes from the bound
/// context's Workspace int arena (AcquireIndexArray), so steady-state reuse
/// is exact-numel pooled like float scratch.
struct IntArray {
  std::shared_ptr<int32_t[]> storage;
  int64_t numel = 0;

  int32_t* data() { return storage.get(); }
  const int32_t* data() const { return storage.get(); }
  bool defined() const { return storage != nullptr; }
};

/// int32 storage for `numel` entries from the bound context's Workspace.
/// Contents are NOT initialized.
IntArray AcquireIndexArray(int64_t numel);

/// Shared index pattern of a CSR-style sparse adjacency, stored as int32
/// end-to-end (see IntArray above). Rows have uniform degree
/// kk = nnz/(batch·n) — row_offsets is the authoritative CSR iteration
/// bound, the uniform degree is what lets kernels map a flat entry back to
/// its source row in O(1). The transpose half (t_row_offsets / t_perm)
/// groups the same entries by target column; it is built once per pattern
/// with a deterministic counting sort so transposed applies and backward
/// passes stay bitwise-reproducible under any thread count.
struct SparseIndex {
  IntArray cols;           ///< [batch·n·kk] neighbour column of each entry
  IntArray row_offsets;    ///< [batch·n + 1] CSR row offsets
  IntArray t_row_offsets;  ///< [batch·n + 1] CSC (transpose) offsets
  IntArray t_perm;         ///< [nnz] flat entry indices grouped by column
  int64_t batch = 0;
  int64_t n = 0;
  int64_t nnz = 0;
};

/// Builds the transpose (CSC) half of `index` from cols/row_offsets.
void BuildSparseTranspose(SparseIndex* index);

/// Fused dense attention probabilities softmax(e_src·e_dstᵀ) over the last
/// dim: e_src/e_dst [B,N,e] -> [B,N,N]. The φ-transpose and raw scores are
/// staged in the bound context's Workspace in training too, so the recorded
/// graph retains only the probability tensor (the unfused chain pins both
/// full-size intermediates). Forward values are bitwise identical to the
/// unfused BatchMatMul/Transpose/SoftmaxLastDim chain; gradients agree to
/// float rounding (single-pass accumulation order differs).
Variable AttentionProbs(const Variable& e_src, const Variable& e_dst);

/// Fused top-k attention: selects, per row of the raw score matrix
/// e_src·e_dstᵀ, the k strongest neighbours (row-local selection, no full
/// sort; softmax is monotonic so selecting on raw scores equals selecting on
/// probabilities), then softmax-normalizes the selected scores. Ties break
/// toward the lowest column index and selected columns are stored ascending,
/// so at k >= N the values reproduce the dense softmax row bitwise. Fully
/// masked rows (every selected score -inf) fall back to uniform 1/kk.
/// Returns values [B,N,kk] with kk = min(k,N) and fills `*index`.
Variable TopKAttention(const Variable& e_src, const Variable& e_dst, int64_t k,
                       SparseIndex* index);

/// Sparse adjacency application y[b,i,:] = Σ_s values[b,i,s]·x[b,cols,:]
/// (transpose_adj applies the transposed adjacency via the CSC half).
/// Forward and the single-pass backward parallelise over entity rows; every
/// output row is written entirely by its owning ParallelFor chunk, so results
/// are bitwise invariant across thread counts.
Variable SparseAdjacencyMatMul(const Variable& values, const SparseIndex& index,
                               const Variable& x, bool transpose_adj = false);

// --- regularization ----------------------------------------------------------
/// Inverted dropout: zeroes elements with probability p and scales the rest
/// by 1/(1-p). Identity when !training or p == 0.
Variable Dropout(const Variable& v, float p, bool training, Rng& rng);

}  // namespace autograd
}  // namespace enhancenet

#endif  // ENHANCENET_AUTOGRAD_OPS_H_
