#ifndef ENHANCENET_AUTOGRAD_GRAD_MODE_H_
#define ENHANCENET_AUTOGRAD_GRAD_MODE_H_

namespace enhancenet {
namespace autograd {

/// Thread-local gradient-recording switch.
///
/// While recording is disabled every op in ops.h returns a detached leaf:
/// no Node is allocated, no parents are linked, no backward closure is
/// materialized, and backward-only auxiliary tensors (ReLU masks, Abs signs)
/// are never computed. Numerical outputs are bitwise identical to the
/// recording path — only the graph bookkeeping is skipped — which is what
/// lets the serving path (src/serve) promise parity with the training-time
/// eval path.
///
/// The flag is per-thread, so an inference thread running under NoGradGuard
/// never affects a trainer thread building graphs concurrently.
class GradMode {
 public:
  /// True (the default) when ops record the computation graph.
  static bool IsEnabled();
  /// Sets the calling thread's recording flag; prefer NoGradGuard.
  static void SetEnabled(bool enabled);
};

/// RAII scope that disables gradient recording on the calling thread, in the
/// spirit of torch.no_grad(). Nestable; restores the previous mode on exit.
///
///   {
///     NoGradGuard no_grad;
///     autograd::Variable y = model->Predict(x, rng);  // y is a leaf
///   }
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace autograd
}  // namespace enhancenet

#endif  // ENHANCENET_AUTOGRAD_GRAD_MODE_H_
