#ifndef ENHANCENET_AUTOGRAD_GRAD_MODE_H_
#define ENHANCENET_AUTOGRAD_GRAD_MODE_H_

namespace enhancenet {
namespace autograd {

/// Thread-local gradient-recording switch.
///
/// While recording is disabled every op in ops.h returns a detached leaf:
/// no Node is allocated, no parents are linked, no backward closure is
/// materialized, and backward-only auxiliary tensors (ReLU masks, Abs signs)
/// are never computed. Numerical outputs are bitwise identical to the
/// recording path — only the graph bookkeeping is skipped — which is what
/// lets the serving path (src/serve) promise parity with the training-time
/// eval path.
///
/// The flag is per-thread, so an inference thread running under NoGradGuard
/// never affects a trainer thread building graphs concurrently. ParallelFor
/// propagates the calling thread's flag into its pool workers, so a no-grad
/// scope stays no-grad inside parallel regions.
///
/// Facade over runtime::ThreadGradEnabled (runtime/context.h), where the
/// thread_local itself lives.
class GradMode {
 public:
  /// True (the default) when ops record the computation graph.
  static bool IsEnabled();
  /// Sets the calling thread's recording flag; prefer NoGradGuard.
  static void SetEnabled(bool enabled);
};

/// Switch (on the current RuntimeContext's exec config; contexts share the
/// default config unless built with private_exec) for the fused
/// recurrent-cell and optimizer kernels
/// (FusedGruCell / FusedLstmCell / GruCombine and the ParallelFor optimizer
/// steps), plus backward's move-adoption of freshly computed gradient temps
/// (Variable::AccumulateGrad's rvalue form). On by default;
/// `ENHANCENET_FUSED=0` or SetEnabled(false) falls back to the original
/// unfused op chains, scalar optimizer loops, and clone-always gradient
/// accumulation, which is how the training bench measures the optimization
/// win and how the equivalence tests build their reference graphs.
class FusedKernels {
 public:
  static bool IsEnabled();
  static void SetEnabled(bool enabled);
};

/// Switch (on the current RuntimeContext's exec config, like FusedKernels)
/// for eager release of backward-pass state. When on
/// (the default), Backward() drops each non-leaf node's gradient buffer and
/// backward closure — including the closure's captured activations — as soon
/// as that node has propagated to its parents, so peak memory during a long
/// rollout is bounded by the frontier of the sweep instead of the whole
/// graph. `ENHANCENET_EAGER_RELEASE=0` or SetEnabled(false) keeps the legacy
/// keep-everything behavior (used by the peak-memory test as its baseline).
/// Leaf gradients and every node's data tensor are never touched.
class EagerBackwardRelease {
 public:
  static bool IsEnabled();
  static void SetEnabled(bool enabled);
};

/// RAII scope that disables gradient recording on the calling thread, in the
/// spirit of torch.no_grad(). Nestable; restores the previous mode on exit.
///
///   {
///     NoGradGuard no_grad;
///     autograd::Variable y = model->Predict(x, rng);  // y is a leaf
///   }
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace autograd
}  // namespace enhancenet

#endif  // ENHANCENET_AUTOGRAD_GRAD_MODE_H_
