#include "autograd/grad_mode.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace enhancenet {
namespace autograd {
namespace {

thread_local bool grad_enabled = true;

std::atomic<bool>& FusedFlag() {
  static std::atomic<bool> flag = [] {
    const char* value = std::getenv("ENHANCENET_FUSED");
    return !(value != nullptr && std::strcmp(value, "0") == 0);
  }();
  return flag;
}

std::atomic<bool>& EagerReleaseFlag() {
  static std::atomic<bool> flag = [] {
    const char* value = std::getenv("ENHANCENET_EAGER_RELEASE");
    return !(value != nullptr && std::strcmp(value, "0") == 0);
  }();
  return flag;
}

}  // namespace

bool GradMode::IsEnabled() { return grad_enabled; }

void GradMode::SetEnabled(bool enabled) { grad_enabled = enabled; }

bool FusedKernels::IsEnabled() {
  return FusedFlag().load(std::memory_order_relaxed);
}

void FusedKernels::SetEnabled(bool enabled) {
  FusedFlag().store(enabled, std::memory_order_relaxed);
}

bool EagerBackwardRelease::IsEnabled() {
  return EagerReleaseFlag().load(std::memory_order_relaxed);
}

void EagerBackwardRelease::SetEnabled(bool enabled) {
  EagerReleaseFlag().store(enabled, std::memory_order_relaxed);
}

NoGradGuard::NoGradGuard() : previous_(grad_enabled) { grad_enabled = false; }

NoGradGuard::~NoGradGuard() { grad_enabled = previous_; }

}  // namespace autograd
}  // namespace enhancenet
