#include "autograd/grad_mode.h"

#include "runtime/context.h"

namespace enhancenet {
namespace autograd {

// All state lives on the runtime layer: the per-thread recording flag in
// runtime::ThreadGradEnabled (so ParallelFor can propagate it into workers
// without depending on autograd), and the fused/eager-release toggles on the
// current RuntimeContext's exec config (env-seeded once by runtime/env.cc).
// These classes are the autograd-facing facade over that state.

bool GradMode::IsEnabled() { return runtime::ThreadGradEnabled(); }

void GradMode::SetEnabled(bool enabled) {
  runtime::SetThreadGradEnabled(enabled);
}

bool FusedKernels::IsEnabled() {
  return runtime::RuntimeContext::Current().exec().fused_kernels.load(
      std::memory_order_relaxed);
}

void FusedKernels::SetEnabled(bool enabled) {
  runtime::RuntimeContext::Current().exec().fused_kernels.store(
      enabled, std::memory_order_relaxed);
}

bool EagerBackwardRelease::IsEnabled() {
  return runtime::RuntimeContext::Current().exec().eager_release.load(
      std::memory_order_relaxed);
}

void EagerBackwardRelease::SetEnabled(bool enabled) {
  runtime::RuntimeContext::Current().exec().eager_release.store(
      enabled, std::memory_order_relaxed);
}

NoGradGuard::NoGradGuard() : previous_(runtime::ThreadGradEnabled()) {
  runtime::SetThreadGradEnabled(false);
}

NoGradGuard::~NoGradGuard() { runtime::SetThreadGradEnabled(previous_); }

}  // namespace autograd
}  // namespace enhancenet
