#include "autograd/grad_mode.h"

namespace enhancenet {
namespace autograd {
namespace {

thread_local bool grad_enabled = true;

}  // namespace

bool GradMode::IsEnabled() { return grad_enabled; }

void GradMode::SetEnabled(bool enabled) { grad_enabled = enabled; }

NoGradGuard::NoGradGuard() : previous_(grad_enabled) { grad_enabled = false; }

NoGradGuard::~NoGradGuard() { grad_enabled = previous_; }

}  // namespace autograd
}  // namespace enhancenet
