#include "serve/inference_session.h"

#include <cmath>
#include <utility>

#include "autograd/grad_mode.h"
#include "common/stopwatch.h"
#include "io/checkpoint.h"

namespace enhancenet {
namespace serve {

namespace {

runtime::RuntimeContext::Options SessionContextOptions(bool private_exec) {
  runtime::RuntimeContext::Options options;
  options.private_allocator = true;
  options.private_exec = private_exec;
  return options;
}

}  // namespace

Status InferenceSession::Create(const SessionConfig& config,
                                const data::StandardScaler& scaler,
                                std::unique_ptr<InferenceSession>* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("InferenceSession::Create: out is null");
  }
  if (scaler.num_channels() != config.in_channels) {
    return Status::InvalidArgument(
        "scaler fitted on " + std::to_string(scaler.num_channels()) +
        " channels but the session config declares " +
        std::to_string(config.in_channels));
  }
  if (config.target_channel < 0 ||
      config.target_channel >= config.in_channels) {
    return Status::InvalidArgument(
        "target_channel " + std::to_string(config.target_channel) +
        " out of range [0, " + std::to_string(config.in_channels) + ")");
  }
  Rng rng(config.seed);
  std::unique_ptr<models::ForecastingModel> model;
  ENHANCENET_RETURN_IF_ERROR(models::TryMakeModel(
      config.model_name, config.num_entities, config.in_channels,
      config.adjacency, config.sizing, rng, &model));
  if (!config.checkpoint_path.empty()) {
    ENHANCENET_RETURN_IF_ERROR(
        io::LoadCheckpoint(config.checkpoint_path, model.get()));
  }
  model->SetTraining(false);
  out->reset(new InferenceSession(config, std::move(model), scaler));
  return Status::Ok();
}

InferenceSession::InferenceSession(
    SessionConfig config, std::unique_ptr<models::ForecastingModel> model,
    const data::StandardScaler& scaler)
    : config_(std::move(config)),
      model_(std::move(model)),
      scaler_(scaler),
      metrics_(ServeMetrics::Create("serve.session",
                                    /*with_occupancy=*/false)),
      context_(SessionContextOptions(config_.topk >= 0)) {
  if (config_.topk >= 0) {
    context_.exec().topk.store(config_.topk, std::memory_order_relaxed);
  }
}

Status InferenceSession::Validate(const Tensor& history) const {
  if (history.numel() == 0 || (history.dim() != 3 && history.dim() != 4)) {
    return Status::InvalidArgument(
        "history must be [N, H, C] or [B, N, H, C], got " +
        ShapeToString(history.shape()));
  }
  const int64_t offset = history.dim() == 4 ? 1 : 0;
  const int64_t n = history.size(offset);
  const int64_t h = history.size(offset + 1);
  const int64_t c = history.size(offset + 2);
  if (n != config_.num_entities || h != model_->history() ||
      c != config_.in_channels) {
    return Status::InvalidArgument(
        "history shape " + ShapeToString(history.shape()) +
        " does not match the session's model (expected N=" +
        std::to_string(config_.num_entities) +
        ", H=" + std::to_string(model_->history()) +
        ", C=" + std::to_string(config_.in_channels) + ")");
  }
  const float* p = history.data();
  for (int64_t i = 0; i < history.numel(); ++i) {
    if (!std::isfinite(p[i])) {
      return Status::InvalidArgument(
          "history contains a non-finite value at flat index " +
          std::to_string(i));
    }
  }
  return Status::Ok();
}

Tensor InferenceSession::ScaleWindow(const Tensor& history) const {
  if (history.dim() == 3) return scaler_.Transform(history);
  // [B,N,H,C]: fold batch and entity into the scaler's rank-3 contract;
  // z-scoring is per channel, so the fold does not change any element.
  const Shape shape = history.shape();
  Tensor folded = history.Reshape({shape[0] * shape[1], shape[2], shape[3]});
  return scaler_.Transform(folded).Reshape(shape);
}

Tensor InferenceSession::UnscaleForecast(const Tensor& forecast) const {
  return scaler_.InverseTarget(forecast, config_.target_channel);
}

Status InferenceSession::Predict(const PredictRequest& request,
                                 PredictResponse* response) const {
  if (response == nullptr) {
    return Status::InvalidArgument("Predict: response is null");
  }
  // Every allocation below (scaling, forward temporaries, unscaling) comes
  // from this session's private context, so concurrent sessions never meet
  // on an allocator mutex.
  runtime::RuntimeContext::Bind bind_context(context_);
  Stopwatch timer;
  const Status valid = Validate(request.history);
  if (!valid.ok()) {
    metrics_.rejected->Add();
    return valid;
  }
  const bool single = request.history.dim() == 3;
  const int64_t batch = single ? 1 : request.history.size(0);
  Tensor x = request.scaled_input ? request.history
                                  : ScaleWindow(request.history);
  if (single) {
    x = x.Reshape({1, config_.num_entities, model_->history(),
                   config_.in_channels});
  }

  Tensor pred;
  {
    // Eval-mode forward never draws from the Rng, so a throwaway local one
    // keeps Predict safely re-entrant across threads.
    autograd::NoGradGuard no_grad;
    Rng rng(config_.seed);
    pred = model_->Predict(x, rng).data();  // [B, N, F]
  }
  if (!request.scaled_output) pred = UnscaleForecast(pred);
  response->forecast =
      single ? pred.Reshape({config_.num_entities, model_->horizon()}) : pred;
  response->latency_ms = timer.ElapsedMillis();

  metrics_.windows->Add(batch);
  metrics_.forwards->Add();
  metrics_.latency_ms->Observe(response->latency_ms);
  return Status::Ok();
}

Stats InferenceSession::stats() const { return metrics_.Snapshot(); }

}  // namespace serve
}  // namespace enhancenet
