#include "serve/inference_session.h"

#include <cmath>
#include <utility>

#include "autograd/grad_mode.h"
#include "common/stopwatch.h"
#include "io/checkpoint.h"

namespace enhancenet {
namespace serve {

namespace {

runtime::RuntimeContext::Options SessionContextOptions(
    const SessionOptions& options) {
  runtime::RuntimeContext::Options o;
  // A registry-provided allocator stages the whole version pool on one
  // allocator; otherwise the session gets a private one.
  o.allocator = options.allocator;
  o.private_allocator = options.allocator == nullptr;
  o.private_exec = options.topk >= 0 || options.shards >= 0;
  return o;
}

/// Rejects a checkpoint whose metadata header names a different model or
/// sizing than the spec. Files without metadata (v1, or saved without meta)
/// fall through to the per-parameter checks in LoadCheckpoint.
Status CheckCheckpointMeta(const ModelSpec& spec) {
  io::CheckpointMeta meta;
  ENHANCENET_RETURN_IF_ERROR(
      io::ReadCheckpointMeta(spec.checkpoint_path, &meta));
  if (!meta.present) return Status::Ok();
  const auto describe = [](const std::string& name, int64_t n, int64_t c,
                           int64_t h, int64_t f) {
    return "'" + name + "' (N=" + std::to_string(n) +
           ", C=" + std::to_string(c) + ", H=" + std::to_string(h) +
           ", F=" + std::to_string(f) + ")";
  };
  if (meta.model_name != spec.model_name ||
      meta.num_entities != spec.num_entities ||
      meta.in_channels != spec.in_channels ||
      meta.history != spec.sizing.history ||
      meta.horizon != spec.sizing.horizon) {
    return Status::FailedPrecondition(
        "checkpoint " + spec.checkpoint_path + " was saved from model " +
        describe(meta.model_name, meta.num_entities, meta.in_channels,
                 meta.history, meta.horizon) +
        " but the spec declares " +
        describe(spec.model_name, spec.num_entities, spec.in_channels,
                 spec.sizing.history, spec.sizing.horizon));
  }
  return Status::Ok();
}

}  // namespace

Status InferenceSession::Create(const ModelSpec& spec,
                                const SessionOptions& options,
                                const data::StandardScaler& scaler,
                                std::unique_ptr<InferenceSession>* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("InferenceSession::Create: out is null");
  }
  if (scaler.num_channels() != spec.in_channels) {
    return Status::InvalidArgument(
        "scaler fitted on " + std::to_string(scaler.num_channels()) +
        " channels but the spec declares " +
        std::to_string(spec.in_channels));
  }
  if (spec.target_channel < 0 || spec.target_channel >= spec.in_channels) {
    return Status::InvalidArgument(
        "target_channel " + std::to_string(spec.target_channel) +
        " out of range [0, " + std::to_string(spec.in_channels) + ")");
  }
  // Metadata precheck runs before the model is even built, so a
  // misconfigured spec fails with the file's own identity instead of a
  // parameter-shape mismatch mid-load.
  if (!spec.checkpoint_path.empty()) {
    ENHANCENET_RETURN_IF_ERROR(CheckCheckpointMeta(spec));
  }
  Rng rng(options.seed);
  std::unique_ptr<models::ForecastingModel> model;
  ENHANCENET_RETURN_IF_ERROR(models::TryMakeModel(
      spec.model_name, spec.num_entities, spec.in_channels, spec.adjacency,
      spec.sizing, rng, &model));
  if (!spec.checkpoint_path.empty()) {
    ENHANCENET_RETURN_IF_ERROR(
        io::LoadCheckpoint(spec.checkpoint_path, model.get()));
  }
  model->SetTraining(false);
  out->reset(new InferenceSession(spec, options, std::move(model), scaler));
  return Status::Ok();
}

InferenceSession::InferenceSession(
    ModelSpec spec, SessionOptions options,
    std::unique_ptr<models::ForecastingModel> model,
    const data::StandardScaler& scaler)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      model_(std::move(model)),
      scaler_(scaler),
      metrics_(ServeMetrics::Create("serve.session",
                                    /*with_occupancy=*/false)),
      context_(SessionContextOptions(options_)) {
  if (options_.topk >= 0) {
    context_.exec().topk.store(options_.topk, std::memory_order_relaxed);
  }
  if (options_.shards >= 0) {
    context_.exec().shards.store(std::max(options_.shards, 1),
                                 std::memory_order_relaxed);
  }
}

Status InferenceSession::Validate(const Tensor& history) const {
  if (history.numel() == 0 || (history.dim() != 3 && history.dim() != 4)) {
    return Status::InvalidArgument(
        "history must be [N, H, C] or [B, N, H, C], got " +
        ShapeToString(history.shape()));
  }
  const int64_t offset = history.dim() == 4 ? 1 : 0;
  const int64_t n = history.size(offset);
  const int64_t h = history.size(offset + 1);
  const int64_t c = history.size(offset + 2);
  if (n != spec_.num_entities || h != model_->history() ||
      c != spec_.in_channels) {
    return Status::InvalidArgument(
        "history shape " + ShapeToString(history.shape()) +
        " does not match the session's model (expected N=" +
        std::to_string(spec_.num_entities) +
        ", H=" + std::to_string(model_->history()) +
        ", C=" + std::to_string(spec_.in_channels) + ")");
  }
  const float* p = history.data();
  for (int64_t i = 0; i < history.numel(); ++i) {
    if (!std::isfinite(p[i])) {
      return Status::InvalidArgument(
          "history contains a non-finite value at flat index " +
          std::to_string(i));
    }
  }
  return Status::Ok();
}

Tensor InferenceSession::ScaleWindow(const Tensor& history) const {
  if (history.dim() == 3) return scaler_.Transform(history);
  // [B,N,H,C]: fold batch and entity into the scaler's rank-3 contract;
  // z-scoring is per channel, so the fold does not change any element.
  const Shape shape = history.shape();
  Tensor folded = history.Reshape({shape[0] * shape[1], shape[2], shape[3]});
  return scaler_.Transform(folded).Reshape(shape);
}

Tensor InferenceSession::UnscaleForecast(const Tensor& forecast) const {
  return scaler_.InverseTarget(forecast, spec_.target_channel);
}

Status InferenceSession::Predict(const PredictRequest& request,
                                 PredictResponse* response) const {
  if (response == nullptr) {
    return Status::InvalidArgument("Predict: response is null");
  }
  // Every allocation below (scaling, forward temporaries, unscaling) comes
  // from this session's private context, so concurrent sessions never meet
  // on an allocator mutex.
  runtime::RuntimeContext::Bind bind_context(context_);
  Stopwatch timer;
  const Status valid = Validate(request.history);
  if (!valid.ok()) {
    metrics_.rejected->Add();
    return valid;
  }
  const bool single = request.history.dim() == 3;
  const int64_t batch = single ? 1 : request.history.size(0);
  Tensor x = request.scaled_input ? request.history
                                  : ScaleWindow(request.history);
  if (single) {
    x = x.Reshape({1, spec_.num_entities, model_->history(),
                   spec_.in_channels});
  }

  Tensor pred;
  {
    // Eval-mode forward never draws from the Rng, so a throwaway local one
    // keeps Predict safely re-entrant across threads.
    autograd::NoGradGuard no_grad;
    Rng rng(options_.seed);
    pred = model_->Predict(x, rng).data();  // [B, N, F]
  }
  if (!request.scaled_output) pred = UnscaleForecast(pred);
  response->forecast =
      single ? pred.Reshape({spec_.num_entities, model_->horizon()}) : pred;
  response->latency_ms = timer.ElapsedMillis();

  metrics_.windows->Add(batch);
  metrics_.forwards->Add();
  metrics_.latency_ms->Observe(response->latency_ms);
  return Status::Ok();
}

Stats InferenceSession::stats() const { return metrics_.Snapshot(); }

}  // namespace serve
}  // namespace enhancenet
