#include "serve/model_registry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "runtime/env.h"

namespace enhancenet {
namespace serve {

namespace {

/// Prefixes a status with the model+version it concerns, preserving the
/// code: "model 'traffic' v3: <original message>".
Status Annotate(const std::string& name, int64_t version,
                const Status& status) {
  return Status(status.code(), "model '" + name + "' v" +
                                   std::to_string(version) + ": " +
                                   status.message());
}

}  // namespace

/// Registry handles for one model's serve.model.<name>.* metric family.
/// Created once per model name and cached; the underlying metrics live in
/// the process registry for the process lifetime.
struct ModelRegistry::Metrics {
  obs::Gauge* version = nullptr;
  obs::Gauge* shadow_version = nullptr;
  obs::Gauge* pool_size = nullptr;
  obs::Gauge* draining = nullptr;
  obs::Counter* swaps = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* errors = nullptr;
  obs::Counter* shadow_requests = nullptr;
  obs::Counter* shadow_errors = nullptr;
  obs::Histogram* pool_occupancy = nullptr;
  obs::Histogram* shadow_delta = nullptr;

  static Metrics Create(const std::string& name) {
    obs::Registry& registry = obs::Registry::Global();
    const std::string prefix = "serve.model." + name;
    Metrics m;
    m.version = registry.GetGauge(prefix + ".version");
    m.shadow_version = registry.GetGauge(prefix + ".shadow.version");
    m.pool_size = registry.GetGauge(prefix + ".pool.size");
    m.draining = registry.GetGauge(prefix + ".draining");
    m.swaps = registry.GetCounter(prefix + ".swaps");
    m.requests = registry.GetCounter(prefix + ".requests");
    m.errors = registry.GetCounter(prefix + ".errors");
    m.shadow_requests = registry.GetCounter(prefix + ".shadow.requests");
    m.shadow_errors = registry.GetCounter(prefix + ".shadow.errors");
    m.pool_occupancy = registry.GetHistogram(prefix + ".pool.occupancy",
                                             obs::OccupancyBuckets());
    m.shadow_delta =
        registry.GetHistogram(prefix + ".shadow.delta", obs::DeltaBuckets());
    return m;
  }
};

/// One named model: the mutable control-plane state (active/shadow
/// pointers, retirement ledger) behind its own mutex, so a slow publish of
/// one model never blocks traffic on another. Entries are never removed,
/// which keeps `Model*` stable after the map lookup.
struct ModelRegistry::Model {
  explicit Model(const std::string& name) : metrics(Metrics::Create(name)) {}

  /// Guards the four fields below. Held only for pointer copies/flips —
  /// never across a forward — so Predict's critical section is a few
  /// instructions.
  mutable std::mutex mu;
  std::shared_ptr<Version> active;
  std::shared_ptr<Version> shadow;
  /// Weak handles to retired versions, pruned opportunistically; a live
  /// entry means some in-flight request is still draining on it. Mutable
  /// so the const Info() snapshot can prune expired entries.
  mutable std::vector<std::weak_ptr<Version>> retired;
  Metrics metrics;

  /// Drops expired retirement entries and refreshes the draining gauge.
  /// Caller holds `mu`.
  int64_t PruneRetiredLocked() const {
    retired.erase(std::remove_if(retired.begin(), retired.end(),
                                 [](const std::weak_ptr<Version>& v) {
                                   return v.expired();
                                 }),
                  retired.end());
    const int64_t draining = static_cast<int64_t>(retired.size());
    metrics.draining->Set(static_cast<double>(draining));
    return draining;
  }
};

ModelRegistry::ModelRegistry() = default;
ModelRegistry::~ModelRegistry() = default;

Status ModelRegistry::Version::Serve(const PredictRequest& request,
                                     PredictResponse* response) {
  if (batcher != nullptr && request.history.dim() == 3) {
    return batcher->Predict(request, response);
  }
  const size_t i = static_cast<size_t>(
                       cursor.fetch_add(1, std::memory_order_relaxed)) %
                   pool.size();
  return pool[i]->Predict(request, response);
}

ModelRegistry::Model* ModelRegistry::FindModel(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

ModelRegistry::Model* ModelRegistry::GetOrCreateModel(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = models_[name];
  if (slot == nullptr) slot = std::make_unique<Model>(name);
  return slot.get();
}

std::string ModelRegistry::PublishedNamesForError() const {
  const std::vector<std::string> names = ModelNames();
  if (names.empty()) return "none";
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += "'" + n + "'";
  }
  return joined;
}

Status ModelRegistry::BuildVersion(const std::string& name, int64_t version,
                                   const ModelSpec& spec,
                                   const data::StandardScaler& scaler,
                                   const PublishOptions& options,
                                   std::shared_ptr<Version>* out) const {
  if (version < 1) {
    return Status::InvalidArgument("model '" + name + "': version must be " +
                                   ">= 1, got " + std::to_string(version));
  }
  auto fresh = std::make_shared<Version>();
  fresh->version = version;
  // One allocator for the whole pool: the version's tensor storage is
  // staged together and retires together. Not metric-exporting — the
  // default allocator's tensor.alloc.* stream stays the trainer's.
  fresh->allocator = std::make_shared<TensorAllocator>(
      /*export_metrics=*/false);
  fresh->allocator->set_caching_enabled(runtime::EnvAllocatorCaching());
  SessionOptions session_options = options.session;
  session_options.allocator = fresh->allocator;
  const int pool_size = std::max(1, options.pool_size);
  for (int i = 0; i < pool_size; ++i) {
    std::unique_ptr<InferenceSession> session;
    const Status created =
        InferenceSession::Create(spec, session_options, scaler, &session);
    if (!created.ok()) return Annotate(name, version, created);
    fresh->pool.push_back(std::move(session));
  }
  if (session_options.micro_batching) {
    MicroBatcherConfig bc;
    bc.max_batch_size = session_options.max_batch_size;
    bc.max_wait_ms = session_options.max_wait_ms;
    bc.deadline_aware = session_options.deadline_batching;
    bc.slo_ms = session_options.slo_ms;
    fresh->batcher =
        std::make_unique<MicroBatcher>(fresh->pool.front().get(), bc);
  }
  *out = std::move(fresh);
  return Status::Ok();
}

Status ModelRegistry::Publish(const std::string& name, int64_t version,
                              const ModelSpec& spec,
                              const data::StandardScaler& scaler,
                              const PublishOptions& options) {
  // Stage everything before touching live state: a failed publish leaves
  // current traffic exactly as it was.
  std::shared_ptr<Version> fresh;
  ENHANCENET_RETURN_IF_ERROR(
      BuildVersion(name, version, spec, scaler, options, &fresh));
  Model* model = GetOrCreateModel(name);
  std::shared_ptr<Version> old;
  {
    std::lock_guard<std::mutex> lock(model->mu);
    if (model->active != nullptr) {
      model->retired.push_back(model->active);
      model->metrics.swaps->Add();
    }
    old = std::move(model->active);
    model->active = std::move(fresh);  // the atomic flip
    model->metrics.version->Set(static_cast<double>(version));
    model->metrics.pool_size->Set(
        static_cast<double>(model->active->pool.size()));
    model->PruneRetiredLocked();
  }
  // `old` is released here, outside the lock: in-flight requests still
  // hold their own shared_ptr and drain undisturbed; the last one out
  // destroys the retired version's sessions, contexts, and allocator.
  return Status::Ok();
}

Status ModelRegistry::PublishShadow(const std::string& name, int64_t version,
                                    const ModelSpec& spec,
                                    const data::StandardScaler& scaler,
                                    const PublishOptions& options) {
  Model* model = FindModel(name);
  if (model == nullptr) {
    return Status::FailedPrecondition(
        "model '" + name + "': publish an active version before a shadow");
  }
  std::shared_ptr<Version> fresh;
  ENHANCENET_RETURN_IF_ERROR(
      BuildVersion(name, version, spec, scaler, options, &fresh));
  std::shared_ptr<Version> old;
  {
    std::lock_guard<std::mutex> lock(model->mu);
    if (model->active == nullptr) {
      return Status::FailedPrecondition(
          "model '" + name + "': publish an active version before a shadow");
    }
    if (model->shadow != nullptr) model->retired.push_back(model->shadow);
    old = std::move(model->shadow);
    model->shadow = std::move(fresh);
    model->metrics.shadow_version->Set(static_cast<double>(version));
    model->PruneRetiredLocked();
  }
  return Status::Ok();
}

Status ModelRegistry::Promote(const std::string& name) {
  Model* model = FindModel(name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + name +
                            "' is published (published: " +
                            PublishedNamesForError() + ")");
  }
  std::shared_ptr<Version> old;
  {
    std::lock_guard<std::mutex> lock(model->mu);
    if (model->shadow == nullptr) {
      return Status::FailedPrecondition("model '" + name +
                                        "': no shadow version to promote");
    }
    model->retired.push_back(model->active);
    old = std::move(model->active);
    model->active = std::move(model->shadow);
    model->shadow = nullptr;
    model->metrics.swaps->Add();
    model->metrics.version->Set(static_cast<double>(model->active->version));
    model->metrics.shadow_version->Set(0.0);
    model->metrics.pool_size->Set(
        static_cast<double>(model->active->pool.size()));
    model->PruneRetiredLocked();
  }
  return Status::Ok();
}

Status ModelRegistry::ClearShadow(const std::string& name) {
  Model* model = FindModel(name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + name +
                            "' is published (published: " +
                            PublishedNamesForError() + ")");
  }
  std::shared_ptr<Version> old;
  {
    std::lock_guard<std::mutex> lock(model->mu);
    if (model->shadow != nullptr) model->retired.push_back(model->shadow);
    old = std::move(model->shadow);
    model->metrics.shadow_version->Set(0.0);
    model->PruneRetiredLocked();
  }
  return Status::Ok();
}

void ModelRegistry::MirrorToShadow(Model* model,
                                   const std::shared_ptr<Version>& shadow,
                                   const PredictRequest& request,
                                   const PredictResponse& primary) {
  model->metrics.shadow_requests->Add();
  PredictResponse mirrored;
  const Status served = shadow->Serve(request, &mirrored);
  if (!served.ok() ||
      mirrored.forecast.shape() != primary.forecast.shape()) {
    model->metrics.shadow_errors->Add();
    return;
  }
  const float* a = primary.forecast.data();
  const float* b = mirrored.forecast.data();
  const int64_t n = primary.forecast.numel();
  double delta = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    delta += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  model->metrics.shadow_delta->Observe(n == 0 ? 0.0
                                              : delta / static_cast<double>(n));
}

Status ModelRegistry::Predict(const std::string& name,
                              const PredictRequest& request,
                              PredictResponse* response) {
  if (response == nullptr) {
    return Status::InvalidArgument("Predict: response is null");
  }
  Model* model = FindModel(name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + name +
                            "' is published (published: " +
                            PublishedNamesForError() + ")");
  }
  std::shared_ptr<Version> active;
  std::shared_ptr<Version> shadow;
  {
    std::lock_guard<std::mutex> lock(model->mu);
    active = model->active;
    shadow = model->shadow;
  }
  if (active == nullptr) {
    // Unreachable through the public API (Publish always installs an
    // active version before the model is findable), kept as a guard.
    return Status::FailedPrecondition("model '" + name +
                                      "': no active version");
  }
  model->metrics.requests->Add();
  const int64_t inflight =
      active->inflight.fetch_add(1, std::memory_order_relaxed) + 1;
  model->metrics.pool_occupancy->Observe(static_cast<double>(inflight));
  const Status served = active->Serve(request, response);
  active->inflight.fetch_sub(1, std::memory_order_relaxed);
  if (!served.ok()) {
    model->metrics.errors->Add();
    return Annotate(name, active->version, served);
  }
  response->model_version = active->version;
  if (shadow != nullptr) MirrorToShadow(model, shadow, request, *response);
  return Status::Ok();
}

Status ModelRegistry::Info(const std::string& name, ModelInfo* info) const {
  if (info == nullptr) {
    return Status::InvalidArgument("Info: info is null");
  }
  const Model* model = FindModel(name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + name +
                            "' is published (published: " +
                            PublishedNamesForError() + ")");
  }
  std::lock_guard<std::mutex> lock(model->mu);
  ModelInfo out;
  out.active_version =
      model->active != nullptr ? model->active->version : -1;
  out.shadow_version =
      model->shadow != nullptr ? model->shadow->version : -1;
  out.pool_size = model->active != nullptr
                      ? static_cast<int>(model->active->pool.size())
                      : 0;
  out.swaps = model->metrics.swaps->Get();
  out.draining = model->PruneRetiredLocked();
  *info = out;
  return Status::Ok();
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

std::shared_ptr<TensorAllocator> ModelRegistry::ActiveAllocatorForTest(
    const std::string& name) const {
  Model* model = FindModel(name);
  if (model == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(model->mu);
  return model->active != nullptr ? model->active->allocator : nullptr;
}

}  // namespace serve
}  // namespace enhancenet
