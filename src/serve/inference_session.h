#ifndef ENHANCENET_SERVE_INFERENCE_SESSION_H_
#define ENHANCENET_SERVE_INFERENCE_SESSION_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "models/model_factory.h"
#include "runtime/context.h"
#include "serve/stats.h"
#include "tensor/tensor.h"

namespace enhancenet {
namespace serve {

/// What the registry versions: everything needed to reconstruct a trained
/// model for serving — the factory name and sizing it was trained with and
/// the checkpoint holding its weights. Two ModelSpecs with the same fields
/// serve bitwise-identical predictions; per-session runtime knobs live in
/// SessionOptions instead.
struct ModelSpec {
  std::string model_name = "D-GRNN";
  int64_t num_entities = 0;
  int64_t in_channels = 1;
  /// Channel predictions are made for; must be < in_channels.
  int64_t target_channel = 0;
  /// Raw distance-kernel adjacency [N, N]; may be empty for graph-free
  /// models (RNN, D-RNN, TCN, WaveNet, D-TCN, LSTM).
  Tensor adjacency;
  models::ModelSizing sizing;
  /// Binary weight checkpoint (io::SaveCheckpoint). Empty serves the
  /// freshly-initialized weights — useful in tests only. When the file
  /// carries a metadata header (io::CheckpointMeta), Create rejects any
  /// model-name/sizing mismatch against this spec before touching weights.
  std::string checkpoint_path;
};

/// Per-session runtime knobs: everything that changes *how* a spec is
/// served without changing *what* it predicts.
struct SessionOptions {
  /// Seed for weight initialization before the checkpoint overwrites it.
  /// Irrelevant to predictions when a checkpoint is loaded.
  uint64_t seed = 2024;
  /// Top-k sparsification of the DAMGN dynamic adjacency for this session:
  /// -1 inherits the process-wide setting (ENHANCENET_TOPK), 0 forces the
  /// dense path, k >= 1 keeps k neighbours per row. A non-negative value
  /// gives the session a private ExecConfig so the knob never leaks into
  /// other sessions or the trainer.
  int topk = -1;
  /// Entity-sharded execution for this session (DESIGN.md §12): -1 inherits
  /// the process-wide ENHANCENET_SHARDS, 1 forces the single-context path,
  /// S >= 2 splits the graph applies across S per-shard RuntimeContexts
  /// (each with its own allocator) parked on this session's context — the
  /// whole set retires as a unit with the session. Like topk, a
  /// non-negative value gives the session a private ExecConfig. Predictions
  /// are bitwise-identical for every S.
  int shards = -1;
  /// Micro-batching policy, consumed by ModelRegistry (a bare
  /// InferenceSession ignores these): when enabled, single-window Predicts
  /// through the registry coalesce into batched forwards.
  bool micro_batching = false;
  int64_t max_batch_size = 8;
  double max_wait_ms = 2.0;
  /// Deadline-aware flush (default): the batch leader launches when the
  /// tightest enqueued latency budget is nearly spent, instead of sleeping
  /// a fixed max_wait_ms. false restores the legacy fixed-wait policy.
  bool deadline_batching = true;
  /// Default per-request latency budget (ms) for requests without an
  /// explicit PredictRequest::deadline_ms. <= 0 inherits ENHANCENET_SLO_MS;
  /// when that is unset too, max_wait_ms doubles as the budget (which makes
  /// the deadline policy a drop-in for fixed-wait configs).
  double slo_ms = 0.0;
  /// Allocator for the session's private RuntimeContext. Null (default)
  /// creates a fresh private allocator; the registry passes one shared
  /// per-version allocator to every session of a pool so the whole
  /// version's tensor storage is staged — and released on retire —
  /// together.
  std::shared_ptr<TensorAllocator> allocator;
};

/// DEPRECATED aliasing shim for the pre-registry API, kept for one release:
/// the flat config that predates the ModelSpec/SessionOptions split. Field
/// access is source-compatible with the old struct (`config.model_name`,
/// `config.seed`, ...); new code should construct ModelSpec and
/// SessionOptions directly.
struct SessionConfig : ModelSpec {
  uint64_t seed = 2024;
  int topk = -1;

  const ModelSpec& spec() const { return *this; }
  SessionOptions options() const {
    SessionOptions o;
    o.seed = seed;
    o.topk = topk;
    return o;
  }
};

/// One forecasting request.
struct PredictRequest {
  /// History window: [N, H, C] for a single window or [B, N, H, C] for a
  /// caller-assembled batch. Raw (unscaled) units unless `scaled_input`.
  Tensor history;
  /// When true, `history` is already z-scored with the session's scaler
  /// (e.g. it came from a WindowDataset batch).
  bool scaled_input = false;
  /// When true, the forecast is returned in scaled units instead of being
  /// passed through the scaler's inverse transform.
  bool scaled_output = false;
  /// Optional latency budget in milliseconds, consumed by the deadline-aware
  /// MicroBatcher: the batch this request joins flushes early enough
  /// (reserving the observed forward time) for the request to complete
  /// within the budget, and completions past it count as deadline misses.
  /// <= 0 means "no explicit deadline" — the batcher's configured slo_ms /
  /// max_wait_ms budget applies. Ignored by direct InferenceSession calls.
  double deadline_ms = 0.0;
};

/// A served forecast.
struct PredictResponse {
  /// [N, F] for single-window requests, [B, N, F] for batched ones. Real
  /// (unscaled) target-channel units unless the request set scaled_output.
  Tensor forecast;
  /// Wall-clock time spent inside Predict, including validation and
  /// (de)scaling.
  double latency_ms = 0.0;
  /// Version that served the request when routed through a ModelRegistry;
  /// -1 for direct session calls.
  int64_t model_version = -1;
};

/// A thread-safe serving handle owning a model, its weights, and the scaler
/// it was trained with.
///
/// Construction is fallible (Status) — unknown model names, missing or
/// mismatched checkpoints, and inconsistent configs are reported, never
/// CHECK-aborted. Predict validates every request (rank, shape, finiteness)
/// before the model sees it, so malformed input also surfaces as Status.
///
/// Forwards run in eval mode under autograd::NoGradGuard: no graph is
/// recorded, predictions are bitwise identical to the training-time eval
/// path, and — because eval-mode Forward is const and draws nothing from
/// the Rng — any number of threads may call Predict concurrently.
///
/// Metrics: every session records into the process registry under the
/// "serve.session." prefix (see ServeMetrics in stats.h); stats() is a
/// snapshot of those metrics. Predict/Validate are virtual so tests can
/// inject failing forwards under the MicroBatcher.
class InferenceSession {
 public:
  /// Builds the model, loads the checkpoint (if any), and switches to eval
  /// mode. If the checkpoint carries a metadata header, a spec mismatch
  /// (model name, entity/channel counts, history/horizon) is rejected with
  /// a precise FailedPrecondition before any weight is read. On failure
  /// `*out` is untouched.
  static Status Create(const ModelSpec& spec, const SessionOptions& options,
                       const data::StandardScaler& scaler,
                       std::unique_ptr<InferenceSession>* out);

  /// DEPRECATED: pre-split entry point, forwards to the primary overload.
  static Status Create(const SessionConfig& config,
                       const data::StandardScaler& scaler,
                       std::unique_ptr<InferenceSession>* out) {
    return Create(config.spec(), config.options(), scaler, out);
  }

  virtual ~InferenceSession() = default;

  /// Validates, scales, forwards, and unscales one request. Thread-safe.
  virtual Status Predict(const PredictRequest& request,
                         PredictResponse* response) const;

  /// Shape/finiteness validation only (no forward). MicroBatcher uses this
  /// to reject bad requests before they join a batch.
  virtual Status Validate(const Tensor& history) const;

  /// Applies the session scaler to a raw history window (any rank whose
  /// last dimension is the channel count).
  Tensor ScaleWindow(const Tensor& history) const;

  /// Inverse-transforms a scaled forecast back to real target-channel units.
  Tensor UnscaleForecast(const Tensor& forecast) const;

  /// Metrics snapshot; `forwards` here counts Predict calls (the
  /// MicroBatcher layers its own occupancy accounting on top).
  Stats stats() const;

  const models::ForecastingModel& model() const { return *model_; }
  const ModelSpec& spec() const { return spec_; }

  /// The session's private runtime context: its own allocator (so two
  /// sessions never contend on a free-list mutex, and a session never
  /// shares pooled blocks with the trainer) and its own workspace arena.
  /// Exec config is shared with the default context unless the options set
  /// a session-local topk.
  runtime::RuntimeContext& context() const { return context_; }

  int64_t num_entities() const { return spec_.num_entities; }
  int64_t in_channels() const { return spec_.in_channels; }
  int64_t history() const { return model_->history(); }
  int64_t horizon() const { return model_->horizon(); }

 protected:
  /// Protected so test doubles (e.g. a failing-forward session for
  /// poisoned-batch coverage) can subclass; production code goes through
  /// Create().
  InferenceSession(ModelSpec spec, SessionOptions options,
                   std::unique_ptr<models::ForecastingModel> model,
                   const data::StandardScaler& scaler);

 private:
  ModelSpec spec_;
  SessionOptions options_;
  std::unique_ptr<models::ForecastingModel> model_;
  data::StandardScaler scaler_;
  ServeMetrics metrics_;
  /// Bound inside Predict. Mutable because binding a context is an
  /// implementation detail of the logically-const forward; RuntimeContext
  /// itself is safe to bind from many threads at once. Constructed with a
  /// private exec config when the session options pin a topk.
  mutable runtime::RuntimeContext context_;
};

}  // namespace serve
}  // namespace enhancenet

#endif  // ENHANCENET_SERVE_INFERENCE_SESSION_H_
