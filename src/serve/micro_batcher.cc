#include "serve/micro_batcher.h"

#include <chrono>
#include <utility>

#include "common/stopwatch.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace serve {

MicroBatcher::MicroBatcher(const InferenceSession* session,
                           const MicroBatcherConfig& config)
    : session_(session),
      config_(config),
      metrics_(ServeMetrics::Create("serve.batcher", /*with_occupancy=*/true)) {
  if (config_.max_batch_size < 1) config_.max_batch_size = 1;
  if (config_.max_wait_ms < 0.0) config_.max_wait_ms = 0.0;
}

void MicroBatcher::RunBatch(const std::shared_ptr<Batch>& batch) {
  const int64_t n = session_->num_entities();
  const int64_t b = static_cast<int64_t>(batch->inputs.size());
  std::vector<Tensor> lifted;
  lifted.reserve(batch->inputs.size());
  for (const Tensor& window : batch->inputs) {
    lifted.push_back(
        window.Reshape({1, n, session_->history(), session_->in_channels()}));
  }
  PredictRequest batched;
  batched.history = ops::Concat(lifted, 0);  // [B,N,H,C]
  batched.scaled_input = true;
  batched.scaled_output = true;
  PredictResponse response;
  const Status status = session_->Predict(batched, &response);

  std::vector<Tensor> outputs;
  if (status.ok()) {
    outputs.reserve(batch->inputs.size());
    for (int64_t i = 0; i < b; ++i) {
      outputs.push_back(ops::Slice(response.forecast, 0, i, 1)
                            .Reshape({n, session_->horizon()}));
    }
  }
  metrics_.forwards->Add();
  metrics_.batch_occupancy->Observe(static_cast<double>(b));
  if (!status.ok()) metrics_.forward_errors->Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->outputs = std::move(outputs);
    batch->status = status;
    batch->done = true;
  }
  cv_.notify_all();
}

Status MicroBatcher::Predict(const PredictRequest& request,
                             PredictResponse* response) {
  if (response == nullptr) {
    return Status::InvalidArgument("Predict: response is null");
  }
  Stopwatch timer;
  if (request.history.dim() != 3) {
    metrics_.rejected->Add();
    return Status::InvalidArgument(
        "micro-batcher coalesces single windows [N, H, C]; got " +
        ShapeToString(request.history.shape()) +
        " (send pre-assembled batches straight to the session)");
  }
  const Status valid = session_->Validate(request.history);
  if (!valid.ok()) {
    metrics_.rejected->Add();
    return valid;
  }
  // Scale outside the batch so a batch is always homogeneous (scaled in,
  // scaled out) regardless of each member's request flags.
  Tensor scaled =
      request.scaled_input ? request.history : session_->ScaleWindow(request.history);

  std::shared_ptr<Batch> batch;
  size_t index = 0;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (open_batch_ == nullptr) {
      batch = std::make_shared<Batch>();
      open_batch_ = batch;
      leader = true;
    } else {
      batch = open_batch_;
    }
    batch->inputs.push_back(std::move(scaled));
    index = batch->inputs.size() - 1;
    const bool full =
        static_cast<int64_t>(batch->inputs.size()) >= config_.max_batch_size;
    if (leader) {
      // Wait for followers until the batch fills or the deadline passes,
      // then take the batch out of circulation and run it.
      cv_.wait_for(
          lock, std::chrono::duration<double, std::milli>(config_.max_wait_ms),
          [&] {
            return static_cast<int64_t>(batch->inputs.size()) >=
                   config_.max_batch_size;
          });
      batch->closed = true;
      if (open_batch_ == batch) open_batch_ = nullptr;
    } else if (full) {
      // This join filled the batch: retire it and wake the leader early.
      batch->closed = true;
      open_batch_ = nullptr;
      cv_.notify_all();
    }
  }
  if (leader) RunBatch(batch);
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return batch->done; });
  }
  if (!batch->status.ok()) return batch->status;

  Tensor forecast = batch->outputs[index];
  if (!request.scaled_output) forecast = session_->UnscaleForecast(forecast);
  response->forecast = std::move(forecast);
  response->latency_ms = timer.ElapsedMillis();

  metrics_.windows->Add();
  metrics_.latency_ms->Observe(response->latency_ms);
  return Status::Ok();
}

Stats MicroBatcher::stats() const { return metrics_.Snapshot(); }

}  // namespace serve
}  // namespace enhancenet
