#include "serve/micro_batcher.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "runtime/env.h"
#include "runtime/workspace.h"
#include "tensor/tensor_ops.h"

namespace enhancenet {
namespace serve {
namespace {

// Smoothing for the forward-time reserve and the occupancy EWMA: heavy
// enough on history to ride out one slow forward, light enough to track a
// model hot-swap within a few batches.
constexpr double kEwmaAlpha = 0.25;

// Flushing exactly at deadline − reserve lands completions right on the
// deadline, where scheduler noise coin-flips them into misses; reserving a
// margin over the EWMA trades a sliver of coalescing time for slack.
constexpr double kReserveMargin = 1.25;

std::chrono::steady_clock::duration MillisToDuration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(std::max(0.0, ms)));
}

}  // namespace

MicroBatcher::MicroBatcher(const InferenceSession* session,
                           const MicroBatcherConfig& config)
    : session_(session),
      config_(config),
      metrics_(ServeMetrics::Create("serve.batcher", /*with_occupancy=*/true)) {
  if (config_.max_batch_size < 1) config_.max_batch_size = 1;
  if (config_.max_wait_ms < 0.0) config_.max_wait_ms = 0.0;
  // Budget resolution order: per-request deadline_ms > config slo_ms >
  // ENHANCENET_SLO_MS > max_wait_ms. The env fallback is resolved once here
  // so Predict never consults the environment.
  if (config_.deadline_aware && config_.slo_ms <= 0.0) {
    config_.slo_ms = runtime::EnvSloMs();
  }
  ceiling_ = config_.max_batch_size;
  metrics_.ceiling->Set(static_cast<double>(ceiling_));
}

void MicroBatcher::LeaderWait(std::unique_lock<std::mutex>& lock,
                              const std::shared_ptr<Batch>& batch) {
  const auto launchable = [&] {
    return batch->closed ||
           static_cast<int64_t>(batch->inputs.size()) >= ceiling_;
  };
  if (!config_.deadline_aware) {
    batch->cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(config_.max_wait_ms),
        launchable);
    return;
  }
  // The flush target is recomputed every wakeup: a follower joining with a
  // tighter deadline lowers batch->deadline and notifies, so the target only
  // ever moves earlier.
  while (!launchable()) {
    const Clock::time_point flush_at =
        batch->deadline - MillisToDuration(kReserveMargin * reserve_ms_);
    if (Clock::now() >= flush_at) break;
    batch->cv.wait_until(lock, flush_at);
  }
}

void MicroBatcher::RunBatch(const std::shared_ptr<Batch>& batch) {
  // Bound so the staging buffer, output slices, and forward temporaries all
  // draw from the session's pooled context.
  runtime::RuntimeContext::Bind bind(session_->context());
  const int64_t n = session_->num_entities();
  const int64_t h = session_->history();
  const int64_t c = session_->in_channels();
  const int64_t f = session_->horizon();
  const int64_t b = static_cast<int64_t>(batch->inputs.size());

  PredictRequest batched;
  batched.scaled_input = true;
  batched.scaled_output = true;
  if (b == 1) {
    // Single-member batch: the session handles [N,H,C] directly; skip the
    // staging copy (bitwise-identical — same kernels on the same values).
    batched.history = batch->inputs[0];
  } else {
    runtime::Workspace& workspace = session_->context().workspace();
    Tensor staging = Tensor::WithStorage(
        workspace.Acquire(b * n * h * c), {b, n, h, c});
    std::vector<Tensor> lifted;
    lifted.reserve(batch->inputs.size());
    for (const Tensor& window : batch->inputs) {
      lifted.push_back(window.Reshape({1, n, h, c}));
    }
    ops::ConcatInto(lifted, 0, &staging);
    batched.history = std::move(staging);
  }
  PredictResponse response;
  const Status status = session_->Predict(batched, &response);

  std::vector<Tensor> outputs;
  if (status.ok()) {
    outputs.reserve(batch->inputs.size());
    if (b == 1) {
      outputs.push_back(response.forecast);  // already [N,F]
    } else {
      runtime::Workspace& workspace = session_->context().workspace();
      for (int64_t i = 0; i < b; ++i) {
        Tensor slice =
            Tensor::WithStorage(workspace.Acquire(n * f), {1, n, f});
        ops::SliceInto(response.forecast, 0, i, 1, &slice);
        outputs.push_back(slice.Reshape({n, f}));
      }
    }
  }
  metrics_.forwards->Add();
  metrics_.batch_occupancy->Observe(static_cast<double>(b));
  if (!status.ok()) metrics_.forward_errors->Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      // The reserve follows the *batched* forward latency (the time a
      // flushing batch still needs), seeded by the first observation.
      reserve_ms_ = reserve_ms_ <= 0.0
                        ? response.latency_ms
                        : kEwmaAlpha * response.latency_ms +
                              (1.0 - kEwmaAlpha) * reserve_ms_;
      metrics_.reserve_ms->Set(reserve_ms_);
    }
    UpdateCeilingLocked(b);
    batch->outputs = std::move(outputs);
    batch->status = status;
    batch->done = true;
  }
  batch->cv.notify_all();
}

void MicroBatcher::UpdateCeilingLocked(int64_t occupancy) {
  if (!config_.deadline_aware || !config_.adaptive_ceiling) return;
  occupancy_ewma_ =
      occupancy_ewma_ <= 0.0
          ? static_cast<double>(occupancy)
          : kEwmaAlpha * static_cast<double>(occupancy) +
                (1.0 - kEwmaAlpha) * occupancy_ewma_;
  if (occupancy >= ceiling_) {
    // Demand filled the ceiling: open headroom aggressively.
    ceiling_ = std::min(ceiling_ * 2, config_.max_batch_size);
  } else if (ceiling_ > 1 && occupancy_ewma_ * 2.0 < ceiling_) {
    // Sustained occupancy well under the ceiling: shrink so light traffic
    // flushes on fill instead of burning its budget waiting.
    ceiling_ = std::max<int64_t>(ceiling_ / 2, 1);
  }
  metrics_.ceiling->Set(static_cast<double>(ceiling_));
}

Status MicroBatcher::FinishRequest(const Batch& batch, size_t index,
                                   const PredictRequest& request,
                                   double latency_ms, double budget_ms,
                                   PredictResponse* response) {
  // Latency is observed on failure too — otherwise p99 under partial
  // failure only sees the requests that got lucky.
  metrics_.latency_ms->Observe(latency_ms);
  if (budget_ms > 0.0) {
    const double slack_ms = budget_ms - latency_ms;
    metrics_.slack_ms->Observe(slack_ms);
    if (slack_ms < 0.0) metrics_.deadline_miss->Add();
  }
  if (!batch.status.ok()) return batch.status;

  Tensor forecast = batch.outputs[index];
  if (!request.scaled_output) forecast = session_->UnscaleForecast(forecast);
  response->forecast = std::move(forecast);
  response->latency_ms = latency_ms;
  metrics_.windows->Add();
  return Status::Ok();
}

Status MicroBatcher::Predict(const PredictRequest& request,
                             PredictResponse* response) {
  if (response == nullptr) {
    return Status::InvalidArgument("Predict: response is null");
  }
  Stopwatch timer;
  const Clock::time_point arrival = Clock::now();
  if (request.history.dim() != 3) {
    metrics_.rejected->Add();
    return Status::InvalidArgument(
        "micro-batcher coalesces single windows [N, H, C]; got " +
        ShapeToString(request.history.shape()) +
        " (send pre-assembled batches straight to the session)");
  }
  const Status valid = session_->Validate(request.history);
  if (!valid.ok()) {
    metrics_.rejected->Add();
    return valid;
  }
  // Bound for the whole request so scaling/unscaling temporaries recycle
  // through the session's pooled allocator (RunBatch re-binds for the
  // leader; Bind nests fine).
  runtime::RuntimeContext::Bind bind(session_->context());
  // Scale outside the batch so a batch is always homogeneous (scaled in,
  // scaled out) regardless of each member's request flags.
  Tensor scaled = request.scaled_input ? request.history
                                       : session_->ScaleWindow(request.history);

  // Effective budget; 0 in fixed-wait mode means "no deadline accounting".
  double budget_ms = 0.0;
  if (config_.deadline_aware) {
    budget_ms = request.deadline_ms > 0.0
                    ? request.deadline_ms
                    : (config_.slo_ms > 0.0 ? config_.slo_ms
                                            : config_.max_wait_ms);
  }
  const Clock::time_point deadline = arrival + MillisToDuration(budget_ms);

  // Fast path: with a ceiling of one there is nothing to coalesce — run the
  // request as its own batch without ever touching the open-batch state.
  if (config_.max_batch_size == 1) {
    auto batch = std::make_shared<Batch>();
    batch->deadline = deadline;
    batch->inputs.push_back(std::move(scaled));
    metrics_.flush_full->Add();
    RunBatch(batch);
    return FinishRequest(*batch, 0, request, timer.ElapsedMillis(), budget_ms,
                         response);
  }

  std::shared_ptr<Batch> batch;
  size_t index = 0;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A retired (closed) batch never takes joiners: a late arrival opens
    // the next batch instead of racing the leader that is flushing this
    // one.
    if (open_batch_ == nullptr || open_batch_->closed) {
      batch = std::make_shared<Batch>();
      batch->deadline = deadline;
      batch->inputs.reserve(static_cast<size_t>(config_.max_batch_size));
      open_batch_ = batch;
      leader = true;
    } else {
      batch = open_batch_;
      if (deadline < batch->deadline) {
        // Tighter budget than anything enqueued: pull the flush target
        // earlier and wake the leader to re-aim its wait.
        batch->deadline = deadline;
        batch->cv.notify_all();
      }
    }
    batch->inputs.push_back(std::move(scaled));
    index = batch->inputs.size() - 1;
    if (!leader &&
        static_cast<int64_t>(batch->inputs.size()) >= ceiling_) {
      // This join filled the batch: retire it and wake the leader early.
      batch->closed = true;
      open_batch_ = nullptr;
      batch->cv.notify_all();
    }
    if (leader) {
      LeaderWait(lock, batch);
      const bool filled = batch->closed || static_cast<int64_t>(
                                               batch->inputs.size()) >= ceiling_;
      if (!batch->closed) {
        batch->closed = true;
        if (open_batch_ == batch) open_batch_ = nullptr;
      }
      (filled ? metrics_.flush_full : metrics_.flush_budget)->Add();
    }
  }
  if (leader) {
    // The leader runs the forward itself and set batch->done under mu_ in
    // RunBatch — no need to re-lock and wait on a flag it just published.
    RunBatch(batch);
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    batch->cv.wait(lock, [&] { return batch->done; });
  }
  return FinishRequest(*batch, index, request, timer.ElapsedMillis(),
                       budget_ms, response);
}

Stats MicroBatcher::stats() const { return metrics_.Snapshot(); }

}  // namespace serve
}  // namespace enhancenet
