#ifndef ENHANCENET_SERVE_MICRO_BATCHER_H_
#define ENHANCENET_SERVE_MICRO_BATCHER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/inference_session.h"
#include "serve/stats.h"

namespace enhancenet {
namespace serve {

struct MicroBatcherConfig {
  /// A batch is launched as soon as this many windows have joined it.
  int64_t max_batch_size = 8;
  /// ... or once the first (leader) request has waited this long.
  double max_wait_ms = 2.0;
};

/// Coalesces concurrent single-window Predict calls into one batched model
/// forward.
///
/// The expensive part of correlated-time-series inference is batched GEMM
/// over all N entities; stacking B concurrent requests into one [B,N,H,C]
/// forward amortizes filter generation and keeps the tiled GEMM kernels
/// (which already fan out over the ParallelFor pool) working on larger
/// operands. Policy: the first request to arrive becomes the batch *leader*
/// and waits up to `max_wait_ms` for followers; the batch launches early the
/// moment it reaches `max_batch_size`. Followers block until the leader
/// distributes their slice of the batched forecast.
///
/// Requests failing validation are rejected individually before joining a
/// batch, so one malformed request can never poison its neighbours.
/// Thread-safe; Predict blocks the calling thread (at most
/// max_wait_ms + one forward).
class MicroBatcher {
 public:
  /// `session` is borrowed and must outlive the batcher.
  MicroBatcher(const InferenceSession* session,
               const MicroBatcherConfig& config);

  /// Serves one single-window request ([N, H, C] only — callers with a
  /// pre-assembled batch should go straight to the session).
  Status Predict(const PredictRequest& request, PredictResponse* response);

  /// Metrics snapshot: `windows`/`forwards` is the realized mean batch
  /// occupancy, latencies are per request (queueing included). Backed by
  /// the process registry under the "serve.batcher." prefix, including a
  /// `serve.batcher.batch_occupancy` histogram observed once per forward.
  Stats stats() const;

 private:
  /// One in-flight coalesced batch; lives on the heap so late followers can
  /// keep a reference after the batcher moves on to the next batch.
  struct Batch {
    std::vector<Tensor> inputs;    // scaled [N,H,C] windows, joining order
    std::vector<Tensor> outputs;   // scaled [N,F] forecasts, same order
    Status status;                 // forward outcome, shared by all members
    bool closed = false;           // no longer accepting joiners
    bool done = false;             // outputs/status are final
  };

  /// Runs the batched forward for `batch` and publishes the results.
  void RunBatch(const std::shared_ptr<Batch>& batch);

  const InferenceSession* session_;
  MicroBatcherConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Batch> open_batch_;
  ServeMetrics metrics_;
};

}  // namespace serve
}  // namespace enhancenet

#endif  // ENHANCENET_SERVE_MICRO_BATCHER_H_
